module emissary

go 1.22
