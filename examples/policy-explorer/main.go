// Policy explorer: sweep the EMISSARY design space on one benchmark —
// the N (protected ways) axis and the mode-selection axis — the way
// §5.4 of the paper narrows its parameterization, and print a compact
// speedup matrix against the TPLRU baseline.
package main

import (
	"flag"
	"fmt"
	"log"

	"emissary"
)

func main() {
	benchName := flag.String("bench", "tomcat", "benchmark to explore")
	warmup := flag.Uint64("warmup", 1_000_000, "warm-up instructions")
	measure := flag.Uint64("measure", 6_000_000, "measured instructions")
	flag.Parse()

	bench, err := emissary.Benchmark(*benchName)
	if err != nil {
		log.Fatal(err)
	}

	run := func(policy emissary.Policy) emissary.Result {
		opt := emissary.DefaultOptions(bench, policy)
		opt.WarmupInstrs = *warmup
		opt.MeasureInstrs = *measure
		res, err := emissary.Simulate(opt)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	base := run(emissary.MustPolicy("TPLRU"))
	fmt.Printf("benchmark %s: baseline IPC %.4f, L2-I MPKI %.2f\n\n",
		bench.Name, base.IPC, base.L2IMPKI)

	selections := []string{"S", "S&E", "S&E&R(1/32)", "R(1/32)"}
	ns := []int{2, 4, 8, 12}

	fmt.Printf("%-8s", "P(N)")
	for _, sel := range selections {
		fmt.Printf("  %14s", sel)
	}
	fmt.Println()
	for _, n := range ns {
		fmt.Printf("%-8d", n)
		for _, sel := range selections {
			p := emissary.MustPolicy(fmt.Sprintf("P(%d):%s", n, sel))
			res := run(p)
			fmt.Printf("  %+13.2f%%", 100*emissary.Speedup(base.Cycles, res.Cycles))
		}
		fmt.Println()
	}

	fmt.Println("\ncomparison policies:")
	for _, text := range []string{"LIP", "BIP", "SRRIP", "DRRIP", "PDP", "DCLIP"} {
		res := run(emissary.MustPolicy(text))
		fmt.Printf("  %-8s %+7.2f%%  (L2-I MPKI %.2f)\n",
			text, 100*emissary.Speedup(base.Cycles, res.Cycles), res.L2IMPKI)
	}
}
