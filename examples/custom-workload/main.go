// Custom workload: build your own benchmark profile — here a
// microservice mesh with an enormous code footprint and a skewed
// request mix — and evaluate how much EMISSARY helps it. This is the
// path a downstream user takes to model their own application's
// front-end behaviour.
package main

import (
	"fmt"
	"log"

	"emissary"
)

func main() {
	// A profile describes the properties §3 of the paper identifies as
	// what matters: instruction footprint, reuse mixture drivers
	// (services and their popularity skew), branch behaviour, and the
	// data working set.
	mesh := emissary.Profile{
		Name: "microservice-mesh",
		Seed: 4242,

		FootprintMB:    3.2, // far beyond the 1MB L2
		HotLibFrac:     0.10,
		NumServices:    96,
		ServiceZipf:    0.4, // flat popularity: long reuse everywhere
		AvgBlockInstr:  7,
		LoopFrac:       0.08,
		AvgLoopTrips:   5,
		HardBranchFrac: 0.03,
		HardBranchBias: 0.88,
		VariantFanout:  4,

		LoadFrac:   0.27,
		StoreFrac:  0.10,
		StackFrac:  0.35,
		ColdFrac:   0.18,
		HotDataKB:  128,
		ColdDataMB: 64,
		RecordKB:   4,
	}
	if err := mesh.Validate(); err != nil {
		log.Fatal(err)
	}

	run := func(policyText string) emissary.Result {
		opt := emissary.DefaultOptions(mesh, emissary.MustPolicy(policyText))
		opt.WarmupInstrs = 2_000_000
		opt.MeasureInstrs = 8_000_000
		res, err := emissary.Simulate(opt)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	base := run("TPLRU")
	fmt.Printf("%-20s IPC %.4f  L1I MPKI %6.2f  L2-I MPKI %6.2f\n",
		"TPLRU", base.IPC, base.L1IMPKI, base.L2IMPKI)

	for _, policy := range []string{"P(8):S&E", "P(8):S&E&R(1/32)", "DRRIP"} {
		res := run(policy)
		fmt.Printf("%-20s IPC %.4f  L1I MPKI %6.2f  L2-I MPKI %6.2f  speedup %+6.2f%%\n",
			policy, res.IPC, res.L1IMPKI, res.L2IMPKI,
			100*emissary.Speedup(base.Cycles, res.Cycles))
	}
}
