// Reuse analysis: reproduce the §3 study that motivates EMISSARY on a
// single benchmark — the Short/Mid/Long reuse-distance mixture of
// instruction-line accesses, where the L2 misses come from, and which
// reuse class causes the decode starvation — by running the baseline
// with reuse tracking enabled.
package main

import (
	"flag"
	"fmt"
	"log"

	"emissary"
)

func main() {
	benchName := flag.String("bench", "tomcat", "benchmark to analyze")
	measure := flag.Uint64("measure", 8_000_000, "measured instructions")
	flag.Parse()

	bench, err := emissary.Benchmark(*benchName)
	if err != nil {
		log.Fatal(err)
	}
	opt := emissary.DefaultOptions(bench, emissary.MustPolicy("TPLRU"))
	opt.WarmupInstrs = 1_000_000
	opt.MeasureInstrs = *measure
	opt.TrackReuse = true
	res, err := emissary.Simulate(opt)
	if err != nil {
		log.Fatal(err)
	}

	labels := []string{"short [0,100)", "mid   [100,5000)", "long  [5000,inf)"}
	sum := func(a [3]uint64) float64 {
		return float64(a[0] + a[1] + a[2])
	}

	fmt.Printf("benchmark %s, %d instructions measured\n\n", bench.Name, res.Instructions)

	fmt.Println("instruction-line accesses by reuse distance (Fig 2, first bar):")
	for i, l := range labels {
		fmt.Printf("  %-18s %6.2f%%\n", l, 100*float64(res.AccessByBucket[i])/sum(res.AccessByBucket))
	}

	fmt.Println("\nL2 instruction misses by reuse class (Fig 2, second bar):")
	for i, l := range labels {
		fmt.Printf("  %-18s %6.2f%%\n", l, 100*float64(res.L2MissByBucket[i])/sum(res.L2MissByBucket))
	}

	fmt.Println("\ndecode-starvation cycles by reuse class (Fig 2, third bar):")
	for i, l := range labels {
		fmt.Printf("  %-18s %6.2f%%\n", l, 100*float64(res.StarvByBucket[i])/sum(res.StarvByBucket))
	}

	longAcc := 100 * float64(res.AccessByBucket[2]) / sum(res.AccessByBucket)
	longStarv := 100 * float64(res.StarvByBucket[2]) / sum(res.StarvByBucket)
	fmt.Printf("\nthe paper's §3 observation: long-reuse lines are %.0f%% of accesses but\n", longAcc)
	fmt.Printf("cause %.0f%% of starvation — the asymmetry EMISSARY exploits.\n", longStarv)
}
