// Quickstart: run the paper's headline comparison on one benchmark —
// the TPLRU baseline versus the preferred EMISSARY configuration
// P(8):S&E&R(1/32) — and print speedup, MPKI and starvation changes.
package main

import (
	"fmt"
	"log"

	"emissary"
)

func main() {
	bench, err := emissary.Benchmark("tomcat")
	if err != nil {
		log.Fatal(err)
	}

	const warmup, measure = 2_000_000, 10_000_000

	run := func(policyText string) emissary.Result {
		opt := emissary.DefaultOptions(bench, emissary.MustPolicy(policyText))
		opt.WarmupInstrs = warmup
		opt.MeasureInstrs = measure
		res, err := emissary.Simulate(opt)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	fmt.Printf("benchmark: %s (footprint %.2f MB target)\n\n", bench.Name, bench.FootprintMB)

	base := run("TPLRU")
	fmt.Printf("TPLRU baseline:      IPC %.4f, L2-I MPKI %.2f, starvation cycles %d\n",
		base.IPC, base.L2IMPKI, base.CommitStarvation)

	emis := run("P(8):S&E&R(1/32)")
	fmt.Printf("P(8):S&E&R(1/32):    IPC %.4f, L2-I MPKI %.2f, starvation cycles %d\n",
		emis.IPC, emis.L2IMPKI, emis.CommitStarvation)

	fmt.Printf("\nspeedup:             %+.2f%%\n", 100*emissary.Speedup(base.Cycles, emis.Cycles))
	fmt.Printf("starvation change:   %+.2f%%\n",
		100*(float64(emis.CommitStarvation)/float64(base.CommitStarvation)-1))
	fmt.Printf("energy change:       %+.2f%%\n", 100*(emis.EnergyPJ/base.EnergyPJ-1))
	fmt.Println("\nEMISSARY's priority marks accumulate over the run; longer -measure")
	fmt.Println("windows (the paper uses 100M instructions) grow the gap.")
}
