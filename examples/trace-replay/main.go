// Trace replay: capture a workload's dynamic instruction stream to a
// compact binary trace, then drive the simulator from the file — the
// workflow for evaluating policies against externally produced traces
// without re-running the workload generator.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"emissary"
	"emissary/internal/trace"
	"emissary/internal/workload"
)

func main() {
	// 1. Capture: stream 3M instructions of kafka into a trace file.
	prof, err := emissary.Benchmark("kafka")
	if err != nil {
		log.Fatal(err)
	}
	prog, err := workload.NewProgram(prof)
	if err != nil {
		log.Fatal(err)
	}
	eng := workload.NewEngine(prog)

	path := filepath.Join(os.TempDir(), "kafka.trc")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	w, err := trace.NewWriter(f)
	if err != nil {
		log.Fatal(err)
	}
	for eng.Instructions() < 3_000_000 {
		ev, ok := eng.NextBlock()
		if !ok {
			break
		}
		if err := w.WriteEvent(ev); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(path)
	fmt.Printf("captured %d block events (%d instructions) to %s (%.1f MB)\n",
		w.Events(), eng.Instructions(), path, float64(info.Size())/(1<<20))

	// 2. Replay the file through two policies.
	for _, policy := range []string{"TPLRU", "P(8):S&E&R(1/32)"} {
		opt := emissary.Options{
			Policy:        emissary.MustPolicy(policy),
			WarmupInstrs:  500_000,
			MeasureInstrs: 2_000_000,
			FDIP:          true,
			NLP:           true,
			TracePath:     path,
		}
		res, err := emissary.Simulate(opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s IPC %.4f  L2-I MPKI %.2f  starvation %d\n",
			policy, res.IPC, res.L2IMPKI, res.CommitStarvation)
	}
	os.Remove(path)
}
