// Ablation benches for the design choices DESIGN.md calls out: each
// target runs the pair (or sweep) of configurations whose difference
// isolates one mechanism, and reports the speedup delta as a metric.
package emissary_test

import (
	"testing"

	"emissary/internal/core"
	"emissary/internal/sim"
	"emissary/internal/stats"
	"emissary/internal/workload"
)

func ablationRun(b *testing.B, policy string, mutate func(*sim.Options)) sim.Result {
	b.Helper()
	prof, _ := workload.ProfileByName("tomcat")
	opt := sim.Options{
		Benchmark:     prof,
		Policy:        core.MustParsePolicy(policy),
		WarmupInstrs:  300_000,
		MeasureInstrs: 1_500_000,
		FDIP:          true,
		NLP:           true,
		Seed:          1,
	}
	if mutate != nil {
		mutate(&opt)
	}
	res, err := sim.Run(opt)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkAblationPersistence: insertion-only bimodality (M:S) vs the
// persistent P(8):S treatment — the paper's line (a).
func BenchmarkAblationPersistence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := ablationRun(b, "M:S", nil)
		p := ablationRun(b, "P(8):S", nil)
		b.ReportMetric(stats.Speedup(m.Cycles, p.Cycles)*100, "persistence-delta-%")
	}
}

// BenchmarkAblationIQEmpty: requiring the empty-issue-queue conjunct —
// the paper's line (b).
func BenchmarkAblationIQEmpty(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := ablationRun(b, "P(8):S", nil)
		se := ablationRun(b, "P(8):S&E", nil)
		b.ReportMetric(stats.Speedup(s.Cycles, se.Cycles)*100, "iq-empty-delta-%")
	}
}

// BenchmarkAblationRandomFilter: the 1/32 selectivity filter — the
// paper's line (c).
func BenchmarkAblationRandomFilter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		se := ablationRun(b, "P(8):S&E", nil)
		ser := ablationRun(b, "P(8):S&E&R(1/32)", nil)
		b.ReportMetric(stats.Speedup(se.Cycles, ser.Cycles)*100, "random-filter-delta-%")
	}
}

// BenchmarkAblationRecencyBase: dual-tree TPLRU vs exact LRU under
// EMISSARY (§4.2: the TPLRU implementation is the hardware-realistic
// one; exact LRU bounds its imprecision).
func BenchmarkAblationRecencyBase(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tplru := ablationRun(b, "P(8):S&E&R(1/32)", nil)
		truelru := ablationRun(b, "P(8):S&E&R(1/32)+LRU", func(o *sim.Options) { o.TrueLRU = true })
		b.ReportMetric(stats.Speedup(truelru.Cycles, tplru.Cycles)*100, "tplru-vs-truelru-%")
	}
}

// BenchmarkAblationFTQDepth: the 24-entry FTQ against shallow and deep
// variants; run-ahead depth determines which misses are tolerated
// (§5.2's "right balance").
func BenchmarkAblationFTQDepth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		shallow := ablationRun(b, "TPLRU", func(o *sim.Options) { o.FTQEntries = 8 })
		std := ablationRun(b, "TPLRU", nil)
		deep := ablationRun(b, "TPLRU", func(o *sim.Options) { o.FTQEntries = 64 })
		b.ReportMetric(stats.Speedup(shallow.Cycles, std.Cycles)*100, "ftq24-vs-8-%")
		b.ReportMetric(stats.Speedup(std.Cycles, deep.Cycles)*100, "ftq64-vs-24-%")
	}
}

// BenchmarkAblationMSHRs: outstanding-miss parallelism in the
// instruction fetch path.
func BenchmarkAblationMSHRs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		few := ablationRun(b, "TPLRU", func(o *sim.Options) { o.MaxMSHRs = 4 })
		std := ablationRun(b, "TPLRU", nil)
		b.ReportMetric(stats.Speedup(few.Cycles, std.Cycles)*100, "mshr16-vs-4-%")
	}
}

// BenchmarkAblationNLP: the next-line prefetchers' contribution to the
// baseline (Table 4 has NLP at every level).
func BenchmarkAblationNLP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		off := ablationRun(b, "TPLRU", func(o *sim.Options) { o.NLP = false })
		on := ablationRun(b, "TPLRU", nil)
		b.ReportMetric(stats.Speedup(off.Cycles, on.Cycles)*100, "nlp-delta-%")
	}
}

// BenchmarkAblationMRC: the §7.3 misprediction recovery cache on top
// of the baseline — short-reuse re-steer relief, orthogonal to
// EMISSARY's long-reuse protection.
func BenchmarkAblationMRC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		off := ablationRun(b, "TPLRU", nil)
		on := ablationRun(b, "TPLRU", func(o *sim.Options) { o.MRCEntries = 32 })
		b.ReportMetric(stats.Speedup(off.Cycles, on.Cycles)*100, "mrc32-delta-%")
	}
}

// BenchmarkAblationMRCPlusEmissary: the combination the paper's §7.3
// predicts "can likely be used together with success".
func BenchmarkAblationMRCPlusEmissary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		emis := ablationRun(b, "P(8):S&E&R(1/32)", nil)
		both := ablationRun(b, "P(8):S&E&R(1/32)", func(o *sim.Options) { o.MRCEntries = 32 })
		b.ReportMetric(stats.Speedup(emis.Cycles, both.Cycles)*100, "mrc-on-emissary-delta-%")
	}
}
