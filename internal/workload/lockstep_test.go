package workload

import (
	"reflect"
	"sync"
	"testing"

	"emissary/internal/trace"
)

func testProfile(t *testing.T) Profile {
	t.Helper()
	prof, ok := ProfileByName("tomcat")
	if !ok {
		t.Fatal("tomcat profile missing")
	}
	return prof
}

// collectRef walks a fresh engine for n events, deep-copying Mem (the
// engine reuses its scratch buffer).
func collectRef(t *testing.T, prof Profile, n int) []trace.BlockEvent {
	t.Helper()
	prog, err := NewProgram(prof)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(prog)
	out := make([]trace.BlockEvent, 0, n)
	for i := 0; i < n; i++ {
		ev, ok := eng.NextBlock()
		if !ok {
			t.Fatalf("engine dried up at event %d", i)
		}
		if ev.Mem != nil {
			ev.Mem = append([]trace.MemRef(nil), ev.Mem...)
		}
		out = append(out, ev)
	}
	return out
}

// TestLockstepReadersMatchEngine drives three readers at deliberately
// different paces and requires each to observe exactly the stream a
// standalone engine produces — event for event, Mem refs included.
func TestLockstepReadersMatchEngine(t *testing.T) {
	const n = 6000
	prof := testProfile(t)
	want := collectRef(t, prof, n)

	prog, err := NewProgram(prof)
	if err != nil {
		t.Fatal(err)
	}
	ls := NewLockstep()
	ls.Start(NewEngine(prog), 3)

	// Interleave: reader 0 takes 3 events per round, reader 1 takes 2,
	// reader 2 takes 1, until each has n. The pace spread forces window
	// advances with live stragglers.
	got := make([][]trace.BlockEvent, 3)
	pace := []int{3, 2, 1}
	for !(len(got[0]) == n && len(got[1]) == n && len(got[2]) == n) {
		for ri := 0; ri < 3; ri++ {
			r := ls.Reader(ri)
			for k := 0; k < pace[ri] && len(got[ri]) < n; k++ {
				ev, ok := r.NextBlock()
				if !ok {
					t.Fatalf("reader %d: stream ended at event %d", ri, len(got[ri]))
				}
				if ev.Mem != nil {
					ev.Mem = append([]trace.MemRef(nil), ev.Mem...)
				}
				got[ri] = append(got[ri], ev)
			}
		}
	}
	for ri := range got {
		if !reflect.DeepEqual(got[ri], want) {
			t.Errorf("reader %d stream diverged from standalone engine", ri)
		}
	}
	if p := ls.Produced(); p != n {
		t.Errorf("engine produced %d events for %d consumed per reader (want exactly %d: shared production)", p, n, n)
	}
}

// TestLockstepWindowAdvance pins the window-advance rule: the buffered
// span tracks the slowest active reader, and releasing the straggler
// lets the head catch up to the remaining minimum.
func TestLockstepWindowAdvance(t *testing.T) {
	prog, err := NewProgram(testProfile(t))
	if err != nil {
		t.Fatal(err)
	}
	ls := NewLockstep()
	ls.Start(NewEngine(prog), 2)
	fast, slow := ls.Reader(0), ls.Reader(1)

	// The fast reader pulls 3 rings' worth while the slow one sits at
	// zero: the ring must grow to keep every unconsumed event.
	total := 3 * lockstepRing
	for i := 0; i < total; i++ {
		if _, ok := fast.NextBlock(); !ok {
			t.Fatalf("fast reader dried up at %d", i)
		}
	}
	if ls.Buffered() != uint64(total) {
		t.Fatalf("buffered %d events, want %d (slow reader at 0 must hold the window open)", ls.Buffered(), total)
	}
	if ls.RingSize() < total {
		t.Fatalf("ring size %d cannot hold %d buffered events", ls.RingSize(), total)
	}

	// The slow reader catches up halfway; the next produce-side advance
	// may only drop events both readers have passed.
	for i := 0; i < total/2; i++ {
		if _, ok := slow.NextBlock(); !ok {
			t.Fatalf("slow reader dried up at %d", i)
		}
	}
	ls.advance()
	if ls.Buffered() != uint64(total-total/2) {
		t.Errorf("buffered %d after slow reader reached %d/%d", ls.Buffered(), total/2, total)
	}

	// Releasing the straggler collapses the window to the fast cursor.
	slow.Release()
	if ls.Buffered() != 0 {
		t.Errorf("buffered %d after releasing the only straggler, want 0", ls.Buffered())
	}
	if _, ok := slow.NextBlock(); ok {
		t.Error("released reader still yields events")
	}
}

// TestLockstepStartReuse re-arms one Lockstep across batches (different
// reader counts, same and different programs) and requires streams
// identical to standalone engines every time — the executor-reuse
// contract the warm batch path relies on.
func TestLockstepStartReuse(t *testing.T) {
	profA := testProfile(t)
	profB, ok := ProfileByName("xapian")
	if !ok {
		t.Fatal("xapian profile missing")
	}
	const n = 1500
	wantA := collectRef(t, profA, n)
	wantB := collectRef(t, profB, n)

	progA, err := NewProgram(profA)
	if err != nil {
		t.Fatal(err)
	}
	progB, err := NewProgram(profB)
	if err != nil {
		t.Fatal(err)
	}
	ls := NewLockstep()
	eng := NewEngine(progA)
	for round, tc := range []struct {
		prog *Program
		want []trace.BlockEvent
		n    int
	}{
		{progA, wantA, 4},
		{progB, wantB, 2},
		{progA, wantA, 1},
	} {
		eng.Reset(tc.prog)
		ls.Start(eng, tc.n)
		for ri := 0; ri < tc.n; ri++ {
			r := ls.Reader(ri)
			for i := 0; i < n; i++ {
				ev, ok := r.NextBlock()
				if !ok {
					t.Fatalf("round %d reader %d: dried up at %d", round, ri, i)
				}
				want := tc.want[i]
				if ev.Addr != want.Addr || ev.NextAddr != want.NextAddr || ev.Taken != want.Taken || len(ev.Mem) != len(want.Mem) {
					t.Fatalf("round %d reader %d event %d: got %+v want %+v", round, ri, i, ev, want)
				}
			}
		}
	}
}

// TestProgramCacheSingleflight hammers one missing key from many
// goroutines: all callers must get the same *Program and synthesis
// must have run exactly once.
func TestProgramCacheSingleflight(t *testing.T) {
	c := NewProgramCache(4)
	prof := testProfile(t)
	const callers = 16
	progs := make([]*Program, callers)
	var wg sync.WaitGroup
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			p, err := c.Get(prof)
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			progs[i] = p
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if progs[i] != progs[0] {
			t.Fatalf("caller %d got a different program instance", i)
		}
	}
	if hits, misses, _ := c.Stats(); misses != 1 {
		t.Errorf("misses = %d (hits %d), want exactly 1 synthesis", misses, hits)
	}
}

// TestProgramCacheLRU fills past capacity and checks eviction order
// (least recently used goes first) plus the full-profile keying that
// keeps distinct parameterizations of one name apart.
func TestProgramCacheLRU(t *testing.T) {
	c := NewProgramCache(2)
	a := testProfile(t)
	b := a
	b.Seed ^= 0x1234
	d := a
	d.FootprintMB *= 0.5 // same name+seed, different params: own entry

	pa, err := c.Get(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(b); err != nil {
		t.Fatal(err)
	}
	// Touch a so b is now least recent; inserting d evicts b.
	if got, err := c.Get(a); err != nil || got != pa {
		t.Fatalf("hit on a returned (%p, %v), want (%p, nil)", got, err, pa)
	}
	pd, err := c.Get(d)
	if err != nil {
		t.Fatal(err)
	}
	if pd == pa {
		t.Fatal("distinct parameterization of the same name shared a program")
	}
	if c.Len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", c.Len())
	}
	hits, misses, evictions := c.Stats()
	if evictions != 1 {
		t.Errorf("evictions = %d, want 1", evictions)
	}
	// a must still be resident (it was most recent when d arrived).
	if got, err := c.Get(a); err != nil || got != pa {
		t.Fatalf("a was evicted instead of b (hits %d misses %d)", hits, misses)
	}
	// b was evicted: refetching it re-synthesizes.
	_, preMiss, _ := c.Stats()
	if _, err := c.Get(b); err != nil {
		t.Fatal(err)
	}
	if _, postMiss, _ := c.Stats(); postMiss != preMiss+1 {
		t.Error("evicted entry served without re-synthesis")
	}
}

// TestProgramCacheError pins the failure path: invalid profiles
// propagate the synthesis error and are not cached.
func TestProgramCacheError(t *testing.T) {
	c := NewProgramCache(2)
	bad := testProfile(t)
	bad.FootprintMB = -1
	if _, err := c.Get(bad); err == nil {
		t.Fatal("invalid profile synthesized")
	}
	if c.Len() != 0 {
		t.Fatalf("failed synthesis left %d entries resident", c.Len())
	}
}
