package workload

import "sync"

// ProgramCache is a bounded, content-addressed cache of synthesized
// programs. A sweep of R policies × S seeds over one benchmark asks for
// the same (name, seed) program R×S times; synthesis is by far the most
// expensive shared step, so the cache makes every job after the first
// reuse one immutable *Program.
//
// The key is the full Profile value — strictly stronger than the
// workload/seed slice of sim.Options.Fingerprint() ("bench=<Name>
// bseed=<Seed>"), which is the cache's observable identity for journal
// purposes. Keying on the whole profile means a custom profile that
// reuses a stock name with different parameters can never be served a
// stale program (the same hazard Fingerprint's documentation warns
// about); it simply occupies its own entry.
//
// Entries are LRU-evicted past the capacity bound, and concurrent
// requests for one missing key are collapsed singleflight-style: one
// caller synthesizes, the rest block on its result. Programs are
// immutable after construction (the engine never writes through its
// *Program), so handing one pointer to many goroutines is sound.
type ProgramCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[Profile]*progEntry
	// Doubly-linked LRU list; head is most recent.
	head, tail *progEntry
	inflight   map[Profile]*progCall

	hits, misses, evictions uint64
}

type progEntry struct {
	key        Profile
	prog       *Program
	prev, next *progEntry
}

// progCall is one in-flight synthesis; done is closed after prog/err
// are set.
type progCall struct {
	done chan struct{}
	prog *Program
	err  error
}

// DefaultProgramCacheSize bounds the shared cache. Programs weigh a few
// MB each; 32 comfortably covers the 13 stock benchmarks plus a rolling
// window of replica-derived seeds, and an LRU sweep pattern (replicas
// are grouped, so each program's uses cluster in time) makes eviction
// of a still-needed entry rare.
const DefaultProgramCacheSize = 32

// SharedPrograms is the process-wide cache every simulation path —
// warm slots, batch executors, and the plain cold runner excepted —
// draws from. Cold runs deliberately bypass it so the throughput
// bench's cold baseline keeps paying full construction cost.
var SharedPrograms = NewProgramCache(DefaultProgramCacheSize)

// NewProgramCache returns an empty cache bounded to capacity entries
// (minimum 1).
func NewProgramCache(capacity int) *ProgramCache {
	if capacity < 1 {
		capacity = 1
	}
	return &ProgramCache{
		capacity: capacity,
		entries:  make(map[Profile]*progEntry, capacity),
		inflight: make(map[Profile]*progCall),
	}
}

// Get returns the program for p, synthesizing it at most once per
// residency no matter how many goroutines ask concurrently. The hit
// path takes one mutex and allocates nothing.
func (c *ProgramCache) Get(p Profile) (*Program, error) {
	c.mu.Lock()
	if e := c.entries[p]; e != nil {
		c.touch(e)
		c.hits++
		c.mu.Unlock()
		return e.prog, nil
	}
	if call := c.inflight[p]; call != nil {
		c.mu.Unlock()
		<-call.done
		return call.prog, call.err
	}
	//lint:ignore raw-goroutine singleflight completion signal; no goroutine is spawned — waiters are runner-pool workers blocking outside the mutex
	call := &progCall{done: make(chan struct{})}
	c.inflight[p] = call
	c.misses++
	c.mu.Unlock()

	prog, err := NewProgram(p)
	if err == nil {
		// Cache-resident programs serve many jobs, so the one-time
		// class-table pass (see buildClassTable) amortizes to ~zero
		// here; building before publication keeps Program immutable
		// from every other goroutine's point of view.
		prog.buildClassTable()
	}

	c.mu.Lock()
	delete(c.inflight, p)
	if err == nil {
		c.insert(p, prog)
	}
	c.mu.Unlock()
	call.prog, call.err = prog, err
	close(call.done)
	return prog, err
}

// Stats reports lifetime hit/miss/eviction counts (observability and
// tests; not part of any result).
func (c *ProgramCache) Stats() (hits, misses, evictions uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}

// Len reports the resident entry count.
func (c *ProgramCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// touch moves e to the LRU head. Caller holds mu.
func (c *ProgramCache) touch(e *progEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// unlink removes e from the list. Caller holds mu.
func (c *ProgramCache) unlink(e *progEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
	if c.head == e {
		c.head = e.next
	}
	if c.tail == e {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// insert adds (p, prog) at the LRU head, evicting the tail when full.
// Caller holds mu.
func (c *ProgramCache) insert(p Profile, prog *Program) {
	if e := c.entries[p]; e != nil {
		// A racing Get built the same program; keep the resident one.
		c.touch(e)
		return
	}
	for len(c.entries) >= c.capacity {
		victim := c.tail
		if victim == nil {
			break
		}
		c.unlink(victim)
		delete(c.entries, victim.key)
		c.evictions++
	}
	e := &progEntry{key: p, prog: prog}
	c.entries[p] = e
	c.touch(e)
}
