package workload

import (
	"emissary/internal/branch"
	"emissary/internal/rng"
	"emissary/internal/trace"
)

// Engine executes a Program, producing the oracle committed-path
// stream of basic-block events (implementing trace.Source). The walk
// is unbounded — the dispatcher loops forever — so callers stop after
// however many instructions they want.
type Engine struct {
	prog *Program
	r    *rng.Xoshiro256

	cur   int32    // current block index
	stack []uint64 // return addresses
	trips map[uint64]int32

	// Per-request data state.
	recordBase   uint64
	recordCursor uint64
	requests     uint64

	instrs uint64
	memBuf []trace.MemRef
}

// NewEngine starts an execution of prog at its dispatcher.
func NewEngine(prog *Program) *Engine {
	e := &Engine{
		prog:  prog,
		r:     rng.NewXoshiro256(rng.Mix2(prog.profile.Seed, 0xe4617e)),
		trips: make(map[uint64]int32),
		stack: make([]uint64, 0, 64),
	}
	e.cur = prog.index[prog.dispatcher]
	e.newRecord()
	return e
}

// Reset restarts the engine at prog's dispatcher, reusing every
// allocation: the architectural state afterwards is byte-identical to
// what NewEngine(prog) would build. prog must come from the same
// warm-pool slot or be freshly built; the engine never mutates it.
//
//vet:hot
func (e *Engine) Reset(prog *Program) {
	e.prog = prog
	e.r.Seed(rng.Mix2(prog.profile.Seed, 0xe4617e))
	e.cur = prog.index[prog.dispatcher]
	e.stack = e.stack[:0]
	clear(e.trips)
	e.recordBase = 0
	e.recordCursor = 0
	e.requests = 0
	e.instrs = 0
	e.memBuf = e.memBuf[:0]
	e.newRecord()
}

// Instructions returns the committed instruction count so far.
func (e *Engine) Instructions() uint64 { return e.instrs }

// Requests returns the number of dispatched requests so far.
func (e *Engine) Requests() uint64 { return e.requests }

// BlockInfo implements trace.Source.
func (e *Engine) BlockInfo(addr uint64) (branch.BTBEntry, bool) {
	return e.prog.BlockInfo(addr)
}

// InstrClass implements trace.Source.
func (e *Engine) InstrClass(pc uint64) trace.Class {
	return e.prog.InstrClass(pc)
}

// BlocksInLine implements trace.Source.
func (e *Engine) BlocksInLine(line uint64, out []branch.BTBEntry) []branch.BTBEntry {
	return e.prog.BlocksInLine(line, out)
}

// newRecord rotates the per-request record pointer within the cold
// data pool.
func (e *Engine) newRecord() {
	span := uint64(e.prog.profile.ColdDataMB * 1024 * 1024)
	rec := uint64(e.prog.profile.RecordKB) * 1024
	if span <= rec {
		e.recordBase = coldBase
		return
	}
	slots := span / rec
	e.recordBase = coldBase + rec*uint64(e.r.Int63n(int64(slots)))
}

// dataAddr generates the byte address for the memory instruction at
// pc. Heap accesses have per-PC spatial affinity — each static memory
// instruction prefers a home region it strides around, with an
// occasional excursion across the whole pool — which is what gives
// real programs their L1D hit rates.
func (e *Engine) dataAddr(pc uint64) uint64 {
	switch e.prog.poolOf(pc) {
	case poolStack:
		// Hot per-frame slots: depth-scaled base plus a per-PC slot.
		frame := stackBase - uint64(len(e.stack))*256
		return frame + (rng.Mix2(pc, 0x57ac)&0x1f)*8
	case poolCold:
		// Records are scanned roughly sequentially (parse/serialize
		// passes), the pattern next-line prefetchers are built for.
		off := e.recordCursor % uint64(e.prog.profile.RecordKB*1024)
		e.recordCursor += 24
		return e.recordBase + off&^7
	default:
		pool := uint64(e.prog.profile.HotDataKB) * 1024
		if e.r.Bool(0.2) {
			// Pool-wide excursion: the long-reuse tail of the heap.
			return hotBase + uint64(e.r.Int63n(int64(pool)))&^7
		}
		// Home region: a per-PC 512-byte window.
		home := rng.Mix2(pc, 0x40e) % pool &^ 511
		return hotBase + home + uint64(e.r.Intn(512))&^7
	}
}

// NextBlock implements trace.Source: emit the current block's event
// and advance the architectural state.
func (e *Engine) NextBlock() (trace.BlockEvent, bool) {
	b := &e.prog.blocks[e.cur]
	ev := trace.BlockEvent{
		Addr:      b.Addr,
		NumInstrs: int(b.NInstr),
		EndKind:   b.End,
	}

	// Memory references for body instructions.
	e.memBuf = e.memBuf[:0]
	n := int(b.NInstr)
	bodyEnd := n
	if b.End != branch.KindFallthrough {
		bodyEnd = n - 1 // terminator is a branch, not a memory op
	}
	for i := 0; i < bodyEnd; i++ {
		pc := b.Addr + instrBytes*uint64(i)
		switch e.prog.InstrClass(pc) {
		case trace.ClassLoad:
			//lint:ignore hot-noalloc memBuf is rewound to [:0] per block and capped by MaxBlockMem refs, so capacity is reached within the first few blocks and never grows again
			e.memBuf = append(e.memBuf, trace.MemRef{Index: i, Addr: e.dataAddr(pc)})
		case trace.ClassStore:
			//lint:ignore hot-noalloc same MaxBlockMem-bounded scratch as the load arm above
			e.memBuf = append(e.memBuf, trace.MemRef{Index: i, Addr: e.dataAddr(pc), Store: true})
		}
	}
	if len(e.memBuf) > 0 {
		// Hand out the scratch buffer directly; the Source contract
		// makes Mem valid only until the next NextBlock call.
		ev.Mem = e.memBuf
	}

	// Resolve the successor.
	var next uint64
	switch b.End {
	case branch.KindFallthrough:
		next = b.FallThrough()
	case branch.KindJump:
		next = b.Target
		ev.Taken = true
	case branch.KindCond:
		taken := false
		switch b.Behavior {
		case BehaveLoop:
			rem, ok := e.trips[b.Addr]
			if !ok {
				rem = int32(b.MeanTrips)
			}
			if rem > 1 {
				taken = true
				e.trips[b.Addr] = rem - 1
			} else {
				delete(e.trips, b.Addr)
			}
		default: // BehaveBiased
			taken = e.r.Bool(float64(b.Bias))
		}
		ev.Taken = taken
		if taken {
			next = b.Target
		} else {
			next = b.FallThrough()
		}
	case branch.KindCall:
		//lint:ignore hot-noalloc the return stack starts at capacity 64 and doubles to the program's maximum call depth, a static property of the generated call tree
		e.stack = append(e.stack, b.FallThrough())
		next = b.Target
		ev.Taken = true
	case branch.KindIndirectCall, branch.KindIndirect:
		if b.End == branch.KindIndirectCall {
			//lint:ignore hot-noalloc same call-depth-bounded stack as the direct-call arm above
			e.stack = append(e.stack, b.FallThrough())
		}
		if b.Addr == e.prog.dispatcher {
			// New request: pick a service and rotate the data record.
			idx := e.prog.serviceChooser.Choose(e.r)
			next = e.prog.serviceEntries[idx]
			e.requests++
			e.newRecord()
		} else {
			next = b.ITargets[e.r.Intn(len(b.ITargets))]
		}
		ev.Taken = true
	case branch.KindReturn:
		if len(e.stack) > 0 {
			next = e.stack[len(e.stack)-1]
			e.stack = e.stack[:len(e.stack)-1]
		} else {
			next = e.prog.dispatcher
		}
		ev.Taken = true
	}

	ev.NextAddr = next
	idx, ok := e.prog.index[next]
	if !ok {
		// A successor outside the program would be a generator bug;
		// recover to the dispatcher to keep the stream alive.
		idx = e.prog.index[e.prog.dispatcher]
	}
	e.cur = idx
	e.instrs += uint64(b.NInstr)
	return ev, true
}
