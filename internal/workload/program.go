package workload

import (
	"fmt"
	"math"

	"emissary/internal/branch"
	"emissary/internal/rng"
	"emissary/internal/trace"
)

// Address-space layout. Instruction addresses are 4-byte aligned
// (fixed-width encoding, §5.2); the data pools live far above code.
const (
	instrBytes = 4
	codeBase   = uint64(0x0001_0000_0000)
	stackBase  = uint64(0x7000_0000_0000)
	hotBase    = uint64(0x6000_0000_0000)
	coldBase   = uint64(0x5000_0000_0000)

	// blockMaxInstr caps basic-block size (a BTB entry's size field).
	blockMaxInstr = 14
)

// Behavior tells the engine how a conditional terminator resolves.
type Behavior uint8

// Behaviors.
const (
	BehaveNone   Behavior = iota
	BehaveLoop            // back-edge, taken while trips remain
	BehaveBiased          // data-dependent, P(taken) = Bias
)

// Block is one static basic block.
type Block struct {
	Addr      uint64
	NInstr    uint16
	End       branch.Kind
	Behavior  Behavior
	Bias      float32
	MeanTrips float32
	Target    uint64   // taken/call target
	ITargets  []uint64 // indirect-terminator targets
	IWeights  []float64
}

// FallThrough returns the next sequential block's address.
func (b *Block) FallThrough() uint64 {
	return b.Addr + instrBytes*uint64(b.NInstr)
}

// BranchPC returns the terminator's address.
func (b *Block) BranchPC() uint64 {
	return b.Addr + instrBytes*uint64(b.NInstr-1)
}

// Program is a complete synthetic binary: the static CFG plus the
// behavioral metadata the engine executes.
type Program struct {
	profile Profile

	blocks []Block
	index  map[uint64]int32

	dispatcher     uint64 // dispatch-loop head block
	serviceEntries []uint64
	serviceChooser *rng.Chooser

	totalInstrs int
	classSeed   uint64
	// classes caches InstrClass for every PC in the code span, indexed
	// by (pc-codeBase)/instrBytes; nil until buildClassTable runs. The
	// class is a pure function of the PC, so the table is exactly the
	// hash's output precomputed (one byte per instruction, ~footprint/4
	// extra).
	classes []trace.Class
}

// Profile returns the generating profile.
func (p *Program) Profile() Profile { return p.profile }

// NumBlocks returns the static block count.
func (p *Program) NumBlocks() int { return len(p.blocks) }

// TotalInstrs returns the static instruction count.
func (p *Program) TotalInstrs() int { return p.totalInstrs }

// FootprintBytes returns the instruction footprint (Fig 4's metric is
// unique lines touched x line size; the static size is its upper
// bound and, for these workloads, its steady-state value).
func (p *Program) FootprintBytes() int { return p.totalInstrs * instrBytes }

// BlockAt returns the static block starting at addr.
func (p *Program) BlockAt(addr uint64) (*Block, bool) {
	if i, ok := p.index[addr]; ok {
		return &p.blocks[i], true
	}
	return nil, false
}

// BlockInfo implements the static-descriptor query of trace.Source.
func (p *Program) BlockInfo(addr uint64) (branch.BTBEntry, bool) {
	b, ok := p.BlockAt(addr)
	if !ok {
		return branch.BTBEntry{}, false
	}
	return branch.BTBEntry{
		Start:     b.Addr,
		NumInstrs: int(b.NInstr),
		EndKind:   b.End,
		Target:    b.Target,
	}, true
}

// BlocksInLine implements trace.Source's pre-decoder query: all blocks
// starting within the 64-byte line. Blocks are laid out contiguously
// in address order, so a binary search finds the first candidate.
func (p *Program) BlocksInLine(line uint64, out []branch.BTBEntry) []branch.BTBEntry {
	lo, hi := line<<6, (line+1)<<6
	// Binary search for the first block with Addr >= lo.
	i, j := 0, len(p.blocks)
	for i < j {
		mid := (i + j) / 2
		if p.blocks[mid].Addr < lo {
			i = mid + 1
		} else {
			j = mid
		}
	}
	for ; i < len(p.blocks) && p.blocks[i].Addr < hi; i++ {
		b := &p.blocks[i]
		out = append(out, branch.BTBEntry{
			Start:     b.Addr,
			NumInstrs: int(b.NInstr),
			EndKind:   b.End,
			Target:    b.Target,
		})
	}
	return out
}

// InstrClass returns the static class of the instruction at pc. Block
// terminators are classified by the front-end from the block
// descriptor; for body instructions the class is a deterministic hash
// of the PC thresholded by the profile's instruction mix. When the
// per-PC table is built (cache-resident programs; see
// buildClassTable), in-span PCs — every PC the engine ever emits —
// are served from it; anything else falls back to the hash, so both
// paths return identical values by construction.
//
//vet:hot
func (p *Program) InstrClass(pc uint64) trace.Class {
	if off := pc - codeBase; off&(instrBytes-1) == 0 {
		if i := off / instrBytes; i < uint64(len(p.classes)) {
			return p.classes[i]
		}
	}
	return p.classOf(pc)
}

// classOf is the hash behind InstrClass; NewProgram evaluates it once
// per PC to fill the table.
func (p *Program) classOf(pc uint64) trace.Class {
	h := rng.Mix2(p.classSeed, pc)
	u := float64(h>>11) / (1 << 53)
	switch {
	case u < p.profile.LoadFrac:
		return trace.ClassLoad
	case u < p.profile.LoadFrac+p.profile.StoreFrac:
		return trace.ClassStore
	case u < p.profile.LoadFrac+p.profile.StoreFrac+0.08:
		return trace.ClassMul
	case u < p.profile.LoadFrac+p.profile.StoreFrac+0.14:
		return trace.ClassFP
	default:
		return trace.ClassALU
	}
}

// memPool classifies a memory instruction's pool (stable per PC).
type memPool uint8

const (
	poolStack memPool = iota
	poolHot
	poolCold
)

func (p *Program) poolOf(pc uint64) memPool {
	h := rng.Mix2(p.classSeed^0xda7a, pc)
	u := float64(h>>11) / (1 << 53)
	switch {
	case u < p.profile.StackFrac:
		return poolStack
	case u < p.profile.StackFrac+p.profile.ColdFrac:
		return poolCold
	default:
		return poolHot
	}
}

// generator carries program-synthesis state.
type generator struct {
	prog *Program
	r    *rng.Xoshiro256
	next uint64 // next block address
}

// NewProgram synthesizes the static program for a profile.
func NewProgram(profile Profile) (*Program, error) {
	if err := profile.Validate(); err != nil {
		return nil, err
	}
	prog := &Program{
		profile:   profile,
		index:     make(map[uint64]int32),
		classSeed: rng.Mix2(profile.Seed, 0xc1a55),
	}
	g := &generator{
		prog: prog,
		r:    rng.NewXoshiro256(rng.Mix2(profile.Seed, 0xc0de)),
		next: codeBase,
	}

	targetInstrs := int(profile.FootprintMB * 1024 * 1024 / instrBytes)
	hotBudget := int(float64(targetInstrs) * profile.HotLibFrac)

	// 1. Hot shared library: small leaf utility functions.
	var hotEntries []uint64
	for used := 0; used < hotBudget; {
		size := 24 + g.r.Intn(48)
		entry, n := g.buildFunction(size, nil, nil)
		hotEntries = append(hotEntries, entry)
		used += n
	}
	if len(hotEntries) == 0 {
		// Degenerate profiles still need at least one callee.
		entry, _ := g.buildFunction(24, nil, nil)
		hotEntries = append(hotEntries, entry)
	}

	// 2. Services: each is a call tree over private functions that
	// also leans on the hot library.
	serviceBudget := (targetInstrs - hotBudget) / profile.NumServices
	if serviceBudget < 64 {
		serviceBudget = 64
	}
	for s := 0; s < profile.NumServices; s++ {
		entry := g.buildService(serviceBudget, hotEntries)
		prog.serviceEntries = append(prog.serviceEntries, entry)
	}
	// The tree builder under-spends its budget (leftover child shares
	// below the minimum function size are dropped); top the program up
	// with extra services until the footprint target is met, keeping
	// Figure 4 calibrated.
	for prog.totalInstrs < targetInstrs-serviceBudget/2 {
		entry := g.buildService(serviceBudget, hotEntries)
		prog.serviceEntries = append(prog.serviceEntries, entry)
	}

	// 3. Dispatcher: an infinite loop indirect-calling one service per
	// iteration, with Zipf-distributed popularity.
	weights := make([]float64, len(prog.serviceEntries))
	for i := range weights {
		weights[i] = zipfWeight(i, profile.ServiceZipf)
	}
	prog.serviceChooser = rng.NewChooser(weights)

	head := g.addBlock(Block{
		NInstr:   4,
		End:      branch.KindIndirectCall,
		ITargets: prog.serviceEntries,
		IWeights: weights,
	})
	g.addBlock(Block{
		NInstr: 2,
		End:    branch.KindJump,
		Target: head,
	})
	prog.dispatcher = head

	if len(prog.blocks) == 0 {
		return nil, fmt.Errorf("workload %s: generated empty program", profile.Name)
	}
	return prog, nil
}

// buildClassTable precomputes the class of every instruction in the
// code span (blocks are laid out contiguously from codeBase, so index
// i maps to PC codeBase + instrBytes*i). The front-end classifies
// every body instruction of every fetched block, making the class
// hash one of the hottest pure functions in the simulator; the table
// turns it into a byte load. Building costs one hash pass over the
// static footprint, so it runs only when a program enters the shared
// cache — where many jobs amortize it — and not in NewProgram, which
// one-shot cold runs pay per job. Idempotent; must complete before
// the program is published to concurrent readers.
func (p *Program) buildClassTable() {
	if p.classes != nil {
		return
	}
	p.classes = make([]trace.Class, p.totalInstrs)
	for i := range p.classes {
		p.classes[i] = p.classOf(codeBase + instrBytes*uint64(i))
	}
}

// zipfWeight gives rank i (0-based) weight 1/(i+1)^s.
func zipfWeight(i int, s float64) float64 {
	if s <= 0 {
		return 1.0
	}
	return 1.0 / math.Pow(float64(i+1), s)
}

// addBlock appends a block at the next address and returns its address.
func (g *generator) addBlock(b Block) uint64 {
	b.Addr = g.next
	if b.NInstr == 0 {
		b.NInstr = 1
	}
	if b.NInstr > blockMaxInstr {
		b.NInstr = blockMaxInstr
	}
	g.prog.index[b.Addr] = int32(len(g.prog.blocks))
	g.prog.blocks = append(g.prog.blocks, b)
	g.prog.totalInstrs += int(b.NInstr)
	g.next += instrBytes * uint64(b.NInstr)
	return b.Addr
}

// blockSize draws a block size around the profile mean.
func (g *generator) blockSize() uint16 {
	mean := g.prog.profile.AvgBlockInstr
	n := 2 + g.r.Geometric(float64(mean-2))
	if n > blockMaxInstr {
		n = blockMaxInstr
	}
	return uint16(n)
}

// callSite is a call the function body must embed.
type callSite struct {
	target   uint64
	variants []uint64 // non-empty: indirect call among variants
}

// buildFunction lays out one function of roughly ownInstrs body
// instructions embedding the given call sites, returning its entry
// address and the instructions actually emitted.
func (g *generator) buildFunction(ownInstrs int, calls []callSite, hotEntries []uint64) (uint64, int) {
	p := g.prog.profile
	startBlocks := len(g.prog.blocks)
	entry := uint64(0)
	emitted := 0
	callIdx := 0

	record := func(addr uint64) {
		if entry == 0 {
			entry = addr
		}
	}

	for emitted < ownInstrs || callIdx < len(calls) {
		switch {
		case callIdx < len(calls) && (emitted >= ownInstrs || g.r.Bool(0.35)):
			// Call block.
			cs := calls[callIdx]
			callIdx++
			b := Block{NInstr: g.blockSize()}
			if len(cs.variants) > 0 {
				b.End = branch.KindIndirectCall
				b.ITargets = cs.variants
			} else {
				b.End = branch.KindCall
				b.Target = cs.target
			}
			record(g.addBlock(b))
			emitted += int(b.NInstr)

		case g.r.Bool(p.LoopFrac):
			// Loop: 1-2 body blocks, back edge on the last.
			bodyBlocks := 1 + g.r.Intn(2)
			var head uint64
			for i := 0; i < bodyBlocks; i++ {
				if i == bodyBlocks-1 {
					// Per-loop trip counts are fixed at build time:
					// real loops mostly iterate the same number of
					// times per activation, a pattern history-based
					// predictors learn.
					trips := 2 + g.r.Geometric(p.AvgLoopTrips-2)
					b := Block{
						NInstr:    g.blockSize(),
						End:       branch.KindCond,
						Behavior:  BehaveLoop,
						MeanTrips: float32(trips),
					}
					addr := g.addBlock(b)
					if i == 0 {
						head = addr
					}
					g.prog.blocks[len(g.prog.blocks)-1].Target = head
					record(addr)
					emitted += int(b.NInstr)
				} else {
					b := Block{NInstr: g.blockSize(), End: branch.KindFallthrough}
					addr := g.addBlock(b)
					if i == 0 {
						head = addr
					}
					record(addr)
					emitted += int(b.NInstr)
				}
			}

		case g.r.Bool(0.45):
			// Diamond: cond skips the next block.
			hard := g.r.Bool(p.HardBranchFrac)
			bias := 0.995 // error paths, null checks: essentially static
			if hard {
				bias = p.HardBranchBias
			}
			cond := Block{
				NInstr:   g.blockSize(),
				End:      branch.KindCond,
				Behavior: BehaveBiased,
				Bias:     float32(bias),
			}
			condAddr := g.addBlock(cond)
			record(condAddr)
			emitted += int(cond.NInstr)
			then := Block{NInstr: g.blockSize(), End: branch.KindFallthrough}
			g.addBlock(then)
			emitted += int(then.NInstr)
			// Taken path skips the then-block.
			g.prog.blocks[g.prog.index[condAddr]].Target = g.next

		case len(hotEntries) > 0 && g.r.Bool(0.25):
			// Utility call into the hot library.
			b := Block{
				NInstr: g.blockSize(),
				End:    branch.KindCall,
				Target: hotEntries[g.r.Intn(len(hotEntries))],
			}
			record(g.addBlock(b))
			emitted += int(b.NInstr)

		default:
			b := Block{NInstr: g.blockSize(), End: branch.KindFallthrough}
			record(g.addBlock(b))
			emitted += int(b.NInstr)
		}
	}

	// Terminating return block.
	ret := Block{NInstr: 2, End: branch.KindReturn}
	record(g.addBlock(ret))
	emitted += int(ret.NInstr)

	_ = startBlocks
	return entry, emitted
}

// buildService generates one service: a strict call tree of private
// functions (each private function called from exactly one site, so a
// request touches the whole tree once) decorated with hot-library
// calls and indirect-call variant groups.
func (g *generator) buildService(budget int, hotEntries []uint64) uint64 {
	p := g.prog.profile
	// Reserve a slice of the budget for variant leaves.
	variantShare := 0.2
	leafBudget := int(float64(budget) * variantShare)
	treeBudget := budget - leafBudget

	// Build a variant group: V sibling leaf functions targeted by one
	// indirect call site.
	var variantGroup []uint64
	if p.VariantFanout > 1 && leafBudget > 48 {
		per := leafBudget / p.VariantFanout
		if per < 24 {
			per = 24
		}
		for v := 0; v < p.VariantFanout; v++ {
			entry, _ := g.buildFunction(per, nil, hotEntries)
			variantGroup = append(variantGroup, entry)
		}
	}

	return g.buildTree(treeBudget, variantGroup, hotEntries, 0)
}

// buildTree recursively builds the service call tree bottom-up.
func (g *generator) buildTree(budget int, variants []uint64, hotEntries []uint64, depth int) uint64 {
	own := 60 + g.r.Intn(120)
	if own > budget {
		own = budget
	}
	remaining := budget - own

	var calls []callSite
	if depth < 5 && remaining > 96 {
		nChildren := 1 + g.r.Intn(3)
		per := remaining / nChildren
		for c := 0; c < nChildren; c++ {
			if per < 64 {
				break
			}
			child := g.buildTree(per, nil, hotEntries, depth+1)
			calls = append(calls, callSite{target: child})
		}
	}
	if len(variants) > 0 {
		calls = append(calls, callSite{variants: variants})
	}

	entry, _ := g.buildFunction(own, calls, hotEntries)
	return entry
}
