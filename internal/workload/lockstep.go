package workload

import (
	"emissary/internal/branch"
	"emissary/internal/trace"
)

// lockstepRing is the initial ring capacity in block events (a power
// of two). Batch members are stepped round-robin in bounded turns, so
// the fast-to-slow cursor spread is roughly one turn of blocks plus the
// in-flight front-end window; the ring doubles on demand when a batch's
// spread exceeds it and then stays at its high-water mark for the
// executor's lifetime.
const lockstepRing = 2048

// lockstepMemPerEvent sizes the initial packed ref arena relative to
// the ring: basic blocks average one or two memory references, so a few
// refs of arena per buffered event covers the live window without the
// MaxBlockMem-stride waste a fixed-slot arena would carry (16 slots per
// event would inflate the arena ~8x past its live data and evict the
// host caches the simulation itself needs).
const lockstepMemPerEvent = 4

// Lockstep fans one Engine's committed-path block stream out to R
// readers, so R simulations whose architectural stream is identical
// (same workload profile and seed, differing only in policy, geometry,
// or core knobs) pay for workload generation once instead of R times.
//
// Events live in a ring buffer addressed by absolute sequence number.
// Each reader consumes at its own pace — cycle skipping and stall
// behaviour make core rates differ — and the window advances past the
// slowest still-active reader: producing into a full ring first
// recomputes the minimum live cursor, and only grows the ring when the
// slowest reader genuinely still needs the oldest buffered event.
//
// Memory references are packed into a shared arena ring (each event's
// refs are one contiguous run; the run wraps to the arena start rather
// than splitting), which narrows the trace.Source Mem contract
// slightly: a returned event's Mem is valid only until the next
// NextBlock call on ANY reader of the same Lockstep, not just its own.
// The pipeline front-end copies Mem synchronously inside the call that
// consumes the event, and the batch driver steps cores one at a time
// from a single goroutine, so the narrowed contract holds by
// construction. A Lockstep is NOT safe for concurrent use.
type Lockstep struct {
	eng  *Engine
	prog *Program // engine's program, cached for static queries

	buf    []trace.BlockEvent // ring storage, power-of-two length
	memPos []int32            // per-slot: arena cursor at the event's production
	mask   uint64
	head   uint64 // oldest absolute sequence number still buffered
	next   uint64 // absolute sequence number of the next event produced

	mem     []trace.MemRef // packed ref arena, ring with tail padding
	memNext int            // next free arena index

	readers []LockstepReader
	n       int
}

// LockstepReader is one member's view of the shared stream; it
// implements trace.Source. Readers are owned by their Lockstep and
// reset by Start — callers must not retain them across Start calls.
type LockstepReader struct {
	ls   *Lockstep
	pos  uint64
	done bool
}

// NewLockstep returns an empty fan-out; Start arms it.
func NewLockstep() *Lockstep {
	return &Lockstep{}
}

// Start (re)arms the fan-out over eng for n readers, reusing the ring
// and reader storage from previous batches. eng must be positioned at
// the start of the desired stream (freshly built or Reset) and is
// driven exclusively by the Lockstep until the batch ends.
func (ls *Lockstep) Start(eng *Engine, n int) {
	ls.eng = eng
	ls.prog = eng.prog
	if ls.buf == nil {
		ls.buf = make([]trace.BlockEvent, lockstepRing)
		ls.memPos = make([]int32, lockstepRing)
		ls.mem = make([]trace.MemRef, lockstepRing*lockstepMemPerEvent)
		ls.mask = lockstepRing - 1
	}
	ls.head, ls.next = 0, 0
	ls.memNext = 0
	if cap(ls.readers) < n {
		ls.readers = make([]LockstepReader, n)
	}
	ls.readers = ls.readers[:n]
	ls.n = n
	for i := range ls.readers {
		ls.readers[i] = LockstepReader{ls: ls}
	}
}

// Reader returns the i'th reader of the current batch. The pointer is
// valid until the next Start call.
func (ls *Lockstep) Reader(i int) *LockstepReader {
	return &ls.readers[i]
}

// Produced reports how many events the shared engine has emitted so
// far (observability and tests).
func (ls *Lockstep) Produced() uint64 { return ls.next }

// Buffered reports the current live window size in events.
func (ls *Lockstep) Buffered() uint64 { return ls.next - ls.head }

// RingSize reports the current ring capacity in events.
func (ls *Lockstep) RingSize() int { return len(ls.buf) }

// Release marks the reader done — its member failed or finished its
// run — so the window stops waiting on its cursor. Further NextBlock
// calls on a released reader report end of stream.
func (r *LockstepReader) Release() {
	if r.done {
		return
	}
	r.done = true
	// Let the window advance immediately past a straggler that just
	// dropped out; nothing references its cursor anymore.
	r.ls.advance()
}

// Consumed reports how many events the reader has taken.
func (r *LockstepReader) Consumed() uint64 { return r.pos }

// NextBlock implements trace.Source. It is the batch stepping path's
// inner loop: a buffered event is one ring load, and producing a new
// one delegates to the shared Engine plus a bounded arena copy — both
// allocation-free in steady state (the ring growth below is the
// amortized exception).
//
//vet:hot
func (r *LockstepReader) NextBlock() (trace.BlockEvent, bool) {
	if r.done {
		return trace.BlockEvent{}, false
	}
	ls := r.ls
	if r.pos == ls.next && !ls.produce() {
		return trace.BlockEvent{}, false
	}
	ev := ls.buf[r.pos&ls.mask]
	r.pos++
	return ev, true
}

// BlockInfo implements trace.Source (static query, shared program).
func (r *LockstepReader) BlockInfo(addr uint64) (branch.BTBEntry, bool) {
	return r.ls.prog.BlockInfo(addr)
}

// InstrClass implements trace.Source.
func (r *LockstepReader) InstrClass(pc uint64) trace.Class {
	return r.ls.prog.InstrClass(pc)
}

// BlocksInLine implements trace.Source.
func (r *LockstepReader) BlocksInLine(line uint64, out []branch.BTBEntry) []branch.BTBEntry {
	return r.ls.prog.BlocksInLine(line, out)
}

// produce appends one engine event to the ring, advancing the window
// (and growing the ring only as a last resort) when full.
func (ls *Lockstep) produce() bool {
	if ls.next-ls.head == uint64(len(ls.buf)) {
		ls.advance()
		if ls.next-ls.head == uint64(len(ls.buf)) {
			ls.grow()
		}
	}
	ev, ok := ls.eng.NextBlock()
	if !ok {
		return false
	}
	slot := ls.next & ls.mask
	k := len(ev.Mem)
	start := ls.reserveMem(k)
	ls.memPos[slot] = int32(start)
	if k > 0 {
		copy(ls.mem[start:start+k], ev.Mem)
		ev.Mem = ls.mem[start : start+k : start+k]
		ls.memNext = start + k
	}
	ls.buf[slot] = ev
	ls.next++
	return true
}

// reserveMem finds a contiguous arena run of k refs that does not
// overlap any buffered event's refs. A run never splits across the
// arena end: when the tail is too short it wraps to index zero, leaving
// the tail as dead padding until the window passes it.
func (ls *Lockstep) reserveMem(k int) int {
	if k == 0 {
		return ls.memNext
	}
	for {
		start := ls.memNext
		if start+k > len(ls.mem) {
			start = 0
		}
		if ls.memFits(start, k) {
			return start
		}
		// The candidate run still holds live refs: first try advancing
		// the window past drained events, then grow as a last resort.
		head := ls.head
		ls.advance()
		if ls.head != head && ls.memFits(start, k) {
			return start
		}
		ls.growMem()
	}
}

// memFits reports whether the run [start, start+k) avoids the live
// arena region — the ring-ordered span from the oldest buffered event's
// cursor to memNext.
func (ls *Lockstep) memFits(start, k int) bool {
	if ls.head == ls.next {
		return true // no buffered events, nothing live
	}
	lo := int(ls.memPos[ls.head&ls.mask])
	hi := ls.memNext
	end := start + k
	if lo <= hi {
		// Live span is [lo, hi) without wrap; an empty span (all
		// buffered events carry zero refs) conflicts with nothing.
		return end <= lo || start >= hi
	}
	// Live span wraps: [lo, len) and [0, hi). The strict bound keeps
	// the gap from filling completely: memNext landing exactly on lo
	// would make the full arena indistinguishable from an empty one.
	return start >= hi && end < lo
}

// growMem doubles the packed arena and repacks every buffered event's
// refs contiguously from index zero.
func (ls *Lockstep) growMem() {
	old := ls.mem
	//lint:ignore hot-noalloc arena growth doubles to the live window's high-water ref count and then never recurs for this executor
	ls.mem = make([]trace.MemRef, 2*len(old))
	cursor := 0
	for seq := ls.head; seq < ls.next; seq++ {
		slot := seq & ls.mask
		ev := &ls.buf[slot]
		k := len(ev.Mem)
		ls.memPos[slot] = int32(cursor)
		if k > 0 {
			copy(ls.mem[cursor:cursor+k], ev.Mem)
			ev.Mem = ls.mem[cursor : cursor+k : cursor+k]
			cursor += k
		}
	}
	ls.memNext = cursor
}

// advance moves the window head up to the slowest still-active
// reader's cursor (or to the production point when none remain).
func (ls *Lockstep) advance() {
	min := ls.next
	for i := range ls.readers {
		r := &ls.readers[i]
		if !r.done && r.pos < min {
			min = r.pos
		}
	}
	ls.head = min
}

// grow doubles the event ring, re-homing every live event and its
// arena cursor; the refs themselves stay where they are. Capacity
// never shrinks, so growth is amortized over the executor's lifetime.
func (ls *Lockstep) grow() {
	oldBuf, oldPos, oldMask := ls.buf, ls.memPos, ls.mask
	size := uint64(len(oldBuf)) * 2
	//lint:ignore hot-noalloc ring growth doubles to the batch's high-water cursor spread and then never recurs for this executor
	ls.buf = make([]trace.BlockEvent, size)
	//lint:ignore hot-noalloc cursor table growth mirrors the ring doubling above; both are one-time high-water events, not per-event costs
	ls.memPos = make([]int32, size)
	ls.mask = size - 1
	for seq := ls.head; seq < ls.next; seq++ {
		ls.buf[seq&ls.mask] = oldBuf[seq&oldMask]
		ls.memPos[seq&ls.mask] = oldPos[seq&oldMask]
	}
}
