package workload

import (
	"testing"

	"emissary/internal/rng"
	"emissary/internal/trace"
)

// benchProgram builds one stock program for the class benchmarks.
func benchProgram(b *testing.B) *Program {
	b.Helper()
	profs := Profiles()
	p, err := NewProgram(profs[0])
	if err != nil {
		b.Fatal(err)
	}
	p.buildClassTable()
	return p
}

// benchPCs draws a pseudo-random sample of in-span instruction PCs,
// mimicking the front-end's access pattern (classification follows
// fetch, which hops across the footprint rather than streaming).
func benchPCs(p *Program, n int) []uint64 {
	r := rng.NewXoshiro256(1)
	pcs := make([]uint64, n)
	span := uint64(p.TotalInstrs())
	for i := range pcs {
		pcs[i] = codeBase + instrBytes*(r.Uint64()%span)
	}
	return pcs
}

// TestInstrClassTableMatchesHash pins the table's contract: for every
// instruction PC in the code span the cached class equals the hash,
// and out-of-span or unaligned PCs take the fallback (which IS the
// hash), so building the table can never change a classification.
func TestInstrClassTableMatchesHash(t *testing.T) {
	for _, prof := range Profiles()[:3] {
		p, err := NewProgram(prof)
		if err != nil {
			t.Fatal(err)
		}
		p.buildClassTable()
		span := uint64(p.TotalInstrs())
		for i := uint64(0); i < span; i++ {
			pc := codeBase + instrBytes*i
			if got, want := p.InstrClass(pc), p.classOf(pc); got != want {
				t.Fatalf("%s: pc %#x: table %v != hash %v", prof.Name, pc, got, want)
			}
		}
		for _, pc := range []uint64{
			codeBase - instrBytes,          // below the span
			codeBase + instrBytes*span,     // one past the span
			codeBase + 1,                   // unaligned
			codeBase + instrBytes*span + 2, // unaligned and out of span
			0, ^uint64(0),
		} {
			if got, want := p.InstrClass(pc), p.classOf(pc); got != want {
				t.Fatalf("%s: fallback pc %#x: %v != %v", prof.Name, pc, got, want)
			}
		}
	}
}

// BenchmarkInstrClassTable measures the production path: the
// precomputed per-PC table with its bounds/alignment guard.
func BenchmarkInstrClassTable(b *testing.B) {
	p := benchProgram(b)
	pcs := benchPCs(p, 1<<16)
	b.ResetTimer()
	var sink trace.Class
	for i := 0; i < b.N; i++ {
		sink += p.InstrClass(pcs[i&(len(pcs)-1)])
	}
	_ = sink
}

// BenchmarkInstrClassHash measures the pre-table path the table
// replaced (and still serves as the out-of-span fallback): the Mix2
// hash thresholded through the profile's instruction-mix fractions.
func BenchmarkInstrClassHash(b *testing.B) {
	p := benchProgram(b)
	pcs := benchPCs(p, 1<<16)
	b.ResetTimer()
	var sink trace.Class
	for i := 0; i < b.N; i++ {
		sink += p.classOf(pcs[i&(len(pcs)-1)])
	}
	_ = sink
}
