package workload

import (
	"testing"
	"testing/quick"

	"emissary/internal/branch"
)

func TestProgramGenerationDeterministic(t *testing.T) {
	p := smallProfile()
	a, err := NewProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumBlocks() != b.NumBlocks() || a.TotalInstrs() != b.TotalInstrs() {
		t.Fatalf("generation nondeterministic: %d/%d vs %d/%d blocks/instrs",
			a.NumBlocks(), a.TotalInstrs(), b.NumBlocks(), b.TotalInstrs())
	}
	for i := range a.blocks {
		ab, bb := &a.blocks[i], &b.blocks[i]
		if ab.Addr != bb.Addr || ab.NInstr != bb.NInstr || ab.End != bb.End || ab.Target != bb.Target {
			t.Fatalf("block %d differs: %+v vs %+v", i, ab, bb)
		}
	}
}

func TestProgramSeedChangesLayout(t *testing.T) {
	p1 := smallProfile()
	p2 := smallProfile()
	p2.Seed++
	a, _ := NewProgram(p1)
	b, _ := NewProgram(p2)
	if a.NumBlocks() == b.NumBlocks() && a.TotalInstrs() == b.TotalInstrs() {
		// Same aggregate sizes can coincide; require some block-level
		// difference.
		same := true
		for i := 0; i < a.NumBlocks() && i < b.NumBlocks(); i++ {
			if a.blocks[i].NInstr != b.blocks[i].NInstr || a.blocks[i].End != b.blocks[i].End {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical programs")
		}
	}
}

func TestBlocksInLineMatchesIndex(t *testing.T) {
	prog, err := NewProgram(smallProfile())
	if err != nil {
		t.Fatal(err)
	}
	var scratch []branch.BTBEntry
	if err := quick.Check(func(pick uint16) bool {
		b := &prog.blocks[int(pick)%len(prog.blocks)]
		line := b.Addr >> 6
		scratch = prog.BlocksInLine(line, scratch[:0])
		// Every returned block must start in the line and exist in the
		// index; the picked block must be among them.
		found := false
		for _, e := range scratch {
			if e.Start>>6 != line {
				return false
			}
			if _, ok := prog.BlockAt(e.Start); !ok {
				return false
			}
			if e.Start == b.Addr {
				found = true
			}
		}
		return found
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBlocksInLineEmptyOutsideProgram(t *testing.T) {
	prog, _ := NewProgram(smallProfile())
	if got := prog.BlocksInLine(0x1, nil); len(got) != 0 {
		t.Errorf("found %d blocks far below the code base", len(got))
	}
}

func TestFootprintTopUpReachesTarget(t *testing.T) {
	for _, name := range []string{"tomcat", "xapian", "verilator", "specjbb"} {
		p, _ := ProfileByName(name)
		prog, err := NewProgram(p)
		if err != nil {
			t.Fatal(err)
		}
		got := float64(prog.FootprintBytes()) / (1024 * 1024)
		ratio := got / p.FootprintMB
		if ratio < 0.90 || ratio > 1.15 {
			t.Errorf("%s footprint %.2f MB is %.0f%% of the %.2f MB target",
				name, got, ratio*100, p.FootprintMB)
		}
	}
}

func TestInstrClassStablePerPC(t *testing.T) {
	prog, _ := NewProgram(smallProfile())
	for pc := codeBase; pc < codeBase+4000; pc += 4 {
		if prog.InstrClass(pc) != prog.InstrClass(pc) {
			t.Fatalf("class at %#x unstable", pc)
		}
	}
}

func TestServiceEntriesAreBlocks(t *testing.T) {
	prog, _ := NewProgram(smallProfile())
	if len(prog.serviceEntries) < smallProfile().NumServices {
		t.Fatalf("only %d service entries", len(prog.serviceEntries))
	}
	for _, e := range prog.serviceEntries {
		if _, ok := prog.BlockAt(e); !ok {
			t.Fatalf("service entry %#x is not a block", e)
		}
	}
}
