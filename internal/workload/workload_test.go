package workload

import (
	"math"
	"testing"

	"emissary/internal/branch"
	"emissary/internal/reuse"
	"emissary/internal/trace"
)

func TestProfilesValidate(t *testing.T) {
	ps := Profiles()
	if len(ps) != 13 {
		t.Fatalf("got %d profiles, want 13", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if seen[p.Name] {
			t.Errorf("duplicate profile %s", p.Name)
		}
		seen[p.Name] = true
	}
}

func TestProfileByName(t *testing.T) {
	p, ok := ProfileByName("tomcat")
	if !ok || p.Name != "tomcat" {
		t.Fatalf("tomcat lookup failed")
	}
	if _, ok := ProfileByName("doom"); ok {
		t.Error("unknown profile found")
	}
	if len(ProfileNames()) != 13 {
		t.Error("ProfileNames wrong length")
	}
}

func TestProfileValidateRejects(t *testing.T) {
	bad := base("bad", 1)
	bad.FootprintMB = -1
	if bad.Validate() == nil {
		t.Error("negative footprint accepted")
	}
	bad = base("bad", 1)
	bad.LoadFrac = 0.9
	if bad.Validate() == nil {
		t.Error("implausible load fraction accepted")
	}
	bad = base("", 1)
	if bad.Validate() == nil {
		t.Error("empty name accepted")
	}
}

func smallProfile() Profile {
	p := base("test-small", 42)
	p.FootprintMB = 0.08
	p.NumServices = 4
	return p
}

func TestProgramFootprintNearTarget(t *testing.T) {
	for _, name := range []string{"xapian", "tomcat", "verilator"} {
		p, _ := ProfileByName(name)
		prog, err := NewProgram(p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := float64(prog.FootprintBytes()) / (1024 * 1024)
		if math.Abs(got-p.FootprintMB)/p.FootprintMB > 0.30 {
			t.Errorf("%s footprint = %.2f MB, want within 30%% of %.2f", name, got, p.FootprintMB)
		}
	}
}

func TestProgramCFGClosed(t *testing.T) {
	prog, err := NewProgram(smallProfile())
	if err != nil {
		t.Fatal(err)
	}
	// Every block's static successors must be block starts.
	for i := range prog.blocks {
		b := &prog.blocks[i]
		check := func(addr uint64, what string) {
			if _, ok := prog.index[addr]; !ok {
				t.Fatalf("block %#x: %s %#x is not a block start", b.Addr, what, addr)
			}
		}
		switch b.End {
		case branch.KindFallthrough:
			check(b.FallThrough(), "fallthrough")
		case branch.KindCond:
			check(b.FallThrough(), "fallthrough")
			check(b.Target, "taken target")
		case branch.KindJump:
			check(b.Target, "jump target")
		case branch.KindCall:
			check(b.Target, "call target")
			check(b.FallThrough(), "return site")
		case branch.KindIndirectCall, branch.KindIndirect:
			if len(b.ITargets) == 0 {
				t.Fatalf("block %#x: indirect with no targets", b.Addr)
			}
			for _, tgt := range b.ITargets {
				check(tgt, "indirect target")
			}
			if b.End == branch.KindIndirectCall {
				check(b.FallThrough(), "return site")
			}
		case branch.KindReturn:
			// successor dynamic
		}
	}
}

func TestProgramBlocksContiguousAndBounded(t *testing.T) {
	prog, err := NewProgram(smallProfile())
	if err != nil {
		t.Fatal(err)
	}
	var prevEnd uint64 = codeBase
	for i := range prog.blocks {
		b := &prog.blocks[i]
		if b.Addr != prevEnd {
			t.Fatalf("block %d at %#x, expected %#x (contiguous layout)", i, b.Addr, prevEnd)
		}
		if b.NInstr < 1 || b.NInstr > blockMaxInstr {
			t.Fatalf("block %#x size %d out of bounds", b.Addr, b.NInstr)
		}
		prevEnd = b.FallThrough()
	}
}

func TestBlockInfoMatchesBlocks(t *testing.T) {
	prog, _ := NewProgram(smallProfile())
	b := &prog.blocks[3]
	e, ok := prog.BlockInfo(b.Addr)
	if !ok {
		t.Fatal("BlockInfo miss for known block")
	}
	if e.Start != b.Addr || e.NumInstrs != int(b.NInstr) || e.EndKind != b.End {
		t.Errorf("BlockInfo = %+v for block %+v", e, b)
	}
	if _, ok := prog.BlockInfo(b.Addr + 1); ok {
		t.Error("BlockInfo hit on a non-block address")
	}
}

func TestEngineStreamStaysOnCFG(t *testing.T) {
	prog, _ := NewProgram(smallProfile())
	e := NewEngine(prog)
	prev := trace.BlockEvent{}
	for i := 0; i < 20000; i++ {
		ev, ok := e.NextBlock()
		if !ok {
			t.Fatal("stream ended")
		}
		if _, ok := prog.BlockAt(ev.Addr); !ok {
			t.Fatalf("event %d at non-block address %#x", i, ev.Addr)
		}
		if i > 0 && prev.NextAddr != ev.Addr {
			t.Fatalf("event %d: previous successor %#x but block is %#x", i, prev.NextAddr, ev.Addr)
		}
		prev = ev
	}
	if e.Instructions() == 0 || e.Requests() == 0 {
		t.Error("engine made no progress")
	}
}

func TestEngineDeterministic(t *testing.T) {
	prog, _ := NewProgram(smallProfile())
	a, b := NewEngine(prog), NewEngine(prog)
	for i := 0; i < 5000; i++ {
		ea, _ := a.NextBlock()
		eb, _ := b.NextBlock()
		if ea.Addr != eb.Addr || ea.NextAddr != eb.NextAddr || ea.Taken != eb.Taken {
			t.Fatalf("engines diverged at event %d", i)
		}
	}
}

func TestEngineCallReturnBalance(t *testing.T) {
	prog, _ := NewProgram(smallProfile())
	e := NewEngine(prog)
	depth := 0
	maxDepth := 0
	for i := 0; i < 100000; i++ {
		ev, _ := e.NextBlock()
		switch ev.EndKind {
		case branch.KindCall, branch.KindIndirectCall:
			depth++
		case branch.KindReturn:
			depth--
		}
		if depth > maxDepth {
			maxDepth = depth
		}
		if depth < 0 {
			t.Fatalf("event %d: more returns than calls", i)
		}
	}
	if maxDepth < 2 {
		t.Errorf("max call depth = %d, expected a real call tree", maxDepth)
	}
	if maxDepth > 64 {
		t.Errorf("max call depth = %d, implausibly deep", maxDepth)
	}
}

func TestEngineMemRefsMatchClasses(t *testing.T) {
	prog, _ := NewProgram(smallProfile())
	e := NewEngine(prog)
	for i := 0; i < 5000; i++ {
		ev, _ := e.NextBlock()
		for _, m := range ev.Mem {
			pc := ev.Addr + 4*uint64(m.Index)
			cls := prog.InstrClass(pc)
			if m.Store && cls != trace.ClassStore {
				t.Fatalf("store ref at pc %#x with class %v", pc, cls)
			}
			if !m.Store && cls != trace.ClassLoad {
				t.Fatalf("load ref at pc %#x with class %v", pc, cls)
			}
		}
	}
}

func TestEngineMemPoolsDisjointFromCode(t *testing.T) {
	prog, _ := NewProgram(smallProfile())
	e := NewEngine(prog)
	for i := 0; i < 5000; i++ {
		ev, _ := e.NextBlock()
		for _, m := range ev.Mem {
			if m.Addr < coldBase {
				t.Fatalf("data address %#x overlaps code space", m.Addr)
			}
		}
	}
}

func TestEngineLoadStoreRates(t *testing.T) {
	p := smallProfile()
	prog, _ := NewProgram(p)
	e := NewEngine(prog)
	loads, stores := 0, 0
	var instrs uint64
	for instrs < 400000 {
		ev, _ := e.NextBlock()
		instrs += uint64(ev.NumInstrs)
		for _, m := range ev.Mem {
			if m.Store {
				stores++
			} else {
				loads++
			}
		}
	}
	lf := float64(loads) / float64(instrs)
	sf := float64(stores) / float64(instrs)
	if math.Abs(lf-p.LoadFrac) > 0.06 {
		t.Errorf("load rate %.3f, profile %.3f", lf, p.LoadFrac)
	}
	if math.Abs(sf-p.StoreFrac) > 0.04 {
		t.Errorf("store rate %.3f, profile %.3f", sf, p.StoreFrac)
	}
}

func TestEngineClassDistribution(t *testing.T) {
	prog, _ := NewProgram(smallProfile())
	counts := map[trace.Class]int{}
	for pc := codeBase; pc < codeBase+40000; pc += 4 {
		counts[prog.InstrClass(pc)]++
	}
	if counts[trace.ClassALU] == 0 || counts[trace.ClassLoad] == 0 || counts[trace.ClassStore] == 0 {
		t.Errorf("class distribution degenerate: %v", counts)
	}
}

// The defining property of the datacenter workloads (§3, Fig 2): the
// instruction-line reuse mixture must contain a meaningful long tail.
func TestEngineReuseMixtureHasLongTail(t *testing.T) {
	p, _ := ProfileByName("tomcat")
	prog, err := NewProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(prog)
	tr := reuse.NewTracker(1 << 18)
	buckets := [3]uint64{}
	var instrs uint64
	var lastLine uint64 = ^uint64(0)
	for instrs < 2_000_000 {
		ev, _ := e.NextBlock()
		instrs += uint64(ev.NumInstrs)
		line := ev.Addr >> 6
		if line != lastLine {
			d := tr.Access(line)
			buckets[reuse.Classify(d)]++
			lastLine = line
		}
	}
	total := buckets[0] + buckets[1] + buckets[2]
	longFrac := float64(buckets[2]) / float64(total)
	if longFrac < 0.02 || longFrac > 0.6 {
		t.Errorf("long-reuse access fraction = %.3f (short %.3f mid %.3f), want a real but minority tail",
			longFrac, float64(buckets[0])/float64(total), float64(buckets[1])/float64(total))
	}
	if buckets[0] == 0 || buckets[1] == 0 {
		t.Errorf("reuse buckets degenerate: %v", buckets)
	}
}

func TestNewProgramRejectsBadProfile(t *testing.T) {
	p := smallProfile()
	p.NumServices = 0
	if _, err := NewProgram(p); err == nil {
		t.Error("invalid profile accepted")
	}
}

func TestSPECLikeProfiles(t *testing.T) {
	ps := SPECLikeProfiles()
	if len(ps) != 3 {
		t.Fatalf("got %d SPEC-like profiles", len(ps))
	}
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if p.FootprintMB > 0.25 {
			t.Errorf("%s footprint %.2f MB; SPEC-like profiles must fit the L2", p.Name, p.FootprintMB)
		}
		if _, ok := ProfileByName(p.Name); !ok {
			t.Errorf("%s not findable by name", p.Name)
		}
		prog, err := NewProgram(p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if prog.FootprintBytes() > 320*1024 {
			t.Errorf("%s generated %.2f MB of code", p.Name, float64(prog.FootprintBytes())/(1<<20))
		}
	}
}
