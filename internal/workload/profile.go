// Package workload synthesizes the 13 datacenter benchmarks of §5.3 as
// executable synthetic programs: a static control-flow graph (functions,
// basic blocks, loops, diamonds, call trees, indirect dispatch) plus an
// execution engine that walks it, producing the oracle instruction
// stream the pipeline validates its predictions against.
//
// The real workloads (tomcat, kafka, tpcc, …) are JVM/C++ server
// binaries run under a full OS; none of that is available to a pure-Go
// reproduction, so each profile is parameterized on the properties the
// paper identifies as the mechanism behind EMISSARY's win: instruction
// footprint (Fig 4), the Short/Mid/Long reuse-distance mixture (Fig 2),
// branch predictability, and data-side working sets (Fig 3). The
// request/service structure below produces exactly the paper's §3
// landscape: a small fraction of long-reuse lines causes most decode
// starvations.
package workload

import "fmt"

// Profile parameterizes one synthetic benchmark.
type Profile struct {
	Name string
	Seed uint64

	// Code shape.
	FootprintMB    float64 // instruction footprint target (Fig 4)
	HotLibFrac     float64 // fraction of code in the hot shared library
	NumServices    int     // distinct request types (long-reuse driver)
	ServiceZipf    float64 // popularity skew across services (0 = uniform)
	AvgBlockInstr  int     // mean basic-block size in instructions
	LoopFrac       float64 // probability a body construct is a loop
	AvgLoopTrips   float64 // mean loop trip count
	HardBranchFrac float64 // fraction of diamonds with noisy outcomes
	HardBranchBias float64 // P(taken) of a noisy branch
	VariantFanout  int     // indirect-call variants inside services

	// Data side.
	LoadFrac   float64 // loads per instruction
	StoreFrac  float64 // stores per instruction
	StackFrac  float64 // fraction of memory ops hitting the stack
	ColdFrac   float64 // fraction of memory ops hitting per-request records
	HotDataKB  int     // hot heap working set
	ColdDataMB float64 // total record space (per-request long-reuse data)
	RecordKB   int     // bytes touched per request within its record
}

// Validate reports the first implausible parameter.
func (p Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("workload: profile has no name")
	case p.FootprintMB <= 0 || p.FootprintMB > 64:
		return fmt.Errorf("workload %s: footprint %.2f MB out of range", p.Name, p.FootprintMB)
	case p.HotLibFrac < 0 || p.HotLibFrac > 0.95:
		return fmt.Errorf("workload %s: hot-lib fraction %.2f out of range", p.Name, p.HotLibFrac)
	case p.NumServices < 1:
		return fmt.Errorf("workload %s: needs at least one service", p.Name)
	case p.AvgBlockInstr < 3 || p.AvgBlockInstr > 14:
		return fmt.Errorf("workload %s: block size %d out of range", p.Name, p.AvgBlockInstr)
	case p.LoadFrac < 0 || p.StoreFrac < 0 || p.LoadFrac+p.StoreFrac > 0.8:
		return fmt.Errorf("workload %s: memory-op fractions implausible", p.Name)
	case p.StackFrac < 0 || p.ColdFrac < 0 || p.StackFrac+p.ColdFrac > 1:
		return fmt.Errorf("workload %s: memory pool fractions implausible", p.Name)
	case p.HotDataKB <= 0 || p.ColdDataMB <= 0 || p.RecordKB <= 0:
		return fmt.Errorf("workload %s: data sizes must be positive", p.Name)
	case p.AvgLoopTrips < 1:
		return fmt.Errorf("workload %s: loop trips must be >= 1", p.Name)
	}
	return nil
}

// base returns the template the 13 profiles specialize.
func base(name string, seed uint64) Profile {
	return Profile{
		Name:           name,
		Seed:           seed,
		FootprintMB:    1.0,
		HotLibFrac:     0.25,
		NumServices:    32,
		ServiceZipf:    0.9,
		AvgBlockInstr:  7,
		LoopFrac:       0.10,
		AvgLoopTrips:   6,
		HardBranchFrac: 0.02,
		HardBranchBias: 0.88,
		VariantFanout:  3,
		LoadFrac:       0.26,
		StoreFrac:      0.11,
		StackFrac:      0.35,
		ColdFrac:       0.15,
		HotDataKB:      96,
		ColdDataMB:     48,
		RecordKB:       4,
	}
}

// Profiles returns the 13 benchmark profiles of §5.3, keyed to the
// characteristics reported in Figures 3 and 4: per-benchmark
// instruction footprints (tomcat largest at ~2.57 MB, xapian smallest
// at ~0.29 MB), instruction-vs-data MPKI balance (specjbb/kafka/
// media-stream are data-heavy), and front-end hostility (verilator's
// generated code has a huge, flat footprint).
func Profiles() []Profile {
	specjbb := base("specjbb", 101)
	specjbb.FootprintMB = 1.0
	specjbb.NumServices = 24
	specjbb.HotDataKB = 1024 // data-dominated: very high L1D MPKI
	specjbb.ColdDataMB = 96
	specjbb.ColdFrac = 0.30
	specjbb.LoadFrac = 0.30

	xapian := base("xapian", 102)
	xapian.FootprintMB = 0.29
	xapian.NumServices = 6
	xapian.HotLibFrac = 0.45
	xapian.HotDataKB = 256
	xapian.ColdDataMB = 64
	xapian.ColdFrac = 0.22

	finagleHTTP := base("finagle-http", 103)
	finagleHTTP.FootprintMB = 1.6
	finagleHTTP.NumServices = 48
	finagleHTTP.ServiceZipf = 0.6
	finagleHTTP.HotLibFrac = 0.15

	finagleChirper := base("finagle-chirper", 104)
	finagleChirper.FootprintMB = 1.5
	finagleChirper.NumServices = 44
	finagleChirper.ServiceZipf = 0.6
	finagleChirper.HotLibFrac = 0.15

	tomcat := base("tomcat", 105)
	tomcat.FootprintMB = 2.57
	tomcat.NumServices = 64
	tomcat.ServiceZipf = 0.5
	tomcat.HotLibFrac = 0.12

	kafka := base("kafka", 106)
	kafka.FootprintMB = 0.8
	kafka.NumServices = 16
	kafka.HotDataKB = 768
	kafka.ColdDataMB = 128
	kafka.ColdFrac = 0.35
	kafka.LoadFrac = 0.30

	tpcc := base("tpcc", 107)
	tpcc.FootprintMB = 0.55
	tpcc.NumServices = 5
	tpcc.HotLibFrac = 0.40
	tpcc.ColdDataMB = 96
	tpcc.ColdFrac = 0.30

	wikipedia := base("wikipedia", 108)
	wikipedia.FootprintMB = 1.1
	wikipedia.NumServices = 28
	wikipedia.ServiceZipf = 1.0

	mediaStream := base("media-stream", 109)
	mediaStream.FootprintMB = 0.5
	mediaStream.NumServices = 8
	mediaStream.HotLibFrac = 0.40
	mediaStream.HotDataKB = 640
	mediaStream.ColdDataMB = 192
	mediaStream.ColdFrac = 0.40
	mediaStream.LoadFrac = 0.30

	webSearch := base("web-search", 110)
	webSearch.FootprintMB = 0.7
	webSearch.NumServices = 6
	webSearch.HotLibFrac = 0.50
	webSearch.ServiceZipf = 1.2
	webSearch.HotDataKB = 384

	dataServing := base("data-serving", 111)
	dataServing.FootprintMB = 1.2
	dataServing.NumServices = 36
	dataServing.ServiceZipf = 0.7
	dataServing.ColdDataMB = 96
	dataServing.ColdFrac = 0.25

	verilator := base("verilator", 112)
	verilator.FootprintMB = 1.9
	verilator.NumServices = 96 // generated RTL evaluation code: flat, huge
	verilator.ServiceZipf = 0.2
	verilator.HotLibFrac = 0.05
	verilator.LoopFrac = 0.10
	verilator.HardBranchFrac = 0.06
	verilator.HotDataKB = 192

	speedometer := base("speedometer2.0", 113)
	speedometer.FootprintMB = 0.9
	speedometer.NumServices = 20
	speedometer.ServiceZipf = 1.1
	speedometer.HotLibFrac = 0.35

	return []Profile{
		specjbb, xapian, finagleHTTP, finagleChirper, tomcat, kafka,
		tpcc, wikipedia, mediaStream, webSearch, dataServing, verilator,
		speedometer,
	}
}

// SPECLikeProfiles returns three small-footprint profiles in the mold
// of traditional SPEC CPU workloads. The paper's §5.3 explains why its
// evaluation rejects SPEC: the code footprints "easily fit into the
// larger L2 caches of modern processors", leaving nothing for an L2
// instruction replacement policy to do. These profiles exist to let
// that rationale be measured (their L2 instruction MPKI should be
// near zero and EMISSARY's effect nil).
func SPECLikeProfiles() []Profile {
	gcc := base("spec-gcc-like", 201)
	gcc.FootprintMB = 0.12
	gcc.NumServices = 3
	gcc.HotLibFrac = 0.5
	gcc.ServiceZipf = 1.2

	mcf := base("spec-mcf-like", 202)
	mcf.FootprintMB = 0.05
	mcf.NumServices = 2
	mcf.HotLibFrac = 0.4
	mcf.LoadFrac = 0.33
	mcf.HotDataKB = 2048 // pointer chasing over a big working set
	mcf.ColdDataMB = 256
	mcf.ColdFrac = 0.35

	perl := base("spec-perlbench-like", 203)
	perl.FootprintMB = 0.18
	perl.NumServices = 4
	perl.HotLibFrac = 0.45
	perl.ServiceZipf = 1.0

	return []Profile{gcc, mcf, perl}
}

// ProfileByName finds a built-in profile, searching the 13 paper
// benchmarks and then the SPEC-like comparison profiles.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	for _, p := range SPECLikeProfiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// ProfileNames lists the built-in benchmark names in paper order.
func ProfileNames() []string {
	ps := Profiles()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}
