package faultinject

import (
	"fmt"
	"strconv"
	"strings"
)

// ParsePlan parses the filesystem fault-plan grammar (DESIGN.md §13):
//
//	plan  := fault ("," fault)*
//	fault := mode "@" op
//	mode  := "fail" | "shortwrite" | "dropsync" | "crash"
//	op    := 1-based counted-operation index
//
// Examples: "crash@7", "dropsync@4,crash@9" (the sync at op 4 lies,
// the power cut at op 9 then throws the unsynced tail away).
func ParsePlan(spec string) ([]Fault, error) {
	var out []Fault
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, at, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("faultinject: fault %q lacks an @op index", part)
		}
		var mode Mode
		switch name {
		case "fail":
			mode = ModeFail
		case "shortwrite":
			mode = ModeShortWrite
		case "dropsync":
			mode = ModeDropSync
		case "crash":
			mode = ModeCrash
		default:
			return nil, fmt.Errorf("faultinject: unknown fault mode %q (fail, shortwrite, dropsync, crash)", name)
		}
		op, err := strconv.Atoi(at)
		if err != nil || op < 1 {
			return nil, fmt.Errorf("faultinject: fault %q: op index must be a positive integer", part)
		}
		out = append(out, Fault{Op: op, Mode: mode})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("faultinject: empty fault plan")
	}
	return out, nil
}
