package faultinject

import (
	"context"
	"fmt"
	"strconv"
	"strings"
)

// JobMode selects how a job-level fault manifests.
type JobMode int

const (
	// JobFail returns a transient *InjectedJobError from the attempt.
	JobFail JobMode = iota
	// JobPanic panics with a transient *InjectedJobError, exercising
	// the runner's recover-to-*JobError path.
	JobPanic
	// JobStall blocks until the attempt's context is done (job
	// deadline or sweep cancellation) and returns ctx.Err().
	JobStall
)

// String names the mode as the job-plan grammar spells it.
func (m JobMode) String() string {
	switch m {
	case JobFail:
		return "error"
	case JobPanic:
		return "panic"
	case JobStall:
		return "stall"
	}
	return fmt.Sprintf("JobMode(%d)", int(m))
}

// JobFault plants one fault on one job index.
type JobFault struct {
	Job  int
	Mode JobMode
	// Attempts is how many leading attempts of the job fault; later
	// attempts run clean (a transient fault that heals under retry).
	// 0 faults every attempt (effectively permanent).
	Attempts int
}

// InjectedJobError is a planned job-attempt failure. Transient by
// classification: the fault is environmental, not a property of the
// job's options, so a retry may succeed.
type InjectedJobError struct {
	Job     int
	Attempt int
	Mode    JobMode
}

func (e *InjectedJobError) Error() string {
	return fmt.Sprintf("faultinject: injected job %s (job %d, attempt %d)", e.Mode, e.Job, e.Attempt)
}

// Transient marks the fault retryable for runner classification.
func (e *InjectedJobError) Transient() bool { return true }

func (e *InjectedJobError) Is(target error) bool { return target == ErrInjected }

// JobInjector fires deterministic faults at chosen (job, attempt)
// coordinates. Its Before method matches the runner's SimsConfig
// Inject seam; a nil *JobInjector injects nothing.
type JobInjector struct {
	faults map[int]JobFault
}

// NewJobInjector builds an injector from the planned faults.
func NewJobInjector(faults ...JobFault) (*JobInjector, error) {
	ji := &JobInjector{faults: make(map[int]JobFault, len(faults))}
	for _, f := range faults {
		if f.Job < 0 {
			return nil, fmt.Errorf("faultinject: job index %d is negative", f.Job)
		}
		if _, dup := ji.faults[f.Job]; dup {
			return nil, fmt.Errorf("faultinject: job %d planned twice", f.Job)
		}
		ji.faults[f.Job] = f
	}
	return ji, nil
}

// Before runs ahead of one attempt of one job (attempts are 1-based).
// It returns nil when the attempt should proceed, returns or panics a
// transient *InjectedJobError per the plan, or blocks until ctx is
// done for stall faults.
func (ji *JobInjector) Before(ctx context.Context, job, attempt int) error {
	if ji == nil {
		return nil
	}
	f, ok := ji.faults[job]
	if !ok || (f.Attempts > 0 && attempt > f.Attempts) {
		return nil
	}
	ie := &InjectedJobError{Job: job, Attempt: attempt, Mode: f.Mode}
	switch f.Mode {
	case JobPanic:
		panic(ie)
	case JobStall:
		<-ctx.Done()
		return ctx.Err()
	default:
		return ie
	}
}

// ParseJobPlan parses the job fault-plan grammar (DESIGN.md §13),
// the CLIs' -inject flag:
//
//	plan  := fault ("," fault)*
//	fault := job ":" mode ["@" attempts]
//	mode  := "error" | "panic" | "stall"
//
// attempts defaults to 1 for error/panic (a transient fault healed by
// one retry) and to every attempt for stall. "@0" spells every
// attempt explicitly.
//
// Examples: "3:error@1", "0:stall", "2:error@2,5:panic".
func ParseJobPlan(spec string) (*JobInjector, error) {
	var faults []JobFault
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		jobStr, rest, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("faultinject: job fault %q lacks a job:mode separator", part)
		}
		job, err := strconv.Atoi(jobStr)
		if err != nil || job < 0 {
			return nil, fmt.Errorf("faultinject: job fault %q: job must be a non-negative integer", part)
		}
		name, at, hasAt := strings.Cut(rest, "@")
		var mode JobMode
		attempts := 1
		switch name {
		case "error":
			mode = JobFail
		case "panic":
			mode = JobPanic
		case "stall":
			mode, attempts = JobStall, 0
		default:
			return nil, fmt.Errorf("faultinject: unknown job fault mode %q (error, panic, stall)", name)
		}
		if hasAt {
			attempts, err = strconv.Atoi(at)
			if err != nil || attempts < 0 {
				return nil, fmt.Errorf("faultinject: job fault %q: attempts must be a non-negative integer", part)
			}
		}
		faults = append(faults, JobFault{Job: job, Mode: mode, Attempts: attempts})
	}
	if len(faults) == 0 {
		return nil, fmt.Errorf("faultinject: empty job fault plan")
	}
	return NewJobInjector(faults...)
}
