package faultinject

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"emissary/internal/rng"
)

// Mode selects what happens at a planned operation index.
type Mode int

const (
	// ModeFail makes the operation return an *InjectedError with no
	// side effect: the write writes nothing, the sync syncs nothing.
	ModeFail Mode = iota
	// ModeShortWrite applies to writes: half the buffer reaches the
	// file, then the call fails — the classic torn write.
	ModeShortWrite
	// ModeDropSync applies to Sync/SyncDir: the call reports success
	// without making anything durable, modeling lying hardware. It is
	// only observable combined with a later ModeCrash, which throws
	// away everything after the last honoured sync.
	ModeDropSync
	// ModeCrash simulates a power cut at the operation: the call
	// fails with *PowerCutError, every open file is torn back to its
	// last-synced size plus a seed-deterministic fraction of the
	// unsynced tail, and every subsequent operation on the filesystem
	// fails until the test "reboots" by reopening paths through a
	// fresh FS.
	ModeCrash
)

// String names the mode as the plan grammar spells it.
func (m Mode) String() string {
	switch m {
	case ModeFail:
		return "fail"
	case ModeShortWrite:
		return "shortwrite"
	case ModeDropSync:
		return "dropsync"
	case ModeCrash:
		return "crash"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Fault plants one mode at one 1-based counted-operation index.
type Fault struct {
	Op   int
	Mode Mode
}

// ErrInjected is the errors.Is target every injected fault matches.
var ErrInjected = errors.New("faultinject: injected fault")

// ErrPowerCut is the errors.Is target for operations refused because
// the simulated machine lost power.
var ErrPowerCut = errors.New("faultinject: simulated power cut")

// InjectedError is a planned, non-crash filesystem fault. It is
// transient by classification: retrying the operation (or the job that
// issued it) against a healthy filesystem succeeds.
type InjectedError struct {
	Op   int    // the counted operation index that faulted
	Call string // which operation (write, sync, rename, ...)
	Mode Mode
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("faultinject: injected %s at op %d (%s)", e.Mode, e.Op, e.Call)
}

// Transient marks the fault retryable for runner classification.
func (e *InjectedError) Transient() bool { return true }

func (e *InjectedError) Is(target error) bool { return target == ErrInjected }

// PowerCutError reports an operation refused by a crashed filesystem.
// It is permanent: no retry against the same FS can succeed until the
// scenario reopens its files through a fresh filesystem ("reboots").
type PowerCutError struct {
	Op   int
	Call string
}

func (e *PowerCutError) Error() string {
	return fmt.Sprintf("faultinject: power cut at op %d (%s)", e.Op, e.Call)
}

// Transient reports false: a power cut does not heal under retry.
func (e *PowerCutError) Transient() bool { return false }

func (e *PowerCutError) Is(target error) bool { return target == ErrPowerCut }

// Injector wraps a base FS, counts every mutating/durability
// operation (writes, syncs, opens, closes, renames, removes, seeks,
// truncates — reads are free), and fires the planned faults. All
// state is guarded by one mutex, so a multi-worker sweep sees one
// coherent operation ordering.
type Injector struct {
	mu      sync.Mutex
	base    FS
	rand    *rng.SplitMix64
	faults  map[int]Mode
	ops     int
	crashed bool
	cut     *PowerCutError        // the original power cut, re-reported by later ops
	open    map[*injFile]struct{} // files subject to tearing on crash
	trace   []string
}

// NewInjector wraps base with the planned faults. seed drives the only
// stochastic choice (how much of an unsynced tail a power cut keeps),
// so (seed, faults) fully determines the injector's behaviour. With no
// faults the injector is a pure pass-through operation counter.
func NewInjector(base FS, seed uint64, faults ...Fault) (*Injector, error) {
	in := &Injector{
		base:   base,
		rand:   rng.NewSplitMix64(seed),
		faults: make(map[int]Mode, len(faults)),
		open:   make(map[*injFile]struct{}),
	}
	for _, f := range faults {
		if f.Op < 1 {
			return nil, fmt.Errorf("faultinject: fault op %d is not a 1-based operation index", f.Op)
		}
		if prev, dup := in.faults[f.Op]; dup {
			return nil, fmt.Errorf("faultinject: op %d planned twice (%s and %s)", f.Op, prev, f.Mode)
		}
		in.faults[f.Op] = f.Mode
	}
	return in, nil
}

// Ops returns how many counted operations have been issued so far. A
// clean pass-through run's final count is the index space a torture
// suite enumerates.
func (in *Injector) Ops() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.ops
}

// Trace returns the counted operations in order, one "call name" per
// entry — the torture suites use it to label which step a fault hit.
func (in *Injector) Trace() []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]string, len(in.trace))
	copy(out, in.trace)
	return out
}

// Crashed reports whether a ModeCrash fault has fired.
func (in *Injector) Crashed() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.crashed
}

// advance counts one operation and returns the fault planned for it,
// if any. Callers hold in.mu.
func (in *Injector) advance(call string) (Mode, *InjectedError, error) {
	in.ops++
	in.trace = append(in.trace, call)
	if in.crashed {
		return 0, nil, &PowerCutError{Op: in.cut.Op, Call: call}
	}
	mode, ok := in.faults[in.ops]
	if !ok {
		return 0, nil, nil
	}
	if mode == ModeCrash {
		in.crash(call)
		return 0, nil, in.cut
	}
	return mode, &InjectedError{Op: in.ops, Call: call, Mode: mode}, nil
}

// crash tears every open file back to last-synced + a deterministic
// fraction of its unsynced tail, closes the underlying files, and
// poisons all future operations. Callers hold in.mu.
func (in *Injector) crash(call string) {
	in.crashed = true
	in.cut = &PowerCutError{Op: in.ops, Call: call}
	for f := range in.open {
		if tail := f.size - f.synced; tail > 0 {
			frac := float64(in.rand.Uint64()>>11) / (1 << 53)
			keep := f.synced + int64(frac*float64(tail))
			// Ignore tearing errors: the file may already be gone,
			// and a partially-applied tear is itself a legal crash
			// outcome.
			f.f.Truncate(keep)
		}
		f.f.Close()
	}
	clear(in.open)
}

func (in *Injector) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if _, ierr, err := in.advance("open " + name); err != nil {
		return nil, err
	} else if ierr != nil {
		return nil, ierr
	}
	f, err := in.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return in.track(f)
}

func (in *Injector) CreateTemp(dir, pattern string) (File, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if _, ierr, err := in.advance("createtemp " + pattern); err != nil {
		return nil, err
	} else if ierr != nil {
		return nil, ierr
	}
	f, err := in.base.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return in.track(f)
}

// track wraps a freshly opened file, recording its current size as
// durable (it was there before this scenario's faults).
func (in *Injector) track(f File) (File, error) {
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	jf := &injFile{in: in, f: f, pos: 0, size: size, synced: size}
	in.open[jf] = struct{}{}
	return jf, nil
}

func (in *Injector) Rename(oldpath, newpath string) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if _, ierr, err := in.advance("rename " + newpath); err != nil {
		return err
	} else if ierr != nil {
		return ierr
	}
	return in.base.Rename(oldpath, newpath)
}

func (in *Injector) Remove(name string) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if _, ierr, err := in.advance("remove " + name); err != nil {
		return err
	} else if ierr != nil {
		return ierr
	}
	return in.base.Remove(name)
}

func (in *Injector) SyncDir(dir string) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	mode, ierr, err := in.advance("syncdir " + dir)
	if err != nil {
		return err
	}
	if ierr != nil {
		if mode == ModeDropSync {
			return nil // reported durable, wasn't
		}
		return ierr
	}
	return in.base.SyncDir(dir)
}

// injFile interposes on one open file. size/synced model an
// append-only writer (which both adopters are): size is the logical
// end of file, synced the prefix guaranteed to survive a power cut.
type injFile struct {
	in     *Injector
	f      File
	pos    int64
	size   int64
	synced int64
}

func (jf *injFile) Name() string { return jf.f.Name() }

// Read is never fault-counted, but a crashed filesystem refuses it.
func (jf *injFile) Read(p []byte) (int, error) {
	jf.in.mu.Lock()
	if jf.in.crashed {
		defer jf.in.mu.Unlock()
		return 0, &PowerCutError{Op: jf.in.cut.Op, Call: "read " + jf.f.Name()}
	}
	jf.in.mu.Unlock()
	n, err := jf.f.Read(p)
	jf.in.mu.Lock()
	jf.pos += int64(n)
	jf.in.mu.Unlock()
	return n, err
}

func (jf *injFile) Write(p []byte) (int, error) {
	jf.in.mu.Lock()
	defer jf.in.mu.Unlock()
	mode, ierr, err := jf.in.advance("write " + jf.f.Name())
	if err != nil {
		return 0, err
	}
	if ierr != nil {
		switch mode {
		case ModeShortWrite:
			n, _ := jf.f.Write(p[:len(p)/2])
			jf.advanceBy(int64(n))
			return n, ierr
		default:
			return 0, ierr
		}
	}
	n, werr := jf.f.Write(p)
	jf.advanceBy(int64(n))
	return n, werr
}

// advanceBy moves the write position and grows the logical size.
// Callers hold in.mu.
func (jf *injFile) advanceBy(n int64) {
	jf.pos += n
	if jf.pos > jf.size {
		jf.size = jf.pos
	}
}

func (jf *injFile) Seek(offset int64, whence int) (int64, error) {
	jf.in.mu.Lock()
	defer jf.in.mu.Unlock()
	if _, ierr, err := jf.in.advance("seek " + jf.f.Name()); err != nil {
		return 0, err
	} else if ierr != nil {
		return 0, ierr
	}
	pos, err := jf.f.Seek(offset, whence)
	if err == nil {
		jf.pos = pos
	}
	return pos, err
}

func (jf *injFile) Truncate(size int64) error {
	jf.in.mu.Lock()
	defer jf.in.mu.Unlock()
	if _, ierr, err := jf.in.advance("truncate " + jf.f.Name()); err != nil {
		return err
	} else if ierr != nil {
		return ierr
	}
	if err := jf.f.Truncate(size); err != nil {
		return err
	}
	if size < jf.size {
		jf.size = size
	}
	if size < jf.synced {
		jf.synced = size
	}
	return nil
}

func (jf *injFile) Sync() error {
	jf.in.mu.Lock()
	defer jf.in.mu.Unlock()
	mode, ierr, err := jf.in.advance("sync " + jf.f.Name())
	if err != nil {
		return err
	}
	if ierr != nil {
		if mode == ModeDropSync {
			return nil // lied: synced watermark stays put
		}
		return ierr
	}
	if err := jf.f.Sync(); err != nil {
		return err
	}
	jf.synced = jf.size
	return nil
}

func (jf *injFile) Close() error {
	jf.in.mu.Lock()
	defer jf.in.mu.Unlock()
	if _, ierr, err := jf.in.advance("close " + jf.f.Name()); err != nil {
		return err
	} else if ierr != nil {
		return ierr
	}
	delete(jf.in.open, jf)
	return jf.f.Close()
}
