package faultinject

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// writeSyncScenario opens a file through fsys, appends two records
// with a sync between them, and closes. It is the minimal journal-like
// lifetime the injector tests exercise.
func writeSyncScenario(fsys FS, path string) error {
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644) // op 1
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("record-one\n")); err != nil { // op 2
		return err
	}
	if err := f.Sync(); err != nil { // op 3
		return err
	}
	if _, err := f.Write([]byte("record-two\n")); err != nil { // op 4
		return err
	}
	if err := f.Sync(); err != nil { // op 5
		return err
	}
	return f.Close() // op 6
}

func TestInjectorCountsOps(t *testing.T) {
	in, err := NewInjector(OS, 1)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "f")
	if err := writeSyncScenario(in, path); err != nil {
		t.Fatalf("clean pass-through failed: %v", err)
	}
	if got := in.Ops(); got != 6 {
		t.Fatalf("Ops() = %d, want 6\ntrace: %v", got, in.Trace())
	}
	want := []string{"open " + path, "write " + path, "sync " + path, "write " + path, "sync " + path, "close " + path}
	if got := in.Trace(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Trace() = %v, want %v", got, want)
	}
}

func TestInjectorFailAtEveryOp(t *testing.T) {
	for k := 1; k <= 6; k++ {
		in, err := NewInjector(OS, 1, Fault{Op: k, Mode: ModeFail})
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "f")
		err = writeSyncScenario(in, path)
		if err == nil {
			t.Fatalf("op %d: fault swallowed", k)
		}
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("op %d: err = %v, not ErrInjected", k, err)
		}
		var ie *InjectedError
		if !errors.As(err, &ie) || ie.Op != k {
			t.Fatalf("op %d: err = %v, want *InjectedError at that op", k, err)
		}
		var tr interface{ Transient() bool }
		if !errors.As(err, &tr) || !tr.Transient() {
			t.Fatalf("op %d: injected fault not classified transient", k)
		}
	}
}

func TestInjectorShortWrite(t *testing.T) {
	in, err := NewInjector(OS, 1, Fault{Op: 2, Mode: ModeShortWrite})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "f")
	if err := writeSyncScenario(in, path); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Half of "record-one\n" (11 bytes) is 5 bytes.
	if string(data) != "recor" {
		t.Fatalf("on-disk after short write = %q, want %q", data, "recor")
	}
}

// TestInjectorCrashTearsUnsyncedTail proves a power cut keeps the
// synced prefix intact and at most part of the unsynced tail, and that
// the same (seed, plan) tears identically on every run.
func TestInjectorCrashTearsUnsyncedTail(t *testing.T) {
	tear := func(seed uint64) string {
		t.Helper()
		in, err := NewInjector(OS, seed, Fault{Op: 5, Mode: ModeCrash}) // crash at the second sync
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "f")
		err = writeSyncScenario(in, path)
		if !errors.Is(err, ErrPowerCut) {
			t.Fatalf("err = %v, want ErrPowerCut", err)
		}
		if !in.Crashed() {
			t.Fatal("Crashed() = false after a power cut")
		}
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			t.Fatal(rerr)
		}
		return string(data)
	}

	got := tear(7)
	if len(got) < len("record-one\n") || got[:len("record-one\n")] != "record-one\n" {
		t.Fatalf("synced prefix damaged: %q", got)
	}
	if len(got) > len("record-one\nrecord-two\n") {
		t.Fatalf("file grew past logical size: %q", got)
	}
	if again := tear(7); again != got {
		t.Fatalf("same seed tore differently: %q vs %q", again, got)
	}
}

func TestInjectorPowerCutPoisonsLaterOps(t *testing.T) {
	in, err := NewInjector(OS, 1, Fault{Op: 2, Mode: ModeCrash})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := writeSyncScenario(in, filepath.Join(dir, "f")); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("err = %v, want ErrPowerCut", err)
	}
	if _, err := in.OpenFile(filepath.Join(dir, "g"), os.O_CREATE|os.O_RDWR, 0o644); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("post-crash open err = %v, want ErrPowerCut", err)
	}
	if err := in.Rename(filepath.Join(dir, "a"), filepath.Join(dir, "b")); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("post-crash rename err = %v, want ErrPowerCut", err)
	}
	var tr interface{ Transient() bool }
	err = in.SyncDir(dir)
	if !errors.As(err, &tr) || tr.Transient() {
		t.Fatalf("power cut must classify permanent, got %v", err)
	}
}

// TestInjectorDropSyncLosesTailOnCrash is the lying-hardware case: the
// sync at op 3 reports success without syncing, so the crash at op 5
// can tear away record-one too.
func TestInjectorDropSyncLosesTailOnCrash(t *testing.T) {
	// Seed chosen so the deterministic tear keeps a strict prefix;
	// any seed is legal, the assertion below only needs "no byte
	// beyond what an honest sync would have pinned is guaranteed".
	in, err := NewInjector(OS, 3, Fault{Op: 3, Mode: ModeDropSync}, Fault{Op: 5, Mode: ModeCrash})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "f")
	if err := writeSyncScenario(in, path); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("err = %v, want ErrPowerCut", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	full := "record-one\nrecord-two\n"
	if string(data) == full {
		t.Fatalf("dropped sync still produced a fully durable file")
	}
	if len(data) > len(full) || string(data) != full[:len(data)] {
		t.Fatalf("torn file %q is not a prefix of %q", data, full)
	}
}

func TestParsePlan(t *testing.T) {
	faults, err := ParsePlan("dropsync@4, crash@9")
	if err != nil {
		t.Fatal(err)
	}
	want := []Fault{{Op: 4, Mode: ModeDropSync}, {Op: 9, Mode: ModeCrash}}
	if !reflect.DeepEqual(faults, want) {
		t.Fatalf("ParsePlan = %v, want %v", faults, want)
	}
	for _, bad := range []string{"", "crash", "crash@0", "explode@3", "crash@x"} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted", bad)
		}
	}
	if _, err := NewInjector(OS, 1, Fault{Op: 3, Mode: ModeFail}, Fault{Op: 3, Mode: ModeCrash}); err == nil {
		t.Error("duplicate op accepted")
	}
}

func TestJobInjector(t *testing.T) {
	ji, err := ParseJobPlan("2:error@2,5:panic")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := ji.Before(ctx, 0, 1); err != nil {
		t.Fatalf("unplanned job faulted: %v", err)
	}
	for attempt := 1; attempt <= 2; attempt++ {
		err := ji.Before(ctx, 2, attempt)
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("job 2 attempt %d: err = %v, want ErrInjected", attempt, err)
		}
		var je *InjectedJobError
		if !errors.As(err, &je) || je.Attempt != attempt || !je.Transient() {
			t.Fatalf("job 2 attempt %d: err = %#v", attempt, err)
		}
	}
	if err := ji.Before(ctx, 2, 3); err != nil {
		t.Fatalf("job 2 attempt 3 should run clean, got %v", err)
	}
	func() {
		defer func() {
			r := recover()
			if _, ok := r.(*InjectedJobError); !ok {
				t.Fatalf("job 5 recover = %v, want *InjectedJobError", r)
			}
		}()
		ji.Before(ctx, 5, 1)
		t.Fatal("job 5 did not panic")
	}()

	stall, err := ParseJobPlan("0:stall")
	if err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if err := stall.Before(cctx, 0, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("stall err = %v, want context.Canceled", err)
	}
	// Stall defaults to every attempt.
	if err := stall.Before(cctx, 0, 7); !errors.Is(err, context.Canceled) {
		t.Fatalf("stall attempt 7 err = %v, want context.Canceled", err)
	}

	var nilInj *JobInjector
	if err := nilInj.Before(ctx, 0, 1); err != nil {
		t.Fatalf("nil injector faulted: %v", err)
	}

	for _, bad := range []string{"", "3", "3:explode", "x:error", "3:error@x", "-1:error"} {
		if _, err := ParseJobPlan(bad); err == nil {
			t.Errorf("ParseJobPlan(%q) accepted", bad)
		}
	}
}
