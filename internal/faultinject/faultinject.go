// Package faultinject is the deterministic fault-injection layer for
// the repository's durability seams. It owns the small filesystem
// interface (FS/File) that internal/atomicfile and runner.Journal
// write through, a passthrough OS implementation used in production,
// and an Injector that wraps any FS and fails, short-writes, drops a
// sync, or simulates a power cut at the k-th counted operation.
//
// The injector is what drives the crash-point torture suites: a test
// first runs the scenario against a counting injector to learn how
// many filesystem operations the lifetime performs, then replays the
// scenario once per operation index with a fault planted there,
// asserting that recovery always restores the documented invariants
// (journal recovers to a clean record prefix, atomicfile readers see
// either the old content or the new, never a hybrid).
//
// Everything is deterministic: which operation faults comes from the
// plan, and the only stochastic choice — how much of the unsynced
// tail survives a simulated power cut — is drawn from an explicitly
// seeded internal/rng generator, so a failing torture case replays
// bit-for-bit from its (seed, plan) pair.
package faultinject

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
)

// FS is the filesystem seam adopted by internal/atomicfile and
// runner.Journal. It is deliberately tiny: just the operations the
// durability-critical writers need, so an Injector can interpose on
// every one of them.
type FS interface {
	// OpenFile is os.OpenFile.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// CreateTemp is os.CreateTemp.
	CreateTemp(dir, pattern string) (File, error)
	// Rename is os.Rename.
	Rename(oldpath, newpath string) error
	// Remove is os.Remove.
	Remove(name string) error
	// SyncDir fsyncs the directory itself, making a preceding rename
	// or create durable. "" syncs the current directory.
	SyncDir(dir string) error
}

// File is the open-file seam: the subset of *os.File the journal and
// atomicfile use. Reads are never fault-injected (durability faults
// live on the write path), but they still flow through the wrapper so
// a crashed filesystem rejects them too.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	io.Seeker
	Name() string
	Sync() error
	Truncate(size int64) error
}

// OS is the passthrough filesystem used outside tests.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) SyncDir(dir string) error {
	if dir == "" {
		dir = "."
	}
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		// Some filesystems (and all directory handles on a few
		// platforms) refuse fsync on directories; the rename itself
		// already succeeded, so degrade to best-effort there.
		if errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP) || errors.Is(err, syscall.ENOTTY) {
			return nil
		}
		return err
	}
	return nil
}
