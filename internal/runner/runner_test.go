package runner

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"emissary/internal/core"
	"emissary/internal/sim"
	"emissary/internal/workload"
)

func TestWorkersNormalization(t *testing.T) {
	if w := Workers(0); w < 1 {
		t.Errorf("Workers(0) = %d", w)
	}
	if w := Workers(-3); w < 1 {
		t.Errorf("Workers(-3) = %d", w)
	}
	if w := Workers(7); w != 7 {
		t.Errorf("Workers(7) = %d", w)
	}
}

func TestDoReturnsResultsInJobOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		out, err := Do(context.Background(), 50, workers, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestDoZeroJobs(t *testing.T) {
	out, err := Do(context.Background(), 0, 4, func(_ context.Context, i int) (int, error) {
		t.Error("fn called with no jobs")
		return 0, nil
	})
	if err != nil || len(out) != 0 {
		t.Errorf("out = %v, err = %v", out, err)
	}
}

func TestDoNilContext(t *testing.T) {
	out, err := Do(nil, 3, 2, func(_ context.Context, i int) (int, error) { return i, nil })
	if err != nil || len(out) != 3 {
		t.Errorf("out = %v, err = %v", out, err)
	}
}

// TestDoFirstErrorCancels proves cancellation reaches in-flight jobs:
// job 0 fails while every other job blocks until its context is
// cancelled. The test hangs (and times out) if the error does not
// propagate.
func TestDoFirstErrorCancels(t *testing.T) {
	boom := errors.New("boom")
	_, err := Do(context.Background(), 8, 4, func(ctx context.Context, i int) (int, error) {
		if i == 0 {
			return 0, boom
		}
		<-ctx.Done()
		return 0, nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
}

func TestDoStopsSchedulingAfterError(t *testing.T) {
	var started atomic.Int64
	boom := errors.New("boom")
	// Sequential path: the error on job 2 must prevent jobs 3+.
	_, err := Do(context.Background(), 10, 1, func(_ context.Context, i int) (int, error) {
		started.Add(1)
		if i == 2 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
	if n := started.Load(); n != 3 {
		t.Errorf("started %d jobs, want 3", n)
	}
}

func TestDoParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var calls atomic.Int64
		_, err := Do(ctx, 5, workers, func(_ context.Context, i int) (int, error) {
			calls.Add(1)
			return i, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// Workers may each observe cancellation only after claiming an
		// index, but none should run more than one job.
		if n := calls.Load(); n > int64(workers) {
			t.Errorf("workers=%d: %d jobs ran after cancellation", workers, n)
		}
	}
}

func TestMapPassesItems(t *testing.T) {
	items := []string{"a", "bb", "ccc"}
	out, err := Map(context.Background(), items, 2, func(_ context.Context, i int, s string) (int, error) {
		return len(s), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, []int{1, 2, 3}) {
		t.Errorf("out = %v", out)
	}
}

func tinyOptions(t *testing.T, policy string, seed uint64) sim.Options {
	t.Helper()
	p, ok := workload.ProfileByName("xapian")
	if !ok {
		t.Fatal("xapian profile missing")
	}
	opt := sim.DefaultOptions(p, core.MustParsePolicy(policy))
	opt.WarmupInstrs = 20_000
	opt.MeasureInstrs = 80_000
	opt.Seed = seed
	return opt
}

// TestSimsMatchSequentialAtAnyWorkerCount is the core determinism
// guarantee: the same job list produces identical results at workers=1
// and workers=8.
func TestSimsMatchSequentialAtAnyWorkerCount(t *testing.T) {
	jobs := []sim.Options{
		tinyOptions(t, "TPLRU", 1),
		tinyOptions(t, "P(8):S&E", 2),
		tinyOptions(t, "P(8):S&E&R(1/32)", 3),
		tinyOptions(t, "DRRIP", 4),
	}
	seq, err := Sims(context.Background(), jobs, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Sims(context.Background(), jobs, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Error("parallel results differ from sequential")
	}
	// And against direct sim.Run calls.
	for i, job := range jobs {
		direct, err := sim.Run(job)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(direct, seq[i]) {
			t.Errorf("job %d: pooled result differs from direct sim.Run", i)
		}
	}
}

func TestSimsProgressSerialized(t *testing.T) {
	jobs := make([]sim.Options, 6)
	for i := range jobs {
		jobs[i] = tinyOptions(t, "TPLRU", uint64(i+1))
	}
	var (
		mu    sync.Mutex
		lines []string
		depth atomic.Int64
	)
	progress := func(r sim.Result) {
		if depth.Add(1) != 1 {
			t.Error("progress callback reentered")
		}
		mu.Lock()
		lines = append(lines, fmt.Sprintf("%s %d", r.Policy, r.Cycles))
		mu.Unlock()
		depth.Add(-1)
	}
	if _, err := Sims(context.Background(), jobs, 4, progress); err != nil {
		t.Fatal(err)
	}
	if len(lines) != len(jobs) {
		t.Errorf("progress called %d times, want %d", len(lines), len(jobs))
	}
}

func TestSimsErrorPropagates(t *testing.T) {
	bad := sim.Options{} // MeasureInstrs == 0 is rejected by sim.Run
	if _, err := Sims(context.Background(), []sim.Options{bad}, 4, nil); err == nil {
		t.Error("invalid job accepted")
	}
}

// TestReplicatedMatchesSequential proves the parallel replica path is
// bit-identical to sim.RunReplicated.
func TestReplicatedMatchesSequential(t *testing.T) {
	opt := tinyOptions(t, "P(8):S&E&R(1/32)", 7)
	seq, err := sim.RunReplicated(opt, 4)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Replicated(context.Background(), opt, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Error("parallel replication differs from sequential")
	}
	if _, err := Replicated(context.Background(), opt, 0, 2); err == nil {
		t.Error("zero replicas accepted")
	}
}
