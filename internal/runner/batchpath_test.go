package runner

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"emissary/internal/core"
	"emissary/internal/pipeline"
	"emissary/internal/sim"
	"emissary/internal/workload"
)

// batchMixJobs builds a sweep spanning several stream groups plus
// singletons: six same-stream xapian policy jobs, a pair on a longer
// measurement horizon, and one tomcat job — so one run exercises
// multi-member batches, a two-member batch, and the single-job path.
func batchMixJobs(t *testing.T) []sim.Options {
	t.Helper()
	jobs := warmPoolJobs(t)
	long1 := tinyOptions(t, "TPLRU", 7)
	long1.MeasureInstrs = 40_000
	long2 := tinyOptions(t, "SRRIP", 8)
	long2.MeasureInstrs = 40_000
	p, ok := workload.ProfileByName("tomcat")
	if !ok {
		t.Fatal("tomcat profile missing")
	}
	tom := sim.DefaultOptions(p, core.MustParsePolicy("GHRP"))
	tom.WarmupInstrs = 20_000
	tom.MeasureInstrs = 80_000
	tom.Seed = 9
	return append(jobs, long1, long2, tom)
}

// TestSimsBatchedMatchesNoBatch is the runner-level batching contract:
// the default batched sweep must be byte-identical to the same sweep
// with NoBatch set, at every worker count (go test -race covers this
// file, so the parallel batched path runs under the race detector).
func TestSimsBatchedMatchesNoBatch(t *testing.T) {
	jobs := batchMixJobs(t)
	ctx := context.Background()
	plain, err := RunSimsStats(ctx, jobs, SimsConfig{Workers: 1, NoBatch: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		got, err := RunSimsStats(ctx, jobs, SimsConfig{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(plain, got) {
			t.Errorf("workers=%d: batched outcomes differ from NoBatch", workers)
		}
	}
}

// TestSimsBatchedFailureMatchesNoBatch pins failure parity: a member
// whose cycle budget trips mid-batch yields the same *JobError-wrapped
// StallError, and the same surviving outcomes, as the non-batched
// sweep under Continue.
func TestSimsBatchedFailureMatchesNoBatch(t *testing.T) {
	jobs := batchMixJobs(t)
	jobs[2].MaxCycles = 1_000
	ctx := context.Background()
	plain, plainErr := RunSimsStats(ctx, jobs, SimsConfig{Workers: 1, NoBatch: true, Policy: Continue})
	if plainErr == nil {
		t.Fatal("budgeted job did not fail the NoBatch sweep")
	}
	for _, workers := range []int{1, 4} {
		got, gotErr := RunSimsStats(ctx, jobs, SimsConfig{Workers: workers, Policy: Continue})
		if gotErr == nil {
			t.Fatalf("workers=%d: budgeted job did not fail the batched sweep", workers)
		}
		var stall *pipeline.StallError
		if !errors.As(gotErr, &stall) {
			t.Errorf("workers=%d: batched error chain lost the StallError: %v", workers, gotErr)
		}
		if !reflect.DeepEqual(plain, got) {
			t.Errorf("workers=%d: batched outcomes differ from NoBatch after a failure", workers)
		}
		if !reflect.DeepEqual(plainErr, gotErr) {
			t.Errorf("workers=%d: batched error differs from NoBatch:\nbatched: %#v\nplain:   %#v", workers, gotErr, plainErr)
		}
	}
}

// TestSimsBatchFailedMemberDiscardsOwnSlot is the warm-pool × batch
// isolation contract: when one batch member fails, only its own slot
// is discarded from the worker's rack — its batch-mates' slots stay
// racked and their results remain byte-identical to cold — and the
// next sweep on the same pool rebuilds the hole transparently.
func TestSimsBatchFailedMemberDiscardsOwnSlot(t *testing.T) {
	healthy := warmPoolJobs(t) // one stream group: a single 6-member batch
	ctx := context.Background()
	cold, err := RunSimsStats(ctx, healthy, SimsConfig{Workers: 1, ColdStart: true})
	if err != nil {
		t.Fatal(err)
	}

	jobs := warmPoolJobs(t)
	jobs[2].MaxCycles = 1_000
	pool := NewBatchPool()
	got, gotErr := RunSimsStats(ctx, jobs, SimsConfig{Workers: 1, Policy: Continue, Batch: pool})
	if gotErr == nil {
		t.Fatal("budgeted member did not fail the sweep")
	}
	fails := Failures(gotErr)
	if len(fails) != 1 || fails[0].Job != 2 {
		t.Fatalf("expected exactly job 2 to fail, got %v", gotErr)
	}
	slots := pool.racks[0].slots
	for k := range jobs {
		if k == 2 {
			if slots[k] != nil {
				t.Error("failed member's slot was returned to the rack")
			}
			continue
		}
		if slots[k] == nil {
			t.Errorf("surviving member %d's slot was discarded", k)
		}
		if !reflect.DeepEqual(got[k], cold[k]) {
			t.Errorf("surviving member %d diverged from cold", k)
		}
	}
	if !reflect.DeepEqual(got[2], SimOutcome{}) {
		t.Error("failed member reported a non-zero outcome")
	}

	// The next sweep on the same pool rebuilds the discarded slot and
	// still matches cold.
	again, err := RunSimsStats(ctx, healthy, SimsConfig{Workers: 1, Batch: pool})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, again) {
		t.Error("post-failure sweep on the reused pool diverged from cold")
	}
	for k := range healthy {
		if pool.racks[0].slots[k] == nil {
			t.Errorf("slot %d not repopulated by the clean sweep", k)
		}
	}
}

// TestSimsBatchPoolReuse reuses one caller-owned BatchPool across
// consecutive sweeps (the throughput bench's steady-state pattern):
// every round stays byte-identical to cold and the racks stay warm.
func TestSimsBatchPoolReuse(t *testing.T) {
	jobs := warmPoolJobs(t)
	ctx := context.Background()
	cold, err := RunSimsStats(ctx, jobs, SimsConfig{Workers: 1, ColdStart: true})
	if err != nil {
		t.Fatal(err)
	}
	pool := NewBatchPool()
	for round := 0; round < 3; round++ {
		got, err := RunSimsStats(ctx, jobs, SimsConfig{Workers: 1, Batch: pool})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !reflect.DeepEqual(cold, got) {
			t.Errorf("round %d: batched outcomes differ from ColdStart", round)
		}
		if pool.racks[0].exec == nil || pool.racks[0].slots[0] == nil {
			t.Fatalf("round %d: pool rack not populated", round)
		}
	}
}

// TestSimsBatchedRetrySchedule pins retry parity: a fault injected into
// a batch member's first attempt retries on the single-job path with
// the same attempt numbering and backoff draws as the non-batched
// sweep — one member recovers on attempt 2, another exhausts its
// budget, and both outcomes and errors match NoBatch exactly.
func TestSimsBatchedRetrySchedule(t *testing.T) {
	jobs := warmPoolJobs(t)
	ctx := context.Background()
	var plainDraws, batchDraws []time.Duration
	mkCfg := func(noBatch bool, draws *[]time.Duration) SimsConfig {
		return SimsConfig{
			Workers: 1,
			NoBatch: noBatch,
			Policy:  Continue,
			Inject: func(_ context.Context, job, attempt int) error {
				if job == 3 && attempt == 1 {
					return fmt.Errorf("flaky fixture")
				}
				if job == 5 {
					return fmt.Errorf("hard fixture")
				}
				return nil
			},
			Retry: RetryPolicy{
				MaxAttempts: 2,
				Classify:    func(error) ErrorClass { return Transient },
				Sleep: func(_ context.Context, d time.Duration) error {
					*draws = append(*draws, d)
					return nil
				},
			},
		}
	}
	plain, plainErr := RunSimsStats(ctx, jobs, mkCfg(true, &plainDraws))
	got, gotErr := RunSimsStats(ctx, jobs, mkCfg(false, &batchDraws))
	if plainErr == nil || gotErr == nil {
		t.Fatalf("exhausted job did not fail (plain=%v batched=%v)", plainErr, gotErr)
	}
	if !reflect.DeepEqual(plain, got) {
		t.Error("batched outcomes differ from NoBatch under retry")
	}
	if !reflect.DeepEqual(plainErr, gotErr) {
		t.Errorf("batched error differs from NoBatch:\nbatched: %#v\nplain:   %#v", gotErr, plainErr)
	}
	if !reflect.DeepEqual(plainDraws, batchDraws) {
		t.Errorf("backoff schedules diverged: batched %v, plain %v", batchDraws, plainDraws)
	}
	fails := Failures(gotErr)
	if len(fails) != 1 || fails[0].Job != 5 || fails[0].Attempt != 2 {
		t.Fatalf("expected job 5 to fail on attempt 2, got %v", gotErr)
	}
}
