package runner

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"emissary/internal/faultinject"
	"emissary/internal/sim"
)

// mustRecord runs opt and journals its result, returning the result.
func mustRecord(t *testing.T, j *Journal, opt sim.Options) sim.Result {
	t.Helper()
	res, err := sim.Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record(opt, res); err != nil {
		t.Fatal(err)
	}
	return res
}

// TestJournalMidFileCorruptionSalvage proves corruption in the middle
// of the file no longer silently discards everything after it: the
// clean prefix survives, and Recovery reports exactly how many valid
// records and bytes the truncation cost.
func TestJournalMidFileCorruptionSalvage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mid.journal")
	opts := []sim.Options{
		tinyOptions(t, "TPLRU", 1),
		tinyOptions(t, "DRRIP", 2),
		tinyOptions(t, "P(8):S&E", 3),
	}
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	wantFirst := mustRecord(t, j, opts[0])
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	healthy, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	firstLen := int64(len(healthy))

	// Corrupt the middle: garbage where record 2 would be, then two
	// perfectly valid records that the clean-prefix rule must discard.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("{\"fingerprint\": 12 garbage}\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	// Trick: append the two valid records through a scratch journal so
	// they are real, loadable lines — then splice them after the
	// corruption.
	scratchPath := filepath.Join(t.TempDir(), "scratch.journal")
	scratch, err := OpenJournal(scratchPath)
	if err != nil {
		t.Fatal(err)
	}
	mustRecord(t, scratch, opts[1])
	mustRecord(t, scratch, opts[2])
	scratch.Close()
	j2.Close()
	valid, err := os.ReadFile(scratchPath)
	if err != nil {
		t.Fatal(err)
	}
	// j2's open truncated the garbage; rebuild: record1 + garbage +
	// two valid records.
	full := append([]byte{}, healthy...)
	garbage := "{\"fingerprint\": 12 garbage}\n"
	full = append(full, garbage...)
	full = append(full, valid...)
	if err := os.WriteFile(path, full, 0o644); err != nil {
		t.Fatal(err)
	}

	j3, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("corrupt mid-file journal rejected: %v", err)
	}
	defer j3.Close()
	if n := j3.Completed(); n != 1 {
		t.Fatalf("Completed = %d, want 1 (clean prefix only)", n)
	}
	got, ok := j3.Lookup(opts[0])
	if !ok || !reflect.DeepEqual(got, wantFirst) {
		t.Fatal("clean-prefix record lost or altered")
	}
	rec := j3.Recovery()
	if rec.DiscardedRecords != 2 {
		t.Errorf("DiscardedRecords = %d, want 2", rec.DiscardedRecords)
	}
	wantBytes := int64(len(full)) - firstLen
	if rec.DiscardedBytes != wantBytes {
		t.Errorf("DiscardedBytes = %d, want %d", rec.DiscardedBytes, wantBytes)
	}
	// And the file really was truncated back to the clean prefix.
	onDisk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(onDisk) != string(healthy) {
		t.Errorf("on-disk journal not trimmed to the clean prefix")
	}
}

// TestJournalTornTailRecoveryReport pins the ordinary crash signature:
// a torn final line reports bytes but no whole records.
func TestJournalTornTailRecoveryReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.journal")
	opt := tinyOptions(t, "TPLRU", 1)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	mustRecord(t, j, opt)
	j.Close()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := `{"fingerprint":"half-writ`
	if _, err := f.WriteString(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	rec := j2.Recovery()
	if rec.DiscardedRecords != 0 {
		t.Errorf("DiscardedRecords = %d, want 0 for a torn tail", rec.DiscardedRecords)
	}
	if rec.DiscardedBytes != int64(len(torn)) {
		t.Errorf("DiscardedBytes = %d, want %d", rec.DiscardedBytes, len(torn))
	}

	// A healthy reopen reports nothing discarded.
	j2.Close()
	j3, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if rec := j3.Recovery(); rec != (JournalRecovery{}) {
		t.Errorf("healthy reopen Recovery = %+v, want zero", rec)
	}
}

// TestJournalRejectsOversizedRecord proves the size guard fires at
// write time — the failure mode used to be a poisoned file that only
// blew up on the *next* open.
func TestJournalRejectsOversizedRecord(t *testing.T) {
	old := journalLineLimit
	journalLineLimit = 128
	defer func() { journalLineLimit = old }()

	path := filepath.Join(t.TempDir(), "cap.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	opt := tinyOptions(t, "TPLRU", 1)
	res, err := sim.Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	err = j.Record(opt, res)
	if !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("err = %v, want ErrRecordTooLarge", err)
	}
	var tooBig *RecordTooLargeError
	if !errors.As(err, &tooBig) || tooBig.Max != 128 || tooBig.Size <= 128 {
		t.Fatalf("err = %#v, want a sized *RecordTooLargeError", err)
	}
	// The refusal left the file empty and the journal usable.
	if info, err := os.Stat(path); err != nil || info.Size() != 0 {
		t.Fatalf("oversized record leaked onto disk (size %d, err %v)", info.Size(), err)
	}
	journalLineLimit = old
	if err := j.Record(opt, res); err != nil {
		t.Fatalf("journal unusable after a rejected record: %v", err)
	}
}

// TestJournalAdvisoryLock proves a second writer on one journal is
// rejected while the first is open, in-process and cross-process
// alike, and that stale locks are stolen.
func TestJournalAdvisoryLock(t *testing.T) {
	path := filepath.Join(t.TempDir(), "locked.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(path); !errors.Is(err, ErrJournalLocked) {
		t.Fatalf("second open err = %v, want ErrJournalLocked", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".lock"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("lock file survives Close: %v", err)
	}

	// A lock naming a dead process is stale — stolen silently.
	if err := os.WriteFile(path+".lock", []byte("999999999\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("dead-pid lock not stolen: %v", err)
	}
	j2.Close()

	// A lock naming our own pid with no in-process registration is
	// debris from a crashed lifetime of this process — stolen too.
	if err := os.WriteFile(path+".lock", []byte(strconv.Itoa(os.Getpid())+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	j3, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("own-pid stale lock not stolen: %v", err)
	}
	j3.Close()

	// An unreadable pid is debris as well.
	if err := os.WriteFile(path+".lock", []byte("not a pid"), 0o644); err != nil {
		t.Fatal(err)
	}
	j4, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("garbage lock not stolen: %v", err)
	}
	j4.Close()

	// A lock naming a live foreign process blocks. PID 1 is always
	// alive; the probe may or may not have permission to signal it,
	// and EPERM reads as dead by design — so only assert when the
	// probe sees it alive.
	if processAlive(1) {
		if err := os.WriteFile(path+".lock", []byte("1\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err = OpenJournal(path)
		if !errors.Is(err, ErrJournalLocked) {
			t.Fatalf("live-pid lock err = %v, want ErrJournalLocked", err)
		}
		var le *JournalLockedError
		if !errors.As(err, &le) || le.PID != 1 {
			t.Fatalf("err = %#v, want pid 1 in *JournalLockedError", err)
		}
		os.Remove(path + ".lock")
	}
}

// TestJournalCloseSyncsBeforeClose pins the Close ordering through the
// injector's operation trace: the final operations on the journal file
// are sync, then close, then the lock removal.
func TestJournalCloseSyncsBeforeClose(t *testing.T) {
	inj, err := faultinject.NewInjector(faultinject.OS, 1)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sync.journal")
	j, err := OpenJournalFS(inj, path)
	if err != nil {
		t.Fatal(err)
	}
	mustRecord(t, j, tinyOptions(t, "TPLRU", 1))
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("second Close not idempotent: %v", err)
	}
	trace := inj.Trace()
	if len(trace) < 3 {
		t.Fatalf("trace too short: %v", trace)
	}
	tail := trace[len(trace)-3:]
	if !strings.HasPrefix(tail[0], "sync "+path) ||
		!strings.HasPrefix(tail[1], "close "+path) ||
		!strings.HasPrefix(tail[2], "remove "+path+".lock") {
		t.Fatalf("Close tail = %v, want sync, close, remove-lock", tail)
	}
}
