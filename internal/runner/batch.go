// Batched lockstep execution: RunSimsStats groups jobs that share an
// architectural stream (sim.BatchKey — same workload profile, seed,
// and horizon) and runs each group through a per-worker sim.Batch, so
// a sweep of R policies over one workload pays for block-stream
// generation once per group instead of once per job. Grouping is
// scheduling metadata only: results remain in job order and
// byte-identical to the sequential path at any worker count.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"emissary/internal/sim"
)

// DefaultMaxBatch caps how many members one lockstep batch carries. A
// batch holds every member's core and hierarchy live at once, so the
// cap bounds per-worker memory and keeps one failed batch's blast
// radius (members sharing a panic-corrupted executor round) small;
// larger groups simply split into consecutive batches on one stream
// each.
const DefaultMaxBatch = 32

// BatchPool carries the batched path's reusable execution state across
// RunSimsStats calls: per-worker lockstep executors with their member
// slot racks, plus the grouping plan's scratch. Like WarmPool, worker
// indices partition it — each rack is only touched by its own worker
// goroutine — and the caller must not use one BatchPool from two
// concurrent RunSimsStats calls. The throughput bench owns one across
// sweep windows to measure steady-state batches with zero allocations.
type BatchPool struct {
	racks []*batchRack
	plan  batchPlan
}

// NewBatchPool returns an empty pool; sweeps populate it on first use.
func NewBatchPool() *BatchPool {
	return &BatchPool{}
}

// grow pre-sizes the rack table on the caller's goroutine, so workers
// only ever read the slice.
func (p *BatchPool) grow(workers int) {
	for len(p.racks) < workers {
		p.racks = append(p.racks, &batchRack{})
	}
}

// rack returns the given worker's rack; grow must have covered the
// index already (workers never mutate the table).
func (p *BatchPool) rack(worker int) *batchRack {
	return p.racks[worker]
}

// batchRack is one worker's reusable batch state: the lockstep
// executor, the member slot rack (nil entries are rebuilt by the
// executor; a failed member's slot is discarded back to nil), and the
// per-unit scratch for collecting runnable members.
type batchRack struct {
	exec  *sim.Batch
	slots []*sim.Warm
	idx   []int
	opts  []sim.Options
}

// planUnit is one schedulable unit: members[lo:hi] of the plan's
// member arena. A unit of one job runs on the plain per-job path; a
// larger unit runs as one lockstep batch.
type planUnit struct{ lo, hi int }

// batchPlan is the grouping scratch, reused across sweeps so planning
// allocates nothing in steady state.
type batchPlan struct {
	keys    map[sim.BatchKey]int
	counts  []int
	offs    []int
	groupOf []int
	members []int
	units   []planUnit
}

// resizeInts returns s with length n, reallocating only on growth.
func resizeInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// build groups jobs by stream key in first-occurrence order and chunks
// each group to maxBatch members. Unit order is deterministic (group
// first-occurrence, then chunk order) but is scheduling metadata only:
// every job's output is written to its own index.
func (p *batchPlan) build(jobs []sim.Options, maxBatch int) []planUnit {
	n := len(jobs)
	if p.keys == nil {
		p.keys = make(map[sim.BatchKey]int)
	} else {
		clear(p.keys)
	}
	p.groupOf = resizeInts(p.groupOf, n)
	p.counts = p.counts[:0]
	for i := range jobs {
		key, ok := sim.BatchKeyOf(jobs[i])
		if !ok {
			// Unbatchable (trace replay): a group of its own.
			p.groupOf[i] = len(p.counts)
			p.counts = append(p.counts, 1)
			continue
		}
		g, seen := p.keys[key]
		if !seen {
			g = len(p.counts)
			p.keys[key] = g
			p.counts = append(p.counts, 0)
		}
		p.groupOf[i] = g
		p.counts[g]++
	}

	p.offs = p.offs[:0]
	total := 0
	for _, c := range p.counts {
		p.offs = append(p.offs, total)
		total += c
	}
	p.members = resizeInts(p.members, total)
	for i := 0; i < n; i++ {
		g := p.groupOf[i]
		p.members[p.offs[g]] = i
		p.offs[g]++
	}

	// offs[g] now marks the end of group g's members.
	p.units = p.units[:0]
	for g, c := range p.counts {
		end := p.offs[g]
		for lo := end - c; lo < end; lo += maxBatch {
			hi := lo + maxBatch
			if hi > end {
				hi = end
			}
			p.units = append(p.units, planUnit{lo, hi})
		}
	}
	return p.units
}

// batchedSims is one RunSimsStats invocation's batched execution
// state, threading the shared hooks (progress, journal, retry, the
// per-job fallback fn) into unit execution.
type batchedSims struct {
	jobs   []sim.Options
	cfg    SimsConfig
	retry  RetryPolicy
	report func(sim.Result)
	record func(opt sim.Options, res sim.Result, st sim.RunStats) error
	jobFn  func(ctx context.Context, i, attempt, worker int) (SimOutcome, error)

	outs    []SimOutcome
	jobErrs []error
}

// run executes the sweep batched: plan on the caller goroutine, units
// across the pool, results and error reporting matching the per-job
// path's contract exactly (job order, FailFast first error, Continue
// joined job errors plus any context error).
func (b *batchedSims) run(ctx context.Context) ([]SimOutcome, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := len(b.jobs)
	b.outs = make([]SimOutcome, n)
	if n == 0 {
		return b.outs, ctx.Err()
	}
	b.jobErrs = make([]error, n)
	pool := b.cfg.Batch
	if pool == nil {
		pool = NewBatchPool()
	}
	maxBatch := b.cfg.MaxBatch
	if maxBatch <= 0 {
		maxBatch = DefaultMaxBatch
	}
	units := pool.plan.build(b.jobs, maxBatch)
	pool.grow(Workers(b.cfg.Workers))

	err := runUnits(ctx, len(units), b.cfg.Workers, b.cfg.Policy, func(ctx context.Context, u, worker int) error {
		unit := units[u]
		return b.runUnit(ctx, pool.plan.members[unit.lo:unit.hi], worker, pool)
	})
	if b.cfg.Policy == FailFast {
		if err != nil {
			return nil, err
		}
		return b.outs, nil
	}
	all := compact(b.jobErrs)
	if err != nil {
		all = append(all, err)
	}
	if len(all) > 0 {
		return b.outs, errors.Join(all...)
	}
	return b.outs, nil
}

// fail records a job's final error under Continue or surfaces it to
// cancel the sweep under FailFast.
func (b *batchedSims) fail(i int, err error) error {
	if b.cfg.Policy == FailFast {
		return err
	}
	b.jobErrs[i] = err
	return nil
}

// runUnit executes one schedulable unit on its worker. Single-job
// units take the plain per-job path (warm slot, full retry loop).
// Multi-member units run attempt 1 of every member in one lockstep
// batch; members that fail transiently are retried individually from
// attempt 2 on the worker's single-job slot, preserving the exact
// attempt schedule (attempt numbers, backoff draws) of the
// non-batched path.
func (b *batchedSims) runUnit(ctx context.Context, members []int, worker int, pool *BatchPool) error {
	if len(members) == 1 {
		i := members[0]
		v, err := attemptJob(ctx, i, worker, b.retry, b.jobFn)
		if err != nil {
			return b.fail(i, err)
		}
		b.outs[i] = v
		return nil
	}

	rack := pool.rack(worker)
	rack.idx = rack.idx[:0]
	rack.opts = rack.opts[:0]
	for _, i := range members {
		hit, err := b.preMember(ctx, i)
		if err != nil {
			if ferr := b.retryMember(ctx, i, worker, err); ferr != nil {
				if uerr := b.fail(i, ferr); uerr != nil {
					return uerr
				}
			}
			continue
		}
		if hit {
			continue
		}
		rack.idx = append(rack.idx, i)
		rack.opts = append(rack.opts, b.jobs[i])
	}
	if len(rack.idx) == 0 {
		return nil
	}

	if rack.exec == nil {
		rack.exec = sim.NewBatch()
	}
	for len(rack.slots) < len(rack.idx) {
		rack.slots = append(rack.slots, nil)
	}
	results := rack.exec.Run(ctx, rack.opts, rack.slots[:len(rack.idx)])
	for k, i := range rack.idx {
		br := results[k]
		if br.Err == nil {
			// Clean member: its slot stays racked for the next batch —
			// post-batch trouble (journal I/O, a panicking progress
			// hook) is not simulator corruption, exactly like the
			// sequential path.
			if jerr := b.postMember(i, br); jerr != nil {
				if ferr := b.retryMember(ctx, i, worker, jerr); ferr != nil {
					if uerr := b.fail(i, ferr); uerr != nil {
						return uerr
					}
				}
			}
			continue
		}
		// Failed member: its possibly half-mutated slot is discarded;
		// the executor rebuilds the nil entry next batch.
		rack.slots[k] = nil
		cause, stack := br.Err, []byte(nil)
		if p, ok := cause.(*sim.BatchPanic); ok {
			cause, stack = p.Cause, p.Stack
		}
		ferr := b.retryMember(ctx, i, worker, &JobError{Job: i, Attempt: 1, Cause: cause, Stack: stack})
		if ferr != nil {
			if uerr := b.fail(i, ferr); uerr != nil {
				return uerr
			}
		}
	}
	return nil
}

// preMember runs a member's pre-batch steps — the journal lookup —
// under runJob's panic conversion, so a panicking hook fails its own
// member instead of tearing down the sweep. hit reports the job was
// served from the journal (its outcome is recorded).
func (b *batchedSims) preMember(ctx context.Context, i int) (hit bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			cause, ok := r.(error)
			if !ok {
				cause = fmt.Errorf("%v", r)
			}
			err = &JobError{Job: i, Attempt: 1, Cause: cause, Stack: debug.Stack()}
		}
	}()
	if b.cfg.Journal != nil {
		if out, ok := b.cfg.Journal.LookupStats(b.jobs[i]); ok {
			b.report(out.Result)
			b.outs[i] = out
			return true, nil
		}
	}
	// No Inject call here: fault-injected sweeps take the sequential
	// path (see the dispatch in RunSimsStats), where injector ordering
	// semantics — one stall blocks one job — actually hold.
	return false, nil
}

// postMember completes a cleanly-simulated member — journal record,
// outcome, progress — under the same panic conversion as preMember.
func (b *batchedSims) postMember(i int, br sim.BatchResult) (err error) {
	defer func() {
		if r := recover(); r != nil {
			cause, ok := r.(error)
			if !ok {
				cause = fmt.Errorf("%v", r)
			}
			err = &JobError{Job: i, Attempt: 1, Cause: cause, Stack: debug.Stack()}
		}
	}()
	if jerr := b.record(b.jobs[i], br.Result, br.Stats); jerr != nil {
		return &JobError{Job: i, Attempt: 1, Cause: jerr}
	}
	b.outs[i] = SimOutcome{Result: br.Result, Stats: br.Stats}
	b.report(br.Result)
	return nil
}

// retryMember continues a member's retry loop after its batched
// attempt 1 failed, mirroring attemptJob's schedule exactly: classify,
// deterministic backoff, then individual attempts 2..MaxAttempts on
// the worker's single-job path. Returns nil if a retry succeeded (the
// outcome is recorded), else the final attempt's error.
func (b *batchedSims) retryMember(ctx context.Context, i, worker int, err error) error {
	max := b.retry.maxAttempts()
	for attempt := 1; ; attempt++ {
		if attempt >= max || ctx.Err() != nil {
			return err
		}
		if b.retry.classify()(err) != Transient {
			return err
		}
		d := b.retry.backoff()(b.retry.seed(i), i, attempt)
		if serr := b.retry.sleep()(ctx, d); serr != nil {
			return err // cancelled mid-backoff: report the job's failure
		}
		v, nerr := runJob(ctx, i, attempt+1, worker, b.jobFn)
		if nerr == nil {
			b.outs[i] = v
			return nil
		}
		err = nerr
	}
}

// runUnits schedules n units across the pool with stable worker
// indices (the same partitioning contract as doRetryPolicyWorker: no
// two concurrent units share a worker index, so per-worker racks need
// no locks). run returns a non-nil error only to trigger FailFast;
// under Continue the unit records its own job errors and returns nil.
func runUnits(ctx context.Context, n, workers int, policy FailurePolicy, run func(ctx context.Context, unit, worker int) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if n == 0 {
		return ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for u := 0; u < n; u++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := run(ctx, u, 0); err != nil && policy == FailFast {
				return err
			}
		}
		return ctx.Err()
	}

	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		next     atomic.Int64
		errOnce  sync.Once
		firstErr error
	)
	work := func(worker int) {
		defer wg.Done()
		for {
			u := int(next.Add(1)) - 1
			if u >= n || ctx.Err() != nil {
				return
			}
			if err := run(ctx, u, worker); err != nil && policy == FailFast {
				errOnce.Do(func() {
					firstErr = err
					cancel()
				})
				return
			}
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go work(w)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return parent.Err()
}
