package runner

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"emissary/internal/sim"
)

func warmPoolJobs(t *testing.T) []sim.Options {
	t.Helper()
	return []sim.Options{
		tinyOptions(t, "TPLRU", 1),
		tinyOptions(t, "P(8):S&E", 2),
		tinyOptions(t, "P(8):S&E&R(1/32)", 3),
		tinyOptions(t, "DRRIP", 4),
		tinyOptions(t, "SRRIP", 5),
		tinyOptions(t, "GHRP", 6),
	}
}

// TestSimsWarmPoolMatchesColdStart is the sweep-level byte-identity
// contract: the default warm-pooled run must equal a ColdStart run of
// the same jobs at every worker count, including under the race
// detector (go test -race covers this file).
func TestSimsWarmPoolMatchesColdStart(t *testing.T) {
	jobs := warmPoolJobs(t)
	ctx := context.Background()
	cold, err := RunSimsStats(ctx, jobs, SimsConfig{Workers: 1, ColdStart: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		warm, err := RunSimsStats(ctx, jobs, SimsConfig{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(cold, warm) {
			t.Errorf("workers=%d: warm-pooled outcomes differ from ColdStart", workers)
		}
	}
}

// TestSimsWarmPoolCallerRack reuses one caller-owned rack across
// consecutive sweeps: results stay byte-identical to cold, and the
// rack holds populated slots afterwards (the second sweep ran warm).
// NoBatch pins the single-job slot path specifically — these jobs all
// share one stream, so the default batched path would never touch the
// rack (TestSimsBatchPoolReuse covers the batched equivalent).
func TestSimsWarmPoolCallerRack(t *testing.T) {
	jobs := warmPoolJobs(t)
	ctx := context.Background()
	cold, err := RunSimsStats(ctx, jobs, SimsConfig{Workers: 1, ColdStart: true})
	if err != nil {
		t.Fatal(err)
	}
	rack := make([]*sim.Warm, Workers(1))
	for round := 0; round < 3; round++ {
		got, err := RunSimsStats(ctx, jobs, SimsConfig{Workers: 1, WarmPool: rack, NoBatch: true})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !reflect.DeepEqual(cold, got) {
			t.Errorf("round %d: rack-pooled outcomes differ from ColdStart", round)
		}
		if rack[0] == nil {
			t.Fatalf("round %d: clean sweep did not return the slot to the rack", round)
		}
	}
}

// TestSimsWarmPoolTooSmall pins the sizing check: a rack with fewer
// slots than workers is a caller bug reported up front, not a panic
// mid-sweep.
func TestSimsWarmPoolTooSmall(t *testing.T) {
	jobs := warmPoolJobs(t)
	_, err := RunSimsStats(context.Background(), jobs, SimsConfig{
		Workers:  4,
		WarmPool: make([]*sim.Warm, 2),
	})
	if err == nil {
		t.Fatal("undersized WarmPool accepted")
	}
	if !strings.Contains(err.Error(), "WarmPool") {
		t.Errorf("error does not name WarmPool: %v", err)
	}
}
