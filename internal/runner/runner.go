// Package runner schedules independent simulations across a pool of
// worker goroutines.
//
// The experiment matrix is embarrassingly parallel — every (benchmark,
// policy, seed) point is a self-contained simulation — so the pool
// preserves the sequential contract exactly: results come back in job
// order regardless of completion order, every job's options are fully
// determined before it is enqueued (so output is bit-identical at any
// worker count), and progress callbacks are serialized.
//
// Fault tolerance: a job that panics is recovered into a typed
// *JobError (index, cause, stack) instead of tearing down the process,
// and a FailurePolicy selects what happens next — FailFast cancels the
// sweep on the first failure (the historical behaviour), Continue
// drains every remaining job and reports all failures in job order.
// An optional Journal checkpoints completed simulations so an
// interrupted sweep resumes without recomputing them.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"emissary/internal/sim"
)

// FailurePolicy selects how a pool reacts to a failing job.
type FailurePolicy int

const (
	// FailFast cancels all outstanding jobs on the first failure and
	// returns only that error: correct for experiments whose artifacts
	// need the complete matrix.
	FailFast FailurePolicy = iota
	// Continue keeps draining the remaining jobs when one fails: the
	// surviving results come back (failed slots hold zero values) and
	// the error is an errors.Join of every *JobError in job order.
	// Surviving jobs are byte-identical to a run without the failures
	// — per-job options are fixed before scheduling, so a failed
	// neighbour cannot perturb them.
	Continue
)

// JobError is one job's failure: its index into the job list, the
// attempt that failed (1-based; only the final attempt's error is
// reported), the cause, and — when the job panicked — the recovered
// panic's stack. errors.Is/As see through it via Unwrap.
type JobError struct {
	Job     int
	Attempt int
	Cause   error
	Stack   []byte // non-nil only for recovered panics
}

func (e *JobError) Error() string {
	attempt := ""
	if e.Attempt > 1 {
		attempt = fmt.Sprintf(" (attempt %d)", e.Attempt)
	}
	if e.Stack != nil {
		return fmt.Sprintf("job %d%s: panic: %v", e.Job, attempt, e.Cause)
	}
	return fmt.Sprintf("job %d%s: %v", e.Job, attempt, e.Cause)
}

func (e *JobError) Unwrap() error { return e.Cause }

// Failures flattens the error tree a pool returns (single *JobError,
// errors.Join of them, or wrapped forms) into the job errors it
// carries, in the order joined — job order under Continue.
func Failures(err error) []*JobError {
	var out []*JobError
	var walk func(error)
	walk = func(err error) {
		if err == nil {
			return
		}
		// A direct assertion, not errors.As: As would traverse into a
		// joined error's children and surface only the first failure.
		if je, ok := err.(*JobError); ok {
			out = append(out, je)
			return
		}
		switch u := err.(type) {
		case interface{ Unwrap() []error }:
			for _, e := range u.Unwrap() {
				walk(e)
			}
		case interface{ Unwrap() error }:
			walk(u.Unwrap())
		}
	}
	walk(err)
	return out
}

// Workers normalizes a worker-count request: n < 1 selects
// runtime.GOMAXPROCS(0), i.e. one worker per available CPU.
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// runJob executes fn(ctx, i, attempt, worker), converting an error
// return or a panic into a *JobError. The recover here is what keeps
// one corrupted simulation from destroying every completed result in
// the process.
func runJob[T any](ctx context.Context, i, attempt, worker int, fn func(ctx context.Context, i, attempt, worker int) (T, error)) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			cause, ok := r.(error)
			if !ok {
				cause = fmt.Errorf("%v", r)
			}
			err = &JobError{Job: i, Attempt: attempt, Cause: cause, Stack: debug.Stack()}
		}
	}()
	v, ferr := fn(ctx, i, attempt, worker)
	if ferr != nil {
		return v, &JobError{Job: i, Attempt: attempt, Cause: ferr}
	}
	return v, nil
}

// Do runs fn(ctx, i) for every i in [0, n) across `workers` goroutines
// (0 = GOMAXPROCS) under the FailFast policy and returns the results
// in index order. A nil ctx is treated as context.Background().
func Do[T any](ctx context.Context, n, workers int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	return DoPolicy(ctx, n, workers, FailFast, fn)
}

// DoPolicy is Do with an explicit failure policy. Under FailFast the
// first failure cancels the context passed to outstanding jobs and is
// returned (as a *JobError) after all workers drain; jobs that never
// started are skipped. Under Continue every schedulable job runs;
// failed slots hold zero values and the returned error joins each
// job's *JobError in job order. Context cancellation always stops
// scheduling and is reported alongside any job failures.
func DoPolicy[T any](ctx context.Context, n, workers int, policy FailurePolicy, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	return DoRetryPolicy(ctx, n, workers, policy, RetryPolicy{}, func(ctx context.Context, i, _ int) (T, error) {
		return fn(ctx, i)
	})
}

// DoRetryPolicy is DoPolicy with per-job retry: fn receives the
// 1-based attempt number, and a failure the retry policy classifies as
// Transient re-runs the job (after a deterministic backoff) up to
// retry.MaxAttempts times. Only the final attempt's *JobError is
// reported. The retry loop lives inside the job slot, so job order,
// the failure policies, and byte-identical output at any worker count
// are all preserved: retrying job i never reorders or perturbs job j.
func DoRetryPolicy[T any](ctx context.Context, n, workers int, policy FailurePolicy, retry RetryPolicy, fn func(ctx context.Context, i, attempt int) (T, error)) ([]T, error) {
	return doRetryPolicyWorker(ctx, n, workers, policy, retry, func(ctx context.Context, i, attempt, _ int) (T, error) {
		return fn(ctx, i, attempt)
	})
}

// doRetryPolicyWorker is DoRetryPolicy where fn also receives the
// stable index of the worker goroutine executing it (0-based; the
// sequential fast path is worker 0). Worker indices partition the job
// stream — no two concurrent jobs share one — which is what lets a
// caller keep per-worker mutable state (the sweep runner's warm
// simulation slots) without locks. The index is an execution-mechanics
// detail: results must never depend on it.
func doRetryPolicyWorker[T any](ctx context.Context, n, workers int, policy FailurePolicy, retry RetryPolicy, fn func(ctx context.Context, i, attempt, worker int) (T, error)) ([]T, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]T, n)
	if n == 0 {
		return out, ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Sequential fast path: byte-for-byte the pre-pool loop.
		jobErrs := make([]error, n)
		failed := false
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				if policy == FailFast {
					return nil, err
				}
				return out, errors.Join(append(compact(jobErrs[:i]), err)...)
			}
			v, err := attemptJob(ctx, i, 0, retry, fn)
			if err != nil {
				if policy == FailFast {
					return nil, err
				}
				jobErrs[i] = err
				failed = true
				continue
			}
			out[i] = v
		}
		if failed {
			return out, errors.Join(compact(jobErrs)...)
		}
		return out, nil
	}

	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		next     atomic.Int64
		errOnce  sync.Once
		firstErr error
		errMu    sync.Mutex
	)
	jobErrs := make([]error, n)
	work := func(worker int) {
		defer wg.Done()
		for {
			i := int(next.Add(1)) - 1
			if i >= n || ctx.Err() != nil {
				return
			}
			v, err := attemptJob(ctx, i, worker, retry, fn)
			if err != nil {
				if policy == FailFast {
					errOnce.Do(func() {
						firstErr = err
						cancel()
					})
					return
				}
				errMu.Lock()
				jobErrs[i] = err
				errMu.Unlock()
				continue
			}
			out[i] = v
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go work(w)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	all := compact(jobErrs)
	if err := parent.Err(); err != nil {
		if policy == FailFast {
			return nil, err
		}
		all = append(all, err)
	}
	if len(all) > 0 {
		return out, errors.Join(all...)
	}
	return out, nil
}

// compact drops nil slots, preserving job order, so the joined report
// is deterministic regardless of completion order.
func compact(errs []error) []error {
	out := make([]error, 0, len(errs))
	for _, err := range errs {
		if err != nil {
			out = append(out, err)
		}
	}
	return out
}

// Map runs fn over every element of items across `workers` goroutines,
// returning the mapped values in item order.
func Map[S, T any](ctx context.Context, items []S, workers int, fn func(ctx context.Context, i int, item S) (T, error)) ([]T, error) {
	return Do(ctx, len(items), workers, func(ctx context.Context, i int) (T, error) {
		return fn(ctx, i, items[i])
	})
}

// JournalFailureMode selects what a journal write failure does to a
// sweep whose simulations are otherwise healthy.
type JournalFailureMode int

const (
	// JournalFatal fails the job whose checkpoint could not be
	// written — the historical behaviour, and the right one when the
	// journal is the product (a resumable long sweep).
	JournalFatal JournalFailureMode = iota
	// JournalDegrade downgrades checkpointing to a loud warning: the
	// first write failure disables further journal writes (Warn is
	// invoked once), journal reads keep serving from memory, and the
	// sweep's results are unaffected. The right mode when results
	// matter more than resumability.
	JournalDegrade
)

// SimsConfig tunes RunSims beyond the historical defaults.
type SimsConfig struct {
	// Workers is the pool size (0 = GOMAXPROCS, 1 = sequential).
	Workers int
	// Policy selects failure handling; the zero value is FailFast.
	Policy FailurePolicy
	// Journal, when non-nil, serves already-completed jobs from the
	// checkpoint and records each new completion as it finishes.
	Journal *Journal
	// Progress, when non-nil, is invoked under a mutex as each job
	// completes (completion order, never interleaved), including jobs
	// served from the journal.
	Progress func(sim.Result)
	// Retry re-runs transiently-failing jobs; the zero value runs each
	// job once. Unless Retry.Seed is set, backoff jitter derives from
	// each job's pre-scheduled sim.Options.Seed, so the attempt
	// schedule — and therefore the output — is byte-identical at any
	// worker count.
	Retry RetryPolicy
	// JobTimeout, when positive, bounds each attempt of each job with
	// its own context deadline. A tripped deadline classifies as
	// transient, so it composes with Retry.
	JobTimeout time.Duration
	// Inject, when non-nil, runs before each attempt's simulation with
	// the attempt's (deadline-bounded) context. A non-nil return or a
	// panic stands in for the simulation's failure — the fault-
	// injection hook the chaos suite drives. A non-nil Inject also
	// disables batched execution: the hook's per-job sequential
	// semantics (a stall blocks exactly its own job) cannot survive
	// lockstep grouping.
	Inject func(ctx context.Context, job, attempt int) error
	// JournalFailure selects how a journal write failure is handled;
	// the zero value is JournalFatal.
	JournalFailure JournalFailureMode
	// ColdStart disables the per-worker warm pool: every job then
	// constructs its hierarchy, core, and workload engine from scratch.
	// The pool is on by default because warm runs are byte-identical to
	// cold ones by contract (pinned by the sim package's warm-vs-cold
	// lockstep and fuzz suites); ColdStart exists as the throughput
	// bench's baseline and as a diagnostic escape hatch.
	ColdStart bool
	// WarmPool, when non-nil, supplies the per-worker slot rack itself,
	// so a caller can keep slots alive across RunSimsStats calls — the
	// throughput bench does this to measure pure steady-state batches
	// with no construction noise. It must hold at least
	// Workers(cfg.Workers) entries (nil entries are populated on first
	// use, and a slot discarded after a failed job leaves nil behind);
	// the caller must not touch the rack while the sweep runs. Ignored
	// under ColdStart.
	WarmPool []*sim.Warm
	// NoBatch disables batched lockstep execution: jobs then run one at
	// a time on their worker's warm slot even when several share an
	// architectural stream. Batching is on by default because batched
	// runs are byte-identical to sequential ones by contract (pinned by
	// the sim package's batch differential and fuzz suites); NoBatch
	// exists as the throughput bench's warm-only baseline and as a
	// diagnostic escape hatch. Batching also stands down on its own
	// whenever grouping cannot apply: under ColdStart, with a positive
	// JobTimeout (a whole-batch deadline would change per-job timeout
	// semantics), with a fault injector (see Inject), for trace
	// replays and zero-measurement jobs, for journal hits, and for
	// groups of one.
	NoBatch bool
	// MaxBatch caps the members of one lockstep batch (0 means
	// DefaultMaxBatch). Larger groups split into consecutive batches.
	MaxBatch int
	// Batch, when non-nil, supplies the batched path's reusable state
	// (per-worker executors and grouping scratch) so a caller can keep
	// it alive across RunSimsStats calls — the throughput bench does,
	// to measure steady-state batched sweeps at zero allocations. The
	// caller must not use one BatchPool from two concurrent sweeps.
	Batch *BatchPool
	// Warn receives non-fatal degradation notices (currently: the one
	// journal-disable notice under JournalDegrade). Nil discards them.
	Warn func(error)
}

// SimOutcome pairs a simulation's measured Result with its execution
// mechanics (sim.RunStats). Result feeds digests and journals; Stats
// reports how the simulator got there (cycle-skip engagement) and is
// what behavioral hypotheses about the machinery itself are asserted
// on.
type SimOutcome struct {
	Result sim.Result
	Stats  sim.RunStats
}

// RunSims executes every sim.Options job across the pool and returns
// the results in job order. Each job must be fully specified before
// the call: seeds live in the options, so the output is independent of
// scheduling, worker count, and which jobs a journal replayed.
func RunSims(ctx context.Context, jobs []sim.Options, cfg SimsConfig) ([]sim.Result, error) {
	outs, err := RunSimsStats(ctx, jobs, cfg)
	res := make([]sim.Result, len(outs))
	for i, o := range outs {
		res[i] = o.Result
	}
	return res, err
}

// RunSimsStats is RunSims returning each job's RunStats alongside its
// Result. Results obey the usual contract (job order, byte-identical
// at any worker count); Stats are mechanics and come with one caveat:
// a job served from a journal written before stats were recorded
// reports zero RunStats, and a journal hit recorded under a different
// NoCycleSkip setting reports the stats of whichever mechanism
// actually ran (the fingerprint deliberately ignores that flag).
//
// Unless cfg.ColdStart is set, each worker owns a sim.Warm slot that
// is reset between jobs instead of rebuilt — amortizing construction
// across the sweep without changing a single output byte (warm runs
// are byte-identical to cold by the sim package's contract). A slot
// is taken off its worker's rack just before the simulation runs and
// returned only when the run completes without error, so a job that
// panics or fails mid-run discards its possibly half-mutated slot and
// the next job on that worker starts from a fresh one.
//
// On top of the warm pool, jobs sharing an architectural stream
// (sim.BatchKey: same workload profile, synthesis seed, and warm-up/
// measurement horizon — policy and machine knobs may differ) execute
// in lockstep batches that synthesize the block stream once per group
// instead of once per job. Batching is scheduling only: results stay
// in job order and byte-identical to the non-batched path (batched ≡
// sequential ≡ warm ≡ cold, at any worker count). See SimsConfig.
// NoBatch for when the runner stands the batched path down.
func RunSimsStats(ctx context.Context, jobs []sim.Options, cfg SimsConfig) ([]SimOutcome, error) {
	var mu sync.Mutex
	report := func(r sim.Result) {
		if cfg.Progress != nil {
			mu.Lock()
			cfg.Progress(r)
			mu.Unlock()
		}
	}
	retry := cfg.Retry
	if retry.Seed == nil {
		// Backoff jitter from the job's own pre-scheduled seed: fixed
		// before anything runs, so the attempt schedule cannot depend
		// on worker count or completion order.
		retry.Seed = func(job int) uint64 { return jobs[job].Seed }
	}
	var (
		journalDown atomic.Bool
		warnOnce    sync.Once
	)
	// record checkpoints one finished job, applying the configured
	// journal-failure mode. A non-nil return is the job's failure.
	// Shared by the per-job path and the batched path so the two cannot
	// diverge on journal semantics.
	record := func(opt sim.Options, res sim.Result, st sim.RunStats) error {
		if cfg.Journal == nil || journalDown.Load() {
			return nil
		}
		if jerr := cfg.Journal.RecordStats(opt, res, st); jerr != nil {
			if cfg.JournalFailure == JournalFatal {
				return fmt.Errorf("journal: %w", jerr)
			}
			// Degrade: results keep flowing, checkpointing stops.
			// Lookup still serves records loaded at open, so resume
			// semantics for earlier runs are unaffected.
			journalDown.Store(true)
			warnOnce.Do(func() {
				if cfg.Warn != nil {
					cfg.Warn(fmt.Errorf("journal degraded, checkpointing disabled for the rest of the sweep: %w", jerr))
				}
			})
		}
		return nil
	}
	// One warm slot rack entry per worker. Worker indices partition
	// the job stream (doRetryPolicyWorker's contract), so each entry
	// is only ever touched by its own goroutine — no locks needed.
	var warm []*sim.Warm
	if !cfg.ColdStart {
		if cfg.WarmPool != nil {
			if need := Workers(cfg.Workers); len(cfg.WarmPool) < need {
				return nil, fmt.Errorf("runner: WarmPool holds %d slots, need %d for the requested worker count", len(cfg.WarmPool), need)
			}
			warm = cfg.WarmPool
		} else {
			warm = make([]*sim.Warm, Workers(cfg.Workers))
		}
	}
	jobFn := func(ctx context.Context, i, attempt, worker int) (SimOutcome, error) {
		opt := jobs[i]
		if cfg.Journal != nil {
			if out, ok := cfg.Journal.LookupStats(opt); ok {
				report(out.Result)
				return out, nil
			}
		}
		runCtx := ctx
		if cfg.JobTimeout > 0 {
			var cancel context.CancelFunc
			runCtx, cancel = context.WithTimeout(ctx, cfg.JobTimeout)
			defer cancel()
		}
		if cfg.Inject != nil {
			// The injector sees the deadline-bounded context so a stall
			// fault is cut short by JobTimeout like a real hang.
			if err := cfg.Inject(runCtx, i, attempt); err != nil {
				return SimOutcome{}, deadline(ctx, runCtx, err)
			}
		}
		// Take this worker's slot; a nil slot runs cold (ColdStart, or
		// first job on the worker, or predecessor discarded on failure).
		var slot *sim.Warm
		if warm != nil {
			slot = warm[worker]
			if slot == nil {
				slot = sim.NewWarm()
			}
			warm[worker] = nil
		}
		res, st, err := slot.RunContextStats(runCtx, opt)
		out := SimOutcome{Result: res, Stats: st}
		if err != nil {
			return out, deadline(ctx, runCtx, err)
		}
		if warm != nil {
			// Clean completion: the slot's state is sound, rack it for
			// the worker's next job. (Journal trouble below is I/O, not
			// simulator corruption, so it does not discard the slot.)
			warm[worker] = slot
		}
		if jerr := record(opt, res, st); jerr != nil {
			return out, jerr
		}
		report(res)
		return out, nil
	}
	// Fault-injected sweeps never batch: an injector's contract is
	// per-job sequential semantics (a stall blocks exactly its own
	// job, and already-completed jobs are journaled before it fires),
	// which lockstep execution cannot honor — the members of a batch
	// would have to run their injectors before any member simulates,
	// so one stalling injector would starve the whole group. Injection
	// is a torture-test mechanism; batched-vs-sequential byte identity
	// keeps the fallback observably equivalent on the result side.
	if cfg.ColdStart || cfg.NoBatch || cfg.JobTimeout > 0 || cfg.Inject != nil {
		return doRetryPolicyWorker(ctx, len(jobs), cfg.Workers, cfg.Policy, retry, jobFn)
	}
	b := &batchedSims{
		jobs:   jobs,
		cfg:    cfg,
		retry:  retry,
		report: report,
		record: record,
		jobFn:  jobFn,
	}
	return b.run(ctx)
}

// deadline annotates err when the per-job deadline (not the sweep's
// own context) is what expired, so the report says which budget was
// blown.
func deadline(parent, runCtx context.Context, err error) error {
	if errors.Is(runCtx.Err(), context.DeadlineExceeded) && parent.Err() == nil {
		return fmt.Errorf("job deadline exceeded: %w", err)
	}
	return err
}

// Sims executes every sim.Options job across the pool and returns the
// results in job order, failing fast and without checkpointing; see
// RunSims for the configurable form.
func Sims(ctx context.Context, jobs []sim.Options, workers int, progress func(sim.Result)) ([]sim.Result, error) {
	return RunSims(ctx, jobs, SimsConfig{Workers: workers, Progress: progress})
}

// Replicated is the parallel counterpart of sim.RunReplicated: it runs
// the n derived-seed replicas of opt across the pool and aggregates.
// The replica set and the aggregate are identical to the sequential
// path at any worker count.
func Replicated(ctx context.Context, opt sim.Options, n, workers int) (sim.Replicated, error) {
	opts, err := sim.ReplicaOptions(opt, n)
	if err != nil {
		return sim.Replicated{}, err
	}
	runs, err := Sims(ctx, opts, workers, nil)
	if err != nil {
		return sim.Replicated{}, err
	}
	return sim.Aggregate(runs), nil
}
