// Package runner schedules independent simulations across a pool of
// worker goroutines.
//
// The experiment matrix is embarrassingly parallel — every (benchmark,
// policy, seed) point is a self-contained simulation — so the pool
// preserves the sequential contract exactly: results come back in job
// order regardless of completion order, every job's options are fully
// determined before it is enqueued (so output is bit-identical at any
// worker count), the first error cancels all outstanding jobs, and
// progress callbacks are serialized.
package runner

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"emissary/internal/sim"
)

// Workers normalizes a worker-count request: n < 1 selects
// runtime.GOMAXPROCS(0), i.e. one worker per available CPU.
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Do runs fn(ctx, i) for every i in [0, n) across `workers` goroutines
// (0 = GOMAXPROCS) and returns the results in index order. The first
// error cancels the context passed to outstanding jobs and is returned
// after all workers drain; jobs that never started are skipped. A nil
// ctx is treated as context.Background().
func Do[T any](ctx context.Context, n, workers int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]T, n)
	if n == 0 {
		return out, ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Sequential fast path: byte-for-byte the pre-pool loop.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			v, err := fn(ctx, i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		next     atomic.Int64
		errOnce  sync.Once
		firstErr error
	)
	work := func() {
		defer wg.Done()
		for {
			i := int(next.Add(1)) - 1
			if i >= n || ctx.Err() != nil {
				return
			}
			v, err := fn(ctx, i)
			if err != nil {
				errOnce.Do(func() {
					firstErr = err
					cancel()
				})
				return
			}
			out[i] = v
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go work()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := parent.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Map runs fn over every element of items across `workers` goroutines,
// returning the mapped values in item order.
func Map[S, T any](ctx context.Context, items []S, workers int, fn func(ctx context.Context, i int, item S) (T, error)) ([]T, error) {
	return Do(ctx, len(items), workers, func(ctx context.Context, i int) (T, error) {
		return fn(ctx, i, items[i])
	})
}

// Sims executes every sim.Options job across the pool and returns the
// results in job order. progress, when non-nil, is invoked under a
// mutex as each job completes (completion order, never interleaved).
// Each job must be fully specified before the call: seeds live in the
// options, so the output is independent of scheduling.
func Sims(ctx context.Context, jobs []sim.Options, workers int, progress func(sim.Result)) ([]sim.Result, error) {
	var mu sync.Mutex
	return Map(ctx, jobs, workers, func(_ context.Context, _ int, opt sim.Options) (sim.Result, error) {
		res, err := sim.Run(opt)
		if err != nil {
			return res, err
		}
		if progress != nil {
			mu.Lock()
			progress(res)
			mu.Unlock()
		}
		return res, nil
	})
}

// Replicated is the parallel counterpart of sim.RunReplicated: it runs
// the n derived-seed replicas of opt across the pool and aggregates.
// The replica set and the aggregate are identical to the sequential
// path at any worker count.
func Replicated(ctx context.Context, opt sim.Options, n, workers int) (sim.Replicated, error) {
	opts, err := sim.ReplicaOptions(opt, n)
	if err != nil {
		return sim.Replicated{}, err
	}
	runs, err := Sims(ctx, opts, workers, nil)
	if err != nil {
		return sim.Replicated{}, err
	}
	return sim.Aggregate(runs), nil
}
