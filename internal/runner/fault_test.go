package runner

import (
	"context"
	"errors"
	"fmt"
	"os"
	"reflect"
	"testing"

	"emissary/internal/pipeline"
	"emissary/internal/sim"
)

// TestFaultPanicRecoveredFailFast proves a panicking job surfaces as a
// typed *JobError carrying the index and stack instead of killing the
// process, under the fail-fast policy at both worker counts.
func TestFaultPanicRecoveredFailFast(t *testing.T) {
	for _, workers := range []int{1, 8} {
		_, err := DoPolicy(context.Background(), 6, workers, FailFast,
			func(_ context.Context, i int) (int, error) {
				if i == 3 {
					panic("injected fault")
				}
				return i, nil
			})
		if err == nil {
			t.Fatalf("workers=%d: panic swallowed", workers)
		}
		var je *JobError
		if !errors.As(err, &je) {
			t.Fatalf("workers=%d: err = %T, want *JobError", workers, err)
		}
		if je.Job != 3 {
			t.Errorf("workers=%d: Job = %d, want 3", workers, je.Job)
		}
		if je.Stack == nil {
			t.Errorf("workers=%d: recovered panic has no stack", workers)
		}
	}
}

// TestFaultPanicContinueKeepsSurvivors proves degraded mode: with
// Continue, the surviving jobs' results are byte-identical to a run
// with no failures at all, at workers=1 and workers=8.
func TestFaultPanicContinueKeepsSurvivors(t *testing.T) {
	const n = 10
	clean := func(_ context.Context, i int) (string, error) {
		return fmt.Sprintf("result-%d", i*i), nil
	}
	want, err := Do(context.Background(), n, 4, clean)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		faulty := func(ctx context.Context, i int) (string, error) {
			if i == 2 {
				panic("injected panic")
			}
			if i == 7 {
				return "", errors.New("injected error")
			}
			return clean(ctx, i)
		}
		got, err := DoPolicy(context.Background(), n, workers, Continue, faulty)
		if err == nil {
			t.Fatalf("workers=%d: failures unreported", workers)
		}
		fails := Failures(err)
		if len(fails) != 2 || fails[0].Job != 2 || fails[1].Job != 7 {
			t.Fatalf("workers=%d: Failures = %v, want jobs [2 7]", workers, fails)
		}
		if fails[0].Stack == nil {
			t.Errorf("workers=%d: panic failure lost its stack", workers)
		}
		if fails[1].Stack != nil {
			t.Errorf("workers=%d: error failure grew a stack", workers)
		}
		for i := 0; i < n; i++ {
			switch i {
			case 2, 7:
				if got[i] != "" {
					t.Errorf("workers=%d: failed slot %d = %q, want zero value", workers, i, got[i])
				}
			default:
				if got[i] != want[i] {
					t.Errorf("workers=%d: survivor %d = %q, want %q", workers, i, got[i], want[i])
				}
			}
		}
	}
}

// TestFaultLivelockedSimIsolation is the acceptance scenario: a sweep
// with one planted livelocking job (a cycle budget it must exhaust)
// under Continue leaves every other job's result byte-identical to a
// clean sweep that never contained the bad job.
func TestFaultLivelockedSimIsolation(t *testing.T) {
	good := []sim.Options{
		tinyOptions(t, "TPLRU", 1),
		tinyOptions(t, "P(8):S&E", 2),
		tinyOptions(t, "DRRIP", 3),
	}
	clean, err := RunSims(context.Background(), good, SimsConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}

	bad := tinyOptions(t, "P(8):S&E&R(1/32)", 4)
	bad.MaxCycles = 500 // cannot complete: the budget trips first
	planted := []sim.Options{good[0], bad, good[1], good[2]}

	for _, workers := range []int{1, 8} {
		got, err := RunSims(context.Background(), planted, SimsConfig{Workers: workers, Policy: Continue})
		if err == nil {
			t.Fatalf("workers=%d: planted livelock unreported", workers)
		}
		if !errors.Is(err, pipeline.ErrCycleBudget) {
			t.Fatalf("workers=%d: err = %v, want pipeline.ErrCycleBudget", workers, err)
		}
		fails := Failures(err)
		if len(fails) != 1 || fails[0].Job != 1 {
			t.Fatalf("workers=%d: Failures = %v, want job 1 only", workers, fails)
		}
		survivors := []sim.Result{got[0], got[2], got[3]}
		if !reflect.DeepEqual(survivors, clean) {
			t.Errorf("workers=%d: survivors differ from the clean sweep", workers)
		}
	}
}

// TestFaultJournalResumeMatchesUninterrupted proves a sweep that dies
// mid-run and resumes from its journal produces results byte-identical
// to one that never stopped.
func TestFaultJournalResumeMatchesUninterrupted(t *testing.T) {
	jobs := []sim.Options{
		tinyOptions(t, "TPLRU", 1),
		tinyOptions(t, "P(8):S&E", 2),
		tinyOptions(t, "DRRIP", 3),
		tinyOptions(t, "P(8):S&E&R(1/32)", 4),
	}
	want, err := RunSims(context.Background(), jobs, SimsConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	path := t.TempDir() + "/sweep.journal"
	// First run: only half the sweep completes before the "crash".
	j1, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunSims(context.Background(), jobs[:2], SimsConfig{Workers: 2, Journal: j1}); err != nil {
		t.Fatal(err)
	}
	j1.Close() // simulate process death after two completions

	// Resume: the full sweep against the reopened journal.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if n := j2.Completed(); n != 2 {
		t.Fatalf("resumed journal holds %d jobs, want 2", n)
	}
	var served int
	got, err := RunSims(context.Background(), jobs, SimsConfig{
		Workers:  2,
		Journal:  j2,
		Progress: func(sim.Result) { served++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if served != len(jobs) {
		t.Errorf("progress saw %d jobs, want %d (journal hits must still report)", served, len(jobs))
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("resumed sweep differs from uninterrupted sweep")
	}
}

// TestFaultJournalCorruptTailRecovery proves a torn final line (crash
// mid-append) is truncated away on reopen and the journal stays
// usable.
func TestFaultJournalCorruptTailRecovery(t *testing.T) {
	path := t.TempDir() + "/torn.journal"
	opt := tinyOptions(t, "TPLRU", 1)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record(opt, res); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Tear the tail: a partial JSON line as a crash would leave.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"fingerprint":"half-writ`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("torn journal rejected: %v", err)
	}
	defer j2.Close()
	if n := j2.Completed(); n != 1 {
		t.Fatalf("Completed = %d, want 1", n)
	}
	got, ok := j2.Lookup(opt)
	if !ok {
		t.Fatal("intact record lost during recovery")
	}
	if !reflect.DeepEqual(got, res) {
		t.Error("recovered record differs from the original result")
	}
	// And the truncation must leave the file appendable: a new record
	// lands on a clean line boundary.
	opt2 := tinyOptions(t, "DRRIP", 2)
	res2, err := sim.Run(opt2)
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Record(opt2, res2); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if n := j3.Completed(); n != 2 {
		t.Errorf("after append, Completed = %d, want 2", n)
	}
}

// TestFailuresFlattensNestedJoinTrees pins the Failures walk on every
// error-tree shape a pool (or a caller wrapping a pool's error) can
// produce: single errors, wrapped errors, joins, joins of wrapped
// joins — with traversal order preserved and foreign leaves skipped.
func TestFailuresFlattensNestedJoinTrees(t *testing.T) {
	je := make([]*JobError, 6)
	for i := range je {
		je[i] = &JobError{Job: i, Cause: fmt.Errorf("cause %d", i)}
	}
	jobs := func(errs []*JobError) []int {
		out := make([]int, len(errs))
		for i, e := range errs {
			out[i] = e.Job
		}
		return out
	}
	cases := []struct {
		name string
		err  error
		want []int
	}{
		{"nil", nil, []int{}},
		{"single", je[0], []int{0}},
		{"wrapped single", fmt.Errorf("sweep: %w", je[1]), []int{1}},
		{"flat join", errors.Join(je[0], je[1], je[2]), []int{0, 1, 2}},
		{
			"nested joins",
			errors.Join(errors.Join(je[0], je[1]), je[2], errors.Join(je[3], errors.Join(je[4], je[5]))),
			[]int{0, 1, 2, 3, 4, 5},
		},
		{
			"wrapped join inside join",
			errors.Join(fmt.Errorf("stage A: %w", errors.Join(je[2], je[3])), fmt.Errorf("stage B: %w", je[5])),
			[]int{2, 3, 5},
		},
		{
			"foreign leaves skipped",
			errors.Join(je[1], context.Canceled, errors.Join(errors.New("plain"), je[4])),
			[]int{1, 4},
		},
		{"foreign only", errors.Join(context.Canceled, errors.New("plain")), []int{}},
		{
			// The walk stops at the first *JobError on a branch: a
			// JobError whose cause is itself a JobError (a retried job
			// re-wrapped by a caller) reports once, not twice.
			"job error wrapping job error",
			&JobError{Job: 9, Cause: je[0]},
			[]int{9},
		},
	}
	for _, tc := range cases {
		got := jobs(Failures(tc.err))
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: Failures jobs = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestFailuresOnRealContinueTree proves the flattening on an error
// tree an actual Continue pool produced, not a hand-built one.
func TestFailuresOnRealContinueTree(t *testing.T) {
	_, err := DoPolicy(context.Background(), 8, 4, Continue, func(_ context.Context, i int) (int, error) {
		if i%3 == 1 { // jobs 1, 4, 7
			return 0, fmt.Errorf("planted %d", i)
		}
		return i, nil
	})
	outer := fmt.Errorf("sweep failed: %w", errors.Join(err, context.DeadlineExceeded))
	fails := Failures(outer)
	if got, want := len(fails), 3; got != want {
		t.Fatalf("Failures = %d errors, want %d", got, want)
	}
	for i, wantJob := range []int{1, 4, 7} {
		if fails[i].Job != wantJob {
			t.Errorf("fails[%d].Job = %d, want %d", i, fails[i].Job, wantJob)
		}
	}
}

// TestFaultCancelledSweepResumes proves cancellation (the SIGINT path)
// stops a sweep with the completed jobs durable in the journal, and a
// rerun finishes byte-identical to a never-interrupted sweep.
func TestFaultCancelledSweepResumes(t *testing.T) {
	jobs := []sim.Options{
		tinyOptions(t, "TPLRU", 1),
		tinyOptions(t, "P(8):S&E", 2),
		tinyOptions(t, "DRRIP", 3),
	}
	want, err := RunSims(context.Background(), jobs, SimsConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	path := t.TempDir() + "/cancel.journal"
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var done int
	_, err = RunSims(ctx, jobs, SimsConfig{
		Workers: 1,
		Journal: j,
		Progress: func(sim.Result) {
			done++
			if done == 1 {
				cancel() // interrupt after the first completion
			}
		},
	})
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	j.Close()

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if n := j2.Completed(); n < 1 {
		t.Fatalf("journal lost the completed job: Completed = %d", n)
	}
	got, err := RunSims(context.Background(), jobs, SimsConfig{Workers: 1, Journal: j2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("resumed sweep differs from uninterrupted sweep")
	}
}
