package runner

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"

	"emissary/internal/faultinject"
	"emissary/internal/sim"
)

// Journal is an append-only checkpoint of completed simulations: one
// JSON line per finished job, keyed by the canonical fingerprint of
// its sim.Options (see sim.Options.Fingerprint for the stability
// contract). Because the simulator is deterministic, serving a journal
// entry is byte-identical to re-running the job, so a sweep resumed
// from its journal produces the same aggregates as an uninterrupted
// one.
//
// Records are flushed to the OS line by line under a mutex, so a
// crash or SIGKILL loses at most the in-flight jobs; a torn final
// line (power cut mid-append) is detected on reopen and truncated
// away rather than poisoning the resume. Corruption further up the
// file still recovers to the clean record prefix, but the damage is
// accounted (Recovery) so a resume that lost more than the final line
// can warn loudly instead of silently recomputing.
//
// Two writers on one journal would interleave lines and corrupt both;
// an advisory lock file (path + ".lock", holding the writer's pid)
// plus an in-process registry reject the second opener. Locks whose
// process is gone — a crashed run — are stolen, so crash-resume is
// never wedged behind its own corpse.
//
// All filesystem access goes through faultinject.FS, which is how the
// crash-point torture suite drives every I/O step of the journal's
// lifetime to a fault and asserts recovery.
type Journal struct {
	mu     sync.Mutex
	fsys   faultinject.FS
	path   string
	f      faultinject.File
	done   map[string]SimOutcome
	rec    JournalRecovery
	closed bool
}

// JournalRecovery reports what OpenJournal had to discard to restore a
// clean record prefix.
type JournalRecovery struct {
	// DiscardedBytes counts bytes truncated away past the last record
	// of the clean prefix. A torn final line — the ordinary crash
	// signature — shows up here as a small nonzero count.
	DiscardedBytes int64
	// DiscardedRecords counts complete, well-formed records that were
	// unreachable because corruption earlier in the file ended the
	// clean prefix before them. Nonzero means the journal lost more
	// than a torn tail; callers should surface it loudly, since the
	// resume will silently recompute those jobs.
	DiscardedRecords int
}

// journalEntry is the on-disk line format. Stats was added after the
// format shipped: lines written by older binaries simply lack the
// field and load as zero RunStats, which is sound — stats describe
// execution mechanics, not results, and zero means "not recorded".
type journalEntry struct {
	Fingerprint string       `json:"fingerprint"`
	Result      sim.Result   `json:"result"`
	Stats       sim.RunStats `json:"stats"`
}

// maxRecordBytes caps one journal line. It matches the reopen
// scanner's buffer ceiling, so any record this side accepts is a
// record the next open can load back; oversized records are rejected
// at RecordStats time with *RecordTooLargeError instead of poisoning
// the file for the next open.
const maxRecordBytes = 16 << 20

// journalLineLimit is maxRecordBytes behind a variable so tests can
// exercise the rejection path without marshalling 16 MiB.
var journalLineLimit = maxRecordBytes

// ErrRecordTooLarge is the errors.Is target for oversized records.
var ErrRecordTooLarge = errors.New("runner: journal record exceeds the line-size cap")

// RecordTooLargeError reports a record whose JSON line would not
// survive a reopen and was therefore refused at write time.
type RecordTooLargeError struct {
	Fingerprint string
	Size, Max   int
}

func (e *RecordTooLargeError) Error() string {
	return fmt.Sprintf("%v: %d bytes > %d (%s)", ErrRecordTooLarge, e.Size, e.Max, e.Fingerprint)
}

func (e *RecordTooLargeError) Is(target error) bool { return target == ErrRecordTooLarge }

// ErrJournalLocked is the errors.Is target for a journal already held
// by a live writer.
var ErrJournalLocked = errors.New("runner: journal locked by another writer")

// JournalLockedError identifies the holder blocking an open.
type JournalLockedError struct {
	Path string
	PID  int
}

func (e *JournalLockedError) Error() string {
	return fmt.Sprintf("%v: %s (held by pid %d)", ErrJournalLocked, e.Path, e.PID)
}

func (e *JournalLockedError) Is(target error) bool { return target == ErrJournalLocked }

// journalLocks is the in-process half of the advisory lock: the pid
// file cannot arbitrate two goroutines of one process (they share a
// pid), so open journals register their cleaned path here.
var journalLocks = struct {
	mu   sync.Mutex
	held map[string]bool
}{held: make(map[string]bool)}

func lockFilePath(path string) string { return path + ".lock" }

// acquireJournalLock takes both halves of the advisory lock, stealing
// stale pid files: one naming our own pid (the in-process registry is
// authoritative there — a same-pid file with no registration is debris
// from a crashed-and-recovered lifetime) and one naming a dead process.
func acquireJournalLock(fsys faultinject.FS, path string) error {
	canon := filepath.Clean(path)
	journalLocks.mu.Lock()
	if journalLocks.held[canon] {
		journalLocks.mu.Unlock()
		return &JournalLockedError{Path: path, PID: os.Getpid()}
	}
	journalLocks.held[canon] = true
	journalLocks.mu.Unlock()

	if err := createLockFile(fsys, lockFilePath(path)); err != nil {
		releaseJournalRegistry(path)
		return err
	}
	return nil
}

func releaseJournalRegistry(path string) {
	canon := filepath.Clean(path)
	journalLocks.mu.Lock()
	delete(journalLocks.held, canon)
	journalLocks.mu.Unlock()
}

func createLockFile(fsys faultinject.FS, lockPath string) error {
	for attempt := 0; attempt < 2; attempt++ {
		f, err := fsys.OpenFile(lockPath, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			_, werr := f.Write([]byte(strconv.Itoa(os.Getpid()) + "\n"))
			cerr := f.Close()
			return errors.Join(werr, cerr)
		}
		if !errors.Is(err, fs.ErrExist) {
			return err
		}
		pid, perr := readLockPID(fsys, lockPath)
		if perr == nil && pid != os.Getpid() && processAlive(pid) {
			return &JournalLockedError{Path: lockPath, PID: pid}
		}
		// Stale: our own pid (registry said free), a dead process, or
		// an unreadable/garbage pid file — steal it and retry once.
		if rerr := fsys.Remove(lockPath); rerr != nil {
			return rerr
		}
	}
	return fmt.Errorf("runner: journal lock %s kept reappearing", lockPath)
}

func readLockPID(fsys faultinject.FS, lockPath string) (int, error) {
	f, err := fsys.OpenFile(lockPath, os.O_RDONLY, 0)
	if err != nil {
		return 0, err
	}
	data, rerr := io.ReadAll(f)
	cerr := f.Close()
	if err := errors.Join(rerr, cerr); err != nil {
		return 0, err
	}
	return strconv.Atoi(strings.TrimSpace(string(data)))
}

// processAlive reports whether pid names a live process (signal 0
// probe). Any failure reads as dead: the lock is advisory, and a
// false "dead" only risks two writers where before the lock existed
// there was no protection at all.
func processAlive(pid int) bool {
	if pid <= 0 {
		return false
	}
	p, err := os.FindProcess(pid)
	if err != nil {
		return false
	}
	return p.Signal(syscall.Signal(0)) == nil
}

// OpenJournal opens (creating if absent) the checkpoint at path and
// loads every record of the clean prefix. A malformed tail — the
// signature of a crash mid-append — is discarded and the file
// truncated back to the last complete line, so the journal is always
// in a writable state; what was discarded is reported by Recovery.
func OpenJournal(path string) (*Journal, error) {
	return OpenJournalFS(faultinject.OS, path)
}

// OpenJournalFS is OpenJournal against an explicit filesystem — the
// seam the fault-injection torture suite drives.
func OpenJournalFS(fsys faultinject.FS, path string) (*Journal, error) {
	if err := acquireJournalLock(fsys, path); err != nil {
		return nil, fmt.Errorf("runner: locking journal %s: %w", path, err)
	}
	j, err := openLockedJournal(fsys, path)
	if err != nil {
		fsys.Remove(lockFilePath(path)) // best effort; a stale lock is stolen next open
		releaseJournalRegistry(path)
		return nil, err
	}
	return j, nil
}

func openLockedJournal(fsys faultinject.FS, path string) (*Journal, error) {
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runner: opening journal: %w", err)
	}
	j := &Journal{fsys: fsys, path: path, f: f, done: make(map[string]SimOutcome)}

	var valid int64 // byte offset just past the last record of the clean prefix
	clean := true
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), maxRecordBytes)
	for sc.Scan() {
		line := sc.Bytes()
		var e journalEntry
		if err := json.Unmarshal(line, &e); err != nil || e.Fingerprint == "" {
			// Corruption ends the clean prefix, but keep scanning:
			// every well-formed record past this point is a real
			// loss the caller deserves to hear about.
			clean = false
			continue
		}
		if !clean {
			j.rec.DiscardedRecords++
			continue
		}
		j.done[e.Fingerprint] = SimOutcome{Result: e.Result, Stats: e.Stats}
		valid += int64(len(line)) + 1
	}
	if err := sc.Err(); err != nil && !errors.Is(err, bufio.ErrTooLong) {
		f.Close()
		return nil, fmt.Errorf("runner: reading journal %s: %w", path, err)
	}
	// An over-long line (bufio.ErrTooLong) is corruption like any
	// other: the clean prefix survives, the rest is counted as
	// discarded bytes below.

	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("runner: sizing journal %s: %w", path, err)
	}
	j.rec.DiscardedBytes = size - valid
	if size != valid {
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, fmt.Errorf("runner: trimming journal %s: %w", path, err)
		}
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("runner: seeking journal %s: %w", path, err)
	}
	return j, nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Recovery reports what this open had to discard to restore a clean
// record prefix: zero values for a healthy file, a few bytes for the
// ordinary torn tail, and nonzero DiscardedRecords when mid-file
// corruption cost more than the final line.
func (j *Journal) Recovery() JournalRecovery {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rec
}

// Completed returns the number of distinct finished jobs on record.
func (j *Journal) Completed() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.done)
}

// Lookup returns the checkpointed result for a job, if present.
func (j *Journal) Lookup(opt sim.Options) (sim.Result, bool) {
	out, ok := j.LookupStats(opt)
	return out.Result, ok
}

// LookupStats returns the checkpointed result and run stats for a job,
// if present. Entries written before stats were journaled carry zero
// RunStats.
func (j *Journal) LookupStats(opt sim.Options) (SimOutcome, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	out, ok := j.done[opt.Fingerprint()]
	return out, ok
}

// Record appends one completed job. The line is written and flushed
// before Record returns, so every result reported to a caller is
// already durable in the journal.
func (j *Journal) Record(opt sim.Options, res sim.Result) error {
	return j.RecordStats(opt, res, sim.RunStats{})
}

// RecordStats is Record carrying the run's execution mechanics too.
// A record whose JSON line exceeds the reopen scanner's buffer is
// rejected here with *RecordTooLargeError rather than being written
// and failing the *next* open.
func (j *Journal) RecordStats(opt sim.Options, res sim.Result, st sim.RunStats) error {
	fp := opt.Fingerprint()
	line, err := json.Marshal(journalEntry{Fingerprint: fp, Result: res, Stats: st})
	if err != nil {
		return fmt.Errorf("runner: encoding journal record: %w", err)
	}
	if len(line) > journalLineLimit {
		return &RecordTooLargeError{Fingerprint: fp, Size: len(line), Max: journalLineLimit}
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("runner: journal %s is closed", j.path)
	}
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("runner: appending to journal %s: %w", j.path, err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("runner: syncing journal %s: %w", j.path, err)
	}
	j.done[fp] = SimOutcome{Result: res, Stats: st}
	return nil
}

// Close syncs, releases the underlying file, and drops the advisory
// lock. Records already written remain valid; the journal must not be
// used afterwards. Close is idempotent.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	var errs []error
	// Sync before close: Record already syncs per append, but the
	// final flush here is what pins any future buffered write mode —
	// and it surfaces delayed write-back errors while the caller can
	// still hear them.
	if err := j.f.Sync(); err != nil {
		errs = append(errs, fmt.Errorf("runner: syncing journal %s: %w", j.path, err))
	}
	if err := j.f.Close(); err != nil {
		errs = append(errs, fmt.Errorf("runner: closing journal %s: %w", j.path, err))
	}
	if err := j.fsys.Remove(lockFilePath(j.path)); err != nil {
		errs = append(errs, fmt.Errorf("runner: releasing journal lock: %w", err))
	}
	releaseJournalRegistry(j.path)
	return errors.Join(errs...)
}
