package runner

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"emissary/internal/sim"
)

// Journal is an append-only checkpoint of completed simulations: one
// JSON line per finished job, keyed by the canonical fingerprint of
// its sim.Options (see sim.Options.Fingerprint for the stability
// contract). Because the simulator is deterministic, serving a journal
// entry is byte-identical to re-running the job, so a sweep resumed
// from its journal produces the same aggregates as an uninterrupted
// one.
//
// Records are flushed to the OS line by line under a mutex, so a
// crash or SIGKILL loses at most the in-flight jobs; a torn final
// line (power cut mid-append) is detected on reopen and truncated
// away rather than poisoning the resume.
type Journal struct {
	mu   sync.Mutex
	path string
	f    *os.File
	done map[string]SimOutcome
}

// journalEntry is the on-disk line format. Stats was added after the
// format shipped: lines written by older binaries simply lack the
// field and load as zero RunStats, which is sound — stats describe
// execution mechanics, not results, and zero means "not recorded".
type journalEntry struct {
	Fingerprint string       `json:"fingerprint"`
	Result      sim.Result   `json:"result"`
	Stats       sim.RunStats `json:"stats"`
}

// OpenJournal opens (creating if absent) the checkpoint at path and
// loads every complete record. A malformed tail — the signature of a
// crash mid-append — is discarded and the file truncated back to the
// last complete line, so the journal is always in a writable state.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runner: opening journal: %w", err)
	}
	j := &Journal{path: path, f: f, done: make(map[string]SimOutcome)}

	var valid int64 // byte offset just past the last complete record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		var e journalEntry
		if err := json.Unmarshal(line, &e); err != nil || e.Fingerprint == "" {
			break
		}
		j.done[e.Fingerprint] = SimOutcome{Result: e.Result, Stats: e.Stats}
		valid += int64(len(line)) + 1
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("runner: reading journal %s: %w", path, err)
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, fmt.Errorf("runner: trimming journal %s: %w", path, err)
	}
	if _, err := f.Seek(valid, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("runner: seeking journal %s: %w", path, err)
	}
	return j, nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Completed returns the number of distinct finished jobs on record.
func (j *Journal) Completed() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.done)
}

// Lookup returns the checkpointed result for a job, if present.
func (j *Journal) Lookup(opt sim.Options) (sim.Result, bool) {
	out, ok := j.LookupStats(opt)
	return out.Result, ok
}

// LookupStats returns the checkpointed result and run stats for a job,
// if present. Entries written before stats were journaled carry zero
// RunStats.
func (j *Journal) LookupStats(opt sim.Options) (SimOutcome, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	out, ok := j.done[opt.Fingerprint()]
	return out, ok
}

// Record appends one completed job. The line is written and flushed
// before Record returns, so every result reported to a caller is
// already durable in the journal.
func (j *Journal) Record(opt sim.Options, res sim.Result) error {
	return j.RecordStats(opt, res, sim.RunStats{})
}

// RecordStats is Record carrying the run's execution mechanics too.
func (j *Journal) RecordStats(opt sim.Options, res sim.Result, st sim.RunStats) error {
	line, err := json.Marshal(journalEntry{Fingerprint: opt.Fingerprint(), Result: res, Stats: st})
	if err != nil {
		return fmt.Errorf("runner: encoding journal record: %w", err)
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("runner: appending to journal %s: %w", j.path, err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("runner: syncing journal %s: %w", j.path, err)
	}
	j.done[opt.Fingerprint()] = SimOutcome{Result: res, Stats: st}
	return nil
}

// Close releases the underlying file. Records already written remain
// valid; the journal must not be used afterwards.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
