package runner

import (
	"context"
	"errors"
	"time"

	"emissary/internal/rng"
)

// ErrorClass partitions job failures for retry: transient faults are
// environmental (injected I/O failure, a job deadline tripped by
// machine load) and may clear on a second attempt; permanent faults
// are properties of the job itself — a deterministic simulator fails
// the same way every time, so simulator errors never retry.
type ErrorClass int

const (
	// Permanent is the default: retrying cannot help.
	Permanent ErrorClass = iota
	// Transient faults may clear on retry.
	Transient
)

func (c ErrorClass) String() string {
	if c == Transient {
		return "transient"
	}
	return "permanent"
}

// Classify assigns an error its retry class, extending the typed
// taxonomy from the failure model (DESIGN.md §8):
//
//   - An error anywhere in the chain carrying `Transient() bool`
//     speaks for itself. sim.TruncatedError and pipeline.StallError
//     say permanent (deterministic outcomes); faultinject errors say
//     transient (injected environmental faults) except power cuts.
//   - context.DeadlineExceeded with no marker is transient: a per-job
//     deadline trips on load, not on the job's options.
//   - Everything else — including context.Canceled, which means the
//     caller wants out, not "try again" — is permanent.
func Classify(err error) ErrorClass {
	if err == nil {
		return Permanent
	}
	var marked interface{ Transient() bool }
	if errors.As(err, &marked) {
		if marked.Transient() {
			return Transient
		}
		return Permanent
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return Transient
	}
	return Permanent
}

// RetryPolicy retries transiently-failing jobs with deterministic
// backoff. The backoff duration is computed in virtual time: a pure
// function of (per-job pre-scheduled seed, job index, attempt), never
// of the wall clock or of scheduling — so a retried sweep performs the
// same attempt sequence, and therefore produces byte-identical output,
// at any worker count.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per job; 0 or 1
	// disables retry.
	MaxAttempts int
	// Backoff computes the wait before the next attempt; nil selects
	// DefaultBackoff.
	Backoff func(seed uint64, job, attempt int) time.Duration
	// Classify partitions failures; nil selects Classify.
	Classify func(error) ErrorClass
	// Seed supplies the per-job seed Backoff draws jitter from; nil
	// selects uint64(job). RunSims wires the job's pre-scheduled
	// sim.Options.Seed here.
	Seed func(job int) uint64
	// Sleep waits out a backoff; nil waits on a real timer, honouring
	// ctx. Tests inject an instant recorder.
	Sleep func(ctx context.Context, d time.Duration) error
}

// DefaultBackoff is exponential backoff in virtual time: 10ms doubling
// per attempt, capped at 1s, jittered to [0.75, 1.25)× by a SplitMix64
// draw seeded from (seed, job, attempt). Identical inputs produce
// identical durations on every run and platform.
func DefaultBackoff(seed uint64, job, attempt int) time.Duration {
	shift := attempt - 1
	if shift > 7 {
		shift = 7 // 10ms << 7 already exceeds the 1s cap
	}
	base := 10 * time.Millisecond << uint(shift)
	if base > time.Second {
		base = time.Second
	}
	r := rng.NewSplitMix64(seed ^ uint64(job)<<32 ^ uint64(attempt))
	frac := float64(r.Uint64()>>11) / (1 << 53)
	return time.Duration(float64(base) * (0.75 + frac/2))
}

// waitBackoff is the default Sleep: a real timer racing the context.
func waitBackoff(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func (p RetryPolicy) maxAttempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

func (p RetryPolicy) backoff() func(uint64, int, int) time.Duration {
	if p.Backoff != nil {
		return p.Backoff
	}
	return DefaultBackoff
}

func (p RetryPolicy) classify() func(error) ErrorClass {
	if p.Classify != nil {
		return p.Classify
	}
	return Classify
}

func (p RetryPolicy) seed(job int) uint64 {
	if p.Seed != nil {
		return p.Seed(job)
	}
	return uint64(job)
}

func (p RetryPolicy) sleep() func(context.Context, time.Duration) error {
	if p.Sleep != nil {
		return p.Sleep
	}
	return waitBackoff
}

// attemptJob runs fn under the retry policy: transient failures back
// off (virtual-time duration, real wait) and re-attempt up to
// MaxAttempts; permanent failures and exhausted budgets return the
// last attempt's *JobError.
func attemptJob[T any](ctx context.Context, i, worker int, retry RetryPolicy, fn func(ctx context.Context, i, attempt, worker int) (T, error)) (T, error) {
	max := retry.maxAttempts()
	var (
		v   T
		err error
	)
	for attempt := 1; ; attempt++ {
		v, err = runJob(ctx, i, attempt, worker, fn)
		if err == nil || attempt >= max || ctx.Err() != nil {
			return v, err
		}
		if retry.classify()(err) != Transient {
			return v, err
		}
		d := retry.backoff()(retry.seed(i), i, attempt)
		if serr := retry.sleep()(ctx, d); serr != nil {
			return v, err // cancelled mid-backoff: report the job's failure
		}
	}
}
