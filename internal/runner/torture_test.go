package runner

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"emissary/internal/faultinject"
	"emissary/internal/sim"
)

// TestJournalCrashPointTorture is the crash-point sweep for the
// journal: a counting run learns every filesystem operation one
// journaled sweep lifetime performs (lock, open, scan, one append+sync
// per record, close), then each operation index is hit with both an
// injected failure and a simulated power cut. The contract at every
// point:
//
//  1. Under JournalDegrade the healthy sweep survives the fault with
//     results byte-identical to a journal-free run.
//  2. A reopen on the real filesystem succeeds — whatever the fault
//     left on disk recovers to a clean record prefix whose entries
//     match the uninterrupted run exactly.
//  3. A sweep resumed from the reopened journal is byte-identical to
//     the uninterrupted sweep.
func TestJournalCrashPointTorture(t *testing.T) {
	jobs := []sim.Options{
		tinyOptions(t, "TPLRU", 1),
		tinyOptions(t, "DRRIP", 2),
		tinyOptions(t, "P(8):S&E", 3),
	}
	clean, err := RunSims(context.Background(), jobs, SimsConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	// Learn the op-index space from one clean, counted lifetime.
	counter, err := faultinject.NewInjector(faultinject.OS, 1)
	if err != nil {
		t.Fatal(err)
	}
	{
		path := filepath.Join(t.TempDir(), "count.journal")
		j, err := OpenJournalFS(counter, path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := RunSims(context.Background(), jobs, SimsConfig{Workers: 1, Journal: j}); err != nil {
			t.Fatal(err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
	}
	total := counter.Ops()
	trace := counter.Trace()
	// Lock create+write+close, journal open, two seeks, 3×(append,
	// sync), close's sync+close+remove-lock: the lifetime must expose
	// at least that much surface.
	if total < 12 {
		t.Fatalf("journaled sweep lifetime only counted %d ops (%v)", total, trace)
	}

	for k := 1; k <= total; k++ {
		for _, mode := range []faultinject.Mode{faultinject.ModeFail, faultinject.ModeCrash} {
			t.Run(fmt.Sprintf("%s@%d_%s", mode, k, trace[k-1]), func(t *testing.T) {
				path := filepath.Join(t.TempDir(), "torture.journal")
				inj, err := faultinject.NewInjector(faultinject.OS, uint64(k), faultinject.Fault{Op: k, Mode: mode})
				if err != nil {
					t.Fatal(err)
				}
				var mu sync.Mutex
				var warns []error
				j, oerr := OpenJournalFS(inj, path)
				if oerr != nil {
					// The fault landed inside open itself; there is no
					// journal to degrade. It must at least be *our* fault.
					if !errors.Is(oerr, faultinject.ErrInjected) && !errors.Is(oerr, faultinject.ErrPowerCut) {
						t.Fatalf("open failed with a foreign error: %v", oerr)
					}
				} else {
					res, rerr := RunSims(context.Background(), jobs, SimsConfig{
						Workers:        1,
						Journal:        j,
						JournalFailure: JournalDegrade,
						Warn: func(e error) {
							mu.Lock()
							warns = append(warns, e)
							mu.Unlock()
						},
					})
					if rerr != nil {
						t.Fatalf("degrade did not protect the sweep from a journal fault at op %d: %v", k, rerr)
					}
					if !reflect.DeepEqual(res, clean) {
						t.Errorf("degraded sweep results differ from journal-free run at op %d", k)
					}
					if len(warns) > 1 {
						t.Errorf("Warn invoked %d times, want at most 1", len(warns))
					}
					// Close may fail after a power cut; it must not panic
					// and must release the in-process lock regardless.
					j.Close()
				}

				// Reboot: reopen on the real filesystem. Whatever the
				// fault left behind (torn line, missing file, stale lock
				// from a crashed close) must recover.
				j2, err := OpenJournal(path)
				if err != nil {
					t.Fatalf("reopen after %s at op %d failed: %v", mode, k, err)
				}
				for i, opt := range jobs {
					if got, ok := j2.Lookup(opt); ok && !reflect.DeepEqual(got, clean[i]) {
						t.Errorf("surviving record %d differs from the uninterrupted run", i)
					}
				}
				res2, err := RunSims(context.Background(), jobs, SimsConfig{Workers: 1, Journal: j2})
				if err != nil {
					t.Fatalf("resume after %s at op %d failed: %v", mode, k, err)
				}
				if !reflect.DeepEqual(res2, clean) {
					t.Errorf("resumed sweep differs from uninterrupted sweep after %s at op %d", mode, k)
				}
				if n := j2.Completed(); n != len(jobs) {
					t.Errorf("journal holds %d records after resume, want %d", n, len(jobs))
				}
				if err := j2.Close(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestJournalDropSyncThenPowerCut is the lying-hardware case: a record
// whose fsync was silently dropped, followed by a power cut, loses that
// record (and possibly tears the line) — but the reopen still recovers
// to a clean prefix and the resumed sweep is byte-identical.
func TestJournalDropSyncThenPowerCut(t *testing.T) {
	jobs := []sim.Options{
		tinyOptions(t, "TPLRU", 1),
		tinyOptions(t, "DRRIP", 2),
		tinyOptions(t, "P(8):S&E", 3),
	}
	clean, err := RunSims(context.Background(), jobs, SimsConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Count the ops one open consumes so the faults land on the first
	// record's append/sync and the second record's append.
	counter, err := faultinject.NewInjector(faultinject.OS, 1)
	if err != nil {
		t.Fatal(err)
	}
	countPath := filepath.Join(t.TempDir(), "count.journal")
	jc, err := OpenJournalFS(counter, countPath)
	if err != nil {
		t.Fatal(err)
	}
	openOps := counter.Ops()
	jc.Close()

	path := filepath.Join(t.TempDir(), "dropsync.journal")
	inj, err := faultinject.NewInjector(faultinject.OS, 7,
		faultinject.Fault{Op: openOps + 2, Mode: faultinject.ModeDropSync}, // record 1's fsync: dropped
		faultinject.Fault{Op: openOps + 3, Mode: faultinject.ModeCrash},    // record 2's append: power cut
	)
	if err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournalFS(inj, path)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var warns []error
	res, err := RunSims(context.Background(), jobs, SimsConfig{
		Workers:        1,
		Journal:        j,
		JournalFailure: JournalDegrade,
		Warn: func(e error) {
			mu.Lock()
			warns = append(warns, e)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatalf("degraded sweep failed: %v", err)
	}
	if !reflect.DeepEqual(res, clean) {
		t.Error("degraded sweep results differ from journal-free run")
	}
	if len(warns) != 1 {
		t.Errorf("Warn invoked %d times, want 1", len(warns))
	}
	j.Close()

	// Nothing was ever durably synced, so the power cut may keep only a
	// seeded fraction of record 1's line: at most a torn line remains.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("reopen failed: %v", err)
	}
	defer j2.Close()
	if n := j2.Completed(); n != 0 {
		t.Errorf("Completed = %d after dropped-sync power cut, want 0", n)
	}
	res2, err := RunSims(context.Background(), jobs, SimsConfig{Workers: 1, Journal: j2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res2, clean) {
		t.Error("resumed sweep differs from uninterrupted sweep")
	}
}
