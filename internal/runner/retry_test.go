package runner

import (
	"context"
	"errors"
	"fmt"
	"os"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"emissary/internal/faultinject"
	"emissary/internal/pipeline"
	"emissary/internal/sim"
)

// instantSleep records backoff durations without waiting them out.
func instantSleep(record *[]time.Duration, mu *sync.Mutex) func(context.Context, time.Duration) error {
	return func(ctx context.Context, d time.Duration) error {
		mu.Lock()
		*record = append(*record, d)
		mu.Unlock()
		return ctx.Err()
	}
}

// transientErr is a test error carrying the Transient marker.
type transientErr struct{ transient bool }

func (e *transientErr) Error() string   { return fmt.Sprintf("test error (transient=%v)", e.transient) }
func (e *transientErr) Transient() bool { return e.transient }

func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want ErrorClass
	}{
		{"nil", nil, Permanent},
		{"plain", errors.New("boom"), Permanent},
		{"marker transient", &transientErr{transient: true}, Transient},
		{"marker permanent", &transientErr{transient: false}, Permanent},
		{"wrapped marker", fmt.Errorf("outer: %w", &transientErr{transient: true}), Transient},
		{"injected fs fault", &faultinject.InjectedError{Op: 3, Call: "write", Mode: faultinject.ModeFail}, Transient},
		{"power cut", &faultinject.PowerCutError{Op: 3, Call: "write"}, Permanent},
		{"injected job fault", &faultinject.InjectedJobError{Job: 1, Attempt: 1, Mode: faultinject.JobFail}, Transient},
		{"truncated trace", &sim.TruncatedError{Stage: "warm-up", Want: 10, Got: 5}, Permanent},
		{"pipeline stall", &pipeline.StallError{Reason: pipeline.ErrNoProgress}, Permanent},
		{"deadline", context.DeadlineExceeded, Transient},
		{"wrapped deadline", fmt.Errorf("job deadline exceeded: %w", context.DeadlineExceeded), Transient},
		{"canceled", context.Canceled, Permanent},
		{"job error around transient", &JobError{Job: 0, Cause: &transientErr{transient: true}}, Transient},
	}
	for _, tc := range cases {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("Classify(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestRetryTransientHeals proves a job that fails transiently on its
// first attempts succeeds once the fault clears, with no error
// surfaced and the backoff schedule consulted between attempts.
func TestRetryTransientHeals(t *testing.T) {
	var mu sync.Mutex
	var waits []time.Duration
	attempts := make(map[int]int)
	retry := RetryPolicy{
		MaxAttempts: 3,
		Sleep:       instantSleep(&waits, &mu),
	}
	out, err := DoRetryPolicy(context.Background(), 4, 2, FailFast, retry, func(_ context.Context, i, attempt int) (int, error) {
		mu.Lock()
		attempts[i]++
		mu.Unlock()
		if i == 2 && attempt < 3 {
			return 0, &transientErr{transient: true}
		}
		return i * 10, nil
	})
	if err != nil {
		t.Fatalf("healed sweep still failed: %v", err)
	}
	if !reflect.DeepEqual(out, []int{0, 10, 20, 30}) {
		t.Errorf("out = %v", out)
	}
	if attempts[2] != 3 {
		t.Errorf("job 2 ran %d attempts, want 3", attempts[2])
	}
	for _, i := range []int{0, 1, 3} {
		if attempts[i] != 1 {
			t.Errorf("job %d ran %d attempts, want 1", i, attempts[i])
		}
	}
	if len(waits) != 2 {
		t.Errorf("slept %d times, want 2 (between 3 attempts)", len(waits))
	}
}

// TestRetryPermanentNotRetried proves permanent failures run exactly
// once even with retry budget available.
func TestRetryPermanentNotRetried(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	retry := RetryPolicy{MaxAttempts: 5, Sleep: func(context.Context, time.Duration) error { return nil }}
	_, err := DoRetryPolicy(context.Background(), 1, 1, FailFast, retry, func(_ context.Context, _, _ int) (int, error) {
		mu.Lock()
		calls++
		mu.Unlock()
		return 0, &transientErr{transient: false}
	})
	if err == nil {
		t.Fatal("permanent failure swallowed")
	}
	if calls != 1 {
		t.Errorf("permanent failure ran %d times, want 1", calls)
	}
}

// TestRetryExhaustionReportsFinalAttempt proves an always-transient
// failure stops at MaxAttempts and the JobError names the last attempt.
func TestRetryExhaustionReportsFinalAttempt(t *testing.T) {
	var mu sync.Mutex
	var waits []time.Duration
	retry := RetryPolicy{MaxAttempts: 4, Sleep: instantSleep(&waits, &mu)}
	_, err := DoRetryPolicy(context.Background(), 1, 1, FailFast, retry, func(_ context.Context, _, _ int) (int, error) {
		return 0, &transientErr{transient: true}
	})
	var je *JobError
	if !errors.As(err, &je) {
		t.Fatalf("err = %v, want *JobError", err)
	}
	if je.Attempt != 4 {
		t.Errorf("JobError.Attempt = %d, want 4", je.Attempt)
	}
	if len(waits) != 3 {
		t.Errorf("slept %d times, want 3", len(waits))
	}
	if got := je.Error(); got != "job 0 (attempt 4): test error (transient=true)" {
		t.Errorf("Error() = %q", got)
	}
}

// TestRetryPanicRecoveredAndClassified proves a panicking transient
// fault is recovered into a JobError and still retried.
func TestRetryPanicRecoveredAndClassified(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	retry := RetryPolicy{MaxAttempts: 2, Sleep: func(context.Context, time.Duration) error { return nil }}
	out, err := DoRetryPolicy(context.Background(), 1, 1, FailFast, retry, func(_ context.Context, _, attempt int) (int, error) {
		mu.Lock()
		calls++
		mu.Unlock()
		if attempt == 1 {
			panic(&transientErr{transient: true})
		}
		return 7, nil
	})
	if err != nil {
		t.Fatalf("retried panic still failed: %v", err)
	}
	if out[0] != 7 || calls != 2 {
		t.Errorf("out[0] = %d, calls = %d", out[0], calls)
	}
}

// TestDefaultBackoffDeterministicAndBounded pins the virtual-time
// contract: identical (seed, job, attempt) → identical duration, and
// every duration sits inside [0.75, 1.25)× the exponential base.
func TestDefaultBackoffDeterministicAndBounded(t *testing.T) {
	for attempt := 1; attempt <= 12; attempt++ {
		a := DefaultBackoff(42, 7, attempt)
		b := DefaultBackoff(42, 7, attempt)
		if a != b {
			t.Fatalf("attempt %d: backoff not deterministic (%v vs %v)", attempt, a, b)
		}
		base := 10 * time.Millisecond << uint(attempt-1)
		if base > time.Second {
			base = time.Second
		}
		lo := time.Duration(float64(base) * 0.75)
		hi := time.Duration(float64(base) * 1.25)
		if a < lo || a >= hi {
			t.Errorf("attempt %d: backoff %v outside [%v, %v)", attempt, a, lo, hi)
		}
	}
	// Different seeds jitter differently (with overwhelming likelihood
	// over 8 attempts).
	same := true
	for attempt := 1; attempt <= 8; attempt++ {
		if DefaultBackoff(1, 0, attempt) != DefaultBackoff(2, 0, attempt) {
			same = false
		}
	}
	if same {
		t.Error("seeds 1 and 2 produced identical jitter across 8 attempts")
	}
}

// TestRetryCancelledMidBackoffReportsJobError proves cancellation
// during a backoff wait surfaces the job's own failure, not a bare
// context error.
func TestRetryCancelledMidBackoffReportsJobError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	retry := RetryPolicy{
		MaxAttempts: 3,
		Sleep: func(ctx context.Context, _ time.Duration) error {
			cancel()
			return ctx.Err()
		},
	}
	_, err := DoRetryPolicy(ctx, 1, 1, FailFast, retry, func(_ context.Context, _, _ int) (int, error) {
		return 0, &transientErr{transient: true}
	})
	var je *JobError
	if !errors.As(err, &je) {
		t.Fatalf("err = %v, want the job's *JobError", err)
	}
	var te *transientErr
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want the transientErr cause", err)
	}
}

// TestSimsRetryByteIdenticalAcrossWorkers is the acceptance test for
// deterministic retry: a sweep whose jobs fail transiently on their
// first attempt (via the job injector) must produce byte-identical
// results at workers=1 and workers=8, and match a fault-free run.
func TestSimsRetryByteIdenticalAcrossWorkers(t *testing.T) {
	jobs := []sim.Options{
		tinyOptions(t, "TPLRU", 1),
		tinyOptions(t, "P(8):S&E", 2),
		tinyOptions(t, "DRRIP", 3),
		tinyOptions(t, "P(8):S&E&R(1/32)", 4),
	}
	clean, err := RunSims(context.Background(), jobs, SimsConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Every job fails its first attempt (error on 0 and 2, panic on 1
	// and 3); attempt 2 runs clean. The injector is stateless, so one
	// serves both runs.
	inj, err := faultinject.ParseJobPlan("0:error@1,1:panic@1,2:error@1,3:panic@1")
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) []sim.Result {
		t.Helper()
		res, err := RunSims(context.Background(), jobs, SimsConfig{
			Workers: workers,
			Retry: RetryPolicy{
				MaxAttempts: 3,
				Sleep:       func(ctx context.Context, _ time.Duration) error { return ctx.Err() },
			},
			Inject: inj.Before,
		})
		if err != nil {
			t.Fatalf("workers=%d: fault-injected sweep failed: %v", workers, err)
		}
		return res
	}
	seq := run(1)
	par := run(8)
	if !reflect.DeepEqual(seq, par) {
		t.Error("retried sweep differs between workers=1 and workers=8")
	}
	if !reflect.DeepEqual(seq, clean) {
		t.Error("retried sweep differs from fault-free sweep")
	}
}

// TestSimsJobTimeoutStallRetries proves the graceful-degradation
// deadline path: a stall fault on attempt 1 is cut short by
// JobTimeout, classifies transient, and attempt 2 completes the job.
func TestSimsJobTimeoutStallRetries(t *testing.T) {
	jobs := []sim.Options{tinyOptions(t, "TPLRU", 1)}
	inj, err := faultinject.ParseJobPlan("0:stall@1")
	if err != nil {
		t.Fatal(err)
	}
	// Time the reference run first and scale the deadline from it, so
	// the healthy retry attempt fits comfortably under any build mode
	// (the race detector slows the simulation severalfold) while the
	// stalled first attempt is still cut short quickly.
	refStart := time.Now()
	want, werr := sim.Run(jobs[0])
	if werr != nil {
		t.Fatal(werr)
	}
	timeout := max(500*time.Millisecond, 10*time.Since(refStart))
	start := time.Now()
	res, err := RunSims(context.Background(), jobs, SimsConfig{
		Workers:    1,
		JobTimeout: timeout,
		Inject:     inj.Before,
		Retry: RetryPolicy{
			MaxAttempts: 2,
			Sleep:       func(ctx context.Context, _ time.Duration) error { return ctx.Err() },
		},
	})
	if err != nil {
		t.Fatalf("stalled-then-retried sweep failed after %v (timeout %v): %v", time.Since(start), timeout, err)
	}
	if !reflect.DeepEqual(res[0], want) {
		t.Error("retried result differs from direct run")
	}
}

// TestSimsJobTimeoutExhaustionNamesDeadline proves an unrecoverable
// stall reports the per-job deadline, not a bare context error.
func TestSimsJobTimeoutExhaustionNamesDeadline(t *testing.T) {
	jobs := []sim.Options{tinyOptions(t, "TPLRU", 1)}
	inj, err := faultinject.ParseJobPlan("0:stall") // every attempt
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunSims(context.Background(), jobs, SimsConfig{
		Workers:    1,
		JobTimeout: 20 * time.Millisecond,
		Inject:     inj.Before,
		Retry: RetryPolicy{
			MaxAttempts: 2,
			Sleep:       func(ctx context.Context, _ time.Duration) error { return ctx.Err() },
		},
	})
	if err == nil {
		t.Fatal("permanently stalled job reported success")
	}
	var je *JobError
	if !errors.As(err, &je) || je.Attempt != 2 {
		t.Fatalf("err = %v, want *JobError from attempt 2", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded in the chain", err)
	}
	if msg := err.Error(); !strings.Contains(msg, "job deadline exceeded") {
		t.Errorf("err = %q, want the job-deadline annotation", msg)
	}
}

// removeAll removes paths, failing the test on any error other than
// the file already being gone.
func removeAll(t *testing.T, paths ...string) {
	t.Helper()
	for _, p := range paths {
		if err := os.Remove(p); err != nil && !errors.Is(err, os.ErrNotExist) {
			t.Fatal(err)
		}
	}
}

// TestSimsJournalDegrade proves a journal write failure under
// JournalDegrade warns once, stops checkpointing, and leaves the
// sweep's results untouched and byte-identical to a journal-free run.
func TestSimsJournalDegrade(t *testing.T) {
	jobs := []sim.Options{
		tinyOptions(t, "TPLRU", 1),
		tinyOptions(t, "DRRIP", 2),
		tinyOptions(t, "P(8):S&E", 3),
	}
	clean, err := RunSims(context.Background(), jobs, SimsConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	// A journal whose file fails every write from op 1 onward: opening
	// happens against a healthy filesystem (ops counted there too), so
	// pick the first op after open+scan by counting a healthy lifetime.
	dir := t.TempDir()
	path := dir + "/degrade.journal"
	counter, err := faultinject.NewInjector(faultinject.OS, 1)
	if err != nil {
		t.Fatal(err)
	}
	jc, err := OpenJournalFS(counter, path)
	if err != nil {
		t.Fatal(err)
	}
	openOps := counter.Ops() // ops one open consumes, before any record
	jc.Close()
	// Remove journal + lock so the faulted open starts fresh.
	removeAll(t, path, path+".lock")

	inj, err := faultinject.NewInjector(faultinject.OS, 1,
		faultinject.Fault{Op: openOps + 1, Mode: faultinject.ModeFail})
	if err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournalFS(inj, path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	var mu sync.Mutex
	var warnings []error
	res, err := RunSims(context.Background(), jobs, SimsConfig{
		Workers:        2,
		Journal:        j,
		JournalFailure: JournalDegrade,
		Warn: func(e error) {
			mu.Lock()
			warnings = append(warnings, e)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatalf("degraded sweep failed: %v", err)
	}
	if !reflect.DeepEqual(res, clean) {
		t.Error("degraded sweep results differ from journal-free sweep")
	}
	if len(warnings) != 1 {
		t.Fatalf("Warn invoked %d times, want exactly 1", len(warnings))
	}
	if !errors.Is(warnings[0], faultinject.ErrInjected) {
		t.Errorf("warning = %v, want the injected cause in its chain", warnings[0])
	}
}

// TestSimsJournalFatalUnchanged pins the zero-value behaviour: the same
// failing journal under JournalFatal fails the job.
func TestSimsJournalFatalUnchanged(t *testing.T) {
	jobs := []sim.Options{tinyOptions(t, "TPLRU", 1)}
	dir := t.TempDir()
	path := dir + "/fatal.journal"
	counter, err := faultinject.NewInjector(faultinject.OS, 1)
	if err != nil {
		t.Fatal(err)
	}
	jc, err := OpenJournalFS(counter, path)
	if err != nil {
		t.Fatal(err)
	}
	openOps := counter.Ops()
	jc.Close()
	removeAll(t, path, path+".lock")

	inj, err := faultinject.NewInjector(faultinject.OS, 1,
		faultinject.Fault{Op: openOps + 1, Mode: faultinject.ModeFail})
	if err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournalFS(inj, path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	_, err = RunSims(context.Background(), jobs, SimsConfig{Workers: 1, Journal: j})
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want the injected journal failure under JournalFatal", err)
	}
}
