package sim

import (
	"context"
	"fmt"
	"os"

	"emissary/internal/cache"
	"emissary/internal/core"
	"emissary/internal/pipeline"
	"emissary/internal/rng"
	"emissary/internal/trace"
	"emissary/internal/workload"
)

// Warm is a reusable simulation-state slot: one hierarchy, one core,
// one workload engine, plus small derived-value caches, all reset in
// place between runs instead of rebuilt. A sweep worker that owns a
// slot runs job after job with zero per-job allocations on the steady
// path (the sweep-throughput section of the hotpath bench pins this).
//
// The correctness contract is absolute: a warm run produces results
// byte-identical to the package-level RunContextStats with the same
// Options (pinned by the warm-vs-cold lockstep and fuzz tests). When
// a run's geometry cannot be expressed by resetting the held state —
// different cache or pipeline sizing, or a trace replay — the slot
// transparently falls back to fresh construction and, where possible,
// adopts the new state for subsequent runs.
//
// A Warm is NOT safe for concurrent use; give each worker its own.
// After an error or panic escapes a run, the held state may be
// half-mutated — every component reset restores from any intermediate
// state, so reuse is still sound, but cautious callers (the sweep
// runner) discard the slot instead.
type Warm struct {
	hier *cache.Hierarchy
	core *pipeline.Core
	eng  *workload.Engine

	// polNames caches Spec.String renderings. (Programs come from the
	// process-wide workload.SharedPrograms cache — content-addressed by
	// the full profile — so slots across workers share one synthesis.)
	polNames map[core.Spec]string

	// censusArena parcels out per-run PriorityCensus storage. Results
	// retain their census slices, so exhausted arenas are abandoned to
	// their holders and replaced, never rewound.
	censusArena []int
	censusOff   int
}

// NewWarm returns an empty slot; the first run populates it.
func NewWarm() *Warm {
	return &Warm{
		polNames: make(map[core.Spec]string),
	}
}

// RunContextStats is the package-level RunContextStats executed
// against the slot's reusable state. A nil receiver always runs cold,
// so (*Warm)(nil) is the plain un-pooled path.
func (w *Warm) RunContextStats(ctx context.Context, opt Options) (Result, RunStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opt.MeasureInstrs == 0 {
		return Result{}, RunStats{}, fmt.Errorf("sim: MeasureInstrs must be positive")
	}
	if w == nil || opt.TracePath != "" {
		return runCold(ctx, opt)
	}

	prog, err := workload.SharedPrograms.Get(opt.Benchmark)
	if err != nil {
		return Result{}, RunStats{}, err
	}
	if w.eng == nil {
		w.eng = workload.NewEngine(prog)
	} else {
		w.eng.Reset(prog)
	}

	polName, err := w.prepare(opt, w.eng)
	if err != nil {
		return Result{}, RunStats{}, err
	}
	return finishRun(ctx, w.core, opt, w.hier, opt.Benchmark.Name, polName, prog.FootprintBytes(), w)
}

// prepare wires the slot's hierarchy and core — reset in place when the
// geometry allows, rebuilt otherwise — around src for opt, and returns
// the cached policy name. Shared by the single-job warm path (src is
// the slot's own engine) and the batch path (src is a lockstep reader),
// so the two cannot diverge on reset-or-rebuild decisions.
func (w *Warm) prepare(opt Options, src trace.Source) (string, error) {
	spec, ccfg, pcfg := deriveConfigs(opt)
	if w.hier == nil || !w.hier.Reset(ccfg) {
		w.hier = cache.NewHierarchy(ccfg)
	}
	if w.core == nil || !w.core.Reset(pcfg, src, w.hier, ccfg.Seed) {
		c, err := pipeline.NewCore(pcfg, src, w.hier, ccfg.Seed)
		if err != nil {
			return "", err
		}
		w.core = c
	}

	polName, ok := w.polNames[spec]
	if !ok {
		polName = spec.String()
		w.polNames[spec] = polName
	}
	return polName, nil
}

// runCold is the un-pooled construction path: build everything fresh,
// exactly as the pre-warm-pool simulator did.
func runCold(ctx context.Context, opt Options) (Result, RunStats, error) {
	var (
		source    trace.Source
		footprint int
		benchName string
	)
	if opt.TracePath != "" {
		f, err := os.Open(opt.TracePath)
		if err != nil {
			return Result{}, RunStats{}, fmt.Errorf("sim: %w", err)
		}
		defer f.Close()
		replay, err := trace.NewReplay(f)
		if err != nil {
			return Result{}, RunStats{}, err
		}
		source = replay
		footprint = replay.FootprintBytes()
		benchName = opt.TracePath
	} else {
		prog, err := workload.NewProgram(opt.Benchmark)
		if err != nil {
			return Result{}, RunStats{}, err
		}
		source = workload.NewEngine(prog)
		footprint = prog.FootprintBytes()
		benchName = opt.Benchmark.Name
	}

	spec, ccfg, pcfg := deriveConfigs(opt)
	hier := cache.NewHierarchy(ccfg)
	c, err := pipeline.NewCore(pcfg, source, hier, ccfg.Seed)
	if err != nil {
		return Result{}, RunStats{}, err
	}
	return finishRun(ctx, c, opt, hier, benchName, spec.String(), footprint, nil)
}

// deriveConfigs maps Options to the cache and pipeline configurations,
// shared verbatim by the cold and warm paths so they cannot diverge.
func deriveConfigs(opt Options) (core.Spec, cache.Config, pipeline.Config) {
	spec := opt.Policy
	if opt.TrueLRU {
		spec.TrueLRU = true
	}
	ccfg := cache.DefaultConfig(spec)
	ccfg.L1TrueLRU = opt.TrueLRU
	ccfg.IdealL2I = opt.IdealL2I
	ccfg.Seed = rng.Mix2(opt.Seed, opt.Benchmark.Seed+1)
	if !opt.NLP {
		ccfg.L1I.NLP = false
		ccfg.L1D.NLP = false
		ccfg.L2.NLP = false
		ccfg.L3.NLP = false
	}

	pcfg := pipeline.DefaultConfig()
	pcfg.FDIP = opt.FDIP
	pcfg.TrackReuse = opt.TrackReuse
	pcfg.PriorityResetInterval = opt.PriorityResetInterval
	if opt.FTQEntries > 0 {
		pcfg.FTQEntries = opt.FTQEntries
		pcfg.FTQInstrCap = opt.FTQEntries * 8
	}
	if opt.MaxMSHRs > 0 {
		pcfg.MaxMSHRs = opt.MaxMSHRs
	}
	pcfg.MRCEntries = opt.MRCEntries
	pcfg.MaxCycles = opt.MaxCycles
	pcfg.NoCycleSkip = opt.NoCycleSkip
	return spec, ccfg, pcfg
}

// finishRun executes the warm-up and measurement windows on an
// assembled core and packages the Result. w, when non-nil, supplies
// arena storage for the priority census.
func finishRun(ctx context.Context, c *pipeline.Core, opt Options, hier *cache.Hierarchy, benchName, polName string, footprint int, w *Warm) (Result, RunStats, error) {
	if err := runWindow(ctx, c, opt, "warm-up", opt.WarmupInstrs); err != nil {
		return Result{}, RunStats{}, err
	}
	start := c.TakeSnapshot()
	if err := runWindow(ctx, c, opt, "measurement", opt.MeasureInstrs); err != nil {
		return Result{}, RunStats{}, err
	}
	end := c.TakeSnapshot()

	var census []int
	if w != nil {
		census = hier.L2.FillPriorityCensus(w.censusBuf(hier.L2.Ways() + 1))
	} else {
		census = hier.L2.PriorityCensus()
	}
	res := pipeline.Diff(start, end, census)
	return Result{
		Result:               res,
		Benchmark:            benchName,
		Policy:               polName,
		FootprintBytes:       footprint,
		BranchMispredictRate: c.BranchMispredictRate(),
	}, RunStats{Cycles: c.Cycle(), SkippedCycles: c.SkippedCycles()}, nil
}

// censusBuf carves an n-element capacity-capped slice out of the
// arena, replacing the arena when exhausted (old arenas stay alive
// exactly as long as the Results that retain pieces of them). The
// full-slice expression caps the window so FillPriorityCensus cannot
// touch a neighbouring run's census.
func (w *Warm) censusBuf(n int) []int {
	if w.censusOff+n > len(w.censusArena) {
		// The floor is generous (512 KB, several thousand jobs' worth)
		// and each replacement doubles, so arena allocation is a
		// vanishing rarity rather than a periodic blip inside an
		// otherwise allocation-free sweep — the throughput bench's
		// differenced windows rely on that.
		size := 2 * len(w.censusArena)
		if size < 1<<16 {
			size = 1 << 16
		}
		for size < n {
			size *= 2
		}
		w.censusArena = make([]int, size)
		w.censusOff = 0
	}
	buf := w.censusArena[w.censusOff : w.censusOff+n : w.censusOff+n]
	w.censusOff += n
	return buf
}
