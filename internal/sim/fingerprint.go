package sim

import (
	"fmt"
	"strings"
)

// Fingerprint renders the canonical identity of a simulation job: a
// stable, human-readable key over every Options field that influences
// the result. Two jobs with equal fingerprints produce byte-identical
// Results (the simulator is deterministic), which is what lets a
// checkpoint journal serve completed jobs across process restarts.
//
// Stability contract: the field list below is append-only and each
// field always prints (no omission when zero), so a fingerprint written
// by an older binary stays comparable unless a new option is actually
// used — in which case the affected jobs legitimately re-run. The
// benchmark contributes its name and synthesis seed; editing a custom
// profile's other parameters without renaming it is NOT detected, so
// use a fresh journal when changing profile definitions.
func (o Options) Fingerprint() string {
	var b strings.Builder
	field := func(k string, v any) {
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%v", k, v)
	}
	if o.TracePath != "" {
		field("trace", o.TracePath)
	} else {
		field("bench", o.Benchmark.Name)
		field("bseed", o.Benchmark.Seed)
	}
	field("policy", o.Policy.String())
	field("warmup", o.WarmupInstrs)
	field("measure", o.MeasureInstrs)
	field("fdip", o.FDIP)
	field("nlp", o.NLP)
	field("truelru", o.TrueLRU)
	field("ideal", o.IdealL2I)
	field("reuse", o.TrackReuse)
	field("reset", o.PriorityResetInterval)
	field("ftq", o.FTQEntries)
	field("mshrs", o.MaxMSHRs)
	field("mrc", o.MRCEntries)
	field("maxcycles", o.MaxCycles)
	field("seed", o.Seed)
	// NoCycleSkip is deliberately absent: it selects the execution
	// mechanism, not the result (skip and naive runs are byte-identical
	// by contract), so journal entries stay valid across the flag.
	return b.String()
}
