package sim_test

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"emissary/internal/pipeline"
	"emissary/internal/rng"
	"emissary/internal/sim"
	"emissary/internal/workload"
)

// runBatchBoth executes opts (which share one BatchKey) through b and
// individually through cold RunContextStats, requiring member-for-
// member byte identity: Result, RunStats, and error all equal.
func runBatchBoth(t *testing.T, b *sim.Batch, opts []sim.Options, label string) {
	t.Helper()
	ctx := context.Background()
	outs := b.Run(ctx, opts, make([]*sim.Warm, len(opts)))
	for i, opt := range opts {
		coldRes, coldStats, coldErr := sim.RunContextStats(ctx, opt)
		if (outs[i].Err == nil) != (coldErr == nil) {
			t.Errorf("%s member %d: batch err %v, cold err %v", label, i, outs[i].Err, coldErr)
			continue
		}
		if coldErr != nil {
			if !reflect.DeepEqual(outs[i].Err, coldErr) {
				t.Errorf("%s member %d: batch err %#v differs from cold %#v", label, i, outs[i].Err, coldErr)
			}
			continue
		}
		if got, want := goldenDigest(outs[i].Result), goldenDigest(coldRes); got != want {
			t.Errorf("%s member %d: batched result diverged from cold\nbatch: %s\ncold:  %s", label, i, got, want)
		}
		if !reflect.DeepEqual(outs[i].Result, coldRes) {
			t.Errorf("%s member %d: batched Result differs from cold beyond the digest", label, i)
		}
		if outs[i].Stats != coldStats {
			t.Errorf("%s member %d: batched RunStats %+v differ from cold %+v", label, i, outs[i].Stats, coldStats)
		}
	}
}

// TestBatchLockstepDifferential is the batch correctness contract:
// members varying every policy and knob — different seeds, geometry
// fall-backs, instrumentation, cycle-skip off — run in one lockstep
// batch and must be byte-identical to sequential cold runs. One shared
// executor carries all matrices, so cross-batch reuse is exercised too.
func TestBatchLockstepDifferential(t *testing.T) {
	b := sim.NewBatch()

	// Policy matrix on one stream.
	var polOpts []sim.Options
	for i, pol := range goldenPolicies {
		polOpts = append(polOpts, lockstepOptions(t, "tomcat", pol, uint64(i)))
	}
	runBatchBoth(t, b, polOpts, "policies")

	// Knob matrix: same stream, wildly different core/cache wiring.
	muts := []func(*sim.Options){
		func(o *sim.Options) {},
		func(o *sim.Options) { o.TrackReuse = true },
		func(o *sim.Options) { o.PriorityResetInterval = 10_000 },
		func(o *sim.Options) { o.FDIP = false },
		func(o *sim.Options) { o.NLP = false },
		func(o *sim.Options) { o.TrueLRU = true },
		func(o *sim.Options) { o.IdealL2I = true },
		func(o *sim.Options) { o.FTQEntries = 16 },
		func(o *sim.Options) { o.MaxMSHRs = 4 },
		func(o *sim.Options) { o.MRCEntries = 64 },
		func(o *sim.Options) { o.NoCycleSkip = true },
		func(o *sim.Options) { o.Seed = 99 },
	}
	var knobOpts []sim.Options
	for _, mut := range muts {
		opt := lockstepOptions(t, "xapian", "P(8):S&E&R(1/32)", 3)
		mut(&opt)
		knobOpts = append(knobOpts, opt)
	}
	runBatchBoth(t, b, knobOpts, "knobs")
}

// TestBatchMemberFailure pins member isolation: a member with an
// exhausted cycle budget fails with the same StallError a sequential
// run produces, while its batch-mates complete byte-identical results.
func TestBatchMemberFailure(t *testing.T) {
	opts := []sim.Options{
		lockstepOptions(t, "tomcat", "TPLRU", 1),
		lockstepOptions(t, "tomcat", "SRRIP", 2),
		lockstepOptions(t, "tomcat", "GHRP", 3),
	}
	opts[1].MaxCycles = 1_000 // trips mid-warm-up

	b := sim.NewBatch()
	outs := b.Run(context.Background(), opts, make([]*sim.Warm, len(opts)))
	var stall *pipeline.StallError
	if !errors.As(outs[1].Err, &stall) {
		t.Fatalf("budgeted member returned %v, want StallError", outs[1].Err)
	}
	_, _, coldErr := sim.RunContextStats(context.Background(), opts[1])
	if !reflect.DeepEqual(outs[1].Err, coldErr) {
		t.Errorf("batched failure %#v differs from cold %#v", outs[1].Err, coldErr)
	}
	for _, i := range []int{0, 2} {
		coldRes, coldStats, err := sim.RunContextStats(context.Background(), opts[i])
		if err != nil {
			t.Fatal(err)
		}
		if outs[i].Err != nil {
			t.Fatalf("surviving member %d failed: %v", i, outs[i].Err)
		}
		if !reflect.DeepEqual(outs[i].Result, coldRes) || outs[i].Stats != coldStats {
			t.Errorf("surviving member %d diverged from cold", i)
		}
	}
}

// TestBatchFuzz hammers one reusable executor with deterministic random
// batches — random benchmark, member count, and per-member policy/seed/
// knob draws — requiring byte identity with cold on every member. Any
// cross-member leakage through the shared ring or a stale slot reset
// shows up here.
func TestBatchFuzz(t *testing.T) {
	iters := 12
	if testing.Short() {
		iters = 4
	}
	benches := workload.ProfileNames()
	r := rng.NewSplitMix64(0xba7c4)
	b := sim.NewBatch()
	for it := 0; it < iters; it++ {
		bench := benches[r.Uint64()%uint64(len(benches))]
		members := 2 + int(r.Uint64()%4)
		opts := make([]sim.Options, members)
		for i := range opts {
			pol := goldenPolicies[r.Uint64()%uint64(len(goldenPolicies))]
			opt := lockstepOptions(t, bench, pol, r.Uint64()%1024)
			opt.WarmupInstrs = 2_000
			opt.MeasureInstrs = 8_000
			bits := r.Uint64()
			opt.FDIP = bits&1 != 0
			opt.NLP = bits&2 != 0
			opt.TrueLRU = bits&4 != 0
			opt.TrackReuse = bits&8 != 0
			opt.IdealL2I = bits&16 != 0
			opt.NoCycleSkip = bits&32 != 0
			if bits&64 != 0 {
				opt.PriorityResetInterval = 4_096
			}
			if bits&128 != 0 {
				opt.FTQEntries = 16
			}
			if bits&256 != 0 {
				opt.MRCEntries = 32
			}
			opts[i] = opt
		}
		runBatchBoth(t, b, opts, bench)
	}
}

// TestRunGroupedMatchesSequential drives the ordered grouping helper
// with an interleaved mix of shared-stream and singleton jobs and
// requires job-order results identical to a plain sequential loop.
func TestRunGroupedMatchesSequential(t *testing.T) {
	mk := func(bench, pol string, seed uint64) sim.Options {
		return lockstepOptions(t, bench, pol, seed)
	}
	jobs := []sim.Options{
		mk("tomcat", "TPLRU", 1),
		mk("xapian", "TPLRU", 1),
		mk("tomcat", "SRRIP", 2),
		mk("kafka", "TPLRU", 3),
		mk("xapian", "GHRP", 4),
		mk("tomcat", "P(8):S&E&R(1/32)", 5),
	}
	jobs[3].MeasureInstrs = 12_000 // different horizon: own group

	want := make([]sim.Result, len(jobs))
	for i, opt := range jobs {
		res, err := sim.RunContext(context.Background(), opt)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}
	got, err := sim.RunGrouped(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("grouped results differ from the sequential loop")
	}
}

// TestBatchKeyOf pins the grouping predicate: trace replays and empty
// measurement windows never batch; knob-only differences share a key;
// workload/seed/horizon differences split.
func TestBatchKeyOf(t *testing.T) {
	base := lockstepOptions(t, "tomcat", "TPLRU", 1)
	key, ok := sim.BatchKeyOf(base)
	if !ok {
		t.Fatal("synthetic job not batchable")
	}
	knob := base
	knob.Seed = 77
	knob.IdealL2I = true
	knob.Policy = lockstepOptions(t, "tomcat", "GHRP", 1).Policy
	if k2, ok := sim.BatchKeyOf(knob); !ok || k2 != key {
		t.Error("knob-only variant did not share the stream key")
	}
	replay := base
	replay.TracePath = "x.trace"
	if _, ok := sim.BatchKeyOf(replay); ok {
		t.Error("trace replay claimed batchable")
	}
	horizon := base
	horizon.MeasureInstrs++
	if k2, _ := sim.BatchKeyOf(horizon); k2 == key {
		t.Error("different horizon shared the stream key")
	}
	reseed := base
	reseed.Benchmark.Seed++
	if k2, _ := sim.BatchKeyOf(reseed); k2 == key {
		t.Error("different workload seed shared the stream key")
	}
}
