package sim

import (
	"testing"

	"emissary/internal/core"
	"emissary/internal/workload"
)

func TestRunReplicatedAggregates(t *testing.T) {
	p, _ := workload.ProfileByName("xapian")
	opt := DefaultOptions(p, core.MustParsePolicy("TPLRU"))
	opt.WarmupInstrs = 50_000
	opt.MeasureInstrs = 150_000
	rep, err := RunReplicated(opt, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 3 {
		t.Fatalf("runs = %d", len(rep.Runs))
	}
	if rep.MeanIPC <= 0 || rep.MeanCycles <= 0 {
		t.Errorf("aggregates: %+v", rep)
	}
	// Different seeds must actually vary the measurement.
	if rep.Runs[0].Cycles == rep.Runs[1].Cycles && rep.Runs[1].Cycles == rep.Runs[2].Cycles {
		t.Error("replicas identical; seeds not applied")
	}
	if rep.StdIPC <= 0 {
		t.Errorf("StdIPC = %v, want positive spread", rep.StdIPC)
	}
}

func TestRunReplicatedSingle(t *testing.T) {
	p, _ := workload.ProfileByName("xapian")
	opt := DefaultOptions(p, core.MustParsePolicy("TPLRU"))
	opt.WarmupInstrs = 20_000
	opt.MeasureInstrs = 80_000
	rep, err := RunReplicated(opt, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.StdIPC != 0 {
		t.Errorf("single replica StdIPC = %v", rep.StdIPC)
	}
	if _, err := RunReplicated(opt, 0); err == nil {
		t.Error("zero replicas accepted")
	}
}

func TestSpeedupVs(t *testing.T) {
	base := Replicated{MeanIPC: 1.0, StdIPC: 0.01, MeanCycles: 1000}
	fast := Replicated{MeanIPC: 1.1, StdIPC: 0.01, MeanCycles: 909}
	s, sig := fast.SpeedupVs(base)
	if s < 0.09 || s > 0.11 {
		t.Errorf("speedup = %v", s)
	}
	if !sig {
		t.Error("clear 10% gap not flagged significant")
	}
	noisy := Replicated{MeanIPC: 1.005, StdIPC: 0.05, MeanCycles: 995}
	if _, sig := noisy.SpeedupVs(base); sig {
		t.Error("within-noise gap flagged significant")
	}
	var zero Replicated
	if s, _ := zero.SpeedupVs(base); s != 0 {
		t.Errorf("zero-cycle speedup = %v", s)
	}
}
