package sim

import (
	"testing"

	"emissary/internal/core"
	"emissary/internal/workload"
)

func quickOpt(bench string, policy string) Options {
	p, ok := workload.ProfileByName(bench)
	if !ok {
		panic("unknown benchmark " + bench)
	}
	opt := DefaultOptions(p, core.MustParsePolicy(policy))
	opt.WarmupInstrs = 100_000
	opt.MeasureInstrs = 300_000
	return opt
}

func TestRunBaselineProducesSaneMetrics(t *testing.T) {
	res, err := Run(quickOpt("xapian", "TPLRU"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions < 300_000 {
		t.Errorf("Instructions = %d", res.Instructions)
	}
	if res.IPC <= 0.1 || res.IPC > 8 {
		t.Errorf("IPC = %v, implausible", res.IPC)
	}
	if res.L1IMPKI <= 0 {
		t.Errorf("L1I MPKI = %v, expected misses with a 0.29MB footprint", res.L1IMPKI)
	}
	if res.Cycles == 0 || res.EnergyPJ <= 0 {
		t.Errorf("cycles/energy not accounted: %d %v", res.Cycles, res.EnergyPJ)
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(quickOpt("xapian", "P(8):S&E"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(quickOpt("xapian", "P(8):S&E"))
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Instructions != b.Instructions {
		t.Errorf("nondeterministic: %d/%d vs %d/%d cycles/instrs",
			a.Cycles, a.Instructions, b.Cycles, b.Instructions)
	}
}

func TestRunEmissaryPopulatesPriorityBits(t *testing.T) {
	res, err := Run(quickOpt("tomcat", "P(8):S"))
	if err != nil {
		t.Fatal(err)
	}
	protected := 0
	for n, sets := range res.PriorityCensus {
		if n > 0 {
			protected += sets
		}
	}
	if protected == 0 {
		t.Error("no L2 set holds a high-priority line under P(8):S")
	}
	if res.CommitStarvation == 0 {
		t.Error("no decode starvation observed; selection signal dead")
	}
}

func TestRunBaselineHasNoPriorityBits(t *testing.T) {
	res, err := Run(quickOpt("tomcat", "TPLRU"))
	if err != nil {
		t.Fatal(err)
	}
	for n, sets := range res.PriorityCensus {
		if n > 0 && sets != 0 {
			t.Fatalf("baseline census has %d sets with %d high-priority lines", sets, n)
		}
	}
}

func TestFDIPOffIsSlower(t *testing.T) {
	on := quickOpt("tomcat", "TPLRU")
	off := on
	off.FDIP = false
	a, err := Run(on)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(off)
	if err != nil {
		t.Fatal(err)
	}
	if a.IPC <= b.IPC {
		t.Errorf("FDIP on IPC %.3f <= off IPC %.3f; decoupled prefetching buys nothing", a.IPC, b.IPC)
	}
}

func TestIdealL2IFaster(t *testing.T) {
	normal := quickOpt("tomcat", "TPLRU")
	ideal := normal
	ideal.IdealL2I = true
	a, err := Run(normal)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(ideal)
	if err != nil {
		t.Fatal(err)
	}
	if b.IPC <= a.IPC {
		t.Errorf("ideal L2-I IPC %.3f <= normal %.3f", b.IPC, a.IPC)
	}
}

func TestTrackReuseProducesFig2Data(t *testing.T) {
	opt := quickOpt("tomcat", "TPLRU")
	opt.TrackReuse = true
	res, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	var accesses uint64
	for _, a := range res.AccessByBucket {
		accesses += a
	}
	if accesses == 0 {
		t.Fatal("no reuse-bucket accesses recorded")
	}
	var starv uint64
	for _, s := range res.StarvByBucket {
		starv += s
	}
	if starv == 0 {
		t.Error("no starvation attributed to reuse buckets")
	}
}

func TestRunRejectsZeroMeasure(t *testing.T) {
	opt := quickOpt("xapian", "TPLRU")
	opt.MeasureInstrs = 0
	if _, err := Run(opt); err == nil {
		t.Error("zero-measure run accepted")
	}
}

func TestRunPolicyHelper(t *testing.T) {
	p, _ := workload.ProfileByName("xapian")
	res, err := RunPolicy(p, "P(4):S", 20_000, 100_000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "P(4):S" || res.IPC <= 0 {
		t.Errorf("RunPolicy result: %s IPC %v", res.Policy, res.IPC)
	}
	if _, err := RunPolicy(p, "garbage", 1000, 1000, 1); err == nil {
		t.Error("bad policy text accepted")
	}
}

func TestRunOptionOverrides(t *testing.T) {
	opt := quickOpt("xapian", "TPLRU")
	opt.WarmupInstrs = 20_000
	opt.MeasureInstrs = 100_000
	opt.FTQEntries = 8
	opt.MaxMSHRs = 4
	opt.MRCEntries = 16
	opt.PriorityResetInterval = 50_000
	res, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 {
		t.Errorf("IPC = %v", res.IPC)
	}
	// A shallow FTQ + few MSHRs must not beat the default front end.
	def := quickOpt("xapian", "TPLRU")
	def.WarmupInstrs = 20_000
	def.MeasureInstrs = 100_000
	base, err := Run(def)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC > base.IPC*1.02 {
		t.Errorf("crippled front end IPC %v beat default %v", res.IPC, base.IPC)
	}
}

func TestRunTrueLRUConfig(t *testing.T) {
	opt := quickOpt("xapian", "P(4):S")
	opt.WarmupInstrs = 20_000
	opt.MeasureInstrs = 100_000
	opt.TrueLRU = true
	opt.NLP = false
	res, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "P(4):S+LRU" {
		t.Errorf("policy label = %q, want the +LRU form", res.Policy)
	}
}

func TestRunInvalidBenchmark(t *testing.T) {
	opt := Options{MeasureInstrs: 1000, Policy: core.MustParsePolicy("TPLRU")}
	// Zero-valued profile fails workload validation.
	if _, err := Run(opt); err == nil {
		t.Error("invalid benchmark profile accepted")
	}
}
