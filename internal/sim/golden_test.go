package sim_test

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"emissary/internal/sim"
	"emissary/internal/workload"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden.json from the current simulator output")

// goldenPolicies spans every treatment in internal/policy and
// internal/core: the recency baselines, the M and P bimodal families
// (including the true-LRU and GHRP-hybrid variants), and all five
// comparison policies.
var goldenPolicies = []string{
	"TPLRU",
	"LRU",
	"LIP",
	"BIP",
	"M:S&E",
	"M:S&E&R(1/32)",
	"P(8):S",
	"P(8):S&E&R(1/32)",
	"P(8):S&E+LRU",
	"P(8):S&E+GHRP",
	"SRRIP",
	"BRRIP",
	"DRRIP",
	"PDP",
	"DCLIP",
	"GHRP",
}

// shortBenches is the -short subset; the full run covers every
// workload profile.
var shortBenches = []string{"tomcat", "xapian"}

const (
	goldenWarmup  = 10_000
	goldenMeasure = 50_000
)

// goldenDigest renders a run's complete statistics deterministically.
// Byte equality of this string across code versions is the hot-path
// rewrite's correctness contract: any behavioral change to the cache
// core, a policy, or the pipeline shows up as a digest diff.
func goldenDigest(res sim.Result) string {
	return fmt.Sprintf("%+v", res)
}

func goldenKey(bench, policyText string) string {
	return bench + "|" + policyText
}

func goldenPath() string { return filepath.Join("testdata", "golden.json") }

func loadGolden(t *testing.T) map[string]string {
	t.Helper()
	data, err := os.ReadFile(goldenPath())
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update-golden): %v", err)
	}
	var m map[string]string
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("corrupt golden file: %v", err)
	}
	return m
}

// TestGoldenEquivalence locks the simulator's output bit-for-bit: one
// short run per (workload, policy) pair must render exactly the digest
// recorded in testdata/golden.json. The goldens were captured before
// the hot-path rewrite of the cache core, so a pass here proves the
// rewrite preserved every statistic byte-identically.
func TestGoldenEquivalence(t *testing.T) {
	benches := workload.ProfileNames()
	if testing.Short() {
		benches = shortBenches
	}
	golden := map[string]string{}
	if !*updateGolden {
		golden = loadGolden(t)
	}
	got := make(map[string]string)
	for _, bench := range benches {
		prof, ok := workload.ProfileByName(bench)
		if !ok {
			t.Fatalf("unknown benchmark %q", bench)
		}
		for _, pol := range goldenPolicies {
			key := goldenKey(bench, pol)
			res, err := sim.RunPolicy(prof, pol, goldenWarmup, goldenMeasure, 1)
			if err != nil {
				t.Fatalf("%s: %v", key, err)
			}
			digest := goldenDigest(res)
			got[key] = digest
			if *updateGolden {
				continue
			}
			want, ok := golden[key]
			if !ok {
				t.Errorf("%s: no golden entry (regenerate with -update-golden)", key)
				continue
			}
			if digest != want {
				t.Errorf("%s: simulation output diverged from golden\n got: %s\nwant: %s", key, digest, want)
			}
		}
	}
	if *updateGolden {
		// Merge over any entries for benchmarks outside this run's
		// subset so -short -update-golden cannot silently drop rows.
		if data, err := os.ReadFile(goldenPath()); err == nil {
			var old map[string]string
			if err := json.Unmarshal(data, &old); err == nil {
				for k, v := range old {
					if _, ok := got[k]; !ok {
						got[k] = v
					}
				}
			}
		}
		// encoding/json sorts map keys, so the file is deterministic.
		data, err := json.MarshalIndent(got, "", "\t")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath()), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath(), append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden entries", len(got))
	}
}
