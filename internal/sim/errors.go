package sim

import (
	"errors"
	"fmt"
)

// ErrTruncated reports a source that ran dry before the requested
// warm-up or measurement window completed (typically a replayed trace
// shorter than WarmupInstrs+MeasureInstrs). A short run used to end
// silently with a shrunken window; in a sweep that skews aggregates
// without a trace, so it is now a typed, per-job error.
var ErrTruncated = errors.New("sim: source exhausted before window completed")

// TruncatedError carries which window was cut short and by how much,
// plus the failing job's options so a sweep-level report (for example
// a runner.JobError) identifies the job without extra context.
type TruncatedError struct {
	// Stage is "warm-up" or "measurement".
	Stage string
	// Want is the window's requested instruction count, Got how many
	// the stage actually committed before the source ended.
	Want, Got uint64
	Options   Options
}

func (e *TruncatedError) Error() string {
	return fmt.Sprintf("%v: %s window committed %d of %d instructions (%s)",
		ErrTruncated, e.Stage, e.Got, e.Want, e.Options.Fingerprint())
}

func (e *TruncatedError) Unwrap() error { return ErrTruncated }

// Transient reports false: a trace is the same length on every run, so
// retrying a truncated simulation reproduces the same truncation.
func (e *TruncatedError) Transient() bool { return false }
