package sim_test

import (
	"context"
	"testing"

	"emissary/internal/core"
	"emissary/internal/rng"
	"emissary/internal/sim"
	"emissary/internal/workload"
)

// lockstepOptions builds a small-window Options for warm-vs-cold
// comparisons (the windows are shorter than the golden run's so the
// lockstep matrix stays fast).
func lockstepOptions(t *testing.T, bench, policy string, seed uint64) sim.Options {
	t.Helper()
	prof, ok := workload.ProfileByName(bench)
	if !ok {
		t.Fatalf("unknown benchmark %q", bench)
	}
	opt := sim.DefaultOptions(prof, core.MustParsePolicy(policy))
	opt.WarmupInstrs = 5_000
	opt.MeasureInstrs = 20_000
	opt.Seed = seed
	return opt
}

// runBoth executes opt warm (through the shared slot) and cold and
// fails unless the two runs are byte-identical — Result digest and
// RunStats both.
func runBoth(t *testing.T, w *sim.Warm, opt sim.Options, label string) {
	t.Helper()
	ctx := context.Background()
	warmRes, warmStats, err := w.RunContextStats(ctx, opt)
	if err != nil {
		t.Fatalf("%s: warm run: %v", label, err)
	}
	coldRes, coldStats, err := sim.RunContextStats(ctx, opt)
	if err != nil {
		t.Fatalf("%s: cold run: %v", label, err)
	}
	if got, want := goldenDigest(warmRes), goldenDigest(coldRes); got != want {
		t.Errorf("%s: warm result diverged from cold\nwarm: %s\ncold: %s", label, got, want)
	}
	if warmStats != coldStats {
		t.Errorf("%s: warm RunStats %+v differ from cold %+v", label, warmStats, coldStats)
	}
}

// TestWarmColdLockstep is the warm pool's correctness contract: one
// slot is driven through the full policy matrix, and every run must be
// byte-identical to a cold run of the same Options. Policy changes
// alter the cache geometry mid-stream, so the slot's reset-or-rebuild
// decision is exercised on most transitions.
func TestWarmColdLockstep(t *testing.T) {
	benches := shortBenches
	if !testing.Short() {
		benches = workload.ProfileNames()
	}
	w := sim.NewWarm()
	for _, bench := range benches {
		for _, pol := range goldenPolicies {
			runBoth(t, w, lockstepOptions(t, bench, pol, 1), goldenKey(bench, pol))
		}
	}
}

// TestWarmColdLockstepOptionVariants drives every Options toggle
// through one shared slot: instrumentation flags that reset in place,
// and sizing overrides that force the fall-back rebuild path.
func TestWarmColdLockstepOptionVariants(t *testing.T) {
	variants := []struct {
		name string
		mut  func(*sim.Options)
	}{
		{"base", func(o *sim.Options) {}},
		{"track-reuse", func(o *sim.Options) { o.TrackReuse = true }},
		{"priority-reset", func(o *sim.Options) { o.PriorityResetInterval = 10_000 }},
		{"no-fdip", func(o *sim.Options) { o.FDIP = false }},
		{"no-nlp", func(o *sim.Options) { o.NLP = false }},
		{"true-lru", func(o *sim.Options) { o.TrueLRU = true }},
		{"ideal-l2i", func(o *sim.Options) { o.IdealL2I = true }},
		{"ftq-16", func(o *sim.Options) { o.FTQEntries = 16 }},
		{"mshr-4", func(o *sim.Options) { o.MaxMSHRs = 4 }},
		{"mrc-64", func(o *sim.Options) { o.MRCEntries = 64 }},
		{"no-cycle-skip", func(o *sim.Options) { o.NoCycleSkip = true }},
		{"seed-99", func(o *sim.Options) { o.Seed = 99 }},
		{"base-again", func(o *sim.Options) {}},
	}
	w := sim.NewWarm()
	for _, v := range variants {
		opt := lockstepOptions(t, "tomcat", "P(8):S&E&R(1/32)", 3)
		v.mut(&opt)
		runBoth(t, w, opt, v.name)
	}
}

// TestWarmColdFuzz hammers one slot with a deterministic random stream
// of Options — benchmark, policy, seed and feature toggles all vary —
// and requires byte-identity with cold on every draw. Any reset that
// leaks state from the previous randomized run shows up here.
func TestWarmColdFuzz(t *testing.T) {
	iters := 32
	if testing.Short() {
		iters = 10
	}
	benches := workload.ProfileNames()
	r := rng.NewSplitMix64(0xf0221)
	w := sim.NewWarm()
	for i := 0; i < iters; i++ {
		bench := benches[r.Uint64()%uint64(len(benches))]
		pol := goldenPolicies[r.Uint64()%uint64(len(goldenPolicies))]
		opt := lockstepOptions(t, bench, pol, r.Uint64()%1024)
		opt.WarmupInstrs = 2_000
		opt.MeasureInstrs = 8_000
		bits := r.Uint64()
		opt.FDIP = bits&1 != 0
		opt.NLP = bits&2 != 0
		opt.TrueLRU = bits&4 != 0
		opt.TrackReuse = bits&8 != 0
		opt.IdealL2I = bits&16 != 0
		opt.NoCycleSkip = bits&32 != 0
		if bits&64 != 0 {
			opt.PriorityResetInterval = 4_096
		}
		if bits&128 != 0 {
			opt.FTQEntries = 16
		}
		if bits&256 != 0 {
			opt.MRCEntries = 32
		}
		runBoth(t, w, opt, goldenKey(bench, pol))
	}
}
