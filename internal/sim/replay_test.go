package sim

import (
	"os"
	"path/filepath"
	"testing"

	"emissary/internal/core"
	"emissary/internal/trace"
	"emissary/internal/workload"
)

func TestRunFromTraceFile(t *testing.T) {
	// Capture a short trace from a synthetic benchmark, then replay it
	// through the full simulator.
	p, _ := workload.ProfileByName("xapian")
	prog, err := workload.NewProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	eng := workload.NewEngine(prog)
	path := filepath.Join(t.TempDir(), "x.trc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := trace.NewWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	for eng.Instructions() < 400_000 {
		ev, _ := eng.NextBlock()
		if err := w.WriteEvent(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	opt := Options{
		Policy:        core.MustParsePolicy("TPLRU"),
		WarmupInstrs:  50_000,
		MeasureInstrs: 200_000,
		FDIP:          true,
		NLP:           true,
		TracePath:     path,
	}
	res, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions < 200_000 {
		t.Errorf("replayed %d instructions", res.Instructions)
	}
	if res.IPC <= 0 {
		t.Errorf("IPC = %v", res.IPC)
	}
	if res.FootprintBytes <= 0 {
		t.Error("replay footprint not computed")
	}
	if res.Benchmark != path {
		t.Errorf("benchmark label = %q", res.Benchmark)
	}
}

func TestRunFromMissingTraceFails(t *testing.T) {
	opt := Options{
		Policy:        core.MustParsePolicy("TPLRU"),
		MeasureInstrs: 1000,
		TracePath:     "/does/not/exist.trc",
	}
	if _, err := Run(opt); err == nil {
		t.Error("missing trace file accepted")
	}
}
