package sim

import (
	"fmt"
	"math"

	"emissary/internal/rng"
)

// Replicated aggregates one configuration run under several seeds:
// both the workload synthesis randomness and the policies' stochastic
// components (R(r) draws, BRRIP) vary across replicas, so the spread
// estimates how much of a measured speedup is signal.
type Replicated struct {
	Runs []Result

	MeanIPC    float64
	StdIPC     float64
	MeanL2I    float64
	MeanCycles float64
}

// RunReplicated executes opt under n different seeds (derived from
// opt.Seed) and aggregates. n must be at least 1.
func RunReplicated(opt Options, n int) (Replicated, error) {
	if n < 1 {
		return Replicated{}, fmt.Errorf("sim: need at least one replica, got %d", n)
	}
	var out Replicated
	for i := 0; i < n; i++ {
		o := opt
		o.Seed = rng.Mix2(opt.Seed, uint64(i)+0x5eed)
		if o.TracePath == "" {
			// Re-synthesize the workload too: replicas measure the
			// profile, not one particular program instance.
			o.Benchmark.Seed = rng.Mix2(opt.Benchmark.Seed, uint64(i)+0xbe9c)
		}
		res, err := Run(o)
		if err != nil {
			return Replicated{}, err
		}
		out.Runs = append(out.Runs, res)
	}
	var sum, sumSq, l2i, cyc float64
	for _, r := range out.Runs {
		sum += r.IPC
		sumSq += r.IPC * r.IPC
		l2i += r.L2IMPKI
		cyc += float64(r.Cycles)
	}
	fn := float64(n)
	out.MeanIPC = sum / fn
	out.MeanL2I = l2i / fn
	out.MeanCycles = cyc / fn
	if n > 1 {
		variance := (sumSq - sum*sum/fn) / (fn - 1)
		if variance > 0 {
			out.StdIPC = math.Sqrt(variance)
		}
	}
	return out, nil
}

// SpeedupVs returns the mean speedup of r over base (by mean cycles)
// and a conservative significance flag: true when the IPC gap exceeds
// the combined standard deviations.
func (r Replicated) SpeedupVs(base Replicated) (float64, bool) {
	if r.MeanCycles == 0 {
		return 0, false
	}
	speedup := base.MeanCycles/r.MeanCycles - 1
	gap := math.Abs(r.MeanIPC - base.MeanIPC)
	noise := r.StdIPC + base.StdIPC
	return speedup, gap > noise && noise > 0
}
