package sim

import (
	"context"
	"fmt"
	"math"

	"emissary/internal/rng"
)

// Replicated aggregates one configuration run under several seeds:
// both the workload synthesis randomness and the policies' stochastic
// components (R(r) draws, BRRIP) vary across replicas, so the spread
// estimates how much of a measured speedup is signal.
type Replicated struct {
	Runs []Result

	MeanIPC    float64
	StdIPC     float64
	MeanL2I    float64
	MeanCycles float64
}

// ReplicaOptions derives the n per-replica option sets RunReplicated
// executes: the simulation seed and (for synthetic workloads) the
// program-synthesis seed both vary per replica, derived from opt.Seed
// alone so the set is independent of execution order. n must be at
// least 1.
func ReplicaOptions(opt Options, n int) ([]Options, error) {
	if n < 1 {
		return nil, fmt.Errorf("sim: need at least one replica, got %d", n)
	}
	opts := make([]Options, n)
	for i := range opts {
		o := opt
		o.Seed = rng.Mix2(opt.Seed, uint64(i)+0x5eed)
		if o.TracePath == "" {
			// Re-synthesize the workload too: replicas measure the
			// profile, not one particular program instance.
			o.Benchmark.Seed = rng.Mix2(opt.Benchmark.Seed, uint64(i)+0xbe9c)
		}
		opts[i] = o
	}
	return opts, nil
}

// Aggregate summarizes finished replica runs.
func Aggregate(runs []Result) Replicated {
	out := Replicated{Runs: runs}
	var sum, sumSq, l2i, cyc float64
	for _, r := range runs {
		sum += r.IPC
		sumSq += r.IPC * r.IPC
		l2i += r.L2IMPKI
		cyc += float64(r.Cycles)
	}
	n := len(runs)
	if n == 0 {
		return out
	}
	fn := float64(n)
	out.MeanIPC = sum / fn
	out.MeanL2I = l2i / fn
	out.MeanCycles = cyc / fn
	if n > 1 {
		variance := (sumSq - sum*sum/fn) / (fn - 1)
		if variance > 0 {
			out.StdIPC = math.Sqrt(variance)
		}
	}
	return out
}

// RunReplicated executes opt under n different seeds (derived from
// opt.Seed) and aggregates. n must be at least 1. For a parallel
// version see runner.Replicated, which produces identical output.
//
// Replicas run through the grouped lockstep executor: any replicas
// sharing an architectural stream batch together. Stock replica sets
// re-seed the workload synthesis per replica (each measures a fresh
// program instance), so they degenerate to sequential runs — but a
// caller replicating over a fixed Benchmark.Seed batches fully, and
// either way output is byte-identical to the historical loop.
func RunReplicated(opt Options, n int) (Replicated, error) {
	opts, err := ReplicaOptions(opt, n)
	if err != nil {
		return Replicated{}, err
	}
	runs, err := RunGrouped(context.Background(), opts)
	if err != nil {
		return Replicated{}, err
	}
	return Aggregate(runs), nil
}

// SpeedupVs returns the mean speedup of r over base (by mean cycles)
// and a conservative significance flag: true when the IPC gap exceeds
// the combined standard deviations.
func (r Replicated) SpeedupVs(base Replicated) (float64, bool) {
	if r.MeanCycles == 0 {
		return 0, false
	}
	speedup := base.MeanCycles/r.MeanCycles - 1
	gap := math.Abs(r.MeanIPC - base.MeanIPC)
	noise := r.StdIPC + base.StdIPC
	return speedup, gap > noise && noise > 0
}
