// Package sim assembles a complete simulation: a synthetic benchmark
// (workload engine), the Table 4 memory hierarchy with the replacement
// policy under study, and the pipeline core; it runs a warm-up window
// followed by a measurement window and reports the paper's metrics.
package sim

import (
	"context"

	"emissary/internal/core"
	"emissary/internal/pipeline"
	"emissary/internal/workload"
)

// Options selects what to simulate.
type Options struct {
	// Benchmark is the workload profile (one of workload.Profiles() or
	// a custom one).
	Benchmark workload.Profile
	// Policy is the L2 replacement policy under study.
	Policy core.Spec

	WarmupInstrs  uint64
	MeasureInstrs uint64

	// FDIP disables the decoupled prefetcher when false (§5.2's
	// no-FDIP comparison).
	FDIP bool
	// NLP disables every next-line prefetcher when false (Figure 1
	// runs "no prefetchers").
	NLP bool
	// TrueLRU selects exact-LRU recency state throughout (Figure 1).
	TrueLRU bool
	// IdealL2I is the zero-cycle-miss model of §5.6.
	IdealL2I bool
	// TrackReuse enables Figure 2 instrumentation.
	TrackReuse bool
	// PriorityResetInterval clears P bits every N committed
	// instructions (§6); 0 disables.
	PriorityResetInterval uint64

	// TracePath, when set, replays a recorded trace file (see
	// cmd/emissary-trace) instead of executing Benchmark; the run ends
	// early if the trace is shorter than warm-up + measurement.
	TracePath string

	// FTQEntries and MaxMSHRs override the front-end sizing when
	// non-zero (ablation studies; defaults are the Table 4 values).
	FTQEntries int
	MaxMSHRs   int

	// MRCEntries enables the §7.3 misprediction recovery cache with
	// that many line entries (0 = off, the paper's baseline).
	MRCEntries int

	// MaxCycles bounds the whole run (warm-up plus measurement): once
	// the core's cycle counter reaches it, Run fails with a
	// pipeline.StallError wrapping pipeline.ErrCycleBudget instead of
	// simulating forever. 0 disables the budget. Use it to fence long
	// sweeps against runaway or livelocked configurations.
	MaxCycles uint64

	// NoCycleSkip disables the core's event-driven fast-forward over
	// stalled spans (pipeline.Config.NoCycleSkip), walking every cycle
	// naively. Results are byte-identical either way — this is a
	// debugging escape hatch, which is also why the field is excluded
	// from Fingerprint(): journal entries stay valid across the flag.
	//vet:nonbehavioral byte-identical either way (golden + skip-differential pinned); journal entries stay valid across the flag
	NoCycleSkip bool

	Seed uint64
}

// DefaultOptions returns a baseline-TPLRU run of the benchmark at
// moderate length.
func DefaultOptions(bench workload.Profile, policy core.Spec) Options {
	return Options{
		Benchmark:     bench,
		Policy:        policy,
		WarmupInstrs:  1_000_000,
		MeasureInstrs: 5_000_000,
		FDIP:          true,
		NLP:           true,
	}
}

// Result is a finished run.
type Result struct {
	pipeline.Result
	Benchmark string
	Policy    string
	// FootprintBytes is the benchmark's instruction footprint (Fig 4).
	FootprintBytes int
	// BranchMispredictRate is the conditional predictor's rate over
	// the whole run.
	BranchMispredictRate float64
}

// Run executes one simulation to completion.
func Run(opt Options) (Result, error) {
	return RunContext(context.Background(), opt)
}

// RunStats reports execution-mechanics metadata about a finished run —
// how the simulator got there, not what it measured. It is kept out of
// Result on purpose: Result feeds golden digests and journals, which
// must stay byte-identical whether or not cycle skipping was enabled.
type RunStats struct {
	// Cycles is the core's final cycle count (warm-up + measurement).
	Cycles uint64
	// SkippedCycles is how many of those the event-driven skipper
	// fast-forwarded instead of stepping naively.
	SkippedCycles uint64
}

// SkippedFraction is SkippedCycles / Cycles (0 for an empty run).
func (s RunStats) SkippedFraction() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.SkippedCycles) / float64(s.Cycles)
}

// RunContext executes one simulation, honouring cancellation: the core
// advances in bounded chunks and ctx is checked between them, so an
// interrupted sweep abandons an in-flight job within ~1M committed
// instructions instead of only between jobs. Chunking does not change
// any simulated state — results are byte-identical to Run.
func RunContext(ctx context.Context, opt Options) (Result, error) {
	res, _, err := RunContextStats(ctx, opt)
	return res, err
}

// RunContextStats is RunContext plus the run's execution mechanics
// (cycle-skip engagement), for throughput reporting. It always runs
// cold — building a fresh hierarchy, core, and workload engine; a
// sweep worker that wants to amortize construction uses a Warm slot's
// method of the same name, which is byte-identical by contract.
func RunContextStats(ctx context.Context, opt Options) (Result, RunStats, error) {
	return (*Warm)(nil).RunContextStats(ctx, opt)
}

// runWindow advances the core by n more committed instructions in
// chunks, checking ctx between chunks. The source running dry before
// the window completes is a TruncatedError; a livelocked core or an
// exhausted cycle budget surfaces as the pipeline's StallError.
func runWindow(ctx context.Context, c *pipeline.Core, opt Options, stage string, n uint64) error {
	const chunk = 1 << 20 // cancellation latency bound, not a semantic boundary
	target := c.Committed() + n
	for c.Committed() < target {
		if err := ctx.Err(); err != nil {
			return err
		}
		step := target - c.Committed()
		if step > chunk {
			step = chunk
		}
		before := c.Committed()
		got, err := c.RunCommitted(step)
		if err != nil {
			return err
		}
		if got == before {
			// No forward progress without an error: the oracle stream
			// or replayed trace ended inside the window.
			return &TruncatedError{Stage: stage, Want: n, Got: got - (target - n), Options: opt}
		}
	}
	return nil
}

// RunPolicy is a convenience wrapper parsing the policy notation.
func RunPolicy(bench workload.Profile, policyText string, warmup, measure uint64, seed uint64) (Result, error) {
	spec, err := core.ParsePolicy(policyText)
	if err != nil {
		return Result{}, err
	}
	opt := DefaultOptions(bench, spec)
	opt.WarmupInstrs = warmup
	opt.MeasureInstrs = measure
	opt.Seed = seed
	return Run(opt)
}
