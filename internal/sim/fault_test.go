package sim

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"emissary/internal/core"
	"emissary/internal/pipeline"
	"emissary/internal/trace"
	"emissary/internal/workload"
)

// writeShortTrace captures roughly n instructions of xapian into a
// trace file and returns its path.
func writeShortTrace(t *testing.T, n uint64) string {
	t.Helper()
	p, _ := workload.ProfileByName("xapian")
	prog, err := workload.NewProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	eng := workload.NewEngine(prog)
	path := filepath.Join(t.TempDir(), "short.trc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := trace.NewWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	for eng.Instructions() < n {
		ev, ok := eng.NextBlock()
		if !ok {
			break
		}
		if err := w.WriteEvent(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestFaultTruncatedTrace proves a trace that runs out before the
// requested window completes surfaces as a typed *TruncatedError that
// names the failing job's options, instead of silently under-running.
func TestFaultTruncatedTrace(t *testing.T) {
	opt := Options{
		Policy:        core.MustParsePolicy("TPLRU"),
		WarmupInstrs:  10_000,
		MeasureInstrs: 500_000, // far more than the trace holds
		FDIP:          true,
		NLP:           true,
		TracePath:     writeShortTrace(t, 60_000),
	}
	_, err := Run(opt)
	if err == nil {
		t.Fatal("truncated trace accepted")
	}
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
	var te *TruncatedError
	if !errors.As(err, &te) {
		t.Fatalf("err = %T, want *TruncatedError", err)
	}
	if te.Stage != "measurement" {
		t.Errorf("Stage = %q, want measurement", te.Stage)
	}
	if te.Got >= te.Want {
		t.Errorf("Got = %d, Want = %d: not truncated", te.Got, te.Want)
	}
	if !strings.Contains(te.Error(), opt.Fingerprint()) {
		t.Errorf("message %q does not identify the failing job", te.Error())
	}
}

// TestFaultTruncatedWarmup proves truncation inside the warm-up window
// is attributed to that stage.
func TestFaultTruncatedWarmup(t *testing.T) {
	opt := Options{
		Policy:        core.MustParsePolicy("TPLRU"),
		WarmupInstrs:  500_000,
		MeasureInstrs: 10_000,
		TracePath:     writeShortTrace(t, 60_000),
	}
	_, err := Run(opt)
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
	var te *TruncatedError
	if !errors.As(err, &te) {
		t.Fatalf("err = %T, want *TruncatedError", err)
	}
	if te.Stage != "warm-up" {
		t.Errorf("Stage = %q, want warm-up", te.Stage)
	}
}

// TestFaultMaxCyclesBudget proves Options.MaxCycles flows through to
// the pipeline watchdog and comes back as pipeline.ErrCycleBudget.
func TestFaultMaxCyclesBudget(t *testing.T) {
	p, _ := workload.ProfileByName("xapian")
	opt := DefaultOptions(p, core.MustParsePolicy("TPLRU"))
	opt.WarmupInstrs = 10_000
	opt.MeasureInstrs = 100_000
	opt.MaxCycles = 1_000
	_, err := Run(opt)
	if err == nil {
		t.Fatal("cycle budget never tripped")
	}
	if !errors.Is(err, pipeline.ErrCycleBudget) {
		t.Fatalf("err = %v, want pipeline.ErrCycleBudget", err)
	}
}

// TestFaultFingerprintStability pins the checkpoint key contract: the
// fingerprint is identical for identical options, distinct for any
// field a resumed run must not conflate, and stable across calls.
func TestFaultFingerprintStability(t *testing.T) {
	p, _ := workload.ProfileByName("xapian")
	base := DefaultOptions(p, core.MustParsePolicy("P(8):S&E"))
	base.WarmupInstrs = 10_000
	base.MeasureInstrs = 50_000
	base.Seed = 7

	if base.Fingerprint() != base.Fingerprint() {
		t.Fatal("fingerprint not stable across calls")
	}
	same := base
	if same.Fingerprint() != base.Fingerprint() {
		t.Error("identical options produced different fingerprints")
	}
	mutations := map[string]Options{}
	m := base
	m.Seed = 8
	mutations["seed"] = m
	m = base
	m.MeasureInstrs = 60_000
	mutations["measure"] = m
	m = base
	m.Policy = core.MustParsePolicy("DRRIP")
	mutations["policy"] = m
	m = base
	m.FDIP = !m.FDIP
	mutations["fdip"] = m
	m = base
	m.MaxCycles = 123
	mutations["maxcycles"] = m
	for name, mu := range mutations {
		if mu.Fingerprint() == base.Fingerprint() {
			t.Errorf("changing %s did not change the fingerprint", name)
		}
	}
}
