package sim

import (
	"context"
	"fmt"
	"runtime/debug"

	"emissary/internal/pipeline"
	"emissary/internal/workload"
)

// BatchKey identifies one architectural stream: every Options value
// mapping to the same key observes the identical committed-path block
// sequence over the identical horizon, no matter how its policy,
// geometry, or core knobs differ. The stream is a pure function of the
// workload profile (including its synthesis seed) and the number of
// NextBlock calls — opt.Seed feeds only the core/cache/policy RNG — so
// jobs differing in policy, seed, FDIP/NLP, sizing overrides, or any
// other knob can share one generated stream in lockstep.
type BatchKey struct {
	Bench   workload.Profile
	Warmup  uint64
	Measure uint64
}

// BatchKeyOf maps opt to its stream key; ok is false when the job is
// not batchable (trace replays own their file cursor; a zero
// measurement window is rejected before running anyway).
func BatchKeyOf(opt Options) (BatchKey, bool) {
	if opt.TracePath != "" || opt.MeasureInstrs == 0 {
		return BatchKey{}, false
	}
	return BatchKey{Bench: opt.Benchmark, Warmup: opt.WarmupInstrs, Measure: opt.MeasureInstrs}, true
}

// BatchResult is one member's outcome: on error, Result and Stats are
// zero, exactly as the sequential warm path reports.
type BatchResult struct {
	Result Result
	Stats  RunStats
	Err    error
}

// BatchPanic is a panic recovered from one batch member's simulation.
// Members are isolated: a panicking member fails alone while the rest
// of the batch completes. The runner unwraps this into its *JobError
// form (cause + stack), mirroring what its own recover produces on the
// sequential path.
type BatchPanic struct {
	Cause error
	Stack []byte
}

func (p *BatchPanic) Error() string { return fmt.Sprintf("batch member panic: %v", p.Cause) }

// Unwrap lets errors.Is/As see the cause.
func (p *BatchPanic) Unwrap() error { return p.Cause }

// batchChunk is how many committed instructions one member advances
// per round-robin turn. It trades the lockstep ring's high-water size
// (the fast-to-slow reader spread is about one turn of blocks, so the
// ring grows to a few times this over its initial size and then stays)
// against member-switch cost: every turn reloads the member's core and
// hierarchy state through the host caches, so the chunk must sit far
// above that fixed reload. Like runWindow's chunk, it is a scheduling
// detail, not a semantic boundary: chunked stepping is byte-identical
// at any chunk size.
const batchChunk = 262144

// Batch member phases. phaseInit is the zero value: a member is
// prepared lazily on its first turn, not when the batch is assembled,
// so the slot-reset writes land immediately before the run that reads
// them — preparing all R members upfront would evict each member's
// freshly-reset state from the host caches before it ever stepped.
const (
	phaseInit = iota
	phaseWarmup
	phaseMeasure
	phaseDone
)

type batchMember struct {
	idx         int
	opt         Options
	slot        *Warm
	reader      *workload.LockstepReader
	polName     string
	phase       int
	target      uint64 // committed-instruction target of the current phase
	windowStart uint64 // committed count at the current phase's entry
	start       pipeline.Snapshot
}

// Batch is a reusable lockstep executor: R simulations sharing one
// BatchKey run against a single workload engine whose stream fans out
// through a ring buffer, while each member keeps its own independent
// core, hierarchy, and warm slot. Members are stepped round-robin in
// bounded chunks; each consumes the shared stream at its own pace and
// the ring window advances past the slowest live member.
//
// Correctness contract: every member's Result, RunStats, and error are
// byte-identical to a sequential (*Warm).RunContextStats of the same
// Options (pinned by the batch differential and fuzz suites). A Batch
// is NOT safe for concurrent use; give each worker its own. Reuse
// across Run calls is the point — the ring, member table, and engine
// are all recycled, so steady-state batches allocate nothing.
type Batch struct {
	ls      *workload.Lockstep
	eng     *workload.Engine
	members []batchMember
	results []BatchResult
	live    int
}

// NewBatch returns an empty executor; the first Run populates it.
func NewBatch() *Batch {
	return &Batch{ls: workload.NewLockstep()}
}

// Run executes opts — which must all share one BatchKey — in lockstep.
// slots supplies one warm slot per member; nil entries are populated
// in place (so the caller can rack the constructed slots afterwards),
// and entries must be distinct. A member that fails leaves its
// possibly half-mutated slot behind exactly like a failed sequential
// job; the caller decides whether to discard it. The returned slice is
// valid until the next Run call.
func (b *Batch) Run(ctx context.Context, opts []Options, slots []*Warm) []BatchResult {
	if ctx == nil {
		ctx = context.Background()
	}
	n := len(opts)
	if cap(b.results) < n {
		b.results = make([]BatchResult, n)
	}
	b.results = b.results[:n]
	for i := range b.results {
		b.results[i] = BatchResult{}
	}
	if cap(b.members) < n {
		b.members = make([]batchMember, n)
	}
	b.members = b.members[:n]
	if n == 0 {
		return b.results
	}

	failAll := func(err error) []BatchResult {
		for i := range b.results {
			b.results[i] = BatchResult{Err: err}
		}
		return b.results
	}
	if len(slots) != n {
		return failAll(fmt.Errorf("sim: batch of %d members got %d slots", n, len(slots)))
	}
	key, ok := BatchKeyOf(opts[0])
	if !ok {
		return failAll(fmt.Errorf("sim: job is not batchable (trace replay or zero measurement window)"))
	}
	for _, o := range opts[1:] {
		if k, kok := BatchKeyOf(o); !kok || k != key {
			return failAll(fmt.Errorf("sim: batch members do not share one architectural stream"))
		}
	}

	prog, err := workload.SharedPrograms.Get(key.Bench)
	if err != nil {
		return failAll(err)
	}
	if b.eng == nil {
		b.eng = workload.NewEngine(prog)
	} else {
		b.eng.Reset(prog)
	}
	if b.ls == nil {
		b.ls = workload.NewLockstep()
	}
	b.ls.Start(b.eng, n)

	b.live = 0
	for i := range b.members {
		if slots[i] == nil {
			slots[i] = NewWarm()
		}
		b.members[i] = batchMember{idx: i, opt: opts[i], slot: slots[i], reader: b.ls.Reader(i)}
		b.live++
	}

	for b.live > 0 {
		if err := ctx.Err(); err != nil {
			for i := range b.members {
				if m := &b.members[i]; m.phase != phaseDone {
					b.failMember(m, err)
				}
			}
			break
		}
		for i := range b.members {
			if m := &b.members[i]; m.phase != phaseDone {
				b.stepMember(m, prog)
			}
		}
	}
	return b.results
}

// initMember assembles the member's core around its lockstep reader
// and arms the warm-up window. Recovered panics (degenerate geometry
// deep in construction) fail the member alone.
func (b *Batch) initMember(m *batchMember, prog *workload.Program) {
	defer b.recoverMember(m)
	polName, err := m.slot.prepare(m.opt, m.reader)
	if err != nil {
		b.failMember(m, err)
		return
	}
	m.polName = polName
	m.phase = phaseWarmup
	m.windowStart = m.slot.core.Committed()
	m.target = m.windowStart + m.opt.WarmupInstrs
	if m.slot.core.Committed() >= m.target {
		// Zero warm-up: snapshot immediately, as runWindow's empty loop
		// would.
		b.advancePhase(m, prog)
	}
}

// recoverMember converts a panic escaping one member's turn into that
// member's failure, leaving the rest of the batch running.
func (b *Batch) recoverMember(m *batchMember) {
	if r := recover(); r != nil {
		cause, ok := r.(error)
		if !ok {
			cause = fmt.Errorf("%v", r)
		}
		b.failMember(m, &BatchPanic{Cause: cause, Stack: debug.Stack()})
	}
}

// stepMember advances one member by up to batchChunk committed
// instructions, mirroring runWindow's semantics exactly: a
// RunCommitted error fails the phase, zero forward progress is a
// TruncatedError with the same fields, and reaching a phase target
// hands off to advancePhase. The turn budget deliberately spans phase
// boundaries: a member whose remaining work fits the budget finishes
// in this turn, so short jobs keep the member's core and hierarchy
// state hot in the host caches exactly like a sequential run — the
// member-switch reload cost is paid per batchChunk instructions, never
// per phase.
func (b *Batch) stepMember(m *batchMember, prog *workload.Program) {
	defer b.recoverMember(m)
	if m.phase == phaseInit {
		b.initMember(m, prog)
		if m.phase == phaseDone {
			return
		}
	}
	c := m.slot.core
	turnEnd := c.Committed() + batchChunk
	for m.phase != phaseDone {
		target := m.target
		if target > turnEnd {
			target = turnEnd
		}
		before := c.Committed()
		got, err := c.RunCommitted(target - before)
		if err != nil {
			b.failMember(m, err)
			return
		}
		if got == before {
			b.failMember(m, &TruncatedError{Stage: m.stage(), Want: m.want(), Got: got - m.windowStart, Options: m.opt})
			return
		}
		if c.Committed() >= m.target {
			b.advancePhase(m, prog)
		}
		if c.Committed() >= turnEnd {
			return
		}
	}
}

func (m *batchMember) stage() string {
	if m.phase == phaseWarmup {
		return "warm-up"
	}
	return "measurement"
}

func (m *batchMember) want() uint64 {
	if m.phase == phaseWarmup {
		return m.opt.WarmupInstrs
	}
	return m.opt.MeasureInstrs
}

// advancePhase takes the window-boundary snapshot and either arms the
// measurement window or packages the member's finished Result.
func (b *Batch) advancePhase(m *batchMember, prog *workload.Program) {
	c := m.slot.core
	switch m.phase {
	case phaseWarmup:
		m.start = c.TakeSnapshot()
		m.phase = phaseMeasure
		m.windowStart = c.Committed()
		m.target = m.windowStart + m.opt.MeasureInstrs
	case phaseMeasure:
		end := c.TakeSnapshot()
		hier := m.slot.hier
		census := hier.L2.FillPriorityCensus(m.slot.censusBuf(hier.L2.Ways() + 1))
		b.results[m.idx] = BatchResult{
			Result: Result{
				Result:               pipeline.Diff(m.start, end, census),
				Benchmark:            m.opt.Benchmark.Name,
				Policy:               m.polName,
				FootprintBytes:       prog.FootprintBytes(),
				BranchMispredictRate: c.BranchMispredictRate(),
			},
			Stats: RunStats{Cycles: c.Cycle(), SkippedCycles: c.SkippedCycles()},
		}
		b.finishMember(m)
	}
}

// failMember records err and retires the member; its Result and Stats
// stay zero, matching the sequential error contract.
func (b *Batch) failMember(m *batchMember, err error) {
	if m.phase == phaseDone {
		return
	}
	b.results[m.idx] = BatchResult{Err: err}
	b.finishMember(m)
}

// finishMember retires the member and releases its reader so the ring
// window stops waiting on its cursor.
func (b *Batch) finishMember(m *batchMember) {
	m.phase = phaseDone
	m.reader.Release()
	b.live--
}

// RunGrouped executes opts sequentially in job order, running members
// that share an architectural stream (equal BatchKey) as one lockstep
// batch. Results come back in job order and are byte-identical to
// running each job alone; the first failing job (lowest index) aborts
// with its error, matching RunReplicated's historical contract. Jobs
// that are not batchable — trace replays — run individually.
func RunGrouped(ctx context.Context, opts []Options) ([]Result, error) {
	results := make([]Result, len(opts))
	// Group in first-occurrence order: scheduling metadata only — each
	// member's output is independent of its group.
	type group struct {
		key     BatchKey
		indices []int
	}
	var groups []group
	byKey := make(map[BatchKey]int)
	for i, o := range opts {
		key, ok := BatchKeyOf(o)
		if !ok {
			groups = append(groups, group{indices: []int{i}})
			continue
		}
		gi, seen := byKey[key]
		if !seen {
			byKey[key] = len(groups)
			groups = append(groups, group{key: key, indices: []int{i}})
			continue
		}
		groups[gi].indices = append(groups[gi].indices, i)
	}

	// Every group runs even after a failure: errors are deterministic
	// properties of each job's Options, so the lowest failing index —
	// the error a sequential loop would have stopped at — is identical
	// either way, and completed work stays comparable across runs.
	var (
		b        *Batch
		firstErr error
		errIdx   = len(opts)
	)
	for _, g := range groups {
		if len(g.indices) == 1 {
			i := g.indices[0]
			res, err := RunContext(ctx, opts[i])
			if err != nil && i < errIdx {
				firstErr, errIdx = err, i
			}
			results[i] = res
			continue
		}
		if b == nil {
			b = NewBatch()
		}
		batchOpts := make([]Options, len(g.indices))
		for k, i := range g.indices {
			batchOpts[k] = opts[i]
		}
		outs := b.Run(ctx, batchOpts, make([]*Warm, len(g.indices)))
		for k, i := range g.indices {
			if outs[k].Err != nil && i < errIdx {
				firstErr, errIdx = outs[k].Err, i
			}
			results[i] = outs[k].Result
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}
