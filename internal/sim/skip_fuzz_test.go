package sim_test

import (
	"context"
	"fmt"
	"testing"

	"emissary/internal/core"
	"emissary/internal/rng"
	"emissary/internal/sim"
	"emissary/internal/workload"
)

// TestSkipDifferentialFuzz drives randomly drawn configurations —
// workload, policy, FDIP on/off, front-end sizing, seeds — through
// paired skip-enabled and skip-disabled simulations of ~200k
// instructions each and asserts the full Result digest and final cycle
// count match exactly. The draw is seeded (determinism suite), so a
// failure reproduces by iteration index.
func TestSkipDifferentialFuzz(t *testing.T) {
	iters := 8
	if testing.Short() {
		iters = 3
	}
	benches := workload.ProfileNames()
	policies := []string{"TPLRU", "LRU", "SRRIP", "P(8):S&E&R(1/32)", "DRRIP", "GHRP"}
	mshrs := []int{2, 4, 8, 16}
	ftqs := []int{0, 8, 16} // 0 = Table 4 default

	r := rng.NewXoshiro256(0x5c1f)
	engaged := uint64(0)
	for i := 0; i < iters; i++ {
		bench, _ := workload.ProfileByName(benches[r.Uint64()%uint64(len(benches))])
		spec := core.MustParsePolicy(policies[r.Uint64()%uint64(len(policies))])
		opt := sim.DefaultOptions(bench, spec)
		opt.WarmupInstrs = 50_000
		opt.MeasureInstrs = 150_000
		opt.FDIP = r.Uint64()%2 == 0
		opt.MaxMSHRs = mshrs[r.Uint64()%uint64(len(mshrs))]
		opt.FTQEntries = ftqs[r.Uint64()%uint64(len(ftqs))]
		opt.TrackReuse = r.Uint64()%4 == 0
		opt.PriorityResetInterval = []uint64{0, 100_000}[r.Uint64()%2]
		opt.Seed = r.Uint64()

		name := fmt.Sprintf("iter %d: %s/%s fdip=%v mshrs=%d ftq=%d",
			i, bench.Name, spec.String(), opt.FDIP, opt.MaxMSHRs, opt.FTQEntries)

		resSkip, statsSkip, errSkip := sim.RunContextStats(context.Background(), opt)
		naive := opt
		naive.NoCycleSkip = true
		resNaive, statsNaive, errNaive := sim.RunContextStats(context.Background(), naive)

		if (errSkip == nil) != (errNaive == nil) {
			t.Fatalf("%s: error mismatch: %v (skip) vs %v (naive)", name, errSkip, errNaive)
		}
		if errSkip != nil {
			if errSkip.Error() != errNaive.Error() {
				t.Fatalf("%s: errors diverge: %v vs %v", name, errSkip, errNaive)
			}
			continue
		}
		if a, b := fmt.Sprintf("%+v", resSkip), fmt.Sprintf("%+v", resNaive); a != b {
			t.Fatalf("%s: result digests diverge:\nskip:  %s\nnaive: %s", name, a, b)
		}
		if statsSkip.Cycles != statsNaive.Cycles {
			t.Fatalf("%s: cycles %d (skip) != %d (naive)", name, statsSkip.Cycles, statsNaive.Cycles)
		}
		if statsNaive.SkippedCycles != 0 {
			t.Fatalf("%s: naive run reported %d skipped cycles", name, statsNaive.SkippedCycles)
		}
		engaged += statsSkip.SkippedCycles
	}
	if engaged == 0 {
		t.Error("cycle skipper never engaged across the whole fuzz run; differential coverage is vacuous")
	}
}
