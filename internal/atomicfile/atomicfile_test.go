package atomicfile

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteToCreatesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.csv")
	err := WriteTo(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "a,b\n1,2\n")
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "a,b\n1,2\n" {
		t.Errorf("content = %q", got)
	}
}

func TestWriteToReplacesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.csv")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteTo(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "new")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "new" {
		t.Errorf("content = %q, want new", got)
	}
}

// TestFaultWriteToErrorLeavesOriginal proves a mid-write failure never
// disturbs the previous content and never leaves a temp file behind.
func TestFaultWriteToErrorLeavesOriginal(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.csv")
	if err := os.WriteFile(path, []byte("precious"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("producer failed")
	err := WriteTo(path, func(w io.Writer) error {
		io.WriteString(w, "partial garbage")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the producer's error", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "precious" {
		t.Errorf("original content clobbered: %q", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Errorf("leftover files after failed write: %v", names)
	}
}

func TestFaultWriteToBadDirectory(t *testing.T) {
	err := WriteTo(filepath.Join(t.TempDir(), "missing", "out.csv"), func(io.Writer) error {
		return nil
	})
	if err == nil {
		t.Error("write into a missing directory accepted")
	}
}
