package atomicfile

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"emissary/internal/faultinject"
)

// TestCrashPointCommitTorture is the crash-point sweep for an atomic
// commit: a counting run learns how many filesystem operations one
// WriteToFS lifetime performs, then every operation index is hit with
// both an injected failure and a simulated power cut. At every point
// the destination must read back as exactly the old content or exactly
// the new content — never a hybrid — and a clean retry after the
// "reboot" must land the new content.
func TestCrashPointCommitTorture(t *testing.T) {
	oldContent := "old,content\n1,2\n"
	newContent := strings.Repeat("x,y,z\n", 64)
	write := func(w io.Writer) error {
		_, err := io.WriteString(w, newContent)
		return err
	}

	// Learn the op-index space from one clean, counted run.
	counter, err := faultinject.NewInjector(faultinject.OS, 1)
	if err != nil {
		t.Fatal(err)
	}
	{
		dir := t.TempDir()
		path := filepath.Join(dir, "out.csv")
		if err := os.WriteFile(path, []byte(oldContent), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := WriteToFS(counter, path, write); err != nil {
			t.Fatalf("counting run failed: %v", err)
		}
	}
	total := counter.Ops()
	trace := counter.Trace()
	if total < 6 { // createtemp, write, sync, close, rename, syncdir
		t.Fatalf("commit lifetime only counted %d ops (%v)", total, trace)
	}

	for k := 1; k <= total; k++ {
		for _, mode := range []faultinject.Mode{faultinject.ModeFail, faultinject.ModeCrash} {
			t.Run(fmt.Sprintf("%s@%d_%s", mode, k, trace[k-1]), func(t *testing.T) {
				dir := t.TempDir()
				path := filepath.Join(dir, "out.csv")
				if err := os.WriteFile(path, []byte(oldContent), 0o644); err != nil {
					t.Fatal(err)
				}
				inj, err := faultinject.NewInjector(faultinject.OS, uint64(k), faultinject.Fault{Op: k, Mode: mode})
				if err != nil {
					t.Fatal(err)
				}
				werr := WriteToFS(inj, path, write)
				if werr == nil {
					t.Fatalf("fault at op %d swallowed", k)
				}
				if !errors.Is(werr, faultinject.ErrInjected) && !errors.Is(werr, faultinject.ErrPowerCut) {
					t.Fatalf("err = %v, want an injected fault", werr)
				}

				got, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("destination unreadable after fault: %v", err)
				}
				if string(got) != oldContent && string(got) != newContent {
					t.Fatalf("destination is a hybrid after fault at op %d (%s):\n%q", k, trace[k-1], got)
				}

				// Reboot: a clean retry must complete and be durable.
				if err := WriteTo(path, write); err != nil {
					t.Fatalf("post-fault retry failed: %v", err)
				}
				got, err = os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				if string(got) != newContent {
					t.Fatalf("retry content = %q", got)
				}
			})
		}
	}
}

// TestCrashPointFirstWrite is the same sweep when no previous file
// exists: after any fault the destination is either absent or complete.
func TestCrashPointFirstWrite(t *testing.T) {
	newContent := "fresh\n"
	write := func(w io.Writer) error {
		_, err := io.WriteString(w, newContent)
		return err
	}
	counter, err := faultinject.NewInjector(faultinject.OS, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteToFS(counter, filepath.Join(t.TempDir(), "out.csv"), write); err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= counter.Ops(); k++ {
		inj, err := faultinject.NewInjector(faultinject.OS, uint64(k), faultinject.Fault{Op: k, Mode: faultinject.ModeCrash})
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		path := filepath.Join(dir, "out.csv")
		if werr := WriteToFS(inj, path, write); werr == nil {
			t.Fatalf("fault at op %d swallowed", k)
		}
		data, rerr := os.ReadFile(path)
		if rerr == nil && string(data) != newContent {
			t.Fatalf("op %d: partial first write visible at destination: %q", k, data)
		}
	}
}

// TestWriteToSyncsParentDirectory pins the commit sequence: the parent
// directory fsync lands after the rename, making the rename durable.
func TestWriteToSyncsParentDirectory(t *testing.T) {
	inj, err := faultinject.NewInjector(faultinject.OS, 1)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := WriteToFS(inj, filepath.Join(dir, "out.csv"), func(w io.Writer) error {
		_, err := io.WriteString(w, "x")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	trace := inj.Trace()
	last := trace[len(trace)-1]
	prev := trace[len(trace)-2]
	if !strings.HasPrefix(last, "syncdir ") || !strings.HasPrefix(prev, "rename ") {
		t.Fatalf("commit tail = %v, want ... rename, syncdir", trace)
	}
}
