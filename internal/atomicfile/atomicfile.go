// Package atomicfile writes result artifacts crash-safely: content is
// produced into a temporary file in the destination directory, synced,
// renamed into place only on success, and the parent directory is
// fsynced so the rename itself survives a power cut. A crash or
// interrupt mid-write therefore never leaves a truncated CSV or trace
// where a complete one is expected — readers see either the old file
// or the new one, never a half-written hybrid.
//
// All filesystem access goes through faultinject.FS, so the crash-
// point torture suite can fail, short-write, or power-cut every
// individual step of a commit and assert the old-or-new contract
// holds at each one.
package atomicfile

import (
	"bufio"
	"fmt"
	"io"
	"path/filepath"

	"emissary/internal/faultinject"
)

// WriteTo streams fn's output to path atomically via the real
// filesystem. On any error — from fn or from the filesystem — the
// temporary file is removed and the previous content of path (if any)
// is left untouched.
func WriteTo(path string, fn func(io.Writer) error) error {
	return WriteToFS(faultinject.OS, path, fn)
}

// WriteToFS is WriteTo against an explicit filesystem — the seam the
// fault-injection torture suite drives.
func WriteToFS(fsys faultinject.FS, path string, fn func(io.Writer) error) (err error) {
	dir, base := filepath.Split(path)
	tmp, err := fsys.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return fmt.Errorf("atomicfile: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			fsys.Remove(tmp.Name())
		}
	}()
	w := bufio.NewWriter(tmp)
	if err = fn(w); err != nil {
		return err
	}
	if err = w.Flush(); err != nil {
		return fmt.Errorf("atomicfile: %w", err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("atomicfile: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("atomicfile: %w", err)
	}
	if err = fsys.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("atomicfile: %w", err)
	}
	// The rename is only durable once the directory entry is: without
	// this, a power cut after "success" could resurrect the old file —
	// or, for a first write, no file at all.
	if err = fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("atomicfile: syncing parent of %s: %w", path, err)
	}
	return nil
}
