// Package atomicfile writes result artifacts crash-safely: content is
// produced into a temporary file in the destination directory, synced,
// and renamed into place only on success. A crash or interrupt mid-
// write therefore never leaves a truncated CSV or trace where a
// complete one is expected — readers see either the old file or the
// new one, never a half-written hybrid.
package atomicfile

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteTo streams fn's output to path atomically. On any error — from
// fn or from the filesystem — the temporary file is removed and the
// previous content of path (if any) is left untouched.
func WriteTo(path string, fn func(io.Writer) error) (err error) {
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return fmt.Errorf("atomicfile: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	w := bufio.NewWriter(tmp)
	if err = fn(w); err != nil {
		return err
	}
	if err = w.Flush(); err != nil {
		return fmt.Errorf("atomicfile: %w", err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("atomicfile: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("atomicfile: %w", err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("atomicfile: %w", err)
	}
	return nil
}
