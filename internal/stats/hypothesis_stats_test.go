package stats

import (
	"math"
	"testing"
)

// The helpers below feed the hypothesis harness's effect-size and
// direction assertions, so their edge-case behavior (NaN, empty,
// single-sample) is part of the verdict contract.

var nan = math.NaN()

func TestMedian(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{3.5}, 3.5},
		{"odd", []float64{3, 1, 2}, 2},
		{"even", []float64{4, 1, 3, 2}, 2.5},
		{"negative", []float64{-5, -1, -3}, -3},
		{"nan skipped", []float64{nan, 1, 3}, 2},
		{"inf skipped", []float64{math.Inf(1), 1, 3, math.Inf(-1)}, 2},
		{"all nan", []float64{nan, nan}, 0},
		{"duplicates", []float64{2, 2, 2, 7}, 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Median(c.in); !almost(got, c.want) {
				t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
			}
		})
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("Median mutated its input: %v", in)
	}
}

func TestQuantile(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		q    float64
		want float64
	}{
		{"empty", nil, 0.5, 0},
		{"single", []float64{7}, 0.25, 7},
		{"min", []float64{1, 2, 3}, 0, 1},
		{"max", []float64{1, 2, 3}, 1, 3},
		{"mid", []float64{1, 2, 3}, 0.5, 2},
		{"interpolated", []float64{0, 10}, 0.25, 2.5},
		{"clamp below", []float64{1, 2}, -1, 1},
		{"clamp above", []float64{1, 2}, 2, 2},
		{"nan skipped", []float64{nan, 0, 10}, 0.5, 5},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Quantile(c.in, c.q); !almost(got, c.want) {
				t.Errorf("Quantile(%v, %v) = %v, want %v", c.in, c.q, got, c.want)
			}
		})
	}
}

func TestPairedPercentChange(t *testing.T) {
	t.Run("pairs elementwise", func(t *testing.T) {
		got := PairedPercentChange([]float64{100, 200, 50}, []float64{110, 100, 50})
		want := []float64{0.1, -0.5, 0}
		if len(got) != len(want) {
			t.Fatalf("len = %d, want %d", len(got), len(want))
		}
		for i := range want {
			if !almost(got[i], want[i]) {
				t.Errorf("delta[%d] = %v, want %v", i, got[i], want[i])
			}
		}
	})
	t.Run("zero base yields zero", func(t *testing.T) {
		got := PairedPercentChange([]float64{0}, []float64{5})
		if got[0] != 0 {
			t.Errorf("delta over zero base = %v, want 0", got[0])
		}
	})
	t.Run("empty", func(t *testing.T) {
		if got := PairedPercentChange(nil, nil); got == nil || len(got) != 0 {
			t.Errorf("empty pair = %v, want empty non-nil", got)
		}
	})
	t.Run("mismatched lengths return nil", func(t *testing.T) {
		if got := PairedPercentChange([]float64{1, 2}, []float64{1}); got != nil {
			t.Errorf("mismatched = %v, want nil", got)
		}
	})
	t.Run("nan propagates", func(t *testing.T) {
		got := PairedPercentChange([]float64{1}, []float64{nan})
		if !math.IsNaN(got[0]) {
			t.Errorf("NaN treatment = %v, want NaN", got[0])
		}
	})
}

func TestSigns(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		pos  int
		neg  int
		zero int
	}{
		{"empty", nil, 0, 0, 0},
		{"mixed", []float64{1, -2, 0, 3}, 2, 1, 1},
		{"nan and inf skipped", []float64{nan, math.Inf(1), -1}, 0, 1, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			pos, neg, zero := Signs(c.in)
			if pos != c.pos || neg != c.neg || zero != c.zero {
				t.Errorf("Signs(%v) = (%d, %d, %d), want (%d, %d, %d)",
					c.in, pos, neg, zero, c.pos, c.neg, c.zero)
			}
		})
	}
}

func TestSignConsistency(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"all zero", []float64{0, 0}, 0},
		{"all nan", []float64{nan}, 0},
		{"unanimous positive", []float64{1, 2, 3}, 1},
		{"unanimous negative", []float64{-1, -2}, 1},
		{"split", []float64{1, -1}, 0.5},
		{"majority", []float64{1, 2, -1, 3}, 0.75},
		{"zeros ignored", []float64{1, 0, 0, -1}, 0.5},
		{"single", []float64{-0.001}, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := SignConsistency(c.in); !almost(got, c.want) {
				t.Errorf("SignConsistency(%v) = %v, want %v", c.in, got, c.want)
			}
		})
	}
}

func TestBootstrapCI(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		lo, hi := BootstrapCI(nil, 0.95, 100, 1)
		if lo != 0 || hi != 0 {
			t.Errorf("empty CI = [%v, %v], want [0, 0]", lo, hi)
		}
	})
	t.Run("all nan", func(t *testing.T) {
		lo, hi := BootstrapCI([]float64{nan, nan}, 0.95, 100, 1)
		if lo != 0 || hi != 0 {
			t.Errorf("all-NaN CI = [%v, %v], want [0, 0]", lo, hi)
		}
	})
	t.Run("single sample degenerates", func(t *testing.T) {
		lo, hi := BootstrapCI([]float64{4.2}, 0.95, 100, 1)
		if !almost(lo, 4.2) || !almost(hi, 4.2) {
			t.Errorf("single-sample CI = [%v, %v], want [4.2, 4.2]", lo, hi)
		}
	})
	t.Run("zero resamples degenerate to first sample", func(t *testing.T) {
		lo, hi := BootstrapCI([]float64{1, 2}, 0.95, 0, 1)
		if !almost(lo, 1) || !almost(hi, 1) {
			t.Errorf("no-resample CI = [%v, %v], want [1, 1]", lo, hi)
		}
	})
	t.Run("brackets the mean", func(t *testing.T) {
		xs := []float64{1, 2, 3, 4, 5}
		lo, hi := BootstrapCI(xs, 0.95, 2000, 7)
		if !(lo <= 3 && 3 <= hi) {
			t.Errorf("CI [%v, %v] does not bracket the mean 3", lo, hi)
		}
		if !(1 <= lo && hi <= 5) {
			t.Errorf("CI [%v, %v] escapes the sample range [1, 5]", lo, hi)
		}
		if lo >= hi {
			t.Errorf("CI [%v, %v] is not an interval", lo, hi)
		}
	})
	t.Run("deterministic for a seed", func(t *testing.T) {
		xs := []float64{0.3, -0.1, 0.7, 0.2}
		lo1, hi1 := BootstrapCI(xs, 0.95, 500, 42)
		lo2, hi2 := BootstrapCI(xs, 0.95, 500, 42)
		if lo1 != lo2 || hi1 != hi2 {
			t.Errorf("same seed gave [%v, %v] then [%v, %v]", lo1, hi1, lo2, hi2)
		}
	})
	t.Run("bad confidence falls back to 95%", func(t *testing.T) {
		xs := []float64{1, 2, 3}
		lo, hi := BootstrapCI(xs, 0, 500, 9)
		wlo, whi := BootstrapCI(xs, 0.95, 500, 9)
		if lo != wlo || hi != whi {
			t.Errorf("confidence 0 CI = [%v, %v], want the 0.95 interval [%v, %v]", lo, hi, wlo, whi)
		}
	})
	t.Run("nan skipped", func(t *testing.T) {
		lo, hi := BootstrapCI([]float64{nan, 2, 2, 2}, 0.95, 200, 3)
		if !almost(lo, 2) || !almost(hi, 2) {
			t.Errorf("NaN-laced constant CI = [%v, %v], want [2, 2]", lo, hi)
		}
	})
}
