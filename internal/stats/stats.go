// Package stats provides the counters and summary statistics that every
// experiment in the repository is computed from: per-cache hit/miss
// counters, MPKI, commit-path stall taxonomy, decode/issue rates,
// geometric means and reuse-distance histograms.
package stats

import (
	"fmt"
	"math"
	"sort"

	"emissary/internal/rng"
)

// MPKI returns misses per thousand (kilo) instructions.
func MPKI(misses, instructions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	return float64(misses) * 1000.0 / float64(instructions)
}

// Speedup returns the relative speedup of 'test' over 'base' expressed
// as a fraction (0.0324 == 3.24%). Both arguments are cycle counts for
// the same instruction count, so speedup = base/test - 1.
func Speedup(baseCycles, testCycles uint64) float64 {
	if testCycles == 0 {
		return 0
	}
	return float64(baseCycles)/float64(testCycles) - 1.0
}

// Geomean returns the geometric mean of (1+x) over the samples, minus 1.
// This is the standard way speedup fractions are aggregated in the
// paper ("geomean speedup"). An empty slice yields 0.
func Geomean(fractions []float64) float64 {
	if len(fractions) == 0 {
		return 0
	}
	sum := 0.0
	for _, f := range fractions {
		v := 1.0 + f
		if v <= 0 {
			// A slowdown of -100% or worse would make the geomean
			// undefined; clamp to a tiny positive ratio.
			v = 1e-9
		}
		sum += math.Log(v)
	}
	return math.Exp(sum/float64(len(fractions))) - 1.0
}

// GeomeanRatio returns the plain geometric mean of positive ratios.
func GeomeanRatio(ratios []float64) float64 {
	if len(ratios) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range ratios {
		if r <= 0 {
			r = 1e-9
		}
		sum += math.Log(r)
	}
	return math.Exp(sum / float64(len(ratios)))
}

// Mean returns the arithmetic mean; empty yields 0.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// PercentChange returns (test-base)/base; 0 if base is 0.
func PercentChange(base, test float64) float64 {
	if base == 0 {
		return 0
	}
	return (test - base) / base
}

// Median returns the median of the finite samples in xs (NaN and ±Inf
// are ignored, matching the other aggregates' empty-input convention);
// an input with no finite sample yields 0. xs is not modified.
func Median(xs []float64) float64 {
	fin := finite(xs)
	if len(fin) == 0 {
		return 0
	}
	sort.Float64s(fin)
	n := len(fin)
	if n%2 == 1 {
		return fin[n/2]
	}
	return (fin[n/2-1] + fin[n/2]) / 2
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the finite samples in
// xs using linear interpolation between order statistics; no finite
// sample yields 0, and q is clamped to [0,1]. xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	fin := finite(xs)
	if len(fin) == 0 {
		return 0
	}
	sort.Float64s(fin)
	if q <= 0 || len(fin) == 1 {
		return fin[0]
	}
	if q >= 1 {
		return fin[len(fin)-1]
	}
	pos := q * float64(len(fin)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(fin) {
		return fin[len(fin)-1]
	}
	return fin[lo]*(1-frac) + fin[lo+1]*frac
}

// PairedPercentChange returns the elementwise PercentChange of each
// (base[i], test[i]) pair — the per-seed delta distribution hypothesis
// assertions are computed over. The slices must be the same length;
// mismatched lengths return nil (a paired design with unpaired samples
// is a caller bug, and nil keeps it visible instead of silently
// truncating).
func PairedPercentChange(base, test []float64) []float64 {
	if len(base) != len(test) {
		return nil
	}
	out := make([]float64, len(base))
	for i := range base {
		out[i] = PercentChange(base[i], test[i])
	}
	return out
}

// Signs counts the strictly positive, strictly negative, and zero
// samples among the finite entries of xs (NaN and ±Inf are skipped).
func Signs(xs []float64) (pos, neg, zero int) {
	for _, x := range xs {
		switch {
		case math.IsNaN(x) || math.IsInf(x, 0):
		case x > 0:
			pos++
		case x < 0:
			neg++
		default:
			zero++
		}
	}
	return pos, neg, zero
}

// SignConsistency returns the fraction of finite non-zero samples that
// share the majority sign: 1.0 means every seed moved the same
// direction, 0.5 means a coin flip. An input with no finite non-zero
// sample yields 0 — "no evidence", not "perfectly consistent".
func SignConsistency(xs []float64) float64 {
	pos, neg, _ := Signs(xs)
	n := pos + neg
	if n == 0 {
		return 0
	}
	if neg > pos {
		pos = neg
	}
	return float64(pos) / float64(n)
}

// BootstrapCI returns a percentile-bootstrap confidence interval for
// the mean of the finite samples in xs: resamples bootstrap means are
// drawn with replacement from a deterministic seeded stream, and the
// (α/2, 1-α/2) quantiles of that distribution are returned for
// confidence 1-α. The same (xs, confidence, resamples, seed) always
// yields the same interval, which is what lets hypothesis reports be
// byte-identical across runs and worker counts. No finite sample
// yields (0, 0); a single sample yields (x, x).
func BootstrapCI(xs []float64, confidence float64, resamples int, seed uint64) (lo, hi float64) {
	fin := finite(xs)
	if len(fin) == 0 {
		return 0, 0
	}
	if len(fin) == 1 || resamples <= 0 {
		return fin[0], fin[0]
	}
	if confidence <= 0 || confidence >= 1 {
		confidence = 0.95
	}
	r := rng.NewXoshiro256(rng.Mix2(seed, 0xb007))
	means := make([]float64, resamples)
	for i := range means {
		sum := 0.0
		for j := 0; j < len(fin); j++ {
			sum += fin[r.Intn(len(fin))]
		}
		means[i] = sum / float64(len(fin))
	}
	alpha := 1 - confidence
	return Quantile(means, alpha/2), Quantile(means, 1-alpha/2)
}

// finite copies the finite entries of xs (drops NaN and ±Inf).
func finite(xs []float64) []float64 {
	out := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) && !math.IsInf(x, 0) {
			out = append(out, x)
		}
	}
	return out
}

// CacheCounters tracks accesses for one cache and one request class.
type CacheCounters struct {
	Hits   uint64
	Misses uint64
}

// Accesses returns hits+misses.
func (c CacheCounters) Accesses() uint64 { return c.Hits + c.Misses }

// MissRate returns misses/accesses, or 0 for an idle cache.
func (c CacheCounters) MissRate() float64 {
	a := c.Accesses()
	if a == 0 {
		return 0
	}
	return float64(c.Misses) / float64(a)
}

// Add accumulates other into c.
func (c *CacheCounters) Add(other CacheCounters) {
	c.Hits += other.Hits
	c.Misses += other.Misses
}

// StallKind labels the cause of a commit-path stall cycle. A cycle is a
// front-end stall when the ROB has room but no instruction arrives from
// decode; it is a back-end stall when decode has instructions but the
// back-end cannot accept them or commit cannot retire.
type StallKind int

// Stall cause taxonomy used in Figure 6.
const (
	StallNone         StallKind = iota
	StallFrontEnd               // decode starved or fetch-limited
	StallBackEnd                // ROB/IQ/LSQ full or long-latency op at head
	StallFlushRecover           // pipeline refilling after a squash
	numStallKinds
)

// String implements fmt.Stringer.
func (k StallKind) String() string {
	switch k {
	case StallNone:
		return "none"
	case StallFrontEnd:
		return "frontend"
	case StallBackEnd:
		return "backend"
	case StallFlushRecover:
		return "flush"
	default:
		return fmt.Sprintf("StallKind(%d)", int(k))
	}
}

// StallBreakdown accumulates stall cycles by kind.
type StallBreakdown struct {
	Cycles [numStallKinds]uint64
}

// Record adds n stall cycles of the given kind.
func (s *StallBreakdown) Record(k StallKind, n uint64) {
	if k < 0 || k >= numStallKinds {
		return
	}
	s.Cycles[k] += n
}

// FrontEnd returns front-end stall cycles (starvation + flush recovery,
// which in the paper's accounting is a front-end-visible stall).
func (s *StallBreakdown) FrontEnd() uint64 {
	return s.Cycles[StallFrontEnd] + s.Cycles[StallFlushRecover]
}

// BackEnd returns back-end stall cycles.
func (s *StallBreakdown) BackEnd() uint64 { return s.Cycles[StallBackEnd] }

// Total returns all stall cycles.
func (s *StallBreakdown) Total() uint64 {
	return s.FrontEnd() + s.BackEnd()
}

// Histogram is a fixed-bucket histogram over int64 samples, with
// explicit bucket upper bounds (exclusive) and an implicit overflow
// bucket at the end.
type Histogram struct {
	bounds []int64  // sorted, exclusive upper bounds
	counts []uint64 // len(bounds)+1
	total  uint64
}

// NewHistogram builds a histogram with the given exclusive upper
// bounds, which must be strictly increasing.
func NewHistogram(bounds ...int64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("stats: histogram bounds must be strictly increasing")
		}
	}
	b := make([]int64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]uint64, len(bounds)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) { h.ObserveN(v, 1) }

// ObserveN records a sample with weight n.
func (h *Histogram) ObserveN(v int64, n uint64) {
	idx := sort.Search(len(h.bounds), func(i int) bool { return v < h.bounds[i] })
	h.counts[idx] += n
	h.total += n
}

// Count returns the number of samples in bucket i (the bucket after the
// last bound is the overflow bucket).
func (h *Histogram) Count(i int) uint64 { return h.counts[i] }

// Buckets returns the number of buckets (len(bounds)+1).
func (h *Histogram) Buckets() int { return len(h.counts) }

// Total returns the total sample weight.
func (h *Histogram) Total() uint64 { return h.total }

// Fraction returns the fraction of samples in bucket i; 0 if empty.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[i]) / float64(h.total)
}

// Reset zeroes all counts.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total = 0
}

// Counter is a named monotonic counter set, used for ad-hoc event
// accounting where a struct field would be overkill.
type Counter struct {
	names  []string
	index  map[string]int
	counts []uint64
}

// NewCounter returns an empty counter set.
func NewCounter() *Counter {
	return &Counter{index: make(map[string]int)}
}

// Inc adds n to the named counter, creating it if needed.
func (c *Counter) Inc(name string, n uint64) {
	i, ok := c.index[name]
	if !ok {
		i = len(c.names)
		c.index[name] = i
		c.names = append(c.names, name)
		c.counts = append(c.counts, 0)
	}
	c.counts[i] += n
}

// Get returns the named counter's value (0 if never incremented).
func (c *Counter) Get(name string) uint64 {
	if i, ok := c.index[name]; ok {
		return c.counts[i]
	}
	return 0
}

// Names returns counter names in insertion order.
func (c *Counter) Names() []string {
	out := make([]string, len(c.names))
	copy(out, c.names)
	return out
}
