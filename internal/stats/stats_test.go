package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMPKI(t *testing.T) {
	if got := MPKI(500, 100000); !almost(got, 5.0) {
		t.Errorf("MPKI = %v, want 5", got)
	}
	if got := MPKI(10, 0); got != 0 {
		t.Errorf("MPKI with 0 instructions = %v, want 0", got)
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(110, 100); !almost(got, 0.1) {
		t.Errorf("Speedup(110,100) = %v, want 0.1", got)
	}
	if got := Speedup(100, 110); math.Abs(got-(-0.0909090909)) > 1e-6 {
		t.Errorf("Speedup(100,110) = %v, want ~-0.0909", got)
	}
	if got := Speedup(100, 0); got != 0 {
		t.Errorf("Speedup with 0 test cycles = %v, want 0", got)
	}
}

func TestGeomeanBasics(t *testing.T) {
	if got := Geomean(nil); got != 0 {
		t.Errorf("Geomean(nil) = %v, want 0", got)
	}
	if got := Geomean([]float64{0.1}); !almost(got, 0.1) {
		t.Errorf("Geomean single = %v, want 0.1", got)
	}
	// geomean of +10% and -10%: sqrt(1.1*0.9)-1
	want := math.Sqrt(1.1*0.9) - 1
	if got := Geomean([]float64{0.1, -0.1}); !almost(got, want) {
		t.Errorf("Geomean = %v, want %v", got, want)
	}
}

func TestGeomeanClampsCatastrophe(t *testing.T) {
	got := Geomean([]float64{-1.0, 0.5})
	if math.IsNaN(got) || math.IsInf(got, 0) {
		t.Errorf("Geomean with -100%% sample = %v, want finite", got)
	}
}

func TestGeomeanRatio(t *testing.T) {
	if got := GeomeanRatio([]float64{2, 8}); !almost(got, 4) {
		t.Errorf("GeomeanRatio(2,8) = %v, want 4", got)
	}
	if got := GeomeanRatio(nil); got != 0 {
		t.Errorf("GeomeanRatio(nil) = %v, want 0", got)
	}
}

func TestGeomeanBetweenMinMax(t *testing.T) {
	if err := quick.Check(func(a, b, c uint8) bool {
		xs := []float64{float64(a) / 255, float64(b) / 255, float64(c) / 255}
		g := Geomean(xs)
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		return g >= lo-1e-9 && g <= hi+1e-9
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanAndPercentChange(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); !almost(got, 2) {
		t.Errorf("Mean = %v, want 2", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
	if got := PercentChange(10, 12); !almost(got, 0.2) {
		t.Errorf("PercentChange = %v, want 0.2", got)
	}
	if got := PercentChange(0, 5); got != 0 {
		t.Errorf("PercentChange base 0 = %v, want 0", got)
	}
}

func TestCacheCounters(t *testing.T) {
	c := CacheCounters{Hits: 90, Misses: 10}
	if c.Accesses() != 100 {
		t.Errorf("Accesses = %d", c.Accesses())
	}
	if !almost(c.MissRate(), 0.1) {
		t.Errorf("MissRate = %v", c.MissRate())
	}
	var zero CacheCounters
	if zero.MissRate() != 0 {
		t.Errorf("idle MissRate = %v", zero.MissRate())
	}
	c.Add(CacheCounters{Hits: 10, Misses: 5})
	if c.Hits != 100 || c.Misses != 15 {
		t.Errorf("Add gave %+v", c)
	}
}

func TestStallBreakdown(t *testing.T) {
	var s StallBreakdown
	s.Record(StallFrontEnd, 10)
	s.Record(StallBackEnd, 20)
	s.Record(StallFlushRecover, 5)
	s.Record(StallKind(99), 1000) // ignored
	s.Record(StallKind(-1), 1000) // ignored
	if s.FrontEnd() != 15 {
		t.Errorf("FrontEnd = %d, want 15", s.FrontEnd())
	}
	if s.BackEnd() != 20 {
		t.Errorf("BackEnd = %d, want 20", s.BackEnd())
	}
	if s.Total() != 35 {
		t.Errorf("Total = %d, want 35", s.Total())
	}
}

func TestStallKindString(t *testing.T) {
	cases := map[StallKind]string{
		StallNone:         "none",
		StallFrontEnd:     "frontend",
		StallBackEnd:      "backend",
		StallFlushRecover: "flush",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if StallKind(42).String() != "StallKind(42)" {
		t.Errorf("unknown kind String = %q", StallKind(42).String())
	}
}

func TestHistogramBuckets(t *testing.T) {
	// Reuse-distance buckets from the paper: [0,100), [100,5000), [5000,inf)
	h := NewHistogram(100, 5000)
	h.Observe(0)
	h.Observe(99)
	h.Observe(100)
	h.Observe(4999)
	h.Observe(5000)
	h.ObserveN(1000000, 2)
	if h.Buckets() != 3 {
		t.Fatalf("Buckets = %d, want 3", h.Buckets())
	}
	if h.Count(0) != 2 || h.Count(1) != 2 || h.Count(2) != 3 {
		t.Errorf("counts = %d,%d,%d want 2,2,3", h.Count(0), h.Count(1), h.Count(2))
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d, want 7", h.Total())
	}
	if !almost(h.Fraction(2), 3.0/7.0) {
		t.Errorf("Fraction(2) = %v", h.Fraction(2))
	}
	h.Reset()
	if h.Total() != 0 || h.Count(0) != 0 {
		t.Errorf("Reset did not clear histogram")
	}
}

func TestHistogramFractionEmpty(t *testing.T) {
	h := NewHistogram(10)
	if h.Fraction(0) != 0 {
		t.Errorf("Fraction on empty histogram = %v", h.Fraction(0))
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-increasing bounds did not panic")
		}
	}()
	NewHistogram(10, 10)
}

func TestHistogramPropertyTotalEqualsSum(t *testing.T) {
	if err := quick.Check(func(vals []int16) bool {
		h := NewHistogram(-100, 0, 100)
		for _, v := range vals {
			h.Observe(int64(v))
		}
		var sum uint64
		for i := 0; i < h.Buckets(); i++ {
			sum += h.Count(i)
		}
		return sum == h.Total() && sum == uint64(len(vals))
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Inc("a", 1)
	c.Inc("b", 2)
	c.Inc("a", 3)
	if c.Get("a") != 4 {
		t.Errorf("Get(a) = %d, want 4", c.Get("a"))
	}
	if c.Get("b") != 2 {
		t.Errorf("Get(b) = %d, want 2", c.Get("b"))
	}
	if c.Get("missing") != 0 {
		t.Errorf("Get(missing) = %d, want 0", c.Get("missing"))
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v", names)
	}
}
