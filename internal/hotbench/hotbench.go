// Package hotbench measures the cache hot path — ns and allocations
// per Access/Fill for every policy family, plus end-to-end simulation
// throughput — and renders the numbers as the BENCH_hotpath.json
// trajectory artifact CI publishes on every run.
//
// It is the single source of truth for the hot-path benchmark
// configuration: the go-test microbenchmarks in internal/cache reuse
// the geometry, policy list and address stream defined here, so the
// CI artifact and `go test -bench` always measure the same workload.
//
// hotbench deliberately lives outside the deterministic simulator
// packages: wall-clock reads are its whole job, and the determinism
// linter bans them inside internal/{cache,policy,sim,...}.
package hotbench

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"time"

	"emissary/internal/cache"
	"emissary/internal/core"
	"emissary/internal/rng"
	"emissary/internal/runner"
	"emissary/internal/sim"
	"emissary/internal/workload"
)

// Sets and Ways are the paper's L2 geometry (1 MB, 64 B lines,
// 16-way), the cache the hot path spends its time in.
const (
	Sets = 1024
	Ways = 16
)

// Policies spans every treatment family so a regression in one
// policy's callbacks is visible in its own benchmark row.
var Policies = []string{
	"TPLRU",
	"LRU",
	"BIP",
	"M:S&E&R(1/32)",
	"P(8):S&E&R(1/32)",
	"SRRIP",
	"DRRIP",
	"PDP",
	"DCLIP",
	"GHRP",
}

// addrSeed fixes the benchmark address stream: every run, on every
// machine, measures the same hit/miss sequence.
const addrSeed = 0xbe7c4

// Addrs generates a deterministic line-address stream covering 4x the
// cache capacity, so steady state sees both hits and misses. n must be
// a power of two (callers index with i & (n-1)).
func Addrs(n int) []uint64 {
	r := rng.NewXoshiro256(addrSeed)
	addrs := make([]uint64, n)
	span := uint64(Sets * Ways * 4)
	for i := range addrs {
		addrs[i] = r.Uint64() % span
	}
	return addrs
}

// New builds the benchmark cache for one policy.
func New(policyText string) (*cache.Cache, error) {
	spec, err := core.ParsePolicy(policyText)
	if err != nil {
		return nil, err
	}
	return cache.NewCache("bench", Sets, Ways, spec.Build(Sets, Ways, 1)), nil
}

// Warm fills the cache to steady state so timed loops measure the
// full-set path (victim selection), not the cold invalid-way path.
func Warm(c *cache.Cache, addrs []uint64) {
	for _, a := range addrs {
		c.Fill(a, cache.FillSpec{Instr: a%2 == 0, Priority: a%8 == 0})
	}
}

// OpResult is one micro-benchmark row.
type OpResult struct {
	Policy      string  `json:"policy"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// timeLoop measures fn over iters iterations: wall time from the
// monotonic clock, allocation counts from the runtime's malloc
// counters (exact, no sampling — AllocsPerOp is trustworthy at 0).
// The malloc counters are process-wide, so — like testing.AllocsPerRun
// — the loop runs at GOMAXPROCS(1) after a GC quiesce; otherwise a
// background goroutine allocating mid-loop charges a phantom
// fractional alloc to the hot path.
func timeLoop(iters int, fn func(i int)) (nsPerOp, allocsPerOp, bytesPerOp float64) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn(i)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	n := float64(iters)
	return float64(elapsed.Nanoseconds()) / n,
		float64(after.Mallocs-before.Mallocs) / n,
		float64(after.TotalAlloc-before.TotalAlloc) / n
}

// MeasureAccess times the Access hot path for one policy.
func MeasureAccess(policyText string, iters int) (OpResult, error) {
	c, err := New(policyText)
	if err != nil {
		return OpResult{}, err
	}
	addrs := Addrs(1 << 16)
	Warm(c, addrs)
	mask := len(addrs) - 1
	ns, allocs, bytes := timeLoop(iters, func(i int) {
		a := addrs[i&mask]
		c.Access(a, a%2 == 0)
	})
	return OpResult{Policy: policyText, NsPerOp: ns, AllocsPerOp: allocs, BytesPerOp: bytes, Iterations: iters}, nil
}

// MeasureFill times the Fill (miss + victim + install) path for one
// policy.
func MeasureFill(policyText string, iters int) (OpResult, error) {
	c, err := New(policyText)
	if err != nil {
		return OpResult{}, err
	}
	addrs := Addrs(1 << 16)
	Warm(c, addrs)
	mask := len(addrs) - 1
	ns, allocs, bytes := timeLoop(iters, func(i int) {
		a := addrs[i&mask]
		c.Fill(a, cache.FillSpec{Instr: a%2 == 0, Priority: a%8 == 0})
	})
	return OpResult{Policy: policyText, NsPerOp: ns, AllocsPerOp: allocs, BytesPerOp: bytes, Iterations: iters}, nil
}

// EndToEndResult is one full-simulator throughput row: how fast the
// whole pipeline (front end, caches, back end) simulates instructions.
type EndToEndResult struct {
	Benchmark string `json:"benchmark"`
	Policy    string `json:"policy"`
	FDIP      bool   `json:"fdip"`
	// NLP and MaxMSHRs identify the stall-heavy rows: next-line
	// prefetching off and a tight MSHR file serialize misses, which is
	// where cycle skipping pays off most (MaxMSHRs 0 = model default).
	NLP          bool    `json:"nlp"`
	MaxMSHRs     int     `json:"max_mshrs"`
	WarmupInstrs uint64  `json:"warmup_instructions"`
	Instructions uint64  `json:"measured_instructions"`
	WallMS       float64 `json:"wall_ms"`
	// SimMIPS is simulated (warmup+measured) instructions per wall
	// second, in millions — the simulator's own throughput metric.
	SimMIPS float64 `json:"sim_mips"`
	IPC     float64 `json:"ipc"`
	// SkippedCycleFraction is the share of simulated cycles the
	// event-driven skipper fast-forwarded instead of stepping (0 when
	// skipping is disabled or never engaged).
	SkippedCycleFraction float64 `json:"skipped_cycle_fraction"`
}

// EndToEndConfig names one full-simulator measurement point. The zero
// values of NLP and MaxMSHRs are NOT the model defaults — construct
// configs with DefaultEndToEndConfig or EndToEndConfigs.
type EndToEndConfig struct {
	Benchmark string
	Policy    string
	FDIP      bool
	NLP       bool
	MaxMSHRs  int // 0 = model default
}

// DefaultEndToEndConfig is a measurement point with the simulator's
// default frontend (NLP on, default MSHR file).
func DefaultEndToEndConfig(bench, policy string, fdip bool) EndToEndConfig {
	return EndToEndConfig{Benchmark: bench, Policy: policy, FDIP: fdip, NLP: true}
}

// MeasureEndToEnd runs one complete simulation under the wall clock.
// noSkip disables the core's event-driven cycle skipping, measuring
// the naive-walk baseline.
func MeasureEndToEnd(cfg EndToEndConfig, warmup, measure uint64, noSkip bool) (EndToEndResult, error) {
	bench, ok := workload.ProfileByName(cfg.Benchmark)
	if !ok {
		return EndToEndResult{}, fmt.Errorf("hotbench: unknown benchmark %q", cfg.Benchmark)
	}
	spec, err := core.ParsePolicy(cfg.Policy)
	if err != nil {
		return EndToEndResult{}, err
	}
	opt := sim.DefaultOptions(bench, spec)
	opt.WarmupInstrs = warmup
	opt.MeasureInstrs = measure
	opt.FDIP = cfg.FDIP
	opt.NLP = cfg.NLP
	opt.MaxMSHRs = cfg.MaxMSHRs
	opt.NoCycleSkip = noSkip
	opt.Seed = 1
	start := time.Now()
	res, stats, err := sim.RunContextStats(context.Background(), opt)
	if err != nil {
		return EndToEndResult{}, err
	}
	elapsed := time.Since(start)
	return EndToEndResult{
		Benchmark:            cfg.Benchmark,
		Policy:               cfg.Policy,
		FDIP:                 cfg.FDIP,
		NLP:                  cfg.NLP,
		MaxMSHRs:             cfg.MaxMSHRs,
		WarmupInstrs:         warmup,
		Instructions:         measure,
		WallMS:               float64(elapsed.Nanoseconds()) / 1e6,
		SimMIPS:              float64(warmup+measure) / elapsed.Seconds() / 1e6,
		IPC:                  res.IPC,
		SkippedCycleFraction: stats.SkippedFraction(),
	}, nil
}

// SweepResult is one sweep-throughput row: a deterministic batch of
// small mixed-policy simulations pushed through runner.RunSimsStats in
// one of three modes. "cold" constructs every job's simulator from
// scratch; "warm" resets a per-worker pooled simulator in place but
// runs jobs one at a time; "batched" additionally executes same-stream
// jobs in lockstep batches that synthesize each workload's block
// stream once per group. The warm rows are what the warm pool buys and
// the batched rows what lockstep sharing buys on top: higher
// jobs_per_sec at identical output bytes, and zero steady-state heap
// allocations per job.
type SweepResult struct {
	// Mode is "cold", "warm", or "batched".
	Mode    string `json:"mode"`
	Workers int    `json:"workers"`
	Jobs    int    `json:"jobs"`
	// WallMS and JobsPerSec are measured over the full Jobs batch,
	// including each worker's first-job construction cost.
	WallMS     float64 `json:"wall_ms"`
	JobsPerSec float64 `json:"jobs_per_sec"`
	// AllocsPerJob and BytesPerJob are the steady-state per-job heap
	// costs, isolated by window differencing: the batch runs twice, at
	// half and full length, and the counter delta is divided by the
	// extra jobs — so one-time costs (slot construction, program
	// builds, per-call slices) cancel and only the marginal per-job
	// cost remains. Exact malloc counters at GOMAXPROCS(1), so a warm
	// row's 0 is trustworthy. Only single-worker rows are measured;
	// parallel rows report -1 (scheduler allocations would pollute the
	// process-wide counters).
	AllocsPerJob float64 `json:"allocs_per_job"`
	BytesPerJob  float64 `json:"bytes_per_job"`
}

// Sweep batch shape. Job windows are deliberately tiny: the sweep
// section measures per-job overhead (construction vs reset), which
// long simulation windows would drown out.
const (
	// SweepJobs is the full batch length Collect measures.
	SweepJobs          = 128
	sweepWarmupInstrs  = 2_000
	sweepMeasureInstrs = 100_000
)

// Sweep job mix: two footprints crossed with four treatment families,
// cycling with period 8. Seeds cycle with the mix, so the stream is
// fully periodic: any window whose length is a multiple of 8 is an
// exact whole number of identical cycles. That periodicity is what
// makes the differencing in MeasureSweep exact — the extra jobs of
// the longer window replay earlier ones, so every retained structure
// (programs, policy instances, footprint-sized maps) is already at
// capacity and the marginal malloc count measures only the per-job
// steady path.
var (
	sweepBenchmarks = []string{"tomcat", "xapian"}
	sweepPolicies   = []string{"TPLRU", "P(8):S&E&R(1/32)", "SRRIP", "GHRP"}
)

// sweepCycle is the job-stream period: the benchmark x policy cross.
const sweepCycle = 8

// SweepJobStream returns the first n jobs of the sweep batch. The
// stream is a pure function of the index — jobs[i] is identical for
// every n — so a shorter window is always a prefix of a longer one.
func SweepJobStream(n int) ([]sim.Options, error) {
	jobs := make([]sim.Options, n)
	for i := range jobs {
		bench, ok := workload.ProfileByName(sweepBenchmarks[i%len(sweepBenchmarks)])
		if !ok {
			return nil, fmt.Errorf("hotbench: unknown sweep benchmark %q", sweepBenchmarks[i%len(sweepBenchmarks)])
		}
		spec, err := core.ParsePolicy(sweepPolicies[(i/len(sweepBenchmarks))%len(sweepPolicies)])
		if err != nil {
			return nil, err
		}
		opt := sim.DefaultOptions(bench, spec)
		opt.WarmupInstrs = sweepWarmupInstrs
		opt.MeasureInstrs = sweepMeasureInstrs
		opt.Seed = uint64(i % sweepCycle)
		jobs[i] = opt
	}
	return jobs, nil
}

// sweepConfig maps a sweep mode to its runner configuration. pool and
// bpool, when non-nil, are the caller-owned reusable state.
func sweepConfig(workers int, mode string, pool []*sim.Warm, bpool *runner.BatchPool) (runner.SimsConfig, error) {
	cfg := runner.SimsConfig{Workers: workers, WarmPool: pool, Batch: bpool}
	switch mode {
	case "cold":
		cfg.ColdStart = true
	case "warm":
		cfg.NoBatch = true
	case "batched":
	default:
		return cfg, fmt.Errorf("hotbench: unknown sweep mode %q", mode)
	}
	return cfg, nil
}

// runSweepWindow pushes jobs through the pool once and reports the
// wall time. pool and bpool, when non-nil, are the caller-owned warm
// rack and batch-execution state.
func runSweepWindow(jobs []sim.Options, workers int, mode string, pool []*sim.Warm, bpool *runner.BatchPool) (time.Duration, error) {
	cfg, err := sweepConfig(workers, mode, pool, bpool)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	_, err = runner.RunSimsStats(context.Background(), jobs, cfg)
	return time.Since(start), err
}

// measuredWindow is runSweepWindow under the malloc counters (exact,
// like timeLoop — a single-worker sweep's 0 is trustworthy). The
// caller must already have quiesced the process: GOMAXPROCS(1) so no
// concurrent goroutine charges phantom allocations to the window, and
// the collector disabled so a GC cycle landing inside one window but
// not another cannot skew differenced counters with its own
// bookkeeping. Under that regime identical windows reproduce their
// counters exactly, run after run.
func measuredWindow(jobs []sim.Options, mode string, pool []*sim.Warm, bpool *runner.BatchPool) (elapsed time.Duration, mallocs, bytes int64, err error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	elapsed, err = runSweepWindow(jobs, 1, mode, pool, bpool)
	runtime.ReadMemStats(&after)
	return elapsed, int64(after.Mallocs - before.Mallocs), int64(after.TotalAlloc - before.TotalAlloc), err
}

// MeasureSweep measures one sweep row: nJobs batch jobs at the given
// worker count in mode "cold", "warm", or "batched". Single-worker
// rows run a half-length window first and difference the counters;
// warm and batched rows additionally share caller-owned state (a warm
// slot; plus the batch pool's racks and grouping scratch) across both
// windows, primed so neither window pays (or jitters on) one-time
// construction — what remains is exactly the steady path, and its
// malloc count must be zero. The one honest asymmetry left is each
// job's slot in the batch's results slice, which scales with the
// window and therefore survives differencing in BytesPerJob (as a
// size delta on count-cancelling allocations) — which is why a warm
// or batched row reads allocs_per_job == 0 alongside a small nonzero
// bytes_per_job.
func MeasureSweep(workers, nJobs int, mode string) (SweepResult, error) {
	jobs, err := SweepJobStream(nJobs)
	if err != nil {
		return SweepResult{}, err
	}
	if _, err := sweepConfig(workers, mode, nil, nil); err != nil {
		return SweepResult{}, err
	}
	res := SweepResult{Mode: mode, Workers: workers, Jobs: nJobs, AllocsPerJob: -1, BytesPerJob: -1}
	if workers == 1 && nJobs >= 2 {
		// Pin to one P for the whole measurement (not per window:
		// toggling scheduler state between windows is itself a noise
		// source). The collector stays enabled — measuredWindow's
		// forced GC resets the pacer's trigger far above what a warm
		// window's ~13 KB of fixed overhead can reach, so no natural
		// cycle lands inside one; disabling it outright and then
		// forcing cycles anyway proved noisier in practice.
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
		var (
			pool  []*sim.Warm
			bpool *runner.BatchPool
		)
		pairs := 1
		switch mode {
		case "warm":
			// Prime the shared slot on one full job cycle so the
			// measured windows start in steady state.
			pool = []*sim.Warm{sim.NewWarm()}
			if _, err := runSweepWindow(jobs[:min(sweepCycle, nJobs)], 1, mode, pool, nil); err != nil {
				return SweepResult{}, err
			}
			// Quiesced windows reproduce their counters exactly, with
			// two rare exceptions that land in a window with
			// probability proportional to its wall time: an amortized
			// allocation of our own (the census arena doubling) and
			// the runtime's timer-heap growth when a background timer
			// (scavenger, forced GC) resets mid-window. Both are
			// one-offs that hit pairs independently, whereas a real
			// per-job leak inflates EVERY pair by at least the extra
			// job count — so the pair with the smallest absolute
			// differenced count is the steady-state estimator (it can
			// read zero only if some pair genuinely measured equal
			// counts in both windows). Warm pairs are cheap enough to
			// repeat; cold pairs are two orders of magnitude slower
			// and their per-job counts dwarf any noise, so one pair
			// suffices there.
			pairs = 5
		case "batched":
			// Prime on the full window: the batch pool's grouping
			// scratch and member racks size with the window (not with
			// the job mix), so only a full-length prime leaves both
			// measured windows allocation-free.
			pool = []*sim.Warm{sim.NewWarm()}
			bpool = runner.NewBatchPool()
			if _, err := runSweepWindow(jobs, 1, mode, pool, bpool); err != nil {
				return SweepResult{}, err
			}
			pairs = 5
		}
		half := nJobs / 2
		extra := float64(nJobs - half)
		attempts := make([]SweepResult, 0, pairs)
		for p := 0; p < pairs; p++ {
			_, mHalf, bHalf, err := measuredWindow(jobs[:half], mode, pool, bpool)
			if err != nil {
				return SweepResult{}, err
			}
			elapsed, mFull, bFull, err := measuredWindow(jobs, mode, pool, bpool)
			if err != nil {
				return SweepResult{}, err
			}
			a := res
			a.WallMS = float64(elapsed.Nanoseconds()) / 1e6
			a.JobsPerSec = float64(nJobs) / elapsed.Seconds()
			a.AllocsPerJob = float64(mFull-mHalf) / extra
			a.BytesPerJob = float64(bFull-bHalf) / extra
			attempts = append(attempts, a)
		}
		// Smallest |allocs/job| pair: the cleanest window pairing,
		// immune to independent one-off blips (rationale above). For
		// throughput, report the median wall time across attempts —
		// the alloc-cleanest pair is not necessarily the
		// timing-median one.
		sort.Slice(attempts, func(i, j int) bool { return attempts[i].WallMS < attempts[j].WallMS })
		timing := attempts[len(attempts)/2]
		best := attempts[0]
		for _, a := range attempts[1:] {
			if math.Abs(a.AllocsPerJob) < math.Abs(best.AllocsPerJob) {
				best = a
			}
		}
		best.WallMS, best.JobsPerSec = timing.WallMS, timing.JobsPerSec
		return best, nil
	}
	elapsed, err := runSweepWindow(jobs, workers, mode, nil, nil)
	if err != nil {
		return SweepResult{}, err
	}
	res.WallMS = float64(elapsed.Nanoseconds()) / 1e6
	res.JobsPerSec = float64(nJobs) / elapsed.Seconds()
	return res, nil
}

// SweepConfig names one sweep measurement point.
type SweepConfig struct {
	Workers int
	Mode    string
}

// SweepModes orders the sweep modes from no reuse to full reuse.
var SweepModes = []string{"cold", "warm", "batched"}

// SweepConfigs enumerates the sweep rows Collect measures: every mode
// at one worker (the differenced allocs_per_job rows) and, when the
// host has the parallelism, every mode at GOMAXPROCS.
func SweepConfigs() []SweepConfig {
	var rows []SweepConfig
	for _, m := range SweepModes {
		rows = append(rows, SweepConfig{1, m})
	}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		for _, m := range SweepModes {
			rows = append(rows, SweepConfig{n, m})
		}
	}
	return rows
}

// SchemaVersion is the current BENCH_hotpath.json schema. Bump it
// whenever the Report structure or the meaning of a field changes;
// emissary-bench -verify (and CI's bench-smoke job) fail any artifact
// whose schema field disagrees, so a bump can't silently pass a stale
// committed artifact through.
//
// Schema 3 added the sweep-throughput section (warm-pool cold/warm
// batch rows). Schema 4 added the "batched" sweep mode (lockstep
// execution of same-stream jobs) alongside cold and warm.
const SchemaVersion = 4

// Report is the BENCH_hotpath.json schema. Timing fields vary with
// the host; structure and the allocs-are-zero invariants (per-op on
// access/fill rows, per-job on single-worker warm sweep rows) do not.
type Report struct {
	Schema    int    `json:"schema"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`
	Sets      int    `json:"sets"`
	Ways      int    `json:"ways"`

	Access   []OpResult       `json:"access"`
	Fill     []OpResult       `json:"fill"`
	EndToEnd []EndToEndResult `json:"end_to_end"`
	Sweep    []SweepResult    `json:"sweep"`
}

// EndToEndBenchmarks and EndToEndPolicies span the full-simulator
// matrix Collect measures: small-to-large instruction footprints
// crossed with the TPLRU/LRU baselines, the paper's headline EMISSARY
// configuration, and a scan-resistant comparison policy — each with
// FDIP on and off, since the no-FDIP rows are the stall-heavy shape
// the cycle skipper accelerates most.
var (
	EndToEndBenchmarks = []string{"xapian", "tomcat", "verilator", "specjbb"}
	EndToEndPolicies   = []string{"TPLRU", "LRU", "P(8):S&E&R(1/32)", "DRRIP"}
)

// EndToEndConfigs enumerates the benchmark x policy x FDIP matrix,
// then appends the stall-heavy rows: no prefetching at all (FDIP and
// NLP off) and a 4-entry MSHR file, which serializes misses and drops
// IPC below 0.5 — the shape where the cycle skipper's fast-forward
// dominates wall-clock, not just engages.
func EndToEndConfigs() []EndToEndConfig {
	var out []EndToEndConfig
	for _, b := range EndToEndBenchmarks {
		for _, p := range EndToEndPolicies {
			for _, fdip := range []bool{true, false} {
				out = append(out, DefaultEndToEndConfig(b, p, fdip))
			}
		}
	}
	for _, b := range []string{"tomcat", "verilator"} {
		for _, p := range []string{"TPLRU", "LRU"} {
			out = append(out, EndToEndConfig{Benchmark: b, Policy: p, MaxMSHRs: 4})
		}
	}
	return out
}

// VerifySchema reads the BENCH_hotpath.json artifact at path and
// fails with a readable message unless its schema field matches
// SchemaVersion exactly. This is the guard between "the binary's
// schema moved on" and "a stale committed artifact still parses": CI
// runs it against the checked-in artifact before regenerating, so a
// schema bump that forgets to refresh the artifact fails the build
// instead of shipping mismatched rows.
func VerifySchema(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("hotbench: reading artifact: %w", err)
	}
	var probe struct {
		Schema *int `json:"schema"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return fmt.Errorf("hotbench: %s is not a BENCH_hotpath.json artifact: %w", path, err)
	}
	if probe.Schema == nil {
		return fmt.Errorf("hotbench: %s has no \"schema\" field — artifact predates schema versioning; regenerate it with emissary-bench", path)
	}
	if *probe.Schema != SchemaVersion {
		return fmt.Errorf("hotbench: %s has schema %d but this binary writes schema %d — stale artifact; regenerate it with emissary-bench",
			path, *probe.Schema, SchemaVersion)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return fmt.Errorf("hotbench: %s does not parse as a schema-%d report: %w", path, SchemaVersion, err)
	}
	// Schema 4 requires the batched sweep section: at least one
	// single-worker "batched" row, whose differenced allocation count
	// must exist (>= 0; -1 marks unmeasured parallel rows).
	found := false
	for _, row := range rep.Sweep {
		if row.Mode == "batched" && row.Workers == 1 && row.AllocsPerJob >= 0 {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("hotbench: %s has no measured single-worker \"batched\" sweep row — incomplete schema-%d artifact; regenerate it with emissary-bench", path, SchemaVersion)
	}
	return nil
}

// Collect runs the whole suite: Access and Fill for every policy in
// Policies at iters iterations each, then the end-to-end matrix at the
// given instruction counts. noSkip disables cycle skipping in the
// end-to-end rows (their skipped_cycle_fraction then reads 0).
func Collect(iters int, warmup, measure uint64, noSkip bool) (*Report, error) {
	rep := &Report{
		Schema:    SchemaVersion,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Sets:      Sets,
		Ways:      Ways,
	}
	for _, pol := range Policies {
		r, err := MeasureAccess(pol, iters)
		if err != nil {
			return nil, err
		}
		rep.Access = append(rep.Access, r)
	}
	for _, pol := range Policies {
		r, err := MeasureFill(pol, iters)
		if err != nil {
			return nil, err
		}
		rep.Fill = append(rep.Fill, r)
	}
	for _, cfg := range EndToEndConfigs() {
		r, err := MeasureEndToEnd(cfg, warmup, measure, noSkip)
		if err != nil {
			return nil, err
		}
		rep.EndToEnd = append(rep.EndToEnd, r)
	}
	for _, cfg := range SweepConfigs() {
		r, err := MeasureSweep(cfg.Workers, SweepJobs, cfg.Mode)
		if err != nil {
			return nil, err
		}
		rep.Sweep = append(rep.Sweep, r)
	}
	return rep, nil
}
