// Package hotbench measures the cache hot path — ns and allocations
// per Access/Fill for every policy family, plus end-to-end simulation
// throughput — and renders the numbers as the BENCH_hotpath.json
// trajectory artifact CI publishes on every run.
//
// It is the single source of truth for the hot-path benchmark
// configuration: the go-test microbenchmarks in internal/cache reuse
// the geometry, policy list and address stream defined here, so the
// CI artifact and `go test -bench` always measure the same workload.
//
// hotbench deliberately lives outside the deterministic simulator
// packages: wall-clock reads are its whole job, and the determinism
// linter bans them inside internal/{cache,policy,sim,...}.
package hotbench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"emissary/internal/cache"
	"emissary/internal/core"
	"emissary/internal/rng"
	"emissary/internal/sim"
	"emissary/internal/workload"
)

// Sets and Ways are the paper's L2 geometry (1 MB, 64 B lines,
// 16-way), the cache the hot path spends its time in.
const (
	Sets = 1024
	Ways = 16
)

// Policies spans every treatment family so a regression in one
// policy's callbacks is visible in its own benchmark row.
var Policies = []string{
	"TPLRU",
	"LRU",
	"BIP",
	"M:S&E&R(1/32)",
	"P(8):S&E&R(1/32)",
	"SRRIP",
	"DRRIP",
	"PDP",
	"DCLIP",
	"GHRP",
}

// addrSeed fixes the benchmark address stream: every run, on every
// machine, measures the same hit/miss sequence.
const addrSeed = 0xbe7c4

// Addrs generates a deterministic line-address stream covering 4x the
// cache capacity, so steady state sees both hits and misses. n must be
// a power of two (callers index with i & (n-1)).
func Addrs(n int) []uint64 {
	r := rng.NewXoshiro256(addrSeed)
	addrs := make([]uint64, n)
	span := uint64(Sets * Ways * 4)
	for i := range addrs {
		addrs[i] = r.Uint64() % span
	}
	return addrs
}

// New builds the benchmark cache for one policy.
func New(policyText string) (*cache.Cache, error) {
	spec, err := core.ParsePolicy(policyText)
	if err != nil {
		return nil, err
	}
	return cache.NewCache("bench", Sets, Ways, spec.Build(Sets, Ways, 1)), nil
}

// Warm fills the cache to steady state so timed loops measure the
// full-set path (victim selection), not the cold invalid-way path.
func Warm(c *cache.Cache, addrs []uint64) {
	for _, a := range addrs {
		c.Fill(a, cache.FillSpec{Instr: a%2 == 0, Priority: a%8 == 0})
	}
}

// OpResult is one micro-benchmark row.
type OpResult struct {
	Policy      string  `json:"policy"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// timeLoop measures fn over iters iterations: wall time from the
// monotonic clock, allocation counts from the runtime's malloc
// counters (exact, no sampling — AllocsPerOp is trustworthy at 0).
// The malloc counters are process-wide, so — like testing.AllocsPerRun
// — the loop runs at GOMAXPROCS(1) after a GC quiesce; otherwise a
// background goroutine allocating mid-loop charges a phantom
// fractional alloc to the hot path.
func timeLoop(iters int, fn func(i int)) (nsPerOp, allocsPerOp, bytesPerOp float64) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn(i)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	n := float64(iters)
	return float64(elapsed.Nanoseconds()) / n,
		float64(after.Mallocs-before.Mallocs) / n,
		float64(after.TotalAlloc-before.TotalAlloc) / n
}

// MeasureAccess times the Access hot path for one policy.
func MeasureAccess(policyText string, iters int) (OpResult, error) {
	c, err := New(policyText)
	if err != nil {
		return OpResult{}, err
	}
	addrs := Addrs(1 << 16)
	Warm(c, addrs)
	mask := len(addrs) - 1
	ns, allocs, bytes := timeLoop(iters, func(i int) {
		a := addrs[i&mask]
		c.Access(a, a%2 == 0)
	})
	return OpResult{Policy: policyText, NsPerOp: ns, AllocsPerOp: allocs, BytesPerOp: bytes, Iterations: iters}, nil
}

// MeasureFill times the Fill (miss + victim + install) path for one
// policy.
func MeasureFill(policyText string, iters int) (OpResult, error) {
	c, err := New(policyText)
	if err != nil {
		return OpResult{}, err
	}
	addrs := Addrs(1 << 16)
	Warm(c, addrs)
	mask := len(addrs) - 1
	ns, allocs, bytes := timeLoop(iters, func(i int) {
		a := addrs[i&mask]
		c.Fill(a, cache.FillSpec{Instr: a%2 == 0, Priority: a%8 == 0})
	})
	return OpResult{Policy: policyText, NsPerOp: ns, AllocsPerOp: allocs, BytesPerOp: bytes, Iterations: iters}, nil
}

// EndToEndResult is one full-simulator throughput row: how fast the
// whole pipeline (front end, caches, back end) simulates instructions.
type EndToEndResult struct {
	Benchmark string `json:"benchmark"`
	Policy    string `json:"policy"`
	FDIP      bool   `json:"fdip"`
	// NLP and MaxMSHRs identify the stall-heavy rows: next-line
	// prefetching off and a tight MSHR file serialize misses, which is
	// where cycle skipping pays off most (MaxMSHRs 0 = model default).
	NLP          bool    `json:"nlp"`
	MaxMSHRs     int     `json:"max_mshrs"`
	WarmupInstrs uint64  `json:"warmup_instructions"`
	Instructions uint64  `json:"measured_instructions"`
	WallMS       float64 `json:"wall_ms"`
	// SimMIPS is simulated (warmup+measured) instructions per wall
	// second, in millions — the simulator's own throughput metric.
	SimMIPS float64 `json:"sim_mips"`
	IPC     float64 `json:"ipc"`
	// SkippedCycleFraction is the share of simulated cycles the
	// event-driven skipper fast-forwarded instead of stepping (0 when
	// skipping is disabled or never engaged).
	SkippedCycleFraction float64 `json:"skipped_cycle_fraction"`
}

// EndToEndConfig names one full-simulator measurement point. The zero
// values of NLP and MaxMSHRs are NOT the model defaults — construct
// configs with DefaultEndToEndConfig or EndToEndConfigs.
type EndToEndConfig struct {
	Benchmark string
	Policy    string
	FDIP      bool
	NLP       bool
	MaxMSHRs  int // 0 = model default
}

// DefaultEndToEndConfig is a measurement point with the simulator's
// default frontend (NLP on, default MSHR file).
func DefaultEndToEndConfig(bench, policy string, fdip bool) EndToEndConfig {
	return EndToEndConfig{Benchmark: bench, Policy: policy, FDIP: fdip, NLP: true}
}

// MeasureEndToEnd runs one complete simulation under the wall clock.
// noSkip disables the core's event-driven cycle skipping, measuring
// the naive-walk baseline.
func MeasureEndToEnd(cfg EndToEndConfig, warmup, measure uint64, noSkip bool) (EndToEndResult, error) {
	bench, ok := workload.ProfileByName(cfg.Benchmark)
	if !ok {
		return EndToEndResult{}, fmt.Errorf("hotbench: unknown benchmark %q", cfg.Benchmark)
	}
	spec, err := core.ParsePolicy(cfg.Policy)
	if err != nil {
		return EndToEndResult{}, err
	}
	opt := sim.DefaultOptions(bench, spec)
	opt.WarmupInstrs = warmup
	opt.MeasureInstrs = measure
	opt.FDIP = cfg.FDIP
	opt.NLP = cfg.NLP
	opt.MaxMSHRs = cfg.MaxMSHRs
	opt.NoCycleSkip = noSkip
	opt.Seed = 1
	start := time.Now()
	res, stats, err := sim.RunContextStats(context.Background(), opt)
	if err != nil {
		return EndToEndResult{}, err
	}
	elapsed := time.Since(start)
	return EndToEndResult{
		Benchmark:            cfg.Benchmark,
		Policy:               cfg.Policy,
		FDIP:                 cfg.FDIP,
		NLP:                  cfg.NLP,
		MaxMSHRs:             cfg.MaxMSHRs,
		WarmupInstrs:         warmup,
		Instructions:         measure,
		WallMS:               float64(elapsed.Nanoseconds()) / 1e6,
		SimMIPS:              float64(warmup+measure) / elapsed.Seconds() / 1e6,
		IPC:                  res.IPC,
		SkippedCycleFraction: stats.SkippedFraction(),
	}, nil
}

// SchemaVersion is the current BENCH_hotpath.json schema. Bump it
// whenever the Report structure or the meaning of a field changes;
// emissary-bench -verify (and CI's bench-smoke job) fail any artifact
// whose schema field disagrees, so a bump can't silently pass a stale
// committed artifact through.
const SchemaVersion = 2

// Report is the BENCH_hotpath.json schema. Timing fields vary with
// the host; structure and the allocs_per_op == 0 invariant do not.
type Report struct {
	Schema    int    `json:"schema"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`
	Sets      int    `json:"sets"`
	Ways      int    `json:"ways"`

	Access   []OpResult       `json:"access"`
	Fill     []OpResult       `json:"fill"`
	EndToEnd []EndToEndResult `json:"end_to_end"`
}

// EndToEndBenchmarks and EndToEndPolicies span the full-simulator
// matrix Collect measures: small-to-large instruction footprints
// crossed with the TPLRU/LRU baselines, the paper's headline EMISSARY
// configuration, and a scan-resistant comparison policy — each with
// FDIP on and off, since the no-FDIP rows are the stall-heavy shape
// the cycle skipper accelerates most.
var (
	EndToEndBenchmarks = []string{"xapian", "tomcat", "verilator", "specjbb"}
	EndToEndPolicies   = []string{"TPLRU", "LRU", "P(8):S&E&R(1/32)", "DRRIP"}
)

// EndToEndConfigs enumerates the benchmark x policy x FDIP matrix,
// then appends the stall-heavy rows: no prefetching at all (FDIP and
// NLP off) and a 4-entry MSHR file, which serializes misses and drops
// IPC below 0.5 — the shape where the cycle skipper's fast-forward
// dominates wall-clock, not just engages.
func EndToEndConfigs() []EndToEndConfig {
	var out []EndToEndConfig
	for _, b := range EndToEndBenchmarks {
		for _, p := range EndToEndPolicies {
			for _, fdip := range []bool{true, false} {
				out = append(out, DefaultEndToEndConfig(b, p, fdip))
			}
		}
	}
	for _, b := range []string{"tomcat", "verilator"} {
		for _, p := range []string{"TPLRU", "LRU"} {
			out = append(out, EndToEndConfig{Benchmark: b, Policy: p, MaxMSHRs: 4})
		}
	}
	return out
}

// VerifySchema reads the BENCH_hotpath.json artifact at path and
// fails with a readable message unless its schema field matches
// SchemaVersion exactly. This is the guard between "the binary's
// schema moved on" and "a stale committed artifact still parses": CI
// runs it against the checked-in artifact before regenerating, so a
// schema bump that forgets to refresh the artifact fails the build
// instead of shipping mismatched rows.
func VerifySchema(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("hotbench: reading artifact: %w", err)
	}
	var probe struct {
		Schema *int `json:"schema"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return fmt.Errorf("hotbench: %s is not a BENCH_hotpath.json artifact: %w", path, err)
	}
	if probe.Schema == nil {
		return fmt.Errorf("hotbench: %s has no \"schema\" field — artifact predates schema versioning; regenerate it with emissary-bench", path)
	}
	if *probe.Schema != SchemaVersion {
		return fmt.Errorf("hotbench: %s has schema %d but this binary writes schema %d — stale artifact; regenerate it with emissary-bench",
			path, *probe.Schema, SchemaVersion)
	}
	return nil
}

// Collect runs the whole suite: Access and Fill for every policy in
// Policies at iters iterations each, then the end-to-end matrix at the
// given instruction counts. noSkip disables cycle skipping in the
// end-to-end rows (their skipped_cycle_fraction then reads 0).
func Collect(iters int, warmup, measure uint64, noSkip bool) (*Report, error) {
	rep := &Report{
		Schema:    SchemaVersion,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Sets:      Sets,
		Ways:      Ways,
	}
	for _, pol := range Policies {
		r, err := MeasureAccess(pol, iters)
		if err != nil {
			return nil, err
		}
		rep.Access = append(rep.Access, r)
	}
	for _, pol := range Policies {
		r, err := MeasureFill(pol, iters)
		if err != nil {
			return nil, err
		}
		rep.Fill = append(rep.Fill, r)
	}
	for _, cfg := range EndToEndConfigs() {
		r, err := MeasureEndToEnd(cfg, warmup, measure, noSkip)
		if err != nil {
			return nil, err
		}
		rep.EndToEnd = append(rep.EndToEnd, r)
	}
	return rep, nil
}
