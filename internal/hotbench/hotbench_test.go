package hotbench

import (
	"encoding/json"
	"testing"
)

func TestAddrsDeterministic(t *testing.T) {
	a, b := Addrs(1<<10), Addrs(1<<10)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("address stream diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
	span := uint64(Sets * Ways * 4)
	for i, v := range a {
		if v >= span {
			t.Fatalf("addr[%d] = %d outside span %d", i, v, span)
		}
	}
}

func TestMeasureAccessAndFill(t *testing.T) {
	for _, measure := range []func(string, int) (OpResult, error){MeasureAccess, MeasureFill} {
		r, err := measure("TPLRU", 2000)
		if err != nil {
			t.Fatal(err)
		}
		if r.NsPerOp <= 0 {
			t.Errorf("NsPerOp = %v, want > 0", r.NsPerOp)
		}
		if r.AllocsPerOp != 0 {
			t.Errorf("AllocsPerOp = %v, want 0", r.AllocsPerOp)
		}
		if r.Iterations != 2000 || r.Policy != "TPLRU" {
			t.Errorf("row mislabeled: %+v", r)
		}
	}
	if _, err := MeasureAccess("garbage!!", 10); err == nil {
		t.Error("MeasureAccess accepted a bad policy")
	}
}

func TestMeasureEndToEnd(t *testing.T) {
	r, err := MeasureEndToEnd("xapian", "TPLRU", 10_000, 40_000)
	if err != nil {
		t.Fatal(err)
	}
	if r.WallMS <= 0 || r.SimMIPS <= 0 || r.IPC <= 0 {
		t.Errorf("degenerate end-to-end row: %+v", r)
	}
	if _, err := MeasureEndToEnd("nope", "TPLRU", 1, 1); err == nil {
		t.Error("MeasureEndToEnd accepted an unknown benchmark")
	}
}

func TestReportRoundTrip(t *testing.T) {
	rep := &Report{Schema: 1, Access: []OpResult{{Policy: "LRU", NsPerOp: 1.5, Iterations: 10}}}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != 1 || len(back.Access) != 1 || back.Access[0].Policy != "LRU" {
		t.Errorf("round trip lost data: %+v", back)
	}
}
