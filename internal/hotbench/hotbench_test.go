package hotbench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestAddrsDeterministic(t *testing.T) {
	a, b := Addrs(1<<10), Addrs(1<<10)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("address stream diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
	span := uint64(Sets * Ways * 4)
	for i, v := range a {
		if v >= span {
			t.Fatalf("addr[%d] = %d outside span %d", i, v, span)
		}
	}
}

func TestMeasureAccessAndFill(t *testing.T) {
	for _, measure := range []func(string, int) (OpResult, error){MeasureAccess, MeasureFill} {
		r, err := measure("TPLRU", 2000)
		if err != nil {
			t.Fatal(err)
		}
		if r.NsPerOp <= 0 {
			t.Errorf("NsPerOp = %v, want > 0", r.NsPerOp)
		}
		if r.AllocsPerOp != 0 {
			t.Errorf("AllocsPerOp = %v, want 0", r.AllocsPerOp)
		}
		if r.Iterations != 2000 || r.Policy != "TPLRU" {
			t.Errorf("row mislabeled: %+v", r)
		}
	}
	if _, err := MeasureAccess("garbage!!", 10); err == nil {
		t.Error("MeasureAccess accepted a bad policy")
	}
}

func TestMeasureEndToEnd(t *testing.T) {
	r, err := MeasureEndToEnd(DefaultEndToEndConfig("xapian", "TPLRU", true), 10_000, 40_000, false)
	if err != nil {
		t.Fatal(err)
	}
	if r.WallMS <= 0 || r.SimMIPS <= 0 || r.IPC <= 0 {
		t.Errorf("degenerate end-to-end row: %+v", r)
	}
	if !r.FDIP {
		t.Errorf("row not labeled with its FDIP mode: %+v", r)
	}
	if _, err := MeasureEndToEnd(DefaultEndToEndConfig("nope", "TPLRU", true), 1, 1, false); err == nil {
		t.Error("MeasureEndToEnd accepted an unknown benchmark")
	}
	if _, err := MeasureEndToEnd(DefaultEndToEndConfig("xapian", "garbage!!", true), 1, 1, false); err == nil {
		t.Error("MeasureEndToEnd accepted a bad policy")
	}
}

// TestMeasureEndToEndSkipFraction pins the schema-2 field: a no-FDIP
// run stalls on demand misses constantly, so the skipper must engage;
// a noSkip run must report exactly zero.
func TestMeasureEndToEndSkipFraction(t *testing.T) {
	r, err := MeasureEndToEnd(DefaultEndToEndConfig("xapian", "TPLRU", false), 10_000, 40_000, false)
	if err != nil {
		t.Fatal(err)
	}
	if r.SkippedCycleFraction <= 0 {
		t.Errorf("skipped_cycle_fraction = %v on a no-FDIP run, want > 0", r.SkippedCycleFraction)
	}
	r, err = MeasureEndToEnd(DefaultEndToEndConfig("xapian", "TPLRU", false), 10_000, 40_000, true)
	if err != nil {
		t.Fatal(err)
	}
	if r.SkippedCycleFraction != 0 {
		t.Errorf("skipped_cycle_fraction = %v with skipping disabled, want 0", r.SkippedCycleFraction)
	}
}

func TestReportRoundTrip(t *testing.T) {
	rep := &Report{
		Schema: 2,
		Access: []OpResult{{Policy: "LRU", NsPerOp: 1.5, Iterations: 10}},
		EndToEnd: []EndToEndResult{
			{Benchmark: "xapian", Policy: "TPLRU", FDIP: false, SkippedCycleFraction: 0.75},
		},
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != 2 || len(back.Access) != 1 || back.Access[0].Policy != "LRU" {
		t.Errorf("round trip lost data: %+v", back)
	}
	if len(back.EndToEnd) != 1 || back.EndToEnd[0].SkippedCycleFraction != 0.75 {
		t.Errorf("round trip lost the skip fraction: %+v", back.EndToEnd)
	}
}

// TestEndToEndConfigs pins the measurement matrix shape: the full
// benchmark x policy x FDIP cross, plus dedicated stall-heavy rows
// (no prefetching, tight MSHR file) where skipping dominates.
func TestEndToEndConfigs(t *testing.T) {
	cfgs := EndToEndConfigs()
	want := len(EndToEndBenchmarks)*len(EndToEndPolicies)*2 + 4
	if len(cfgs) != want {
		t.Fatalf("EndToEndConfigs returned %d rows, want %d", len(cfgs), want)
	}
	stallHeavy := 0
	for _, c := range cfgs {
		if c.MaxMSHRs > 0 {
			stallHeavy++
			if c.FDIP || c.NLP {
				t.Errorf("stall-heavy row %+v still has a prefetcher enabled", c)
			}
		}
	}
	if stallHeavy != 4 {
		t.Errorf("got %d stall-heavy rows, want 4", stallHeavy)
	}
}

// TestMeasureEndToEndStallHeavy runs one stall-heavy row end to end:
// with misses serialized, well over half of all cycles must be
// skippable.
func TestMeasureEndToEndStallHeavy(t *testing.T) {
	cfg := EndToEndConfig{Benchmark: "tomcat", Policy: "LRU", MaxMSHRs: 4}
	r, err := MeasureEndToEnd(cfg, 10_000, 40_000, false)
	if err != nil {
		t.Fatal(err)
	}
	if r.SkippedCycleFraction < 0.5 {
		t.Errorf("stall-heavy skipped_cycle_fraction = %v, want >= 0.5", r.SkippedCycleFraction)
	}
	if r.NLP || r.FDIP || r.MaxMSHRs != 4 {
		t.Errorf("row not labeled with its config: %+v", r)
	}
}

// TestVerifySchema pins the artifact gate: a current-schema report
// with a measured batched row passes; a stale schema, a missing
// batched sweep row, and an unmeasured one (allocs_per_job -1, the
// parallel-row marker) all fail with messages naming the problem.
func TestVerifySchema(t *testing.T) {
	write := func(t *testing.T, rep Report) string {
		t.Helper()
		data, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "BENCH_hotpath.json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	good := Report{
		Schema: SchemaVersion,
		Sweep: []SweepResult{
			{Mode: "cold", Workers: 1, AllocsPerJob: 900},
			{Mode: "warm", Workers: 1, AllocsPerJob: 0},
			{Mode: "batched", Workers: 1, AllocsPerJob: 0},
			{Mode: "batched", Workers: 8, AllocsPerJob: -1},
		},
	}
	if err := VerifySchema(write(t, good)); err != nil {
		t.Errorf("current artifact rejected: %v", err)
	}

	stale := good
	stale.Schema = SchemaVersion - 1
	if err := VerifySchema(write(t, stale)); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("stale schema not rejected usefully: %v", err)
	}

	unbatched := good
	unbatched.Sweep = good.Sweep[:2]
	if err := VerifySchema(write(t, unbatched)); err == nil || !strings.Contains(err.Error(), "batched") {
		t.Errorf("missing batched section not rejected usefully: %v", err)
	}

	unmeasured := good
	unmeasured.Sweep = []SweepResult{
		good.Sweep[0], good.Sweep[1],
		{Mode: "batched", Workers: 1, AllocsPerJob: -1},
	}
	if err := VerifySchema(write(t, unmeasured)); err == nil || !strings.Contains(err.Error(), "batched") {
		t.Errorf("unmeasured batched row not rejected usefully: %v", err)
	}
}
