package hotbench

import (
	"reflect"
	"testing"
)

// TestSweepJobStream pins the stream properties the window-differencing
// estimator depends on: the stream is deterministic, fully periodic
// with period sweepCycle, and prefix-stable (a shorter stream is a
// prefix of a longer one, so the half window measures the same jobs).
func TestSweepJobStream(t *testing.T) {
	long, err := SweepJobStream(4 * sweepCycle)
	if err != nil {
		t.Fatal(err)
	}
	short, err := SweepJobStream(2 * sweepCycle)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(long[:len(short)], short) {
		t.Error("SweepJobStream is not prefix-stable")
	}
	for i := sweepCycle; i < len(long); i++ {
		if !reflect.DeepEqual(long[i], long[i-sweepCycle]) {
			t.Errorf("job %d differs from job %d: the stream is not %d-periodic", i, i-sweepCycle, sweepCycle)
		}
	}
	distinct := make(map[string]bool)
	for _, opt := range long[:sweepCycle] {
		distinct[opt.Benchmark.Name+"|"+opt.Policy.String()] = true
	}
	if len(distinct) != sweepCycle {
		t.Errorf("one cycle holds %d distinct (benchmark, policy) pairs, want %d", len(distinct), sweepCycle)
	}
}

// TestMeasureSweepWarm exercises the row CI gates on: warm reuse at
// workers=1 must be allocation-free per job (the gate allows < 0.5 to
// absorb a stray environmental allocation; any true per-job cost is
// at least 1.0) and labeled correctly.
func TestMeasureSweepWarm(t *testing.T) {
	r, err := MeasureSweep(1, 2*sweepCycle, "warm")
	if err != nil {
		t.Fatal(err)
	}
	if r.Mode != "warm" || r.Workers != 1 || r.Jobs != 2*sweepCycle {
		t.Errorf("row mislabeled: %+v", r)
	}
	if r.WallMS <= 0 || r.JobsPerSec <= 0 {
		t.Errorf("degenerate sweep row: %+v", r)
	}
	if r.AllocsPerJob >= 0.5 {
		t.Errorf("warm sweep allocates %v allocs/job, want < 0.5 (zero steady-state)", r.AllocsPerJob)
	}
}

// TestMeasureSweepBatched is the same gate for the lockstep rows: the
// batched steady state — shared stream synthesis, per-worker racks,
// reused grouping scratch — must also be allocation-free per job.
func TestMeasureSweepBatched(t *testing.T) {
	r, err := MeasureSweep(1, 4*sweepCycle, "batched")
	if err != nil {
		t.Fatal(err)
	}
	if r.Mode != "batched" || r.Workers != 1 || r.Jobs != 4*sweepCycle {
		t.Errorf("row mislabeled: %+v", r)
	}
	if r.WallMS <= 0 || r.JobsPerSec <= 0 {
		t.Errorf("degenerate sweep row: %+v", r)
	}
	if r.AllocsPerJob >= 0.5 {
		t.Errorf("batched sweep allocates %v allocs/job, want < 0.5 (zero steady-state)", r.AllocsPerJob)
	}
}

// TestMeasureSweepCold checks the baseline row's labeling; the
// throughput comparison against warm lives in the committed artifact,
// not here (relative speed is machine-dependent).
func TestMeasureSweepCold(t *testing.T) {
	if testing.Short() {
		t.Skip("cold sweeps rebuild every job; skipped in -short")
	}
	r, err := MeasureSweep(1, sweepCycle, "cold")
	if err != nil {
		t.Fatal(err)
	}
	if r.Mode != "cold" || r.Workers != 1 || r.Jobs != sweepCycle {
		t.Errorf("row mislabeled: %+v", r)
	}
	if r.WallMS <= 0 || r.JobsPerSec <= 0 {
		t.Errorf("degenerate sweep row: %+v", r)
	}
}

// TestSweepConfigs pins the matrix Collect measures: serial cold,
// warm, and batched rows always, parallel rows only on multi-core
// machines.
func TestSweepConfigs(t *testing.T) {
	cfgs := SweepConfigs()
	if len(cfgs) < 3 {
		t.Fatalf("SweepConfigs() = %v, want at least serial cold+warm+batched", cfgs)
	}
	want := []SweepConfig{{1, "cold"}, {1, "warm"}, {1, "batched"}}
	for i, w := range want {
		if cfgs[i] != w {
			t.Errorf("serial row %d = %v, want %v", i, cfgs[i], w)
		}
	}
}

// TestMeasureSweepUnknownMode pins the mode validation.
func TestMeasureSweepUnknownMode(t *testing.T) {
	if _, err := MeasureSweep(1, sweepCycle, "tepid"); err == nil {
		t.Fatal("unknown sweep mode accepted")
	}
}
