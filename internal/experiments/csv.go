package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// writeCSV renders a header plus rows through encoding/csv.
func writeCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func fstr(f float64) string { return strconv.FormatFloat(f, 'g', 8, 64) }

// CSVFig2 emits the reuse landscape as CSV.
func CSVFig2(w io.Writer, rows []Fig2Row) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Benchmark,
			fstr(r.AccessFrac[0]), fstr(r.AccessFrac[1]), fstr(r.AccessFrac[2]),
			fstr(r.LongMissFrac),
			fstr(r.StarvFrac[0]), fstr(r.StarvFrac[1]), fstr(r.StarvFrac[2]),
		})
	}
	return writeCSV(w, []string{
		"benchmark", "acc_short", "acc_mid", "acc_long",
		"l2miss_long_frac", "starv_short", "starv_mid", "starv_long",
	}, out)
}

// CSVFig3 emits baseline MPKIs as CSV.
func CSVFig3(w io.Writer, rows []Fig3Row) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{r.Benchmark, fstr(r.L1I), fstr(r.L1D), fstr(r.L2I), fstr(r.L2D)})
	}
	return writeCSV(w, []string{"benchmark", "l1i_mpki", "l1d_mpki", "l2i_mpki", "l2d_mpki"}, out)
}

// CSVFig4 emits footprints as CSV.
func CSVFig4(w io.Writer, rows []Fig4Row) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{r.Benchmark, fstr(r.FootprintMB)})
	}
	return writeCSV(w, []string{"benchmark", "footprint_mb"}, out)
}

// CSVTable5 emits the N x selection speedup grid as CSV.
func CSVTable5(w io.Writer, r *Table5Result) error {
	header := append([]string{"n"}, Table5Columns...)
	out := make([][]string, 0, len(r.Grid))
	for ni, row := range r.Grid {
		cols := []string{strconv.Itoa(Table5Ns[ni])}
		for _, v := range row {
			cols = append(cols, fstr(v))
		}
		out = append(out, cols)
	}
	return writeCSV(w, header, out)
}

// CSVFig7 emits per-benchmark speedups and energy reductions as CSV.
func CSVFig7(w io.Writer, r *Fig7Result, benchNames []string) error {
	header := []string{"benchmark", "policy", "speedup", "energy_reduction"}
	var out [][]string
	for _, b := range benchNames {
		for _, c := range r.Cells[b] {
			out = append(out, []string{b, c.Policy, fstr(c.Speedup), fstr(c.EnergyRed)})
		}
	}
	return writeCSV(w, header, out)
}

// CSVFig5 emits every series point as CSV.
func CSVFig5(w io.Writer, series []Fig5Series) error {
	header := []string{"benchmark", "family", "point", "n", "speedup", "l2i_mpki", "starv_delta"}
	var out [][]string
	for _, s := range series {
		for _, p := range s.Points {
			out = append(out, []string{
				s.Benchmark, s.Family, p.Label, strconv.Itoa(p.N),
				fstr(p.Speedup), fstr(p.L2IMPKI), fstr(p.StarvDelta),
			})
		}
	}
	return writeCSV(w, header, out)
}

// CSVHorizon emits per-window IPC as CSV.
func CSVHorizon(w io.Writer, results []HorizonResult) error {
	header := []string{"policy", "window", "ipc"}
	var out [][]string
	for _, r := range results {
		for i, ipc := range r.Windows {
			out = append(out, []string{r.Policy, fmt.Sprint(i + 1), fstr(ipc)})
		}
	}
	return writeCSV(w, header, out)
}
