package experiments

import (
	"context"
	"fmt"
	"io"
	"sync"

	"emissary/internal/cache"
	"emissary/internal/core"
	"emissary/internal/pipeline"
	"emissary/internal/rng"
	"emissary/internal/runner"
	"emissary/internal/workload"
)

// HorizonResult captures per-window IPC for one policy over a long
// run: the measurement that exposes EMISSARY's mark-accumulation
// dynamic (the paper's 100M-instruction windows sit far to the right
// of typical quick-evaluation horizons).
type HorizonResult struct {
	Policy  string
	Windows []float64 // IPC per consecutive window
}

// Horizon runs the baseline and the given policies on one benchmark,
// reporting IPC over `windows` consecutive windows of `windowInstrs`
// committed instructions each (no separate warm-up: the first window
// *is* the cold window, which is the point).
func Horizon(cfg Config, benchName string, policies []string, windows int, windowInstrs uint64) ([]HorizonResult, error) {
	bench, ok := workload.ProfileByName(benchName)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown benchmark %q", benchName)
	}
	if windows <= 0 {
		windows = 5
	}
	if windowInstrs == 0 {
		windowInstrs = cfg.Measure
	}
	all := append([]string{"TPLRU"}, policies...)
	// Each policy's long run is independent (own program synthesis,
	// hierarchy and core), so the sweep fans out across the pool; the
	// windows within one run stay sequential by nature.
	var progressMu sync.Mutex
	return runner.Map(cfg.ctx(), all, cfg.Parallelism,
		func(_ context.Context, _ int, text string) (HorizonResult, error) {
			spec, err := core.ParsePolicy(text)
			if err != nil {
				return HorizonResult{}, err
			}
			prog, err := workload.NewProgram(bench)
			if err != nil {
				return HorizonResult{}, err
			}
			eng := workload.NewEngine(prog)
			ccfg := cache.DefaultConfig(spec)
			ccfg.Seed = rng.Mix2(cfg.Seed, bench.Seed)
			hier := cache.NewHierarchy(ccfg)
			c, err := pipeline.NewCore(pipeline.DefaultConfig(), eng, hier, ccfg.Seed)
			if err != nil {
				return HorizonResult{}, err
			}
			r := HorizonResult{Policy: spec.String()}
			var lastCycles, lastInstrs uint64
			for w := 0; w < windows; w++ {
				if _, err := c.RunCommitted(windowInstrs); err != nil {
					return HorizonResult{}, err
				}
				cyc, ins := c.Cycle(), c.Committed()
				if cyc == lastCycles {
					break
				}
				r.Windows = append(r.Windows, float64(ins-lastInstrs)/float64(cyc-lastCycles))
				lastCycles, lastInstrs = cyc, ins
			}
			if cfg.Progress != nil {
				progressMu.Lock()
				fmt.Fprintf(cfg.Progress, "  done horizon %-20s\n", r.Policy)
				progressMu.Unlock()
			}
			return r, nil
		})
}

// WriteHorizon renders per-window IPC and the speedup-vs-baseline
// trajectory.
func WriteHorizon(w io.Writer, benchName string, results []HorizonResult, windowInstrs uint64) {
	fmt.Fprintf(w, "Horizon sweep: %s, IPC per %dM-instruction window\n",
		benchName, windowInstrs/1_000_000)
	if len(results) == 0 {
		return
	}
	header := []string{"policy"}
	for i := range results[0].Windows {
		header = append(header, fmt.Sprintf("w%d", i+1))
	}
	t := table{header: header}
	for _, r := range results {
		row := []string{r.Policy}
		for _, ipc := range r.Windows {
			row = append(row, f4(ipc))
		}
		t.addRow(row...)
	}
	t.render(w)

	base := results[0]
	fmt.Fprintln(w, "\nspeedup vs baseline per window:")
	t2 := table{header: header}
	for _, r := range results[1:] {
		row := []string{r.Policy}
		for i, ipc := range r.Windows {
			if i < len(base.Windows) && base.Windows[i] > 0 {
				row = append(row, pct(ipc/base.Windows[i]-1))
			}
		}
		t2.addRow(row...)
	}
	t2.render(w)
}
