// Package experiments regenerates every table and figure of the
// paper's evaluation (§5-§6): one function per artifact, each running
// the required set of simulations and rendering the same rows/series
// the paper reports. Absolute numbers differ from the paper (the
// substrate is a from-scratch simulator and the workloads are
// synthetic); the shapes — policy orderings, the N=8 sweet spot, the
// random-filter tradeoff, saturation behaviour — are the reproduction
// target.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"emissary/internal/core"
	"emissary/internal/runner"
	"emissary/internal/sim"
	"emissary/internal/stats"
	"emissary/internal/workload"
)

// Config scales and scopes an experiment run.
type Config struct {
	// Warmup and Measure are per-simulation instruction counts. The
	// paper uses 5M + 100M; EMISSARY's priority marks accumulate over
	// the whole run, so short measurements understate its gains.
	Warmup  uint64
	Measure uint64
	// Benchmarks defaults to the 13 paper workloads.
	Benchmarks []workload.Profile
	// Seed decorrelates stochastic components across repetitions.
	Seed uint64
	// Progress, when non-nil, receives one line per completed
	// simulation (completion order; lines never interleave).
	Progress io.Writer
	// Parallelism is the number of worker goroutines independent
	// simulations run across: 0 uses every available CPU
	// (GOMAXPROCS), 1 forces the sequential schedule. Every artifact
	// is bit-identical at any setting; only wall-clock changes.
	Parallelism int
	// Context, when non-nil, cancels in-flight simulations (SIGINT
	// plumbing for the CLIs); nil means context.Background().
	Context context.Context
	// Failure selects job-failure handling; the zero value is
	// runner.FailFast, which artifacts that need the whole matrix
	// should keep.
	Failure runner.FailurePolicy
	// Journal, when non-nil, checkpoints every completed simulation
	// and serves already-completed ones on a rerun. Artifacts share
	// jobs (every figure runs the TPLRU baseline), so one journal
	// dedupes across them too.
	Journal *runner.Journal
	// NoCycleSkip disables the core's event-driven fast-forward in
	// every simulation of the run (debugging escape hatch; results are
	// byte-identical either way, only wall-clock changes).
	NoCycleSkip bool
	// Retries is the number of extra attempts a transiently-failing
	// simulation gets (0 = fail on first error). Backoff is virtual-
	// time deterministic, so artifacts stay byte-identical at any
	// Parallelism.
	Retries int
	// JobTimeout, when positive, bounds each simulation attempt with
	// its own deadline; a tripped deadline is transient and composes
	// with Retries.
	JobTimeout time.Duration
	// JournalFailure selects how a checkpoint write failure is handled
	// (runner.JournalFatal fails the job; runner.JournalDegrade warns
	// and keeps the sweep alive).
	JournalFailure runner.JournalFailureMode
	// NoBatch disables batched lockstep execution of same-stream
	// simulations (diagnostic escape hatch; artifacts are byte-
	// identical either way, only wall-clock changes).
	NoBatch bool
	// Warn receives non-fatal degradation notices; nil discards them.
	Warn func(error)
}

// DefaultConfig returns a configuration sized to minutes, not hours.
func DefaultConfig() Config {
	return Config{
		Warmup:     2_000_000,
		Measure:    8_000_000,
		Benchmarks: workload.Profiles(),
		Seed:       1,
	}
}

func (c Config) benchmarks() []workload.Profile {
	if len(c.Benchmarks) > 0 {
		return c.Benchmarks
	}
	return workload.Profiles()
}

// fill applies the Config's default instruction counts and seed to one
// job. Every field of the returned options is fully determined, so a
// filled job can run on any worker at any time with the same outcome.
func (c Config) fill(opt sim.Options) sim.Options {
	if opt.WarmupInstrs == 0 {
		opt.WarmupInstrs = c.Warmup
	}
	if opt.MeasureInstrs == 0 {
		opt.MeasureInstrs = c.Measure
	}
	if opt.Seed == 0 {
		opt.Seed = c.Seed
	}
	if c.NoCycleSkip {
		opt.NoCycleSkip = true
	}
	return opt
}

// progress returns the serialized per-simulation progress callback, or
// nil when no Progress writer is configured.
func (c Config) progress() func(sim.Result) {
	if c.Progress == nil {
		return nil
	}
	return func(r sim.Result) {
		fmt.Fprintf(c.Progress, "  done %-16s %-20s IPC %.4f\n", r.Benchmark, r.Policy, r.IPC)
	}
}

// run executes one simulation, reporting progress.
func (c Config) run(opt sim.Options) (sim.Result, error) {
	res, err := sim.Run(c.fill(opt))
	if err != nil {
		return res, err
	}
	if p := c.progress(); p != nil {
		p(res)
	}
	return res, nil
}

// ctx returns the configured context, defaulting to Background.
func (c Config) ctx() context.Context {
	if c.Context != nil {
		return c.Context
	}
	return context.Background()
}

// runBatch executes a set of independent jobs across the worker pool,
// returning results in job order. Failure handling follows c.Failure
// (FailFast cancels the outstanding jobs on the first error), and a
// configured Journal checkpoints completions / resumes prior runs.
func (c Config) runBatch(jobs []sim.Options) ([]sim.Result, error) {
	filled := make([]sim.Options, len(jobs))
	for i, job := range jobs {
		filled[i] = c.fill(job)
	}
	return runner.RunSims(c.ctx(), filled, runner.SimsConfig{
		Workers:        c.Parallelism,
		Policy:         c.Failure,
		Journal:        c.Journal,
		Progress:       c.progress(),
		Retry:          runner.RetryPolicy{MaxAttempts: c.Retries + 1},
		JobTimeout:     c.JobTimeout,
		JournalFailure: c.JournalFailure,
		NoBatch:        c.NoBatch,
		Warn:           c.Warn,
	})
}

// baseOptions is the TPLRU + FDIP + NLP baseline the evaluations
// compare against.
func (c Config) baseOptions(bench workload.Profile) sim.Options {
	return sim.Options{
		Benchmark: bench,
		Policy:    core.Spec{}, // TPLRU recency baseline
		FDIP:      true,
		NLP:       true,
	}
}

// policyOptions is the baseline with a different L2 policy.
func (c Config) policyOptions(bench workload.Profile, spec core.Spec) sim.Options {
	o := c.baseOptions(bench)
	o.Policy = spec
	return o
}

// Cell is one (benchmark, policy) outcome relative to the baseline.
type Cell struct {
	Benchmark string
	Policy    string
	Speedup   float64 // fraction vs baseline
	EnergyRed float64 // fractional energy reduction vs baseline
	Result    sim.Result
}

// runPolicies runs the baseline plus each policy for every benchmark,
// all as one flat batch across the worker pool. Results are keyed
// [benchmark][policy-index]; baselines come back separately.
func (c Config) runPolicies(policies []core.Spec) (map[string]sim.Result, map[string][]Cell, error) {
	benches := c.benchmarks()
	stride := 1 + len(policies)
	jobs := make([]sim.Options, 0, len(benches)*stride)
	for _, bench := range benches {
		jobs = append(jobs, c.baseOptions(bench))
		for _, spec := range policies {
			jobs = append(jobs, c.policyOptions(bench, spec))
		}
	}
	results, err := c.runBatch(jobs)
	if err != nil {
		return nil, nil, err
	}
	baselines := make(map[string]sim.Result)
	cells := make(map[string][]Cell)
	for bi, bench := range benches {
		base := results[bi*stride]
		baselines[bench.Name] = base
		for pi, spec := range policies {
			res := results[bi*stride+1+pi]
			cells[bench.Name] = append(cells[bench.Name], Cell{
				Benchmark: bench.Name,
				Policy:    spec.String(),
				Speedup:   stats.Speedup(base.Cycles, res.Cycles),
				EnergyRed: stats.PercentChange(base.EnergyPJ, res.EnergyPJ) * -1,
				Result:    res,
			})
		}
	}
	return baselines, cells, nil
}

// geomeanOver computes the geomean speedup of policy index i across
// benchmarks. Benchmarks are visited in sorted-name order: float
// accumulation is order-sensitive in the last bits, and Go randomizes
// map iteration, so a fixed order is required for run-to-run
// byte-identical artifacts.
func geomeanOver(cells map[string][]Cell, idx int, pick func(Cell) float64) float64 {
	names := make([]string, 0, len(cells))
	for name := range cells {
		names = append(names, name)
	}
	sort.Strings(names)
	xs := make([]float64, 0, len(names))
	for _, name := range names {
		xs = append(xs, pick(cells[name][idx]))
	}
	return stats.Geomean(xs)
}

// table is a minimal text-table renderer.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) addRow(cols ...string) { t.rows = append(t.rows, cols) }

func (t *table) render(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cols []string) {
		parts := make([]string, len(cols))
		for i, c := range cols {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

func pct(f float64) string  { return fmt.Sprintf("%+.2f%%", f*100) }
func f2(f float64) string   { return fmt.Sprintf("%.2f", f) }
func f4(f float64) string   { return fmt.Sprintf("%.4f", f) }
func frac(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }
