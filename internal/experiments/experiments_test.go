package experiments

import (
	"bytes"
	"strings"
	"testing"

	"emissary/internal/workload"
)

// tinyConfig keeps experiment tests fast: two benchmarks, tiny windows.
func tinyConfig(t *testing.T, names ...string) Config {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Warmup = 50_000
	cfg.Measure = 200_000
	if len(names) == 0 {
		names = []string{"xapian"}
	}
	var ps []workload.Profile
	for _, n := range names {
		p, ok := workload.ProfileByName(n)
		if !ok {
			t.Fatalf("unknown benchmark %s", n)
		}
		ps = append(ps, p)
	}
	cfg.Benchmarks = ps
	return cfg
}

func TestFig1ShapesAndRender(t *testing.T) {
	cfg := tinyConfig(t)
	pts, err := Fig1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts[0].Policy != "M:1" || pts[0].Speedup != 0 {
		t.Errorf("baseline point = %+v", pts[0])
	}
	var buf bytes.Buffer
	WriteFig1(&buf, pts)
	if !strings.Contains(buf.String(), "P(8):S&E&R(1/32)") {
		t.Error("render missing policy row")
	}
}

func TestFig2FractionsSumToOne(t *testing.T) {
	rows, err := Fig2(tinyConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		sum := r.AccessFrac[0] + r.AccessFrac[1] + r.AccessFrac[2]
		if sum < 0.99 || sum > 1.01 {
			t.Errorf("%s access fractions sum to %v", r.Benchmark, sum)
		}
	}
	var buf bytes.Buffer
	WriteFig2(&buf, rows)
	if !strings.Contains(buf.String(), "average") {
		t.Error("render missing average row")
	}
}

func TestFig3And4(t *testing.T) {
	cfg := tinyConfig(t)
	rows3, err := Fig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rows3[0].L1I <= 0 {
		t.Error("zero L1I MPKI")
	}
	rows4, err := Fig4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rows4[0].FootprintMB <= 0 {
		t.Error("zero footprint")
	}
	var buf bytes.Buffer
	WriteFig3(&buf, rows3)
	WriteFig4(&buf, rows4)
	if buf.Len() == 0 {
		t.Error("renders produced nothing")
	}
}

func TestTable5GridShape(t *testing.T) {
	if testing.Short() {
		t.Skip("77 simulations (~8s, minutes under -race); skipped in -short")
	}
	// A 2x2 sub-grid via the internal machinery would not exercise the
	// real function; run the real one on one benchmark with the full
	// column set but verify only shape (values need long horizons).
	cfg := tinyConfig(t)
	r, err := Table5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Grid) != len(Table5Ns) {
		t.Fatalf("grid rows = %d", len(r.Grid))
	}
	for _, row := range r.Grid {
		if len(row) != len(Table5Columns) {
			t.Fatalf("grid cols = %d", len(row))
		}
	}
	var buf bytes.Buffer
	WriteTable5(&buf, r)
	if !strings.Contains(buf.String(), "#Best") {
		t.Error("render missing #Best")
	}
}

func TestFig5OmitsTpcc(t *testing.T) {
	cfg := tinyConfig(t, "tpcc")
	series, err := Fig5(cfg, []int{8})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 0 {
		t.Errorf("tpcc produced %d series, want 0 (omitted like the paper)", len(series))
	}
	cfg = tinyConfig(t, "xapian")
	series, err = Fig5(cfg, []int{8})
	if err != nil {
		t.Fatal(err)
	}
	// 3 P(N) families + 1 prior series.
	if len(series) != 4 {
		t.Errorf("got %d series, want 4", len(series))
	}
	for _, s := range series[:3] {
		if len(s.Points) != 2 { // N=0 baseline + N=8
			t.Errorf("family %s has %d points", s.Family, len(s.Points))
		}
		if s.Points[0].Speedup != 0 {
			t.Errorf("N=0 speedup = %v, want 0 (baseline)", s.Points[0].Speedup)
		}
	}
	var buf bytes.Buffer
	WriteFig5(&buf, series)
	if !strings.Contains(buf.String(), "P(N):S&E") {
		t.Error("render missing family")
	}
}

func TestFig6AndFig7(t *testing.T) {
	cfg := tinyConfig(t)
	rows, err := Fig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("fig6 rows = %d", len(rows))
	}
	r7, err := Fig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r7.GeomeanSpeedup) != len(Fig7Policies) {
		t.Errorf("fig7 geomeans = %d", len(r7.GeomeanSpeedup))
	}
	var buf bytes.Buffer
	WriteFig6(&buf, rows)
	WriteFig7(&buf, r7, []string{"xapian"})
	if !strings.Contains(buf.String(), "geomean") {
		t.Error("fig7 render missing geomean")
	}
}

func TestFig8CensusFractions(t *testing.T) {
	r, err := Fig8(tinyConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	for pi, d := range r.Dist {
		sum := 0.0
		for _, v := range d {
			sum += v
		}
		if sum < 0.99 || sum > 1.01 {
			t.Errorf("policy %s census sums to %v", r.Policies[pi], sum)
		}
	}
	var buf bytes.Buffer
	WriteFig8(&buf, r)
	if buf.Len() == 0 {
		t.Error("empty render")
	}
}

func TestIdealAndFDIP(t *testing.T) {
	cfg := tinyConfig(t, "tomcat")
	rows, captured, err := Ideal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// At test-sized windows the L2 may not yet overflow (no capacity
	// misses), making the ideal model a no-op; it must never lose.
	if rows[0].IdealSpeedup < 0 {
		t.Errorf("ideal speedup = %v, the unrealizable model can never lose", rows[0].IdealSpeedup)
	}
	_ = captured
	fd, g, err := FDIP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fd[0].Speedup <= 0 {
		t.Errorf("FDIP speedup = %v, decoupled fetch must win", fd[0].Speedup)
	}
	if g <= 0 {
		t.Errorf("FDIP geomean = %v", g)
	}
	var buf bytes.Buffer
	WriteIdeal(&buf, rows, captured)
	WriteFDIP(&buf, fd, g)
	if buf.Len() == 0 {
		t.Error("empty render")
	}
}

func TestResetExperiment(t *testing.T) {
	rows, err := Reset(tinyConfig(t), 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	var buf bytes.Buffer
	WriteReset(&buf, rows)
	if buf.Len() == 0 {
		t.Error("empty render")
	}
}

func TestTableRenderAlignment(t *testing.T) {
	tb := table{header: []string{"a", "bb"}}
	tb.addRow("xxx", "y")
	var buf bytes.Buffer
	tb.render(&buf)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Errorf("separator = %q", lines[1])
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}
	if len(cfg.benchmarks()) != 13 {
		t.Error("empty config should default to 13 benchmarks")
	}
}

func TestHorizonSweep(t *testing.T) {
	cfg := tinyConfig(t)
	rows, err := Horizon(cfg, "xapian", []string{"P(8):S&E"}, 3, 150_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want baseline + 1 policy", len(rows))
	}
	if len(rows[0].Windows) != 3 {
		t.Errorf("windows = %d", len(rows[0].Windows))
	}
	for _, r := range rows {
		for i, ipc := range r.Windows {
			if ipc <= 0 {
				t.Errorf("%s window %d IPC = %v", r.Policy, i, ipc)
			}
		}
	}
	var buf bytes.Buffer
	WriteHorizon(&buf, "xapian", rows, 150_000)
	if !strings.Contains(buf.String(), "speedup vs baseline") {
		t.Error("render missing speedup table")
	}
	if _, err := Horizon(cfg, "nope", nil, 1, 1000); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestCSVRenders(t *testing.T) {
	var buf bytes.Buffer
	if err := CSVFig3(&buf, []Fig3Row{{Benchmark: "x", L1I: 1.5, L1D: 2, L2I: 3, L2D: 4}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "x,1.5,2,3,4") {
		t.Errorf("fig3 csv = %q", buf.String())
	}
	buf.Reset()
	if err := CSVFig4(&buf, []Fig4Row{{Benchmark: "y", FootprintMB: 2.5}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "y,2.5") {
		t.Errorf("fig4 csv = %q", buf.String())
	}
	buf.Reset()
	grid := &Table5Result{}
	for range Table5Ns {
		grid.Grid = append(grid.Grid, make([]float64, len(Table5Columns)))
	}
	if err := CSVTable5(&buf, grid); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(buf.String(), "\n")
	if lines != len(Table5Ns)+1 {
		t.Errorf("table5 csv has %d lines", lines)
	}
	buf.Reset()
	if err := CSVFig2(&buf, []Fig2Row{{Benchmark: "z"}}); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := CSVHorizon(&buf, []HorizonResult{{Policy: "p", Windows: []float64{1, 2}}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "p,2,2") {
		t.Errorf("horizon csv = %q", buf.String())
	}
	buf.Reset()
	r7 := &Fig7Result{Cells: map[string][]Cell{"b": {{Policy: "P", Speedup: 0.01, EnergyRed: 0.002}}}}
	if err := CSVFig7(&buf, r7, []string{"b"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "b,P,0.01,0.002") {
		t.Errorf("fig7 csv = %q", buf.String())
	}
	buf.Reset()
	if err := CSVFig5(&buf, []Fig5Series{{Benchmark: "b", Family: "f", Points: []Fig5Point{{Label: "l", N: 8}}}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "b,f,l,8") {
		t.Errorf("fig5 csv = %q", buf.String())
	}
}
