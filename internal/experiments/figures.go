package experiments

import (
	"context"
	"fmt"
	"io"

	"emissary/internal/core"
	"emissary/internal/runner"
	"emissary/internal/sim"
	"emissary/internal/stats"
	"emissary/internal/workload"
)

// Fig1Point is one policy's outcome in the Figure 1 study.
type Fig1Point struct {
	Policy     string
	Speedup    float64
	L2IMPKI    float64
	DecodeRate float64
	L2DMPKI    float64
	IssueRate  float64
}

// Fig1 reproduces Figure 1: the overview study on tomcat with a 1MB
// 16-way true-LRU L2 and no next-line prefetchers, walking from LRU
// (M:1) through insertion-only bimodality (M:S) to the persistent
// EMISSARY treatments.
func Fig1(cfg Config) ([]Fig1Point, error) {
	bench, _ := workload.ProfileByName("tomcat")
	policies := []string{"M:1", "M:S", "P(8):S", "P(8):S&E", "P(8):S&E&R(1/32)"}
	jobs := make([]sim.Options, len(policies))
	for i, text := range policies {
		jobs[i] = sim.Options{
			Benchmark: bench,
			Policy:    core.MustParsePolicy(text),
			FDIP:      true,
			NLP:       false,
			TrueLRU:   true,
		}
	}
	results, err := cfg.runBatch(jobs)
	if err != nil {
		return nil, err
	}
	baseCycles := results[0].Cycles
	points := make([]Fig1Point, 0, len(policies))
	for i, text := range policies {
		res := results[i]
		points = append(points, Fig1Point{
			Policy:     text,
			Speedup:    stats.Speedup(baseCycles, res.Cycles),
			L2IMPKI:    res.L2IMPKI,
			DecodeRate: res.DecodeRate,
			L2DMPKI:    res.L2DMPKI,
			IssueRate:  res.IPC,
		})
	}
	return points, nil
}

// WriteFig1 renders the study.
func WriteFig1(w io.Writer, points []Fig1Point) {
	fmt.Fprintln(w, "Figure 1: tomcat, 1MB 16-way true-LRU L2, no prefetchers")
	t := table{header: []string{"policy", "speedup", "L2-I MPKI", "decode rate", "L2-D MPKI", "issue rate"}}
	for _, p := range points {
		t.addRow(p.Policy, pct(p.Speedup), f2(p.L2IMPKI), f4(p.DecodeRate), f2(p.L2DMPKI), f4(p.IssueRate))
	}
	t.render(w)
}

// Fig2Row is one benchmark's reuse-distance landscape (§3).
type Fig2Row struct {
	Benchmark string
	// AccessFrac is the Short/Mid/Long share of committed-path
	// instruction-line accesses (first bar).
	AccessFrac [3]float64
	// LongMissFrac is the fraction of L2 instruction misses caused by
	// Long-Reuse lines (second bar).
	LongMissFrac float64
	// StarvFrac is the Short/Mid/Long share of decode-starvation
	// cycles (third bar).
	StarvFrac [3]float64
}

// Fig2 reproduces Figure 2 on the TPLRU+FDIP baseline with reuse
// tracking enabled.
func Fig2(cfg Config) ([]Fig2Row, error) {
	benches := cfg.benchmarks()
	jobs := make([]sim.Options, len(benches))
	for i, bench := range benches {
		jobs[i] = cfg.baseOptions(bench)
		jobs[i].TrackReuse = true
	}
	results, err := cfg.runBatch(jobs)
	if err != nil {
		return nil, err
	}
	rows := make([]Fig2Row, 0, len(benches))
	for i, bench := range benches {
		res := results[i]
		row := Fig2Row{Benchmark: bench.Name}
		var accTot, missTot, starvTot float64
		for i := 0; i < 3; i++ {
			accTot += float64(res.AccessByBucket[i])
			missTot += float64(res.L2MissByBucket[i])
			starvTot += float64(res.StarvByBucket[i])
		}
		for i := 0; i < 3; i++ {
			if accTot > 0 {
				row.AccessFrac[i] = float64(res.AccessByBucket[i]) / accTot
			}
			if starvTot > 0 {
				row.StarvFrac[i] = float64(res.StarvByBucket[i]) / starvTot
			}
		}
		if missTot > 0 {
			row.LongMissFrac = float64(res.L2MissByBucket[2]) / missTot
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// WriteFig2 renders the reuse landscape.
func WriteFig2(w io.Writer, rows []Fig2Row) {
	fmt.Fprintln(w, "Figure 2: reuse-distance mix, L2-miss attribution, starvation attribution")
	t := table{header: []string{"benchmark", "acc short", "acc mid", "acc long", "L2 miss from long", "starv short", "starv mid", "starv long"}}
	var avg Fig2Row
	for _, r := range rows {
		t.addRow(r.Benchmark, frac(r.AccessFrac[0]), frac(r.AccessFrac[1]), frac(r.AccessFrac[2]),
			frac(r.LongMissFrac), frac(r.StarvFrac[0]), frac(r.StarvFrac[1]), frac(r.StarvFrac[2]))
		for i := 0; i < 3; i++ {
			avg.AccessFrac[i] += r.AccessFrac[i] / float64(len(rows))
			avg.StarvFrac[i] += r.StarvFrac[i] / float64(len(rows))
		}
		avg.LongMissFrac += r.LongMissFrac / float64(len(rows))
	}
	t.addRow("average", frac(avg.AccessFrac[0]), frac(avg.AccessFrac[1]), frac(avg.AccessFrac[2]),
		frac(avg.LongMissFrac), frac(avg.StarvFrac[0]), frac(avg.StarvFrac[1]), frac(avg.StarvFrac[2]))
	t.render(w)
}

// Fig3Row is one benchmark's baseline MPKI profile.
type Fig3Row struct {
	Benchmark string
	L1I, L1D  float64
	L2I, L2D  float64
}

// Fig3 reproduces Figure 3: baseline cache MPKIs.
func Fig3(cfg Config) ([]Fig3Row, error) {
	benches := cfg.benchmarks()
	jobs := make([]sim.Options, len(benches))
	for i, bench := range benches {
		jobs[i] = cfg.baseOptions(bench)
	}
	results, err := cfg.runBatch(jobs)
	if err != nil {
		return nil, err
	}
	rows := make([]Fig3Row, 0, len(benches))
	for i, bench := range benches {
		res := results[i]
		rows = append(rows, Fig3Row{
			Benchmark: bench.Name,
			L1I:       res.L1IMPKI, L1D: res.L1DMPKI,
			L2I: res.L2IMPKI, L2D: res.L2DMPKI,
		})
	}
	return rows, nil
}

// WriteFig3 renders the MPKI profile.
func WriteFig3(w io.Writer, rows []Fig3Row) {
	fmt.Fprintln(w, "Figure 3: baseline (TPLRU+FDIP) MPKI")
	t := table{header: []string{"benchmark", "L1I", "L1D", "L2 Inst", "L2 Data"}}
	var a Fig3Row
	for _, r := range rows {
		t.addRow(r.Benchmark, f2(r.L1I), f2(r.L1D), f2(r.L2I), f2(r.L2D))
		a.L1I += r.L1I / float64(len(rows))
		a.L1D += r.L1D / float64(len(rows))
		a.L2I += r.L2I / float64(len(rows))
		a.L2D += r.L2D / float64(len(rows))
	}
	t.addRow("average", f2(a.L1I), f2(a.L1D), f2(a.L2I), f2(a.L2D))
	t.render(w)
}

// Fig4Row is one benchmark's instruction footprint.
type Fig4Row struct {
	Benchmark   string
	FootprintMB float64
}

// Fig4 reproduces Figure 4 (no simulation needed: the synthesized
// program's code size is the footprint).
func Fig4(cfg Config) ([]Fig4Row, error) {
	return runner.Map(cfg.ctx(), cfg.benchmarks(), cfg.Parallelism,
		func(_ context.Context, _ int, bench workload.Profile) (Fig4Row, error) {
			prog, err := workload.NewProgram(bench)
			if err != nil {
				return Fig4Row{}, err
			}
			return Fig4Row{
				Benchmark:   bench.Name,
				FootprintMB: float64(prog.FootprintBytes()) / (1 << 20),
			}, nil
		})
}

// WriteFig4 renders the footprints.
func WriteFig4(w io.Writer, rows []Fig4Row) {
	fmt.Fprintln(w, "Figure 4: instruction footprint (MB)")
	t := table{header: []string{"benchmark", "footprint MB"}}
	avg := 0.0
	for _, r := range rows {
		t.addRow(r.Benchmark, f2(r.FootprintMB))
		avg += r.FootprintMB / float64(len(rows))
	}
	t.addRow("average", f2(avg))
	t.render(w)
}

// Table5Columns are the selection equations swept in Table 5.
var Table5Columns = []string{
	"S&E", "R(1/2)", "R(1/8)", "R(1/16)", "R(1/32)", "R(1/64)",
	"S&E&R(1/2)", "S&E&R(1/8)", "S&E&R(1/16)", "S&E&R(1/32)", "S&E&R(1/64)",
}

// Table5Ns are the protected-way limits swept in Table 5.
var Table5Ns = []int{2, 4, 6, 8, 10, 12, 14}

// Table5Result holds the geomean-speedup grid [N][column].
type Table5Result struct {
	Grid [][]float64
}

// Table5 reproduces the policy-parameterization sweep: geomean speedup
// across all benchmarks for P(N):<selection>.
func Table5(cfg Config) (*Table5Result, error) {
	specs := make([]core.Spec, 0, len(Table5Ns)*len(Table5Columns))
	for _, n := range Table5Ns {
		for _, col := range Table5Columns {
			specs = append(specs, core.MustParsePolicy(fmt.Sprintf("P(%d):%s", n, col)))
		}
	}
	_, cells, err := cfg.runPolicies(specs)
	if err != nil {
		return nil, err
	}
	out := &Table5Result{Grid: make([][]float64, len(Table5Ns))}
	for ni := range Table5Ns {
		out.Grid[ni] = make([]float64, len(Table5Columns))
		for ci := range Table5Columns {
			idx := ni*len(Table5Columns) + ci
			out.Grid[ni][ci] = geomeanOver(cells, idx, func(c Cell) float64 { return c.Speedup })
		}
	}
	return out, nil
}

// WriteTable5 renders the grid with the paper's #Best row and column.
func WriteTable5(w io.Writer, r *Table5Result) {
	fmt.Fprintln(w, "Table 5: geomean speedup (%) vs TPLRU+FDIP for P(N):<selection>")
	header := append([]string{"P(N)"}, Table5Columns...)
	header = append(header, "#Best")
	t := table{header: header}

	// Best-per-column and best-per-row bookkeeping.
	bestInCol := make([]float64, len(Table5Columns))
	for ci := range bestInCol {
		bestInCol[ci] = r.Grid[0][ci]
		for ni := range Table5Ns {
			if r.Grid[ni][ci] > bestInCol[ci] {
				bestInCol[ci] = r.Grid[ni][ci]
			}
		}
	}
	colBestCount := make([]int, len(Table5Columns))
	for ni, n := range Table5Ns {
		row := []string{fmt.Sprintf("%d", n)}
		rowBest := r.Grid[ni][0]
		for _, v := range r.Grid[ni] {
			if v > rowBest {
				rowBest = v
			}
		}
		nBest := 0
		for ci, v := range r.Grid[ni] {
			row = append(row, fmt.Sprintf("%+.3f", v*100))
			if v == bestInCol[ci] {
				nBest++
				colBestCount[ci]++
			}
			_ = rowBest
		}
		row = append(row, fmt.Sprintf("%d", nBest))
		t.addRow(row...)
	}
	last := []string{"#Best"}
	for _, n := range colBestCount {
		last = append(last, fmt.Sprintf("%d", n))
	}
	last = append(last, "-")
	t.addRow(last...)
	t.render(w)
}

// Fig5Point is one point in a Figure 5 series.
type Fig5Point struct {
	Label      string
	N          int
	Speedup    float64
	L2IMPKI    float64
	StarvDelta float64 // change in IQ-empty commit-path starvation vs baseline
}

// Fig5Series is one policy family on one benchmark.
type Fig5Series struct {
	Benchmark string
	Family    string
	Points    []Fig5Point
}

// Fig5Families are the P(N) families swept in Figure 5.
var Fig5Families = []string{"R(1/32)", "S&E", "S&E&R(1/32)"}

// Fig5Priors are the insertion-treatment comparison points.
var Fig5Priors = []string{"M:0", "M:R(1/32)", "M:S&E", "M:S&E&R(1/32)"}

// Fig5 reproduces the per-benchmark speedup-vs-MPKI and
// speedup-vs-starvation sweeps. tpcc is omitted like the paper (its
// L2 instruction MPKI is too low to be interesting).
func Fig5(cfg Config, ns []int) ([]Fig5Series, error) {
	if len(ns) == 0 {
		ns = []int{2, 4, 6, 8, 10, 12, 14}
	}
	nsNZ := make([]int, 0, len(ns))
	for _, n := range ns {
		if n != 0 { // N = 0 is the baseline by definition, not a run.
			nsNZ = append(nsNZ, n)
		}
	}
	var benches []workload.Profile
	for _, bench := range cfg.benchmarks() {
		if bench.Name != "tpcc" {
			benches = append(benches, bench)
		}
	}

	// Per-bench job layout: baseline, then each family's N sweep, then
	// the insertion-treatment priors.
	stride := 1 + len(Fig5Families)*len(nsNZ) + len(Fig5Priors)
	jobs := make([]sim.Options, 0, len(benches)*stride)
	for _, bench := range benches {
		jobs = append(jobs, cfg.baseOptions(bench))
		for _, fam := range Fig5Families {
			for _, n := range nsNZ {
				spec := core.MustParsePolicy(fmt.Sprintf("P(%d):%s", n, fam))
				jobs = append(jobs, cfg.policyOptions(bench, spec))
			}
		}
		for _, text := range Fig5Priors {
			jobs = append(jobs, cfg.policyOptions(bench, core.MustParsePolicy(text)))
		}
	}
	results, err := cfg.runBatch(jobs)
	if err != nil {
		return nil, err
	}

	var out []Fig5Series
	for bi, bench := range benches {
		base := results[bi*stride]
		mkPoint := func(label string, n int, res sim.Result) Fig5Point {
			return Fig5Point{
				Label:      label,
				N:          n,
				Speedup:    stats.Speedup(base.Cycles, res.Cycles),
				L2IMPKI:    res.L2IMPKI,
				StarvDelta: stats.PercentChange(float64(base.CommitStarvationIQE), float64(res.CommitStarvationIQE)),
			}
		}
		next := bi*stride + 1
		for _, fam := range Fig5Families {
			series := Fig5Series{Benchmark: bench.Name, Family: "P(N):" + fam}
			series.Points = append(series.Points, mkPoint("P(0):"+fam, 0, base))
			for _, n := range nsNZ {
				res := results[next]
				next++
				spec := core.MustParsePolicy(fmt.Sprintf("P(%d):%s", n, fam))
				series.Points = append(series.Points, mkPoint(spec.String(), n, res))
			}
			out = append(out, series)
		}
		prior := Fig5Series{Benchmark: bench.Name, Family: "prior"}
		for _, text := range Fig5Priors {
			res := results[next]
			next++
			prior.Points = append(prior.Points, mkPoint(text, -1, res))
		}
		out = append(out, prior)
	}
	return out, nil
}

// WriteFig5 renders the series.
func WriteFig5(w io.Writer, series []Fig5Series) {
	fmt.Fprintln(w, "Figure 5: speedup vs L2-I MPKI and vs change in IQ-empty starvation")
	cur := ""
	for _, s := range series {
		if s.Benchmark != cur {
			cur = s.Benchmark
			fmt.Fprintf(w, "\n%s\n", cur)
		}
		fmt.Fprintf(w, "  %s\n", s.Family)
		t := table{header: []string{"point", "speedup", "L2-I MPKI", "d starv(IQE)"}}
		for _, p := range s.Points {
			t.addRow(p.Label, pct(p.Speedup), f2(p.L2IMPKI), pct(p.StarvDelta))
		}
		t.render(w)
	}
}

// Fig6Row is one benchmark's stall-reduction outcome.
type Fig6Row struct {
	Benchmark string
	FE, BE    float64 // fractional reduction (positive = fewer stalls)
	Total     float64
}

// Fig6 reproduces the stall-cycle reduction of P(8):S&E&R(1/32).
func Fig6(cfg Config) ([]Fig6Row, error) {
	spec := core.MustParsePolicy("P(8):S&E&R(1/32)")
	benches := cfg.benchmarks()
	jobs := make([]sim.Options, 0, 2*len(benches))
	for _, bench := range benches {
		jobs = append(jobs, cfg.baseOptions(bench), cfg.policyOptions(bench, spec))
	}
	results, err := cfg.runBatch(jobs)
	if err != nil {
		return nil, err
	}
	rows := make([]Fig6Row, 0, len(benches))
	for bi, bench := range benches {
		base, res := results[2*bi], results[2*bi+1]
		red := func(b, t uint64) float64 {
			if b == 0 {
				return 0
			}
			return 1 - float64(t)/float64(b)
		}
		rows = append(rows, Fig6Row{
			Benchmark: bench.Name,
			FE:        red(base.FrontEndStalls, res.FrontEndStalls),
			BE:        red(base.BackEndStalls, res.BackEndStalls),
			Total:     red(base.TotalStalls, res.TotalStalls),
		})
	}
	return rows, nil
}

// WriteFig6 renders the stall reductions.
func WriteFig6(w io.Writer, rows []Fig6Row) {
	fmt.Fprintln(w, "Figure 6: reduction in commit-path stalls, P(8):S&E&R(1/32) vs baseline")
	t := table{header: []string{"benchmark", "FE stalls", "BE stalls", "total"}}
	var fe, be, tot float64
	for _, r := range rows {
		t.addRow(r.Benchmark, pct(r.FE), pct(r.BE), pct(r.Total))
		fe += r.FE / float64(len(rows))
		be += r.BE / float64(len(rows))
		tot += r.Total / float64(len(rows))
	}
	t.addRow("average", pct(fe), pct(be), pct(tot))
	t.render(w)
}

// Fig7Policies are the twelve techniques compared in Figure 7.
var Fig7Policies = []string{
	"M:0", "DCLIP", "SRRIP", "BRRIP", "DRRIP", "PDP",
	"M:R(1/32)", "M:S&E", "M:S&E&R(1/32)",
	"P(8):R(1/32)", "P(8):S&E", "P(8):S&E&R(1/32)",
}

// Fig7Result is the full comparison.
type Fig7Result struct {
	Policies []string
	// Cells[benchmark] aligns with Policies.
	Cells map[string][]Cell
	// GeomeanSpeedup and GeomeanEnergy align with Policies.
	GeomeanSpeedup []float64
	GeomeanEnergy  []float64
}

// Fig7 reproduces the headline comparison: speedup and energy
// reduction of every technique vs the TPLRU+FDIP baseline.
func Fig7(cfg Config) (*Fig7Result, error) {
	specs := make([]core.Spec, len(Fig7Policies))
	for i, p := range Fig7Policies {
		specs[i] = core.MustParsePolicy(p)
	}
	_, cells, err := cfg.runPolicies(specs)
	if err != nil {
		return nil, err
	}
	out := &Fig7Result{Policies: Fig7Policies, Cells: cells}
	for i := range specs {
		out.GeomeanSpeedup = append(out.GeomeanSpeedup,
			geomeanOver(cells, i, func(c Cell) float64 { return c.Speedup }))
		out.GeomeanEnergy = append(out.GeomeanEnergy,
			geomeanOver(cells, i, func(c Cell) float64 { return c.EnergyRed }))
	}
	return out, nil
}

// WriteFig7 renders speedups and energy reductions.
func WriteFig7(w io.Writer, r *Fig7Result, benchNames []string) {
	fmt.Fprintln(w, "Figure 7: speedup vs TPLRU+FDIP baseline")
	header := append([]string{"benchmark"}, r.Policies...)
	t := table{header: header}
	for _, b := range benchNames {
		row := []string{b}
		for _, c := range r.Cells[b] {
			row = append(row, pct(c.Speedup))
		}
		t.addRow(row...)
	}
	g := []string{"geomean"}
	for _, v := range r.GeomeanSpeedup {
		g = append(g, pct(v))
	}
	t.addRow(g...)
	t.render(w)

	fmt.Fprintln(w, "\nFigure 7 (lower): energy reduction vs TPLRU+FDIP baseline")
	t2 := table{header: header}
	for _, b := range benchNames {
		row := []string{b}
		for _, c := range r.Cells[b] {
			row = append(row, pct(c.EnergyRed))
		}
		t2.addRow(row...)
	}
	g2 := []string{"geomean"}
	for _, v := range r.GeomeanEnergy {
		g2 = append(g2, pct(v))
	}
	t2.addRow(g2...)
	t2.render(w)
}

// Fig8Result is the average distribution of per-set high-priority
// line counts for the two highlighted policies.
type Fig8Result struct {
	// Dist[policy][count] = fraction of sets holding `count`
	// high-priority lines, averaged across benchmarks.
	Policies []string
	Dist     [][]float64
}

// Fig8 reproduces the set-saturation census (§6).
func Fig8(cfg Config) (*Fig8Result, error) {
	policies := []string{"P(8):S&E", "P(8):S&E&R(1/32)"}
	out := &Fig8Result{Policies: policies}
	benches := cfg.benchmarks()
	jobs := make([]sim.Options, 0, len(policies)*len(benches))
	for _, text := range policies {
		spec := core.MustParsePolicy(text)
		for _, bench := range benches {
			jobs = append(jobs, cfg.policyOptions(bench, spec))
		}
	}
	results, err := cfg.runBatch(jobs)
	if err != nil {
		return nil, err
	}
	for pi := range policies {
		var dist []float64
		for bi := range benches {
			res := results[pi*len(benches)+bi]
			census := res.PriorityCensus
			if dist == nil {
				dist = make([]float64, len(census))
			}
			total := 0
			for _, n := range census {
				total += n
			}
			for i, n := range census {
				if total > 0 && i < len(dist) {
					dist[i] += float64(n) / float64(total) / float64(len(cfg.benchmarks()))
				}
			}
		}
		out.Dist = append(out.Dist, dist)
	}
	return out, nil
}

// WriteFig8 renders the census.
func WriteFig8(w io.Writer, r *Fig8Result) {
	fmt.Fprintln(w, "Figure 8: distribution of high-priority lines per L2 set (avg over benchmarks)")
	t := table{header: []string{"lines/set", r.Policies[0], r.Policies[1]}}
	max := 0
	for _, d := range r.Dist {
		for i, v := range d {
			if v > 0.0005 && i > max {
				max = i
			}
		}
	}
	for i := 0; i <= max; i++ {
		row := []string{fmt.Sprintf("%d", i)}
		for _, d := range r.Dist {
			v := 0.0
			if i < len(d) {
				v = d[i]
			}
			row = append(row, frac(v))
		}
		t.addRow(row...)
	}
	t.render(w)
}

// IdealRow is one benchmark's zero-cycle-miss headroom.
type IdealRow struct {
	Benchmark    string
	IdealSpeedup float64
	EmisSpeedup  float64
}

// Ideal reproduces the §5.6 contextualization: the unrealizable
// zero-miss-latency L2-I model vs EMISSARY's capture of that headroom.
func Ideal(cfg Config) ([]IdealRow, float64, error) {
	spec := core.MustParsePolicy("P(8):S&E&R(1/32)")
	benches := cfg.benchmarks()
	jobs := make([]sim.Options, 0, 3*len(benches))
	for _, bench := range benches {
		idealOpt := cfg.baseOptions(bench)
		idealOpt.IdealL2I = true
		jobs = append(jobs, cfg.baseOptions(bench), idealOpt, cfg.policyOptions(bench, spec))
	}
	results, err := cfg.runBatch(jobs)
	if err != nil {
		return nil, 0, err
	}
	rows := make([]IdealRow, 0, len(benches))
	var idealXs, emisXs []float64
	for bi, bench := range benches {
		base, ideal, emis := results[3*bi], results[3*bi+1], results[3*bi+2]
		row := IdealRow{
			Benchmark:    bench.Name,
			IdealSpeedup: stats.Speedup(base.Cycles, ideal.Cycles),
			EmisSpeedup:  stats.Speedup(base.Cycles, emis.Cycles),
		}
		rows = append(rows, row)
		idealXs = append(idealXs, row.IdealSpeedup)
		emisXs = append(emisXs, row.EmisSpeedup)
	}
	gi, ge := stats.Geomean(idealXs), stats.Geomean(emisXs)
	captured := 0.0
	if gi != 0 {
		captured = ge / gi
	}
	return rows, captured, nil
}

// WriteIdeal renders the headroom analysis.
func WriteIdeal(w io.Writer, rows []IdealRow, captured float64) {
	fmt.Fprintln(w, "Ideal L2-I (zero-cycle capacity/conflict miss) headroom (section 5.6)")
	t := table{header: []string{"benchmark", "ideal speedup", "EMISSARY speedup"}}
	for _, r := range rows {
		t.addRow(r.Benchmark, pct(r.IdealSpeedup), pct(r.EmisSpeedup))
	}
	t.render(w)
	fmt.Fprintf(w, "EMISSARY captures %.1f%% of the unrealizable-ideal geomean speedup\n", captured*100)
}

// FDIPRow is one benchmark's FDIP-vs-no-FDIP outcome.
type FDIPRow struct {
	Benchmark string
	Speedup   float64
}

// FDIP reproduces §5.2's claim that the decoupled front-end alone is a
// large win (paper: 33.1% geomean).
func FDIP(cfg Config) ([]FDIPRow, float64, error) {
	benches := cfg.benchmarks()
	jobs := make([]sim.Options, 0, 2*len(benches))
	for _, bench := range benches {
		off := cfg.baseOptions(bench)
		off.FDIP = false
		jobs = append(jobs, off, cfg.baseOptions(bench))
	}
	results, err := cfg.runBatch(jobs)
	if err != nil {
		return nil, 0, err
	}
	rows := make([]FDIPRow, 0, len(benches))
	var xs []float64
	for bi, bench := range benches {
		noFdip, on := results[2*bi], results[2*bi+1]
		s := stats.Speedup(noFdip.Cycles, on.Cycles)
		rows = append(rows, FDIPRow{Benchmark: bench.Name, Speedup: s})
		xs = append(xs, s)
	}
	return rows, stats.Geomean(xs), nil
}

// WriteFDIP renders the comparison.
func WriteFDIP(w io.Writer, rows []FDIPRow, geomean float64) {
	fmt.Fprintln(w, "FDIP vs no-FDIP front end (section 5.2)")
	t := table{header: []string{"benchmark", "FDIP speedup"}}
	for _, r := range rows {
		t.addRow(r.Benchmark, pct(r.Speedup))
	}
	t.addRow("geomean", pct(geomean))
	t.render(w)
}

// ResetRow compares EMISSARY with and without periodic P-bit resets.
type ResetRow struct {
	Benchmark string
	NoReset   float64
	WithReset float64
}

// Reset reproduces §6's observation that periodically clearing all P
// bits has negligible impact.
func Reset(cfg Config, interval uint64) ([]ResetRow, error) {
	if interval == 0 {
		interval = (cfg.Warmup + cfg.Measure) / 8
	}
	spec := core.MustParsePolicy("P(8):S&E&R(1/32)")
	benches := cfg.benchmarks()
	jobs := make([]sim.Options, 0, 3*len(benches))
	for _, bench := range benches {
		withReset := cfg.policyOptions(bench, spec)
		withReset.PriorityResetInterval = interval
		jobs = append(jobs, cfg.baseOptions(bench), cfg.policyOptions(bench, spec), withReset)
	}
	results, err := cfg.runBatch(jobs)
	if err != nil {
		return nil, err
	}
	rows := make([]ResetRow, 0, len(benches))
	for bi, bench := range benches {
		base, plain, reset := results[3*bi], results[3*bi+1], results[3*bi+2]
		rows = append(rows, ResetRow{
			Benchmark: bench.Name,
			NoReset:   stats.Speedup(base.Cycles, plain.Cycles),
			WithReset: stats.Speedup(base.Cycles, reset.Cycles),
		})
	}
	return rows, nil
}

// WriteReset renders the comparison.
func WriteReset(w io.Writer, rows []ResetRow) {
	fmt.Fprintln(w, "P-bit periodic reset impact (section 6)")
	t := table{header: []string{"benchmark", "no reset", "with reset"}}
	for _, r := range rows {
		t.addRow(r.Benchmark, pct(r.NoReset), pct(r.WithReset))
	}
	t.render(w)
}
