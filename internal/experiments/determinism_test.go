package experiments

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"emissary/internal/core"
)

// renderSweep runs the core experiment path (baseline + policies over
// benchmarks through the worker pool) at the given parallelism and
// renders every byte an artifact would contain: per-cell CSV, the
// geomean aggregates, and the baseline cycle counts.
func renderSweep(t *testing.T, parallelism int) []byte {
	t.Helper()
	cfg := tinyConfig(t, "xapian", "web-search")
	cfg.Parallelism = parallelism
	specs := []core.Spec{
		core.MustParsePolicy("P(8):S&E&R(1/32)"),
		core.MustParsePolicy("M:0"),
		core.MustParsePolicy("DRRIP"),
	}
	baselines, cells, err := cfg.runPolicies(specs)
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"xapian", "web-search"}
	polNames := make([]string, len(specs))
	for i, s := range specs {
		polNames[i] = s.String()
	}
	var buf bytes.Buffer
	r := &Fig7Result{Policies: polNames, Cells: cells}
	for i := range specs {
		r.GeomeanSpeedup = append(r.GeomeanSpeedup,
			geomeanOver(cells, i, func(c Cell) float64 { return c.Speedup }))
		r.GeomeanEnergy = append(r.GeomeanEnergy,
			geomeanOver(cells, i, func(c Cell) float64 { return c.EnergyRed }))
	}
	if err := CSVFig7(&buf, r, names); err != nil {
		t.Fatal(err)
	}
	WriteFig7(&buf, r, names)
	for _, name := range names {
		fmt.Fprintf(&buf, "baseline %s cycles %d energy %v\n",
			name, baselines[name].Cycles, baselines[name].EnergyPJ)
	}
	return buf.Bytes()
}

// TestParallelArtifactsAreByteIdentical is the determinism regression
// test for the work pool: the same experiment rendered at
// Parallelism 1 and Parallelism 8 must produce byte-identical output,
// and repeating the parallel run must be stable run to run.
func TestParallelArtifactsAreByteIdentical(t *testing.T) {
	seq := renderSweep(t, 1)
	par := renderSweep(t, 8)
	if !bytes.Equal(seq, par) {
		t.Errorf("Parallelism 1 vs 8 output differs:\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par)
	}
	again := renderSweep(t, 8)
	if !bytes.Equal(par, again) {
		t.Error("two Parallelism 8 runs differ (scheduling leaked into results)")
	}
}

// TestHorizonParallelMatchesSequential covers the one generator that
// does not go through runBatch (it drives cores window by window).
func TestHorizonParallelMatchesSequential(t *testing.T) {
	run := func(parallelism int) []HorizonResult {
		cfg := tinyConfig(t)
		cfg.Parallelism = parallelism
		rows, err := Horizon(cfg, "xapian", []string{"P(8):S&E", "DRRIP"}, 2, 100_000)
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	seq, par := run(1), run(4)
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("horizon results differ:\nseq %+v\npar %+v", seq, par)
	}
}

// TestFig1ParallelMatchesSequential covers the true-LRU / no-NLP
// configuration path under the pool.
func TestFig1ParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("five tomcat simulations; skipped in -short")
	}
	run := func(parallelism int) []Fig1Point {
		cfg := tinyConfig(t)
		cfg.Parallelism = parallelism
		pts, err := Fig1(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return pts
	}
	seq, par := run(1), run(8)
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("fig1 points differ:\nseq %+v\npar %+v", seq, par)
	}
}

// TestProgressLinesNeverInterleave checks the serialized progress
// contract: with many workers, every progress line arrives whole.
func TestProgressLinesNeverInterleave(t *testing.T) {
	cfg := tinyConfig(t, "xapian", "web-search")
	cfg.Parallelism = 8
	var buf bytes.Buffer
	cfg.Progress = &buf
	if _, err := Fig3(cfg); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimRight(buf.Bytes(), "\n"), []byte("\n"))
	if len(lines) != 2 {
		t.Fatalf("got %d progress lines, want 2: %q", len(lines), buf.String())
	}
	for _, line := range lines {
		if !bytes.HasPrefix(line, []byte("  done ")) || !bytes.Contains(line, []byte("IPC")) {
			t.Errorf("malformed progress line %q", line)
		}
	}
}
