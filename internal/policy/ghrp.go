package policy

import (
	"math/bits"

	"emissary/internal/rng"
)

// GHRP implements a compact variant of Global History Reuse Prediction
// (Ajorpaz et al., ISCA 2018), the instruction-cache dead-block policy
// the paper discusses in §7.2. Each resident line carries a signature
// formed from its address and the access history at its last touch; a
// table of saturating counters learns, per signature, whether lines
// die (are evicted without another reference) or live. Eviction
// prefers predicted-dead lines, falling back to recency.
//
// Simplifications vs the original: signatures hash line addresses
// rather than access PCs (the simulated L2 sees line addresses), and
// the bypass decision is omitted (the inclusive hierarchy modeled here
// cannot bypass L2 fills; the paper's own EMISSARY experiments found
// bypass unhelpful for these workloads).
type GHRP struct {
	name       string
	sets, ways int

	history uint64 // global access-history register

	sigs    []uint32 // per-line signature at last touch
	touched []bool   // referenced since fill

	dead     []uint8 // 2-bit dead-on-signature counters
	deadMask uint32

	stamps *TrueLRU
}

const (
	ghrpTableLg = 12
	ghrpDeadMax = 3
	// ghrpDeadThreshold is the counter value at which a signature is
	// predicted dead.
	ghrpDeadThreshold = 2
)

// NewGHRP builds the dead-block-prediction policy.
func NewGHRP(sets, ways int) *GHRP {
	checkGeometry(sets, ways)
	return &GHRP{
		name:     "GHRP",
		sets:     sets,
		ways:     ways,
		sigs:     make([]uint32, sets*ways),
		touched:  make([]bool, sets*ways),
		dead:     make([]uint8, 1<<ghrpTableLg),
		deadMask: 1<<ghrpTableLg - 1,
		stamps:   NewTrueLRU(sets, ways),
	}
}

func (p *GHRP) idx(set, way int) int { return set*p.ways + way }

// signature mixes the line's identity with the access history.
func (p *GHRP) signature(set, way int) uint32 {
	return uint32(rng.Mix2(uint64(p.idx(set, way))<<20|uint64(set), p.history)) & p.deadMask
}

func (p *GHRP) advanceHistory(set, way int) {
	p.history = p.history<<3 ^ p.history>>41 ^ uint64(set*p.ways+way)*0x9e3779b9
}

// trainDead bumps a signature's dead counter.
func (p *GHRP) trainDead(sig uint32) {
	if p.dead[sig] < ghrpDeadMax {
		p.dead[sig]++
	}
}

// trainLive decays a signature's dead counter.
func (p *GHRP) trainLive(sig uint32) {
	if p.dead[sig] > 0 {
		p.dead[sig]--
	}
}

// Name implements Policy.
func (p *GHRP) Name() string { return p.name }

// OnHit implements Policy.
func (p *GHRP) OnHit(set, way int, view SetView) {
	i := p.idx(set, way)
	// The previous signature proved live.
	p.trainLive(p.sigs[i])
	p.advanceHistory(set, way)
	p.sigs[i] = p.signature(set, way)
	p.touched[i] = true
	p.stamps.Touch(set, way)
}

// OnFill implements Policy.
func (p *GHRP) OnFill(set, way int, view SetView) {
	i := p.idx(set, way)
	p.advanceHistory(set, way)
	p.sigs[i] = p.signature(set, way)
	p.touched[i] = false
	p.stamps.Touch(set, way)
}

// DeadMask returns the mask of ways within valid whose current
// signature is predicted dead (exported for the EMISSARY+GHRP hybrid).
func (p *GHRP) DeadMask(set int, valid uint32) uint32 {
	var m uint32
	base := set * p.ways
	for v := valid & maskAll(p.ways); v != 0; v &= v - 1 {
		w := bits.TrailingZeros32(v)
		if p.dead[p.sigs[base+w]] >= ghrpDeadThreshold {
			m |= 1 << uint(w)
		}
	}
	return m
}

// VictimAmong picks a victim restricted to mask (a subset of the
// set's valid ways): predicted-dead lines first, else the least
// recently used; -1 if the mask is empty. Exported for the
// EMISSARY+GHRP hybrid.
//
//vet:hot
func (p *GHRP) VictimAmong(set int, mask uint32) int {
	if mask == 0 {
		return -1
	}
	if deadMask := p.DeadMask(set, mask) & mask; deadMask != 0 {
		if v := p.stamps.VictimAmong(set, deadMask); v >= 0 {
			return v
		}
	}
	return p.stamps.VictimAmong(set, mask)
}

// Victim implements Policy.
//
//vet:hot
func (p *GHRP) Victim(set int, view SetView, incoming LineView) int {
	v := p.VictimAmong(set, view.Valid)
	if v < 0 {
		return 0
	}
	return v
}

// OnInvalidate implements Policy: an eviction of an untouched line is
// the dead-block training event.
func (p *GHRP) OnInvalidate(set, way int) {
	i := p.idx(set, way)
	if !p.touched[i] {
		p.trainDead(p.sigs[i])
	} else {
		p.trainLive(p.sigs[i])
	}
}

// OnPriorityUpdate implements Policy.
func (p *GHRP) OnPriorityUpdate(set, way int, view SetView) {}

// ResetState implements Resetter: history register, per-line
// signatures and touch bits, the dead-counter table, and the recency
// stamps all return to their post-construction zeros. The seed is
// ignored (GHRP is deterministic).
//
//vet:hot
func (p *GHRP) ResetState(seed uint64) {
	p.history = 0
	clear(p.sigs)
	clear(p.touched)
	clear(p.dead)
	p.stamps.ResetState(seed)
}
