package policy

import "fmt"

// TPLRU is a tree pseudo-LRU recency base (the hardware-realistic
// base used for all of the paper's main evaluations). It requires a
// power-of-two way count and keeps ways-1 tree bits per set.
//
// Convention: each internal node's bit gives the direction (0 = left,
// 1 = right) toward the pseudo-LRU victim. Touching a way flips the
// bits on its root path to point away from it; MakeLRU points them at
// it.
type TPLRU struct {
	sets, ways int
	depth      uint
	bits       []uint16 // one word of tree bits per set, node i's bit at 1<<i (i from 1)
}

// NewTPLRU returns a tree-PLRU recency base. Ways must be a power of
// two between 2 and 16.
func NewTPLRU(sets, ways int) *TPLRU {
	checkGeometry(sets, ways)
	if ways&(ways-1) != 0 || ways < 2 || ways > 16 {
		panic(fmt.Sprintf("policy: TPLRU requires power-of-two ways in [2,16], got %d", ways))
	}
	d := uint(0)
	for 1<<d < ways {
		d++
	}
	return &TPLRU{sets: sets, ways: ways, depth: d, bits: make([]uint16, sets)}
}

func (t *TPLRU) getBit(set, node int) int {
	return int(t.bits[set]>>uint(node)) & 1
}

func (t *TPLRU) setBit(set, node, v int) {
	if v != 0 {
		t.bits[set] |= 1 << uint(node)
	} else {
		t.bits[set] &^= 1 << uint(node)
	}
}

// pathSet walks from the root toward way, setting each node's bit to
// point toward the way when toward is true, away otherwise.
func (t *TPLRU) pathSet(set, way int, toward bool) {
	node := 1
	for level := int(t.depth) - 1; level >= 0; level-- {
		dir := (way >> uint(level)) & 1
		if toward {
			t.setBit(set, node, dir)
		} else {
			t.setBit(set, node, 1-dir)
		}
		node = node*2 + dir
	}
}

// Touch implements RecencyBase.
func (t *TPLRU) Touch(set, way int) { t.pathSet(set, way, false) }

// MakeLRU implements RecencyBase.
func (t *TPLRU) MakeLRU(set, way int) { t.pathSet(set, way, true) }

// Victim implements RecencyBase.
//
//vet:hot
func (t *TPLRU) Victim(set int) int {
	node := 1
	for node < t.ways {
		node = node*2 + t.getBit(set, node)
	}
	return node - t.ways
}

// subtreeMask returns the mask of leaf ways underneath heap node.
func (t *TPLRU) subtreeMask(node int) uint32 {
	// Node at heap index n with leaves in [n*2^k - ways, ...] — compute
	// by walking down: the subtree rooted at n spans ways
	// [ (n - 2^level) << (depth-level), ... ) where level = floor(log2 n).
	level := 0
	for 1<<uint(level+1) <= node {
		level++
	}
	span := t.ways >> uint(level)
	start := (node - 1<<uint(level)) * span
	return ((1 << uint(span)) - 1) << uint(start)
}

// VictimAmong implements RecencyBase. The walk follows the tree bits
// but refuses to descend into subtrees containing no masked way; the
// result is the tree-PLRU victim restricted to the mask (this is the
// "skipping any lines that do not match the priority criteria" walk
// from §4.2 of the paper).
//
//vet:hot
func (t *TPLRU) VictimAmong(set int, mask uint32) int {
	mask &= maskAll(t.ways)
	if mask == 0 {
		return -1
	}
	node := 1
	for node < t.ways {
		b := t.getBit(set, node)
		preferred := node*2 + b
		other := node*2 + (1 - b)
		if t.subtreeMask(preferred)&mask != 0 {
			node = preferred
		} else {
			node = other
		}
	}
	way := node - t.ways
	if mask&(1<<uint(way)) == 0 {
		// The walk can only land outside the mask if the mask was
		// empty, which we excluded above.
		panic("policy: TPLRU VictimAmong walk escaped mask")
	}
	return way
}

// ResetState implements Resetter: every tree bit returns to its
// post-construction zero value. The seed is ignored.
//
//vet:hot
func (t *TPLRU) ResetState(seed uint64) {
	clear(t.bits)
}

// Bits exposes the raw tree bits of a set for tests.
func (t *TPLRU) Bits(set int) uint16 { return t.bits[set] }
