package policy

import "math/bits"

// PDP implements a static Protecting Distance Policy (Duong et al.,
// MICRO 2012). Every line carries a remaining-protecting-distance
// counter initialised to the protecting distance PD on insertion and
// on every hit; every access to a set ages the other lines. A line is
// protected while its counter is non-zero.
//
// Simplification vs the original: the original bypasses the incoming
// line when every resident line is protected; bypassing an L2 fill
// would break the inclusive hierarchy modeled here (and the paper
// itself reports bypass was not useful for these workloads), so when
// all lines are protected PDP evicts the line closest to expiry.
// The protecting distance is static (the paper's Table 3 lists
// "Static protective distance policy").
type PDP struct {
	name       string
	sets, ways int
	pd         int
	remaining  []uint16
	stamps     *TrueLRU // tie-break among expired lines
}

// DefaultProtectingDistance is the static PD used when none is given;
// chosen near the per-set access count that covers the Mid-Reuse
// bucket boundary for a 16-way set.
const DefaultProtectingDistance = 64

// NewPDP builds a static PDP policy with protecting distance pd.
func NewPDP(sets, ways, pd int) *PDP {
	checkGeometry(sets, ways)
	if pd <= 0 {
		pd = DefaultProtectingDistance
	}
	return &PDP{
		name:      "PDP",
		sets:      sets,
		ways:      ways,
		pd:        pd,
		remaining: make([]uint16, sets*ways),
		stamps:    NewTrueLRU(sets, ways),
	}
}

func (p *PDP) idx(set, way int) int { return set*p.ways + way }

// age decrements every other valid line's remaining distance,
// walking the set's precomputed valid mask.
func (p *PDP) age(set, except int, valid uint32) {
	base := set * p.ways
	for m := valid &^ (1 << uint(except)); m != 0; m &= m - 1 {
		w := bits.TrailingZeros32(m)
		if p.remaining[base+w] > 0 {
			p.remaining[base+w]--
		}
	}
}

// Name implements Policy.
func (p *PDP) Name() string { return p.name }

// OnHit implements Policy.
func (p *PDP) OnHit(set, way int, view SetView) {
	p.remaining[p.idx(set, way)] = uint16(p.pd)
	p.stamps.Touch(set, way)
	p.age(set, way, view.Valid)
}

// OnFill implements Policy.
func (p *PDP) OnFill(set, way int, view SetView) {
	p.remaining[p.idx(set, way)] = uint16(p.pd)
	p.stamps.Touch(set, way)
	p.age(set, way, view.Valid)
}

// Victim implements Policy: prefer the least-recently-used expired
// line; if all lines remain protected, evict the one closest to
// expiry (ties to LRU).
//
//vet:hot
func (p *PDP) Victim(set int, view SetView, incoming LineView) int {
	base := set * p.ways
	var expired uint32
	for w := 0; w < p.ways; w++ {
		if p.remaining[base+w] == 0 {
			expired |= 1 << uint(w)
		}
	}
	if expired != 0 {
		if v := p.stamps.VictimAmong(set, expired); v >= 0 {
			return v
		}
	}
	best, bestRem := 0, p.remaining[base]
	for w := 1; w < p.ways; w++ {
		if r := p.remaining[base+w]; r < bestRem {
			best, bestRem = w, r
		}
	}
	return best
}

// OnInvalidate implements Policy.
func (p *PDP) OnInvalidate(set, way int) {
	p.remaining[p.idx(set, way)] = 0
}

// OnPriorityUpdate implements Policy.
func (p *PDP) OnPriorityUpdate(set, way int, view SetView) {}

// ResetState implements Resetter: all protecting-distance counters and
// the tie-break stamps return to their post-construction zeros. The
// seed is ignored (PDP is deterministic).
//
//vet:hot
func (p *PDP) ResetState(seed uint64) {
	clear(p.remaining)
	p.stamps.ResetState(seed)
}
