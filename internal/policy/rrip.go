package policy

import (
	"emissary/internal/rng"
)

// RRIP mode constants.
type rripMode int

const (
	modeSRRIP rripMode = iota
	modeBRRIP
	modeDRRIP
)

const (
	maxRRPV  = 3 // 2-bit re-reference prediction values
	longRRPV = maxRRPV - 1
	// brripProb is the probability BRRIP inserts with a long (rather
	// than distant) re-reference prediction; the paper uses 1/32.
	brripProb = 1.0 / 32.0
	// pselMax is the saturation cap of DRRIP's policy-selection counter.
	pselMax = 1023
	// duelingPeriod spaces leader sets; 32 leader sets per policy in a
	// 1024-set cache, matching the paper's description (§5.5).
	duelingPeriod = 32
)

// RRIP implements SRRIP, BRRIP and DRRIP (Jaleel et al., ISCA 2010)
// with 2-bit RRPVs, hit-priority promotion, and for DRRIP 32+32
// set-dueling leader sets with a 10-bit PSEL counter.
type RRIP struct {
	name       string
	sets, ways int
	rrpv       []uint8
	mode       rripMode
	r          *rng.Xoshiro256
	psel       int
	// seeded records whether the constructor received a caller seed
	// (SRRIP never draws randomness and is built without one), so
	// ResetState can re-derive the exact construction-time RNG state.
	seeded bool
}

// NewSRRIP returns a static RRIP policy.
func NewSRRIP(sets, ways int) *RRIP { return newRRIP("SRRIP", sets, ways, modeSRRIP, 0, false) }

// NewBRRIP returns a bimodal RRIP policy seeded for its 1/32 choice.
func NewBRRIP(sets, ways int, seed uint64) *RRIP {
	return newRRIP("BRRIP", sets, ways, modeBRRIP, seed, true)
}

// NewDRRIP returns a dynamic set-dueling RRIP policy.
func NewDRRIP(sets, ways int, seed uint64) *RRIP {
	return newRRIP("DRRIP", sets, ways, modeDRRIP, seed, true)
}

func newRRIP(name string, sets, ways int, mode rripMode, seed uint64, seeded bool) *RRIP {
	checkGeometry(sets, ways)
	p := &RRIP{
		name:   name,
		sets:   sets,
		ways:   ways,
		rrpv:   make([]uint8, sets*ways),
		mode:   mode,
		r:      rng.NewXoshiro256(rng.Mix2(seed, 0xbadc0de)),
		psel:   pselMax / 2,
		seeded: seeded,
	}
	// Start every slot distant so cold fills behave like insertions.
	for i := range p.rrpv {
		p.rrpv[i] = maxRRPV
	}
	return p
}

func (p *RRIP) idx(set, way int) int { return set*p.ways + way }

// leaderKind classifies a set for DRRIP dueling: 0 = follower,
// 1 = SRRIP leader, 2 = BRRIP leader.
func (p *RRIP) leaderKind(set int) int {
	switch set % duelingPeriod {
	case 0:
		return 1
	case duelingPeriod / 2:
		return 2
	default:
		return 0
	}
}

// useBRRIP reports whether fills into this set should use BRRIP.
func (p *RRIP) useBRRIP(set int) bool {
	switch p.mode {
	case modeSRRIP:
		return false
	case modeBRRIP:
		return true
	default:
		switch p.leaderKind(set) {
		case 1:
			return false
		case 2:
			return true
		default:
			// PSEL counts SRRIP-leader misses up; a high counter means
			// SRRIP is missing more, so followers use BRRIP.
			return p.psel > pselMax/2
		}
	}
}

// Name implements Policy.
func (p *RRIP) Name() string { return p.name }

// OnHit implements Policy. Hit promotion to near-immediate
// re-reference (HP policy from the RRIP paper).
func (p *RRIP) OnHit(set, way int, view SetView) {
	p.rrpv[p.idx(set, way)] = 0
}

// OnFill implements Policy. A fill is evidence of a miss, so DRRIP
// leader sets update PSEL here.
func (p *RRIP) OnFill(set, way int, view SetView) {
	if p.mode == modeDRRIP {
		switch p.leaderKind(set) {
		case 1: // SRRIP leader missed
			if p.psel < pselMax {
				p.psel++
			}
		case 2: // BRRIP leader missed
			if p.psel > 0 {
				p.psel--
			}
		}
	}
	ins := uint8(longRRPV)
	if p.useBRRIP(set) && !p.r.Bool(brripProb) {
		ins = maxRRPV
	}
	p.rrpv[p.idx(set, way)] = ins
}

// Victim implements Policy: find a distant line, aging the set until
// one appears.
//
//vet:hot
func (p *RRIP) Victim(set int, view SetView, incoming LineView) int {
	base := set * p.ways
	for {
		for w := 0; w < p.ways; w++ {
			if p.rrpv[base+w] == maxRRPV {
				return w
			}
		}
		for w := 0; w < p.ways; w++ {
			p.rrpv[base+w]++
		}
	}
}

// OnInvalidate implements Policy.
func (p *RRIP) OnInvalidate(set, way int) {
	p.rrpv[p.idx(set, way)] = maxRRPV
}

// OnPriorityUpdate implements Policy.
func (p *RRIP) OnPriorityUpdate(set, way int, view SetView) {}

// ResetState implements Resetter: every RRPV returns to distant, PSEL
// to its midpoint, and the BRRIP/DRRIP insertion RNG to the state a
// fresh construction with this seed would hold. An unseeded policy
// (SRRIP, whose constructor takes no seed) re-derives from seed 0 so
// warm and cold runs stay byte-identical.
//
//vet:hot
func (p *RRIP) ResetState(seed uint64) {
	if !p.seeded {
		seed = 0
	}
	p.r.Seed(rng.Mix2(seed, 0xbadc0de))
	p.psel = pselMax / 2
	for i := range p.rrpv {
		p.rrpv[i] = maxRRPV
	}
}

// PSEL exposes the dueling counter for tests.
func (p *RRIP) PSEL() int { return p.psel }
