package policy

// TrueLRU is an exact least-recently-used recency base. Each line
// carries a 64-bit timestamp; MRU touches use an increasing clock and
// LIP-style LRU insertions use a decreasing clock so that successive
// LRU-inserted lines are evicted oldest-insertion-first.
type TrueLRU struct {
	sets, ways int
	stamps     []int64
	mruClock   int64
	lruClock   int64
}

// NewTrueLRU returns an exact-LRU recency base for the geometry.
func NewTrueLRU(sets, ways int) *TrueLRU {
	checkGeometry(sets, ways)
	return &TrueLRU{
		sets:   sets,
		ways:   ways,
		stamps: make([]int64, sets*ways),
	}
}

func (l *TrueLRU) idx(set, way int) int { return set*l.ways + way }

// Touch implements RecencyBase.
func (l *TrueLRU) Touch(set, way int) {
	l.mruClock++
	l.stamps[l.idx(set, way)] = l.mruClock
}

// MakeLRU implements RecencyBase.
func (l *TrueLRU) MakeLRU(set, way int) {
	l.lruClock--
	l.stamps[l.idx(set, way)] = l.lruClock
}

// Victim implements RecencyBase.
//
//vet:hot
func (l *TrueLRU) Victim(set int) int {
	v := l.VictimAmong(set, maskAll(l.ways))
	if v < 0 {
		return 0
	}
	return v
}

// VictimAmong implements RecencyBase.
//
//vet:hot
func (l *TrueLRU) VictimAmong(set int, mask uint32) int {
	best := -1
	var bestStamp int64
	base := set * l.ways
	for w := 0; w < l.ways; w++ {
		if mask&(1<<uint(w)) == 0 {
			continue
		}
		s := l.stamps[base+w]
		if best < 0 || s < bestStamp {
			best = w
			bestStamp = s
		}
	}
	return best
}

// ResetState implements Resetter: all stamps and both clocks return to
// their post-construction zero values. The seed is ignored (true LRU is
// deterministic).
//
//vet:hot
func (l *TrueLRU) ResetState(seed uint64) {
	clear(l.stamps)
	l.mruClock = 0
	l.lruClock = 0
}

// Stamp exposes a line's recency stamp for tests.
func (l *TrueLRU) Stamp(set, way int) int64 { return l.stamps[l.idx(set, way)] }
