package policy

// Recency is the trivial always-MRU-insert policy over a recency base:
// classic LRU (true or tree pseudo variant). It is the policy used for
// the L1 caches and the notation "M:1" baseline.
type Recency struct {
	name string
	base RecencyBase
}

// NewRecency wraps a recency base as a plain LRU-style policy.
func NewRecency(name string, base RecencyBase) *Recency {
	return &Recency{name: name, base: base}
}

// Name implements Policy.
func (p *Recency) Name() string { return p.name }

// OnHit implements Policy.
func (p *Recency) OnHit(set, way int, view SetView) { p.base.Touch(set, way) }

// OnFill implements Policy.
func (p *Recency) OnFill(set, way int, view SetView) { p.base.Touch(set, way) }

// Victim implements Policy.
//
//vet:hot
func (p *Recency) Victim(set int, view SetView, incoming LineView) int {
	return p.base.Victim(set)
}

// OnInvalidate implements Policy.
func (p *Recency) OnInvalidate(set, way int) {}

// OnPriorityUpdate implements Policy.
func (p *Recency) OnPriorityUpdate(set, way int, view SetView) {}

// ResetState implements Resetter by resetting the recency base. Every
// base constructed in this module implements Resetter; a foreign base
// that doesn't cannot be warm-pooled and fails loudly here.
func (p *Recency) ResetState(seed uint64) {
	p.base.(Resetter).ResetState(seed)
}

// MInsert is the M-treatment family from Table 2 of the paper:
// bimodality expressed purely at insertion. High-priority instruction
// lines are inserted in the MRU position; low-priority instruction
// lines in the LRU position. Covers M:1 (LRU), M:0 (LIP), M:R(r) (BIP)
// and the starvation-gated M:S, M:S&E, M:S&E&R(r) policies — the
// mode-selection outcome arrives as the filled line's Priority bit.
//
// Data lines are outside the bimodal treatment ("all policies apply
// only to L2 instruction lines", §2) and insert at MRU as in the LRU
// baseline.
type MInsert struct {
	name string
	base RecencyBase
}

// NewMInsert builds an M-treatment policy over a recency base.
func NewMInsert(name string, base RecencyBase) *MInsert {
	return &MInsert{name: name, base: base}
}

// Name implements Policy.
func (p *MInsert) Name() string { return p.name }

// OnHit implements Policy.
func (p *MInsert) OnHit(set, way int, view SetView) { p.base.Touch(set, way) }

// OnFill implements Policy.
func (p *MInsert) OnFill(set, way int, view SetView) {
	l := view.Lines[way]
	if l.Instr && !l.Priority {
		p.base.MakeLRU(set, way)
		return
	}
	p.base.Touch(set, way)
}

// Victim implements Policy.
//
//vet:hot
func (p *MInsert) Victim(set int, view SetView, incoming LineView) int {
	return p.base.Victim(set)
}

// OnInvalidate implements Policy.
func (p *MInsert) OnInvalidate(set, way int) {}

// OnPriorityUpdate implements Policy. Insertion-only bimodality: a
// priority bit arriving after insertion (L1I eviction) has no effect.
func (p *MInsert) OnPriorityUpdate(set, way int, view SetView) {}

// ResetState implements Resetter by resetting the recency base (see
// Recency.ResetState for the base contract).
func (p *MInsert) ResetState(seed uint64) {
	p.base.(Resetter).ResetState(seed)
}
