package policy

import (
	"testing"
)

// fullSet returns a LineView slice of `ways` valid lines, instruction
// lines where instr[w] is true.
func fullSet(ways int, instr func(w int) bool) []LineView {
	lines := make([]LineView, ways)
	for w := range lines {
		lines[w] = LineView{Valid: true, Instr: instr == nil || instr(w)}
	}
	return lines
}

func TestMInsertLowPriorityInstrInsertsAtLRU(t *testing.T) {
	p := NewMInsert("M:0", NewTrueLRU(1, 4))
	lines := fullSet(4, nil)
	for w := 0; w < 4; w++ {
		lines[w].Priority = true
		p.OnFill(0, w, ViewOf(lines))
	}
	// Low-priority instruction fill at way 2 should become the victim.
	lines[2].Priority = false
	p.OnFill(0, 2, ViewOf(lines))
	if v := p.Victim(0, ViewOf(lines), LineView{}); v != 2 {
		t.Errorf("Victim = %d, want 2 (LRU-inserted line)", v)
	}
}

func TestMInsertHighPriorityInsertsAtMRU(t *testing.T) {
	p := NewMInsert("M:1", NewTrueLRU(1, 4))
	lines := fullSet(4, nil)
	for w := 0; w < 4; w++ {
		lines[w].Priority = true
		p.OnFill(0, w, ViewOf(lines))
	}
	if v := p.Victim(0, ViewOf(lines), LineView{}); v != 0 {
		t.Errorf("Victim = %d, want 0", v)
	}
}

func TestMInsertDataAlwaysMRU(t *testing.T) {
	p := NewMInsert("M:0", NewTrueLRU(1, 4))
	lines := fullSet(4, func(w int) bool { return w != 3 })
	for w := 0; w < 3; w++ {
		lines[w].Priority = true
		p.OnFill(0, w, ViewOf(lines))
	}
	// Data line fills with Priority=false but must still go MRU.
	lines[3].Priority = false
	p.OnFill(0, 3, ViewOf(lines))
	if v := p.Victim(0, ViewOf(lines), LineView{}); v != 0 {
		t.Errorf("Victim = %d, want 0 (data line not LRU-inserted)", v)
	}
}

func TestMInsertHitPromotes(t *testing.T) {
	p := NewMInsert("M:0", NewTrueLRU(1, 2))
	lines := fullSet(2, nil)
	lines[0].Priority = false
	p.OnFill(0, 0, ViewOf(lines))
	lines[1].Priority = false
	p.OnFill(0, 1, ViewOf(lines))
	// Way 0 was LRU-inserted first, so it's the victim; a hit rescues it.
	p.OnHit(0, 0, ViewOf(lines))
	if v := p.Victim(0, ViewOf(lines), LineView{}); v != 1 {
		t.Errorf("Victim = %d, want 1 after hit promoted way 0", v)
	}
}

func TestRecencyPolicyBasics(t *testing.T) {
	p := NewRecency("TPLRU", NewTPLRU(1, 4))
	lines := fullSet(4, nil)
	for w := 0; w < 4; w++ {
		p.OnFill(0, w, ViewOf(lines))
	}
	if v := p.Victim(0, ViewOf(lines), LineView{}); v != 0 {
		t.Errorf("Victim = %d, want 0", v)
	}
	if p.Name() != "TPLRU" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestSRRIPInsertionAndPromotion(t *testing.T) {
	p := NewSRRIP(1, 4)
	lines := fullSet(4, nil)
	for w := 0; w < 4; w++ {
		p.OnFill(0, w, ViewOf(lines))
	}
	// All lines at RRPV=2; aging makes way 0 the first distant line.
	if v := p.Victim(0, ViewOf(lines), LineView{}); v != 0 {
		t.Errorf("Victim = %d, want 0", v)
	}
	// Promote way 0; next victim should be way 1 after aging.
	p.OnHit(0, 0, ViewOf(lines))
	if v := p.Victim(0, ViewOf(lines), LineView{}); v != 1 {
		t.Errorf("Victim after promoting 0 = %d, want 1", v)
	}
}

func TestBRRIPMostlyDistant(t *testing.T) {
	p := NewBRRIP(1, 4, 42)
	lines := fullSet(4, nil)
	distant := 0
	const trials = 3200
	for i := 0; i < trials; i++ {
		p.OnFill(0, 0, ViewOf(lines))
		if p.rrpv[0] == maxRRPV {
			distant++
		}
	}
	frac := float64(distant) / trials
	if frac < 0.93 || frac > 0.99 {
		t.Errorf("BRRIP distant-insert fraction = %v, want ~31/32", frac)
	}
}

func TestDRRIPDuelingMovesPSEL(t *testing.T) {
	p := NewDRRIP(64, 4, 7)
	lines := fullSet(4, nil)
	start := p.PSEL()
	// Misses in the SRRIP leader set (set 0) push PSEL up.
	for i := 0; i < 10; i++ {
		p.OnFill(0, 0, ViewOf(lines))
	}
	if p.PSEL() <= start {
		t.Errorf("PSEL did not increase on SRRIP-leader misses: %d -> %d", start, p.PSEL())
	}
	// Misses in the BRRIP leader set push it back down.
	up := p.PSEL()
	for i := 0; i < 20; i++ {
		p.OnFill(duelingPeriod/2, 0, ViewOf(lines))
	}
	if p.PSEL() >= up {
		t.Errorf("PSEL did not decrease on BRRIP-leader misses: %d -> %d", up, p.PSEL())
	}
}

func TestDRRIPLeaderKindLayout(t *testing.T) {
	p := NewDRRIP(128, 4, 7)
	if p.leaderKind(0) != 1 || p.leaderKind(duelingPeriod) != 1 {
		t.Error("expected SRRIP leaders at multiples of the dueling period")
	}
	if p.leaderKind(duelingPeriod/2) != 2 {
		t.Error("expected BRRIP leader at offset period/2")
	}
	if p.leaderKind(3) != 0 {
		t.Error("expected follower at offset 3")
	}
}

func TestRRIPVictimAlwaysValidWay(t *testing.T) {
	p := NewSRRIP(2, 8)
	lines := fullSet(8, nil)
	for i := 0; i < 100; i++ {
		w := p.Victim(1, ViewOf(lines), LineView{})
		if w < 0 || w >= 8 {
			t.Fatalf("Victim out of range: %d", w)
		}
		p.OnFill(1, w, ViewOf(lines))
		if i%3 == 0 {
			p.OnHit(1, (i*5)%8, ViewOf(lines))
		}
	}
}

func TestRRIPInvalidateMakesVictim(t *testing.T) {
	p := NewSRRIP(1, 4)
	lines := fullSet(4, nil)
	for w := 0; w < 4; w++ {
		p.OnFill(0, w, ViewOf(lines))
		p.OnHit(0, w, ViewOf(lines))
	}
	p.OnInvalidate(0, 2)
	if v := p.Victim(0, ViewOf(lines), LineView{}); v != 2 {
		t.Errorf("Victim = %d, want invalidated way 2", v)
	}
}

func TestPDPProtectsRecentlyInserted(t *testing.T) {
	p := NewPDP(1, 4, 8)
	lines := fullSet(4, nil)
	for w := 0; w < 4; w++ {
		p.OnFill(0, w, ViewOf(lines))
	}
	// All protected: victim is the closest to expiry = way 0 (aged most).
	if v := p.Victim(0, ViewOf(lines), LineView{}); v != 0 {
		t.Errorf("Victim = %d, want 0", v)
	}
}

func TestPDPExpiredPreferred(t *testing.T) {
	p := NewPDP(1, 4, 2)
	lines := fullSet(4, nil)
	for w := 0; w < 4; w++ {
		p.OnFill(0, w, ViewOf(lines))
	}
	// Repeatedly hit way 3; ways 0-2 expire (PD=2).
	for i := 0; i < 5; i++ {
		p.OnHit(0, 3, ViewOf(lines))
	}
	v := p.Victim(0, ViewOf(lines), LineView{})
	if v == 3 {
		t.Errorf("Victim = 3, which is the only protected line")
	}
}

func TestPDPDefaultDistance(t *testing.T) {
	p := NewPDP(1, 4, 0)
	if p.pd != DefaultProtectingDistance {
		t.Errorf("pd = %d, want default %d", p.pd, DefaultProtectingDistance)
	}
}

func TestDCLIPPrefersEvictingData(t *testing.T) {
	p := NewDCLIP(1, 4)
	// Set 0 is a CLIP-on leader: instruction fills get RRPV 0, data 3.
	lines := fullSet(4, func(w int) bool { return w < 2 })
	for w := 0; w < 4; w++ {
		p.OnFill(0, w, ViewOf(lines))
	}
	v := p.Victim(0, ViewOf(lines), LineView{})
	if v != 2 && v != 3 {
		t.Errorf("Victim = %d, want a data way (2 or 3)", v)
	}
}

func TestDCLIPDuelingUpdatesOnInstrMissOnly(t *testing.T) {
	p := NewDCLIP(64, 4)
	linesI := fullSet(4, nil)
	linesD := fullSet(4, func(int) bool { return false })
	start := p.PSEL()
	p.OnFill(0, 0, ViewOf(linesD)) // data miss in CLIP leader: no PSEL change
	if p.PSEL() != start {
		t.Errorf("PSEL moved on data miss")
	}
	p.OnFill(0, 0, ViewOf(linesI)) // instruction miss in CLIP leader
	if p.PSEL() != start+1 {
		t.Errorf("PSEL = %d, want %d", p.PSEL(), start+1)
	}
}

func TestSetViewMasks(t *testing.T) {
	lines := []LineView{
		{Valid: true, Priority: true, Instr: true},
		{Valid: true, Priority: false, Instr: false},
		{Valid: false, Priority: true, Instr: true},
		{Valid: true, Priority: true, Instr: false},
	}
	v := ViewOf(lines)
	if v.Valid != 0b1011 {
		t.Errorf("Valid = %04b", v.Valid)
	}
	if v.High != 0b1001 {
		t.Errorf("High = %04b", v.High)
	}
	if m := v.Low(); m != 0b0010 {
		t.Errorf("Low() = %04b", m)
	}
	if v.Instr != 0b0001 {
		t.Errorf("Instr = %04b", v.Instr)
	}
	if m := v.Data(); m != 0b1010 {
		t.Errorf("Data() = %04b", m)
	}
	if n := v.HighCount(); n != 2 {
		t.Errorf("HighCount() = %d", n)
	}
	if m := maskAll(4); m != 0b1111 {
		t.Errorf("maskAll(4) = %04b", m)
	}
}
