// Package policy defines the cache replacement-policy framework and
// implements every prior-work policy the paper compares against:
// true LRU, tree pseudo-LRU (TPLRU), LIP/BIP-style bimodal insertion
// (the M-treatment family), SRRIP/BRRIP/DRRIP, PDP and DCLIP.
//
// The EMISSARY P(N) family — the paper's contribution — lives in
// internal/core and builds on the recency bases exported here.
//
// A cache owns its line metadata and presents it to the policy as a
// []LineView slice per set. Policies keep whatever recency state they
// need (stamps, tree bits, RRPVs) indexed by (set, way).
package policy

import "fmt"

// LineView is the slice of per-line metadata a policy may consult.
// The cache keeps these up to date; policies never mutate them.
type LineView struct {
	Valid    bool
	Priority bool // EMISSARY P bit (false for all non-EMISSARY policies)
	Instr    bool // line holds instructions (vs data)
}

// Policy is the interface caches use to drive replacement decisions.
//
// The cache guarantees:
//   - Victim is called only when every way in the set is valid;
//   - OnFill is called after the new line is installed, with lines[way]
//     describing it;
//   - lines always has exactly `ways` entries.
type Policy interface {
	// Name returns the policy's notation string (e.g. "M:R(1/32)").
	Name() string
	// OnHit is invoked when an access hits way in set.
	OnHit(set, way int, lines []LineView)
	// OnFill is invoked after a miss fill installs a line at way.
	OnFill(set, way int, lines []LineView)
	// Victim picks the way to evict for an incoming fill described by
	// incoming. It must return a valid way index.
	Victim(set int, lines []LineView, incoming LineView) int
	// OnInvalidate is invoked when a line is removed without
	// replacement (back-invalidation, flush).
	OnInvalidate(set, way int)
	// OnPriorityUpdate is invoked when a line's Priority bit changes
	// while resident (an L1I eviction writing its P bit into L2).
	OnPriorityUpdate(set, way int, lines []LineView)
}

// RecencyBase is the recency-tracking substrate shared by the
// M-treatment family and by EMISSARY's P(N) treatment: either true LRU
// or tree pseudo-LRU. VictimAmong restricts the choice to the ways set
// in mask, returning -1 if the mask is empty of valid candidates.
type RecencyBase interface {
	// Touch marks way as most recently used.
	Touch(set, way int)
	// MakeLRU marks way as the next victim (LIP-style insertion).
	MakeLRU(set, way int)
	// Victim returns the least recently used way.
	Victim(set int) int
	// VictimAmong returns the least recently used way among those set
	// in mask, or -1 if mask is zero.
	VictimAmong(set int, mask uint32) int
}

// maskAll returns a mask with the low `ways` bits set.
func maskAll(ways int) uint32 { return (1 << uint(ways)) - 1 }

// validMask returns the mask of valid ways matching the given priority.
func validMask(lines []LineView, priority bool) uint32 {
	var m uint32
	for i, l := range lines {
		if l.Valid && l.Priority == priority {
			m |= 1 << uint(i)
		}
	}
	return m
}

// instrMask returns the mask of valid instruction (or data) ways.
func instrMask(lines []LineView, instr bool) uint32 {
	var m uint32
	for i, l := range lines {
		if l.Valid && l.Instr == instr {
			m |= 1 << uint(i)
		}
	}
	return m
}

// checkGeometry panics when a policy is constructed with a geometry it
// cannot support.
func checkGeometry(sets, ways int) {
	if sets <= 0 || ways <= 0 {
		panic(fmt.Sprintf("policy: invalid geometry %dx%d", sets, ways))
	}
	if ways > 32 {
		panic(fmt.Sprintf("policy: ways = %d exceeds mask width", ways))
	}
}
