// Package policy defines the cache replacement-policy framework and
// implements every prior-work policy the paper compares against:
// true LRU, tree pseudo-LRU (TPLRU), LIP/BIP-style bimodal insertion
// (the M-treatment family), SRRIP/BRRIP/DRRIP, PDP and DCLIP.
//
// The EMISSARY P(N) family — the paper's contribution — lives in
// internal/core and builds on the recency bases exported here.
//
// A cache owns its line metadata and presents it to the policy as a
// SetView per set: the per-line metadata plus occupancy masks the
// cache maintains incrementally as lines change. Policies keep
// whatever recency state they need (stamps, tree bits, RRPVs) indexed
// by (set, way).
package policy

import (
	"fmt"
	"math/bits"
)

// LineView is the per-line metadata a policy may consult. The cache
// keeps these up to date; policies never mutate them.
type LineView struct {
	Valid    bool
	Priority bool // EMISSARY P bit (false for all non-EMISSARY policies)
	Instr    bool // line holds instructions (vs data)
}

// SetView is the read-only view of one cache set passed to every
// policy callback. Besides the raw lines it carries occupancy masks
// (bit w describes way w) that the cache maintains incrementally on
// each line change, so policies index precomputed masks instead of
// re-deriving them with a way scan on every Victim call — those scans
// were a measurable fraction of per-access cost on the simulate loop.
type SetView struct {
	// Lines holds the per-way metadata; it always has exactly `ways`
	// entries.
	Lines []LineView
	// Valid is the mask of valid ways.
	Valid uint32
	// High is the mask of valid ways whose Priority bit is set.
	High uint32
	// Instr is the mask of valid ways holding instruction lines.
	Instr uint32
}

// Low returns the mask of valid low-priority ways.
func (v SetView) Low() uint32 { return v.Valid &^ v.High }

// Data returns the mask of valid data (non-instruction) ways.
func (v SetView) Data() uint32 { return v.Valid &^ v.Instr }

// HighCount returns the number of valid high-priority ways.
func (v SetView) HighCount() int { return bits.OnesCount32(v.High) }

// ViewOf derives a SetView from raw line metadata by scanning once.
// The cache maintains the masks incrementally instead of calling this
// per access; ViewOf serves tests and construction-time code.
func ViewOf(lines []LineView) SetView {
	v := SetView{Lines: lines}
	for w, l := range lines {
		if !l.Valid {
			continue
		}
		bit := uint32(1) << uint(w)
		v.Valid |= bit
		if l.Priority {
			v.High |= bit
		}
		if l.Instr {
			v.Instr |= bit
		}
	}
	return v
}

// Policy is the interface caches use to drive replacement decisions.
//
// The cache guarantees:
//   - Victim is called only when every way in the set is valid;
//   - OnFill is called after the new line is installed, with
//     view.Lines[way] describing it;
//   - view.Lines always has exactly `ways` entries, and the masks are
//     consistent with it.
type Policy interface {
	// Name returns the policy's notation string (e.g. "M:R(1/32)").
	Name() string
	// OnHit is invoked when an access hits way in set.
	OnHit(set, way int, view SetView)
	// OnFill is invoked after a miss fill installs a line at way.
	OnFill(set, way int, view SetView)
	// Victim picks the way to evict for an incoming fill described by
	// incoming. It must return a valid way index.
	Victim(set int, view SetView, incoming LineView) int
	// OnInvalidate is invoked when a line is removed without
	// replacement (back-invalidation, flush).
	OnInvalidate(set, way int)
	// OnPriorityUpdate is invoked when a line's Priority bit changes
	// while resident (an L1I eviction writing its P bit into L2).
	OnPriorityUpdate(set, way int, view SetView)
}

// RecencyBase is the recency-tracking substrate shared by the
// M-treatment family and by EMISSARY's P(N) treatment: either true LRU
// or tree pseudo-LRU. VictimAmong restricts the choice to the ways set
// in mask, returning -1 if the mask is empty of valid candidates.
type RecencyBase interface {
	// Touch marks way as most recently used.
	Touch(set, way int)
	// MakeLRU marks way as the next victim (LIP-style insertion).
	MakeLRU(set, way int)
	// Victim returns the least recently used way.
	Victim(set int) int
	// VictimAmong returns the least recently used way among those set
	// in mask, or -1 if mask is zero.
	VictimAmong(set int, mask uint32) int
}

// Resetter is implemented by every policy (and recency base) in this
// module: ResetState restores the exact post-construction state for
// the given seed, without allocating, so a warm-pooled cache can reuse
// a policy instance across simulations with byte-identical results.
// Policies that never draw randomness ignore the seed.
type Resetter interface {
	ResetState(seed uint64)
}

// maskAll returns a mask with the low `ways` bits set.
func maskAll(ways int) uint32 { return (1 << uint(ways)) - 1 }

// checkGeometry panics when a policy is constructed with a geometry it
// cannot support.
func checkGeometry(sets, ways int) {
	if sets <= 0 || ways <= 0 {
		panic(fmt.Sprintf("policy: invalid geometry %dx%d", sets, ways))
	}
	if ways > 32 {
		panic(fmt.Sprintf("policy: ways = %d exceeds mask width", ways))
	}
}
