package policy

// DCLIP implements Dynamic Code Line Preservation (the CLIP policy of
// Jaleel et al., HPCA 2015, as cited by the paper). CLIP prioritizes
// *all* instruction lines over data lines in the shared L2 when code
// contends for cache space: instruction fills and hits are promoted to
// near-immediate re-reference, data fills are predicted distant. The
// dynamic variant turns the code preference on only when it helps,
// decided by set-dueling on instruction misses.
//
// Contrast with EMISSARY (§7.2 of the paper): CLIP prioritizes
// instruction lines blindly, without confirming that a future miss
// would cause front-end stalls, and without the P(N) way limit that
// protects data lines from instruction pressure.
type DCLIP struct {
	name       string
	sets, ways int
	rrpv       []uint8
	psel       int
}

// NewDCLIP builds the dynamic code-line-preservation policy.
func NewDCLIP(sets, ways int) *DCLIP {
	checkGeometry(sets, ways)
	p := &DCLIP{
		name: "DCLIP",
		sets: sets,
		ways: ways,
		rrpv: make([]uint8, sets*ways),
		psel: pselMax / 2,
	}
	for i := range p.rrpv {
		p.rrpv[i] = maxRRPV
	}
	return p
}

func (p *DCLIP) idx(set, way int) int { return set*p.ways + way }

// leaderKind: 1 = CLIP-on leader, 2 = CLIP-off (plain SRRIP) leader.
func (p *DCLIP) leaderKind(set int) int {
	switch set % duelingPeriod {
	case 0:
		return 1
	case duelingPeriod / 2:
		return 2
	default:
		return 0
	}
}

// clipActive reports whether code preference applies to this set.
func (p *DCLIP) clipActive(set int) bool {
	switch p.leaderKind(set) {
	case 1:
		return true
	case 2:
		return false
	default:
		// PSEL counts CLIP-leader instruction misses up; low counter
		// means CLIP is avoiding instruction misses, so followers use
		// CLIP.
		return p.psel <= pselMax/2
	}
}

// Name implements Policy.
func (p *DCLIP) Name() string { return p.name }

// OnHit implements Policy.
func (p *DCLIP) OnHit(set, way int, view SetView) {
	p.rrpv[p.idx(set, way)] = 0
}

// OnFill implements Policy.
func (p *DCLIP) OnFill(set, way int, view SetView) {
	l := view.Lines[way]
	if l.Instr {
		switch p.leaderKind(set) {
		case 1:
			if p.psel < pselMax {
				p.psel++
			}
		case 2:
			if p.psel > 0 {
				p.psel--
			}
		}
	}
	ins := uint8(longRRPV)
	if p.clipActive(set) {
		if l.Instr {
			ins = 0 // preserve code lines
		} else {
			ins = maxRRPV // data predicted distant
		}
	}
	p.rrpv[p.idx(set, way)] = ins
}

// Victim implements Policy.
//
//vet:hot
func (p *DCLIP) Victim(set int, view SetView, incoming LineView) int {
	base := set * p.ways
	for {
		for w := 0; w < p.ways; w++ {
			if p.rrpv[base+w] == maxRRPV {
				return w
			}
		}
		for w := 0; w < p.ways; w++ {
			p.rrpv[base+w]++
		}
	}
}

// OnInvalidate implements Policy.
func (p *DCLIP) OnInvalidate(set, way int) {
	p.rrpv[p.idx(set, way)] = maxRRPV
}

// OnPriorityUpdate implements Policy.
func (p *DCLIP) OnPriorityUpdate(set, way int, view SetView) {}

// ResetState implements Resetter: every RRPV returns to distant and
// PSEL to its midpoint. The seed is ignored (DCLIP is deterministic).
//
//vet:hot
func (p *DCLIP) ResetState(seed uint64) {
	p.psel = pselMax / 2
	for i := range p.rrpv {
		p.rrpv[i] = maxRRPV
	}
}

// PSEL exposes the dueling counter for tests.
func (p *DCLIP) PSEL() int { return p.psel }
