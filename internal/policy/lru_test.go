package policy

import (
	"testing"
	"testing/quick"
)

func TestTrueLRUVictimOrder(t *testing.T) {
	l := NewTrueLRU(1, 4)
	for w := 0; w < 4; w++ {
		l.Touch(0, w)
	}
	if v := l.Victim(0); v != 0 {
		t.Errorf("Victim = %d, want 0 (least recently touched)", v)
	}
	l.Touch(0, 0)
	if v := l.Victim(0); v != 1 {
		t.Errorf("after touching 0, Victim = %d, want 1", v)
	}
}

func TestTrueLRUMakeLRU(t *testing.T) {
	l := NewTrueLRU(1, 4)
	for w := 0; w < 4; w++ {
		l.Touch(0, w)
	}
	l.MakeLRU(0, 3)
	if v := l.Victim(0); v != 3 {
		t.Errorf("after MakeLRU(3), Victim = %d, want 3", v)
	}
	// A later MakeLRU takes over the LRU position (LIP semantics: the
	// newest LRU-inserted line is the next victim).
	l.MakeLRU(0, 2)
	if v := l.Victim(0); v != 2 {
		t.Errorf("Victim = %d, want 2 (newest LRU insert is next victim)", v)
	}
}

func TestTrueLRUVictimAmong(t *testing.T) {
	l := NewTrueLRU(1, 4)
	for w := 0; w < 4; w++ {
		l.Touch(0, w)
	}
	if v := l.VictimAmong(0, 0b1100); v != 2 {
		t.Errorf("VictimAmong(1100) = %d, want 2", v)
	}
	if v := l.VictimAmong(0, 0); v != -1 {
		t.Errorf("VictimAmong(0) = %d, want -1", v)
	}
}

func TestTrueLRUSetsIndependent(t *testing.T) {
	l := NewTrueLRU(2, 2)
	l.Touch(0, 0)
	l.Touch(0, 1)
	l.Touch(1, 1)
	l.Touch(1, 0)
	if v := l.Victim(0); v != 0 {
		t.Errorf("set 0 Victim = %d, want 0", v)
	}
	if v := l.Victim(1); v != 1 {
		t.Errorf("set 1 Victim = %d, want 1", v)
	}
}

func TestTrueLRUBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewTrueLRU(0,4) did not panic")
		}
	}()
	NewTrueLRU(0, 4)
}

func TestTPLRUVictimAfterFullTouch(t *testing.T) {
	p := NewTPLRU(1, 8)
	for w := 0; w < 8; w++ {
		p.Touch(0, w)
	}
	// After touching 0..7 in order the pseudo-LRU victim is way 0.
	if v := p.Victim(0); v != 0 {
		t.Errorf("Victim = %d, want 0", v)
	}
}

func TestTPLRUTouchProtects(t *testing.T) {
	p := NewTPLRU(1, 8)
	for w := 0; w < 8; w++ {
		p.Touch(0, w)
	}
	v1 := p.Victim(0)
	p.Touch(0, v1)
	v2 := p.Victim(0)
	if v2 == v1 {
		t.Errorf("victim %d unchanged after touching it", v1)
	}
}

func TestTPLRUMakeLRUTargets(t *testing.T) {
	p := NewTPLRU(1, 8)
	for w := 0; w < 8; w++ {
		p.Touch(0, w)
	}
	for target := 0; target < 8; target++ {
		p.MakeLRU(0, target)
		if v := p.Victim(0); v != target {
			t.Errorf("after MakeLRU(%d), Victim = %d", target, v)
		}
	}
}

func TestTPLRUVictimAmongRespectsMask(t *testing.T) {
	p := NewTPLRU(1, 8)
	for w := 0; w < 8; w++ {
		p.Touch(0, w)
	}
	if err := quick.Check(func(m uint8) bool {
		mask := uint32(m)
		v := p.VictimAmong(0, mask)
		if mask == 0 {
			return v == -1
		}
		return v >= 0 && v < 8 && mask&(1<<uint(v)) != 0
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestTPLRUVictimAmongSingleton(t *testing.T) {
	p := NewTPLRU(1, 16)
	for w := 0; w < 16; w++ {
		p.Touch(0, w)
	}
	for w := 0; w < 16; w++ {
		if v := p.VictimAmong(0, 1<<uint(w)); v != w {
			t.Errorf("singleton mask for way %d gave %d", w, v)
		}
	}
}

func TestTPLRUVictimAmongFullMaskMatchesVictim(t *testing.T) {
	p := NewTPLRU(4, 16)
	// Arbitrary touch pattern.
	seq := []int{3, 7, 1, 15, 0, 8, 4, 2, 9, 11}
	for _, w := range seq {
		p.Touch(2, w)
	}
	if got, want := p.VictimAmong(2, (1<<16)-1), p.Victim(2); got != want {
		t.Errorf("VictimAmong(full) = %d, Victim = %d", got, want)
	}
}

func TestTPLRURequiresPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewTPLRU with 12 ways did not panic")
		}
	}()
	NewTPLRU(4, 12)
}

func TestTPLRUSetsIndependent(t *testing.T) {
	p := NewTPLRU(2, 4)
	for w := 0; w < 4; w++ {
		p.Touch(0, w)
	}
	p.MakeLRU(0, 2)
	if p.Bits(1) != 0 {
		t.Errorf("set 1 bits mutated: %b", p.Bits(1))
	}
}

// Property: with true LRU, a victim is never one of the last ways-1
// touched lines.
func TestTrueLRUPropertyVictimNotRecent(t *testing.T) {
	if err := quick.Check(func(seq []uint8) bool {
		const ways = 8
		l := NewTrueLRU(1, ways)
		for w := 0; w < ways; w++ {
			l.Touch(0, w)
		}
		for _, s := range seq {
			l.Touch(0, int(s%ways))
		}
		v := l.Victim(0)
		// The victim must not have been touched after any other line's
		// last touch: check stamp is the minimum.
		for w := 0; w < ways; w++ {
			if l.Stamp(0, v) > l.Stamp(0, w) {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkTPLRUTouchVictim(b *testing.B) {
	p := NewTPLRU(1024, 16)
	for i := 0; i < b.N; i++ {
		s := i & 1023
		p.Touch(s, i&15)
		_ = p.Victim(s)
	}
}
