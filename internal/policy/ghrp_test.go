package policy

import "testing"

func TestGHRPLearnsDeadSignatures(t *testing.T) {
	p := NewGHRP(1, 4)
	ls := fullSet(4, nil)
	// Fill way 0 repeatedly without ever hitting it: its signatures
	// should accumulate dead training.
	for i := 0; i < 50; i++ {
		p.OnFill(0, 0, ViewOf(ls))
		p.OnInvalidate(0, 0) // evicted untouched -> dead training
	}
	deadTrained := 0
	for _, c := range p.dead {
		if c >= ghrpDeadThreshold {
			deadTrained++
		}
	}
	if deadTrained == 0 {
		t.Error("no signature learned dead after 50 untouched evictions")
	}
}

func TestGHRPLiveTrainingDecays(t *testing.T) {
	p := NewGHRP(1, 4)
	ls := fullSet(4, nil)
	p.OnFill(0, 1, ViewOf(ls))
	sig := p.sigs[1]
	p.dead[sig] = ghrpDeadMax
	p.OnHit(0, 1, ViewOf(ls)) // proves live
	if p.dead[sig] != ghrpDeadMax-1 {
		t.Errorf("dead counter = %d after live proof, want %d", p.dead[sig], ghrpDeadMax-1)
	}
}

func TestGHRPVictimPrefersPredictedDead(t *testing.T) {
	p := NewGHRP(1, 4)
	ls := fullSet(4, nil)
	for w := 0; w < 4; w++ {
		p.OnFill(0, w, ViewOf(ls))
		p.OnHit(0, w, ViewOf(ls)) // make every line recently used and touched
	}
	// Force way 2's current signature to predict dead.
	p.dead[p.sigs[2]] = ghrpDeadMax
	if v := p.Victim(0, ViewOf(ls), LineView{Valid: true}); v != 2 {
		t.Errorf("Victim = %d, want predicted-dead way 2", v)
	}
}

func TestGHRPFallsBackToLRU(t *testing.T) {
	p := NewGHRP(1, 4)
	ls := fullSet(4, nil)
	for w := 0; w < 4; w++ {
		p.OnFill(0, w, ViewOf(ls))
	}
	// No dead predictions: victim is the least recently filled (way 0).
	for i := range p.dead {
		p.dead[i] = 0
	}
	if v := p.Victim(0, ViewOf(ls), LineView{Valid: true}); v != 0 {
		t.Errorf("Victim = %d, want LRU way 0", v)
	}
}

func TestGHRPVictimAmongMask(t *testing.T) {
	p := NewGHRP(1, 8)
	ls := fullSet(8, nil)
	for w := 0; w < 8; w++ {
		p.OnFill(0, w, ViewOf(ls))
	}
	if v := p.VictimAmong(0, 0); v != -1 {
		t.Errorf("empty mask gave %d", v)
	}
	if v := p.VictimAmong(0, 0b10100000); v != 5 && v != 7 {
		t.Errorf("masked victim %d outside mask", v)
	}
}

func TestGHRPTouchedEvictionTrainsLive(t *testing.T) {
	p := NewGHRP(1, 4)
	ls := fullSet(4, nil)
	p.OnFill(0, 3, ViewOf(ls))
	p.OnHit(0, 3, ViewOf(ls))
	sig := p.sigs[3]
	p.dead[sig] = 2
	p.OnInvalidate(0, 3) // evicted but it was reused: live training
	if p.dead[sig] != 1 {
		t.Errorf("dead counter = %d, want 1 (decayed)", p.dead[sig])
	}
}
