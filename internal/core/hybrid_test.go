package core

import (
	"testing"

	"emissary/internal/policy"
)

func TestParseGHRPForms(t *testing.T) {
	spec := MustParsePolicy("GHRP")
	if spec.Treatment != TreatGHRP || spec.String() != "GHRP" {
		t.Errorf("GHRP parsed as %+v (%s)", spec, spec.String())
	}
	spec = MustParsePolicy("P(8):S&E&R(1/32)+GHRP")
	if spec.Treatment != TreatProtect || !spec.GHRP || spec.N != 8 {
		t.Errorf("hybrid parsed as %+v", spec)
	}
	if spec.String() != "P(8):S&E&R(1/32)+GHRP" {
		t.Errorf("round trip gave %q", spec.String())
	}
	if _, err := ParsePolicy("M:S+GHRP"); err == nil {
		t.Error("+GHRP on an M policy accepted")
	}
	if _, err := ParsePolicy("SRRIP+GHRP"); err == nil {
		t.Error("+GHRP on SRRIP accepted")
	}
}

func TestGHRPSpecBuilds(t *testing.T) {
	p := MustParsePolicy("GHRP").Build(64, 16, 1)
	if p.Name() != "GHRP" {
		t.Errorf("Name = %q", p.Name())
	}
	h := MustParsePolicy("P(8):S+GHRP").Build(64, 16, 1)
	if _, ok := h.(*EmissaryGHRP); !ok {
		t.Errorf("hybrid built %T", h)
	}
}

func TestHybridProtectsHighPriority(t *testing.T) {
	e := NewEmissaryGHRP("P(2):S+GHRP", 1, 4, 2)
	ls := lines(4)
	ls[1].Priority = true
	for w := 0; w < 4; w++ {
		e.OnFill(0, w, policy.ViewOf(ls))
	}
	// One high-priority line with N=2: the victim must be low-priority.
	for trial := 0; trial < 8; trial++ {
		if v := e.Victim(0, policy.ViewOf(ls), policy.LineView{Valid: true, Instr: true}); ls[v].Priority {
			t.Fatal("hybrid evicted a protected line under the limit")
		}
	}
}

func TestHybridEvictsHighWhenOverLimit(t *testing.T) {
	e := NewEmissaryGHRP("P(1):S+GHRP", 1, 4, 1)
	ls := lines(4)
	for w := 0; w < 4; w++ {
		ls[w].Priority = w < 3 // three high, one low; N=1
		e.OnFill(0, w, policy.ViewOf(ls))
	}
	if v := e.Victim(0, policy.ViewOf(ls), policy.LineView{Valid: true}); !ls[v].Priority {
		t.Error("over the limit, the victim must come from the high class")
	}
}

func TestHybridVictimInRange(t *testing.T) {
	e := NewEmissaryGHRP("P(8):S&E+GHRP", 16, 16, 8)
	ls := lines(16)
	for i := 0; i < 3000; i++ {
		set := i % 16
		v := e.Victim(set, policy.ViewOf(ls), policy.LineView{Valid: true, Instr: true})
		if v < 0 || v >= 16 {
			t.Fatalf("victim %d out of range", v)
		}
		ls[v].Priority = i%7 == 0
		e.OnFill(set, v, policy.ViewOf(ls))
		if i%3 == 0 {
			e.OnHit(set, (i*5)%16, policy.ViewOf(ls))
		}
		if i%11 == 0 {
			e.OnInvalidate(set, (i*3)%16)
		}
	}
}
