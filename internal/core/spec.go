package core

import (
	"fmt"
	"strconv"
	"strings"

	"emissary/internal/policy"
	"emissary/internal/rng"
)

// Treatment is the mode-treatment axis of Table 2, extended with the
// non-bimodal comparison policies of Table 3.
type Treatment int

// Treatments.
const (
	// TreatRecency is plain recency replacement with no bimodality
	// (the baseline policy used for the L1 caches, and "LRU"/"TPLRU").
	TreatRecency Treatment = iota
	// TreatMRUInsert is the M treatment: high-priority lines insert at
	// MRU, low-priority instruction lines at LRU.
	TreatMRUInsert
	// TreatProtect is the EMISSARY P(N) treatment of Algorithm 1.
	TreatProtect
	// Comparison policies (selection axis does not apply).
	TreatSRRIP
	TreatBRRIP
	TreatDRRIP
	TreatPDP
	TreatDCLIP
	// TreatGHRP is the dead-block-prediction policy of §7.2.
	TreatGHRP
)

// Spec fully describes a replacement policy in the paper's design
// space. The zero value is the TPLRU recency baseline.
type Spec struct {
	Treatment Treatment
	// N is the protected-way limit for TreatProtect.
	N int
	// Sel is the mode-selection equation for the M and P treatments.
	Sel Selection
	// TrueLRU selects the exact-LRU recency base instead of tree
	// pseudo-LRU (Figure 1 uses true LRU; all evaluations use TPLRU).
	TrueLRU bool
	// PD overrides PDP's static protecting distance (0 = default).
	PD int
	// GHRP combines the P treatment with GHRP dead-block victim
	// selection inside the low-priority class (the §7.2 hybrid).
	GHRP bool
}

// String renders the spec in the paper's notation.
func (s Spec) String() string {
	lruSuffix := ""
	if s.TrueLRU {
		lruSuffix = "+LRU"
	}
	switch s.Treatment {
	case TreatRecency:
		if s.TrueLRU {
			return "LRU"
		}
		return "TPLRU"
	case TreatMRUInsert:
		return "M:" + s.Sel.String() + lruSuffix
	case TreatProtect:
		if s.GHRP {
			return fmt.Sprintf("P(%d):%s+GHRP%s", s.N, s.Sel.String(), lruSuffix)
		}
		return fmt.Sprintf("P(%d):%s%s", s.N, s.Sel.String(), lruSuffix)
	case TreatSRRIP:
		return "SRRIP"
	case TreatBRRIP:
		return "BRRIP"
	case TreatDRRIP:
		return "DRRIP"
	case TreatPDP:
		return "PDP"
	case TreatDCLIP:
		return "DCLIP"
	case TreatGHRP:
		return "GHRP"
	default:
		return fmt.Sprintf("Spec(%d)", int(s.Treatment))
	}
}

// UsesSelection reports whether the policy consumes mode-selection
// outcomes (the bimodal M and P treatments).
func (s Spec) UsesSelection() bool {
	return s.Treatment == TreatMRUInsert || s.Treatment == TreatProtect
}

// NeedsStarvationSignal reports whether the front-end must track
// decode starvation / IQ-empty per outstanding instruction miss.
func (s Spec) NeedsStarvationSignal() bool {
	return s.UsesSelection() && (s.Sel.NeedS || s.Sel.NeedE)
}

// PersistentPriority reports whether the priority bit is persistent
// line state that must be carried from L1I to L2 on eviction (the
// EMISSARY P treatment), rather than consumed at insertion (M).
func (s Spec) PersistentPriority() bool { return s.Treatment == TreatProtect }

// Build constructs the policy for a cache of the given geometry.
// seed decorrelates stochastic policies across caches and runs.
func (s Spec) Build(sets, ways int, seed uint64) policy.Policy {
	name := s.String()
	newBase := func() policy.RecencyBase {
		if s.TrueLRU {
			return policy.NewTrueLRU(sets, ways)
		}
		return policy.NewTPLRU(sets, ways)
	}
	switch s.Treatment {
	case TreatRecency:
		return policy.NewRecency(name, newBase())
	case TreatMRUInsert:
		return policy.NewMInsert(name, newBase())
	case TreatProtect:
		if s.GHRP {
			return NewEmissaryGHRP(name, sets, ways, s.N)
		}
		if s.TrueLRU {
			return NewEmissaryTrueLRU(name, sets, ways, s.N)
		}
		return NewEmissaryTPLRU(name, sets, ways, s.N)
	case TreatSRRIP:
		return policy.NewSRRIP(sets, ways)
	case TreatBRRIP:
		return policy.NewBRRIP(sets, ways, seed)
	case TreatDRRIP:
		return policy.NewDRRIP(sets, ways, seed)
	case TreatPDP:
		return policy.NewPDP(sets, ways, s.PD)
	case TreatDCLIP:
		return policy.NewDCLIP(sets, ways)
	case TreatGHRP:
		return policy.NewGHRP(sets, ways)
	default:
		panic("core: unknown treatment in Spec.Build")
	}
}

// selectionRNG derives the generator used for R(r) draws so that runs
// are reproducible for a given master seed.
func selectionRNG(seed uint64) *rng.Xoshiro256 {
	return rng.NewXoshiro256(rng.Mix2(seed, 0x5e1ec7))
}

// Selector is a stateful evaluator of the spec's selection equation,
// owning the deterministic random stream for R terms.
type Selector struct {
	sel Selection
	r   *rng.Xoshiro256
}

// NewSelector builds a Selector for the spec.
func (s Spec) NewSelector(seed uint64) *Selector {
	return &Selector{sel: s.Sel, r: selectionRNG(seed)}
}

// Select evaluates the mode-selection equation for a completed miss.
func (sel *Selector) Select(starved, iqEmpty bool) bool {
	return sel.sel.Eval(starved, iqEmpty, sel.r)
}

// Reset re-targets the Selector at a (possibly different) spec and
// seed, restoring exactly the state s.NewSelector(seed) would build —
// without allocating, so a warm-pooled frontend can reuse it.
//
//vet:hot
func (sel *Selector) Reset(s Spec, seed uint64) {
	sel.sel = s.Sel
	sel.r.Seed(rng.Mix2(seed, 0x5e1ec7))
}

// ParsePolicy parses the paper's policy notation:
//
//	"LRU", "TPLRU", "LIP", "BIP",
//	"M:1", "M:0", "M:R(1/32)", "M:S", "M:S&E", "M:S&E&R(1/32)",
//	"P(8):S", "P(8):S&E", "P(8):S&E&R(1/32)", "P(8):R(1/32)",
//	"SRRIP", "BRRIP", "DRRIP", "PDP", "DCLIP"
//
// Whitespace is ignored. An optional "+LRU" suffix (e.g.
// "P(8):S&E+LRU") selects the true-LRU recency base used in Figure 1.
func ParsePolicy(text string) (Spec, error) {
	orig := text
	text = strings.ReplaceAll(text, " ", "")
	if text == "" {
		return Spec{}, fmt.Errorf("core: empty policy string")
	}
	var spec Spec
	for {
		switch {
		case strings.HasSuffix(text, "+LRU"):
			spec.TrueLRU = true
			text = strings.TrimSuffix(text, "+LRU")
			continue
		case strings.HasSuffix(text, "+GHRP"):
			spec.GHRP = true
			text = strings.TrimSuffix(text, "+GHRP")
			continue
		}
		break
	}
	if spec.GHRP && !strings.HasPrefix(strings.ToUpper(text), "P(") {
		return Spec{}, fmt.Errorf("core: +GHRP applies only to P(N) policies, got %q", orig)
	}
	switch strings.ToUpper(text) {
	case "LRU":
		spec.Treatment = TreatRecency
		spec.TrueLRU = true
		return spec, nil
	case "TPLRU":
		spec.Treatment = TreatRecency
		return spec, nil
	case "LIP":
		spec.Treatment = TreatMRUInsert
		spec.Sel = Selection{Never: true}
		return spec, nil
	case "BIP":
		spec.Treatment = TreatMRUInsert
		spec.Sel = Selection{HasR: true, RProb: 1.0 / 32.0}
		return spec, nil
	case "SRRIP":
		spec.Treatment = TreatSRRIP
		return spec, nil
	case "BRRIP":
		spec.Treatment = TreatBRRIP
		return spec, nil
	case "DRRIP":
		spec.Treatment = TreatDRRIP
		return spec, nil
	case "PDP":
		spec.Treatment = TreatPDP
		return spec, nil
	case "DCLIP":
		spec.Treatment = TreatDCLIP
		return spec, nil
	case "GHRP":
		spec.Treatment = TreatGHRP
		spec.GHRP = false
		return spec, nil
	}
	if spec.GHRP && !strings.Contains(text, ":") {
		return Spec{}, fmt.Errorf("core: +GHRP applies only to P(N) policies, got %q", orig)
	}

	colon := strings.IndexByte(text, ':')
	if colon < 0 {
		return Spec{}, fmt.Errorf("core: unrecognized policy %q", orig)
	}
	treat, selText := text[:colon], text[colon+1:]
	switch {
	case treat == "M" || treat == "m":
		spec.Treatment = TreatMRUInsert
	case (strings.HasPrefix(treat, "P(") || strings.HasPrefix(treat, "p(")) && strings.HasSuffix(treat, ")"):
		nText := treat[2 : len(treat)-1]
		n, err := strconv.Atoi(nText)
		if err != nil || n < 0 {
			return Spec{}, fmt.Errorf("core: bad protected-way count in %q", orig)
		}
		spec.Treatment = TreatProtect
		spec.N = n
	default:
		return Spec{}, fmt.Errorf("core: unrecognized treatment %q in %q", treat, orig)
	}

	sel, err := parseSelection(selText)
	if err != nil {
		return Spec{}, fmt.Errorf("core: %v in %q", err, orig)
	}
	spec.Sel = sel
	if spec.GHRP && spec.Treatment != TreatProtect {
		return Spec{}, fmt.Errorf("core: +GHRP applies only to P(N) policies, got %q", orig)
	}
	return spec, nil
}

// MustParsePolicy is ParsePolicy for static strings; it panics on
// malformed input.
func MustParsePolicy(text string) Spec {
	spec, err := ParsePolicy(text)
	if err != nil {
		panic(err)
	}
	return spec
}

func parseSelection(text string) (Selection, error) {
	var sel Selection
	if text == "" {
		return sel, fmt.Errorf("empty selection")
	}
	for _, term := range strings.Split(text, "&") {
		switch {
		case term == "1":
			sel.Always = true
		case term == "0":
			sel.Never = true
		case term == "S" || term == "s":
			sel.NeedS = true
		case term == "E" || term == "e":
			sel.NeedE = true
		case (strings.HasPrefix(term, "R(") || strings.HasPrefix(term, "r(")) && strings.HasSuffix(term, ")"):
			p, err := parseProb(term[2 : len(term)-1])
			if err != nil {
				return sel, err
			}
			sel.HasR = true
			sel.RProb = p
		default:
			return sel, fmt.Errorf("bad selection term %q", term)
		}
	}
	if sel.Always && (sel.Never || sel.NeedS || sel.NeedE || sel.HasR) {
		return sel, fmt.Errorf("selection '1' cannot combine with other terms")
	}
	if sel.Never && (sel.NeedS || sel.NeedE || sel.HasR) {
		return sel, fmt.Errorf("selection '0' cannot combine with other terms")
	}
	return sel, nil
}

func parseProb(text string) (float64, error) {
	if slash := strings.IndexByte(text, '/'); slash >= 0 {
		num, err1 := strconv.ParseFloat(text[:slash], 64)
		den, err2 := strconv.ParseFloat(text[slash+1:], 64)
		if err1 != nil || err2 != nil || den == 0 {
			return 0, fmt.Errorf("bad probability %q", text)
		}
		p := num / den
		if p < 0 || p > 1 {
			return 0, fmt.Errorf("probability %q out of [0,1]", text)
		}
		return p, nil
	}
	p, err := strconv.ParseFloat(text, 64)
	if err != nil || p < 0 || p > 1 {
		return 0, fmt.Errorf("bad probability %q", text)
	}
	return p, nil
}
