package core

import (
	"fmt"
	"strings"

	"emissary/internal/rng"
)

// Selection is a mode-selection equation over the signals of Table 1:
// a conjunction of S (the miss caused decode starvation), E (the miss
// completed with an empty issue queue) and R(r) (a pseudo-random
// 1-in-1/r draw), or one of the degenerate constants 1 / 0.
//
// Selection is evaluated exactly once per line, when the miss that
// inserts it completes (§4.1: "the mode selection is determined once
// during cache line insertion").
type Selection struct {
	Always bool // "1": every line is high-priority (classic LRU)
	Never  bool // "0": no line is high-priority (LIP)
	NeedS  bool
	NeedE  bool
	HasR   bool
	RProb  float64
}

// Eval computes the equation for a completed miss. The random term is
// drawn only when the deterministic terms pass, so R acts as a filter
// on already-qualified lines (§5.5: lines must "prove themselves with
// multiple starvations").
func (s Selection) Eval(starved, iqEmpty bool, r *rng.Xoshiro256) bool {
	if s.Never {
		return false
	}
	if s.Always {
		return true
	}
	if s.NeedS && !starved {
		return false
	}
	if s.NeedE && !iqEmpty {
		return false
	}
	if s.HasR {
		return r.Bool(s.RProb)
	}
	return true
}

// String renders the selection in the paper's notation.
func (s Selection) String() string {
	if s.Always {
		return "1"
	}
	if s.Never {
		return "0"
	}
	var terms []string
	if s.NeedS {
		terms = append(terms, "S")
	}
	if s.NeedE {
		terms = append(terms, "E")
	}
	if s.HasR {
		terms = append(terms, fmt.Sprintf("R(%s)", formatProb(s.RProb)))
	}
	if len(terms) == 0 {
		return "1"
	}
	return strings.Join(terms, "&")
}

// formatProb prints 1/2^k probabilities as fractions, like the paper.
func formatProb(p float64) string {
	if p > 0 {
		inv := 1.0 / p
		if inv == float64(int64(inv)) {
			return fmt.Sprintf("1/%d", int64(inv))
		}
	}
	return fmt.Sprintf("%g", p)
}
