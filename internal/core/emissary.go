// Package core implements EMISSARY, the paper's contribution: the
// persistently-bimodal P(N) cache replacement treatment (Algorithm 1),
// the mode-selection equations of Table 1, the policy-notation parser
// for strings such as "P(8):S&E&R(1/32)", and the factory that builds
// any policy in the paper's design space (Table 3).
package core

import (
	"emissary/internal/policy"
)

// Emissary is the P(N) mode-treatment policy of §4.2, Algorithm 1.
// Up to N MRU high-priority lines per set are protected from eviction
// by low-priority insertions. Priority is carried in each line's P bit
// (policy.LineView.Priority), set once by mode selection and never
// changed while the line is resident (persistence). All misses insert
// — bypass was evaluated by the authors and rejected.
//
// The recency substrate is either a single true-LRU stamp array (used
// for the Figure 1 study) or dual tree-PLRUs, one per priority class,
// as the evaluations use: a hit updates only the matching tree, and
// eviction walks the matching tree skipping non-matching lines.
type Emissary struct {
	name string
	n    int

	// Exactly one of the two bases is non-nil.
	trueLRU *policy.TrueLRU
	lowT    *policy.TPLRU
	highT   *policy.TPLRU
}

// NewEmissaryTrueLRU builds P(N) over an exact-LRU base.
func NewEmissaryTrueLRU(name string, sets, ways, n int) *Emissary {
	return &Emissary{
		name:    name,
		n:       n,
		trueLRU: policy.NewTrueLRU(sets, ways),
	}
}

// NewEmissaryTPLRU builds P(N) over dual tree-PLRU bases (the
// hardware-realistic configuration used for all main results).
func NewEmissaryTPLRU(name string, sets, ways, n int) *Emissary {
	return &Emissary{
		name:  name,
		n:     n,
		lowT:  policy.NewTPLRU(sets, ways),
		highT: policy.NewTPLRU(sets, ways),
	}
}

// N returns the protected-way limit.
func (e *Emissary) N() int { return e.n }

// Name implements policy.Policy.
func (e *Emissary) Name() string { return e.name }

// touch updates recency for an access to a line of known priority.
// With dual TPLRU trees only the matching tree is updated (§4.2).
func (e *Emissary) touch(set, way int, high bool) {
	if e.trueLRU != nil {
		e.trueLRU.Touch(set, way)
		return
	}
	if high {
		e.highT.Touch(set, way)
	} else {
		e.lowT.Touch(set, way)
	}
}

// OnHit implements policy.Policy.
func (e *Emissary) OnHit(set, way int, view policy.SetView) {
	e.touch(set, way, view.Lines[way].Priority)
}

// OnFill implements policy.Policy. P(N) does not act on priority at
// insertion — every inserted line becomes the MRU of its class.
func (e *Emissary) OnFill(set, way int, view policy.SetView) {
	e.touch(set, way, view.Lines[way].Priority)
}

// victimAmong finds the LRU line within mask for the given class.
func (e *Emissary) victimAmong(set int, mask uint32, high bool) int {
	if mask == 0 {
		return -1
	}
	if e.trueLRU != nil {
		return e.trueLRU.VictimAmong(set, mask)
	}
	if high {
		return e.highT.VictimAmong(set, mask)
	}
	return e.lowT.VictimAmong(set, mask)
}

// Victim implements policy.Policy; this is Algorithm 1 verbatim.
// The incoming line's own priority does not influence the choice. The
// class masks are indexed straight off the cache-maintained view
// rather than re-derived with a way scan.
//
//vet:hot
func (e *Emissary) Victim(set int, view policy.SetView, incoming policy.LineView) int {
	highMask, lowMask := view.High, view.Low()
	if view.HighCount() <= e.n {
		if v := e.victimAmong(set, lowMask, false); v >= 0 {
			return v
		}
		// No low-priority line exists (possible when N >= ways or
		// after priority updates); fall through to the high class.
	}
	if v := e.victimAmong(set, highMask, true); v >= 0 {
		return v
	}
	// All ways invalid would contradict the Victim contract; evict 0.
	return 0
}

// OnInvalidate implements policy.Policy.
func (e *Emissary) OnInvalidate(set, way int) {}

// ResetState implements policy.Resetter: whichever recency bases exist
// return to their post-construction state (the seed is ignored; P(N)
// itself is deterministic — randomness lives in the Selector).
//
//vet:hot
func (e *Emissary) ResetState(seed uint64) {
	if e.trueLRU != nil {
		e.trueLRU.ResetState(seed)
		return
	}
	e.lowT.ResetState(seed)
	e.highT.ResetState(seed)
}

// OnPriorityUpdate implements policy.Policy. The P bit is read from
// the LineView at Victim time, and the dual trees are class-indexed by
// that same bit, so a promotion (L1I eviction writing P=1 into the L2
// copy) moves the line's future recency updates to the high tree; we
// seed its position there now so it is not immediately the high-class
// pseudo-LRU victim.
func (e *Emissary) OnPriorityUpdate(set, way int, view policy.SetView) {
	e.touch(set, way, view.Lines[way].Priority)
}
