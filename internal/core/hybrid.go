package core

import "emissary/internal/policy"

// EmissaryGHRP is the hybrid the paper's §7.2 proposes as future work:
// EMISSARY's P(N) protection for starvation-marked lines, with GHRP's
// dead-block prediction choosing the victim among the low-priority
// lines ("identify the low-priority dead blocks for eviction").
//
// High-priority lines keep their own tree-PLRU recency (as in plain
// EMISSARY); low-priority victims are predicted-dead lines first.
type EmissaryGHRP struct {
	name string
	n    int

	ghrp  *policy.GHRP
	highT *policy.TPLRU
}

// NewEmissaryGHRP builds the hybrid.
func NewEmissaryGHRP(name string, sets, ways, n int) *EmissaryGHRP {
	return &EmissaryGHRP{
		name:  name,
		n:     n,
		ghrp:  policy.NewGHRP(sets, ways),
		highT: policy.NewTPLRU(sets, ways),
	}
}

// Name implements policy.Policy.
func (e *EmissaryGHRP) Name() string { return e.name }

// OnHit implements policy.Policy. GHRP tracks every line (its history
// and signatures are global); the high tree additionally tracks
// protected-line recency.
func (e *EmissaryGHRP) OnHit(set, way int, view policy.SetView) {
	e.ghrp.OnHit(set, way, view)
	if view.Lines[way].Priority {
		e.highT.Touch(set, way)
	}
}

// OnFill implements policy.Policy.
func (e *EmissaryGHRP) OnFill(set, way int, view policy.SetView) {
	e.ghrp.OnFill(set, way, view)
	if view.Lines[way].Priority {
		e.highT.Touch(set, way)
	}
}

// Victim implements policy.Policy: Algorithm 1 with GHRP victim
// selection inside the low-priority class.
//
//vet:hot
func (e *EmissaryGHRP) Victim(set int, view policy.SetView, incoming policy.LineView) int {
	highMask, lowMask := view.High, view.Low()
	if view.HighCount() <= e.n {
		if v := e.ghrp.VictimAmong(set, lowMask); v >= 0 {
			return v
		}
	}
	if v := e.highT.VictimAmong(set, highMask); v >= 0 {
		return v
	}
	return 0
}

// OnInvalidate implements policy.Policy.
func (e *EmissaryGHRP) OnInvalidate(set, way int) {
	e.ghrp.OnInvalidate(set, way)
}

// ResetState implements policy.Resetter: both the GHRP predictor state
// and the high-class recency tree return to their post-construction
// state.
//
//vet:hot
func (e *EmissaryGHRP) ResetState(seed uint64) {
	e.ghrp.ResetState(seed)
	e.highT.ResetState(seed)
}

// OnPriorityUpdate implements policy.Policy: a promoted line joins the
// high class's recency order.
func (e *EmissaryGHRP) OnPriorityUpdate(set, way int, view policy.SetView) {
	if view.Lines[way].Priority {
		e.highT.Touch(set, way)
	}
}
