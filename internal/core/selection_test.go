package core

import (
	"strings"
	"testing"
	"testing/quick"

	"emissary/internal/rng"
)

// Property: every parsable generated selection string round-trips.
func TestSelectionRoundTripProperty(t *testing.T) {
	if err := quick.Check(func(needS, needE bool, rPow uint8) bool {
		sel := Selection{NeedS: needS, NeedE: needE}
		if rPow%4 != 0 || (!needS && !needE) {
			// Ensure at least one term: the empty selection renders as
			// the degenerate "1", which parses to Always by design.
			sel.HasR = true
			sel.RProb = 1.0 / float64(uint64(1)<<(rPow%7+1))
		}
		text := sel.String()
		spec, err := ParsePolicy("P(8):" + text)
		if err != nil {
			return false
		}
		return spec.Sel == sel
	}, nil); err != nil {
		t.Error(err)
	}
}

// Property: Eval is monotone in its inputs — granting a signal can
// never turn a true outcome false (for deterministic selections).
func TestSelectionEvalMonotone(t *testing.T) {
	r := rng.NewXoshiro256(1)
	if err := quick.Check(func(needS, needE, s, e bool) bool {
		sel := Selection{NeedS: needS, NeedE: needE}
		base := sel.Eval(s, e, r)
		if !base {
			return true
		}
		// Upgrading either signal keeps the outcome true.
		return sel.Eval(true, e, r) && sel.Eval(s, true, r) && sel.Eval(true, true, r)
	}, nil); err != nil {
		t.Error(err)
	}
}

// Property: with R absent, Eval never consumes randomness — two
// generators stay in lockstep regardless of the call pattern.
func TestSelectionDeterministicWithoutR(t *testing.T) {
	a, b := rng.NewXoshiro256(9), rng.NewXoshiro256(9)
	sel := Selection{NeedS: true, NeedE: true}
	for i := 0; i < 100; i++ {
		sel.Eval(i%2 == 0, i%3 == 0, a)
	}
	if a.Uint64() != b.Uint64() {
		t.Error("deterministic selection consumed random numbers")
	}
}

// Property: parser never panics on arbitrary input, and whatever it
// accepts must render back into something it accepts again.
func TestParsePolicyFuzzProperty(t *testing.T) {
	if err := quick.Check(func(raw string) bool {
		spec, err := ParsePolicy(raw)
		if err != nil {
			return true // rejection is fine; panics are not
		}
		again, err := ParsePolicy(spec.String())
		if err != nil {
			return false
		}
		return again.String() == spec.String()
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// The full notation corpus from Table 3 plus this repo's extensions
// must parse, render stably, and build.
func TestNotationCorpus(t *testing.T) {
	corpus := []string{
		"LRU", "TPLRU", "LIP", "BIP",
		"M:1", "M:0", "M:S", "M:E", "M:S&E", "M:R(1/2)", "M:R(1/64)",
		"M:S&R(1/32)", "M:E&R(1/16)", "M:S&E&R(1/32)",
		"P(0):S", "P(2):R(1/2)", "P(4):S&E", "P(6):S&E&R(1/16)",
		"P(8):S", "P(8):S&E", "P(8):S&E&R(1/32)", "P(8):R(1/32)",
		"P(10):S&E&R(1/32)", "P(12):S&E&R(1/64)", "P(14):S&E&R(1/32)",
		"P(8):S&E+LRU", "P(8):S&E&R(1/32)+GHRP", "P(8):S+GHRP",
		"SRRIP", "BRRIP", "DRRIP", "PDP", "DCLIP", "GHRP",
	}
	for _, text := range corpus {
		spec, err := ParsePolicy(text)
		if err != nil {
			t.Errorf("%q: %v", text, err)
			continue
		}
		rendered := spec.String()
		if strings.ReplaceAll(rendered, " ", "") == "" {
			t.Errorf("%q rendered empty", text)
		}
		if p := spec.Build(64, 16, 3); p == nil {
			t.Errorf("%q did not build", text)
		}
		respec, err := ParsePolicy(rendered)
		if err != nil || respec.String() != rendered {
			t.Errorf("%q: unstable render %q", text, rendered)
		}
	}
}
