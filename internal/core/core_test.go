package core

import (
	"math"
	"testing"
	"testing/quick"

	"emissary/internal/policy"
	"emissary/internal/rng"
)

func lines(ways int) []policy.LineView {
	ls := make([]policy.LineView, ways)
	for i := range ls {
		ls[i] = policy.LineView{Valid: true, Instr: true}
	}
	return ls
}

func TestEmissaryEvictsLowPriorityFirst(t *testing.T) {
	for _, base := range []string{"truelru", "tplru"} {
		var e *Emissary
		if base == "truelru" {
			e = NewEmissaryTrueLRU("P(2):S", 1, 4, 2)
		} else {
			e = NewEmissaryTPLRU("P(2):S", 1, 4, 2)
		}
		ls := lines(4)
		ls[1].Priority = true
		for w := 0; w < 4; w++ {
			e.OnFill(0, w, policy.ViewOf(ls))
		}
		// Way 1 is high-priority; with 1 <= N=2 the victim must be the
		// LRU among low-priority lines, i.e. way 0.
		if v := e.Victim(0, policy.ViewOf(ls), policy.LineView{Valid: true, Instr: true}); v != 0 {
			t.Errorf("[%s] Victim = %d, want 0", base, v)
		}
	}
}

func TestEmissaryAlgorithm1OverLimit(t *testing.T) {
	e := NewEmissaryTrueLRU("P(2):S", 1, 4, 2)
	ls := lines(4)
	// Three high-priority lines (ways 0,1,2), one low (way 3); N=2.
	for w := 0; w < 4; w++ {
		ls[w].Priority = w < 3
		e.OnFill(0, w, policy.ViewOf(ls))
	}
	// count(high)=3 > N=2: evict LRU among the high-priority lines = way 0.
	if v := e.Victim(0, policy.ViewOf(ls), policy.LineView{Valid: true, Instr: true}); v != 0 {
		t.Errorf("Victim = %d, want 0 (LRU high-priority line)", v)
	}
}

func TestEmissaryAllHighFallback(t *testing.T) {
	e := NewEmissaryTrueLRU("P(8):S", 1, 4, 8)
	ls := lines(4)
	for w := 0; w < 4; w++ {
		ls[w].Priority = true
		e.OnFill(0, w, policy.ViewOf(ls))
	}
	// count(high)=4 <= N=8 but there is no low-priority line; must
	// fall back to the high class rather than panic.
	if v := e.Victim(0, policy.ViewOf(ls), policy.LineView{Valid: true}); v != 0 {
		t.Errorf("Victim = %d, want 0", v)
	}
}

func TestEmissaryProtectionPersists(t *testing.T) {
	// A high-priority line older than every low-priority line must
	// survive as long as high count <= N (the essence of persistence).
	e := NewEmissaryTPLRU("P(4):S", 1, 8, 4)
	ls := lines(8)
	ls[0].Priority = true
	for w := 0; w < 8; w++ {
		e.OnFill(0, w, policy.ViewOf(ls))
	}
	// Touch every low-priority line many times; way 0 never touched.
	for i := 0; i < 100; i++ {
		for w := 1; w < 8; w++ {
			e.OnHit(0, w, policy.ViewOf(ls))
		}
	}
	for trial := 0; trial < 8; trial++ {
		if v := e.Victim(0, policy.ViewOf(ls), policy.LineView{Valid: true, Instr: true}); v == 0 {
			t.Fatalf("protected high-priority line evicted")
		}
	}
}

func TestEmissaryDualTreeIndependence(t *testing.T) {
	e := NewEmissaryTPLRU("P(4):S", 1, 8, 4)
	ls := lines(8)
	for w := 0; w < 8; w++ {
		ls[w].Priority = w < 4
		e.OnFill(0, w, policy.ViewOf(ls))
	}
	// Hits on high-priority lines must not disturb the low tree's
	// victim choice.
	before := e.Victim(0, policy.ViewOf(ls), policy.LineView{Valid: true})
	for i := 0; i < 16; i++ {
		e.OnHit(0, i%4, policy.ViewOf(ls))
	}
	after := e.Victim(0, policy.ViewOf(ls), policy.LineView{Valid: true})
	if before != after {
		t.Errorf("low-class victim changed %d -> %d after high-class hits", before, after)
	}
}

func TestEmissaryVictimAlwaysValid(t *testing.T) {
	e := NewEmissaryTPLRU("P(8):S&E", 4, 16, 8)
	ls := lines(16)
	r := rng.NewXoshiro256(3)
	for i := 0; i < 5000; i++ {
		set := r.Intn(4)
		w := e.Victim(set, policy.ViewOf(ls), policy.LineView{Valid: true, Instr: true})
		if w < 0 || w >= 16 {
			t.Fatalf("victim out of range: %d", w)
		}
		ls[w].Priority = r.Bool(0.3)
		e.OnFill(set, w, policy.ViewOf(ls))
		if r.Bool(0.5) {
			hw := r.Intn(16)
			e.OnHit(set, hw, policy.ViewOf(ls))
		}
	}
}

func TestSelectionEval(t *testing.T) {
	r := rng.NewXoshiro256(1)
	cases := []struct {
		sel     Selection
		s, e    bool
		want    bool
		certain bool // result independent of rng
	}{
		{Selection{Always: true}, false, false, true, true},
		{Selection{Never: true}, true, true, false, true},
		{Selection{NeedS: true}, true, false, true, true},
		{Selection{NeedS: true}, false, true, false, true},
		{Selection{NeedS: true, NeedE: true}, true, false, false, true},
		{Selection{NeedS: true, NeedE: true}, true, true, true, true},
		{Selection{NeedS: true, HasR: true, RProb: 0}, true, true, false, true},
		{Selection{NeedS: true, HasR: true, RProb: 1}, true, true, true, true},
	}
	for i, c := range cases {
		if got := c.sel.Eval(c.s, c.e, r); got != c.want {
			t.Errorf("case %d (%s): Eval(%v,%v) = %v, want %v", i, c.sel, c.s, c.e, got, c.want)
		}
	}
}

func TestSelectionRandRate(t *testing.T) {
	r := rng.NewXoshiro256(9)
	sel := Selection{NeedS: true, HasR: true, RProb: 1.0 / 32.0}
	hits := 0
	const n = 64000
	for i := 0; i < n; i++ {
		if sel.Eval(true, true, r) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-1.0/32.0) > 0.004 {
		t.Errorf("R(1/32) pass rate = %v", rate)
	}
}

func TestParsePolicyRoundTrip(t *testing.T) {
	cases := []string{
		"LRU", "TPLRU", "M:1", "M:0", "M:R(1/32)", "M:S", "M:S&E",
		"M:S&E&R(1/32)", "P(8):S", "P(8):S&E", "P(8):S&E&R(1/32)",
		"P(8):R(1/32)", "P(0):S", "P(14):S&E&R(1/64)",
		"SRRIP", "BRRIP", "DRRIP", "PDP", "DCLIP",
	}
	for _, text := range cases {
		spec, err := ParsePolicy(text)
		if err != nil {
			t.Errorf("ParsePolicy(%q): %v", text, err)
			continue
		}
		if spec.String() != text {
			t.Errorf("round trip %q -> %q", text, spec.String())
		}
	}
}

func TestParsePolicyAliases(t *testing.T) {
	lip := MustParsePolicy("LIP")
	if lip.Treatment != TreatMRUInsert || !lip.Sel.Never {
		t.Errorf("LIP parsed as %+v", lip)
	}
	bip := MustParsePolicy("BIP")
	if bip.Treatment != TreatMRUInsert || !bip.Sel.HasR || bip.Sel.RProb != 1.0/32.0 {
		t.Errorf("BIP parsed as %+v", bip)
	}
	lru := MustParsePolicy("LRU")
	if lru.Treatment != TreatRecency || !lru.TrueLRU {
		t.Errorf("LRU parsed as %+v", lru)
	}
}

func TestParsePolicyTrueLRUSuffix(t *testing.T) {
	spec := MustParsePolicy("P(8):S&E+LRU")
	if !spec.TrueLRU || spec.Treatment != TreatProtect || spec.N != 8 {
		t.Errorf("parsed %+v", spec)
	}
}

func TestParsePolicyWhitespaceAndCase(t *testing.T) {
	spec, err := ParsePolicy("p(8): s & e & r(1/32)")
	if err != nil {
		t.Fatalf("ParsePolicy: %v", err)
	}
	if spec.String() != "P(8):S&E&R(1/32)" {
		t.Errorf("got %q", spec.String())
	}
}

func TestParsePolicyErrors(t *testing.T) {
	bad := []string{
		"", "Q:1", "P(x):S", "P(8)", "P(8):", "M:W", "M:R(2)", "M:R(1/0)",
		"M:1&S", "M:0&R(1/2)", "P(-1):S", "M:R(-0.5)",
	}
	for _, text := range bad {
		if _, err := ParsePolicy(text); err == nil {
			t.Errorf("ParsePolicy(%q) succeeded, want error", text)
		}
	}
}

func TestMustParsePolicyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParsePolicy did not panic")
		}
	}()
	MustParsePolicy("garbage!!")
}

func TestSpecPredicates(t *testing.T) {
	if !MustParsePolicy("P(8):S&E").NeedsStarvationSignal() {
		t.Error("P(8):S&E should need the starvation signal")
	}
	if MustParsePolicy("P(8):R(1/32)").NeedsStarvationSignal() {
		t.Error("P(8):R(1/32) should not need the starvation signal")
	}
	if MustParsePolicy("SRRIP").UsesSelection() {
		t.Error("SRRIP should not use selection")
	}
	if !MustParsePolicy("P(8):S").PersistentPriority() {
		t.Error("P treatment should have persistent priority")
	}
	if MustParsePolicy("M:S").PersistentPriority() {
		t.Error("M treatment should not have persistent priority")
	}
}

func TestSpecBuildAll(t *testing.T) {
	for _, text := range []string{
		"LRU", "TPLRU", "M:0", "M:R(1/32)", "M:S&E&R(1/32)",
		"P(8):S&E&R(1/32)", "P(8):S&E+LRU", "SRRIP", "BRRIP", "DRRIP",
		"PDP", "DCLIP",
	} {
		spec := MustParsePolicy(text)
		p := spec.Build(64, 16, 1)
		if p == nil {
			t.Errorf("Build(%q) returned nil", text)
			continue
		}
		if spec.UsesSelection() || spec.Treatment == TreatRecency {
			if p.Name() != spec.String() {
				t.Errorf("Build(%q).Name() = %q", text, p.Name())
			}
		}
	}
}

func TestSelectorDeterminism(t *testing.T) {
	spec := MustParsePolicy("P(8):S&E&R(1/32)")
	a := spec.NewSelector(77)
	b := spec.NewSelector(77)
	for i := 0; i < 1000; i++ {
		if a.Select(true, true) != b.Select(true, true) {
			t.Fatalf("selectors diverged at draw %d", i)
		}
	}
}

func TestSelectionStringForms(t *testing.T) {
	if got := (Selection{}).String(); got != "1" {
		t.Errorf("empty selection String = %q, want 1 (degenerate always)", got)
	}
	if got := (Selection{NeedS: true, HasR: true, RProb: 0.015625}).String(); got != "S&R(1/64)" {
		t.Errorf("String = %q", got)
	}
	if got := (Selection{HasR: true, RProb: 0.3}).String(); got != "R(0.3)" {
		t.Errorf("String = %q", got)
	}
}

func TestEmissaryPropertyNeverEvictProtected(t *testing.T) {
	// Property: when high count <= N and at least one low-priority
	// valid line exists, the victim is low-priority.
	if err := quick.Check(func(prioBits uint8, touches []uint8) bool {
		const ways = 8
		const n = 4
		e := NewEmissaryTPLRU("P(4):S", 1, ways, n)
		ls := lines(ways)
		highCount := 0
		for w := 0; w < ways; w++ {
			ls[w].Priority = prioBits&(1<<uint(w)) != 0
			if ls[w].Priority {
				highCount++
			}
			e.OnFill(0, w, policy.ViewOf(ls))
		}
		for _, tch := range touches {
			e.OnHit(0, int(tch%ways), policy.ViewOf(ls))
		}
		v := e.Victim(0, policy.ViewOf(ls), policy.LineView{Valid: true, Instr: true})
		if highCount <= n && highCount < ways {
			return !ls[v].Priority
		}
		if highCount > n {
			return ls[v].Priority
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}
