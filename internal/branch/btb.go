// Package branch implements the front-end prediction structures of the
// paper's machine model (Table 4, §5.2): a 16K-entry branch target
// buffer holding basic-block descriptors, a TAGE conditional-branch
// predictor, an ITTAGE indirect-target predictor, and a return-address
// stack.
package branch

// Kind classifies the control-flow instruction terminating a basic
// block.
type Kind uint8

// Block-terminator kinds.
const (
	KindFallthrough  Kind = iota // block ends at a block-size cap, no branch
	KindCond                     // conditional branch
	KindJump                     // unconditional direct jump
	KindCall                     // direct call
	KindReturn                   // function return
	KindIndirect                 // indirect jump (e.g. switch, virtual call)
	KindIndirectCall             // indirect call
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindFallthrough:
		return "fallthrough"
	case KindCond:
		return "cond"
	case KindJump:
		return "jump"
	case KindCall:
		return "call"
	case KindReturn:
		return "return"
	case KindIndirect:
		return "indirect"
	case KindIndirectCall:
		return "indirect-call"
	default:
		return "unknown"
	}
}

// IsCall reports whether the terminator pushes a return address.
func (k Kind) IsCall() bool { return k == KindCall || k == KindIndirectCall }

// IsIndirect reports whether the target comes from the indirect
// predictor.
func (k Kind) IsIndirect() bool { return k == KindIndirect || k == KindIndirectCall }

// BTBEntry describes one basic block (§5.2: "each entry corresponds to
// a basic block", indexed by the block's starting address, holding the
// size and terminating branch kind; with fixed-width instructions the
// terminator PC is Start + 4*(NumInstrs-1)).
type BTBEntry struct {
	Start     uint64
	NumInstrs int
	EndKind   Kind
	Target    uint64 // taken target (block start address); 0 for return/indirect
}

// BranchPC returns the terminating instruction's address.
func (e BTBEntry) BranchPC() uint64 { return e.Start + 4*uint64(e.NumInstrs-1) }

// FallThrough returns the address of the next sequential block.
func (e BTBEntry) FallThrough() uint64 { return e.Start + 4*uint64(e.NumInstrs) }

// BTB is a set-associative branch target buffer over basic blocks with
// true-LRU replacement within each set.
type BTB struct {
	sets, ways int
	entries    []BTBEntry
	valid      []bool
	stamps     []uint64
	clock      uint64

	Hits   uint64
	Misses uint64
}

// NewBTB builds a BTB with `entries` total capacity (a power of two)
// and the given associativity.
func NewBTB(entries, ways int) *BTB {
	if entries <= 0 || entries%ways != 0 {
		panic("branch: BTB entries must be a positive multiple of ways")
	}
	sets := entries / ways
	if sets&(sets-1) != 0 {
		panic("branch: BTB set count must be a power of two")
	}
	return &BTB{
		sets:    sets,
		ways:    ways,
		entries: make([]BTBEntry, entries),
		valid:   make([]bool, entries),
		stamps:  make([]uint64, entries),
	}
}

// Reset invalidates every entry and zeroes the statistics, restoring
// post-construction state without reallocating.
//
//vet:hot
func (b *BTB) Reset() {
	clear(b.entries)
	clear(b.valid)
	clear(b.stamps)
	b.clock = 0
	b.Hits = 0
	b.Misses = 0
}

func (b *BTB) set(start uint64) int {
	// Blocks begin at 4-byte boundaries; drop the alignment bits.
	return int((start >> 2) & uint64(b.sets-1))
}

// Lookup finds the block descriptor for a block starting at start.
func (b *BTB) Lookup(start uint64) (BTBEntry, bool) {
	s := b.set(start)
	base := s * b.ways
	for w := 0; w < b.ways; w++ {
		if b.valid[base+w] && b.entries[base+w].Start == start {
			b.clock++
			b.stamps[base+w] = b.clock
			b.Hits++
			return b.entries[base+w], true
		}
	}
	b.Misses++
	return BTBEntry{}, false
}

// Probe reports presence without touching statistics or recency (used
// by the proactive pre-decoder to avoid redundant installs).
func (b *BTB) Probe(start uint64) bool {
	s := b.set(start)
	base := s * b.ways
	for w := 0; w < b.ways; w++ {
		if b.valid[base+w] && b.entries[base+w].Start == start {
			return true
		}
	}
	return false
}

// Insert installs or updates a block descriptor.
func (b *BTB) Insert(e BTBEntry) {
	s := b.set(e.Start)
	base := s * b.ways
	victim := 0
	var oldest uint64 = ^uint64(0)
	for w := 0; w < b.ways; w++ {
		if b.valid[base+w] && b.entries[base+w].Start == e.Start {
			victim = w
			oldest = 0
			break
		}
		if !b.valid[base+w] {
			victim = w
			oldest = 0
			break
		}
		if b.stamps[base+w] < oldest {
			victim = w
			oldest = b.stamps[base+w]
		}
	}
	b.clock++
	b.entries[base+victim] = e
	b.valid[base+victim] = true
	b.stamps[base+victim] = b.clock
}

// RAS is a fixed-depth return-address stack with wraparound on
// overflow (matching hardware behavior: deep recursion corrupts the
// oldest entries).
type RAS struct {
	stack []uint64
	top   int
	depth int
}

// NewRAS builds a return-address stack with the given capacity.
func NewRAS(capacity int) *RAS {
	if capacity <= 0 {
		panic("branch: RAS capacity must be positive")
	}
	return &RAS{stack: make([]uint64, capacity)}
}

// Push records a return address.
func (r *RAS) Push(addr uint64) {
	r.stack[r.top] = addr
	r.top = (r.top + 1) % len(r.stack)
	if r.depth < len(r.stack) {
		r.depth++
	}
}

// Peek returns the top of stack without popping; ok is false when the
// stack is empty.
func (r *RAS) Peek() (uint64, bool) {
	if r.depth == 0 {
		return 0, false
	}
	return r.stack[(r.top-1+len(r.stack))%len(r.stack)], true
}

// Pop predicts a return target; ok is false when the stack is empty.
func (r *RAS) Pop() (uint64, bool) {
	if r.depth == 0 {
		return 0, false
	}
	r.top = (r.top - 1 + len(r.stack)) % len(r.stack)
	r.depth--
	return r.stack[r.top], true
}

// Snapshot captures the stack state for mispredict recovery. It
// allocates; per-cycle callers keep one snapshot alive and refresh it
// with SnapshotInto instead.
func (r *RAS) Snapshot() RASSnapshot {
	s := RASSnapshot{stack: make([]uint64, len(r.stack))}
	r.SnapshotInto(&s)
	return s
}

// SnapshotInto refreshes s in place, reusing its backing array. s must
// have been produced by Snapshot on a RAS of the same capacity.
//
//vet:hot
func (r *RAS) SnapshotInto(s *RASSnapshot) {
	s.top = r.top
	s.depth = r.depth
	copy(s.stack, r.stack)
}

// Reset empties the stack, restoring post-construction state.
//
//vet:hot
func (r *RAS) Reset() {
	r.top = 0
	r.depth = 0
	clear(r.stack)
}

// Restore rolls the stack back to a snapshot.
func (r *RAS) Restore(s RASSnapshot) {
	r.top = s.top
	r.depth = s.depth
	copy(r.stack, s.stack)
}

// RASSnapshot is an opaque saved RAS state.
type RASSnapshot struct {
	top   int
	depth int
	stack []uint64
}
