package branch

// ITTAGE predicts indirect-branch targets with the same tagged
// geometric-history principle as TAGE: a PC-indexed base target table
// backed by two history-tagged tables, each entry holding a full
// target and a confidence counter.
type ITTAGE struct {
	base     []itEntry
	baseMask uint64
	tables   [numITTables]itTagged
	hist     uint64 // path history of taken-target bits

	Lookups     uint64
	Mispredicts uint64
}

const (
	numITTables = 2
	itSizeLg    = 11 // 2K entries per tagged table
	itTagBits   = 11
	itConfMax   = 3
)

var itHistLens = [numITTables]uint{6, 24}

type itEntry struct {
	target uint64
	conf   uint8
	valid  bool
}

type itTagEntry struct {
	tag    uint16
	target uint64
	conf   uint8
	u      uint8
	valid  bool
}

type itTagged struct {
	entries []itTagEntry
	histLen uint
}

// NewITTAGE builds the indirect predictor with a 2^baseSizeLg-entry
// base table.
func NewITTAGE(baseSizeLg uint) *ITTAGE {
	p := &ITTAGE{
		base:     make([]itEntry, 1<<baseSizeLg),
		baseMask: (1 << baseSizeLg) - 1,
	}
	for i := range p.tables {
		p.tables[i] = itTagged{
			entries: make([]itTagEntry, 1<<itSizeLg),
			histLen: itHistLens[i],
		}
	}
	return p
}

// Reset clears all targets, tags, and history, restoring
// post-construction state without reallocating.
//
//vet:hot
func (p *ITTAGE) Reset() {
	clear(p.base)
	for i := range p.tables {
		clear(p.tables[i].entries)
	}
	p.hist = 0
	p.Lookups = 0
	p.Mispredicts = 0
}

func (p *ITTAGE) index(table int, pc uint64) int {
	h := foldHistory(p.hist, p.tables[table].histLen, itSizeLg)
	return int(((pc >> 2) ^ (pc >> 11) ^ h) & ((1 << itSizeLg) - 1))
}

func (p *ITTAGE) tag(table int, pc uint64) uint16 {
	h := foldHistory(p.hist, p.tables[table].histLen, itTagBits)
	return uint16(((pc >> 2) ^ (h << 1)) & ((1 << itTagBits) - 1))
}

// Predict returns the predicted target for the indirect branch at pc;
// ok is false when no component has a target yet.
func (p *ITTAGE) Predict(pc uint64) (uint64, bool) {
	p.Lookups++
	for i := numITTables - 1; i >= 0; i-- {
		e := &p.tables[i].entries[p.index(i, pc)]
		if e.valid && e.tag == p.tag(i, pc) {
			return e.target, true
		}
	}
	b := &p.base[(pc>>2)&p.baseMask]
	if b.valid {
		return b.target, true
	}
	return 0, false
}

// Update trains the predictor with the actual target and advances the
// path history.
func (p *ITTAGE) Update(pc, target uint64) {
	// Find the provider.
	provider, provIdx := -1, 0
	for i := numITTables - 1; i >= 0; i-- {
		idx := p.index(i, pc)
		e := &p.tables[i].entries[idx]
		if e.valid && e.tag == p.tag(i, pc) {
			provider, provIdx = i, idx
			break
		}
	}

	var predicted uint64
	havePred := false
	if provider >= 0 {
		predicted = p.tables[provider].entries[provIdx].target
		havePred = true
	} else if b := &p.base[(pc>>2)&p.baseMask]; b.valid {
		predicted = b.target
		havePred = true
	}
	correct := havePred && predicted == target
	if !correct {
		p.Mispredicts++
	}

	if provider >= 0 {
		e := &p.tables[provider].entries[provIdx]
		if e.target == target {
			if e.conf < itConfMax {
				e.conf++
			}
			if e.u < uMax {
				e.u++
			}
		} else if e.conf > 0 {
			e.conf--
		} else {
			e.target = target
		}
	}

	// Train the base table always.
	b := &p.base[(pc>>2)&p.baseMask]
	if !b.valid || b.target != target {
		if b.valid && b.conf > 0 {
			b.conf--
		} else {
			*b = itEntry{target: target, conf: 1, valid: true}
		}
	} else if b.conf < itConfMax {
		b.conf++
	}

	// Allocate a longer-history entry on a wrong or missing prediction.
	if !correct && provider < numITTables-1 {
		for i := provider + 1; i < numITTables; i++ {
			idx := p.index(i, pc)
			e := &p.tables[i].entries[idx]
			if !e.valid || e.u == 0 {
				*e = itTagEntry{
					tag:    p.tag(i, pc),
					target: target,
					conf:   1,
					valid:  true,
				}
				break
			}
			e.u--
		}
	}

	p.hist = p.hist<<2 | ((target>>2)^(target>>12)^(target>>22))&3
}

// MispredictRate returns the fraction of mispredicted lookups.
func (p *ITTAGE) MispredictRate() float64 {
	if p.Lookups == 0 {
		return 0
	}
	return float64(p.Mispredicts) / float64(p.Lookups)
}
