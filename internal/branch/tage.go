package branch

// TAGE is a tagged-geometric-history conditional branch predictor
// (Seznec & Michaud), the conditional predictor of the paper's machine
// model. A bimodal base table backs four tagged tables indexed by
// geometrically increasing global-history lengths.
type TAGE struct {
	base     []int8 // 2-bit bimodal counters, [-2,1]
	baseMask uint64

	tables [numTagged]tagged
	hist   uint64 // global direction history, newest outcome in bit 0

	// Statistics.
	Lookups     uint64
	Mispredicts uint64
}

const (
	numTagged    = 4
	taggedSizeLg = 12 // 4K entries per tagged table
	tagBits      = 11
	ctrMax       = 3 // 3-bit signed counter in [-4,3]
	ctrMin       = -4
	uMax         = 3
)

// Geometric history lengths (bits of global history hashed into each
// tagged table's index/tag).
var histLens = [numTagged]uint{5, 15, 34, 60}

type taggedEntry struct {
	tag   uint16
	ctr   int8
	u     uint8
	valid bool
}

type tagged struct {
	entries []taggedEntry
	histLen uint
}

// NewTAGE builds the predictor with a 2^baseSizeLg-entry bimodal base.
func NewTAGE(baseSizeLg uint) *TAGE {
	t := &TAGE{
		base:     make([]int8, 1<<baseSizeLg),
		baseMask: (1 << baseSizeLg) - 1,
	}
	for i := range t.tables {
		t.tables[i] = tagged{
			entries: make([]taggedEntry, 1<<taggedSizeLg),
			histLen: histLens[i],
		}
	}
	return t
}

// Reset clears all counters, tags, and history, restoring
// post-construction state without reallocating.
//
//vet:hot
func (t *TAGE) Reset() {
	clear(t.base)
	for i := range t.tables {
		clear(t.tables[i].entries)
	}
	t.hist = 0
	t.Lookups = 0
	t.Mispredicts = 0
}

// foldHistory compresses the low n bits of history into width bits.
func foldHistory(hist uint64, n, width uint) uint64 {
	if n < 64 {
		hist &= (1 << n) - 1
	}
	var folded uint64
	for n > 0 {
		folded ^= hist & ((1 << width) - 1)
		hist >>= width
		if n >= width {
			n -= width
		} else {
			n = 0
		}
	}
	return folded
}

func (t *TAGE) taggedIndex(table int, pc uint64) int {
	tb := &t.tables[table]
	h := foldHistory(t.hist, tb.histLen, taggedSizeLg)
	idx := (pc >> 2) ^ (pc >> (taggedSizeLg + 2)) ^ h
	return int(idx & ((1 << taggedSizeLg) - 1))
}

func (t *TAGE) taggedTag(table int, pc uint64) uint16 {
	tb := &t.tables[table]
	h := foldHistory(t.hist, tb.histLen, tagBits)
	h2 := foldHistory(t.hist, tb.histLen, tagBits-1)
	return uint16(((pc >> 2) ^ h ^ (h2 << 1)) & ((1 << tagBits) - 1))
}

// predictComponents finds the longest-history matching table (provider)
// and the next-longest (alternate).
func (t *TAGE) predictComponents(pc uint64) (provider, alt int, provIdx, altIdx int) {
	provider, alt = -1, -1
	for i := numTagged - 1; i >= 0; i-- {
		idx := t.taggedIndex(i, pc)
		e := &t.tables[i].entries[idx]
		if e.valid && e.tag == t.taggedTag(i, pc) {
			if provider < 0 {
				provider, provIdx = i, idx
			} else {
				alt, altIdx = i, idx
				break
			}
		}
	}
	return
}

// Predict returns the predicted direction for the conditional branch
// at pc.
func (t *TAGE) Predict(pc uint64) bool {
	t.Lookups++
	provider, _, provIdx, _ := t.predictComponents(pc)
	if provider >= 0 {
		return t.tables[provider].entries[provIdx].ctr >= 0
	}
	return t.base[(pc>>2)&t.baseMask] >= 0
}

// Update trains the predictor with the branch's actual direction and
// advances the global history.
func (t *TAGE) Update(pc uint64, taken bool) {
	provider, alt, provIdx, altIdx := t.predictComponents(pc)

	var predicted bool
	if provider >= 0 {
		predicted = t.tables[provider].entries[provIdx].ctr >= 0
	} else {
		predicted = t.base[(pc>>2)&t.baseMask] >= 0
	}
	if predicted != taken {
		t.Mispredicts++
	}

	// Update the provider (or base) counter.
	if provider >= 0 {
		e := &t.tables[provider].entries[provIdx]
		e.ctr = bump(e.ctr, taken)
		// Useful bit: provider correct where the alternate differs.
		var altPred bool
		if alt >= 0 {
			altPred = t.tables[alt].entries[altIdx].ctr >= 0
		} else {
			altPred = t.base[(pc>>2)&t.baseMask] >= 0
		}
		if predicted != altPred {
			if predicted == taken {
				if e.u < uMax {
					e.u++
				}
			} else if e.u > 0 {
				e.u--
			}
		}
	} else {
		b := &t.base[(pc>>2)&t.baseMask]
		*b = bump2(*b, taken)
	}

	// Allocate a longer-history entry on misprediction.
	if predicted != taken && provider < numTagged-1 {
		allocated := false
		for i := provider + 1; i < numTagged; i++ {
			idx := t.taggedIndex(i, pc)
			e := &t.tables[i].entries[idx]
			if !e.valid || e.u == 0 {
				*e = taggedEntry{
					tag:   t.taggedTag(i, pc),
					ctr:   ctrInit(taken),
					u:     0,
					valid: true,
				}
				allocated = true
				break
			}
		}
		if !allocated {
			// Decay usefulness so future allocations can succeed.
			for i := provider + 1; i < numTagged; i++ {
				idx := t.taggedIndex(i, pc)
				if e := &t.tables[i].entries[idx]; e.u > 0 {
					e.u--
				}
			}
		}
	}

	t.hist = t.hist<<1 | b2u(taken)
}

// History exposes the global history register (for snapshots; wrong-
// path recovery simply refrains from updating, so no restore needed).
func (t *TAGE) History() uint64 { return t.hist }

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func bump(c int8, up bool) int8 {
	if up {
		if c < ctrMax {
			return c + 1
		}
		return c
	}
	if c > ctrMin {
		return c - 1
	}
	return c
}

func bump2(c int8, up bool) int8 {
	if up {
		if c < 1 {
			return c + 1
		}
		return c
	}
	if c > -2 {
		return c - 1
	}
	return c
}

func ctrInit(taken bool) int8 {
	if taken {
		return 0
	}
	return -1
}

// MispredictRate returns the fraction of mispredicted lookups.
func (t *TAGE) MispredictRate() float64 {
	if t.Lookups == 0 {
		return 0
	}
	return float64(t.Mispredicts) / float64(t.Lookups)
}
