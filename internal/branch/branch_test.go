package branch

import (
	"testing"
	"testing/quick"

	"emissary/internal/rng"
)

func TestKindHelpers(t *testing.T) {
	if !KindCall.IsCall() || !KindIndirectCall.IsCall() {
		t.Error("call kinds not recognized")
	}
	if KindJump.IsCall() {
		t.Error("jump is not a call")
	}
	if !KindIndirect.IsIndirect() || !KindIndirectCall.IsIndirect() {
		t.Error("indirect kinds not recognized")
	}
	if KindReturn.IsIndirect() {
		t.Error("return is not indirect-predicted")
	}
	for k := KindFallthrough; k <= KindIndirectCall; k++ {
		if k.String() == "unknown" {
			t.Errorf("kind %d has no name", k)
		}
	}
}

func TestBTBEntryGeometry(t *testing.T) {
	e := BTBEntry{Start: 0x1000, NumInstrs: 5, EndKind: KindCond, Target: 0x2000}
	if e.BranchPC() != 0x1010 {
		t.Errorf("BranchPC = %#x", e.BranchPC())
	}
	if e.FallThrough() != 0x1014 {
		t.Errorf("FallThrough = %#x", e.FallThrough())
	}
}

func TestBTBInsertLookup(t *testing.T) {
	b := NewBTB(1024, 4)
	e := BTBEntry{Start: 0x4000, NumInstrs: 3, EndKind: KindJump, Target: 0x8000}
	if _, ok := b.Lookup(0x4000); ok {
		t.Fatal("lookup hit on empty BTB")
	}
	b.Insert(e)
	got, ok := b.Lookup(0x4000)
	if !ok || got != e {
		t.Fatalf("Lookup = %+v, %v", got, ok)
	}
	if b.Hits != 1 || b.Misses != 1 {
		t.Errorf("hits/misses = %d/%d", b.Hits, b.Misses)
	}
}

func TestBTBUpdateInPlace(t *testing.T) {
	b := NewBTB(64, 4)
	b.Insert(BTBEntry{Start: 0x40, NumInstrs: 2, EndKind: KindCond, Target: 0x100})
	b.Insert(BTBEntry{Start: 0x40, NumInstrs: 2, EndKind: KindCond, Target: 0x200})
	e, ok := b.Lookup(0x40)
	if !ok || e.Target != 0x200 {
		t.Errorf("update-in-place failed: %+v %v", e, ok)
	}
}

func TestBTBLRUReplacement(t *testing.T) {
	b := NewBTB(16, 4) // 4 sets
	// Five blocks mapping to set 0 (start>>2 % 4 == 0).
	addrs := []uint64{0x00, 0x40, 0x80, 0xC0, 0x100}
	for _, a := range addrs[:4] {
		b.Insert(BTBEntry{Start: a, NumInstrs: 1})
	}
	b.Lookup(addrs[0]) // make entry 0 MRU
	b.Insert(BTBEntry{Start: addrs[4], NumInstrs: 1})
	if _, ok := b.Lookup(addrs[0]); !ok {
		t.Error("recently used entry evicted")
	}
	if _, ok := b.Lookup(addrs[1]); ok {
		t.Error("LRU entry survived")
	}
}

func TestBTBGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad BTB geometry did not panic")
		}
	}()
	NewBTB(100, 3)
}

func TestRASPushPop(t *testing.T) {
	r := NewRAS(4)
	if _, ok := r.Pop(); ok {
		t.Fatal("pop from empty RAS succeeded")
	}
	r.Push(1)
	r.Push(2)
	if v, ok := r.Pop(); !ok || v != 2 {
		t.Errorf("Pop = %d,%v", v, ok)
	}
	if v, ok := r.Pop(); !ok || v != 1 {
		t.Errorf("Pop = %d,%v", v, ok)
	}
}

func TestRASOverflowWraps(t *testing.T) {
	r := NewRAS(2)
	r.Push(1)
	r.Push(2)
	r.Push(3) // overwrites 1
	if v, _ := r.Pop(); v != 3 {
		t.Errorf("Pop = %d, want 3", v)
	}
	if v, _ := r.Pop(); v != 2 {
		t.Errorf("Pop = %d, want 2", v)
	}
	if _, ok := r.Pop(); ok {
		t.Error("RAS depth exceeded capacity")
	}
}

func TestRASSnapshotRestore(t *testing.T) {
	r := NewRAS(8)
	r.Push(10)
	r.Push(20)
	snap := r.Snapshot()
	r.Push(30)
	r.Pop()
	r.Pop()
	r.Restore(snap)
	if v, ok := r.Pop(); !ok || v != 20 {
		t.Errorf("after restore Pop = %d,%v want 20", v, ok)
	}
}

func TestTAGELearnsBias(t *testing.T) {
	p := NewTAGE(12)
	pc := uint64(0x1000)
	for i := 0; i < 100; i++ {
		p.Update(pc, true)
	}
	if !p.Predict(pc) {
		t.Error("TAGE did not learn an always-taken branch")
	}
}

func TestTAGELearnsPattern(t *testing.T) {
	// A global-history-correlated pattern: branch B taken iff branch A
	// was taken. TAGE should get B nearly perfect; a bimodal cannot.
	p := NewTAGE(12)
	r := rng.NewXoshiro256(4)
	correctB := 0
	const n = 20000
	for i := 0; i < n; i++ {
		aTaken := r.Bool(0.5)
		p.Update(0x100, aTaken)
		pred := p.Predict(0x200)
		if pred == aTaken {
			correctB++
		}
		p.Update(0x200, aTaken)
	}
	acc := float64(correctB) / n
	if acc < 0.95 {
		t.Errorf("TAGE accuracy on correlated branch = %v, want > 0.95", acc)
	}
}

func TestTAGELoopBranch(t *testing.T) {
	// An 8-iteration loop branch (7 taken, 1 not) is a classic
	// history-predictable pattern.
	p := NewTAGE(12)
	pc := uint64(0x300)
	warm := 0
	correct := 0
	total := 0
	for iter := 0; iter < 2000; iter++ {
		for i := 0; i < 8; i++ {
			taken := i < 7
			pred := p.Predict(pc)
			if warm > 400 {
				total++
				if pred == taken {
					correct++
				}
			}
			p.Update(pc, taken)
			warm++
		}
	}
	acc := float64(correct) / float64(total)
	if acc < 0.93 {
		t.Errorf("TAGE accuracy on loop branch = %v, want > 0.93", acc)
	}
}

func TestTAGERandomBranchBounded(t *testing.T) {
	// A 50/50 random branch cannot be predicted; accuracy should sit
	// near 0.5, proving we don't accidentally leak the oracle.
	p := NewTAGE(12)
	r := rng.NewXoshiro256(9)
	correct := 0
	const n = 20000
	for i := 0; i < n; i++ {
		taken := r.Bool(0.5)
		if p.Predict(0x500) == taken {
			correct++
		}
		p.Update(0x500, taken)
	}
	acc := float64(correct) / n
	if acc > 0.60 {
		t.Errorf("TAGE accuracy on random branch = %v, implausibly high", acc)
	}
}

func TestTAGEMispredictRate(t *testing.T) {
	p := NewTAGE(10)
	if p.MispredictRate() != 0 {
		t.Error("fresh predictor has nonzero mispredict rate")
	}
	for i := 0; i < 10; i++ {
		p.Predict(0x100)
		p.Update(0x100, true)
	}
	if r := p.MispredictRate(); r < 0 || r > 1 {
		t.Errorf("MispredictRate = %v", r)
	}
}

func TestFoldHistoryProperties(t *testing.T) {
	if err := quick.Check(func(h uint64, n8, w8 uint8) bool {
		n := uint(n8%64) + 1
		w := uint(w8%16) + 1
		f := foldHistory(h, n, w)
		return f < 1<<w
	}, nil); err != nil {
		t.Error(err)
	}
	if foldHistory(0, 64, 10) != 0 {
		t.Error("fold of zero history nonzero")
	}
}

func TestITTAGELearnsStableTarget(t *testing.T) {
	p := NewITTAGE(10)
	pc := uint64(0x700)
	for i := 0; i < 50; i++ {
		p.Update(pc, 0xAAAA)
	}
	if tgt, ok := p.Predict(pc); !ok || tgt != 0xAAAA {
		t.Errorf("Predict = %#x,%v", tgt, ok)
	}
}

func TestITTAGELearnsHistoryCorrelatedTargets(t *testing.T) {
	// Target alternates A,B,A,B — path history disambiguates.
	p := NewITTAGE(10)
	pc := uint64(0x900)
	targets := []uint64{0x1000, 0x2000}
	correct, total := 0, 0
	for i := 0; i < 8000; i++ {
		want := targets[i%2]
		if got, ok := p.Predict(pc); ok {
			if i > 2000 {
				total++
				if got == want {
					correct++
				}
			}
		}
		p.Update(pc, want)
	}
	if total == 0 {
		t.Fatal("no predictions made")
	}
	acc := float64(correct) / float64(total)
	if acc < 0.9 {
		t.Errorf("ITTAGE alternating-target accuracy = %v", acc)
	}
}

func TestITTAGEColdMiss(t *testing.T) {
	p := NewITTAGE(10)
	if _, ok := p.Predict(0xDEAD); ok {
		t.Error("cold predict returned a target")
	}
	if p.MispredictRate() != 0 {
		// A cold lookup is not a mispredict until Update says so.
		t.Errorf("MispredictRate = %v", p.MispredictRate())
	}
}

func BenchmarkTAGEPredictUpdate(b *testing.B) {
	p := NewTAGE(13)
	r := rng.NewXoshiro256(1)
	for i := 0; i < b.N; i++ {
		pc := uint64(i%512) << 2
		taken := r.Bool(0.7)
		p.Predict(pc)
		p.Update(pc, taken)
	}
}
