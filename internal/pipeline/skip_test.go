package pipeline

import (
	"errors"
	"testing"

	"emissary/internal/branch"
	"emissary/internal/cache"
	"emissary/internal/core"
	"emissary/internal/trace"
)

// coldWalkProgram is a long straight-line cold path: every line is a
// fresh miss, so decode starves for the full memory latency over and
// over — the stall-heavy shape the cycle skipper exists for.
func coldWalkProgram(blocks int) *fakeSource {
	f := &fakeSource{blocks: map[uint64]branch.BTBEntry{}, mem: map[uint64][]trace.MemRef{}}
	addr := uint64(0x10000)
	for i := 0; i < blocks; i++ {
		f.blocks[addr] = branch.BTBEntry{Start: addr, NumInstrs: 8, EndKind: branch.KindFallthrough}
		f.path = append(f.path, fakeStep{addr, false})
		addr += 32
	}
	return f
}

// newSkipPair builds two identically configured cores over two
// identically constructed sources, one with skipping (the default) and
// one walking every cycle.
func newSkipPair(t *testing.T, mkSrc func() trace.Source, policy string, mutate func(*Config)) (skip, naive *Core) {
	t.Helper()
	build := func(noSkip bool) *Core {
		hier := cache.NewHierarchy(cache.DefaultConfig(core.MustParsePolicy(policy)))
		cfg := DefaultConfig()
		if mutate != nil {
			mutate(&cfg)
		}
		cfg.NoCycleSkip = noSkip
		c, err := NewCore(cfg, mkSrc(), hier, 1)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	return build(false), build(true)
}

// compareCores asserts every observable the simulator reports is
// identical between the skip-enabled and naive cores.
func compareCores(t *testing.T, label string, skip, naive *Core) {
	t.Helper()
	if a, b := skip.Cycle(), naive.Cycle(); a != b {
		t.Fatalf("%s: cycle %d (skip) != %d (naive)", label, a, b)
	}
	if a, b := skip.Committed(), naive.Committed(); a != b {
		t.Fatalf("%s: committed %d (skip) != %d (naive)", label, a, b)
	}
	if a, b := skip.TakeSnapshot(), naive.TakeSnapshot(); a != b {
		t.Fatalf("%s: snapshots diverge:\nskip:  %+v\nnaive: %+v", label, a, b)
	}
	if a, b := skip.FetchDiagnostics(), naive.FetchDiagnostics(); a != b {
		t.Fatalf("%s: fetch diagnostics %v (skip) != %v (naive)", label, a, b)
	}
}

// TestSkipDifferentialLockstep runs skip/no-skip core pairs in small
// committed-instruction chunks over several program shapes and configs,
// asserting byte-identical Snapshots at every chunk boundary — the
// tentpole's equivalence contract at its finest observable grain.
func TestSkipDifferentialLockstep(t *testing.T) {
	cases := []struct {
		name   string
		mkSrc  func() trace.Source
		policy string
		mutate func(*Config)
	}{
		{"loop-default", func() trace.Source { return loopProgram(8, 400) }, "TPLRU", nil},
		{"cold-walk-fdip", func() trace.Source { return coldWalkProgram(3000) }, "TPLRU", nil},
		{"cold-walk-nofdip", func() trace.Source { return coldWalkProgram(3000) }, "TPLRU",
			func(c *Config) { c.FDIP = false }},
		{"cold-walk-tight-mshr", func() trace.Source { return coldWalkProgram(3000) }, "P(8):S&E&R(1/32)",
			func(c *Config) { c.MaxMSHRs = 2 }},
		{"cold-walk-track-reuse", func() trace.Source { return coldWalkProgram(2000) }, "M:S&E&R(1/32)",
			func(c *Config) { c.TrackReuse = true }},
		{"loop-priority-reset", func() trace.Source { return loopProgram(8, 400) }, "P(8):S&E&R(1/32)",
			func(c *Config) { c.PriorityResetInterval = 1000 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			skip, naive := newSkipPair(t, tc.mkSrc, tc.policy, tc.mutate)
			prev := uint64(0)
			for chunk := 0; ; chunk++ {
				a, errA := skip.RunCommitted(700)
				b, errB := naive.RunCommitted(700)
				if (errA == nil) != (errB == nil) {
					t.Fatalf("chunk %d: error mismatch: %v (skip) vs %v (naive)", chunk, errA, errB)
				}
				if a != b {
					t.Fatalf("chunk %d: committed %d (skip) != %d (naive)", chunk, a, b)
				}
				compareCores(t, tc.name, skip, naive)
				// Stop on a watchdog error or once the stream is dry
				// (committed stopped advancing).
				if errA != nil || a == prev {
					break
				}
				prev = a
			}
		})
	}
}

// TestSkipEngages guards the fast path against silently rotting: a
// cold straight-line walk stalls on memory for most of its cycles, and
// the skipper must absorb a large share of them.
func TestSkipEngages(t *testing.T) {
	c := newTestCore(t, coldWalkProgram(3000), "TPLRU")
	mustCommit(t, c, 1<<30)
	if c.SkippedCycles() == 0 {
		t.Fatal("cycle skipper never engaged on a memory-bound walk")
	}
	frac := float64(c.SkippedCycles()) / float64(c.Cycle())
	if frac < 0.2 {
		t.Errorf("skipped fraction = %.3f on a memory-bound walk, want >= 0.2", frac)
	}
}

// TestSkipDisabled proves the escape hatch: NoCycleSkip walks every
// cycle.
func TestSkipDisabled(t *testing.T) {
	hier := cache.NewHierarchy(cache.DefaultConfig(core.MustParsePolicy("TPLRU")))
	cfg := DefaultConfig()
	cfg.NoCycleSkip = true
	c, err := NewCore(cfg, coldWalkProgram(500), hier, 1)
	if err != nil {
		t.Fatal(err)
	}
	mustCommit(t, c, 1<<30)
	if c.SkippedCycles() != 0 {
		t.Errorf("SkippedCycles = %d with skipping disabled", c.SkippedCycles())
	}
}

// TestSkipErrorEquivalence proves the watchdog errors fire on exactly
// the same cycle with the same diagnostics whether or not spans were
// skipped: the skip caps (idle room, MaxCycles) are part of the
// byte-identical contract.
func TestSkipErrorEquivalence(t *testing.T) {
	t.Run("cycle-budget", func(t *testing.T) {
		skip, naive := newSkipPair(t, func() trace.Source { return loopProgram(8, 10_000) }, "TPLRU",
			func(c *Config) { c.MaxCycles = 500 })
		_, errA := skip.RunCommitted(1 << 30)
		_, errB := naive.RunCommitted(1 << 30)
		assertSameStallError(t, errA, errB, ErrCycleBudget)
		compareCores(t, "cycle-budget", skip, naive)
	})
	t.Run("no-progress", func(t *testing.T) {
		skip, naive := newSkipPair(t, func() trace.Source { return loopProgram(8, 100) }, "TPLRU",
			func(c *Config) { c.NoProgressLimit = 10 })
		_, errA := skip.RunCommitted(1 << 30)
		_, errB := naive.RunCommitted(1 << 30)
		assertSameStallError(t, errA, errB, ErrNoProgress)
		compareCores(t, "no-progress", skip, naive)
	})
	t.Run("no-progress-long", func(t *testing.T) {
		// A dead machine (stream exhausted upstream of a stalled line is
		// impossible here, so use a tiny budget after real work) must
		// report the identical idle streak even when the skipper jumps
		// most of it in one hop.
		skip, naive := newSkipPair(t, func() trace.Source { return coldWalkProgram(200) }, "TPLRU",
			func(c *Config) { c.NoProgressLimit = 150 })
		_, errA := skip.RunCommitted(1 << 30)
		_, errB := naive.RunCommitted(1 << 30)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("error mismatch: %v vs %v", errA, errB)
		}
		if errA != nil {
			assertSameStallError(t, errA, errB, ErrNoProgress)
		}
		compareCores(t, "no-progress-long", skip, naive)
	})
}

func assertSameStallError(t *testing.T, errA, errB error, want error) {
	t.Helper()
	if errA == nil || errB == nil {
		t.Fatalf("expected stall errors, got %v (skip), %v (naive)", errA, errB)
	}
	if !errors.Is(errA, want) || !errors.Is(errB, want) {
		t.Fatalf("errors %v / %v, want %v", errA, errB, want)
	}
	var a, b *StallError
	if !errors.As(errA, &a) || !errors.As(errB, &b) {
		t.Fatalf("errors %T / %T, want *StallError", errA, errB)
	}
	if *a != *b {
		t.Fatalf("stall errors diverge:\nskip:  %+v\nnaive: %+v", *a, *b)
	}
}

// TestSkipFetchDiagnostics is the FTQ-occupancy satellite: the average
// occupancy FetchDiagnostics reports must account for skipped spans
// (occupancy is constant while skipped), matching the naive walk.
func TestSkipFetchDiagnostics(t *testing.T) {
	skip, naive := newSkipPair(t, func() trace.Source { return coldWalkProgram(3000) }, "TPLRU", nil)
	mustCommit(t, skip, 1<<30)
	mustCommit(t, naive, 1<<30)
	if skip.SkippedCycles() == 0 {
		t.Fatal("skipper never engaged; diagnostics comparison is vacuous")
	}
	a, b := skip.FetchDiagnostics(), naive.FetchDiagnostics()
	if a != b {
		t.Fatalf("FetchDiagnostics diverge: %v (skip) vs %v (naive)", a, b)
	}
	if a[0] == 0 {
		t.Error("average FTQ occupancy reported as zero over a run with fetched blocks")
	}
}
