// Package pipeline implements the simulated core: the decoupled FDIP
// front-end of §5.2 (basic-block BTB, FTQ, run-ahead instruction
// prefetching, pre-decoder, decode with starvation tracking) and an
// approximate out-of-order back-end (ROB/IQ/LSQ occupancy, dependence-
// and bandwidth-limited issue, in-order commit), driven cycle by cycle
// against an oracle instruction stream with full wrong-path fetch
// modeling.
package pipeline

import "fmt"

// Config sizes the core per Table 4 (Alderlake-like).
type Config struct {
	FetchWidth  int // basic blocks predicted per cycle (1)
	DecodeWidth int
	IssueWidth  int
	CommitWidth int

	FTQEntries  int // 24
	FTQInstrCap int // 192-instruction buffer

	ROBSize int // 512
	IQSize  int // 240
	LQSize  int // 128
	SQSize  int // 72

	BTBEntries int // 16K
	BTBWays    int
	RASDepth   int

	// FDIP enables decoupled run-ahead instruction prefetching from
	// the FTQ; with it off, lines are requested only when decode
	// demands them (the no-FDIP baseline of §5.2's 33.1% comparison).
	FDIP bool

	// MaxMSHRs bounds outstanding instruction-line misses.
	MaxMSHRs int

	// PredecodeLatency is the BTB-miss fill delay (§5.2's pre-decoder).
	PredecodeLatency int

	// ExecOffset models the dispatch-to-execute pipeline depth; it
	// adds to every instruction's completion time and therefore to the
	// branch-resolution (mispredict) penalty.
	ExecOffset int

	// PriorityResetInterval clears all P bits every this many committed
	// instructions (§6's reset mechanism); 0 disables.
	PriorityResetInterval uint64

	// MRCEntries enables a Misprediction Recovery Cache of that many
	// lines (§7.3); 0 disables (the default — the paper's baseline has
	// none).
	MRCEntries int

	// TrackReuse enables per-access reuse-distance tracking and
	// starvation attribution by reuse bucket (Figure 2); it slows the
	// simulation noticeably.
	TrackReuse bool

	// MaxCycles bounds the whole run: RunCommitted returns a
	// StallError wrapping ErrCycleBudget once the cycle counter
	// reaches it. 0 disables the budget.
	MaxCycles uint64

	// NoProgressLimit is the no-commit cycle streak treated as a
	// livelock (StallError wrapping ErrNoProgress). 0 selects the
	// default of 5M cycles — far beyond any legitimate stall (a DRAM
	// round trip is a few hundred cycles).
	NoProgressLimit uint64

	// NoCycleSkip disables the event-driven fast-forward over
	// quiescent stall spans and walks every cycle naively. Results are
	// byte-identical either way (the skipper's contract, pinned by the
	// differential tests); this is a debugging escape hatch and the
	// reference half of those tests.
	NoCycleSkip bool
}

// DefaultConfig returns the Table 4 core.
func DefaultConfig() Config {
	return Config{
		FetchWidth:       1,
		DecodeWidth:      8,
		IssueWidth:       8,
		CommitWidth:      8,
		FTQEntries:       24,
		FTQInstrCap:      192,
		ROBSize:          512,
		IQSize:           240,
		LQSize:           128,
		SQSize:           72,
		BTBEntries:       16384,
		BTBWays:          4,
		RASDepth:         32,
		FDIP:             true,
		MaxMSHRs:         16,
		PredecodeLatency: 3,
		ExecOffset:       4,
	}
}

// Validate reports the first implausible field.
func (c Config) Validate() error {
	switch {
	case c.DecodeWidth <= 0 || c.IssueWidth <= 0 || c.CommitWidth <= 0:
		return fmt.Errorf("pipeline: widths must be positive")
	case c.FTQEntries <= 0 || c.FTQInstrCap <= 0:
		return fmt.Errorf("pipeline: FTQ sizes must be positive")
	case c.ROBSize <= 0 || c.IQSize <= 0 || c.LQSize <= 0 || c.SQSize <= 0:
		return fmt.Errorf("pipeline: window sizes must be positive")
	case c.BTBEntries <= 0 || c.BTBWays <= 0 || c.RASDepth <= 0:
		return fmt.Errorf("pipeline: predictor sizes must be positive")
	case c.MaxMSHRs <= 0:
		return fmt.Errorf("pipeline: MaxMSHRs must be positive")
	case c.PredecodeLatency < 0 || c.ExecOffset < 0:
		return fmt.Errorf("pipeline: latencies must be non-negative")
	}
	return nil
}
