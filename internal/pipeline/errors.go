package pipeline

import (
	"errors"
	"fmt"
)

// ErrNoProgress reports a livelocked core: no instruction committed for
// Config.NoProgressLimit consecutive cycles. It used to be a bare
// panic, which tore down a whole experiment sweep; it is now a typed,
// recoverable error so one wedged job costs only itself.
var ErrNoProgress = errors.New("pipeline: no commit progress")

// ErrCycleBudget reports that the run exceeded Config.MaxCycles before
// reaching its commit target.
var ErrCycleBudget = errors.New("pipeline: cycle budget exhausted")

// Stall is the diagnostic snapshot attached to a StallError: where the
// machine was and what the relevant queues held when the run aborted.
type Stall struct {
	Cycle     uint64
	Committed uint64

	// Occupancies at abort time: FTQ entries, ROB entries, and
	// outstanding instruction-line misses (MSHRs in use).
	FTQOccupancy  int
	ROBOccupancy  int
	MSHROccupancy int
}

// StallError wraps ErrNoProgress or ErrCycleBudget with the machine
// state at abort time. Match the cause with errors.Is and recover the
// snapshot with errors.As.
type StallError struct {
	Reason error // ErrNoProgress or ErrCycleBudget
	// IdleCycles is the no-commit streak length (ErrNoProgress only).
	IdleCycles uint64
	// Budget is the exceeded Config.MaxCycles (ErrCycleBudget only).
	Budget uint64
	Stall  Stall
}

func (e *StallError) Error() string {
	switch e.Reason {
	case ErrNoProgress:
		return fmt.Sprintf("%v for %d cycles at cycle %d (committed %d, FTQ %d, ROB %d, MSHR %d)",
			e.Reason, e.IdleCycles, e.Stall.Cycle, e.Stall.Committed,
			e.Stall.FTQOccupancy, e.Stall.ROBOccupancy, e.Stall.MSHROccupancy)
	case ErrCycleBudget:
		return fmt.Sprintf("%v: MaxCycles %d reached (committed %d, FTQ %d, ROB %d, MSHR %d)",
			e.Reason, e.Budget, e.Stall.Committed,
			e.Stall.FTQOccupancy, e.Stall.ROBOccupancy, e.Stall.MSHROccupancy)
	}
	return e.Reason.Error()
}

func (e *StallError) Unwrap() error { return e.Reason }

// Transient reports false: the simulated machine is deterministic, so
// a livelock or blown cycle budget recurs identically on retry.
func (e *StallError) Transient() bool { return false }
