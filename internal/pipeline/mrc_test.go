package pipeline

import (
	"testing"

	"emissary/internal/cache"
	"emissary/internal/core"
)

func TestMRCDisabledIsNil(t *testing.T) {
	if newMRC(0) != nil {
		t.Error("newMRC(0) should disable the buffer")
	}
}

func TestMRCInsertAndHit(t *testing.T) {
	m := newMRC(4)
	m.onRecover()
	m.observeRequest(0x10)
	m.observeRequest(0x11)
	if !m.contains(0x10) || !m.contains(0x11) {
		t.Error("captured lines missing")
	}
	if m.contains(0x99) {
		t.Error("phantom hit")
	}
	if m.Hits != 2 || m.Inserts != 2 {
		t.Errorf("hits/inserts = %d/%d", m.Hits, m.Inserts)
	}
}

func TestMRCFillWindowBounds(t *testing.T) {
	m := newMRC(16)
	m.onRecover()
	for i := 0; i < mrcFillWindow+5; i++ {
		m.observeRequest(uint64(0x100 + i))
	}
	if m.Inserts != mrcFillWindow {
		t.Errorf("inserts = %d, want window %d", m.Inserts, mrcFillWindow)
	}
	// Outside a window nothing is captured.
	m.observeRequest(0x999)
	if m.contains(0x999) {
		t.Error("line captured outside window")
	}
}

func TestMRCLRUEviction(t *testing.T) {
	m := newMRC(2)
	m.onRecover()
	m.observeRequest(1)
	m.observeRequest(2)
	m.contains(1) // refresh 1
	m.onRecover()
	m.observeRequest(3) // evicts 2
	if m.contains(2) {
		t.Error("LRU entry survived")
	}
	if !m.contains(1) || !m.contains(3) {
		t.Error("expected entries missing")
	}
}

func TestMRCDuplicateInsert(t *testing.T) {
	m := newMRC(4)
	m.onRecover()
	m.observeRequest(7)
	m.insert(7)
	count := 0
	for i := range m.entries {
		if m.valid[i] && m.entries[i] == 7 {
			count++
		}
	}
	if count != 1 {
		t.Errorf("line stored %d times", count)
	}
}

func TestCoreWithMRCRuns(t *testing.T) {
	src := loopProgram(8, 300)
	hier := cache.NewHierarchy(cache.DefaultConfig(core.MustParsePolicy("TPLRU")))
	cfg := DefaultConfig()
	cfg.MRCEntries = 32
	c, err := NewCore(cfg, src, hier, 1)
	if err != nil {
		t.Fatal(err)
	}
	total := uint64(0)
	for _, s := range src.path {
		total += uint64(src.blocks[s.addr].NumInstrs)
	}
	if got := mustCommit(t, c, 1<<30); got != total {
		t.Errorf("committed %d, want %d (MRC must not corrupt the stream)", got, total)
	}
}
