package pipeline

import (
	"errors"
	"strings"
	"testing"

	"emissary/internal/cache"
	"emissary/internal/core"
)

// TestFaultCycleBudget proves a run that exceeds Config.MaxCycles
// returns ErrCycleBudget with a diagnostic snapshot instead of
// spinning forever.
func TestFaultCycleBudget(t *testing.T) {
	src := loopProgram(8, 10_000)
	hier := cache.NewHierarchy(cache.DefaultConfig(core.MustParsePolicy("TPLRU")))
	cfg := DefaultConfig()
	cfg.MaxCycles = 500
	c, err := NewCore(cfg, src, hier, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.RunCommitted(1 << 30)
	if err == nil {
		t.Fatal("cycle budget never tripped")
	}
	if !errors.Is(err, ErrCycleBudget) {
		t.Fatalf("err = %v, want ErrCycleBudget", err)
	}
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("err = %T, want *StallError", err)
	}
	if se.Budget != cfg.MaxCycles {
		t.Errorf("Budget = %d, want %d", se.Budget, cfg.MaxCycles)
	}
	if se.Stall.Cycle < cfg.MaxCycles {
		t.Errorf("Stall.Cycle = %d, want >= %d", se.Stall.Cycle, cfg.MaxCycles)
	}
	if !strings.Contains(se.Error(), "cycle budget") {
		t.Errorf("message %q lacks budget diagnosis", se.Error())
	}
}

// TestFaultNoProgress proves a commit drought longer than
// Config.NoProgressLimit surfaces as ErrNoProgress rather than a
// silent livelock. The cold-start DRAM fill (hundreds of cycles
// before the first commit) trips a tiny limit reliably.
func TestFaultNoProgress(t *testing.T) {
	src := loopProgram(8, 100)
	hier := cache.NewHierarchy(cache.DefaultConfig(core.MustParsePolicy("TPLRU")))
	cfg := DefaultConfig()
	cfg.NoProgressLimit = 10
	c, err := NewCore(cfg, src, hier, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.RunCommitted(1 << 30)
	if err == nil {
		t.Fatal("no-progress watchdog never tripped")
	}
	if !errors.Is(err, ErrNoProgress) {
		t.Fatalf("err = %v, want ErrNoProgress", err)
	}
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("err = %T, want *StallError", err)
	}
	if se.IdleCycles <= cfg.NoProgressLimit {
		t.Errorf("IdleCycles = %d, want > %d", se.IdleCycles, cfg.NoProgressLimit)
	}
}

// TestFaultNoProgressDefaultUnbounded proves the default configuration
// does not trip either watchdog on a healthy run.
func TestFaultNoProgressDefaultUnbounded(t *testing.T) {
	src := loopProgram(8, 100)
	c := newTestCore(t, src, "TPLRU")
	if got := mustCommit(t, c, 1<<30); got == 0 {
		t.Error("healthy run committed nothing")
	}
}
