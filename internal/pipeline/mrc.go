package pipeline

// mrc is a Misprediction Recovery Cache (§7.3 of the paper: Nanda et
// al.'s MRC, productized as Samsung's Misprediction Recovery Buffer):
// a small fully-associative buffer holding the instruction lines
// needed immediately after branch re-steers, where decode starvation
// is most exposed. The paper argues MRC and EMISSARY address
// orthogonal reuse regimes (short vs long); this implementation lets
// the combination be measured.
//
// Model: lines fetched within the first few requests after a recovery
// are candidates; an MRC hit serves the line with no miss penalty
// (the buffer sits beside L1I and feeds decode directly).
type mrc struct {
	entries []uint64
	valid   []bool
	stamps  []uint64
	clock   uint64 //vet:skip-invariant probed only past requestLine's MSHR-full early return; requestWouldStall confines skips to that path

	// fillWindow counts how many more post-recovery line requests are
	// insertion candidates.
	//vet:skip-invariant consumed only past requestLine's MSHR-full early return; requestWouldStall confines skips to that path
	fillWindow int

	Hits    uint64 //vet:skip-invariant probed only past requestLine's MSHR-full early return; requestWouldStall confines skips to that path
	Inserts uint64 //vet:skip-invariant inserts happen only past requestLine's MSHR-full early return; requestWouldStall confines skips to that path
}

// mrcFillWindow is how many distinct line requests after a re-steer
// are captured.
const mrcFillWindow = 6

func newMRC(entries int) *mrc {
	if entries <= 0 {
		return nil
	}
	return &mrc{
		entries: make([]uint64, entries),
		valid:   make([]bool, entries),
		stamps:  make([]uint64, entries),
	}
}

// reset restores post-construction state, keeping allocations.
//
//vet:hot
func (m *mrc) reset() {
	clear(m.entries)
	clear(m.valid)
	clear(m.stamps)
	m.clock = 0
	m.fillWindow = 0
	m.Hits = 0
	m.Inserts = 0
}

// contains probes the buffer, refreshing recency on a hit.
func (m *mrc) contains(line uint64) bool {
	for i := range m.entries {
		if m.valid[i] && m.entries[i] == line {
			m.clock++
			m.stamps[i] = m.clock
			m.Hits++
			return true
		}
	}
	return false
}

// insert installs a line, evicting the least recently used entry.
func (m *mrc) insert(line uint64) {
	victim, oldest := 0, ^uint64(0)
	for i := range m.entries {
		if m.valid[i] && m.entries[i] == line {
			return
		}
		if !m.valid[i] {
			victim, oldest = i, 0
			break
		}
		if m.stamps[i] < oldest {
			victim, oldest = i, m.stamps[i]
		}
	}
	m.clock++
	m.entries[victim] = line
	m.valid[victim] = true
	m.stamps[victim] = m.clock
	m.Inserts++
}

// onRecover opens the post-re-steer capture window.
func (m *mrc) onRecover() { m.fillWindow = mrcFillWindow }

// observeRequest is called for each correct-path line request; within
// the capture window the line is installed.
func (m *mrc) observeRequest(line uint64) {
	if m.fillWindow > 0 {
		m.insert(line)
		m.fillWindow--
	}
}
