package pipeline

// Event-driven cycle skipping: when a Step makes no progress and every
// condition that could change the machine's state lies strictly in the
// future, the span until the earliest such wake-up event is a sequence
// of cycles that each repeat the same no-op Step with the same counter
// increments. planSkip proves a cycle is such a fixed point and
// captures the per-cycle counter deltas; Core.skipTo then jumps the
// clock across the span, bulk-applying delta x length, with results
// byte-identical to the naive walk (pinned by TestGoldenEquivalence
// and the skip/no-skip differential tests).

import (
	"emissary/internal/branch"
	"emissary/internal/stats"
	"emissary/internal/trace"
)

// never is the "no wake-up scheduled" sentinel: a machine with no
// future events is dead, and the skipper may jump straight to the
// caller's cap (livelock or cycle-budget detection in O(1)).
const never = ^uint64(0)

// Fetch-blocked classification for a quiet cycle, mirroring the
// counter chain at the top of fetchBlock.
const (
	fbNone = iota
	fbDeadEnd
	fbFull
	fbPredecode
)

// skipDelta is the set of per-cycle counter increments one quiet
// cycle accrues; skipTo multiplies it by the span length. Everything
// else a Step can touch is provably constant across the span.
type skipDelta struct {
	// classifyStall records exactly one kind per no-commit cycle.
	stallKind stats.StallKind
	// fetchBlock's blocked counter, charged FetchWidth times a cycle.
	fetchBlockKind int
	// decode with an empty FTQ.
	fetchStall bool
	// MSHR-full retries per cycle: decode's demand request and/or the
	// FDIP prefetch scan's first unrequested line (0, 1 or 2).
	mshrFull uint64
	// Decode starved on an in-flight line (markStarvation repeats).
	starv, starvIQE, starvCommit, starvBucketOK bool
	starvBucket                                 int
}

// requestWouldStall reports whether requestLine(line) would hit the
// MSHR-full path with no other side effect — the only requestLine
// outcome that leaves the front-end unchanged (modulo the
// MSHRFullEvents counter). Any other outcome (reuse-tracker update,
// MSHR merge setting the requested bit, probe/fill) mutates state, so
// the caller must refuse to skip.
func (f *frontend) requestWouldStall(line uint64, trackFig2 bool) bool {
	if trackFig2 && f.tracker != nil && (!f.haveReuseLine || f.lastReuseLine != line) {
		return false
	}
	if _, ok := f.inflight[line]; ok {
		return false
	}
	return len(f.pending) >= f.cfg.MaxMSHRs
}

// nextFillCompletion returns the earliest outstanding-miss completion
// cycle, and whether any miss is outstanding.
func (f *frontend) nextFillCompletion() (uint64, bool) {
	if len(f.pending) == 0 {
		return 0, false
	}
	min := f.pending[0].completeAt
	for _, m := range f.pending[1:] {
		if m.completeAt < min {
			min = m.completeAt
		}
	}
	return min, true
}

// planSkip decides whether the machine is quiescent at the current
// cycle — every Step until the next wake-up event would change nothing
// but monotone counters — and if so returns the earliest cycle at
// which state can change (never if none) plus the per-cycle counter
// delta. It must be called only immediately after a Step that
// committed nothing: one-time effects of entering the stalled state
// (starvation marking, reuse-tracker accesses) have then already
// fired, which planSkip verifies before declaring the span skippable.
func (c *Core) planSkip() (uint64, skipDelta, bool) {
	now := c.cycle
	wake := uint64(never)
	var d skipDelta

	// A pending priority reset would re-trigger every cycle.
	if c.nextPriorityReset > 0 && c.be.committed >= c.nextPriorityReset {
		return 0, d, false
	}

	// Back end: a commit-eligible ROB head or resolved mispredict
	// means the next Step mutates state; otherwise their timestamps
	// are wake-up events. classifyStall's kind is constant up to the
	// flush-recovery window boundary.
	b := c.be
	if b.resolve.active {
		if b.resolve.completeAt <= now {
			return 0, d, false
		}
		if b.resolve.completeAt < wake {
			wake = b.resolve.completeAt
		}
	}
	if b.count > 0 {
		head := &b.rob[b.head]
		if head.completeAt <= now {
			return 0, d, false
		}
		if head.completeAt < wake {
			wake = head.completeAt
		}
		d.stallKind = stats.StallBackEnd
	} else if b.lastFlushAt != 0 && now-b.lastFlushAt <= 12 {
		d.stallKind = stats.StallFlushRecover
		if bound := b.lastFlushAt + 13; bound < wake {
			wake = bound
		}
	} else {
		d.stallKind = stats.StallFrontEnd
	}
	if ev, ok := b.nextIQEvent(now); ok {
		if ev <= now {
			return 0, d, false
		}
		if ev < wake {
			wake = ev
		}
	}

	// Front end: outstanding fills and the predecoder are the timed
	// state; each completion is a wake-up event.
	f := c.fe
	if fill, ok := f.nextFillCompletion(); ok {
		if fill <= now {
			return 0, d, false
		}
		if fill < wake {
			wake = fill
		}
	}
	if f.predecodeBusy {
		if f.predecodeAt <= now {
			return 0, d, false
		}
		if f.predecodeAt < wake {
			wake = f.predecodeAt
		}
	}

	// fetchBlock must be on a blocked path (the counter chain mirrors
	// its first lines); anything else predicts and enqueues.
	switch {
	case f.deadEnd:
		d.fetchBlockKind = fbDeadEnd
	case f.full():
		d.fetchBlockKind = fbFull
	case f.predecodeBusy: // now < predecodeAt established above
		d.fetchBlockKind = fbPredecode
	case f.oracleDone:
		d.fetchBlockKind = fbNone
	default:
		return 0, d, false
	}

	// decode: each stalled shape repeats with a fixed counter delta.
	if e := f.head(); e == nil {
		d.fetchStall = true
	} else {
		pc := e.addr + 4*uint64(e.consumed)
		li := e.lineIndex(pc)
		line := e.lines[li]
		if e.requested&(1<<uint(li)) == 0 {
			// Demand request retried every cycle; quiet only on the
			// bare MSHR-full path.
			if !f.requestWouldStall(line, !e.wrongPath) {
				return 0, d, false
			}
			d.mshrFull++
		} else if m, blocked := f.lineBlocked(line); blocked {
			if b.canAccept(trace.ClassALU) {
				// markStarvation repeats; its one-time effects must
				// already have fired or a naive Step would differ.
				iqEmpty := b.iqEmpty()
				if !m.starved || (iqEmpty && !m.iqEmptySeen) {
					return 0, d, false
				}
				d.starv = true
				d.starvIQE = iqEmpty
				if !e.wrongPath {
					d.starvCommit = true
					if f.tracker != nil {
						d.starvBucketOK = true
						d.starvBucket = int(f.lastBucket[line])
					}
				}
			}
		} else {
			// Line ready: decode dispatches unless the back end is
			// full for this class.
			isTerm := e.consumed == e.n-1 && e.endKind != branch.KindFallthrough
			cls := trace.ClassBranch
			if !isTerm {
				cls = c.src.InstrClass(pc)
			}
			if b.canAccept(cls) {
				return 0, d, false
			}
		}
	}

	// FDIP prefetch scan: its first unrequested line is retried every
	// cycle; quiet only if that retry is a bare MSHR-full miss.
	if c.cfg.FDIP {
		idx := f.ftqHead
	scan:
		for i := 0; i < f.ftqCount; i++ {
			e := &f.ftq[idx]
			for li := 0; li < e.nLines; li++ {
				if e.requested&(1<<uint(li)) != 0 {
					continue
				}
				if !f.requestWouldStall(e.lines[li], !e.wrongPath) {
					return 0, d, false
				}
				d.mshrFull++
				break scan
			}
			idx = (idx + 1) % f.cfg.FTQEntries
		}
	}

	return wake, d, true
}

// trySkip fast-forwards across a quiescent span, advancing at most
// room cycles (the caller's no-progress allowance) and never past
// Config.MaxCycles, so livelock and budget errors fire on exactly the
// cycle the naive walk would have produced. Returns the number of
// cycles skipped (0 when skipping is disabled, the machine is not
// quiescent, or the wake-up event is the very next cycle).
func (c *Core) trySkip(room uint64) uint64 {
	if c.cfg.NoCycleSkip || room == 0 {
		return 0
	}
	wake, d, ok := c.planSkip()
	if !ok {
		return 0
	}
	// Skip to wake-1: the Step at wake must run for real.
	target := c.cycle + room
	if wake != never && wake-1 < target {
		target = wake - 1
	}
	if c.cfg.MaxCycles > 0 && target > c.cfg.MaxCycles {
		target = c.cfg.MaxCycles
	}
	if target <= c.cycle {
		return 0
	}
	n := target - c.cycle
	c.skipTo(target, &d)
	return n
}
