// This file is the package's only sanctioned panic site (enforced by
// emissary-lint's bare-panic rule). Simulation-state failures — a
// livelocked core, an exhausted cycle budget, a truncated source —
// are typed errors so one bad job cannot tear down a sweep; violated
// is reserved for genuine modeling-invariant breaks, where continuing
// would silently corrupt every downstream result.

package pipeline

import "fmt"

// violated aborts on a broken simulator invariant.
func violated(format string, args ...any) {
	panic("pipeline: " + fmt.Sprintf(format, args...))
}
