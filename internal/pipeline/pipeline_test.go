package pipeline

import (
	"testing"

	"emissary/internal/branch"
	"emissary/internal/cache"
	"emissary/internal/core"
	"emissary/internal/trace"
)

// fakeSource is a minimal trace.Source: a static program of blocks and
// a scripted dynamic path, enough to drive the core deterministically.
type fakeSource struct {
	blocks map[uint64]branch.BTBEntry
	// path is the committed-path sequence of (block, taken) pairs;
	// NextAddr is derived from the static entry + taken.
	path []fakeStep
	pos  int
	mem  map[uint64][]trace.MemRef // by block addr, applied every visit
}

type fakeStep struct {
	addr  uint64
	taken bool
}

func (f *fakeSource) NextBlock() (trace.BlockEvent, bool) {
	if f.pos >= len(f.path) {
		return trace.BlockEvent{}, false
	}
	step := f.path[f.pos]
	f.pos++
	e := f.blocks[step.addr]
	next := e.FallThrough()
	if step.taken {
		next = e.Target
	}
	return trace.BlockEvent{
		Addr:      step.addr,
		NumInstrs: e.NumInstrs,
		EndKind:   e.EndKind,
		Taken:     step.taken,
		NextAddr:  next,
		Mem:       f.mem[step.addr],
	}, true
}

func (f *fakeSource) BlockInfo(addr uint64) (branch.BTBEntry, bool) {
	e, ok := f.blocks[addr]
	return e, ok
}

func (f *fakeSource) BlocksInLine(line uint64, out []branch.BTBEntry) []branch.BTBEntry {
	for addr := line << 6; addr < (line+1)<<6; addr += 4 {
		if e, ok := f.blocks[addr]; ok && e.Start == addr {
			out = append(out, e)
		}
	}
	return out
}

func (f *fakeSource) InstrClass(pc uint64) trace.Class { return trace.ClassALU }

// loopProgram builds two blocks: A (cond, loops back to itself) then
// B (jump back to A), and a path executing the loop pattern.
func loopProgram(iterations, rounds int) *fakeSource {
	const a, bAddr = uint64(0x1000), uint64(0x1010)
	f := &fakeSource{
		blocks: map[uint64]branch.BTBEntry{
			a:     {Start: a, NumInstrs: 4, EndKind: branch.KindCond, Target: a},
			bAddr: {Start: bAddr, NumInstrs: 4, EndKind: branch.KindJump, Target: a},
		},
		mem: map[uint64][]trace.MemRef{},
	}
	for r := 0; r < rounds; r++ {
		for i := 0; i < iterations-1; i++ {
			f.path = append(f.path, fakeStep{a, true})
		}
		f.path = append(f.path, fakeStep{a, false})
		f.path = append(f.path, fakeStep{bAddr, true})
	}
	return f
}

func newTestCore(t *testing.T, src trace.Source, policy string) *Core {
	t.Helper()
	hier := cache.NewHierarchy(cache.DefaultConfig(core.MustParsePolicy(policy)))
	cfg := DefaultConfig()
	c, err := NewCore(cfg, src, hier, 1)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// mustCommit runs the core and fails the test on a stall error.
func mustCommit(t *testing.T, c *Core, n uint64) uint64 {
	t.Helper()
	got, err := c.RunCommitted(n)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.DecodeWidth = 0
	if bad.Validate() == nil {
		t.Error("zero decode width accepted")
	}
	bad = DefaultConfig()
	bad.MaxMSHRs = 0
	if bad.Validate() == nil {
		t.Error("zero MSHRs accepted")
	}
	bad = DefaultConfig()
	bad.ExecOffset = -1
	if bad.Validate() == nil {
		t.Error("negative exec offset accepted")
	}
}

func TestCoreCommitsWholeStream(t *testing.T) {
	src := loopProgram(8, 100)
	c := newTestCore(t, src, "TPLRU")
	total := uint64(0)
	for _, s := range src.path {
		total += uint64(src.blocks[s.addr].NumInstrs)
	}
	got := mustCommit(t, c, total+1000) // ask for more; stream ends first
	if got != total {
		t.Errorf("committed %d, want %d", got, total)
	}
}

func TestCoreIPCSane(t *testing.T) {
	src := loopProgram(16, 500)
	c := newTestCore(t, src, "TPLRU")
	mustCommit(t, c, 1<<30)
	ipc := float64(c.Committed()) / float64(c.Cycle())
	if ipc < 0.5 || ipc > 8 {
		t.Errorf("IPC = %v for a trivial loop", ipc)
	}
}

func TestCoreDeterministic(t *testing.T) {
	run := func() (uint64, uint64) {
		src := loopProgram(7, 300)
		c := newTestCore(t, src, "P(8):S&E&R(1/32)")
		mustCommit(t, c, 1<<30)
		return c.Committed(), c.Cycle()
	}
	i1, c1 := run()
	i2, c2 := run()
	if i1 != i2 || c1 != c2 {
		t.Errorf("nondeterministic: (%d,%d) vs (%d,%d)", i1, c1, i2, c2)
	}
}

func TestCoreLearnsLoopBranch(t *testing.T) {
	// A fixed-trip loop should be predicted almost perfectly after
	// warm-up, giving very few flushes.
	src := loopProgram(8, 2000)
	c := newTestCore(t, src, "TPLRU")
	mustCommit(t, c, 1<<30)
	snap := c.TakeSnapshot()
	// 2000 rounds x 9 branches; a handful of mispredicts per round
	// would be thousands. Expect far fewer once learned.
	if snap.Mispredicts > 600 {
		t.Errorf("mispredicts = %d for a fixed 8-iteration loop", snap.Mispredicts)
	}
	if snap.Flushes != snap.Mispredicts {
		t.Errorf("flushes %d != mispredicts %d (every detected mispredict must resolve)",
			snap.Flushes, snap.Mispredicts)
	}
}

func TestCoreMispredictRecovery(t *testing.T) {
	// Alternating taken/not-taken with period 2 is learnable; a random
	// mix is not. Use a scripted unpredictable pattern and verify the
	// machine still commits exactly the oracle stream.
	const a = uint64(0x2000)
	f := &fakeSource{
		blocks: map[uint64]branch.BTBEntry{
			a:        {Start: a, NumInstrs: 4, EndKind: branch.KindCond, Target: a + 0x40},
			a + 0x10: {Start: a + 0x10, NumInstrs: 4, EndKind: branch.KindJump, Target: a},
			a + 0x40: {Start: a + 0x40, NumInstrs: 4, EndKind: branch.KindJump, Target: a},
		},
		mem: map[uint64][]trace.MemRef{},
	}
	pat := []bool{true, false, false, true, true, true, false, true, false, false}
	for r := 0; r < 300; r++ {
		tk := pat[r%len(pat)]
		f.path = append(f.path, fakeStep{a, tk})
		if tk {
			f.path = append(f.path, fakeStep{a + 0x40, true})
		} else {
			f.path = append(f.path, fakeStep{a + 0x10, true})
		}
	}
	var total uint64
	for _, s := range f.path {
		total += uint64(f.blocks[s.addr].NumInstrs)
	}
	c := newTestCore(t, f, "TPLRU")
	got := mustCommit(t, c, 1<<30)
	if got != total {
		t.Errorf("committed %d, want %d (mispredict recovery lost instructions)", got, total)
	}
	if c.TakeSnapshot().WrongPathOps == 0 {
		t.Error("no wrong-path work despite unpredictable branches")
	}
}

func TestCoreCallReturnPath(t *testing.T) {
	// main calls f in a loop; f returns. Exercises RAS push/pop on the
	// correct path.
	const m, fAddr = uint64(0x3000), uint64(0x3400)
	src := &fakeSource{
		blocks: map[uint64]branch.BTBEntry{
			m:        {Start: m, NumInstrs: 4, EndKind: branch.KindCall, Target: fAddr},
			m + 0x10: {Start: m + 0x10, NumInstrs: 4, EndKind: branch.KindJump, Target: m},
			fAddr:    {Start: fAddr, NumInstrs: 6, EndKind: branch.KindReturn},
		},
		mem: map[uint64][]trace.MemRef{},
	}
	for r := 0; r < 500; r++ {
		src.path = append(src.path,
			fakeStep{m, true},
			fakeStep{fAddr, true},
			fakeStep{m + 0x10, true},
		)
	}
	// Return events need NextAddr = call fallthrough; fakeSource derives
	// next from Target/FallThrough, so patch the return target.
	src.blocks[fAddr] = branch.BTBEntry{Start: fAddr, NumInstrs: 6, EndKind: branch.KindReturn, Target: m + 0x10}
	// Returns are "taken" to Target in the fake.
	for i := range src.path {
		if src.path[i].addr == fAddr {
			src.path[i].taken = true
		}
	}
	c := newTestCore(t, src, "TPLRU")
	got := mustCommit(t, c, 1<<30)
	want := uint64(500 * (4 + 6 + 4))
	if got != want {
		t.Errorf("committed %d, want %d", got, want)
	}
	snap := c.TakeSnapshot()
	// After BTB warm-up the RAS should predict returns; mispredicts
	// should be a tiny fraction of the 1500 control transfers.
	if snap.Mispredicts > 100 {
		t.Errorf("mispredicts = %d on call/return loop", snap.Mispredicts)
	}
}

func TestCoreStarvationOnColdCode(t *testing.T) {
	// A long straight-line cold path cannot be covered by FDIP (no
	// run-ahead at start): expect starvation cycles > 0.
	f := &fakeSource{blocks: map[uint64]branch.BTBEntry{}, mem: map[uint64][]trace.MemRef{}}
	addr := uint64(0x10000)
	for i := 0; i < 4000; i++ {
		f.blocks[addr] = branch.BTBEntry{Start: addr, NumInstrs: 8, EndKind: branch.KindFallthrough}
		f.path = append(f.path, fakeStep{addr, false})
		addr += 32
	}
	c := newTestCore(t, f, "TPLRU")
	mustCommit(t, c, 1<<30)
	snap := c.TakeSnapshot()
	if snap.Starvation == 0 {
		t.Error("no starvation on a cold straight-line walk")
	}
	if snap.CommitStarvation > snap.Starvation {
		t.Error("commit-path starvation exceeds total starvation")
	}
}

func TestCoreMemRefsReachDCache(t *testing.T) {
	const a = uint64(0x4000)
	f := &fakeSource{
		blocks: map[uint64]branch.BTBEntry{
			a: {Start: a, NumInstrs: 4, EndKind: branch.KindJump, Target: a},
		},
		mem: map[uint64][]trace.MemRef{
			a: {{Index: 1, Addr: 0x5000_0000, Store: false}},
		},
	}
	for i := 0; i < 200; i++ {
		f.path = append(f.path, fakeStep{a, true})
	}
	// InstrClass returns ALU; the dispatch path keys loads off the
	// class, so make the fake return Load for that slot via mem match:
	// the core uses InstrClass, so instead verify the D-side stays cold
	// with ClassALU (mem refs ignored) — this documents the contract
	// that classes drive D-cache traffic.
	c := newTestCore(t, f, "TPLRU")
	mustCommit(t, c, 1<<30)
	if c.Hierarchy().L1D.DataStats.Accesses() != 0 {
		t.Error("ALU-classified instructions should not touch the D-cache")
	}
}

func TestSnapshotDiff(t *testing.T) {
	src := loopProgram(8, 400)
	c := newTestCore(t, src, "TPLRU")
	mustCommit(t, c, 1000)
	s1 := c.TakeSnapshot()
	mustCommit(t, c, 1000)
	s2 := c.TakeSnapshot()
	res := Diff(s1, s2, nil)
	if res.Instructions != s2.Committed-s1.Committed {
		t.Errorf("Diff instructions = %d", res.Instructions)
	}
	if res.Cycles != s2.Cycles-s1.Cycles {
		t.Errorf("Diff cycles = %d", res.Cycles)
	}
	if res.IPC <= 0 {
		t.Errorf("Diff IPC = %v", res.IPC)
	}
	if res.EnergyPJ <= 0 {
		t.Errorf("Diff energy = %v", res.EnergyPJ)
	}
}

func TestBackendOccupancyLimits(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ROBSize = 8
	cfg.IQSize = 4
	cfg.LQSize = 2
	cfg.SQSize = 2
	hier := cache.NewHierarchy(cache.DefaultConfig(core.MustParsePolicy("TPLRU")))
	be := newBackend(&cfg, hier, 1)
	now := uint64(10)
	for i := 0; i < 4; i++ {
		if !be.canAccept(trace.ClassALU) {
			t.Fatalf("IQ rejected op %d before limit", i)
		}
		be.dispatch(now, uint64(i*4), trace.ClassALU, false, 0, false, false)
	}
	if be.canAccept(trace.ClassALU) {
		t.Error("IQ accepted beyond its size")
	}
	// Advance past issue: IQ drains, ROB still holds them.
	for be.iqCount > 0 {
		now++
		be.beginCycle(now)
	}
	for i := 4; i < 8; i++ {
		if !be.canAccept(trace.ClassALU) {
			t.Fatalf("ROB rejected op %d before limit", i)
		}
		be.dispatch(now, uint64(i*4), trace.ClassALU, false, 0, false, false)
		for be.iqCount > 0 {
			now++
			be.beginCycle(now)
		}
	}
	if be.canAccept(trace.ClassALU) {
		t.Error("ROB accepted beyond its size")
	}
}

func TestBackendLoadStoreQueues(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LQSize = 1
	cfg.SQSize = 1
	hier := cache.NewHierarchy(cache.DefaultConfig(core.MustParsePolicy("TPLRU")))
	be := newBackend(&cfg, hier, 1)
	be.dispatch(5, 0, trace.ClassLoad, true, 0x100000, false, false)
	if be.canAccept(trace.ClassLoad) {
		t.Error("LQ accepted a second load")
	}
	if !be.canAccept(trace.ClassStore) {
		t.Error("full LQ blocked a store")
	}
	be.dispatch(5, 4, trace.ClassStore, true, 0x100040, false, false)
	if be.canAccept(trace.ClassStore) {
		t.Error("SQ accepted a second store")
	}
}

func TestBackendFlushRestoresOccupancy(t *testing.T) {
	cfg := DefaultConfig()
	hier := cache.NewHierarchy(cache.DefaultConfig(core.MustParsePolicy("TPLRU")))
	be := newBackend(&cfg, hier, 1)
	now := uint64(10)
	be.dispatch(now, 0, trace.ClassALU, false, 0, false, false) // seq 0
	for i := 1; i < 20; i++ {
		be.dispatch(now, uint64(i*4), trace.ClassLoad, true, uint64(0x100000+i*0x40), true, false)
	}
	lq := be.lqCount
	if lq == 0 {
		t.Fatal("no loads in LQ")
	}
	be.flushAfter(0, now)
	if be.count != 1 {
		t.Errorf("ROB count after flush = %d, want 1", be.count)
	}
	if be.lqCount != 0 {
		t.Errorf("LQ count after flush = %d, want 0", be.lqCount)
	}
	if be.Flushes != 1 {
		t.Errorf("Flushes = %d", be.Flushes)
	}
}

func TestBackendCommitInOrder(t *testing.T) {
	cfg := DefaultConfig()
	hier := cache.NewHierarchy(cache.DefaultConfig(core.MustParsePolicy("TPLRU")))
	be := newBackend(&cfg, hier, 1)
	now := uint64(10)
	// A slow load followed by fast ALU ops: nothing commits until the
	// load completes.
	slow := be.dispatch(now, 0, trace.ClassLoad, true, 0x900000, false, false)
	be.dispatch(now, 4, trace.ClassALU, false, 0, false, false)
	committed := 0
	for cyc := now + 1; cyc < slow; cyc++ {
		be.beginCycle(cyc)
		committed += be.commit(cyc)
	}
	if committed != 0 {
		t.Errorf("%d instructions committed before the head load finished", committed)
	}
	for cyc := slow; cyc < slow+64 && be.count > 0; cyc++ {
		be.beginCycle(cyc)
		committed += be.commit(cyc)
	}
	if committed != 2 {
		t.Errorf("committed = %d, want 2", committed)
	}
}

func TestResolveRecordLifecycle(t *testing.T) {
	cfg := DefaultConfig()
	hier := cache.NewHierarchy(cache.DefaultConfig(core.MustParsePolicy("TPLRU")))
	be := newBackend(&cfg, hier, 1)
	completeAt := be.dispatch(10, 0, trace.ClassBranch, false, 0, false, true)
	be.registerResolve(be.seq-1, completeAt)
	if _, ok := be.resolveReady(completeAt - 1); ok {
		t.Error("resolver fired early")
	}
	seq, ok := be.resolveReady(completeAt)
	if !ok || seq != be.seq-1 {
		t.Errorf("resolveReady = %d,%v", seq, ok)
	}
	be.flushAfter(seq, completeAt)
	if _, ok := be.resolveReady(completeAt + 10); ok {
		t.Error("resolver survived the flush")
	}
}
