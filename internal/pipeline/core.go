package pipeline

import (
	"emissary/internal/branch"
	"emissary/internal/cache"
	"emissary/internal/energy"
	"emissary/internal/rng"
	"emissary/internal/stats"
	"emissary/internal/trace"
)

// Core is the simulated processor: front-end, back-end, and memory
// hierarchy advanced in lock-step, one cycle per Step.
type Core struct {
	cfg  Config
	fe   *frontend
	be   *backend
	hier *cache.Hierarchy
	src  trace.Source

	cycle   uint64 //vet:skip-invariant advanced directly by skipTo (c.cycle = target), not via the per-cycle delta
	decoded uint64 //vet:skip-invariant decode dispatches an instruction; planSkip refuses dispatch-able cycles

	// Cycles fast-forwarded by skipTo (already included in cycle).
	skipped uint64

	// Committed-instruction threshold of the next P-bit reset (§6).
	//vet:skip-invariant advances only when a reset fires, gated on committed-instruction growth; planSkip refuses pending resets
	nextPriorityReset uint64
}

// NewCore wires a core together.
func NewCore(cfg Config, src trace.Source, hier *cache.Hierarchy, seed uint64) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Core{cfg: cfg, hier: hier, src: src}
	// The front- and back-end share &c.cfg so that Reset can re-target
	// the whole core by assigning c.cfg once.
	c.fe = newFrontend(&c.cfg, src, hier, rng.Mix2(seed, 0xfe))
	c.be = newBackend(&c.cfg, hier, rng.Mix2(seed, 0xbe))
	if cfg.PriorityResetInterval > 0 {
		c.nextPriorityReset = cfg.PriorityResetInterval
	}
	return c, nil
}

// Reset restores the core to the state NewCore(cfg, src, hier, seed)
// would build, reusing every allocation, so a warm-pooled sweep can
// run job after job without constructing a new machine. It reports
// false — leaving the core untouched — when cfg is invalid or resizes
// a structure (FTQ, ROB, MSHRs, MRC, BTB, RAS, reuse tracking); the
// caller then falls back to NewCore. hier must already be reset (or
// freshly built) for the run's cache config. The per-component resets
// it fans out to are the //vet:hot-checked no-alloc paths; Reset
// itself also calls Validate, whose error path formats.
func (c *Core) Reset(cfg Config, src trace.Source, hier *cache.Hierarchy, seed uint64) bool {
	if cfg.Validate() != nil {
		return false
	}
	old := c.cfg
	if cfg.FTQEntries != old.FTQEntries ||
		cfg.MaxMSHRs != old.MaxMSHRs ||
		cfg.MRCEntries != old.MRCEntries ||
		cfg.TrackReuse != old.TrackReuse ||
		cfg.ROBSize != old.ROBSize ||
		cfg.BTBEntries != old.BTBEntries ||
		cfg.BTBWays != old.BTBWays ||
		cfg.RASDepth != old.RASDepth {
		return false
	}
	c.cfg = cfg
	c.hier = hier
	c.src = src
	c.fe.reset(src, hier, rng.Mix2(seed, 0xfe))
	c.be.reset(hier, rng.Mix2(seed, 0xbe))
	c.cycle = 0
	c.decoded = 0
	c.skipped = 0
	c.nextPriorityReset = 0
	if cfg.PriorityResetInterval > 0 {
		c.nextPriorityReset = cfg.PriorityResetInterval
	}
	return true
}

// Cycle returns the current cycle count.
func (c *Core) Cycle() uint64 { return c.cycle }

// SkippedCycles returns how many cycles were fast-forwarded by the
// event-driven skipper instead of stepped naively. They are included
// in Cycle(); the fraction skipped/cycles is the throughput win.
func (c *Core) SkippedCycles() uint64 { return c.skipped }

// Committed returns the committed instruction count.
func (c *Core) Committed() uint64 { return c.be.committed }

// Step advances the machine one cycle.
//
//vet:hot
func (c *Core) Step() {
	c.cycle++
	now := c.cycle

	c.be.beginCycle(now)
	c.fe.processCompletions(now)

	// Branch resolution: flush and re-steer.
	if seq, ok := c.be.resolveReady(now); ok {
		c.be.flushAfter(seq, now)
		c.fe.recover()
	}

	if n := c.be.commit(now); n == 0 {
		c.be.classifyStall(now)
	}

	c.decode(now)

	if c.cfg.FDIP {
		c.fe.prefetchScan(now)
	}
	for i := 0; i < c.cfg.FetchWidth; i++ {
		c.fe.fetchBlock(now)
	}

	if c.nextPriorityReset > 0 && c.be.committed >= c.nextPriorityReset {
		c.hier.ResetPriorities()
		c.nextPriorityReset += c.cfg.PriorityResetInterval
	}
}

// skipTo jumps the clock to target across a span planSkip proved
// quiescent, applying per-cycle counter deltas in bulk — exactly what
// target-cycle naive Steps would have accumulated. Besides counters,
// the only state a skipped Step would touch is beginCycle's clearing
// of the just-passed issue-bandwidth slot; the span's own slots are
// provably empty (no scheduled releases before the wake-up), so only
// the current cycle's slot needs the clear.
//
//vet:hot
func (c *Core) skipTo(target uint64, d *skipDelta) {
	n := target - c.cycle
	c.be.issueBusy[c.cycle&ringMask] = 0

	f := c.fe
	fw := uint64(c.cfg.FetchWidth) * n
	f.FTQOccupancySum += fw * uint64(f.ftqCount)
	switch d.fetchBlockKind {
	case fbDeadEnd:
		f.FetchBlockDeadEnd += fw
	case fbFull:
		f.FetchBlockFull += fw
	case fbPredecode:
		f.FetchBlockPredecode += fw
	}

	c.be.Stalls.Record(d.stallKind, n)
	if d.fetchStall {
		f.FetchStallCycles += n
	}
	f.MSHRFullEvents += d.mshrFull * n
	if d.starv {
		f.StarvationCycles += n
		if d.starvIQE {
			f.StarvationIQECycles += n
		}
		if d.starvCommit {
			f.CommitStarvationCycles += n
			if d.starvIQE {
				f.CommitStarvationIQECycles += n
			}
			if d.starvBucketOK {
				f.StarvByBucket[d.starvBucket] += n
			}
		}
	}

	c.cycle = target
	c.skipped += n
}

// decode delivers up to DecodeWidth instructions from the FTQ head
// into the back-end, tracking decode starvation.
func (c *Core) decode(now uint64) {
	delivered := 0
	for delivered < c.cfg.DecodeWidth {
		e := c.fe.head()
		if e == nil {
			if delivered == 0 {
				c.fe.FetchStallCycles++
			}
			return
		}
		pc := e.addr + 4*uint64(e.consumed)
		li := e.lineIndex(pc)
		if !c.fe.ensureHeadLine(e, li, now) {
			return // MSHR pressure; treated as fetch stall next cycle
		}
		if m, blocked := c.fe.lineBlocked(e.lines[li]); blocked {
			if delivered == 0 && c.be.canAccept(trace.ClassALU) {
				c.fe.markStarvation(m, e.wrongPath, c.be.iqEmpty())
			}
			return
		}

		isTerm := e.consumed == e.n-1 && e.endKind != branch.KindFallthrough
		cls := trace.ClassBranch
		if !isTerm {
			cls = c.src.InstrClass(pc)
		}
		if !c.be.canAccept(cls) {
			return
		}

		hasMem := false
		var memAddr uint64
		if e.memIdx < len(e.mem) && e.mem[e.memIdx].Index == e.consumed {
			hasMem = true
			memAddr = e.mem[e.memIdx].Addr
			e.memIdx++
		}
		resolves := isTerm && e.mispredict
		completeAt := c.be.dispatch(now, pc, cls, hasMem, memAddr, e.wrongPath, resolves)
		if resolves {
			c.be.registerResolve(c.be.seq-1, completeAt)
		}
		e.consumed++
		delivered++
		c.decoded++
		if e.consumed == e.n {
			c.fe.pop()
		}
	}
}

// RunCommitted advances until n more instructions commit (or the
// oracle stream ends). It returns the total instructions committed so
// far. A livelocked machine (no commit for Config.NoProgressLimit
// cycles) or an exhausted Config.MaxCycles budget returns a StallError
// wrapping ErrNoProgress or ErrCycleBudget respectively, with a
// diagnostic snapshot of the abort state; both used to be fatal (a
// bare panic), which cost a whole sweep instead of one job.
func (c *Core) RunCommitted(n uint64) (uint64, error) {
	target := c.be.committed + n
	limit := c.cfg.NoProgressLimit
	if limit == 0 {
		limit = 5_000_000
	}
	idle := uint64(0)
	for c.be.committed < target {
		if c.cfg.MaxCycles > 0 && c.cycle >= c.cfg.MaxCycles {
			return c.be.committed, &StallError{
				Reason: ErrCycleBudget,
				Budget: c.cfg.MaxCycles,
				Stall:  c.stall(),
			}
		}
		before := c.be.committed
		c.Step()
		if c.fe.oracleDone && c.be.count == 0 && c.fe.ftqCount == 0 {
			break
		}
		if c.be.committed == before {
			idle++
			if idle > limit {
				return c.be.committed, &StallError{
					Reason:     ErrNoProgress,
					IdleCycles: idle,
					Stall:      c.stall(),
				}
			}
			// Quiescent span: fast-forward to the next wake-up event.
			// The skip is capped so idle crosses the livelock limit
			// (and cycle the budget) exactly where a naive walk would.
			if k := c.trySkip(limit + 1 - idle); k > 0 {
				idle += k
				if idle > limit {
					return c.be.committed, &StallError{
						Reason:     ErrNoProgress,
						IdleCycles: idle,
						Stall:      c.stall(),
					}
				}
			}
		} else {
			idle = 0
		}
	}
	return c.be.committed, nil
}

// stall captures the queue occupancies a StallError reports.
func (c *Core) stall() Stall {
	return Stall{
		Cycle:         c.cycle,
		Committed:     c.be.committed,
		FTQOccupancy:  c.fe.ftqCount,
		ROBOccupancy:  c.be.count,
		MSHROccupancy: len(c.fe.pending),
	}
}

// Snapshot captures every counter a Result is computed from.
type Snapshot struct {
	Cycles    uint64
	Committed uint64
	Decoded   uint64

	L1I, L1D, L2I, L2D, L3I, L3D stats.CacheCounters
	MemReads                     uint64
	CompulsoryL2I                uint64

	Starvation          uint64
	StarvationIQE       uint64
	CommitStarvation    uint64
	CommitStarvationIQE uint64
	FetchStalls         uint64
	Mispredicts         uint64
	Blocks              uint64

	Stalls stats.StallBreakdown

	WrongPathOps       uint64
	Flushes            uint64
	CommitActiveCycles uint64

	BTBLookups  uint64
	BTBMisses   uint64
	Predictions uint64

	AccessByBucket [3]uint64
	L2MissByBucket [3]uint64
	StarvByBucket  [3]uint64
}

// TakeSnapshot reads the current counters.
func (c *Core) TakeSnapshot() Snapshot {
	h := c.hier
	return Snapshot{
		Cycles:              c.cycle,
		Committed:           c.be.committed,
		Decoded:             c.decoded,
		L1I:                 h.L1I.InstrStats,
		L1D:                 h.L1D.DataStats,
		L2I:                 h.L2.InstrStats,
		L2D:                 h.L2.DataStats,
		L3I:                 h.L3.InstrStats,
		L3D:                 h.L3.DataStats,
		MemReads:            h.MemReads,
		CompulsoryL2I:       h.CompulsoryL2IMisses,
		Starvation:          c.fe.StarvationCycles,
		StarvationIQE:       c.fe.StarvationIQECycles,
		CommitStarvation:    c.fe.CommitStarvationCycles,
		CommitStarvationIQE: c.fe.CommitStarvationIQECycles,
		FetchStalls:         c.fe.FetchStallCycles,
		Mispredicts:         c.fe.Mispredicts,
		Blocks:              c.fe.BlocksFetched,
		Stalls:              c.be.Stalls,
		WrongPathOps:        c.be.WrongPathOps,
		Flushes:             c.be.Flushes,
		CommitActiveCycles:  c.be.CommitActiveCycles,
		BTBLookups:          c.fe.btb.Hits + c.fe.btb.Misses,
		BTBMisses:           c.fe.btb.Misses,
		Predictions:         c.fe.tage.Lookups + c.fe.ittage.Lookups,
		AccessByBucket:      c.fe.AccessByBucket,
		L2MissByBucket:      c.fe.L2MissByBucket,
		StarvByBucket:       c.fe.StarvByBucket,
	}
}

// Result is the measurement-window outcome of a simulation.
type Result struct {
	Instructions uint64
	Cycles       uint64
	IPC          float64
	DecodeRate   float64

	L1IMPKI, L1DMPKI float64
	L2IMPKI, L2DMPKI float64
	L3MPKI           float64
	BranchMPKI       float64

	Starvation          uint64
	StarvationIQE       uint64
	CommitStarvation    uint64
	CommitStarvationIQE uint64
	FetchStalls         uint64

	FrontEndStalls uint64
	BackEndStalls  uint64
	TotalStalls    uint64

	EnergyPJ float64

	WrongPathOps       uint64
	Flushes            uint64
	CommitActiveCycles uint64
	BTBMPKI            float64

	AccessByBucket [3]uint64
	L2MissByBucket [3]uint64
	StarvByBucket  [3]uint64

	PriorityCensus []int
	MemReads       uint64
}

// Diff computes a Result over the window between two snapshots.
func Diff(start, end Snapshot, census []int) Result {
	instr := end.Committed - start.Committed
	cycles := end.Cycles - start.Cycles
	sub := func(a, b stats.CacheCounters) stats.CacheCounters {
		return stats.CacheCounters{Hits: a.Hits - b.Hits, Misses: a.Misses - b.Misses}
	}
	l1i := sub(end.L1I, start.L1I)
	l1d := sub(end.L1D, start.L1D)
	l2i := sub(end.L2I, start.L2I)
	l2d := sub(end.L2D, start.L2D)
	l3i := sub(end.L3I, start.L3I)
	l3d := sub(end.L3D, start.L3D)

	var ipc, dr float64
	if cycles > 0 {
		ipc = float64(instr) / float64(cycles)
		dr = float64(end.Decoded-start.Decoded) / float64(cycles)
	}

	e := energy.Model(energy.Counts{
		Instructions: instr,
		Cycles:       cycles,
		L1Accesses:   l1i.Accesses() + l1d.Accesses(),
		L2Accesses:   l2i.Accesses() + l2d.Accesses(),
		L3Accesses:   l3i.Accesses() + l3d.Accesses(),
		DRAMReads:    end.MemReads - start.MemReads,
		BTBLookups:   end.BTBLookups - start.BTBLookups,
		Predictions:  end.Predictions - start.Predictions,
	})

	var fig2a, fig2m, fig2s [3]uint64
	for i := 0; i < 3; i++ {
		fig2a[i] = end.AccessByBucket[i] - start.AccessByBucket[i]
		fig2m[i] = end.L2MissByBucket[i] - start.L2MissByBucket[i]
		fig2s[i] = end.StarvByBucket[i] - start.StarvByBucket[i]
	}

	var stalls stats.StallBreakdown
	for k := range stalls.Cycles {
		stalls.Cycles[k] = end.Stalls.Cycles[k] - start.Stalls.Cycles[k]
	}

	return Result{
		Instructions:        instr,
		Cycles:              cycles,
		IPC:                 ipc,
		DecodeRate:          dr,
		L1IMPKI:             stats.MPKI(l1i.Misses, instr),
		L1DMPKI:             stats.MPKI(l1d.Misses, instr),
		L2IMPKI:             stats.MPKI(l2i.Misses, instr),
		L2DMPKI:             stats.MPKI(l2d.Misses, instr),
		L3MPKI:              stats.MPKI(l3i.Misses+l3d.Misses, instr),
		BranchMPKI:          stats.MPKI(end.Mispredicts-start.Mispredicts, instr),
		Starvation:          end.Starvation - start.Starvation,
		StarvationIQE:       end.StarvationIQE - start.StarvationIQE,
		CommitStarvation:    end.CommitStarvation - start.CommitStarvation,
		CommitStarvationIQE: end.CommitStarvationIQE - start.CommitStarvationIQE,
		FetchStalls:         end.FetchStalls - start.FetchStalls,
		FrontEndStalls:      stalls.FrontEnd(),
		BackEndStalls:       stalls.BackEnd(),
		TotalStalls:         stalls.Total(),
		EnergyPJ:            e.TotalPJ(),
		WrongPathOps:        end.WrongPathOps - start.WrongPathOps,
		Flushes:             end.Flushes - start.Flushes,
		CommitActiveCycles:  end.CommitActiveCycles - start.CommitActiveCycles,
		BTBMPKI:             stats.MPKI(end.BTBMisses-start.BTBMisses, instr),
		AccessByBucket:      fig2a,
		L2MissByBucket:      fig2m,
		StarvByBucket:       fig2s,
		PriorityCensus:      census,
		MemReads:            end.MemReads - start.MemReads,
	}
}

// Hierarchy exposes the memory system (for end-of-run census queries).
func (c *Core) Hierarchy() *cache.Hierarchy { return c.hier }

// BranchMispredictRate exposes the conditional predictor's accuracy.
func (c *Core) BranchMispredictRate() float64 { return c.fe.tage.MispredictRate() }

// MispredictsByKind exposes re-steer counts by terminator kind.
func (c *Core) MispredictsByKind() [8]uint64 { return c.fe.MispredictsByKind }

// StarvedLineEvents exposes per-line starvation-event counts when
// reuse tracking is enabled (nil otherwise).
func (c *Core) StarvedLineEvents() map[uint64]uint32 { return c.fe.StarvedLineEvents }

// IQEStarvedLineEvents is StarvedLineEvents restricted to events seen
// with an empty issue queue.
func (c *Core) IQEStarvedLineEvents() map[uint64]uint32 { return c.fe.IQEStarvedLineEvents }

// StarvEventsBySrc exposes starvation-event counts by serving level.
func (c *Core) StarvEventsBySrc() [4]uint64 { return c.fe.StarvEventsBySrc }

// FetchDiagnostics reports (avg FTQ occupancy x1000, cycles blocked
// full, blocked dead-end, blocked predecode, MSHR-full events).
func (c *Core) FetchDiagnostics() [5]uint64 {
	cycles := c.cycle
	if cycles == 0 {
		cycles = 1
	}
	return [5]uint64{
		c.fe.FTQOccupancySum * 1000 / cycles,
		c.fe.FetchBlockFull,
		c.fe.FetchBlockDeadEnd,
		c.fe.FetchBlockPredecode,
		c.fe.MSHRFullEvents,
	}
}

// MarkDiagnostics reports (distinct lines ever marked high-priority,
// starvation events that were L2 misses on previously marked lines).
func (c *Core) MarkDiagnostics() (int, uint64) {
	return len(c.fe.MarkedLines), c.fe.StarvOnMarkedMiss
}
