package pipeline

import (
	"math/bits"

	"emissary/internal/cache"
	"emissary/internal/rng"
	"emissary/internal/stats"
	"emissary/internal/trace"
)

// ringBits sizes the cycle-indexed scheduling rings; completion times
// are capped this far in the future.
const ringBits = 16
const ringSize = 1 << ringBits
const ringMask = ringSize - 1

// depWindow is how far back (in sequence numbers) register
// dependences can reach.
const depWindow = 64

// robEntry is one in-flight instruction.
type robEntry struct {
	seq        uint64
	pc         uint64
	completeAt uint64
	issueAt    uint64
	isLoad     bool
	isStore    bool
	wrongPath  bool
	// Mispredicted-branch resolution bookkeeping.
	resolves bool
}

// backend is the approximate out-of-order engine: analytic dataflow
// scheduling (each instruction's issue time is the max of its operand
// ready times, subject to issue bandwidth), with real ROB/IQ/LQ/SQ
// occupancy limits and in-order commit.
type backend struct {
	cfg  *Config
	hier *cache.Hierarchy
	// lineShift caches hier.LineShift(): dispatch shifts every
	// load/store address by it, so it must not cost a call per op.
	lineShift uint

	rob        []robEntry
	head, tail int // ring indices
	count      int //vet:skip-invariant dispatch/commit/flush only; planSkip refuses commit-eligible, resolve-due and dispatch-able cycles

	seq       uint64 //vet:skip-invariant advances only at dispatch; planSkip refuses dispatch-able cycles
	committed uint64 //vet:skip-invariant commit path only; planSkip refuses commit-eligible cycles

	// Issue-queue model: instructions occupy the IQ from dispatch to
	// issue; iqRelease[c] counts entries leaving at cycle c.
	iqCount   int     //vet:skip-invariant changes at dispatch and when beginCycle consumes a scheduled release; nextIQEvent makes releases wake-ups, so skipped cycles subtract zero
	iqRelease []int32 //vet:skip-invariant set at dispatch, cleared when a release fires; both are skip-refused or wake-up events
	// issueBusy[c] counts issue slots used at cycle c.
	issueBusy []int32 //vet:skip-invariant incremented at dispatch, unwound by flush; both refused by planSkip

	// iqBits is a one-bit-per-slot summary of iqRelease feeding the
	// cycle skipper's wake-up computation: a set bit marks a slot
	// holding pending releases. dispatch sets it, beginCycle clears
	// the consumed slot, and flushAfter clears a slot's bit eagerly
	// when it unwinds the slot's last release — so a set bit always
	// covers a nonzero count (pinned by TestIQBitsCoverReleases).
	iqBits [ringSize / 64]uint64
	// iqPend counts outstanding iqRelease entries across the whole
	// ring — the exact number of scheduled future issue events — so
	// nextIQEvent can skip the bitmap scan when the queue is drained.
	//vet:skip-invariant mirrors iqRelease occupancy; dispatch and release cycles are skip-refused or wake-ups
	iqPend int

	lqCount, sqCount int //vet:skip-invariant dispatch/commit/flush only; planSkip refuses those cycles

	resolve resolveRecord

	// Completion times of the last depWindow instructions, by seq.
	lastComplete [depWindow]uint64

	depSeed uint64

	// Statistics.
	Stalls             stats.StallBreakdown
	WrongPathOps       uint64 //vet:skip-invariant dispatch path only; planSkip refuses dispatch-able cycles
	LoadsIssued        uint64 //vet:skip-invariant dispatch path only; planSkip refuses dispatch-able cycles
	StoresIssued       uint64 //vet:skip-invariant dispatch path only; planSkip refuses dispatch-able cycles
	Flushes            uint64 //vet:skip-invariant flush fires at resolve completion, a wake-up event planSkip refuses when due
	CommitActiveCycles uint64 //vet:skip-invariant counts only cycles that commit; skipped spans commit nothing
	lastFlushAt        uint64
}

func newBackend(cfg *Config, hier *cache.Hierarchy, seed uint64) *backend {
	return &backend{
		cfg:       cfg,
		hier:      hier,
		lineShift: hier.LineShift(),
		rob:       make([]robEntry, cfg.ROBSize),
		iqRelease: make([]int32, ringSize),
		issueBusy: make([]int32, ringSize),
		depSeed:   rng.Mix2(seed, 0xdeb5),
	}
}

// reset restores the back-end to the state newBackend would build,
// reusing every allocation. Core.Reset guarantees ROBSize is
// unchanged; the scheduling rings are fixed-size.
//
//vet:hot
func (b *backend) reset(hier *cache.Hierarchy, seed uint64) {
	b.hier = hier
	b.lineShift = hier.LineShift()
	clear(b.rob)
	b.head = 0
	b.tail = 0
	b.count = 0
	b.seq = 0
	b.committed = 0
	b.iqCount = 0
	clear(b.iqRelease)
	clear(b.issueBusy)
	clear(b.iqBits[:])
	b.iqPend = 0
	b.lqCount = 0
	b.sqCount = 0
	b.resolve = resolveRecord{}
	clear(b.lastComplete[:])
	b.depSeed = rng.Mix2(seed, 0xdeb5)
	b.Stalls = stats.StallBreakdown{}
	b.WrongPathOps = 0
	b.LoadsIssued = 0
	b.StoresIssued = 0
	b.Flushes = 0
	b.CommitActiveCycles = 0
	b.lastFlushAt = 0
}

// canAccept reports whether dispatch has room for one instruction of
// the given class.
func (b *backend) canAccept(cls trace.Class) bool {
	if b.count >= b.cfg.ROBSize || b.iqCount >= b.cfg.IQSize {
		return false
	}
	switch cls {
	case trace.ClassLoad:
		return b.lqCount < b.cfg.LQSize
	case trace.ClassStore:
		return b.sqCount < b.cfg.SQSize
	default:
		return true
	}
}

// findIssueSlot returns the first cycle >= from with spare issue
// bandwidth, reserving it.
func (b *backend) findIssueSlot(from, now uint64) uint64 {
	if from < now+1 {
		from = now + 1
	}
	max := now + ringSize - 2
	c := from
	for c < max && b.issueBusy[c&ringMask] >= int32(b.cfg.IssueWidth) {
		c++
	}
	b.issueBusy[c&ringMask]++
	return c
}

// dispatch inserts one instruction. memLine is the accessed cache line
// (valid only when hasMem). resolves marks the terminator of a
// mispredicted block; its completion triggers the flush.
// Returns the entry's completion cycle.
func (b *backend) dispatch(now uint64, pc uint64, cls trace.Class, hasMem bool, memAddr uint64, wrongPath, resolves bool) uint64 {
	readyAt := now + 1
	// Register dependences: most instructions have one or two
	// producers at hash-derived distances, a structural stand-in for
	// real dataflow; ~30% are dependence-free (immediates, loop
	// counters held in registers, …).
	h := rng.Mix2(b.depSeed, pc)
	if h%10 < 7 {
		d1 := 1 + (h>>8)%8
		if dep := b.completeOf(b.seq, d1); dep > readyAt {
			readyAt = dep
		}
		if h&0x100000 != 0 {
			d2 := 1 + (h>>24)%16
			if dep := b.completeOf(b.seq, d2); dep > readyAt {
				readyAt = dep
			}
		}
	}

	issueAt := b.findIssueSlot(readyAt, now)
	lat := uint64(cls.Latency())
	switch cls {
	case trace.ClassLoad:
		b.lqCount++
		b.LoadsIssued++
		if hasMem {
			lat = uint64(b.hier.AccessData(memAddr>>b.lineShift, false))
		} else {
			lat = 2 // wrong-path load: charged L1D-hit time, no cache access
		}
	case trace.ClassStore:
		b.sqCount++
		b.StoresIssued++
		if hasMem {
			b.hier.AccessData(memAddr>>b.lineShift, true)
		}
		lat = 1 // stores retire through the store buffer
	}
	// Results reach dependents through the bypass network as soon as
	// execution finishes; the dispatch-to-retire pipeline depth
	// (ExecOffset) is charged only to commit and branch resolution.
	dataReadyAt := issueAt + lat
	completeAt := dataReadyAt + uint64(b.cfg.ExecOffset)
	if completeAt > now+ringSize-2 {
		completeAt = now + ringSize - 2
		dataReadyAt = completeAt
	}

	e := robEntry{
		seq:        b.seq,
		pc:         pc,
		completeAt: completeAt,
		issueAt:    issueAt,
		isLoad:     cls == trace.ClassLoad,
		isStore:    cls == trace.ClassStore,
		wrongPath:  wrongPath,
		resolves:   resolves,
	}
	b.rob[b.tail] = e
	b.tail = (b.tail + 1) % b.cfg.ROBSize
	b.count++
	b.iqCount++
	slot := issueAt & ringMask
	b.iqRelease[slot]++
	b.iqBits[slot>>6] |= 1 << (slot & 63)
	b.iqPend++
	b.lastComplete[b.seq%depWindow] = dataReadyAt
	b.seq++
	if wrongPath {
		b.WrongPathOps++
	}
	return completeAt
}

// completeOf returns the completion time of the instruction `dist`
// before seq, or 0 when out of window.
func (b *backend) completeOf(seq, dist uint64) uint64 {
	if dist == 0 || dist > depWindow || dist > seq {
		return 0
	}
	return b.lastComplete[(seq-dist)%depWindow]
}

// beginCycle releases issue-queue entries whose issue time has come.
func (b *backend) beginCycle(now uint64) {
	slot := now & ringMask
	b.iqCount -= int(b.iqRelease[slot])
	b.iqPend -= int(b.iqRelease[slot])
	b.iqRelease[slot] = 0
	b.iqBits[slot>>6] &^= 1 << (slot & 63)
	if b.iqCount < 0 {
		b.iqCount = 0
	}
	// Retire the just-passed cycle's bandwidth slot so it can serve
	// its future alias (findIssueSlot never reaches an uncleared one).
	if now > 0 {
		b.issueBusy[(now-1)&ringMask] = 0
	}
}

// iqEmpty is the paper's E signal.
func (b *backend) iqEmpty() bool { return b.iqCount == 0 }

// At most one unresolved mispredicted branch exists at a time (the
// front-end cannot detect a second mispredict while already on the
// wrong path), so resolution tracking is a single record.
type resolveRecord struct {
	active     bool
	seq        uint64
	completeAt uint64
}

// registerResolve notes the dispatched mispredicted terminator.
func (b *backend) registerResolve(seq, completeAt uint64) {
	b.resolve = resolveRecord{active: true, seq: seq, completeAt: completeAt}
}

// resolveReady reports whether the pending mispredict has executed.
func (b *backend) resolveReady(now uint64) (uint64, bool) {
	if b.resolve.active && b.resolve.completeAt <= now {
		return b.resolve.seq, true
	}
	return 0, false
}

// flushAfter squashes every entry younger than seq, unwinding
// occupancy and future scheduling reservations.
func (b *backend) flushAfter(seq, now uint64) {
	for b.count > 0 {
		lastIdx := (b.tail - 1 + b.cfg.ROBSize) % b.cfg.ROBSize
		e := &b.rob[lastIdx]
		if e.seq <= seq {
			break
		}
		if e.issueAt > now {
			// Still waiting in the IQ: free its slot and bandwidth,
			// and clear the slot's summary bit when this was its last
			// pending release, so the skipper never wakes for an
			// empty slot.
			b.iqCount--
			b.iqPend--
			slot := e.issueAt & ringMask
			b.iqRelease[slot]--
			if b.iqRelease[slot] == 0 {
				b.iqBits[slot>>6] &^= 1 << (slot & 63)
			}
			b.issueBusy[slot]--
		}
		if e.isLoad {
			b.lqCount--
		}
		if e.isStore {
			b.sqCount--
		}
		b.tail = lastIdx
		b.count--
	}
	b.seq = seq + 1
	b.lastFlushAt = now
	b.resolve = resolveRecord{}
	b.Flushes++
}

// commit retires completed instructions in order; returns the number
// committed this cycle (correct-path only — wrong-path entries are
// squashed before they can reach here, but guard anyway).
func (b *backend) commit(now uint64) int {
	n := 0
	for n < b.cfg.CommitWidth && b.count > 0 {
		e := &b.rob[b.head]
		if e.completeAt > now {
			break
		}
		if e.isLoad {
			b.lqCount--
		}
		if e.isStore {
			b.sqCount--
		}
		b.head = (b.head + 1) % b.cfg.ROBSize
		b.count--
		if !e.wrongPath {
			b.committed++
			n++
		}
	}
	if n > 0 {
		b.CommitActiveCycles++
	}
	return n
}

// nextIQEvent returns the earliest cycle > now at which an
// issue-queue release is scheduled, scanning the iqBits summary
// bitmap in ring order. ok is false when no release is pending
// anywhere. Every set bit covers a nonzero release count (flushAfter
// clears a slot's bit with its last release), so the result is the
// exact next release cycle, never an early false wake-up.
func (b *backend) nextIQEvent(now uint64) (uint64, bool) {
	if b.iqPend == 0 {
		return 0, false
	}
	const numWords = ringSize / 64
	start := (now + 1) & ringMask
	firstWord := start >> 6
	if w := b.iqBits[firstWord] >> (start & 63); w != 0 {
		return now + 1 + uint64(bits.TrailingZeros64(w)), true
	}
	// All scheduled releases lie in (now, now+ringSize-2], so one lap
	// over the ring — re-entering firstWord at i == numWords to cover
	// the bits below start — is exhaustive.
	for i := uint64(1); i <= numWords; i++ {
		idx := (firstWord + i) & (numWords - 1)
		w := b.iqBits[idx]
		if w == 0 {
			continue
		}
		off := i*64 - (start & 63) + uint64(bits.TrailingZeros64(w))
		return now + 1 + off, true
	}
	return 0, false
}

// classifyStall records the commit-path stall taxonomy for a cycle in
// which nothing committed.
func (b *backend) classifyStall(now uint64) {
	if b.count == 0 {
		if now-b.lastFlushAt <= 12 && b.lastFlushAt != 0 {
			b.Stalls.Record(stats.StallFlushRecover, 1)
		} else {
			b.Stalls.Record(stats.StallFrontEnd, 1)
		}
		return
	}
	b.Stalls.Record(stats.StallBackEnd, 1)
}
