package pipeline

import (
	"emissary/internal/branch"
	"emissary/internal/cache"
	"emissary/internal/core"
	"emissary/internal/reuse"
	"emissary/internal/trace"
)

// mshrEntry tracks one outstanding instruction-line miss, including
// the starvation observations that feed EMISSARY's mode selection.
type mshrEntry struct {
	line        uint64
	completeAt  uint64
	src         cache.Source
	starved     bool
	iqEmptySeen bool
}

// ftqEntry is one fetched basic block in the fetch target queue; the
// FTQ doubles as the instruction buffer, so per-entry line readiness
// is what decode consumes.
type ftqEntry struct {
	addr    uint64
	n       int
	endKind branch.Kind

	wrongPath  bool
	mispredict bool // terminator was mispredicted (correct path only)

	mem    []trace.MemRef
	memIdx int //vet:skip-invariant advances with decode; planSkip refuses dispatch-able cycles

	consumed int //vet:skip-invariant advances with decode; planSkip refuses dispatch-able cycles

	lines     [2]uint64
	nLines    int
	requested uint8 // bitmask over lines
}

func (e *ftqEntry) lineIndex(pc uint64) int {
	if pc>>6 == e.lines[0] {
		return 0
	}
	return 1
}

// resteerState records a detected mispredict awaiting resolution. The
// RAS recovery snapshot lives outside it (frontend.rasSnap) so that
// clearing the resteer does not drop the snapshot's allocation.
type resteerState struct {
	pending      bool
	correctNext  uint64
	kind         branch.Kind
	fallthrough_ uint64
}

// frontend is the decoupled FDIP fetch engine.
type frontend struct {
	cfg          *Config
	src          trace.Source
	hier         *cache.Hierarchy
	sel          *core.Selector
	useSelection bool

	btb    *branch.BTB
	tage   *branch.TAGE
	ittage *branch.ITTAGE
	ras    *branch.RAS

	ftq      []ftqEntry
	ftqHead  int
	ftqCount int //vet:skip-invariant changes on enqueue, decode pop and recover; planSkip requires fetchBlock blocked, no dispatch, no resolve
	ftqInstr int //vet:skip-invariant changes on enqueue, decode pop and recover; planSkip requires fetchBlock blocked, no dispatch, no resolve

	nextPC     uint64
	havePC     bool
	wrongPath  bool
	deadEnd    bool
	resteer    resteerState
	oracleDone bool

	// rasSnap is the RAS state saved when a mispredict is detected and
	// restored at recovery. At most one mispredict is outstanding (a
	// second cannot be detected while already on the wrong path), so a
	// single persistent snapshot — refreshed in place — suffices.
	rasSnap branch.RASSnapshot

	predecodeBusy  bool
	predecodeAt    uint64
	predecodeEntry branch.BTBEntry

	primeEvent trace.BlockEvent
	havePrime  bool

	inflight map[uint64]*mshrEntry
	pending  []*mshrEntry
	// mshrSlab backs every mshrEntry; mshrFree is the stack of unused
	// entries (managed by reslicing within its fixed capacity). An
	// entry is live — in inflight and pending — from requestLine until
	// processCompletions returns it to the free stack.
	mshrSlab []mshrEntry
	mshrFree []*mshrEntry
	// memArena holds each FTQ slot's memory references: slot i owns
	// memArena[i*trace.MaxBlockMem : (i+1)*trace.MaxBlockMem]. Entries
	// copy the oracle event's Mem here at enqueue, since a Source's
	// Mem slice is only valid until the next NextBlock call.
	memArena []trace.MemRef
	scratch  []branch.BTBEntry
	mrc      *mrc

	// Reuse-distance tracking (Figure 2), enabled by cfg.TrackReuse.
	tracker        *reuse.Tracker
	lastBucket     map[uint64]reuse.Bucket
	lastReuseLine  uint64
	haveReuseLine  bool
	AccessByBucket [3]uint64 //vet:skip-invariant counted once per new line; requestWouldStall refuses the skip until that access has fired
	L2MissByBucket [3]uint64 //vet:skip-invariant counted when a probe needs a fill, which mutates the hierarchy; requestWouldStall confines skips to the bare MSHR-full path
	StarvByBucket  [3]uint64

	// StarvedLineEvents counts distinct starvation events per line
	// (allocated when cfg.TrackReuse is set); IQEStarvedLineEvents
	// restricts to events with an empty issue queue (the paper's E
	// signal).
	StarvedLineEvents    map[uint64]uint32 //vet:skip-invariant edge-triggered once per miss (!m.starved guard); planSkip requires the marking already fired
	IQEStarvedLineEvents map[uint64]uint32 //vet:skip-invariant edge-triggered once per miss (!m.iqEmptySeen guard); planSkip requires the marking already fired
	MarkedLines          map[uint64]bool
	StarvOnMarkedMiss    uint64 //vet:skip-invariant edge-triggered once per miss (!m.starved guard); planSkip requires the marking already fired

	// Statistics.
	FTQOccupancySum           uint64
	FetchBlockFull            uint64
	FetchBlockDeadEnd         uint64
	FetchBlockPredecode       uint64
	MSHRFullEvents            uint64
	StarvEventsBySrc          [4]uint64 //vet:skip-invariant edge-triggered once per miss (!m.starved guard); planSkip requires the marking already fired
	StarvationCycles          uint64    // decode starved, any path
	StarvationIQECycles       uint64    // ... with the issue queue empty
	CommitStarvationCycles    uint64    // starved on a correct-path line
	CommitStarvationIQECycles uint64
	FetchStallCycles          uint64    // FTQ empty or BTB-fill pending
	Mispredicts               uint64    //vet:skip-invariant fetch-enqueue path; planSkip requires fetchBlock blocked
	MispredictsByKind         [8]uint64 //vet:skip-invariant fetch-enqueue path; planSkip requires fetchBlock blocked
	BlocksFetched             uint64    //vet:skip-invariant fetch-enqueue path; planSkip requires fetchBlock blocked
}

func newFrontend(cfg *Config, src trace.Source, hier *cache.Hierarchy, seed uint64) *frontend {
	spec := hier.Config().L2Policy
	f := &frontend{
		cfg:          cfg,
		src:          src,
		hier:         hier,
		sel:          spec.NewSelector(seed),
		useSelection: spec.UsesSelection(),
		btb:          branch.NewBTB(cfg.BTBEntries, cfg.BTBWays),
		tage:         branch.NewTAGE(13),
		ittage:       branch.NewITTAGE(11),
		ras:          branch.NewRAS(cfg.RASDepth),
		ftq:          make([]ftqEntry, cfg.FTQEntries),
		inflight:     make(map[uint64]*mshrEntry, cfg.MaxMSHRs*2),
		pending:      make([]*mshrEntry, 0, cfg.MaxMSHRs),
		mshrSlab:     make([]mshrEntry, cfg.MaxMSHRs),
		mshrFree:     make([]*mshrEntry, cfg.MaxMSHRs),
		memArena:     make([]trace.MemRef, cfg.FTQEntries*trace.MaxBlockMem),
	}
	for i := range f.mshrSlab {
		f.mshrFree[i] = &f.mshrSlab[i]
	}
	f.rasSnap = f.ras.Snapshot()
	f.mrc = newMRC(cfg.MRCEntries)
	if cfg.TrackReuse {
		f.tracker = reuse.NewTracker(1 << 18)
		f.lastBucket = make(map[uint64]reuse.Bucket)
		f.StarvedLineEvents = make(map[uint64]uint32)
		f.IQEStarvedLineEvents = make(map[uint64]uint32)
		f.MarkedLines = make(map[uint64]bool)
	}
	return f
}

// head returns the oldest FTQ entry, or nil.
func (f *frontend) head() *ftqEntry {
	if f.ftqCount == 0 {
		return nil
	}
	return &f.ftq[f.ftqHead]
}

func (f *frontend) pop() {
	e := &f.ftq[f.ftqHead]
	f.ftqInstr -= e.n
	e.mem = nil
	f.ftqHead = (f.ftqHead + 1) % f.cfg.FTQEntries
	f.ftqCount--
}

func (f *frontend) full() bool {
	return f.ftqCount >= f.cfg.FTQEntries || f.ftqInstr >= f.cfg.FTQInstrCap
}

// requestLine issues an instruction-line request if the line is not
// already in flight; returns false when no MSHR is available. trackFig2
// attributes the access to the reuse tracker (correct-path accesses
// only).
func (f *frontend) requestLine(line uint64, now uint64, trackFig2 bool) bool {
	if trackFig2 && f.tracker != nil {
		if !f.haveReuseLine || f.lastReuseLine != line {
			b := reuse.Classify(f.tracker.Access(line))
			f.lastBucket[line] = b
			f.AccessByBucket[b]++
			f.lastReuseLine = line
			f.haveReuseLine = true
		}
	}
	if _, ok := f.inflight[line]; ok {
		return true
	}
	if len(f.pending) >= f.cfg.MaxMSHRs {
		f.MSHRFullEvents++
		return false
	}
	if f.mrc != nil && trackFig2 {
		if f.mrc.contains(line) {
			// Served by the recovery buffer: no miss penalty; install
			// the line through the hierarchy as a perfectly timely
			// fill. (The probe precedes observeRequest so a line only
			// hits on a *later* re-steer, never the request that
			// inserted it.)
			res := f.hier.ProbeFetch(line)
			if res.NeedFill {
				f.hier.CompleteFetch(line, res.Source, false)
			}
			f.predecodeLine(line)
			return true
		}
		f.mrc.observeRequest(line)
	}
	res := f.hier.ProbeFetch(line)
	if trackFig2 && f.tracker != nil && res.NeedFill && res.Source != cache.SrcL2 {
		f.L2MissByBucket[f.lastBucket[line]]++
	}
	if !res.NeedFill {
		f.predecodeLine(line)
		return true
	}
	// Past the MaxMSHRs check above fewer than MaxMSHRs entries are
	// live, so the free stack is non-empty and pending's reslice stays
	// within its preallocated capacity.
	nf := len(f.mshrFree) - 1
	m := f.mshrFree[nf]
	f.mshrFree = f.mshrFree[:nf]
	*m = mshrEntry{line: line, completeAt: now + uint64(res.Latency), src: res.Source}
	f.inflight[line] = m
	np := len(f.pending)
	f.pending = f.pending[:np+1]
	f.pending[np] = m
	return true
}

// predecodeLine is the proactive pre-decoder of §5.2: every fetched or
// prefetched instruction line has its basic-block boundaries extracted
// and installed in the BTB before the branch-prediction unit needs
// them, minimizing enqueue stalls.
func (f *frontend) predecodeLine(line uint64) {
	f.scratch = f.src.BlocksInLine(line, f.scratch[:0])
	for _, e := range f.scratch {
		if !f.btb.Probe(e.Start) {
			f.btb.Insert(e)
		}
	}
}

// processCompletions installs finished misses, evaluating EMISSARY's
// mode selection with the starvation observed while in flight.
func (f *frontend) processCompletions(now uint64) {
	if len(f.pending) == 0 {
		return
	}
	kept := 0
	for _, m := range f.pending {
		if m.completeAt > now {
			// In-place filter: survivors compact toward the front of
			// pending's backing array.
			f.pending[kept] = m
			kept++
			continue
		}
		high := false
		if f.useSelection {
			high = f.sel.Select(m.starved, m.starved && m.iqEmptySeen)
			if high && f.MarkedLines != nil {
				f.MarkedLines[m.line] = true
			}
		}
		f.hier.CompleteFetch(m.line, m.src, high)
		f.predecodeLine(m.line)
		delete(f.inflight, m.line)
		nf := len(f.mshrFree)
		f.mshrFree = f.mshrFree[:nf+1]
		f.mshrFree[nf] = m
	}
	f.pending = f.pending[:kept]
}

// prefetchScan is FDIP: walk the FTQ issuing line requests ahead of
// decode.
func (f *frontend) prefetchScan(now uint64) {
	idx := f.ftqHead
	for i := 0; i < f.ftqCount; i++ {
		e := &f.ftq[idx]
		for li := 0; li < e.nLines; li++ {
			if e.requested&(1<<uint(li)) != 0 {
				continue
			}
			if !f.requestLine(e.lines[li], now, !e.wrongPath) {
				return // MSHRs exhausted
			}
			e.requested |= 1 << uint(li)
		}
		idx = (idx + 1) % f.cfg.FTQEntries
	}
}

// ensureHeadLine is the demand path (and the no-FDIP mode): request
// the line decode is about to consume. Returns false when the request
// cannot be issued (MSHR pressure).
func (f *frontend) ensureHeadLine(e *ftqEntry, li int, now uint64) bool {
	if e.requested&(1<<uint(li)) != 0 {
		return true
	}
	if !f.requestLine(e.lines[li], now, !e.wrongPath) {
		return false
	}
	e.requested |= 1 << uint(li)
	return true
}

// lineBlocked reports whether the line is still in flight, returning
// the MSHR for starvation marking.
func (f *frontend) lineBlocked(line uint64) (*mshrEntry, bool) {
	m, ok := f.inflight[line]
	return m, ok
}

// oracleNext pulls the next committed-path block.
func (f *frontend) oracleNext() (trace.BlockEvent, bool) {
	ev, ok := f.src.NextBlock()
	if !ok {
		f.oracleDone = true
	}
	return ev, ok
}

// fetchBlock runs one cycle of the branch-prediction unit: predict and
// enqueue up to one basic block (§5.2).
func (f *frontend) fetchBlock(now uint64) {
	f.FTQOccupancySum += uint64(f.ftqCount)
	if f.deadEnd {
		f.FetchBlockDeadEnd++
	} else if f.full() {
		f.FetchBlockFull++
	} else if f.predecodeBusy && now < f.predecodeAt {
		f.FetchBlockPredecode++
	}
	if f.deadEnd || f.oracleDone || f.full() {
		if f.predecodeBusy && now >= f.predecodeAt {
			f.btb.Insert(f.predecodeEntry)
			f.predecodeBusy = false
		}
		return
	}
	if f.predecodeBusy {
		if now < f.predecodeAt {
			return
		}
		f.btb.Insert(f.predecodeEntry)
		f.predecodeBusy = false
	}
	if !f.havePC {
		// Prime from the first oracle block.
		ev, ok := f.oracleNext()
		if !ok {
			return
		}
		f.nextPC = ev.Addr
		f.havePC = true
		f.primeEvent = ev
		f.havePrime = true
	}

	entry, ok := f.btb.Lookup(f.nextPC)
	if !ok {
		// BTB miss: stall enqueue, pre-decode the block, and prefetch
		// the next two fall-through lines (§5.2).
		info, exists := f.src.BlockInfo(f.nextPC)
		if !exists {
			f.deadEnd = true // speculative walk left the program
			if !f.wrongPath {
				// On the correct path the next oracle event would
				// start here; an unknown block means the stream ended
				// (finite traces and test programs).
				f.oracleDone = true
			}
			return
		}
		f.predecodeBusy = true
		f.predecodeAt = now + uint64(f.cfg.PredecodeLatency)
		f.predecodeEntry = info
		line := f.nextPC >> 6
		f.requestLine(line+1, now, false)
		f.requestLine(line+2, now, false)
		return
	}

	branchPC := entry.BranchPC()
	fallthrough_ := entry.FallThrough()
	predNext := fallthrough_
	switch entry.EndKind {
	case branch.KindFallthrough:
	case branch.KindCond:
		if f.tage.Predict(branchPC) {
			predNext = entry.Target
		}
	case branch.KindJump, branch.KindCall:
		predNext = entry.Target
	case branch.KindReturn:
		predNext, _ = f.ras.Peek()
	case branch.KindIndirect, branch.KindIndirectCall:
		if t, ok := f.ittage.Predict(branchPC); ok {
			predNext = t
		} else {
			predNext = 0
		}
	}

	e := ftqEntry{
		addr:    f.nextPC,
		n:       entry.NumInstrs,
		endKind: entry.EndKind,
	}

	if f.wrongPath {
		e.wrongPath = true
		f.applyRASOps(entry.EndKind, fallthrough_)
	} else {
		ev, ok := f.currentOracle()
		if !ok {
			return
		}
		if ev.Addr != f.nextPC {
			// The oracle stream and the correct-path fetch cursor must
			// agree; a divergence is a simulator bug.
			violated("oracle desynchronized from correct-path fetch: oracle %#x, cursor %#x", ev.Addr, f.nextPC)
		}
		// Train predictors with the architectural outcome.
		switch entry.EndKind {
		case branch.KindCond:
			f.tage.Update(branchPC, ev.Taken)
		case branch.KindIndirect, branch.KindIndirectCall:
			f.ittage.Update(branchPC, ev.NextAddr)
		}
		e.mem = ev.Mem
		if predNext != ev.NextAddr {
			e.mispredict = true
			f.Mispredicts++
			f.MispredictsByKind[entry.EndKind]++
			f.ras.SnapshotInto(&f.rasSnap)
			f.resteer = resteerState{
				pending:      true,
				correctNext:  ev.NextAddr,
				kind:         entry.EndKind,
				fallthrough_: fallthrough_,
			}
		}
		f.applyRASOps(entry.EndKind, fallthrough_)
		if e.mispredict {
			f.wrongPath = true
		}
	}

	// Enqueue.
	e.lines[0] = e.addr >> 6
	e.nLines = 1
	if last := (e.addr + 4*uint64(e.n) - 1) >> 6; last != e.lines[0] {
		e.lines[1] = last
		e.nLines = 2
	}
	slot := (f.ftqHead + f.ftqCount) % f.cfg.FTQEntries
	if len(e.mem) > 0 {
		// e.mem still aliases the oracle event's buffer, which the next
		// NextBlock call invalidates; copy into the slot's arena region.
		if len(e.mem) > trace.MaxBlockMem {
			violated("block at %#x carries %d memory references, above trace.MaxBlockMem %d", e.addr, len(e.mem), trace.MaxBlockMem)
		}
		base := slot * trace.MaxBlockMem
		n := copy(f.memArena[base:base+trace.MaxBlockMem], e.mem)
		e.mem = f.memArena[base : base+n]
	}
	f.ftq[slot] = e
	f.ftqCount++
	f.ftqInstr += e.n
	f.BlocksFetched++

	f.nextPC = predNext
	if predNext == 0 {
		f.deadEnd = true
	}
}

// currentOracle returns the oracle event for the block being fetched,
// honoring the one-event priming buffer.
func (f *frontend) currentOracle() (trace.BlockEvent, bool) {
	if f.havePrime {
		f.havePrime = false
		return f.primeEvent, true
	}
	return f.oracleNext()
}

// applyRASOps performs the speculative return-stack effects of
// fetching a block.
func (f *frontend) applyRASOps(kind branch.Kind, fallthrough_ uint64) {
	switch {
	case kind.IsCall():
		f.ras.Push(fallthrough_)
	case kind == branch.KindReturn:
		f.ras.Pop()
	}
}

// recover re-steers the front-end after the mispredicted branch
// resolves: flush the FTQ (everything younger is wrong-path), restore
// the RAS, apply the branch's architectural stack effect, and resume
// at the correct target.
func (f *frontend) recover() {
	if !f.resteer.pending {
		// A resolve without a recorded re-steer would be a simulator
		// bug; recovering from nothing must not move the fetch PC.
		return
	}
	f.ftqHead = 0
	f.ftqCount = 0
	f.ftqInstr = 0
	f.predecodeBusy = false
	f.ras.Restore(f.rasSnap)
	f.applyRASOps(f.resteer.kind, f.resteer.fallthrough_)
	f.nextPC = f.resteer.correctNext
	f.wrongPath = false
	f.deadEnd = false
	f.resteer = resteerState{}
	f.haveReuseLine = false
	if f.mrc != nil {
		f.mrc.onRecover()
	}
}

// reset restores the front-end to the state newFrontend would build
// for the same structural config, reusing every allocation. Core.Reset
// guarantees the sizing fields (FTQEntries, MaxMSHRs, MRCEntries,
// BTB/RAS geometry, TrackReuse) are unchanged; everything else —
// source, hierarchy, seed, selection spec — may differ per run.
//
//vet:hot
func (f *frontend) reset(src trace.Source, hier *cache.Hierarchy, seed uint64) {
	spec := hier.Config().L2Policy
	f.src = src
	f.hier = hier
	f.sel.Reset(spec, seed)
	f.useSelection = spec.UsesSelection()
	f.btb.Reset()
	f.tage.Reset()
	f.ittage.Reset()
	f.ras.Reset()
	clear(f.ftq)
	f.ftqHead = 0
	f.ftqCount = 0
	f.ftqInstr = 0
	f.nextPC = 0
	f.havePC = false
	f.wrongPath = false
	f.deadEnd = false
	f.resteer = resteerState{}
	f.oracleDone = false
	f.predecodeBusy = false
	f.predecodeAt = 0
	f.predecodeEntry = branch.BTBEntry{}
	f.primeEvent = trace.BlockEvent{}
	f.havePrime = false
	clear(f.inflight)
	f.pending = f.pending[:0]
	f.mshrFree = f.mshrFree[:len(f.mshrSlab)]
	for i := range f.mshrSlab {
		f.mshrFree[i] = &f.mshrSlab[i]
	}
	f.scratch = f.scratch[:0]
	if f.mrc != nil {
		f.mrc.reset()
	}
	if f.tracker != nil {
		f.tracker.Reset()
		clear(f.lastBucket)
		clear(f.StarvedLineEvents)
		clear(f.IQEStarvedLineEvents)
		clear(f.MarkedLines)
	}
	f.lastReuseLine = 0
	f.haveReuseLine = false
	f.AccessByBucket = [3]uint64{}
	f.L2MissByBucket = [3]uint64{}
	f.StarvByBucket = [3]uint64{}
	f.StarvOnMarkedMiss = 0
	f.FTQOccupancySum = 0
	f.FetchBlockFull = 0
	f.FetchBlockDeadEnd = 0
	f.FetchBlockPredecode = 0
	f.MSHRFullEvents = 0
	f.StarvEventsBySrc = [4]uint64{}
	f.StarvationCycles = 0
	f.StarvationIQECycles = 0
	f.CommitStarvationCycles = 0
	f.CommitStarvationIQECycles = 0
	f.FetchStallCycles = 0
	f.Mispredicts = 0
	f.MispredictsByKind = [8]uint64{}
	f.BlocksFetched = 0
}

// markStarvation records a decode-starvation cycle blocked on m.
func (f *frontend) markStarvation(m *mshrEntry, wrongPath, iqEmpty bool) {
	if f.StarvedLineEvents != nil && !wrongPath && !m.starved {
		f.StarvedLineEvents[m.line]++
	}
	if f.IQEStarvedLineEvents != nil && !wrongPath && iqEmpty && !m.iqEmptySeen {
		f.IQEStarvedLineEvents[m.line]++
	}
	if !m.starved && !wrongPath {
		f.StarvEventsBySrc[m.src]++
		if f.MarkedLines != nil && f.MarkedLines[m.line] && m.src != cache.SrcL2 {
			f.StarvOnMarkedMiss++
		}
	}
	m.starved = true
	if iqEmpty {
		m.iqEmptySeen = true
	}
	f.StarvationCycles++
	if iqEmpty {
		f.StarvationIQECycles++
	}
	if !wrongPath {
		f.CommitStarvationCycles++
		if iqEmpty {
			f.CommitStarvationIQECycles++
		}
		if f.tracker != nil {
			f.StarvByBucket[f.lastBucket[m.line]]++
		}
	}
}
