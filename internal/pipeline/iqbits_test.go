package pipeline

import (
	"testing"

	"emissary/internal/cache"
	"emissary/internal/core"
	"emissary/internal/trace"
)

// checkIQBits asserts the bitmap invariant the cycle skipper relies
// on: a set iqBits bit covers exactly the slots with a nonzero
// iqRelease count, and iqPend mirrors the total outstanding releases.
func checkIQBits(t *testing.T, be *backend, when string) {
	t.Helper()
	pend := 0
	for slot := 0; slot < ringSize; slot++ {
		bit := be.iqBits[slot>>6]&(1<<(slot&63)) != 0
		if n := be.iqRelease[slot]; bit != (n != 0) {
			t.Fatalf("%s: slot %d: iqBits=%v but iqRelease=%d", when, slot, bit, n)
		}
		pend += int(be.iqRelease[slot])
	}
	if pend != be.iqPend {
		t.Fatalf("%s: iqPend=%d but iqRelease sums to %d", when, be.iqPend, pend)
	}
}

// TestIQBitsCoverReleases pins the eager-clear contract documented on
// the iqBits field: dispatch sets a slot's bit, beginCycle clears the
// consumed slot, and flushAfter clears a slot's bit exactly when it
// unwinds the slot's last pending release. A bit left set over an
// empty slot would wake the cycle skipper for nothing; a bit cleared
// while releases remain would make it sleep through a wake-up.
func TestIQBitsCoverReleases(t *testing.T) {
	cfg := DefaultConfig()
	hier := cache.NewHierarchy(cache.DefaultConfig(core.MustParsePolicy("TPLRU")))
	be := newBackend(&cfg, hier, 1)
	now := uint64(10)

	// A mixed wave dispatched at one cycle: bandwidth packing and
	// hash-derived dependences pile several releases onto shared slots.
	classes := []trace.Class{trace.ClassALU, trace.ClassLoad, trace.ClassStore, trace.ClassBranch}
	var mid uint64
	for i := 0; i < 24; i++ {
		cls := classes[i%len(classes)]
		hasMem := cls == trace.ClassLoad || cls == trace.ClassStore
		be.dispatch(now, uint64(i*4), cls, hasMem, uint64(0x100000+i*0x40), false, false)
		checkIQBits(t, be, "after dispatch")
		if i == 11 {
			mid = be.seq - 1
		}
	}

	// Partial flush: the younger half unwinds. Slots shared between
	// survivors and squashed entries must keep their bit; slots whose
	// last release unwound must drop it.
	be.flushAfter(mid, now)
	checkIQBits(t, be, "after partial flush")

	// Consume the surviving releases cycle by cycle, as the core does.
	for cyc := now + 1; cyc < now+2*ringSize && be.iqPend > 0; cyc++ {
		be.beginCycle(cyc)
		checkIQBits(t, be, "after beginCycle")
	}
	if be.iqPend != 0 {
		t.Fatalf("releases never drained: iqPend=%d", be.iqPend)
	}

	// Refill, squash everything, and confirm reset leaves a clean map.
	now += 2 * ringSize
	for i := 0; i < 8; i++ {
		be.dispatch(now, uint64(i*4), trace.ClassALU, false, 0, false, false)
	}
	checkIQBits(t, be, "after refill")
	be.flushAfter(0, now)
	checkIQBits(t, be, "after full flush")
	be.reset(hier, 1)
	checkIQBits(t, be, "after reset")
	if be.iqPend != 0 {
		t.Fatalf("reset left iqPend=%d", be.iqPend)
	}
}
