package lint

import (
	"go/ast"
	"go/types"
)

var ruleRawGoroutine = &Rule{
	Name: "raw-goroutine",
	Doc: "forbid go statements, sync.WaitGroup and channel construction outside internal/runner " +
		"(and _test.go files); all concurrency goes through the runner work pool so that job order, " +
		"seeding and result placement stay deterministic at any -j",
	run: runRawGoroutine,
}

func runRawGoroutine(u *Unit, report reportFunc) {
	if underInternal(u.Path, "runner") {
		return
	}
	for _, file := range u.Files {
		if isTestPos(u, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				report(n.Pos(), "go statement outside internal/runner; spawn work through the runner pool so scheduling stays deterministic")
			case *ast.Ident:
				// Covers both sync.WaitGroup (the selector's Sel
				// ident) and dot-imported/aliased uses.
				if obj, ok := u.Info.Uses[n]; ok && isSyncWaitGroup(obj) {
					report(n.Pos(), "sync.WaitGroup outside internal/runner; the runner pool owns goroutine lifecycle")
				}
			case *ast.CallExpr:
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "make" {
					if _, isBuiltin := u.Info.Uses[id].(*types.Builtin); isBuiltin {
						if t := u.Info.TypeOf(n); t != nil {
							if _, isChan := t.Underlying().(*types.Chan); isChan {
								report(n.Pos(), "channel construction outside internal/runner; coordinate through the runner pool instead")
							}
						}
					}
				}
			}
			return true
		})
	}
}

// isSyncWaitGroup reports whether obj names the sync.WaitGroup type.
func isSyncWaitGroup(obj types.Object) bool {
	tn, ok := obj.(*types.TypeName)
	return ok && tn.Pkg() != nil && tn.Pkg().Path() == "sync" && tn.Name() == "WaitGroup"
}
