package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// hot-noalloc turns the 0 allocs/op benchmark contract into a
// tree-wide static proof. Functions annotated //vet:hot — the cache
// access/fill path, policy victim selection, the pipeline step and
// skip paths — and everything statically reachable from them inside
// the module must be free of allocation-inducing constructs:
//
//   - make/new and append (append flagged even with capacity headroom:
//     the suppression must state the capacity bound)
//   - composite literals that escape (&T{...}) and slice/map literals
//   - closures (FuncLit)
//   - calls into package fmt
//   - string concatenation and string<->[]byte/[]rune conversions
//   - interface conversions, explicit or implicit at call arguments
//     (boxing a concrete value into an interface parameter)
//
// Benchmarks (TestHotPathNoAllocs) prove 0 allocs only for the shapes
// they drive; this pass proves it for every statically reachable line.
// Interface method calls are not traversed (the callee set is open);
// the seed annotations are therefore placed on every implementation of
// the hot interfaces, e.g. each policy's Victim.
//
// Functions declared in a file named invariant.go are exempt and not
// traversed: they are the sanctioned panic/diagnostic path, reached
// only when an invariant is already violated (mirrors the bare-panic
// rule's exemption).
var passHotNoalloc = &Pass{
	Name: "hot-noalloc",
	Doc:  "//vet:hot functions and their intra-module callees must not contain allocating constructs",
	run:  runHotNoalloc,
}

const exemptFile = "invariant.go"

func runHotNoalloc(m *Module, report reportFunc) {
	g := buildCallGraph(m)

	// Seeds in deterministic order: the sorted order of all declared
	// functions whose doc comment carries //vet:hot.
	var seeds []*funcNode
	for _, n := range sortedFuncs(g.nodes) {
		if hasVetMarker("hot", n.decl.Doc) {
			seeds = append(seeds, n)
		}
	}

	// Per-seed reachability with first-seed-wins provenance, so every
	// diagnostic names the hot root that pulls the code onto a hot
	// path.
	visited := make(map[*types.Func]bool)
	notExempt := func(n *funcNode) bool { return n.declFile() != exemptFile }
	for _, seed := range seeds {
		seedName := funcDisplayName(seed)
		for _, n := range sortedFuncs(g.reach([]*types.Func{seed.obj}, notExempt)) {
			if visited[n.obj] {
				continue
			}
			visited[n.obj] = true
			checkNoalloc(g, n, seedName, report)
		}
	}
}

// funcDisplayName renders pkg.Func or pkg.Recv.Method for messages.
func funcDisplayName(n *funcNode) string {
	pkg := n.obj.Pkg().Name()
	if recv := n.obj.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return pkg + "." + named.Obj().Name() + "." + n.obj.Name()
		}
	}
	return pkg + "." + n.obj.Name()
}

func checkNoalloc(g *callGraph, n *funcNode, seed string, report reportFunc) {
	info := n.unit.Info
	flag := func(pos token.Pos, what string) {
		report(pos, "%s on hot path (reachable from //vet:hot %s)", what, seed)
	}

	ast.Inspect(n.decl.Body, func(node ast.Node) bool {
		switch e := node.(type) {
		case *ast.CallExpr:
			// Calls into the exempt invariant file are the sanctioned
			// failure path; skip the whole call including its
			// (fmt-formatted) arguments.
			if callee := funcObj(info, e); callee != nil {
				if cn, ok := g.nodes[callee]; ok && cn.declFile() == exemptFile {
					return false
				}
			}
			checkCall(info, e, flag)
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
					flag(e.Pos(), "escaping composite literal (&T{...})")
				}
			}
		case *ast.CompositeLit:
			t := info.TypeOf(e)
			if t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					flag(e.Pos(), "slice literal allocates")
				case *types.Map:
					flag(e.Pos(), "map literal allocates")
				}
			}
		case *ast.FuncLit:
			flag(e.Pos(), "closure (func literal) allocates")
		case *ast.BinaryExpr:
			if e.Op == token.ADD {
				if t := info.TypeOf(e); t != nil && isString(t) {
					flag(e.Pos(), "string concatenation allocates")
				}
			}
		}
		return true
	})
}

// checkCall inspects one call expression for allocating behavior:
// builtins, fmt, conversions, and implicit interface boxing at the
// call boundary.
func checkCall(info *types.Info, call *ast.CallExpr, flag func(token.Pos, string)) {
	// Type conversions: T(x).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type
		src := info.TypeOf(call.Args[0])
		checkConversion(call.Pos(), dst, src, flag)
		return
	}

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				flag(call.Pos(), "make allocates")
			case "new":
				flag(call.Pos(), "new allocates")
			case "append":
				flag(call.Pos(), "append may allocate (growth beyond capacity)")
			}
			return
		}
	}

	fn := funcObj(info, call)
	if fn == nil {
		return
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		flag(call.Pos(), "fmt."+fn.Name()+" allocates")
		return
	}

	// Implicit interface boxing: a concrete argument passed where the
	// callee declares an interface parameter.
	sig := fn.Type().(*types.Signature)
	params := sig.Params()
	if params.Len() == 0 {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1).Type()
			if call.Ellipsis.IsValid() {
				pt = last // s... passes the slice through, no boxing
			} else if sl, ok := last.(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || isUntypedNil(at) {
			continue
		}
		if _, argIface := at.Underlying().(*types.Interface); argIface {
			continue // interface-to-interface does not box
		}
		flag(arg.Pos(), "interface boxing: concrete "+at.String()+" passed as interface argument")
	}
}

// checkConversion flags conversions that allocate: string<->byte/rune
// slices and concrete-to-interface.
func checkConversion(pos token.Pos, dst, src types.Type, flag func(token.Pos, string)) {
	if src == nil {
		return
	}
	du, su := dst.Underlying(), src.Underlying()
	if _, ok := du.(*types.Interface); ok {
		if _, srcIface := su.(*types.Interface); !srcIface && !isUntypedNil(src) {
			flag(pos, "conversion to interface boxes "+src.String())
		}
		return
	}
	if isString(dst) && isByteOrRuneSlice(su) {
		flag(pos, "[]byte/[]rune to string conversion allocates")
		return
	}
	if isByteOrRuneSlice(du) && isString(src) {
		flag(pos, "string to []byte/[]rune conversion allocates")
	}
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}
