package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// restrictedPkgs are the internal packages that make up the simulated
// machine and the experiment harness: everything inside them must be a
// pure function of (configuration, seed). Wall-clock reads, global
// math/rand state and environment lookups all smuggle in hidden inputs
// that break the byte-identical-replay guarantee.
var restrictedPkgs = []string{"pipeline", "cache", "policy", "workload", "sim", "experiments"}

var ruleNondetermSource = &Rule{
	Name: "nondeterm-source",
	Doc: "forbid time.Now/time.Since, math/rand package-level state and os.Getenv/os.LookupEnv " +
		"in the deterministic simulator packages (internal/{pipeline,cache,policy,workload,sim,experiments}); " +
		"simulation must be a pure function of configuration and seed",
	run: runNondetermSource,
}

func runNondetermSource(u *Unit, report reportFunc) {
	restricted := false
	for _, name := range restrictedPkgs {
		if underInternal(u.Path, name) {
			restricted = true
			break
		}
	}
	if !restricted {
		return
	}

	type finding struct {
		pos token.Pos
		msg string
	}
	var found []finding

	// Info.Uses has nondeterministic iteration order; collect then
	// sort by position so the linter's own output is reproducible.
	for id, obj := range u.Info.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil {
			continue
		}
		if isTestPos(u, id.Pos()) {
			continue
		}
		var msg string
		switch fn.Pkg().Path() {
		case "time":
			if fn.Name() == "Now" || fn.Name() == "Since" {
				msg = "use of time." + fn.Name() + ": deterministic simulator packages must not read the wall clock; time comes from the simulated cycle counter"
			}
		case "math/rand", "math/rand/v2":
			msg = "use of " + fn.Pkg().Path() + "." + fn.Name() + ": stochastic decisions must draw from an explicitly seeded internal/rng generator"
		case "os":
			if fn.Name() == "Getenv" || fn.Name() == "LookupEnv" || fn.Name() == "Environ" {
				msg = "use of os." + fn.Name() + ": simulation behavior must not depend on the process environment"
			}
		}
		if msg != "" {
			found = append(found, finding{id.Pos(), msg})
		}
	}

	sort.Slice(found, func(i, j int) bool { return found[i].pos < found[j].pos })
	for _, f := range found {
		report(f.pos, "%s", f.msg)
	}

	// Catch dot-import edge cases (`import . "math/rand"` leaves no
	// selector): flag the import itself when the package is forbidden.
	for _, file := range u.Files {
		if isTestPos(u, file.Pos()) {
			continue
		}
		for _, spec := range file.Imports {
			if spec.Name == nil || spec.Name.Name != "." {
				continue
			}
			switch importPath(spec) {
			case "math/rand", "math/rand/v2":
				report(spec.Pos(), "dot-import of math/rand in a deterministic simulator package")
			}
		}
	}
}

func importPath(spec *ast.ImportSpec) string {
	s := spec.Path.Value
	if len(s) >= 2 {
		return s[1 : len(s)-1]
	}
	return s
}
