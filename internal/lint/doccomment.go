package lint

import (
	"go/ast"
	"go/token"
	"strings"
	"unicode"
)

var ruleDocCommentName = &Rule{
	Name: "doc-comment-name",
	Doc: "in internal packages, a doc comment that opens with a camelCase identifier must name the " +
		"declaration it documents; a mismatch is a stale doc left behind by a rename or a copy-paste " +
		"(the Tracker.Seen doc once described a nonexistent LastBucket) and misleads both godoc and " +
		"readers. Plain sentence openers and ALL-CAPS acronyms are exempt — only words with an " +
		"interior case hump are treated as identifiers",
	run: runDocCommentName,
}

func runDocCommentName(u *Unit, report reportFunc) {
	if !strings.Contains("/"+u.Path+"/", "/internal/") {
		return
	}
	for _, file := range u.Files {
		if isTestFilename(u.Fset.Position(file.Pos()).Filename) {
			continue
		}
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				checkDocName(report, d.Doc, d.Name.Name)
			case *ast.GenDecl:
				if d.Tok != token.TYPE && d.Tok != token.CONST && d.Tok != token.VAR {
					continue
				}
				var blockNames []string
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						checkDocName(report, s.Doc, s.Name.Name)
						blockNames = append(blockNames, s.Name.Name)
					case *ast.ValueSpec:
						names := make([]string, len(s.Names))
						for i, n := range s.Names {
							names[i] = n.Name
						}
						checkDocName(report, s.Doc, names...)
						blockNames = append(blockNames, names...)
					}
				}
				// A doc on the decl group may open with any member of
				// the block (grouped vars are often documented jointly).
				checkDocName(report, d.Doc, blockNames...)
			}
		}
	}
}

// checkDocName reports when doc's first word looks like an identifier
// (interior case hump) yet names none of the declared identifiers.
func checkDocName(report reportFunc, doc *ast.CommentGroup, names ...string) {
	if doc == nil || len(names) == 0 {
		return
	}
	fields := strings.Fields(doc.Text())
	if len(fields) == 0 {
		return
	}
	w := strings.TrimRight(fields[0], ".,:;!?")
	if !identLike(w) || !caseHumped(w) {
		return
	}
	for _, n := range names {
		if n == w {
			return
		}
	}
	report(doc.Pos(), "doc comment opens with %q but documents %q; update the stale name so the doc matches the declaration", w, names[0])
}

// identLike reports whether s is a plausible Go identifier.
func identLike(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		if unicode.IsLetter(r) || r == '_' || (i > 0 && unicode.IsDigit(r)) {
			continue
		}
		return false
	}
	return true
}

// caseHumped reports whether s has an interior uppercase letter AND a
// lowercase letter somewhere — the camelCase shape of a multi-word
// identifier. Sentence openers ("The", "Reports") and acronyms
// ("TPLRU", "L2") both fail the test, keeping the rule conservative.
func caseHumped(s string) bool {
	hump, lower := false, false
	for i, r := range s {
		if i > 0 && unicode.IsUpper(r) {
			hump = true
		}
		if unicode.IsLower(r) {
			lower = true
		}
	}
	return hump && lower
}
