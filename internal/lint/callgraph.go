package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// The vet passes (vet.go) are whole-program analyses over a Module's
// library units. They share one statically-resolved call graph: every
// declared function body, with edges for calls the type checker can
// resolve to a concrete *types.Func — direct calls, method calls on
// concrete receivers (including through pointer fields), and calls
// inside defer/go statements. Two call shapes are deliberately not
// resolved, and the passes' contracts are scoped accordingly:
//
//   - interface method calls (the callee set is open; hot-noalloc
//     covers them by seeding //vet:hot on each implementation, e.g.
//     every policy's Victim);
//   - calls through function-typed values (closures, fields holding
//     funcs) — none occur on the simulator's analyzed paths today.

// funcNode is one declared function or method with a body.
type funcNode struct {
	obj  *types.Func
	decl *ast.FuncDecl
	unit *Unit
	// callees holds the statically resolved call targets, in source
	// order with duplicates retained (the sites slice is parallel).
	callees []*types.Func
}

// callGraph indexes every function declared in the module's library
// units by its types object.
type callGraph struct {
	nodes map[*types.Func]*funcNode
}

// buildCallGraph walks the module's non-test units once.
func buildCallGraph(m *Module) *callGraph {
	g := &callGraph{nodes: make(map[*types.Func]*funcNode)}
	for _, u := range m.Units {
		if u.TestsOnly {
			continue
		}
		for _, f := range u.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := u.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &funcNode{obj: obj, decl: fd, unit: u}
				ast.Inspect(fd.Body, func(node ast.Node) bool {
					call, ok := node.(*ast.CallExpr)
					if !ok {
						return true
					}
					if callee := funcObj(u.Info, call); callee != nil {
						n.callees = append(n.callees, callee)
					}
					return true
				})
				g.nodes[obj] = n
			}
		}
	}
	return g
}

// reach computes the set of declared functions reachable from roots,
// following only statically resolved edges. filter, when non-nil,
// prunes traversal: a callee for which filter returns false is neither
// visited nor expanded.
func (g *callGraph) reach(roots []*types.Func, filter func(*funcNode) bool) map[*types.Func]*funcNode {
	seen := make(map[*types.Func]*funcNode)
	var queue []*types.Func
	push := func(fn *types.Func) {
		n, ok := g.nodes[fn]
		if !ok || seen[fn] != nil {
			return
		}
		if filter != nil && !filter(n) {
			return
		}
		seen[fn] = n
		queue = append(queue, fn)
	}
	for _, r := range roots {
		push(r)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, callee := range seen[fn].nodes(g) {
			push(callee)
		}
	}
	return seen
}

// nodes returns the node's callees (helper so reach reads cleanly).
func (n *funcNode) nodes(g *callGraph) []*types.Func { return n.callees }

// sortedFuncs returns the reachable set in deterministic order
// (package path, then name, then position) for stable iteration.
func sortedFuncs(set map[*types.Func]*funcNode) []*funcNode {
	out := make([]*funcNode, 0, len(set))
	for _, n := range set {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].obj, out[j].obj
		ap, bp := pkgPathOf(a), pkgPathOf(b)
		if ap != bp {
			return ap < bp
		}
		if a.FullName() != b.FullName() {
			return a.FullName() < b.FullName()
		}
		return out[i].decl.Pos() < out[j].decl.Pos()
	})
	return out
}

func pkgPathOf(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// declFile returns the base name of the file a node is declared in.
func (n *funcNode) declFile() string {
	return filepath.Base(n.unit.Fset.Position(n.decl.Pos()).Filename)
}

// fieldChain resolves an expression of the form root.f1.f2...fn
// (possibly through pointers, parens, and index expressions) to the
// FINAL field selected, returning the field object and true. The chain
// may start at any identifier (a receiver, parameter, or local); only
// the last selection matters — `c.be.Stalls` resolves to backend's
// Stalls field. Expressions that are not field selections (bare
// identifiers, calls, map index of a local, ...) return false.
func fieldChain(info *types.Info, expr ast.Expr) (*types.Var, bool) {
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.SelectorExpr:
			sel, ok := info.Selections[e]
			if !ok || sel.Kind() != types.FieldVal {
				return nil, false
			}
			v, ok := sel.Obj().(*types.Var)
			return v, ok
		default:
			return nil, false
		}
	}
}

// owningStruct returns the named type whose struct declaration holds
// field, or nil. go/types links a struct field to its *types.Struct
// only indirectly, so the passes record owners while walking type
// declarations instead; this helper matches by scanning the package
// scope of the field's package.
func owningStruct(field *types.Var, pkg *types.Package) *types.TypeName {
	if field.Pkg() != pkg {
		return nil
	}
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == field {
				return tn
			}
		}
	}
	return nil
}

// --- //vet: markers ---

// vetMarkerPrefix introduces the semantic annotations the passes
// consume. Grammar (one marker per comment line):
//
//	//vet:nonbehavioral <reason>   on an Options field excluded from Fingerprint
//	//vet:skip-invariant <reason>  on a counter Step mutates outside skips
//	//vet:hot                      on a function whose tree must not allocate
const vetMarkerPrefix = "//vet:"

// vetMarkers maps marker name to whether a reason is mandatory.
var vetMarkers = map[string]bool{
	"nonbehavioral":  true,
	"skip-invariant": true,
	"hot":            false,
}

// hasVetMarker reports whether any comment in the groups carries the
// named marker (with a reason, when one is required — a reasonless
// marker is reported separately by the marker hygiene check and does
// not count as a suppression).
func hasVetMarker(name string, groups ...*ast.CommentGroup) bool {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			mname, reason, ok := parseVetMarker(c.Text)
			if ok && mname == name && (!vetMarkers[name] || reason != "") {
				return true
			}
		}
	}
	return false
}

// parseVetMarker splits a comment into marker name and reason; ok is
// false when the comment is not a //vet: directive at all.
func parseVetMarker(text string) (name, reason string, ok bool) {
	rest, found := strings.CutPrefix(text, vetMarkerPrefix)
	if !found {
		return "", "", false
	}
	name, reason, _ = strings.Cut(rest, " ")
	return strings.TrimSpace(name), strings.TrimSpace(reason), true
}

// fieldMarkers returns the comment groups attached to a struct field
// declaration (doc above, line comment trailing).
func fieldMarkers(f *ast.Field) []*ast.CommentGroup {
	return []*ast.CommentGroup{f.Doc, f.Comment}
}
