package lint

import (
	"go/ast"
)

var ruleRawFileWrite = &Rule{
	Name: "raw-file-write",
	Doc: "forbid direct os.Create/os.WriteFile/os.OpenFile in internal/runner and " +
		"internal/experiments (outside _test.go files); result artifacts go through " +
		"internal/atomicfile and checkpoints through runner.Journal, whose faultinject.FS " +
		"seam is what makes every write crash-safe and torture-testable",
	run: runRawFileWrite,
}

// rawWriteFuncs are the os entry points that put bytes on disk without
// the atomicity / fault-injection seam.
var rawWriteFuncs = []string{"Create", "WriteFile", "OpenFile"}

func runRawFileWrite(u *Unit, report reportFunc) {
	if !underInternal(u.Path, "runner") && !underInternal(u.Path, "experiments") {
		return
	}
	for _, file := range u.Files {
		if isTestPos(u, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, name := range rawWriteFuncs {
				if stdlibFunc(u.Info, call, "os", name) {
					report(call.Pos(),
						"os.%s in %s writes files without the atomicfile/journal seam; route artifacts through internal/atomicfile (or faultinject.FS) so crashes cannot leave hybrids",
						name, u.Path)
				}
			}
			return true
		})
	}
}
