package fix

// The sanctioned panic site: invariant.go may panic directly.
func violated(msg string) {
	panic("fix: " + msg)
}
