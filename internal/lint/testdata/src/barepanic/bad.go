//lintpath emissary/internal/pipeline

// Positive cases for bare-panic: direct panic calls in a guarded
// simulation package, outside the sanctioned invariant.go.
package fix

import "fmt"

func badPanics(n int) {
	if n < 0 {
		panic("negative") // want "bare panic"
	}
	if n > 64 {
		panic(fmt.Sprintf("n too large: %d", n)) // want "bare panic"
	}
}

func okViolated(n int) {
	if n == 0 {
		violated("n must be nonzero")
	}
}

// A local function named panic shadows the builtin; calls to it are
// not bare panics.
func shadowed() {
	panic := func(string) {}
	panic("not the builtin")
}
