package fix

// Test files may panic freely (t.Fatal alternatives, must-helpers).
func mustPositive(n int) int {
	if n <= 0 {
		panic("test helper: n must be positive")
	}
	return n
}
