//lintpath emissary/internal/runner

// internal/runner owns concurrency: everything here is allowed.
package fix

import "sync"

func pool(n int) int {
	var wg sync.WaitGroup
	out := make(chan int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			out <- v
		}(i)
	}
	wg.Wait()
	close(out)
	sum := 0
	for v := range out {
		sum += v
	}
	return sum
}
