package fix

import (
	"fmt"
	"io"
	"strings"
)

// Positive cases for map-order-sink: ordered sinks fed straight from
// randomized map iteration.

func badAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append inside range over map"
	}
	return keys
}

func badPrint(m map[string]int, w io.Writer) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want "fmt.Fprintf inside range over map"
	}
}

func badBuilder(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want "buffered write inside range over map"
	}
	return b.String()
}

func badConcat(m map[string]int) string {
	s := ""
	for k := range m {
		s += k // want "string concatenation inside range over map"
	}
	return s
}
