package fix

import (
	"fmt"
	"io"
	"sort"
)

// Negative cases, starting with the canonical fix: collect the keys,
// sort them, then emit in stable order.

func okSorted(m map[string]int, w io.Writer) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

func okSortSlice(m map[string]float64) []float64 {
	var xs []float64
	for _, v := range m {
		xs = append(xs, v)
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	return xs
}

// Integer reductions are order-insensitive.
func okCount(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// Ranging a slice can feed ordered sinks freely.
func okSliceRange(xs []string, w io.Writer) {
	for _, x := range xs {
		fmt.Fprintln(w, x)
	}
}
