// No lintpath pin: this package resolves outside internal/pipeline,
// so cycle-advance does not apply and free cycle writes are fine.
package fix

type clock struct {
	cycle uint64
}

func (c *clock) bump() {
	c.cycle++
}
