package fix

// Positive cases for float-fold: non-associative accumulation in
// randomized map order, including through a nested inner loop.

func badSum(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want "floating-point +="
	}
	return total
}

func badScale(m map[string]float32) float32 {
	p := float32(1)
	for _, v := range m {
		p *= v // want "floating-point *="
	}
	return p
}

func badNested(m map[string][]float64) float64 {
	var total float64
	for _, xs := range m {
		for _, v := range xs {
			total += v // want "floating-point +="
		}
	}
	return total
}
