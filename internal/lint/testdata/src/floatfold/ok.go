package fix

// Negative cases: slice-ordered float folds, integer folds in map
// order, and non-folding float assignment.

func okSliceSum(xs []float64) float64 {
	var total float64
	for _, v := range xs {
		total += v
	}
	return total
}

func okIntSum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func okAssign(m map[string]float64) float64 {
	last := 0.0
	for _, v := range m {
		last = v
	}
	return last
}
