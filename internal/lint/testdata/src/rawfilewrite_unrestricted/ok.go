//lintpath emissary/internal/atomicfile

// Packages outside internal/runner and internal/experiments are free
// to use the raw os entry points — atomicfile itself must, since it is
// the seam everything else is routed through.
package fix

import "os"

func commit(path string, data []byte) error {
	f, err := os.Create(path + ".tmp")
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.WriteFile(path+".meta", nil, 0o644)
}
