// Negative cases: packages outside internal/pipeline, internal/sim
// and internal/cache may panic (the default fix/<dirname> import path
// is not under any guarded package).
package fix

func mustIndex(i, n int) int {
	if i < 0 || i >= n {
		panic("index out of range")
	}
	return i
}
