package fix

// Raw goroutines are allowed in test files.
func spawnForTests(done chan struct{}) {
	ch := make(chan int, 1)
	go func() {
		ch <- 1
		close(done)
	}()
	<-ch
}
