//lintpath emissary/internal/experiments

// Positive cases for raw-goroutine: concurrency primitives outside
// internal/runner.
package fix

import "sync"

func badConcurrency(n int) int {
	var wg sync.WaitGroup    // want "sync.WaitGroup"
	out := make(chan int, 1) // want "channel construction"
	wg.Add(1)
	go func() { // want "go statement"
		defer wg.Done()
		out <- n
	}()
	wg.Wait()
	return <-out
}
