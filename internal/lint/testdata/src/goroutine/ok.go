package fix

import "sync"

// Negative cases: mutex-guarded state and non-channel makes are fine;
// only raw goroutine machinery is reserved for internal/runner.

type guarded struct {
	mu sync.Mutex
	m  map[string]int
}

func (g *guarded) get(k string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.m[k]
}

func okMake(n int) []int {
	s := make([]int, n)
	m := make(map[string]int, n)
	_ = m
	return s
}
