package fix

// Well-formed suppressions: trailing, directive-above, and multi-rule.

func suppressedTrailing(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v //lint:ignore float-fold fixture exercises same-line suppression
	}
	return total
}

func suppressedAbove(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		//lint:ignore float-fold fixture exercises directive-above suppression
		total += v
	}
	return total
}

func suppressedMulti(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		//lint:ignore float-fold,map-order-sink fixture exercises multi-rule directives
		total += v
	}
	return total
}
