package fix

// Malformed suppressions are diagnostics themselves (bad-ignore), and
// a directive naming the wrong rule does not suppress the finding.

//lint:ignore float-fold
// want@-1 "missing a reason"

//lint:ignore no-such-rule because the rule name is unknown
// want@-1 "unknown rule"

func wrongRule(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		//lint:ignore map-order-sink directive names a rule that is not the one firing
		total += v // want "floating-point +="
	}
	return total
}
