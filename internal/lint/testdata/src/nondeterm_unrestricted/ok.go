package fix

import "time"

// The default fixture import path is outside the restricted simulator
// packages, so wall-clock reads are fine here.
func stamp() time.Time { return time.Now() }
