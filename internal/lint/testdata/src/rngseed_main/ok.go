//lintpath emissary/cmd/fixmain

// Entry points (package main: cmd/, examples/) choose their own root
// seeds, so literal seeds are allowed here.
package main

import "emissary/internal/rng"

func main() {
	_ = rng.NewXoshiro256(99)
}
