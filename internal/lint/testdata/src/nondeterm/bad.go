//lintpath emissary/internal/sim

// Positive cases for nondeterm-source: every hidden-input source the
// rule forbids inside the deterministic simulator packages.
package fix

import (
	"math/rand"
	"os"
	"time"
)

func badClock() time.Duration {
	t0 := time.Now()      // want "use of time.Now"
	return time.Since(t0) // want "use of time.Since"
}

func badRand() int {
	return rand.Intn(8) // want "math/rand.Intn"
}

func badEnv() string {
	v, _ := os.LookupEnv("EMISSARY_MODE") // want "os.LookupEnv"
	return v + os.Getenv("EMISSARY_SEED") // want "os.Getenv"
}
