package fix

import "time"

// Test files may read the wall clock (timing harnesses and the like);
// the rule only polices the simulator itself.
func stampForTests() time.Time { return time.Now() }
