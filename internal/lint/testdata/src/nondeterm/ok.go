package fix

import (
	"os"
	"time"
)

// Negative cases: time and os usage that carries no hidden input.

func okDuration(d time.Duration) time.Duration { return d * 2 }

func okFile(name string) error {
	f, err := os.Open(name)
	if err != nil {
		return err
	}
	return f.Close()
}
