//lintpath emissary/internal/pipeline

// Positive and negative cases for cycle-advance: outside core.go's
// Step/skipTo, no function may write a struct field named cycle.
package fix

type stage struct {
	cycle  uint64
	cycles uint64 // not the clock: different name
}

func (s *stage) tick() {
	s.cycle++ // want "clock field"
}

func (s *stage) fastForward(n uint64) {
	s.cycle += n // want "clock field"
}

// Step outside core.go gets no exemption: the allow-list is
// (file, function), not function name alone.
func (s *stage) Step() {
	s.cycle = s.cycle + 1 // want "clock field"
}

// Reset outside core.go gets no zero-assign exemption either.
func (s *stage) Reset() {
	s.cycle = 0 // want "clock field"
}

func (s *stage) okWrites(c *Core) {
	s.cycles++       // different field name
	cycle := s.cycle // read, and a local named cycle
	cycle++          // local variable, not a field
	_ = cycle
	_ = c.Cycle()
}
