package fix

// Core mimics the pipeline core: cycle is the simulation clock.
type Core struct {
	cycle uint64
}

// Step is a sanctioned advance site.
func (c *Core) Step() {
	c.cycle++
}

// skipTo is the other sanctioned advance site.
func (c *Core) skipTo(target uint64) {
	c.cycle = target
}

// Cycle reads the clock; reads are always fine.
func (c *Core) Cycle() uint64 { return c.cycle }

// rewind lives in core.go but is not Step/skipTo: still a violation.
func (c *Core) rewind() {
	c.cycle-- // want "clock field"
}

// Reset may rewind the clock to the origin, and only to the origin:
// assigning the literal 0 is sanctioned, anything else is an advance.
func (c *Core) Reset(warmed bool) {
	c.cycle = 0
	if warmed {
		c.cycle = 1 // want "clock field"
	}
	c.cycle = c.cycle // want "clock field"
}
