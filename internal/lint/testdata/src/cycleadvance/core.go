package fix

// Core mimics the pipeline core: cycle is the simulation clock.
type Core struct {
	cycle uint64
}

// Step is a sanctioned advance site.
func (c *Core) Step() {
	c.cycle++
}

// skipTo is the other sanctioned advance site.
func (c *Core) skipTo(target uint64) {
	c.cycle = target
}

// Cycle reads the clock; reads are always fine.
func (c *Core) Cycle() uint64 { return c.cycle }

// rewind lives in core.go but is not Step/skipTo: still a violation.
func (c *Core) rewind() {
	c.cycle-- // want "clock field"
}
