//lintpath emissary/internal/workload

// Positive cases for unseeded-rng: literal magic seeds, including ones
// laundered through conversions and rng mixing helpers.
package fix

import "emissary/internal/rng"

func badLiteral() *rng.Xoshiro256 {
	return rng.NewXoshiro256(42) // want "literal seed"
}

func badConversion() *rng.SplitMix64 {
	return rng.NewSplitMix64(uint64(7)) // want "literal seed"
}

func badMixedLiteral() *rng.Xoshiro256 {
	return rng.NewXoshiro256(rng.Mix2(1, 2)) // want "literal seed"
}
