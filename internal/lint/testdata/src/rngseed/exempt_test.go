package fix

import "emissary/internal/rng"

// Tests may pin literal seeds for reproducible cases.
func seededForTests() *rng.Xoshiro256 { return rng.NewXoshiro256(1) }
