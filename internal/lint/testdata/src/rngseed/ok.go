package fix

import "emissary/internal/rng"

// Negative cases: seeds derived from parameters, fields and named
// constants, plus constructors whose first argument is not a seed.

const defaultSeed = 0x5eed

type engine struct {
	seed uint64
}

func okParam(seed uint64) *rng.Xoshiro256 {
	return rng.NewXoshiro256(rng.Mix2(seed, 0xc0de))
}

func okConst() *rng.SplitMix64 {
	return rng.NewSplitMix64(defaultSeed)
}

func okField(e *engine) *rng.Xoshiro256 {
	return rng.NewXoshiro256(e.seed)
}

func okNotSeed() *rng.Chooser {
	return rng.NewChooser([]float64{1, 2, 3})
}
