//lintpath emissary/internal/runner

// Positive cases for raw-file-write: direct os writes inside a
// restricted package (internal/runner here; internal/experiments is
// equally restricted).
package fix

import "os"

func persist(path string, data []byte) error {
	if err := os.WriteFile(path, data, 0o644); err != nil { // want "os.WriteFile"
		return err
	}
	f, err := os.Create(path + ".tmp") // want "os.Create"
	if err != nil {
		return err
	}
	defer f.Close()
	g, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644) // want "os.OpenFile"
	if err != nil {
		return err
	}
	return g.Close()
}

func readOnlyIsFine(path string) ([]byte, error) {
	// Reads carry no durability hazard; only the write entry points are
	// restricted.
	return os.ReadFile(path)
}
