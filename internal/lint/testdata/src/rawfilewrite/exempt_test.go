package fix

import "os"

// Test files may write files directly: fixtures, planted corruption,
// and golden outputs all need raw byte-level control.
func plantCorruption(path string) error {
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		return err
	}
	f, err := os.Create(path + ".extra")
	if err != nil {
		return err
	}
	return f.Close()
}
