//lintpath emissary/internal/util

// Positive and negative cases for doc-comment-name: doc comments whose
// opening word is a camelCase identifier must name the declaration.
package fix

// LastBucket reports whether the line was ever admitted. // want "doc comment opens with \"LastBucket\""
func Seen(line uint64) bool { return line != 0 }

// ReuseTracker observes per-line reuse distances. // want "doc comment opens with \"ReuseTracker\""
type Tracker struct{ n int }

// MaxDepth bounds the recorded histogram. // want "doc comment opens with \"MaxDepth\""
const MaxWidth = 64

// defaultSpan is shared by the grouped declarations below. // want "doc comment opens with \"defaultSpan\""
var (
	spanLo = 1
	spanHi = 8
)

// SeenCount is correctly named after its declaration.
func SeenCount(t *Tracker) int { return t.n }

// The tracker is reset between runs; a plain sentence opener is fine.
func Reset(t *Tracker) { t.n = 0 }

// TPLRU is an acronym, not a camelCase identifier; exempt.
func PolicyName() string { return "TPLRU" }

// spanMid names one member of its grouped declaration, which is fine.
var (
	spanMid = 4
	spanTop = 16
)
