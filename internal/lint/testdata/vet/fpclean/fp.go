// Package fixvet is the clean fingerprint fixture: every field read on
// the Run path is either fingerprinted or annotated. The mutation
// self-test comments out one field(...) line and asserts exactly that
// field is reported.
package fixvet

import (
	"strconv"
	"strings"
)

// Options mirrors the sim.Options shape.
type Options struct {
	A int
	B int
	//vet:nonbehavioral debug flag; results identical either way
	NoSkip bool
}

// Fingerprint is written in the production idiom: a field closure
// appending k:v parts.
func (o Options) Fingerprint() string {
	var parts []string
	field := func(k string, v int) {
		parts = append(parts, k+":"+strconv.Itoa(v))
	}
	field("a", o.A)
	field("b", o.B)
	return strings.Join(parts, ",")
}

// Run is the entry point the pass traces from.
func Run(o Options) int {
	n := o.A + o.B
	if o.NoSkip {
		n++
	}
	return n
}
