// Package fixvet is the clean hot-path fixture: the //vet:hot function
// and its callee use only non-allocating constructs, and an
// unreachable cold function may allocate freely.
package fixvet

type line struct {
	tag  uint64
	prio uint8
}

type set struct {
	lines [8]line
	mask  uint32
}

//vet:hot
func Access(s *set, tag uint64) int {
	for i := range s.lines {
		if s.lines[i].tag == tag {
			touch(s, i)
			return i
		}
	}
	return -1
}

func touch(s *set, way int) {
	s.mask |= 1 << uint(way)
	s.lines[way] = line{tag: s.lines[way].tag, prio: 1} // value literal: no alloc
}

// Cold is not reachable from any //vet:hot root, so its allocations
// are not flagged.
func Cold(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}
