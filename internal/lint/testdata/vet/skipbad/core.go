// Package fixvet plants skip-delta violations: a counter incremented
// only on the Step path (through a helper, proving intra-package
// traversal), a struct field mutated via a pointer-receiver method on
// the Step path only, and a stale annotation on a counter skipTo does
// accumulate.
package fixvet

type rec struct{ n uint64 }

func (r *rec) Add(k uint64) { r.n += k }

type Core struct {
	Good uint64
	Bad  uint64 // want "Core.Bad is accumulated on a Core.Step path but not by Core.skipTo"
	//vet:skip-invariant commit-path only; skipped spans commit nothing
	Inv uint64
	//vet:skip-invariant stale marker
	Contra uint64 // want "annotation contradicts the code"
	R      rec
	Rbad   rec // want "Core.Rbad is accumulated on a Core.Step path but not by Core.skipTo"
}

func (c *Core) Step() {
	c.Good++
	c.bump()
	c.Inv++
	c.R.Add(1)
	c.Rbad.Add(1)
}

func (c *Core) bump() { c.Bad++ }

func (c *Core) skipTo(target uint64) {
	c.Good += target
	c.Contra += target
	c.R.Add(target)
}
