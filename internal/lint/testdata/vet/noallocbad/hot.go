// Package fixvet plants every allocating construct hot-noalloc flags,
// one suppressed site, a callee reached through the call graph, and an
// exempt invariant.go call.
package fixvet

import "fmt"

type point struct{ x, y int }

func take(v interface{}) int { return 0 }

//vet:hot
func Hot(n int, a, b string) int {
	s := make([]int, n)          // want "make allocates"
	p := new(int)                // want "new allocates"
	s = append(s, 1)             // want "append may allocate"
	q := &point{1, 2}            // want "escaping composite literal"
	sl := []int{1, 2}            // want "slice literal allocates"
	mp := map[int]int{}          // want "map literal allocates"
	f := func() int { return 1 } // want "closure"
	fmt.Println(n)               // want "fmt.Println allocates"
	c := a + b                   // want "string concatenation allocates"
	bs := []byte(a)              // want "conversion allocates"
	k := take(n)                 // want "interface boxing"
	e := any(n)                  // want "conversion to interface boxes"
	//lint:ignore hot-noalloc scratch buffer is reused; growth is bounded by the fixture
	s = append(s, 2)
	violated("impossible", n)
	helper(n)
	_, _, _, _, _, _, _, _, _ = p, q, sl, mp, f, c, bs, k, e
	return len(s)
}

// helper is pulled onto the hot path by the call in Hot.
func helper(n int) []int {
	return make([]int, n) // want "make allocates"
}
