package fixvet

import "fmt"

// violated is the sanctioned failure path: functions declared in
// invariant.go are exempt from hot-noalloc, and calls to them
// (including their boxed arguments) are skipped.
func violated(msg string, args ...any) {
	panic(fmt.Sprintf(msg, args...))
}
