// Package fixvet exercises //vet: marker hygiene: unknown marker names
// and reasonless reason-mandatory markers are bad-vet-marker findings,
// which cannot be suppressed.
package fixvet

//vet:bogus some reason
// want@-1 "unknown //vet: marker"

//vet:skip-invariant
// want@-1 "requires a reason"

//vet:nonbehavioral
// want@-1 "requires a reason"

// F exists so the package has a declaration; //vet:hot needs no
// reason.
//
//vet:hot
func F() {}
