// Package fixvet is the coherent skip-delta fixture: every counter
// Step accumulates is mirrored by skipTo (directly or through a
// pointer-receiver method on a struct field) or annotated. The
// mutation self-test plants a c.Spare++ in Step and asserts exactly
// Spare is reported.
package fixvet

// rec mutates through a pointer-receiver method, like
// stats.StallBreakdown.
type rec struct{ n uint64 }

func (r *rec) Add(k uint64) { r.n += k }

// Core mirrors the pipeline.Core shape.
type Core struct {
	cycle uint64 //vet:skip-invariant advanced directly by skipTo, not via the per-cycle delta
	Good  uint64
	Spare uint64
	R     rec
}

func (c *Core) Step() {
	c.cycle++
	c.Good++
	c.R.Add(1)
}

func (c *Core) skipTo(target uint64) {
	n := target - c.cycle
	c.Good += n
	c.R.Add(n)
	c.cycle = target
}
