// Package fixvet plants one missing-field violation and one stale
// annotation for fingerprint-complete.
package fixvet

// Options has: A covered; B read (via Run) but unfingerprinted and
// unannotated; C read (via a helper, proving call-graph traversal) but
// annotated; D fingerprinted yet also annotated (contradiction); E
// dead (neither read nor fingerprinted — silent).
type Options struct {
	A int
	B int // want "Options.B is read on a Run"
	//vet:nonbehavioral debug-only knob; results identical either way
	C int
	//vet:nonbehavioral stale marker left after D was fingerprinted
	D int // want "annotation contradicts the code"
	E int
}

func (o Options) Fingerprint() string {
	if o.A > 0 && o.D > 0 {
		return "ad"
	}
	return ""
}

func Run(o Options) int {
	return o.A + o.B + helper(o)
}

func helper(o Options) int { return o.C }
