module fixvet

go 1.22
