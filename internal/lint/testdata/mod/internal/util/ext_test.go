package util_test

import (
	"testing"

	"fixmod/internal/util"
)

// External test package: exercises the loader's second-pass external
// test unit, which imports a module-internal package.
func TestOff(t *testing.T) {
	if util.Off() != 42 {
		t.Fatal("unexpected offset")
	}
}
