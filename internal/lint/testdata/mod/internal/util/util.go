// Package util gives the loader fixture a dependency edge to order.
package util

// Off returns a fixed offset.
func Off() int64 { return 42 }
