package pipeline

import "time"

// Wall-clock reads in test files are exempt; this file exercises the
// loader's test-augmented unit path without adding diagnostics.
func stampForTests() time.Time { return time.Now() }
