// Package pipeline is a loader fixture: a restricted package with a
// module-internal dependency and one planted wall-clock read.
package pipeline

import (
	"time"

	"fixmod/internal/util"
)

func Stamp() int64 { return time.Now().UnixNano() + util.Off() }
