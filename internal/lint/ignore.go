package lint

import (
	"go/token"
	"strconv"
	"strings"
)

// ignoreDirective is one parsed //lint:ignore comment. It suppresses
// diagnostics for the named rules on its own line and on the line
// immediately below (so it works both as a trailing comment and as a
// standalone comment above the offending statement).
type ignoreDirective struct {
	file  string
	line  int
	rules map[string]bool
}

const ignorePrefix = "//lint:ignore"

// scanIgnores parses every //lint:ignore directive in the unit. A
// directive must name at least one known rule and give a non-empty
// reason; violations are reported as bad-ignore diagnostics so that a
// suppression can never silently decay into a blanket waiver.
func scanIgnores(u *Unit, known map[string]bool) ([]ignoreDirective, []Diagnostic) {
	var dirs []ignoreDirective
	var bad []Diagnostic

	report := func(pos token.Pos, msg string) {
		p := u.Fset.Position(pos)
		bad = append(bad, Diagnostic{
			Pos:     p,
			File:    p.Filename,
			Line:    p.Line,
			Col:     p.Column,
			Rule:    "bad-ignore",
			Message: msg,
		})
	}

	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //lint:ignorefoo — not our directive
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					report(c.Pos(), "//lint:ignore needs a rule name and a reason: //lint:ignore rule reason")
					continue
				}
				ruleList := fields[0]
				if len(fields) < 2 {
					report(c.Pos(), "//lint:ignore "+ruleList+" is missing a reason; suppressions must say why")
					continue
				}
				rules := make(map[string]bool)
				ok := true
				for _, name := range strings.Split(ruleList, ",") {
					if !known[name] {
						report(c.Pos(), "//lint:ignore names unknown rule "+strconv.Quote(name))
						ok = false
						break
					}
					rules[name] = true
				}
				if !ok {
					continue
				}
				p := u.Fset.Position(c.Pos())
				dirs = append(dirs, ignoreDirective{file: p.Filename, line: p.Line, rules: rules})
			}
		}
	}
	return dirs, bad
}

// applyIgnores drops diagnostics covered by a directive. bad-ignore
// itself cannot be suppressed.
func applyIgnores(diags []Diagnostic, dirs []ignoreDirective) []Diagnostic {
	if len(dirs) == 0 {
		return diags
	}
	type key struct {
		file string
		line int
		rule string
	}
	covered := make(map[key]bool)
	for _, d := range dirs {
		for rule := range d.rules {
			covered[key{d.file, d.line, rule}] = true
			covered[key{d.file, d.line + 1, rule}] = true
		}
	}
	out := diags[:0]
	for _, d := range diags {
		if d.Rule != "bad-ignore" && covered[key{d.File, d.Line, d.Rule}] {
			continue
		}
		out = append(out, d)
	}
	return out
}
