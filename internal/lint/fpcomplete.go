package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// fingerprint-complete proves the content-addressing contract: every
// field of an options struct that can influence simulation behavior is
// part of its Fingerprint(), so two option values with equal
// fingerprints cannot produce different results (the checkpoint
// journal — and any future fingerprint-keyed result cache — depends on
// exactly this).
//
// Mechanically, for every named struct type T with a method
// `Fingerprint() string`, the pass computes
//
//	covered = fields of T read inside Fingerprint's body
//	behavioral = fields of T read in any function statically reachable
//	             from the Run* entry points of T's package
//	             (excluding Fingerprint itself and other
//	             fingerprint-derived helpers that call it)
//
// and requires behavioral ⊆ covered, unless the field's declaration
// carries //vet:nonbehavioral <reason>. A field that is BOTH covered
// and marked nonbehavioral is a contradiction and also reported.
//
// Reads through copies are safe: plumbing a field into pipeline.Config
// or cache geometry is itself a read of the field at the copy site, so
// the dataflow need not be followed past the first read.
var passFingerprintComplete = &Pass{
	Name: "fingerprint-complete",
	Doc:  "every options field read on a Run* path must be fingerprinted or //vet:nonbehavioral",
	run:  runFingerprintComplete,
}

func runFingerprintComplete(m *Module, report reportFunc) {
	g := buildCallGraph(m)

	for _, u := range m.Units {
		if u.TestsOnly {
			continue
		}
		for _, target := range fingerprintTargets(u) {
			checkFingerprintTarget(m, g, u, target, report)
		}
	}
}

// fpTarget is one struct type with a Fingerprint() string method.
type fpTarget struct {
	typeName *types.TypeName
	strct    *types.Struct
	fpMethod *types.Func
	fpDecl   *ast.FuncDecl
}

// fingerprintTargets finds every named struct type in the unit that
// declares a method Fingerprint() string.
func fingerprintTargets(u *Unit) []*fpTarget {
	var out []*fpTarget
	for _, f := range u.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Name.Name != "Fingerprint" || fd.Body == nil {
				continue
			}
			obj, ok := u.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig := obj.Type().(*types.Signature)
			if sig.Params().Len() != 0 || sig.Results().Len() != 1 || !isString(sig.Results().At(0).Type()) {
				continue
			}
			recv := sig.Recv().Type()
			if p, ok := recv.(*types.Pointer); ok {
				recv = p.Elem()
			}
			named, ok := recv.(*types.Named)
			if !ok {
				continue
			}
			strct, ok := named.Underlying().(*types.Struct)
			if !ok {
				continue
			}
			out = append(out, &fpTarget{
				typeName: named.Obj(),
				strct:    strct,
				fpMethod: obj,
				fpDecl:   fd,
			})
		}
	}
	return out
}

func checkFingerprintTarget(m *Module, g *callGraph, u *Unit, t *fpTarget, report reportFunc) {
	// The field objects of T, in declaration order.
	fieldSet := make(map[*types.Var]bool, t.strct.NumFields())
	for i := 0; i < t.strct.NumFields(); i++ {
		fieldSet[t.strct.Field(i)] = true
	}

	covered := make(map[*types.Var]bool)
	collectFieldReads(u.Info, t.fpDecl.Body, fieldSet, func(v *types.Var, _ ast.Node) {
		covered[v] = true
	})

	// Entry points: Run-prefixed declarations in T's package. The
	// reachability walk spans the whole module (Run* in sim reaches
	// pipeline, cache, policy, workload...), minus Fingerprint itself —
	// the journal keys results by fingerprint on the Run path, and
	// those reads are definitionally covered.
	var roots []*types.Func
	for _, uu := range m.Units {
		if uu.TestsOnly || uu.Pkg != u.Pkg {
			continue
		}
		for _, f := range uu.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !strings.HasPrefix(fd.Name.Name, "Run") {
					continue
				}
				if obj, ok := uu.Info.Defs[fd.Name].(*types.Func); ok {
					roots = append(roots, obj)
				}
			}
		}
	}

	behavioral := make(map[*types.Var]ast.Node) // field -> first read site
	reached := g.reach(roots, func(n *funcNode) bool { return n.obj != t.fpMethod })
	for _, n := range sortedFuncs(reached) {
		collectFieldReads(n.unit.Info, n.decl.Body, fieldSet, func(v *types.Var, site ast.Node) {
			if _, ok := behavioral[v]; !ok {
				behavioral[v] = site
			}
		})
	}

	decls := fieldDecls(u)
	for i := 0; i < t.strct.NumFields(); i++ {
		fv := t.strct.Field(i)
		fd := decls[fv]
		marked := fd != nil && hasVetMarker("nonbehavioral", fieldMarkers(fd)...)
		switch {
		case behavioral[fv] != nil && !covered[fv] && !marked:
			pos := fv.Pos()
			if fd != nil {
				pos = fd.Pos()
			}
			report(pos, "%s.%s is read on a Run* path but not written by Fingerprint; fingerprint it or annotate //vet:nonbehavioral <reason>",
				t.typeName.Name(), fv.Name())
		case covered[fv] && marked:
			report(fd.Pos(), "%s.%s is marked //vet:nonbehavioral but Fingerprint writes it; the annotation contradicts the code",
				t.typeName.Name(), fv.Name())
		}
	}
}

// collectFieldReads walks body and invokes fn for every selection of a
// field in fieldSet. Writes count too — an options struct is built
// once and only read afterwards, so on Run* paths every selection is a
// read or a copy into a derived config, both of which make the field
// behavioral.
func collectFieldReads(info *types.Info, body ast.Node, fieldSet map[*types.Var]bool, fn func(*types.Var, ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return true
		}
		if v, ok := s.Obj().(*types.Var); ok && fieldSet[v] {
			fn(v, sel)
		}
		return true
	})
}

// fieldDecls maps each struct field object declared in the unit to its
// ast.Field, so passes can attach diagnostics (and read annotations)
// at the declaration site.
func fieldDecls(u *Unit) map[*types.Var]*ast.Field {
	out := make(map[*types.Var]*ast.Field)
	for _, f := range u.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, fld := range st.Fields.List {
				for _, name := range fld.Names {
					if v, ok := u.Info.Defs[name].(*types.Var); ok {
						out[v] = fld
					}
				}
			}
			return true
		})
	}
	return out
}
