package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

var ruleCycleAdvance = &Rule{
	Name: "cycle-advance",
	Doc: "in internal/pipeline, the simulation clock (any struct field named cycle) may only be written " +
		"inside core.go's Step or skipTo; the event-driven cycle skipper reasons about exactly those two " +
		"advance sites, and a stage mutating the clock elsewhere would silently desynchronize from it. " +
		"core.go's Reset is additionally allowed to assign the literal 0 — rewinding to the origin is " +
		"not an advance, and the warm-pool reset path depends on it",
	run: runCycleAdvance,
}

func runCycleAdvance(u *Unit, report reportFunc) {
	if !underInternal(u.Path, "pipeline") {
		return
	}
	for _, file := range u.Files {
		name := u.Fset.Position(file.Pos()).Filename
		if isTestFilename(name) {
			continue
		}
		isCoreFile := filepath.Base(name) == "core.go"
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if isCoreFile && (fn.Name.Name == "Step" || fn.Name.Name == "skipTo") {
				continue
			}
			isReset := isCoreFile && fn.Name.Name == "Reset"
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch st := n.(type) {
				case *ast.AssignStmt:
					for i, lhs := range st.Lhs {
						if sel, ok := cycleField(u, lhs); ok {
							if isReset && zeroAssign(st, i) {
								continue
							}
							report(sel.Pos(), "clock field %s.%s written in %s.%s; cycle advances belong only in core.go's Step/skipTo",
								exprText(sel.X), sel.Sel.Name, filepath.Base(name), fn.Name.Name)
						}
					}
				case *ast.IncDecStmt:
					if sel, ok := cycleField(u, st.X); ok {
						report(sel.Pos(), "clock field %s.%s written in %s.%s; cycle advances belong only in core.go's Step/skipTo",
							exprText(sel.X), sel.Sel.Name, filepath.Base(name), fn.Name.Name)
					}
				}
				return true
			})
		}
	}
}

// zeroAssign reports whether position i of the assignment writes the
// literal 0 with a plain = (the rewind Reset is sanctioned to perform).
func zeroAssign(st *ast.AssignStmt, i int) bool {
	if st.Tok != token.ASSIGN || len(st.Rhs) != len(st.Lhs) {
		return false
	}
	lit, ok := ast.Unparen(st.Rhs[i]).(*ast.BasicLit)
	return ok && lit.Kind == token.INT && lit.Value == "0"
}

// cycleField reports whether expr writes a struct field named exactly
// "cycle" (resolved through the type checker, so locals and methods
// named cycle are not flagged).
func cycleField(u *Unit, expr ast.Expr) (*ast.SelectorExpr, bool) {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "cycle" {
		return nil, false
	}
	s, ok := u.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil, false
	}
	return sel, true
}

// exprText renders a short receiver label for diagnostics.
func exprText(e ast.Expr) string {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		return id.Name
	}
	return "(...)"
}
