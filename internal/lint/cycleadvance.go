package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
)

var ruleCycleAdvance = &Rule{
	Name: "cycle-advance",
	Doc: "in internal/pipeline, the simulation clock (any struct field named cycle) may only be written " +
		"inside core.go's Step or skipTo; the event-driven cycle skipper reasons about exactly those two " +
		"advance sites, and a stage mutating the clock elsewhere would silently desynchronize from it",
	run: runCycleAdvance,
}

func runCycleAdvance(u *Unit, report reportFunc) {
	if !underInternal(u.Path, "pipeline") {
		return
	}
	for _, file := range u.Files {
		name := u.Fset.Position(file.Pos()).Filename
		if isTestFilename(name) {
			continue
		}
		isCoreFile := filepath.Base(name) == "core.go"
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if isCoreFile && (fn.Name.Name == "Step" || fn.Name.Name == "skipTo") {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch st := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range st.Lhs {
						if sel, ok := cycleField(u, lhs); ok {
							report(sel.Pos(), "clock field %s.%s written in %s.%s; cycle advances belong only in core.go's Step/skipTo",
								exprText(sel.X), sel.Sel.Name, filepath.Base(name), fn.Name.Name)
						}
					}
				case *ast.IncDecStmt:
					if sel, ok := cycleField(u, st.X); ok {
						report(sel.Pos(), "clock field %s.%s written in %s.%s; cycle advances belong only in core.go's Step/skipTo",
							exprText(sel.X), sel.Sel.Name, filepath.Base(name), fn.Name.Name)
					}
				}
				return true
			})
		}
	}
}

// cycleField reports whether expr writes a struct field named exactly
// "cycle" (resolved through the type checker, so locals and methods
// named cycle are not flagged).
func cycleField(u *Unit, expr ast.Expr) (*ast.SelectorExpr, bool) {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "cycle" {
		return nil, false
	}
	s, ok := u.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil, false
	}
	return sel, true
}

// exprText renders a short receiver label for diagnostics.
func exprText(e ast.Expr) string {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		return id.Name
	}
	return "(...)"
}
