package lint

import (
	"go/ast"
	"go/token"
)

var ruleFloatFold = &Rule{
	Name: "float-fold",
	Doc: "flag floating-point compound accumulation (+= -= *= /=) inside range-over-map bodies: " +
		"float arithmetic is not associative, so randomized map order perturbs the low bits of the " +
		"fold and breaks byte-identical artifacts — exactly the geomean nondeterminism fixed in " +
		"commit a6288a4; iterate keys in sorted order instead",
	run: runFloatFold,
}

func runFloatFold(u *Unit, report reportFunc) {
	for _, file := range u.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if _, isMap := mapRangeX(u.Info, rs); !isMap {
				return true
			}
			checkFloatFold(u, rs, report)
			return true
		})
	}
}

func checkFloatFold(u *Unit, rs *ast.RangeStmt, report reportFunc) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			// Nested map ranges are visited on their own.
			if _, isMap := mapRangeX(u.Info, n); isMap {
				return false
			}
		case *ast.AssignStmt:
			var op string
			switch n.Tok {
			case token.ADD_ASSIGN:
				op = "+="
			case token.SUB_ASSIGN:
				op = "-="
			case token.MUL_ASSIGN:
				op = "*="
			case token.QUO_ASSIGN:
				op = "/="
			default:
				return true
			}
			for _, lhs := range n.Lhs {
				if t := u.Info.TypeOf(lhs); t != nil && isFloat(t) {
					report(n.Pos(), "floating-point %s inside range over map: addition order perturbs the result (the a6288a4 geomean bug class); accumulate over sorted keys", op)
				}
			}
		}
		return true
	})
}
