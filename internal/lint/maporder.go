package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

var ruleMapOrderSink = &Rule{
	Name: "map-order-sink",
	Doc: "flag range-over-map bodies that feed order-sensitive sinks: appends to a slice that is " +
		"never sorted afterwards, writes through fmt.Fprint*/fmt.Print*/strings.Builder/bytes.Buffer, " +
		"or string concatenation — Go randomizes map iteration, so each such sink makes output differ " +
		"run to run; collect the keys, sort them, and iterate the sorted slice instead " +
		"(float accumulation, the a6288a4 geomean bug class, is reported separately by float-fold)",
	run: runMapOrderSink,
}

func runMapOrderSink(u *Unit, report reportFunc) {
	for _, file := range u.Files {
		var funcStack []ast.Node
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl, *ast.FuncLit:
				funcStack = append(funcStack, n)
				ast.Inspect(bodyOf(n), walk)
				funcStack = funcStack[:len(funcStack)-1]
				return false
			case *ast.RangeStmt:
				if _, isMap := mapRangeX(u.Info, n); isMap && len(funcStack) > 0 {
					checkMapRangeBody(u, n, funcStack[len(funcStack)-1], report)
				}
			}
			return true
		}
		ast.Inspect(file, walk)
	}
}

func bodyOf(n ast.Node) ast.Node {
	switch n := n.(type) {
	case *ast.FuncDecl:
		if n.Body != nil {
			return n.Body
		}
	case *ast.FuncLit:
		return n.Body
	}
	return &ast.BlockStmt{}
}

// checkMapRangeBody reports order-sensitive sinks inside one
// range-over-map body. enclosing is the function the range lives in;
// it is scanned for later sort calls that launder an append.
func checkMapRangeBody(u *Unit, rs *ast.RangeStmt, enclosing ast.Node, report reportFunc) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := u.Info.Uses[id].(*types.Builtin); isBuiltin && len(n.Args) > 0 {
					if target, ok := ast.Unparen(n.Args[0]).(*ast.Ident); ok {
						if obj := identObj(u.Info, target); obj != nil && sortedLater(u, enclosing, rs, obj) {
							return true // the collect-keys-then-sort idiom
						}
					}
					report(n.Pos(), "append inside range over map: iteration order is randomized, so the slice order differs run to run; collect and sort, or sort the result before use")
				}
			}
			if fn := funcObj(u.Info, n); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
				switch fn.Name() {
				case "Fprint", "Fprintf", "Fprintln", "Print", "Printf", "Println":
					report(n.Pos(), "fmt.%s inside range over map: output line order is randomized; iterate sorted keys instead", fn.Name())
				}
			}
			if recvWriteSink(u.Info, n) {
				report(n.Pos(), "buffered write inside range over map: emitted order is randomized; iterate sorted keys instead")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 {
				if t := u.Info.TypeOf(n.Lhs[0]); t != nil && isString(t) {
					report(n.Pos(), "string concatenation inside range over map: result depends on randomized iteration order; iterate sorted keys instead")
				}
			}
		case *ast.RangeStmt:
			// A nested map range gets its own visit from the walker.
			if _, isMap := mapRangeX(u.Info, n); isMap {
				return false
			}
		}
		return true
	})
}

// identObj resolves an identifier to its object (use or def).
func identObj(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// sortedLater reports whether obj (the slice being appended to inside
// the map range) is passed to a sort call somewhere in the enclosing
// function after the range: the canonical deterministic-iteration fix
//
//	for k := range m { keys = append(keys, k) }
//	sort.Strings(keys)
//
// must not be flagged.
func sortedLater(u *Unit, enclosing ast.Node, rs *ast.RangeStmt, obj types.Object) bool {
	sorted := false
	ast.Inspect(bodyOf(enclosing), func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		fn := funcObj(u.Info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if !isSortFunc(fn) || len(call.Args) == 0 {
			return true
		}
		arg := ast.Unparen(call.Args[0])
		if un, ok := arg.(*ast.UnaryExpr); ok && un.Op == token.AND {
			arg = ast.Unparen(un.X)
		}
		if id, ok := arg.(*ast.Ident); ok && identObj(u.Info, id) == obj {
			sorted = true
		}
		return !sorted
	})
	return sorted
}

// isSortFunc recognizes the stdlib sorting entry points.
func isSortFunc(fn *types.Func) bool {
	switch fn.Pkg().Path() {
	case "sort":
		switch fn.Name() {
		case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Sort", "Stable":
			return true
		}
	case "slices":
		switch fn.Name() {
		case "Sort", "SortFunc", "SortStableFunc":
			return true
		}
	}
	return false
}

// recvWriteSink reports whether call is an ordered write on a
// strings.Builder or bytes.Buffer receiver.
func recvWriteSink(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	pkg, name := named.Obj().Pkg().Path(), named.Obj().Name()
	isBuf := (pkg == "strings" && name == "Builder") || (pkg == "bytes" && name == "Buffer")
	if !isBuf {
		return false
	}
	switch fn.Name() {
	case "Write", "WriteString", "WriteByte", "WriteRune":
		return true
	}
	return false
}
