package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

var ruleUnseededRNG = &Rule{
	Name: "unseeded-rng",
	Doc: "every rng.New* constructor call must receive a seed derived from a parameter, struct field " +
		"or named constant — never a bare literal magic seed; literals hide where a replica's entropy " +
		"comes from and defeat seed-derivation audits (tests and main packages are exempt)",
	run: runUnseededRNG,
}

func runUnseededRNG(u *Unit, report reportFunc) {
	// Experiment entry points (cmd/, examples/) and tests pick their
	// own root seeds; library code must thread seeds through.
	if u.Pkg != nil && u.Pkg.Name() == "main" {
		return
	}
	if underInternal(u.Path, "rng") {
		return // the generators' own package (and its tests/benchmarks)
	}
	for _, file := range u.Files {
		if isTestPos(u, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := funcObj(u.Info, call)
			if fn == nil || fn.Pkg() == nil || !underInternal(fn.Pkg().Path(), "rng") {
				return true
			}
			if !strings.HasPrefix(fn.Name(), "New") {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Params().Len() == 0 || len(call.Args) == 0 {
				return true
			}
			// Only constructors whose first parameter is the seed.
			first, ok := sig.Params().At(0).Type().Underlying().(*types.Basic)
			if !ok || first.Kind() != types.Uint64 {
				return true
			}
			if isLiteralOnly(u.Info, call.Args[0]) {
				report(call.Args[0].Pos(),
					"rng.%s called with a literal seed; derive the seed from a parameter, field or named constant so replica seeding stays auditable",
					fn.Name())
			}
			return true
		})
	}
}

// isLiteralOnly reports whether the expression is built purely from
// literals, operators, type conversions and rng mixing helpers over
// literals — i.e. it references no named constant, variable, field or
// external function that could tie the seed to configuration.
func isLiteralOnly(info *types.Info, expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.BasicLit:
		return true
	case *ast.UnaryExpr:
		return isLiteralOnly(info, e.X)
	case *ast.BinaryExpr:
		return isLiteralOnly(info, e.X) && isLiteralOnly(info, e.Y)
	case *ast.CallExpr:
		var callee types.Object
		switch fun := ast.Unparen(e.Fun).(type) {
		case *ast.Ident:
			callee = info.Uses[fun]
		case *ast.SelectorExpr:
			callee = info.Uses[fun.Sel]
		default:
			return false
		}
		switch c := callee.(type) {
		case *types.TypeName:
			// Conversion like uint64(42): literal if the operand is.
			return len(e.Args) == 1 && isLiteralOnly(info, e.Args[0])
		case *types.Func:
			// rng.Mix2(1, 2) is still a magic literal seed; any other
			// function call may derive from configuration — allow it.
			if c.Pkg() != nil && underInternal(c.Pkg().Path(), "rng") {
				for _, a := range e.Args {
					if !isLiteralOnly(info, a) {
						return false
					}
				}
				return true
			}
			return false
		default:
			return false
		}
	default:
		return false
	}
}
