package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// skip-delta-coherent proves the cycle-skipping byte-identity
// contract: every counter the per-cycle Step path accumulates must
// also be accumulated by the bulk skipTo path, or carry an explicit
// //vet:skip-invariant <reason> explaining why skipped cycles cannot
// change it (commit-path-only, a planSkip refusal condition, or
// advanced directly by skipTo). Without this, a counter added to Step
// silently drifts the first time a span is fast-forwarded, and the
// regression only surfaces as golden-test archaeology.
//
// Scope: for every named type C declaring both Step and skipTo
// methods, the pass walks the intra-package call graph from each and
// collects "accumulation events": ++/--, +=/-=, and calls to
// pointer-receiver methods on struct-valued fields (which is how
// stats.StallBreakdown.Record mutates through the Stalls field —
// symmetric on both paths, so coherence still holds). Mutations via
// plain assignment (=) are state transitions, not accumulations, and
// are outside the contract; so are mutations inside other packages
// (the cache hierarchy keeps its own counters and is exercised
// identically by both paths).
var passSkipDeltaCoherent = &Pass{
	Name: "skip-delta-coherent",
	Doc:  "counters accumulated on Step paths must be accumulated by skipTo or //vet:skip-invariant",
	run:  runSkipDeltaCoherent,
}

func runSkipDeltaCoherent(m *Module, report reportFunc) {
	g := buildCallGraph(m)
	for _, u := range m.Units {
		if u.TestsOnly {
			continue
		}
		for _, c := range skipCores(u) {
			checkSkipCore(g, u, c, report)
		}
	}
}

// skipCore is one type with both a Step and a skipTo method.
type skipCore struct {
	typeName *types.TypeName
	step     *types.Func
	skipTo   *types.Func
}

func skipCores(u *Unit) []*skipCore {
	type pair struct{ step, skipTo *types.Func }
	byType := make(map[*types.TypeName]*pair)
	var order []*types.TypeName
	for _, f := range u.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			if fd.Name.Name != "Step" && fd.Name.Name != "skipTo" {
				continue
			}
			obj, ok := u.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			recv := obj.Type().(*types.Signature).Recv().Type()
			if p, ok := recv.(*types.Pointer); ok {
				recv = p.Elem()
			}
			named, ok := recv.(*types.Named)
			if !ok {
				continue
			}
			tn := named.Obj()
			pr := byType[tn]
			if pr == nil {
				pr = &pair{}
				byType[tn] = pr
				order = append(order, tn)
			}
			if fd.Name.Name == "Step" {
				pr.step = obj
			} else {
				pr.skipTo = obj
			}
		}
	}
	var out []*skipCore
	for _, tn := range order {
		pr := byType[tn]
		if pr.step != nil && pr.skipTo != nil {
			out = append(out, &skipCore{typeName: tn, step: pr.step, skipTo: pr.skipTo})
		}
	}
	return out
}

func checkSkipCore(g *callGraph, u *Unit, c *skipCore, report reportFunc) {
	samePkg := func(n *funcNode) bool { return n.obj.Pkg() == u.Pkg }

	stepped := collectAccumulations(g, u, c.step, samePkg)
	skipped := collectAccumulations(g, u, c.skipTo, samePkg)

	decls := fieldDecls(u)
	// Deterministic report order: by field declaration position.
	var fields []*types.Var
	for fv := range stepped {
		//lint:ignore map-order-sink sortVarsByPos below imposes declaration order before any output
		fields = append(fields, fv)
	}
	for fv := range skipped {
		if _, ok := stepped[fv]; !ok {
			//lint:ignore map-order-sink sortVarsByPos below imposes declaration order before any output
			fields = append(fields, fv)
		}
	}
	sortVarsByPos(fields)

	for _, fv := range fields {
		fd := decls[fv]
		if fd == nil {
			continue // declared outside this package; out of scope
		}
		marked := hasVetMarker("skip-invariant", fieldMarkers(fd)...)
		owner := ownerName(fv, u.Pkg)
		_, inStep := stepped[fv]
		_, inSkip := skipped[fv]
		switch {
		case inStep && !inSkip && !marked:
			report(fd.Pos(), "%s.%s is accumulated on a %s.Step path but not by %s.skipTo; add it to the skip delta or annotate //vet:skip-invariant <reason>",
				owner, fv.Name(), c.typeName.Name(), c.typeName.Name())
		case inSkip && marked:
			report(fd.Pos(), "%s.%s is marked //vet:skip-invariant but %s.skipTo accumulates it; the annotation contradicts the code",
				owner, fv.Name(), c.typeName.Name())
		}
	}
}

// collectAccumulations walks the intra-package call graph from root
// and returns every field that is the target of an accumulation event.
func collectAccumulations(g *callGraph, u *Unit, root *types.Func, filter func(*funcNode) bool) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	record := func(info *types.Info, expr ast.Expr) {
		if v, ok := fieldChain(info, expr); ok && v.Pkg() == u.Pkg {
			out[v] = true
		}
	}
	for _, n := range sortedFuncs(g.reach([]*types.Func{root}, filter)) {
		info := n.unit.Info
		ast.Inspect(n.decl.Body, func(node ast.Node) bool {
			switch s := node.(type) {
			case *ast.IncDecStmt:
				record(info, s.X)
			case *ast.AssignStmt:
				if s.Tok == token.ADD_ASSIGN || s.Tok == token.SUB_ASSIGN {
					for _, lhs := range s.Lhs {
						record(info, lhs)
					}
				}
			case *ast.CallExpr:
				// A pointer-receiver method invoked on a struct-valued
				// field mutates that field in place (Stalls.Record).
				sel, ok := ast.Unparen(s.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				ms, ok := info.Selections[sel]
				if !ok || ms.Kind() != types.MethodVal {
					return true
				}
				fn, ok := ms.Obj().(*types.Func)
				if !ok {
					return true
				}
				recv := fn.Type().(*types.Signature).Recv()
				if recv == nil {
					return true
				}
				if _, ptr := recv.Type().(*types.Pointer); !ptr {
					return true // value receiver cannot mutate
				}
				if v, ok := fieldChain(info, sel.X); ok && v.Pkg() == u.Pkg {
					if _, isStruct := v.Type().Underlying().(*types.Struct); isStruct {
						out[v] = true
					}
				}
			}
			return true
		})
	}
	return out
}

// ownerName names the struct that declares field, for messages.
func ownerName(field *types.Var, pkg *types.Package) string {
	if tn := owningStruct(field, pkg); tn != nil {
		return tn.Name()
	}
	return "(unknown)"
}

func sortVarsByPos(vars []*types.Var) {
	for i := 1; i < len(vars); i++ {
		for j := i; j > 0 && vars[j].Pos() < vars[j-1].Pos(); j-- {
			vars[j], vars[j-1] = vars[j-1], vars[j]
		}
	}
}
