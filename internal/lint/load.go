package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Module is a fully parsed and typechecked Go module, ready for the
// analyzers. The loader is deliberately stdlib-only: packages are
// discovered by walking the module tree, typechecked in dependency
// order with go/types, and standard-library imports are resolved from
// GOROOT source via go/importer's "source" compiler. This keeps the
// module at zero third-party dependencies (no x/tools).
type Module struct {
	Dir   string // absolute module root (directory containing go.mod)
	Path  string // module path from go.mod
	Fset  *token.FileSet
	Units []*Unit
}

// dirFiles is one directory's parsed source, partitioned the way the
// go tool builds it: library files, in-package test files, and
// external (package foo_test) test files.
type dirFiles struct {
	dir     string // absolute
	path    string // import path
	lib     []*ast.File
	inTest  []*ast.File
	extTest []*ast.File
	imports []string // module-internal imports of lib files
}

var moduleLineRE = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// LoadModule locates the module containing dir, parses every package
// under it and typechecks them all. Besides each package's library
// unit it also typechecks test-augmented and external-test units so
// the analyzers see test files with full type information.
func LoadModule(dir string) (*Module, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found at or above %s", abs)
		}
		root = parent
	}
	gomod, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	m := moduleLineRE.FindSubmatch(gomod)
	if m == nil {
		return nil, fmt.Errorf("lint: %s/go.mod has no module line", root)
	}
	modPath := string(m[1])

	fset := token.NewFileSet()
	dirs, err := parseTree(fset, root, modPath)
	if err != nil {
		return nil, err
	}

	order, err := topoSort(dirs)
	if err != nil {
		return nil, err
	}

	imp := &moduleImporter{
		modPath: modPath,
		pkgs:    make(map[string]*types.Package),
	}

	// Library units first, in dependency order, so every internal
	// import resolves; test units in a second pass, since test files
	// may import packages that sort later in the library topo order.
	mod := &Module{Dir: root, Path: modPath, Fset: fset}
	for _, d := range order {
		if len(d.lib) == 0 {
			continue
		}
		u, err := check(fset, imp, d.path, d.lib, false)
		if err != nil {
			return nil, err
		}
		imp.pkgs[d.path] = u.Pkg
		mod.Units = append(mod.Units, u)
	}
	for _, d := range order {
		if len(d.inTest) > 0 {
			files := append(append([]*ast.File{}, d.lib...), d.inTest...)
			tu, err := check(fset, imp, d.path, files, true)
			if err != nil {
				return nil, err
			}
			mod.Units = append(mod.Units, tu)
		}
		if len(d.extTest) > 0 {
			eu, err := check(fset, imp, d.path+"_test", d.extTest, true)
			if err != nil {
				return nil, err
			}
			mod.Units = append(mod.Units, eu)
		}
	}
	return mod, nil
}

// parseTree walks the module and parses every Go package directory,
// skipping testdata, vendor, hidden and underscore-prefixed entries.
func parseTree(fset *token.FileSet, root, modPath string) (map[string]*dirFiles, error) {
	dirs := make(map[string]*dirFiles)
	err := filepath.WalkDir(root, func(p string, e os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := e.Name()
		if e.IsDir() {
			if p == root {
				return nil
			}
			if name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			return nil
		}
		f, err := parser.ParseFile(fset, p, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("lint: parse %s: %w", p, err)
		}
		dir := filepath.Dir(p)
		df := dirs[dir]
		if df == nil {
			rel, err := filepath.Rel(root, dir)
			if err != nil {
				return err
			}
			path := modPath
			if rel != "." {
				path = modPath + "/" + filepath.ToSlash(rel)
			}
			df = &dirFiles{dir: dir, path: path}
			dirs[dir] = df
		}
		switch {
		case !strings.HasSuffix(name, "_test.go"):
			df.lib = append(df.lib, f)
			for _, spec := range f.Imports {
				ip, err := strconv.Unquote(spec.Path.Value)
				if err != nil {
					continue
				}
				if ip == modPath || strings.HasPrefix(ip, modPath+"/") {
					df.imports = append(df.imports, ip)
				}
			}
		case strings.HasSuffix(f.Name.Name, "_test"):
			df.extTest = append(df.extTest, f)
		default:
			df.inTest = append(df.inTest, f)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// WalkDir visits entries lexically, so per-dir file lists are
	// already deterministic.
	return dirs, nil
}

// topoSort orders directories so every module-internal import is
// typechecked before its importers. Ties break on import path, so the
// load order — and with it all downstream output — is deterministic.
func topoSort(dirs map[string]*dirFiles) ([]*dirFiles, error) {
	byPath := make(map[string]*dirFiles, len(dirs))
	paths := make([]string, 0, len(dirs))
	for _, df := range dirs {
		byPath[df.path] = df
		paths = append(paths, df.path)
	}
	sort.Strings(paths)

	indeg := make(map[string]int, len(paths))
	rdeps := make(map[string][]string, len(paths))
	for _, p := range paths {
		indeg[p] += 0
		for _, dep := range byPath[p].imports {
			if _, ok := byPath[dep]; !ok {
				continue
			}
			indeg[p]++
			rdeps[dep] = append(rdeps[dep], p)
		}
	}
	var queue []string
	for _, p := range paths {
		if indeg[p] == 0 {
			queue = append(queue, p)
		}
	}
	var order []*dirFiles
	for len(queue) > 0 {
		sort.Strings(queue)
		p := queue[0]
		queue = queue[1:]
		order = append(order, byPath[p])
		for _, r := range rdeps[p] {
			indeg[r]--
			if indeg[r] == 0 {
				queue = append(queue, r)
			}
		}
	}
	if len(order) != len(paths) {
		var stuck []string
		for _, p := range paths {
			if indeg[p] > 0 {
				stuck = append(stuck, p)
			}
		}
		return nil, fmt.Errorf("lint: import cycle among %s", strings.Join(stuck, ", "))
	}
	return order, nil
}

// moduleImporter resolves module-internal imports from the packages
// already typechecked this load, and everything else (the standard
// library) from the process-wide GOROOT source importer.
type moduleImporter struct {
	modPath string
	pkgs    map[string]*types.Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.pkgs[path]; ok {
		return p, nil
	}
	if path == m.modPath || strings.HasPrefix(path, m.modPath+"/") {
		return nil, fmt.Errorf("lint: internal package %s not loaded (import cycle?)", path)
	}
	return importStdlib(path)
}

// The GOROOT source importer memoizes each typechecked stdlib package
// per instance; sharing one instance process-wide means the standard
// library is typechecked once per process instead of once per
// LoadModule call (the fixture-heavy test suite loads dozens of small
// modules, each of which would otherwise re-typecheck fmt, sort, ...
// from source). The importer keeps a private FileSet: stdlib positions
// are never reported by the analyzers, so they never need to resolve
// against a module's FileSet.
var (
	stdImpMu sync.Mutex
	stdImp   types.Importer
)

func importStdlib(path string) (*types.Package, error) {
	stdImpMu.Lock()
	defer stdImpMu.Unlock()
	if stdImp == nil {
		stdImp = importer.ForCompiler(token.NewFileSet(), "source", nil)
	}
	return stdImp.Import(path)
}

// check typechecks one unit and fills the types.Info the rules need.
func check(fset *token.FileSet, imp types.Importer, path string, files []*ast.File, testsOnly bool) (*Unit, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var errs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { errs = append(errs, err) },
	}
	pkg, _ := conf.Check(path, fset, files, info)
	if len(errs) > 0 {
		max := len(errs)
		if max > 5 {
			max = 5
		}
		msgs := make([]string, 0, max)
		for _, e := range errs[:max] {
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("lint: typecheck %s: %s", path, strings.Join(msgs, "; "))
	}
	return &Unit{Fset: fset, Path: path, Files: files, Pkg: pkg, Info: info, TestsOnly: testsOnly}, nil
}
