package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// Each directory under testdata/src is one fixture package: its .go
// files are typechecked together and all rules run over the result.
// Expectations ride on the offending lines as comments:
//
//	total += v // want "floating-point"
//
// Every want must be matched by exactly one diagnostic on its line
// (substring match against "[rule] message") and every diagnostic must
// be claimed by a want. For diagnostics whose position is itself a
// comment (bad-ignore), the want can point at a neighbouring line with
// an offset: `// want@-1 "missing a reason"`.
//
// A fixture can pin its import path — which several rules key off —
// with a `//lintpath <path>` comment; the default is fix/<dirname>.
func TestFixtures(t *testing.T) {
	entries, err := os.ReadDir(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatalf("reading testdata/src: %v", err)
	}
	fset := token.NewFileSet()
	imp := newFixtureImporter(t, fset)
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := e.Name()
		t.Run(dir, func(t *testing.T) {
			runFixture(t, fset, imp, filepath.Join("testdata", "src", dir), dir)
		})
	}
}

func runFixture(t *testing.T, fset *token.FileSet, imp types.Importer, dir, name string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("fixture %s has no Go files", dir)
	}

	pkgPath := "fix/" + name
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if rest, ok := strings.CutPrefix(c.Text, "//lintpath "); ok {
					pkgPath = strings.TrimSpace(rest)
				}
			}
		}
	}

	u, err := check(fset, imp, pkgPath, files, false)
	if err != nil {
		t.Fatalf("typecheck fixture: %v", err)
	}
	diags := Run([]*Unit{u}, Rules())

	matchWants(t, collectWants(t, fset, files), diags)
}

// matchWants pairs every want with exactly one diagnostic on its line
// (substring match against "[rule] message") and reports both unmatched
// wants and unclaimed diagnostics. Shared by the rule fixtures
// (TestFixtures) and the vet-pass fixtures (TestVetFixtures).
func matchWants(t *testing.T, wants []want, diags []Diagnostic) {
	t.Helper()
	type lineKey struct {
		file string
		line int
	}
	unclaimed := make(map[lineKey][]Diagnostic)
	for _, d := range diags {
		k := lineKey{d.File, d.Line}
		unclaimed[k] = append(unclaimed[k], d)
	}
	for _, w := range wants {
		k := lineKey{w.file, w.line}
		found := -1
		for i, d := range unclaimed[k] {
			if strings.Contains("["+d.Rule+"] "+d.Message, w.substr) {
				found = i
				break
			}
		}
		if found < 0 {
			t.Errorf("%s:%d: want %q: no matching diagnostic (have %v)",
				w.file, w.line, w.substr, unclaimed[k])
			continue
		}
		unclaimed[k] = append(unclaimed[k][:found], unclaimed[k][found+1:]...)
	}
	var leftover []Diagnostic
	for _, ds := range unclaimed {
		leftover = append(leftover, ds...)
	}
	sort.Slice(leftover, func(i, j int) bool {
		a, b := leftover[i], leftover[j]
		if a.File != b.File {
			return a.File < b.File
		}
		return a.Line < b.Line
	})
	for _, d := range leftover {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}

type want struct {
	file   string
	line   int
	substr string
}

var (
	wantRE   = regexp.MustCompile(`//\s*want(@(-?\d+))?\s+(.*)`)
	quotedRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)
)

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []want {
	var wants []want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				line := pos.Line
				if m[2] != "" {
					delta, err := strconv.Atoi(m[2])
					if err != nil {
						t.Fatalf("%s: bad want offset: %v", pos, err)
					}
					line += delta
				}
				quoted := quotedRE.FindAllString(m[3], -1)
				if len(quoted) == 0 {
					t.Fatalf("%s: want comment without quoted expectation", pos)
				}
				for _, q := range quoted {
					s, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want string %s: %v", pos, q, err)
					}
					wants = append(wants, want{pos.Filename, line, s})
				}
			}
		}
	}
	return wants
}

// fixtureImporter resolves the standard library from GOROOT source and
// emissary/internal/rng from the real package, so unseeded-rng
// fixtures exercise the genuine constructors.
type fixtureImporter struct {
	std types.Importer
	rng *types.Package
}

func newFixtureImporter(t *testing.T, fset *token.FileSet) *fixtureImporter {
	std := importer.ForCompiler(fset, "source", nil)
	rngDir := filepath.Join("..", "rng")
	entries, err := os.ReadDir(rngDir)
	if err != nil {
		t.Fatalf("reading %s: %v", rngDir, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(rngDir, e.Name()), nil, parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parse rng: %v", err)
		}
		files = append(files, f)
	}
	conf := types.Config{Importer: std}
	pkg, err := conf.Check("emissary/internal/rng", fset, files, nil)
	if err != nil {
		t.Fatalf("typecheck rng: %v", err)
	}
	return &fixtureImporter{std: std, rng: pkg}
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if path == "emissary/internal/rng" {
		return fi.rng, nil
	}
	return fi.std.Import(path)
}

// TestLoadModule loads the fixture module under testdata/mod end to
// end — go.mod discovery, topo-sorted typechecking, test units — and
// checks the one planted violation is found at the right position.
func TestLoadModule(t *testing.T) {
	mod, err := LoadModule(filepath.Join("testdata", "mod", "internal", "pipeline"))
	if err != nil {
		t.Fatal(err)
	}
	if mod.Path != "fixmod" {
		t.Errorf("module path = %q, want fixmod", mod.Path)
	}
	diags := Run(mod.Units, Rules())
	var got []string
	for _, d := range diags {
		got = append(got, fmt.Sprintf("%s:%d [%s]", filepath.Base(d.File), d.Line, d.Rule))
	}
	want := []string{"p.go:11 [nondeterm-source]"}
	if strings.Join(got, ", ") != strings.Join(want, ", ") {
		t.Errorf("diagnostics = %v, want %v", got, want)
	}
}

// TestSelect covers rule-subset resolution.
func TestSelect(t *testing.T) {
	all, err := Select("")
	if err != nil || len(all) != len(Rules()) {
		t.Fatalf("Select(\"\") = %d rules, err %v", len(all), err)
	}
	two, err := Select("float-fold, map-order-sink")
	if err != nil || len(two) != 2 {
		t.Fatalf("Select subset: %d rules, err %v", len(two), err)
	}
	if _, err := Select("no-such-rule"); err == nil {
		t.Fatal("Select(no-such-rule) did not error")
	}
}
