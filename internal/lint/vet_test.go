package lint

import (
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Each directory under testdata/vet is one self-contained fixture
// module (its own go.mod), loaded with the production LoadModule path
// and run through the full pass suite. Expectations use the same
// `// want "substr"` comments as the rule fixtures.
func TestVetFixtures(t *testing.T) {
	root := filepath.Join("testdata", "vet")
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatalf("reading %s: %v", root, err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(root, e.Name())
		t.Run(e.Name(), func(t *testing.T) {
			mod, err := LoadModule(dir)
			if err != nil {
				t.Fatalf("LoadModule(%s): %v", dir, err)
			}
			diags := RunPasses(mod, Passes())
			var files []*ast.File
			for _, u := range mod.Units {
				if u.TestsOnly {
					continue
				}
				files = append(files, u.Files...)
			}
			matchWants(t, collectWants(t, mod.Fset, files), diags)
		})
	}
}

// TestSelectPasses covers pass-subset resolution, mirroring TestSelect
// for rules: empty spec selects everything, unknown names error with
// the valid list (so a CI typo cannot silently disable a gate).
func TestSelectPasses(t *testing.T) {
	all, err := SelectPasses("")
	if err != nil || len(all) != len(Passes()) {
		t.Fatalf("SelectPasses(\"\") = %d passes, err %v", len(all), err)
	}
	one, err := SelectPasses("hot-noalloc")
	if err != nil || len(one) != 1 || one[0].Name != "hot-noalloc" {
		t.Fatalf("SelectPasses(hot-noalloc) = %v, err %v", one, err)
	}
	_, err = SelectPasses("no-such-pass")
	if err == nil {
		t.Fatal("SelectPasses(no-such-pass) did not error")
	}
	if !strings.Contains(err.Error(), "available:") {
		t.Errorf("unknown-pass error %q does not list the valid passes", err)
	}
	if _, err := SelectPasses(", ,"); err == nil {
		t.Fatal("SelectPasses of only separators did not error")
	}
}

// mutateFixture copies a clean fixture module into a temp dir with one
// string substitution applied to the named file, loads it, and returns
// the pass-suite diagnostics. The substitution must occur exactly once
// — a mutation that no longer matches the fixture text is a test bug,
// not a pass escape.
func mutateFixture(t *testing.T, fixture, file, old, new string) []Diagnostic {
	t.Helper()
	src := filepath.Join("testdata", "vet", fixture)
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if e.Name() == file && old != "" {
			if n := strings.Count(string(data), old); n != 1 {
				t.Fatalf("%s/%s: mutation target %q occurs %d times, want 1", fixture, file, old, n)
			}
			data = []byte(strings.Replace(string(data), old, new, 1))
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	mod, err := LoadModule(dst)
	if err != nil {
		t.Fatalf("LoadModule(mutated %s): %v", fixture, err)
	}
	return RunPasses(mod, Passes())
}

// TestMutationFingerprint proves fingerprint-complete actually detects
// a dropped field: commenting out one field(...) line of the clean
// fixture's Fingerprint must produce exactly one finding naming that
// field.
func TestMutationFingerprint(t *testing.T) {
	if diags := mutateFixture(t, "fpclean", "fp.go", "", ""); len(diags) != 0 {
		t.Fatalf("unmutated fpclean is not clean: %v", diags)
	}
	diags := mutateFixture(t, "fpclean", "fp.go",
		`field("b", o.B)`, `// field("b", o.B) — dropped from the fingerprint`)
	if len(diags) != 1 {
		t.Fatalf("mutated fpclean: got %d diagnostics %v, want exactly 1", len(diags), diags)
	}
	d := diags[0]
	if d.Rule != "fingerprint-complete" || !strings.Contains(d.Message, "Options.B") {
		t.Errorf("mutated fpclean: got [%s] %s, want fingerprint-complete naming Options.B", d.Rule, d.Message)
	}
}

// TestMutationSkipDelta proves skip-delta-coherent detects a counter
// added to Step without a matching skipTo term: planting c.Spare++ in
// the clean fixture's Step must produce exactly one finding naming
// Spare.
func TestMutationSkipDelta(t *testing.T) {
	if diags := mutateFixture(t, "skipclean", "core.go", "", ""); len(diags) != 0 {
		t.Fatalf("unmutated skipclean is not clean: %v", diags)
	}
	diags := mutateFixture(t, "skipclean", "core.go",
		"c.Good++", "c.Good++\n\tc.Spare++")
	if len(diags) != 1 {
		t.Fatalf("mutated skipclean: got %d diagnostics %v, want exactly 1", len(diags), diags)
	}
	d := diags[0]
	if d.Rule != "skip-delta-coherent" || !strings.Contains(d.Message, "Core.Spare") {
		t.Errorf("mutated skipclean: got [%s] %s, want skip-delta-coherent naming Core.Spare", d.Rule, d.Message)
	}
}
