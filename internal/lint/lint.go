// Package lint implements the emissary-lint static analyzer suite: a
// set of determinism and simulator-invariant checks built purely on the
// standard library's go/ast, go/parser, go/token and go/types packages.
//
// The simulator's headline guarantee — byte-identical results at any
// worker count — rests on invariants that used to be enforced only by
// convention: every stochastic decision draws from an explicitly seeded
// internal/rng generator, no wall-clock or environment state leaks into
// simulation, concurrency lives only in internal/runner, and map
// iteration never feeds ordered output unsorted (the geomean bug fixed
// in commit a6288a4). This package turns those conventions into
// machine-checked rules; cmd/emissary-lint runs them over the module
// and CI fails on any diagnostic.
//
// Diagnostics can be suppressed with a directive comment on the same
// line or the line immediately above:
//
//	//lint:ignore rule[,rule...] reason
//
// The reason is mandatory; a directive without one (or naming an
// unknown rule) is itself reported under the always-on bad-ignore rule.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Diagnostic is a single finding at a source position.
type Diagnostic struct {
	Pos     token.Position `json:"-"`
	File    string         `json:"file"`
	Line    int            `json:"line"`
	Col     int            `json:"col"`
	Rule    string         `json:"rule"`
	Message string         `json:"message"`
}

// String renders the canonical file:line:col: [rule] message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Rule, d.Message)
}

// Unit is one typechecked compilation unit: a package's library files,
// or its files augmented with in-package tests, or an external test
// package. Rules run over units; the loader in load.go produces them.
type Unit struct {
	Fset  *token.FileSet
	Path  string // import path
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	// TestsOnly marks units whose non-test files are duplicates of
	// another unit (the test-augmented build of a package): rules run
	// over the whole unit for correct type information, but only
	// diagnostics located in _test.go files are reported.
	TestsOnly bool
}

// Rule is a single named analyzer.
type Rule struct {
	Name string
	Doc  string
	run  func(u *Unit, report reportFunc)
}

type reportFunc func(pos token.Pos, format string, args ...any)

// Rules returns the full analyzer suite in stable order. bad-ignore is
// not listed: it guards the suppression mechanism itself and is always
// on (a disabled hygiene check would let suppressions rot silently).
func Rules() []*Rule {
	return []*Rule{
		ruleNondetermSource,
		ruleRawGoroutine,
		ruleUnseededRNG,
		ruleMapOrderSink,
		ruleFloatFold,
		ruleBarePanic,
		ruleCycleAdvance,
		ruleRawFileWrite,
		ruleDocCommentName,
	}
}

// RuleNames returns the names of all selectable rules, in order.
func RuleNames() []string {
	rules := Rules()
	names := make([]string, len(rules))
	for i, r := range rules {
		names[i] = r.Name
	}
	return names
}

// Select resolves a comma-separated rule list to rules. An empty spec
// selects the whole suite.
func Select(spec string) ([]*Rule, error) {
	if spec == "" {
		return Rules(), nil
	}
	byName := make(map[string]*Rule)
	for _, r := range Rules() {
		byName[r.Name] = r
	}
	var out []*Rule
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		r, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown rule %q (available: %s)", name, strings.Join(RuleNames(), ", "))
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty rule selection")
	}
	return out, nil
}

// Run executes the given rules over the units, applies //lint:ignore
// suppressions, and returns the surviving diagnostics sorted by
// position. Malformed directives are reported under bad-ignore.
func Run(units []*Unit, rules []*Rule) []Diagnostic {
	// Rules and vet passes share one suppression namespace, so a
	// //lint:ignore hot-noalloc directive is legal to both CLIs.
	known := knownSuppressionNames()

	var diags []Diagnostic
	for _, u := range units {
		var unitDiags []Diagnostic
		for _, r := range rules {
			rule := r
			r.run(u, func(pos token.Pos, format string, args ...any) {
				p := u.Fset.Position(pos)
				unitDiags = append(unitDiags, Diagnostic{
					Pos:     p,
					File:    p.Filename,
					Line:    p.Line,
					Col:     p.Column,
					Rule:    rule.Name,
					Message: fmt.Sprintf(format, args...),
				})
			})
		}

		ignores, bad := scanIgnores(u, known)
		unitDiags = append(unitDiags, bad...)
		unitDiags = applyIgnores(unitDiags, ignores)

		if u.TestsOnly {
			kept := unitDiags[:0]
			for _, d := range unitDiags {
				if isTestFilename(d.File) {
					kept = append(kept, d)
				}
			}
			unitDiags = kept
		}
		diags = append(diags, unitDiags...)
	}

	// A package's library files are typechecked both alone and inside
	// the test-augmented unit; sortDiagnostics dedupes in case both
	// were analyzed.
	return sortDiagnostics(diags)
}

// --- shared helpers used by the rules ---

func isTestFilename(name string) bool {
	return strings.HasSuffix(name, "_test.go")
}

// isTestPos reports whether pos lies in a _test.go file.
func isTestPos(u *Unit, pos token.Pos) bool {
	return isTestFilename(u.Fset.Position(pos).Filename)
}

// underInternal reports whether the import path contains the package
// segment internal/<name> (matching any enclosing module path, so the
// rules work on the emissary module and on fixture/temp modules alike).
func underInternal(path, name string) bool {
	seg := "internal/" + name
	return path == seg ||
		strings.HasSuffix(path, "/"+seg) ||
		strings.Contains(path, "/"+seg+"/") ||
		strings.HasPrefix(path, seg+"/")
}

// funcObj resolves the called function for a call expression, or nil.
func funcObj(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// stdlibFunc reports whether call invokes pkgPath.name from the
// standard library (resolved through the type checker, so renamed
// imports are handled).
func stdlibFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := funcObj(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// isFloat reports whether t is a floating-point type.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isString reports whether t is a string type.
func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// mapRangeX returns the ranged-over expression if rs iterates a map.
func mapRangeX(info *types.Info, rs *ast.RangeStmt) (ast.Expr, bool) {
	if rs.X == nil {
		return nil, false
	}
	t := info.TypeOf(rs.X)
	if t == nil {
		return nil, false
	}
	_, ok := t.Underlying().(*types.Map)
	return rs.X, ok
}
