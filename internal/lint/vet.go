package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// This file is the whole-program layer of the analyzer suite: vet
// passes. Where the rules in rules.go inspect one unit at a time, a
// Pass sees the entire typechecked Module and proves a cross-component
// contract (fingerprint completeness, skip-delta coherence, zero-alloc
// hot paths). cmd/emissary-vet runs the passes; cmd/emissary-lint runs
// the rules.
//
// Passes consume semantic annotations with the //vet: prefix (see
// callgraph.go for the grammar) and honor the same //lint:ignore
// site-level suppressions as the rules. Marker hygiene — an unknown
// //vet: marker name, or a marker missing its mandatory reason — is
// reported under bad-vet-marker, which, like bad-ignore, is always on
// and cannot be suppressed.

// Pass is a whole-program analyzer over a typechecked module.
type Pass struct {
	Name string
	Doc  string
	run  func(m *Module, report reportFunc)
}

// Passes returns the full pass suite in stable order.
func Passes() []*Pass {
	return []*Pass{
		passFingerprintComplete,
		passSkipDeltaCoherent,
		passHotNoalloc,
	}
}

// PassNames returns the names of all selectable passes, in order.
func PassNames() []string {
	passes := Passes()
	names := make([]string, len(passes))
	for i, p := range passes {
		names[i] = p.Name
	}
	return names
}

// SelectPasses resolves a comma-separated pass list. An empty spec
// selects the whole suite; an unknown name is an error listing the
// valid passes, so a CI misconfiguration cannot silently disable a
// gate.
func SelectPasses(spec string) ([]*Pass, error) {
	if spec == "" {
		return Passes(), nil
	}
	byName := make(map[string]*Pass)
	for _, p := range Passes() {
		byName[p.Name] = p
	}
	var out []*Pass
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		p, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown pass %q (available: %s)", name, strings.Join(PassNames(), ", "))
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty pass selection")
	}
	return out, nil
}

// RunPasses executes the passes over the module, applies //lint:ignore
// suppressions (passes share the rules' suppression namespace), checks
// //vet: marker hygiene, and returns surviving diagnostics sorted by
// position.
func RunPasses(m *Module, passes []*Pass) []Diagnostic {
	var suppressible, hygiene []Diagnostic
	for _, p := range passes {
		pass := p
		p.run(m, func(pos token.Pos, format string, args ...any) {
			pp := m.Fset.Position(pos)
			suppressible = append(suppressible, Diagnostic{
				Pos:     pp,
				File:    pp.Filename,
				Line:    pp.Line,
				Col:     pp.Column,
				Rule:    pass.Name,
				Message: fmt.Sprintf(format, args...),
			})
		})
	}

	// Marker hygiene and suppression directives live in library files;
	// passes never analyze test units, so neither do their scans.
	known := knownSuppressionNames()
	for _, u := range m.Units {
		if u.TestsOnly {
			continue
		}
		hygiene = append(hygiene, scanVetMarkers(u)...)
		ignores, _ := scanIgnores(u, known) // bad-ignore is the lint CLI's job
		suppressible = applyIgnores(suppressible, ignores)
	}

	return sortDiagnostics(append(suppressible, hygiene...))
}

// knownSuppressionNames is the shared //lint:ignore namespace: rule
// names plus pass names, so a hot-noalloc suppression in the tree is
// legal to both CLIs.
func knownSuppressionNames() map[string]bool {
	known := make(map[string]bool)
	for _, r := range Rules() {
		known[r.Name] = true
	}
	for _, p := range Passes() {
		known[p.Name] = true
	}
	return known
}

// scanVetMarkers validates every //vet: comment in the unit.
func scanVetMarkers(u *Unit) []Diagnostic {
	var out []Diagnostic
	report := func(pos token.Pos, msg string) {
		p := u.Fset.Position(pos)
		out = append(out, Diagnostic{
			Pos:     p,
			File:    p.Filename,
			Line:    p.Line,
			Col:     p.Column,
			Rule:    "bad-vet-marker",
			Message: msg,
		})
	}
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, reason, ok := parseVetMarker(c.Text)
				if !ok {
					continue
				}
				needsReason, known := vetMarkers[name]
				if !known {
					names := make([]string, 0, len(vetMarkers))
					for n := range vetMarkers {
						names = append(names, n)
					}
					sort.Strings(names)
					report(c.Pos(), fmt.Sprintf("unknown //vet: marker %q (known: %s)", name, strings.Join(names, ", ")))
					continue
				}
				if needsReason && reason == "" {
					report(c.Pos(), fmt.Sprintf("//vet:%s requires a reason; annotations must say why", name))
				}
			}
		}
	}
	return out
}

// sortDiagnostics orders diagnostics by position and drops exact
// duplicates (shared with Run via lint.go).
func sortDiagnostics(diags []Diagnostic) []Diagnostic {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	out := diags[:0]
	for i, d := range diags {
		if i > 0 && d == diags[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out
}
