package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
)

var ruleBarePanic = &Rule{
	Name: "bare-panic",
	Doc: "forbid direct panic(...) calls in internal/pipeline, internal/sim and internal/cache outside " +
		"each package's sanctioned invariant.go (and _test.go files); recoverable conditions must be " +
		"typed errors so the runner's failure policies can isolate them, and true invariant violations " +
		"funnel through the package's violated helper",
	run: runBarePanic,
}

func runBarePanic(u *Unit, report reportFunc) {
	if !underInternal(u.Path, "pipeline") && !underInternal(u.Path, "sim") && !underInternal(u.Path, "cache") {
		return
	}
	for _, file := range u.Files {
		name := u.Fset.Position(file.Pos()).Filename
		if isTestFilename(name) || filepath.Base(name) == "invariant.go" {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if b, isBuiltin := u.Info.Uses[id].(*types.Builtin); isBuiltin && b.Name() == "panic" {
				report(call.Pos(), "bare panic in %s; return a typed error for recoverable conditions or panic via the package's invariant.go violated helper", filepath.Base(name))
			}
			return true
		})
	}
}
