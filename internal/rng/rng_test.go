package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64Deterministic(t *testing.T) {
	a := NewSplitMix64(42)
	b := NewSplitMix64(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sequence diverged at step %d", i)
		}
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values for seed 1234567 from the splitmix64 reference
	// implementation (Vigna).
	s := NewSplitMix64(1234567)
	want := []uint64{
		0x599ed017fb08fc85, 0x2c73f08458540fa5, 0x883ebce5a3f27c77,
	}
	for i, w := range want {
		if got := s.Uint64(); got != w {
			t.Errorf("value %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestXoshiroDeterministic(t *testing.T) {
	a := NewXoshiro256(7)
	b := NewXoshiro256(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sequence diverged at step %d", i)
		}
	}
}

func TestXoshiroSeedsDiffer(t *testing.T) {
	a := NewXoshiro256(1)
	b := NewXoshiro256(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("seeds 1 and 2 produced %d/100 identical values", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := NewXoshiro256(99)
	if err := quick.Check(func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewXoshiro256(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewXoshiro256(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewXoshiro256(5)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean of Float64 = %v, want ~0.5", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewXoshiro256(11)
	hits := 0
	const n = 320000
	for i := 0; i < n; i++ {
		if r.Bool(1.0 / 32.0) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-1.0/32.0) > 0.003 {
		t.Errorf("Bool(1/32) rate = %v, want ~%v", got, 1.0/32.0)
	}
}

func TestGeometricMean(t *testing.T) {
	r := NewXoshiro256(13)
	sum := 0
	const n = 50000
	for i := 0; i < n; i++ {
		sum += r.Geometric(8)
	}
	mean := float64(sum) / n
	if mean < 6.5 || mean > 9.5 {
		t.Errorf("Geometric(8) mean = %v, want ~8", mean)
	}
}

func TestGeometricNonPositive(t *testing.T) {
	r := NewXoshiro256(13)
	if g := r.Geometric(0); g != 0 {
		t.Errorf("Geometric(0) = %d, want 0", g)
	}
	if g := r.Geometric(-4); g != 0 {
		t.Errorf("Geometric(-4) = %d, want 0", g)
	}
}

func TestChooserDistribution(t *testing.T) {
	r := NewXoshiro256(17)
	c := NewChooser([]float64{1, 3, 6})
	counts := make([]int, 3)
	const n = 60000
	for i := 0; i < n; i++ {
		counts[c.Choose(r)]++
	}
	wants := []float64{0.1, 0.3, 0.6}
	for i, w := range wants {
		got := float64(counts[i]) / n
		if math.Abs(got-w) > 0.02 {
			t.Errorf("index %d frequency = %v, want ~%v", i, got, w)
		}
	}
}

func TestChooserZeroWeights(t *testing.T) {
	r := NewXoshiro256(17)
	c := NewChooser([]float64{0, 0, 0})
	for i := 0; i < 10; i++ {
		if idx := c.Choose(r); idx != 0 {
			t.Fatalf("zero-weight Chooser returned %d, want 0", idx)
		}
	}
}

func TestChooserNegativeWeightTreatedAsZero(t *testing.T) {
	r := NewXoshiro256(23)
	c := NewChooser([]float64{-5, 1})
	for i := 0; i < 1000; i++ {
		if idx := c.Choose(r); idx != 1 {
			t.Fatalf("Chooser with weights [-5,1] returned %d, want 1", idx)
		}
	}
}

func TestChooserEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Choose on empty Chooser did not panic")
		}
	}()
	NewChooser(nil).Choose(NewXoshiro256(1))
}

func TestMix2Decorrelates(t *testing.T) {
	seen := map[uint64]bool{}
	for a := uint64(0); a < 32; a++ {
		for b := uint64(0); b < 32; b++ {
			v := Mix2(a, b)
			if seen[v] {
				t.Fatalf("Mix2 collision at (%d,%d)", a, b)
			}
			seen[v] = true
		}
	}
}

func TestXoshiroUint32(t *testing.T) {
	a := NewXoshiro256(3)
	b := NewXoshiro256(3)
	if got, want := a.Uint32(), uint32(b.Uint64()>>32); got != want {
		t.Errorf("Uint32 = %#x, want high bits %#x", got, want)
	}
}

func TestInt63nRange(t *testing.T) {
	r := NewXoshiro256(29)
	for i := 0; i < 10000; i++ {
		v := r.Int63n(1 << 40)
		if v < 0 || v >= 1<<40 {
			t.Fatalf("Int63n out of range: %d", v)
		}
	}
}

func BenchmarkXoshiroUint64(b *testing.B) {
	r := NewXoshiro256(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}
