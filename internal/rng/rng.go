// Package rng provides small, fast, deterministic pseudo-random number
// generators used throughout the simulator.
//
// The simulator must be bit-for-bit reproducible across runs and
// platforms: every stochastic decision (workload generation, the R(r)
// random mode-selection signal, BRRIP's 1/32 insertion choice, …) draws
// from an explicitly seeded generator owned by the component making the
// decision. Nothing in this module uses math/rand's global state.
package rng

// SplitMix64 is the splitmix64 generator of Steele, Lea and Flood.
// It is tiny, passes BigCrush, and is the canonical way to seed other
// generators. The zero value is a valid generator seeded with 0.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a generator seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Uint64 returns the next value in the sequence.
func (s *SplitMix64) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Xoshiro256 implements xoshiro256** by Blackman and Vigna. It is the
// workhorse generator for workload synthesis: fast, 256 bits of state,
// and an equidistribution guarantee far beyond what the simulator needs.
type Xoshiro256 struct {
	s [4]uint64
}

// NewXoshiro256 returns a generator whose state is derived from seed via
// splitmix64, as recommended by the xoshiro authors.
func NewXoshiro256(seed uint64) *Xoshiro256 {
	sm := NewSplitMix64(seed)
	var x Xoshiro256
	for i := range x.s {
		x.s[i] = sm.Uint64()
	}
	// A theoretical all-zero state would be absorbing; splitmix64 cannot
	// produce four consecutive zeros, but guard anyway for safety.
	if x.s[0]|x.s[1]|x.s[2]|x.s[3] == 0 {
		x.s[0] = 0x9e3779b97f4a7c15
	}
	return &x
}

// Seed re-derives the generator's state in place, exactly as
// NewXoshiro256 would for the same seed. It lets long-lived components
// (warm-pooled simulation state) restore their post-construction RNG
// sequence without allocating a new generator.
func (x *Xoshiro256) Seed(seed uint64) {
	sm := SplitMix64{state: seed}
	for i := range x.s {
		x.s[i] = sm.Uint64()
	}
	if x.s[0]|x.s[1]|x.s[2]|x.s[3] == 0 {
		x.s[0] = 0x9e3779b97f4a7c15
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value in the sequence.
func (x *Xoshiro256) Uint64() uint64 {
	result := rotl(x.s[1]*5, 7) * 9
	t := x.s[1] << 17
	x.s[2] ^= x.s[0]
	x.s[3] ^= x.s[1]
	x.s[1] ^= x.s[2]
	x.s[0] ^= x.s[3]
	x.s[2] ^= t
	x.s[3] = rotl(x.s[3], 45)
	return result
}

// Uint32 returns the high 32 bits of the next value.
func (x *Xoshiro256) Uint32() uint32 { return uint32(x.Uint64() >> 32) }

// Intn returns a value uniformly distributed in [0, n). It panics if
// n <= 0. Uses Lemire's multiply-shift reduction (slightly biased for
// enormous n, immaterial at simulator scales).
func (x *Xoshiro256) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int((x.Uint64() >> 11) % uint64(n))
}

// Int63n returns a value uniformly distributed in [0, n) as int64.
func (x *Xoshiro256) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n with non-positive n")
	}
	return int64((x.Uint64() >> 1) % uint64(n))
}

// Float64 returns a value uniformly distributed in [0, 1).
func (x *Xoshiro256) Float64() float64 {
	return float64(x.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (x *Xoshiro256) Bool(p float64) bool {
	return x.Float64() < p
}

// Geometric returns a sample from a geometric distribution with mean m
// (number of Bernoulli failures before the first success with
// p = 1/(m+1)), clamped to [0, 64*m+64] to bound pathological tails.
func (x *Xoshiro256) Geometric(m float64) int {
	if m <= 0 {
		return 0
	}
	p := 1.0 / (m + 1.0)
	n := 0
	limit := int(64*m) + 64
	for !x.Bool(p) && n < limit {
		n++
	}
	return n
}

// Chooser selects an index with probability proportional to the weights
// supplied at construction. It precomputes the cumulative distribution;
// Choose is O(log n).
type Chooser struct {
	cum []float64
}

// NewChooser builds a Chooser over weights. Negative weights are
// treated as zero. If all weights are zero the Chooser always returns 0.
func NewChooser(weights []float64) *Chooser {
	cum := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		if w > 0 {
			total += w
		}
		cum[i] = total
	}
	return &Chooser{cum: cum}
}

// Choose returns an index in [0, len(weights)).
func (c *Chooser) Choose(r *Xoshiro256) int {
	if len(c.cum) == 0 {
		panic("rng: Choose on empty Chooser")
	}
	total := c.cum[len(c.cum)-1]
	if total <= 0 {
		return 0
	}
	target := r.Float64() * total
	lo, hi := 0, len(c.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if c.cum[mid] <= target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Mix2 hashes two 64-bit values into one; used to derive per-component
// seeds from a master seed and a component tag without correlation.
func Mix2(a, b uint64) uint64 {
	sm := SplitMix64{state: a ^ rotl(b, 32)}
	sm.Uint64()
	return sm.Uint64()
}
