package hypothesis

import (
	"fmt"
	"io"
	"path/filepath"
	"strings"

	"emissary/internal/atomicfile"
)

// Reports are regenerated artifacts and regression-gate inputs, so
// they carry no timestamps, hostnames, or float formatting that could
// vary: the same catalog at the same scale renders byte-identical
// markdown at any worker count (TestHypothesisDeterminism pins this).

// WriteReport renders one evaluated hypothesis as markdown: the claim
// and experiment shape, the per-(pair × seed) delta table, the
// aggregate effect statistics, and the verdict with its justification.
func WriteReport(w io.Writer, ev *Evaluation) {
	h := ev.H
	fmt.Fprintf(w, "# %s — %s\n\n", h.ID, h.Family)
	fmt.Fprintf(w, "**Claim.** %s\n\n", h.Claim)
	fmt.Fprintf(w, "**Verdict: %s** — %s\n\n", ev.Verdict, ev.Reason)
	mode := "full"
	if ev.Scale.Short {
		mode = "short"
	}
	fmt.Fprintf(w, "Scale: %s (warm-up %d, measure %d instructions) · seeds %s · %d pairs × %d seeds = %d cells\n\n",
		mode, ev.Scale.Warmup, ev.Scale.Measure, seedList(ev.Seeds), len(ev.Pairs), len(ev.Seeds), len(ev.Cells))

	fmt.Fprintf(w, "| pair | seed | baseline | treatment | delta |\n")
	fmt.Fprintf(w, "|---|---|---|---|---|\n")
	for _, c := range ev.Cells {
		fmt.Fprintf(w, "| %s | %d | %.6f | %.6f | %+.4f |\n",
			c.Pair, c.Seed, c.BaseMetric, c.TreatMetric, c.Delta)
	}
	fmt.Fprintf(w, "\n")

	fmt.Fprintf(w, "Per-pair median deltas:\n\n")
	for _, p := range ev.Pairs {
		fmt.Fprintf(w, "- `%s`: %+.4f\n", p.Name, p.Median)
	}
	fmt.Fprintf(w, "\nAggregate: median delta %+.4f · sign consistency %.0f%% · 95%% bootstrap CI [%+.4f, %+.4f]\n",
		ev.Median, ev.Consistency*100, ev.CILo, ev.CIHi)
}

// WriteSummary renders the catalog index table.
func WriteSummary(w io.Writer, evs []*Evaluation) {
	fmt.Fprintf(w, "# Hypothesis catalog\n\n")
	fmt.Fprintf(w, "Behavioral claims from the paper, run as controlled multi-seed experiments\n")
	fmt.Fprintf(w, "(see DESIGN.md §11 for the methodology and verdict semantics).\n\n")
	fmt.Fprintf(w, "| ID | family | verdict | median delta | consistency | claim |\n")
	fmt.Fprintf(w, "|---|---|---|---|---|---|\n")
	for _, ev := range evs {
		fmt.Fprintf(w, "| [%s](%s) | %s | %s | %+.4f | %.0f%% | %s |\n",
			ev.H.ID, ReportFile(ev.H), ev.H.Family, ev.Verdict, ev.Median, ev.Consistency*100,
			strings.ReplaceAll(ev.H.Claim, "\n", " "))
	}
}

// ReportFile is the per-hypothesis report filename.
func ReportFile(h *Hypothesis) string { return h.ID + ".md" }

// WriteReports writes each evaluation's report plus a SUMMARY.md index
// under dir (which must exist), atomically — a crashed or cancelled
// run never leaves a half-written report behind.
func WriteReports(dir string, evs []*Evaluation) error {
	for _, ev := range evs {
		path := filepath.Join(dir, ReportFile(ev.H))
		if err := atomicfile.WriteTo(path, func(w io.Writer) error {
			WriteReport(w, ev)
			return nil
		}); err != nil {
			return err
		}
	}
	return atomicfile.WriteTo(filepath.Join(dir, "SUMMARY.md"), func(w io.Writer) error {
		WriteSummary(w, evs)
		return nil
	})
}

// seedList renders seeds compactly: "42,123,456".
func seedList(seeds []uint64) string {
	parts := make([]string, len(seeds))
	for i, s := range seeds {
		parts[i] = fmt.Sprintf("%d", s)
	}
	return strings.Join(parts, ",")
}
