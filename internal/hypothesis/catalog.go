package hypothesis

import (
	"fmt"

	"emissary/internal/core"
	"emissary/internal/runner"
	"emissary/internal/sim"
	"emissary/internal/stats"
	"emissary/internal/workload"
)

// The catalog below seeds the behavioral regression gate with the
// paper's headline claims. Thresholds were tuned once against the
// from-scratch simulator at FullScale and then frozen: the simulator
// is deterministic, so a verdict flip can only come from a code
// change — which is exactly the regression the CI gate exists to
// catch.

// Catalog returns the paper-derived hypotheses in ID order.
func Catalog() []*Hypothesis {
	return []*Hypothesis{
		H1StarvationConcentration(),
		H2SelectiveBeatsAlwaysProtect(),
		H3ProtectionGrowsWithN(),
		H4FDIPModulatesBenefit(),
		H5SkipEngagementAnticorrelatesIPC(),
		H6MRCDominatedByL1I(),
	}
}

// ByID returns the catalog entry with the given ID, or nil.
func ByID(id string) *Hypothesis {
	for _, h := range Catalog() {
		if h.ID == id {
			return h
		}
	}
	return nil
}

// profiles resolves a name list against the 13 paper workloads.
func profiles(names ...string) []workload.Profile {
	out := make([]workload.Profile, 0, len(names))
	for _, name := range names {
		p, ok := workload.ProfileByName(name)
		if !ok {
			panic("hypothesis: unknown workload " + name)
		}
		out = append(out, p)
	}
	return out
}

// pick returns the full set normally and the first shortN entries at
// a short scale.
func pick(s Scale, shortN int, ps []workload.Profile) []workload.Profile {
	if s.Short && shortN < len(ps) {
		return ps[:shortN]
	}
	return ps
}

// opts builds the baseline job shape shared by the catalog: FDIP and
// next-line prefetchers on (the paper's evaluation configuration),
// windows left to the Scale.
func opts(bench workload.Profile, policyText string) sim.Options {
	return sim.Options{
		Benchmark: bench,
		Policy:    core.MustParsePolicy(policyText),
		FDIP:      true,
		NLP:       true,
	}
}

// ipcVariant is a single simulation measured by IPC.
func ipcVariant(name string, opt sim.Options) Variant {
	return Variant{
		Name:   name,
		Jobs:   []sim.Options{opt},
		Metric: func(outs []runner.SimOutcome) float64 { return outs[0].Result.IPC },
	}
}

// speedupVariant runs base and treat under common random numbers and
// measures treat's cycle-count speedup over base (a fraction: 0.03 =
// 3% faster).
func speedupVariant(name string, base, treat sim.Options) Variant {
	return Variant{
		Name: name,
		Jobs: []sim.Options{base, treat},
		Metric: func(outs []runner.SimOutcome) float64 {
			return stats.Speedup(outs[0].Result.Cycles, outs[1].Result.Cycles)
		},
	}
}

// absDiff is the Pair.Diff for metrics that are already fractions.
func absDiff(base, treat float64) float64 { return treat - base }

// H1StarvationConcentration encodes §3 / Figure 2: under plain
// recency replacement, decode-starvation cycles concentrate on
// long-reuse instruction lines far beyond those lines' share of
// accesses. Baseline and treatment share one simulation (TPLRU with
// reuse tracking); the controlled dimension is the attribution —
// access share vs starvation share of the Long bucket.
func H1StarvationConcentration() *Hypothesis {
	workloads := profiles("tomcat", "verilator", "finagle-http", "wikipedia", "speedometer2.0", "data-serving")
	return &Hypothesis{
		ID:     "H1",
		Family: "starvation",
		Claim: "Under recency (TPLRU) replacement, long-reuse instruction lines account for a " +
			"disproportionate share of decode-starvation cycles relative to their share of accesses (§3, Figure 2).",
		Pairs: func(s Scale) []Pair {
			var pairs []Pair
			for _, w := range pick(s, 3, workloads) {
				job := opts(w, "TPLRU")
				job.TrackReuse = true
				longShare := func(buckets func(r sim.Result) [3]uint64) func([]runner.SimOutcome) float64 {
					return func(outs []runner.SimOutcome) float64 {
						b := buckets(outs[0].Result)
						total := float64(b[0] + b[1] + b[2])
						if total == 0 {
							return 0
						}
						return float64(b[2]) / total
					}
				}
				pairs = append(pairs, Pair{
					Name: w.Name,
					Baseline: Variant{
						Name:   "long-reuse share of accesses",
						Jobs:   []sim.Options{job},
						Metric: longShare(func(r sim.Result) [3]uint64 { return r.AccessByBucket }),
					},
					Treatment: Variant{
						Name:   "long-reuse share of starvation cycles",
						Jobs:   []sim.Options{job},
						Metric: longShare(func(r sim.Result) [3]uint64 { return r.StarvByBucket }),
					},
				})
			}
			return pairs
		},
		// The starvation share must exceed the access share by at
		// least 2x (relative delta ≥ 1.0) on the median workload.
		Assert: DirectionAssert(Increase, 1.0, 0.9),
	}
}

// H2SelectiveBeatsAlwaysProtect encodes the core EMISSARY design
// point: protecting lines *selectively* — only on misses observed to
// starve decode (S&E) — outperforms protecting every filled line
// (selection '1'), which devolves toward protecting the thrash.
func H2SelectiveBeatsAlwaysProtect() *Hypothesis {
	return &Hypothesis{
		ID:     "H2",
		Family: "policy",
		Claim: "EMISSARY's one-time priority insertion gated on observed starvation (P(8):S&E) " +
			"achieves higher IPC than indiscriminate always-protect (P(8):1) across the paper's workloads.",
		Pairs: func(s Scale) []Pair {
			var pairs []Pair
			for _, w := range pick(s, 5, workload.Profiles()) {
				pairs = append(pairs, Pair{
					Name:      w.Name,
					Baseline:  ipcVariant("P(8):1", opts(w, "P(8):1")),
					Treatment: ipcVariant("P(8):S&E", opts(w, "P(8):S&E")),
				})
			}
			return pairs
		},
		// Direction with a modest effect floor: the win is broad but
		// individually small on instruction-light workloads.
		Assert: DirectionAssert(Increase, 0.001, 0.65),
	}
}

// H3ProtectionGrowsWithN encodes the direction of the P(N)
// parameterization (§5, Figure 7 / Table 5): widening the priority-way
// budget strictly helps over the tested range. The experiment holds
// everything but N fixed and compares the two ends of the sweep —
// P(1):S&E against P(12):S&E, each measured as speedup over the shared
// TPLRU baseline under common random numbers. The paper's further
// claim of an N=8 *saturation point* is deliberately not asserted: at
// these horizons the marginal value of extra ways is itself
// horizon-dependent (priority marks keep accumulating over longer
// windows, so late steps keep paying), and a full-scale run refuted
// the saturation form while the direction below held in every cell.
func H3ProtectionGrowsWithN() *Hypothesis {
	workloads := profiles("tomcat", "verilator", "finagle-chirper", "web-search")
	return &Hypothesis{
		ID:     "H3",
		Family: "policy",
		Claim: "The speedup of P(N):S&E over TPLRU grows with the priority-way budget N: " +
			"P(12):S&E beats P(1):S&E on every tested workload (Figure 7 / Table 5, direction only).",
		Pairs: func(s Scale) []Pair {
			var pairs []Pair
			for _, w := range pick(s, 2, workloads) {
				base := opts(w, "TPLRU")
				pairs = append(pairs, Pair{
					Name:      "nways/" + w.Name,
					Baseline:  speedupVariant("P(1):S&E over TPLRU", base, opts(w, "P(1):S&E")),
					Treatment: speedupVariant("P(12):S&E over TPLRU", base, opts(w, "P(12):S&E")),
					Diff:      absDiff,
				})
			}
			return pairs
		},
		// Widening 1 → 12 must buy ≥0.2 percentage points of speedup
		// on the median cell with 3/4 of cells agreeing in sign.
		Assert: DirectionAssert(Increase, 0.002, 0.75),
	}
}

// H4FDIPModulatesBenefit encodes the §5.2 interaction: FDIP's
// decoupled prefetching hides part of the L2-I miss latency EMISSARY
// exists to mitigate, so disabling FDIP enlarges EMISSARY's speedup
// over the recency baseline. The controlled dimension is the FDIP
// flag; the metric is EMISSARY's speedup itself.
func H4FDIPModulatesBenefit() *Hypothesis {
	workloads := profiles("tomcat", "verilator", "finagle-http", "wikipedia")
	return &Hypothesis{
		ID:     "H4",
		Family: "frontend",
		Claim: "EMISSARY's speedup over TPLRU is larger without FDIP than with it: decoupled " +
			"prefetching hides a slice of the L2-I miss latency that priority protection targets (§5.2).",
		Pairs: func(s Scale) []Pair {
			var pairs []Pair
			for _, w := range pick(s, 2, workloads) {
				withFDIP := speedupVariant("P(8):S&E over TPLRU, FDIP on",
					opts(w, "TPLRU"), opts(w, "P(8):S&E"))
				baseOff := opts(w, "TPLRU")
				baseOff.FDIP = false
				treatOff := opts(w, "P(8):S&E")
				treatOff.FDIP = false
				withoutFDIP := speedupVariant("P(8):S&E over TPLRU, FDIP off", baseOff, treatOff)
				pairs = append(pairs, Pair{
					Name:      w.Name,
					Baseline:  withFDIP,
					Treatment: withoutFDIP,
					Diff:      absDiff,
				})
			}
			return pairs
		},
		// The no-FDIP speedup must exceed the with-FDIP speedup by at
		// least 0.5 percentage points of speedup.
		Assert: DirectionAssert(Increase, 0.005, 0.7),
	}
}

// H6MRCDominatedByL1I promotes the EXPERIMENTS.md §7.3 extension into
// a gated claim: the paper dismisses misprediction-recovery caches
// because large code footprints have reuse distances a small buffer
// cannot hold, and the measurement agrees — every hit the 32-line MRC
// services lands on a line still resident in the 512-line L1I, so the
// buffer is strictly dominated and enabling it must not move IPC. The
// controlled dimension is Options.MRCEntries (0 vs 32) under common
// random numbers; the assertion is *negligibility*, so a future change
// that makes the MRC matter (either way) refutes it and fails the
// gate.
func H6MRCDominatedByL1I() *Hypothesis {
	workloads := profiles("tomcat", "verilator", "wikipedia", "finagle-http")
	return &Hypothesis{
		ID:     "H6",
		Family: "frontend",
		Claim: "A 32-line misprediction recovery cache is strictly dominated by the L1I at the " +
			"paper's code footprints: enabling it (MRCEntries 0 -> 32 under TPLRU) changes IPC " +
			"negligibly, because short-reuse lines it could hold are already L1I-resident (§7.3).",
		Pairs: func(s Scale) []Pair {
			var pairs []Pair
			for _, w := range pick(s, 2, workloads) {
				off := opts(w, "TPLRU")
				on := opts(w, "TPLRU")
				on.MRCEntries = 32
				pairs = append(pairs, Pair{
					Name:      w.Name,
					Baseline:  ipcVariant("TPLRU, MRC off", off),
					Treatment: ipcVariant("TPLRU + 32-entry MRC", on),
				})
			}
			return pairs
		},
		// Relative IPC change must sit inside ±0.2% with the bootstrap
		// CI contained in the same band.
		Assert: NegligibleAssert(0.002),
	}
}

// H5SkipEngagementAnticorrelatesIPC ties PR 5's cycle-skip machinery
// to behavior: the event-driven skipper engages exactly where the
// machine stalls, so configurations with lower IPC must show a higher
// skipped-cycle fraction. The controlled dimension is front-end
// pressure (prefetchers off, MSHRs tightened); the assertion demands
// the two metrics move in opposite directions in every cell.
func H5SkipEngagementAnticorrelatesIPC() *Hypothesis {
	workloads := profiles("tomcat", "xapian", "finagle-http", "media-stream")
	return &Hypothesis{
		ID:     "H5",
		Family: "mechanics",
		Claim: "The cycle skipper's engagement anticorrelates with IPC: stall-heavy configurations " +
			"(no prefetching, 4 MSHRs) skip a larger fraction of cycles exactly because the pipeline " +
			"idles more (RunStats.SkippedCycles as a behavioral signal).",
		Pairs: func(s Scale) []Pair {
			var pairs []Pair
			skipFrac := func(outs []runner.SimOutcome) float64 { return outs[0].Stats.SkippedFraction() }
			for _, w := range pick(s, 2, workloads) {
				relaxed := opts(w, "TPLRU")
				stalled := opts(w, "TPLRU")
				stalled.FDIP = false
				stalled.NLP = false
				stalled.MaxMSHRs = 4
				pairs = append(pairs, Pair{
					Name:      w.Name,
					Baseline:  Variant{Name: "relaxed (FDIP+NLP)", Jobs: []sim.Options{relaxed}, Metric: skipFrac},
					Treatment: Variant{Name: "stall-heavy (no prefetch, 4 MSHRs)", Jobs: []sim.Options{stalled}, Metric: skipFrac},
					Diff:      absDiff,
				})
			}
			return pairs
		},
		Assert: func(ev *Evaluation) (Verdict, string) {
			// Confirmed only if, cell by cell, the skipped fraction
			// rises while IPC falls — direction agreement in every
			// cell, plus a real engagement delta in the median.
			agree := 0
			for _, c := range ev.Cells {
				skipUp := c.Delta > 0
				ipcDown := c.Treat[0].Result.IPC < c.Base[0].Result.IPC
				if skipUp && ipcDown {
					agree++
				}
			}
			med := stats.Median(ev.Deltas)
			reason := fmt.Sprintf("skip-fraction up while IPC down in %d/%d cells; median engagement delta %+.4f",
				agree, len(ev.Cells), med)
			switch {
			case len(ev.Cells) > 0 && agree == len(ev.Cells) && med >= 0.2:
				return Confirmed, reason
			case len(ev.Cells) > 0 && agree == 0:
				return Refuted, "no cell shows the claimed anticorrelation; " + reason
			default:
				return Inconclusive, reason
			}
		},
	}
}
