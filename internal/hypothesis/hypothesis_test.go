package hypothesis

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestCatalogShape pins the catalog's structural contract: stable
// unique IDs, experiments defined at both scales, and an assertion on
// every entry — a malformed catalog entry should fail here, not
// midway through a CI run.
func TestCatalogShape(t *testing.T) {
	catalog := Catalog()
	if len(catalog) < 5 {
		t.Fatalf("catalog has %d hypotheses, want >= 5", len(catalog))
	}
	seen := make(map[string]bool)
	for _, h := range catalog {
		if h.ID == "" || h.Family == "" || h.Claim == "" {
			t.Errorf("hypothesis %+v missing ID/Family/Claim", h)
		}
		if seen[h.ID] {
			t.Errorf("duplicate hypothesis ID %s", h.ID)
		}
		seen[h.ID] = true
		if h.Assert == nil {
			t.Errorf("%s: no assertion", h.ID)
		}
		if got := ByID(h.ID); got == nil || got.ID != h.ID {
			t.Errorf("ByID(%s) = %v", h.ID, got)
		}
		for _, scale := range []Scale{FullScale(), ShortScale()} {
			pairs := h.Pairs(scale)
			if len(pairs) == 0 {
				t.Errorf("%s: no pairs at scale %+v", h.ID, scale)
			}
			for _, p := range pairs {
				if len(p.Baseline.Jobs) == 0 || len(p.Treatment.Jobs) == 0 {
					t.Errorf("%s/%s: empty variant", h.ID, p.Name)
				}
				if p.Baseline.Metric == nil || p.Treatment.Metric == nil {
					t.Errorf("%s/%s: variant without metric", h.ID, p.Name)
				}
			}
		}
	}
	if ByID("no-such-id") != nil {
		t.Error("ByID of unknown id should be nil")
	}
}

func evalWithDeltas(deltas ...float64) *Evaluation {
	ev := &Evaluation{Deltas: deltas}
	summarize(ev)
	return ev
}

func TestDirectionAssert(t *testing.T) {
	cases := []struct {
		name   string
		dir    Direction
		min    float64
		cons   float64
		deltas []float64
		want   Verdict
	}{
		{"clear increase", Increase, 0.01, 0.8, []float64{0.05, 0.04, 0.06, 0.05}, Confirmed},
		{"clear decrease claimed increase", Increase, 0.01, 0.8, []float64{-0.05, -0.04, -0.06, -0.05}, Refuted},
		{"decrease direction confirms", Decrease, 0.01, 0.8, []float64{-0.05, -0.04, -0.06}, Confirmed},
		{"effect too small", Increase, 0.10, 0.8, []float64{0.01, 0.02, 0.01}, Inconclusive},
		{"inconsistent signs", Increase, 0.01, 0.9, []float64{0.05, -0.04, 0.06, -0.05}, Inconclusive},
		{"no data", Increase, 0.01, 0.8, nil, Inconclusive},
		{"all zero", Increase, 0.01, 0.8, []float64{0, 0, 0}, Inconclusive},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, reason := DirectionAssert(c.dir, c.min, c.cons)(evalWithDeltas(c.deltas...))
			if got != c.want {
				t.Errorf("verdict = %s (%s), want %s", got, reason, c.want)
			}
			if reason == "" {
				t.Error("assertion returned empty reason")
			}
		})
	}
}

func TestNegligibleAssert(t *testing.T) {
	cases := []struct {
		name   string
		bound  float64
		deltas []float64
		want   Verdict
	}{
		{"negligible", 0.01, []float64{0.001, -0.002, 0.0005, -0.001}, Confirmed},
		{"decidedly large", 0.01, []float64{0.2, 0.21, 0.19, 0.2}, Refuted},
		{"wide spread", 0.01, []float64{0.5, -0.49, 0.51, -0.5}, Inconclusive},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, reason := NegligibleAssert(c.bound)(evalWithDeltas(c.deltas...))
			if got != c.want {
				t.Errorf("verdict = %s (%s), want %s", got, reason, c.want)
			}
		})
	}
}

func TestPairsWithPrefix(t *testing.T) {
	ev := &Evaluation{Pairs: []PairSummary{
		{Name: "grow/a", Deltas: []float64{1, 2}},
		{Name: "sat/a", Deltas: []float64{3}},
		{Name: "grow/b", Deltas: []float64{4}},
	}}
	got := pairsWithPrefix(ev, "grow/")
	want := []float64{1, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("pairsWithPrefix = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("pairsWithPrefix[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if out := pairsWithPrefix(ev, "none/"); len(out) != 0 {
		t.Errorf("unmatched prefix returned %v", out)
	}
}

func TestVerdictStrings(t *testing.T) {
	for v, want := range map[Verdict]string{
		Confirmed:    "CONFIRMED",
		Refuted:      "REFUTED",
		Inconclusive: "INCONCLUSIVE",
		Verdict(9):   "Verdict(9)",
	} {
		if got := v.String(); got != want {
			t.Errorf("Verdict(%d).String() = %q, want %q", int(v), got, want)
		}
	}
}

// tinyScale keeps the determinism sweep fast: the verdicts at this
// scale are irrelevant (often INCONCLUSIVE); only byte-stability of
// the rendered reports is under test.
func tinyScale() Scale {
	return Scale{Warmup: 20_000, Measure: 50_000, Short: true}
}

// renderCatalog runs the full catalog at the given worker count and
// renders every report plus the summary into one byte stream.
func renderCatalog(t *testing.T, workers int) []byte {
	t.Helper()
	evs, err := RunCatalog(Catalog(), Config{Scale: tinyScale(), Workers: workers})
	if err != nil {
		t.Fatalf("catalog at %d workers: %v", workers, err)
	}
	var buf bytes.Buffer
	for _, ev := range evs {
		WriteReport(&buf, ev)
	}
	WriteSummary(&buf, evs)
	return buf.Bytes()
}

// TestHypothesisDeterminism is the harness's instance of the repo-wide
// contract: the full catalog report is byte-identical whether the
// (variant × seed) simulations run sequentially or race across eight
// workers — job options are fixed before scheduling and every
// aggregate (median, sign counts, bootstrap CI) is computed from
// job-ordered results with seeded randomness.
func TestHypothesisDeterminism(t *testing.T) {
	seq := renderCatalog(t, 1)
	par := renderCatalog(t, 8)
	if !bytes.Equal(seq, par) {
		t.Fatalf("catalog report differs between -j 1 and -j 8:\n-j 1: %d bytes\n-j 8: %d bytes\nfirst divergence at byte %d",
			len(seq), len(par), firstDiff(seq, par))
	}
	// The determinism claim is only meaningful if the run produced a
	// real report: every hypothesis must appear.
	for _, h := range Catalog() {
		if !bytes.Contains(seq, []byte("# "+h.ID+" — ")) {
			t.Errorf("report does not contain a section for %s", h.ID)
		}
	}
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// TestReportRendersFiniteNumbers guards the report against NaN/Inf
// leaking into committed markdown when a metric degenerates.
func TestReportRendersFiniteNumbers(t *testing.T) {
	ev := evalWithDeltas(0.1, math.NaN(), 0.2)
	ev.H = &Hypothesis{ID: "HX", Family: "test", Claim: "claim"}
	ev.Scale = tinyScale()
	ev.Seeds = []uint64{1}
	if math.IsNaN(ev.Median) || math.IsNaN(ev.CILo) || math.IsNaN(ev.CIHi) {
		t.Fatalf("summarize let NaN through: %+v", ev)
	}
	var buf bytes.Buffer
	WriteReport(&buf, ev)
	if !strings.Contains(buf.String(), "HX") {
		t.Error("report missing hypothesis ID")
	}
}
