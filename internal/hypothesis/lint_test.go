package hypothesis

import (
	"strings"
	"testing"

	"emissary/internal/lint"
)

// TestHypothesisLintClean pins that the determinism lint suite sweeps
// the hypothesis harness (package + CLI) clean: the harness exists to
// produce byte-stable reports, so an unseeded RNG, map-order sink, or
// float fold here would undermine its own gate. The full-tree sweep
// runs in CI's lint job; this test keeps the guarantee local to the
// package's own `go test`.
func TestHypothesisLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("module-wide typecheck is slow; CI's lint job covers -short runs")
	}
	mod, err := lint.LoadModule(".")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	var units []*lint.Unit
	for _, u := range mod.Units {
		if strings.Contains(u.Path, "internal/hypothesis") ||
			strings.Contains(u.Path, "cmd/emissary-hypothesis") {
			units = append(units, u)
		}
	}
	if len(units) == 0 {
		t.Fatal("module load found no hypothesis units")
	}
	for _, d := range lint.Run(units, lint.Rules()) {
		t.Errorf("lint: %s", d)
	}
}
