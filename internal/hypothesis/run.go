package hypothesis

import (
	"context"
	"fmt"
	"io"
	"time"

	"emissary/internal/runner"
	"emissary/internal/sim"
)

// Config tunes an experiment run.
type Config struct {
	// Scale sizes every simulation; the zero value selects FullScale.
	Scale Scale
	// Seeds overrides every hypothesis' seed set when non-empty.
	Seeds []uint64
	// Workers is the pool size (0 = GOMAXPROCS, 1 = sequential). The
	// report is byte-identical at any setting.
	Workers int
	// Journal, when non-nil, checkpoints completed simulations and
	// serves them on reruns; hypotheses sharing jobs (every EMISSARY
	// comparison runs the TPLRU baseline) dedupe through it too.
	Journal *runner.Journal
	// Context cancels in-flight simulations; nil means Background.
	Context context.Context
	// Progress, when non-nil, receives one line per completed
	// simulation.
	Progress io.Writer
	// Retries is the number of extra attempts a transiently-failing
	// simulation gets (0 = fail on first error); the deterministic
	// backoff keeps reports byte-identical at any Workers setting.
	Retries int
	// JobTimeout, when positive, bounds each simulation attempt with
	// its own deadline (tripped deadlines are transient).
	JobTimeout time.Duration
	// NoBatch disables batched lockstep execution of same-stream
	// simulations (diagnostic escape hatch; reports are byte-identical
	// either way, only wall-clock changes).
	NoBatch bool
}

func (c Config) scale() Scale {
	if c.Scale.Warmup == 0 && c.Scale.Measure == 0 {
		return FullScale()
	}
	return c.Scale
}

func (c Config) ctx() context.Context {
	if c.Context != nil {
		return c.Context
	}
	return context.Background()
}

// jobKey identifies a schedulable simulation for in-batch dedup. The
// fingerprint alone is not enough: NoCycleSkip is deliberately outside
// it (results are identical either way) but RunStats are not, and
// hypotheses about the machinery itself read stats.
func jobKey(opt sim.Options) string {
	return fmt.Sprintf("%s|noskip=%v", opt.Fingerprint(), opt.NoCycleSkip)
}

// Run executes one hypothesis' experiment: every (pair × seed × job)
// simulation is scheduled on the runner pool in deterministic order
// (pairs outer, seeds inner, baseline before treatment), identical
// jobs within the batch run once, and the outcomes are folded into an
// evaluated, verdict-bearing Evaluation.
func Run(h *Hypothesis, cfg Config) (*Evaluation, error) {
	scale := cfg.scale()
	seeds := h.seeds()
	if len(cfg.Seeds) > 0 {
		seeds = cfg.Seeds
	}
	pairs := h.Pairs(scale)
	if len(pairs) == 0 {
		return nil, fmt.Errorf("hypothesis %s: no pairs at this scale", h.ID)
	}

	// Flatten to a deduped job list, remembering for each (pair, seed,
	// arm, job) which slot serves it. Filling happens before dedup so
	// two arms sharing options (and therefore a fingerprint) collapse.
	var (
		jobs  []sim.Options
		slot  = make(map[string]int)
		index = make(map[cellJobRef]int)
	)
	add := func(ref cellJobRef, opt sim.Options) {
		filled := scale.fill(opt, ref.seed)
		k := jobKey(filled)
		i, ok := slot[k]
		if !ok {
			i = len(jobs)
			jobs = append(jobs, filled)
			slot[k] = i
		}
		index[ref] = i
	}
	for pi, p := range pairs {
		for _, seed := range seeds {
			for ji, opt := range p.Baseline.Jobs {
				add(cellJobRef{pi, seed, armBase, ji}, opt)
			}
			for ji, opt := range p.Treatment.Jobs {
				add(cellJobRef{pi, seed, armTreat, ji}, opt)
			}
		}
	}

	var progress func(sim.Result)
	if cfg.Progress != nil {
		progress = func(r sim.Result) {
			fmt.Fprintf(cfg.Progress, "  %s done %-16s %-20s IPC %.4f\n", h.ID, r.Benchmark, r.Policy, r.IPC)
		}
	}
	outs, err := runner.RunSimsStats(cfg.ctx(), jobs, runner.SimsConfig{
		Workers:    cfg.Workers,
		Journal:    cfg.Journal,
		Progress:   progress,
		Retry:      runner.RetryPolicy{MaxAttempts: cfg.Retries + 1},
		JobTimeout: cfg.JobTimeout,
		NoBatch:    cfg.NoBatch,
	})
	if err != nil {
		return nil, fmt.Errorf("hypothesis %s: %w", h.ID, err)
	}

	ev := &Evaluation{H: h, Scale: scale, Seeds: seeds}
	for pi, p := range pairs {
		sum := PairSummary{Name: p.Name}
		for _, seed := range seeds {
			cell := Cell{Pair: p.Name, Seed: seed}
			for ji := range p.Baseline.Jobs {
				cell.Base = append(cell.Base, outs[index[cellJobRef{pi, seed, armBase, ji}]])
			}
			for ji := range p.Treatment.Jobs {
				cell.Treat = append(cell.Treat, outs[index[cellJobRef{pi, seed, armTreat, ji}]])
			}
			if cell.BaseMetric, err = metricOf(p.Baseline, cell.Base); err != nil {
				return nil, err
			}
			if cell.TreatMetric, err = metricOf(p.Treatment, cell.Treat); err != nil {
				return nil, err
			}
			cell.Delta = p.delta(cell.BaseMetric, cell.TreatMetric)
			sum.Deltas = append(sum.Deltas, cell.Delta)
			ev.Cells = append(ev.Cells, cell)
			ev.Deltas = append(ev.Deltas, cell.Delta)
		}
		sum.Median = median(sum.Deltas)
		ev.Pairs = append(ev.Pairs, sum)
	}
	summarize(ev)
	if h.Assert == nil {
		return nil, fmt.Errorf("hypothesis %s: no assertion", h.ID)
	}
	ev.Verdict, ev.Reason = h.Assert(ev)
	return ev, nil
}

// RunCatalog evaluates hypotheses in order, sharing the pool and
// journal across them. Hypotheses are independent: one failing to run
// (as opposed to refuting) aborts the catalog, because a partial
// catalog would silently weaken the CI gate.
func RunCatalog(hs []*Hypothesis, cfg Config) ([]*Evaluation, error) {
	evs := make([]*Evaluation, 0, len(hs))
	for _, h := range hs {
		ev, err := Run(h, cfg)
		if err != nil {
			return nil, err
		}
		evs = append(evs, ev)
	}
	return evs, nil
}

type arm int

const (
	armBase arm = iota
	armTreat
)

// cellJobRef addresses one job of one cell.
type cellJobRef struct {
	pair int
	seed uint64
	arm  arm
	job  int
}
