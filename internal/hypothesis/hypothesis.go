// Package hypothesis turns the simulator into a research instrument:
// a behavioral claim from the paper is posed as a controlled
// experiment (baseline/treatment variants differing in exactly one
// dimension), run across multiple seeds on the runner pool, and judged
// by effect-size and direction statistics into a CONFIRMED / REFUTED /
// INCONCLUSIVE verdict. A confirmed hypothesis becomes a CI-runnable
// regression on *behavior*, complementing the golden digests (bytes)
// and BENCH_hotpath.json (speed).
//
// The methodology follows inference-sim's hypotheses/ discipline:
// identify a hypothesis family, pose an intuitive behavioral claim,
// design a one-dimension-controlled experiment, run it across seeds,
// and document the resolution honestly — an effect that fails to
// clear its thresholds is INCONCLUSIVE, not quietly confirmed.
package hypothesis

import (
	"fmt"

	"emissary/internal/runner"
	"emissary/internal/sim"
	"emissary/internal/stats"
)

// DefaultSeeds is the seed set hypotheses run across when they do not
// declare their own: three decorrelated seeds, enough for a
// sign-consistency check without tripling CI cost.
var DefaultSeeds = []uint64{42, 123, 456}

// Scale sizes each simulation of an experiment. It is orthogonal to
// the hypothesis definitions so the same catalog runs at full depth
// locally and in a fast -short configuration in CI.
type Scale struct {
	// Warmup and Measure are per-simulation instruction counts applied
	// to every job that does not set its own.
	Warmup  uint64
	Measure uint64
	// Short marks the reduced configuration: hypotheses shrink their
	// pair lists (fewer workloads) in addition to the shorter windows.
	Short bool
}

// FullScale is the committed-report configuration: long enough for
// EMISSARY's priority marks to accumulate.
func FullScale() Scale {
	return Scale{Warmup: 1_000_000, Measure: 4_000_000}
}

// ShortScale is the CI configuration: small enough to run the whole
// catalog under the race detector in minutes.
func ShortScale() Scale {
	return Scale{Warmup: 300_000, Measure: 1_000_000, Short: true}
}

// fill applies the scale's instruction counts and the cell's seed to
// one job. Every field of the returned options is fully determined
// before scheduling, which is what keeps reports byte-identical at any
// worker count.
func (s Scale) fill(opt sim.Options, seed uint64) sim.Options {
	if opt.WarmupInstrs == 0 {
		opt.WarmupInstrs = s.Warmup
	}
	if opt.MeasureInstrs == 0 {
		opt.MeasureInstrs = s.Measure
	}
	opt.Seed = seed
	return opt
}

// Variant is one arm of a controlled comparison: the simulations to
// run and the scalar metric extracted from their outcomes. Most
// variants are a single simulation; derived metrics (e.g. "EMISSARY's
// speedup over TPLRU") run the two sims they are computed from.
type Variant struct {
	// Name labels the arm in reports ("P(8):S&E", "FDIP off", ...).
	Name string
	// Jobs are the simulations the metric needs. Seeds are assigned by
	// the harness (the same seed across both arms of a pair — common
	// random numbers maximize paired power); warm-up and measurement
	// windows come from the Scale unless a job pins its own.
	Jobs []sim.Options
	// Metric reduces the jobs' outcomes (same order as Jobs) to the
	// scalar under comparison.
	Metric func(outs []runner.SimOutcome) float64
}

// Pair is one controlled comparison: baseline and treatment variants
// that differ in exactly one dimension, evaluated once per seed.
type Pair struct {
	// Name identifies the comparison point, conventionally the
	// workload ("tomcat") or the controlled step ("grow/tomcat").
	Name string
	// Baseline and Treatment are the two arms.
	Baseline, Treatment Variant
	// Diff maps the two arms' metric values to the pair's delta; nil
	// selects stats.PercentChange (relative). Absolute differences
	// (func(b, t) { return t - b }) suit metrics that are already
	// fractions, like speedups.
	Diff func(base, treat float64) float64
}

// delta applies the pair's Diff (defaulting to relative change).
func (p Pair) delta(base, treat float64) float64 {
	if p.Diff != nil {
		return p.Diff(base, treat)
	}
	return stats.PercentChange(base, treat)
}

// Hypothesis is one catalog entry: a behavioral claim and the
// controlled experiment that tests it.
type Hypothesis struct {
	// ID is the stable catalog key ("H1"); Family groups related
	// claims ("starvation", "policy", "mechanics").
	ID     string
	Family string
	// Claim is the behavioral statement under test, in prose.
	Claim string
	// Seeds overrides DefaultSeeds when non-nil.
	Seeds []uint64
	// Pairs builds the experiment for a scale (short scales typically
	// return fewer pairs).
	Pairs func(s Scale) []Pair
	// Assert judges the evaluated experiment.
	Assert Assert
}

// seeds returns the hypothesis' seed set.
func (h *Hypothesis) seeds() []uint64 {
	if len(h.Seeds) > 0 {
		return h.Seeds
	}
	return DefaultSeeds
}

// Cell is one (pair × seed) observation: both arms' raw outcomes and
// the derived delta.
type Cell struct {
	Pair string
	Seed uint64
	// Base and Treat hold each arm's outcomes in the variant's job
	// order.
	Base, Treat []runner.SimOutcome
	// BaseMetric and TreatMetric are the arms' scalar metrics;
	// Delta is the pair's Diff of the two.
	BaseMetric, TreatMetric float64
	Delta                   float64
}

// PairSummary aggregates one pair's per-seed deltas.
type PairSummary struct {
	Name   string
	Deltas []float64 // seed order
	Median float64
}

// Evaluation is a fully-run experiment: raw cells, per-pair and
// aggregate effect statistics, and the verdict.
type Evaluation struct {
	H     *Hypothesis
	Scale Scale
	Seeds []uint64

	// Cells holds every (pair × seed) observation in deterministic
	// order: pairs outer, seeds inner.
	Cells []Cell
	// Pairs summarizes each pair across seeds, in pair order.
	Pairs []PairSummary

	// Deltas collects every cell's delta (cell order); Median,
	// Consistency and the bootstrap CI are computed over it.
	Deltas      []float64
	Median      float64
	Consistency float64
	CILo, CIHi  float64

	Verdict Verdict
	Reason  string
}

// metricOf guards a variant's metric evaluation: a variant with no
// metric is a catalog bug worth failing loudly on.
func metricOf(v Variant, outs []runner.SimOutcome) (float64, error) {
	if v.Metric == nil {
		return 0, fmt.Errorf("hypothesis: variant %q has no metric", v.Name)
	}
	return v.Metric(outs), nil
}
