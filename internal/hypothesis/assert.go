package hypothesis

import (
	"fmt"

	"emissary/internal/stats"
)

// Verdict is the outcome of judging an evaluated experiment.
type Verdict int

const (
	// Inconclusive: the effect did not clear the thresholds in either
	// direction. Not a failure — an honest "the data does not decide".
	Inconclusive Verdict = iota
	// Confirmed: the claimed direction holds with the required effect
	// size and consistency.
	Confirmed
	// Refuted: the *opposite* direction holds as strongly as the claim
	// would have been required to. A previously-confirmed hypothesis
	// coming back Refuted is a behavioral regression.
	Refuted
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case Confirmed:
		return "CONFIRMED"
	case Refuted:
		return "REFUTED"
	case Inconclusive:
		return "INCONCLUSIVE"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Assert judges an evaluated experiment, returning the verdict and a
// one-line justification for the report.
type Assert func(ev *Evaluation) (Verdict, string)

// Direction is the claimed sign of the treatment's effect on the
// metric.
type Direction int

const (
	// Increase claims treatment raises the metric over baseline.
	Increase Direction = iota
	// Decrease claims treatment lowers it.
	Decrease
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	if d == Decrease {
		return "decrease"
	}
	return "increase"
}

// bootstrapResamples is fixed so reports are byte-stable; the sampling
// stream is seeded deterministically per call site.
const bootstrapResamples = 2000

// orient flips deltas so the claimed direction is positive.
func orient(dir Direction, deltas []float64) []float64 {
	if dir == Increase {
		return deltas
	}
	out := make([]float64, len(deltas))
	for i, d := range deltas {
		out[i] = -d
	}
	return out
}

// DirectionAssert builds the standard effect-size + direction
// assertion: the aggregate (pair × seed) delta distribution must show
// a median effect of at least minEffect in the claimed direction, at
// least minConsistency of the non-zero deltas must agree with it, and
// the 95% bootstrap CI of the mean delta must exclude zero on the
// claimed side. The mirror-image criteria hold for REFUTED — the
// opposite direction must be supported as strongly as the claim would
// have been — and anything in between is INCONCLUSIVE.
func DirectionAssert(dir Direction, minEffect, minConsistency float64) Assert {
	return func(ev *Evaluation) (Verdict, string) {
		or := orient(dir, ev.Deltas)
		med := stats.Median(or)
		pos, neg, _ := stats.Signs(or)
		n := pos + neg
		lo, hi := stats.BootstrapCI(or, 0.95, bootstrapResamples, 0xd17ec7)
		frac := func(k int) float64 {
			if n == 0 {
				return 0
			}
			return float64(k) / float64(n)
		}
		describe := func(agree int) string {
			return fmt.Sprintf("median %s %+.4f (threshold %.4f), %d/%d deltas agree (need %.0f%%), 95%% CI [%+.4f, %+.4f]",
				dir, med, minEffect, agree, n, minConsistency*100, lo, hi)
		}
		switch {
		case med >= minEffect && frac(pos) >= minConsistency && lo > 0:
			return Confirmed, describe(pos)
		case med <= -minEffect && frac(neg) >= minConsistency && hi < 0:
			return Refuted, "effect runs opposite to the claim: " + describe(neg)
		default:
			return Inconclusive, "thresholds not met: " + describe(pos)
		}
	}
}

// NegligibleAssert builds the saturation-style assertion: the
// aggregate effect must be indistinguishable from zero — |median|
// under maxEffect and the 95% bootstrap CI contained in ±maxEffect.
// A median escaping ±maxEffect with a CI clear of zero REFUTES the
// claim of negligibility.
func NegligibleAssert(maxEffect float64) Assert {
	return func(ev *Evaluation) (Verdict, string) {
		med := stats.Median(ev.Deltas)
		lo, hi := stats.BootstrapCI(ev.Deltas, 0.95, bootstrapResamples, 0xd17ec7)
		desc := fmt.Sprintf("median %+.4f (bound ±%.4f), 95%% CI [%+.4f, %+.4f]", med, maxEffect, lo, hi)
		abs := med
		if abs < 0 {
			abs = -abs
		}
		switch {
		case abs <= maxEffect && lo >= -maxEffect && hi <= maxEffect:
			return Confirmed, "effect negligible as claimed: " + desc
		case abs > maxEffect && (lo > 0 || hi < 0):
			return Refuted, "effect is decidedly non-negligible: " + desc
		default:
			return Inconclusive, "spread too wide to call negligible: " + desc
		}
	}
}

// median is a local alias keeping run.go readable.
func median(xs []float64) float64 { return stats.Median(xs) }

// summarize fills the evaluation's aggregate effect statistics from
// its delta distribution: median effect, sign consistency, and a
// deterministic 95% bootstrap CI of the mean delta.
func summarize(ev *Evaluation) {
	ev.Median = stats.Median(ev.Deltas)
	ev.Consistency = stats.SignConsistency(ev.Deltas)
	ev.CILo, ev.CIHi = stats.BootstrapCI(ev.Deltas, 0.95, bootstrapResamples, 0xd17ec7)
}

// pairsWithPrefix selects the pair summaries whose name starts with
// prefix — the idiom multi-part experiments (e.g. grow/... vs sat/...)
// use to judge their parts separately.
func pairsWithPrefix(ev *Evaluation, prefix string) []float64 {
	var out []float64
	for _, p := range ev.Pairs {
		if len(p.Name) >= len(prefix) && p.Name[:len(prefix)] == prefix {
			out = append(out, p.Deltas...)
		}
	}
	return out
}
