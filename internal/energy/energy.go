// Package energy models processor energy the way the paper uses McPAT
// (§5.9): per-event dynamic energies for each structure plus static
// leakage proportional to execution time. Absolute joules are
// synthetic; what the model preserves is the paper's observation that
// EMISSARY's energy savings track its speedup, because the added
// hardware is two bits per cache line (the dynamic-event profile is
// nearly unchanged while cycles — and therefore leakage — drop).
package energy

// Event energies in picojoules. Values follow the usual relative
// ordering for a server-class part on a recent node: each level of the
// hierarchy costs roughly an order of magnitude more than the last,
// and DRAM dominates everything.
const (
	PerInstr     = 30.0 // front-end + rename + issue + commit per instruction
	L1Access     = 10.0
	L2Access     = 40.0
	L3Access     = 120.0
	DRAMAccess   = 2000.0
	BTBAccess    = 3.0
	PredAccess   = 4.0
	LeakPerCycle = 110.0 // whole-core static power per cycle
)

// Counts are the event totals a simulation reports for energy
// accounting.
type Counts struct {
	Instructions uint64
	Cycles       uint64
	L1Accesses   uint64
	L2Accesses   uint64
	L3Accesses   uint64
	DRAMReads    uint64
	BTBLookups   uint64
	Predictions  uint64
}

// Breakdown is the modeled energy split.
type Breakdown struct {
	DynamicPJ float64
	StaticPJ  float64
}

// TotalPJ returns total energy in picojoules.
func (b Breakdown) TotalPJ() float64 { return b.DynamicPJ + b.StaticPJ }

// Model computes the energy breakdown for a run.
func Model(c Counts) Breakdown {
	dyn := float64(c.Instructions)*PerInstr +
		float64(c.L1Accesses)*L1Access +
		float64(c.L2Accesses)*L2Access +
		float64(c.L3Accesses)*L3Access +
		float64(c.DRAMReads)*DRAMAccess +
		float64(c.BTBLookups)*BTBAccess +
		float64(c.Predictions)*PredAccess
	return Breakdown{
		DynamicPJ: dyn,
		StaticPJ:  float64(c.Cycles) * LeakPerCycle,
	}
}

// Savings returns the fractional energy reduction of test relative to
// base (positive = test uses less energy).
func Savings(base, test Breakdown) float64 {
	bt := base.TotalPJ()
	if bt == 0 {
		return 0
	}
	return (bt - test.TotalPJ()) / bt
}
