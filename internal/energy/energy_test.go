package energy

import "testing"

func TestModelMonotonic(t *testing.T) {
	base := Counts{Instructions: 1000, Cycles: 800, L1Accesses: 400, L2Accesses: 40, DRAMReads: 2}
	more := base
	more.DRAMReads += 10
	if Model(more).TotalPJ() <= Model(base).TotalPJ() {
		t.Error("more DRAM reads should cost more energy")
	}
	slower := base
	slower.Cycles += 500
	if Model(slower).TotalPJ() <= Model(base).TotalPJ() {
		t.Error("more cycles should cost more leakage")
	}
}

func TestSavingsTracksSpeedup(t *testing.T) {
	// Same work, fewer cycles -> positive savings, smaller than the
	// cycle reduction (dynamic energy unchanged).
	base := Counts{Instructions: 1_000_000, Cycles: 1_000_000, L1Accesses: 400_000, L2Accesses: 20_000, DRAMReads: 1000}
	fast := base
	fast.Cycles = 900_000
	s := Savings(Model(base), Model(fast))
	if s <= 0 {
		t.Fatalf("savings = %v, want positive", s)
	}
	if s >= 0.10 {
		t.Errorf("savings = %v, should be below the 10%% cycle reduction", s)
	}
}

func TestSavingsZeroBase(t *testing.T) {
	if s := Savings(Breakdown{}, Breakdown{DynamicPJ: 5}); s != 0 {
		t.Errorf("Savings with zero base = %v", s)
	}
}

func TestBreakdownTotal(t *testing.T) {
	b := Breakdown{DynamicPJ: 3, StaticPJ: 4}
	if b.TotalPJ() != 7 {
		t.Errorf("TotalPJ = %v", b.TotalPJ())
	}
}
