package trace

import (
	"fmt"
	"io"
	"sort"

	"emissary/internal/branch"
)

// Replay is a trace.Source backed by a recorded trace. Because the
// front-end needs static-program queries (BlockInfo for the
// pre-decoder and wrong-path walking) before the corresponding events
// stream by, Replay pre-scans the whole trace to build the static
// block index, then streams events from memory.
type Replay struct {
	events []BlockEvent
	pos    int

	index  map[uint64]branch.BTBEntry
	sorted []uint64 // block start addresses, ascending

	// classes are inferred per PC from the recorded memory references:
	// a PC that ever loads is a load, ever stores is a store, block
	// terminators are branches, everything else is ALU.
	classes map[uint64]Class
}

// NewReplay reads an entire trace from r.
func NewReplay(r io.Reader) (*Replay, error) {
	tr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	rp := &Replay{
		index:   make(map[uint64]branch.BTBEntry),
		classes: make(map[uint64]Class),
	}
	for {
		ev, err := tr.ReadEvent()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		rp.events = append(rp.events, ev)
		if _, ok := rp.index[ev.Addr]; !ok {
			entry := branch.BTBEntry{
				Start:     ev.Addr,
				NumInstrs: ev.NumInstrs,
				EndKind:   ev.EndKind,
			}
			rp.index[ev.Addr] = entry
			rp.sorted = append(rp.sorted, ev.Addr)
		}
		// Record the taken target once observed (direct branches have
		// a stable one; indirect targets vary and stay 0).
		if ev.Taken && !ev.EndKind.IsIndirect() && ev.EndKind != branch.KindReturn {
			e := rp.index[ev.Addr]
			if e.Target == 0 {
				e.Target = ev.NextAddr
				rp.index[ev.Addr] = e
			}
		}
		for _, m := range ev.Mem {
			pc := ev.Addr + 4*uint64(m.Index)
			if m.Store {
				rp.classes[pc] = ClassStore
			} else if rp.classes[pc] != ClassStore {
				rp.classes[pc] = ClassLoad
			}
		}
	}
	if len(rp.events) == 0 {
		return nil, fmt.Errorf("trace: replay source has no events")
	}
	sort.Slice(rp.sorted, func(i, j int) bool { return rp.sorted[i] < rp.sorted[j] })
	return rp, nil
}

// Events returns the number of events in the trace.
func (r *Replay) Events() int { return len(r.events) }

// FootprintBytes returns the static instruction footprint observed in
// the trace (unique block bytes).
func (r *Replay) FootprintBytes() int {
	total := 0
	for _, e := range r.index {
		total += 4 * e.NumInstrs
	}
	return total
}

// Rewind restarts the stream (for warm-up plus measurement passes
// longer than the capture).
func (r *Replay) Rewind() { r.pos = 0 }

// NextBlock implements Source.
func (r *Replay) NextBlock() (BlockEvent, bool) {
	if r.pos >= len(r.events) {
		return BlockEvent{}, false
	}
	ev := r.events[r.pos]
	r.pos++
	return ev, true
}

// BlockInfo implements Source.
func (r *Replay) BlockInfo(addr uint64) (branch.BTBEntry, bool) {
	e, ok := r.index[addr]
	return e, ok
}

// BlocksInLine implements Source.
func (r *Replay) BlocksInLine(line uint64, out []branch.BTBEntry) []branch.BTBEntry {
	lo, hi := line<<6, (line+1)<<6
	i := sort.Search(len(r.sorted), func(i int) bool { return r.sorted[i] >= lo })
	for ; i < len(r.sorted) && r.sorted[i] < hi; i++ {
		out = append(out, r.index[r.sorted[i]])
	}
	return out
}

// InstrClass implements Source.
func (r *Replay) InstrClass(pc uint64) Class {
	if c, ok := r.classes[pc]; ok {
		return c
	}
	return ClassALU
}
