package trace

import (
	"bytes"
	"io"
	"reflect"
	"testing"
	"testing/quick"

	"emissary/internal/branch"
)

func TestClassStringsAndLatency(t *testing.T) {
	for c := ClassALU; c < numClasses; c++ {
		if c.String() == "" {
			t.Errorf("class %d has empty name", c)
		}
		if c.Latency() < 1 {
			t.Errorf("class %v latency %d", c, c.Latency())
		}
	}
	if ClassMul.Latency() <= ClassALU.Latency() {
		t.Error("mul should be slower than alu")
	}
}

func TestBlockEventBranchPC(t *testing.T) {
	e := BlockEvent{Addr: 0x100, NumInstrs: 4}
	if e.BranchPC() != 0x10C {
		t.Errorf("BranchPC = %#x", e.BranchPC())
	}
}

func TestRoundTripEvents(t *testing.T) {
	events := []BlockEvent{
		{Addr: 0x1000, NumInstrs: 6, EndKind: branch.KindCond, Taken: true, NextAddr: 0x2000,
			Mem: []MemRef{{Index: 2, Addr: 0xdeadbeef, Store: false}, {Index: 4, Addr: 0x1234, Store: true}}},
		{Addr: 0x2000, NumInstrs: 1, EndKind: branch.KindReturn, NextAddr: 0x1018},
		{Addr: 0x3000, NumInstrs: 12, EndKind: branch.KindFallthrough, NextAddr: 0x3030},
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if err := w.WriteEvent(e); err != nil {
			t.Fatal(err)
		}
	}
	if w.Events() != uint64(len(events)) {
		t.Errorf("Events = %d", w.Events())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range events {
		got, err := r.ReadEvent()
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("event %d: got %+v want %+v", i, got, want)
		}
	}
	if _, err := r.ReadEvent(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestReaderRejectsBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte{1, 2, 3, 4, 5})); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestReaderTruncated(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.WriteEvent(BlockEvent{Addr: 1, NumInstrs: 2, NextAddr: 3})
	w.Flush()
	data := buf.Bytes()
	r, err := NewReader(bytes.NewReader(data[:len(data)-1]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadEvent(); err == nil || err == io.EOF {
		t.Errorf("truncated read error = %v, want decode error", err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	if err := quick.Check(func(addr, next uint64, n uint8, taken bool, memAddr uint64, memIdx uint8) bool {
		e := BlockEvent{
			Addr:      addr,
			NumInstrs: int(n%32) + 1,
			EndKind:   branch.KindCond,
			Taken:     taken,
			NextAddr:  next,
		}
		if memIdx%2 == 0 {
			e.Mem = []MemRef{{Index: int(memIdx), Addr: memAddr, Store: taken}}
		}
		var buf bytes.Buffer
		w, _ := NewWriter(&buf)
		if err := w.WriteEvent(e); err != nil {
			return false
		}
		w.Flush()
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		got, err := r.ReadEvent()
		return err == nil && reflect.DeepEqual(got, e)
	}, nil); err != nil {
		t.Error(err)
	}
}
