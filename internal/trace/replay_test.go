package trace

import (
	"bytes"
	"io"
	"testing"

	"emissary/internal/branch"
)

func buildTrace(t *testing.T, events []BlockEvent) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if err := w.WriteEvent(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func sampleEvents() []BlockEvent {
	return []BlockEvent{
		{Addr: 0x1000, NumInstrs: 4, EndKind: branch.KindCond, Taken: true, NextAddr: 0x2000,
			Mem: []MemRef{{Index: 1, Addr: 0x8000, Store: false}}},
		{Addr: 0x2000, NumInstrs: 3, EndKind: branch.KindJump, Taken: true, NextAddr: 0x1000},
		{Addr: 0x1000, NumInstrs: 4, EndKind: branch.KindCond, Taken: false, NextAddr: 0x1010,
			Mem: []MemRef{{Index: 2, Addr: 0x9000, Store: true}}},
		{Addr: 0x1010, NumInstrs: 2, EndKind: branch.KindReturn, Taken: true, NextAddr: 0x2000},
	}
}

func TestReplayStreamsEvents(t *testing.T) {
	rp, err := NewReplay(buildTrace(t, sampleEvents()))
	if err != nil {
		t.Fatal(err)
	}
	if rp.Events() != 4 {
		t.Fatalf("Events = %d", rp.Events())
	}
	var got []uint64
	for {
		ev, ok := rp.NextBlock()
		if !ok {
			break
		}
		got = append(got, ev.Addr)
	}
	want := []uint64{0x1000, 0x2000, 0x1000, 0x1010}
	if len(got) != len(want) {
		t.Fatalf("streamed %d events", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d addr %#x, want %#x", i, got[i], want[i])
		}
	}
	// Rewind restarts.
	rp.Rewind()
	if ev, ok := rp.NextBlock(); !ok || ev.Addr != 0x1000 {
		t.Errorf("after Rewind got %#x,%v", ev.Addr, ok)
	}
}

func TestReplayStaticIndex(t *testing.T) {
	rp, err := NewReplay(buildTrace(t, sampleEvents()))
	if err != nil {
		t.Fatal(err)
	}
	e, ok := rp.BlockInfo(0x1000)
	if !ok || e.NumInstrs != 4 || e.EndKind != branch.KindCond {
		t.Errorf("BlockInfo = %+v, %v", e, ok)
	}
	if e.Target != 0x2000 {
		t.Errorf("learned taken target = %#x, want 0x2000", e.Target)
	}
	if _, ok := rp.BlockInfo(0x1004); ok {
		t.Error("non-block address resolved")
	}
}

func TestReplayBlocksInLine(t *testing.T) {
	rp, err := NewReplay(buildTrace(t, sampleEvents()))
	if err != nil {
		t.Fatal(err)
	}
	// 0x1000 and 0x1010 share line 0x40.
	blocks := rp.BlocksInLine(0x1000>>6, nil)
	if len(blocks) != 2 {
		t.Fatalf("BlocksInLine found %d blocks", len(blocks))
	}
	if blocks[0].Start != 0x1000 || blocks[1].Start != 0x1010 {
		t.Errorf("blocks = %#x, %#x", blocks[0].Start, blocks[1].Start)
	}
}

func TestReplayInferredClasses(t *testing.T) {
	rp, err := NewReplay(buildTrace(t, sampleEvents()))
	if err != nil {
		t.Fatal(err)
	}
	if c := rp.InstrClass(0x1004); c != ClassLoad {
		t.Errorf("class at 0x1004 = %v, want load", c)
	}
	if c := rp.InstrClass(0x1008); c != ClassStore {
		t.Errorf("class at 0x1008 = %v, want store", c)
	}
	if c := rp.InstrClass(0x1000); c != ClassALU {
		t.Errorf("class at 0x1000 = %v, want alu", c)
	}
}

func TestReplayEmptyTraceRejected(t *testing.T) {
	if _, err := NewReplay(buildTrace(t, nil)); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestReplayPropagatesReadErrors(t *testing.T) {
	buf := buildTrace(t, sampleEvents())
	data := buf.Bytes()
	if _, err := NewReplay(bytes.NewReader(data[:len(data)-1])); err == nil || err == io.EOF {
		t.Errorf("truncated replay error = %v", err)
	}
}

var _ Source = (*Replay)(nil)
