// Package trace defines the dynamic instruction-stream representation
// that connects workload generators to the simulated core: basic-block
// events with attached memory references, a Source interface the
// pipeline consumes, and a compact binary serialization so traces can
// be captured and replayed.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"emissary/internal/branch"
)

// Class is the static class of an instruction.
type Class uint8

// Instruction classes.
const (
	ClassALU Class = iota
	ClassMul
	ClassFP
	ClassLoad
	ClassStore
	ClassBranch
	numClasses
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassALU:
		return "alu"
	case ClassMul:
		return "mul"
	case ClassFP:
		return "fp"
	case ClassLoad:
		return "load"
	case ClassStore:
		return "store"
	case ClassBranch:
		return "branch"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// Latency returns the execution latency of the class in cycles
// (memory classes add cache access time on top).
func (c Class) Latency() int {
	switch c {
	case ClassMul:
		return 3
	case ClassFP:
		return 4
	default:
		return 1
	}
}

// MemRef is one memory reference within a block instance.
type MemRef struct {
	Index int    // instruction index within the block
	Addr  uint64 // byte address
	Store bool
}

// MaxBlockMem bounds len(BlockEvent.Mem): a basic block is at most a
// handful of instructions (the workload generator caps blocks well
// below this), so no event carries more memory references. Consumers
// size per-slot reference buffers to it, and the trace reader rejects
// events that exceed it.
const MaxBlockMem = 16

// BlockEvent is one dynamic basic-block execution on the committed
// path: the oracle record the pipeline validates its predictions
// against.
type BlockEvent struct {
	Addr      uint64 // block start address
	NumInstrs int
	EndKind   branch.Kind
	Taken     bool   // actual direction (conditional terminators)
	NextAddr  uint64 // actual successor block address
	Mem       []MemRef
}

// BranchPC returns the terminating instruction's address.
func (e BlockEvent) BranchPC() uint64 { return e.Addr + 4*uint64(e.NumInstrs-1) }

// Source supplies the oracle stream plus the static-program queries
// the front-end needs: block descriptors at arbitrary addresses (for
// the pre-decoder and wrong-path walking) and per-PC instruction
// classes.
type Source interface {
	// NextBlock returns the next committed-path block; ok is false at
	// end of stream. The returned event's Mem slice is only valid
	// until the next NextBlock call — sources may reuse its backing
	// array — so callers keeping references across calls must copy.
	NextBlock() (BlockEvent, bool)
	// BlockInfo returns the static descriptor of the block starting at
	// addr (what a pre-decoder would extract from the raw bytes).
	BlockInfo(addr uint64) (branch.BTBEntry, bool)
	// BlocksInLine appends the descriptors of every block starting
	// within the 64-byte line to out (the proactive pre-decoder's view
	// of a fetched line).
	BlocksInLine(line uint64, out []branch.BTBEntry) []branch.BTBEntry
	// InstrClass returns the static class of the instruction at pc.
	InstrClass(pc uint64) Class
}

// traceMagic guards the binary format.
const traceMagic = 0x454d4953 // "EMIS"

// Writer serializes BlockEvents.
type Writer struct {
	w   *bufio.Writer
	buf []byte
	n   uint64
}

// NewWriter wraps w in a trace serializer and writes the header.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], traceMagic)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &Writer{w: bw, buf: make([]byte, 0, 256)}, nil
}

// WriteEvent appends one event.
func (w *Writer) WriteEvent(e BlockEvent) error {
	b := w.buf[:0]
	b = binary.AppendUvarint(b, e.Addr)
	b = binary.AppendUvarint(b, uint64(e.NumInstrs))
	flags := uint64(e.EndKind) << 1
	if e.Taken {
		flags |= 1
	}
	b = binary.AppendUvarint(b, flags)
	b = binary.AppendUvarint(b, e.NextAddr)
	b = binary.AppendUvarint(b, uint64(len(e.Mem)))
	for _, m := range e.Mem {
		idx := uint64(m.Index) << 1
		if m.Store {
			idx |= 1
		}
		b = binary.AppendUvarint(b, idx)
		b = binary.AppendUvarint(b, m.Addr)
	}
	w.buf = b
	if _, err := w.w.Write(b); err != nil {
		return fmt.Errorf("trace: writing event: %w", err)
	}
	w.n++
	return nil
}

// Events returns the number of events written.
func (w *Writer) Events() uint64 { return w.n }

// Flush flushes buffered output.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader deserializes BlockEvents.
type Reader struct {
	r *bufio.Reader
}

// NewReader wraps r and validates the header.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[:]) != traceMagic {
		return nil, errors.New("trace: bad magic; not a trace file")
	}
	return &Reader{r: br}, nil
}

// ReadEvent reads the next event; io.EOF marks a clean end of trace.
func (r *Reader) ReadEvent() (BlockEvent, error) {
	var e BlockEvent
	addr, err := binary.ReadUvarint(r.r)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return e, io.EOF
		}
		return e, fmt.Errorf("trace: reading event: %w", err)
	}
	e.Addr = addr
	n, err := binary.ReadUvarint(r.r)
	if err != nil {
		return e, fmt.Errorf("trace: truncated event: %w", err)
	}
	e.NumInstrs = int(n)
	flags, err := binary.ReadUvarint(r.r)
	if err != nil {
		return e, fmt.Errorf("trace: truncated event: %w", err)
	}
	e.Taken = flags&1 != 0
	e.EndKind = branch.Kind(flags >> 1)
	if e.NextAddr, err = binary.ReadUvarint(r.r); err != nil {
		return e, fmt.Errorf("trace: truncated event: %w", err)
	}
	nm, err := binary.ReadUvarint(r.r)
	if err != nil {
		return e, fmt.Errorf("trace: truncated event: %w", err)
	}
	if nm > MaxBlockMem {
		return e, fmt.Errorf("trace: mem-ref count %d exceeds the per-block bound %d", nm, MaxBlockMem)
	}
	if nm > 0 {
		e.Mem = make([]MemRef, nm)
		for i := range e.Mem {
			idx, err := binary.ReadUvarint(r.r)
			if err != nil {
				return e, fmt.Errorf("trace: truncated mem ref: %w", err)
			}
			e.Mem[i].Store = idx&1 != 0
			e.Mem[i].Index = int(idx >> 1)
			if e.Mem[i].Addr, err = binary.ReadUvarint(r.r); err != nil {
				return e, fmt.Errorf("trace: truncated mem ref: %w", err)
			}
		}
	}
	return e, nil
}
