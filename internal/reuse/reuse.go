// Package reuse computes exact reuse distances: for each access to a
// cache line, the number of *unique* lines touched since the previous
// access to that line (§3 of the paper; consecutive accesses to the
// same line are not counted). Distances drive the Short [0,100) /
// Mid [100,5000) / Long [5000,∞) classification of Figure 2.
//
// The tracker uses the classic Fenwick-tree algorithm over access
// timestamps, with periodic timestamp compaction so memory stays
// proportional to the number of distinct lines rather than the trace
// length.
package reuse

// Infinite is returned for a line's first access.
const Infinite = int64(-1)

// Paper bucket boundaries.
const (
	ShortMidBoundary = 100
	MidLongBoundary  = 5000
)

// Bucket classifies a reuse distance per the paper's three bins;
// first accesses (Infinite) classify as Long.
type Bucket int

// Buckets.
const (
	Short Bucket = iota
	Mid
	Long
)

// String implements fmt.Stringer.
func (b Bucket) String() string {
	switch b {
	case Short:
		return "short"
	case Mid:
		return "mid"
	default:
		return "long"
	}
}

// Classify maps a distance to its bucket.
func Classify(d int64) Bucket {
	switch {
	case d == Infinite || d >= MidLongBoundary:
		return Long
	case d >= ShortMidBoundary:
		return Mid
	default:
		return Short
	}
}

// pair is one line/timestamp entry of the compaction scratch buffer.
type pair struct {
	line uint64
	ts   int64
}

// Tracker computes exact reuse distances online.
type Tracker struct {
	last map[uint64]int64 // line -> timestamp of its latest access
	tree []int64          // Fenwick tree over timestamps (1-based)
	time int64            // next timestamp
	cap  int64

	// scratch is compact's reusable sort buffer. Live timestamps are
	// unique values in [1, cap], so len(last) never exceeds cap and a
	// cap-sized buffer always suffices.
	scratch []pair

	lastLine uint64
	haveLast bool
}

// NewTracker returns a Tracker. capacity bounds the Fenwick tree size;
// when timestamps exceed it the tracker compacts. A capacity of at
// least 4x the expected distinct-line count keeps compaction rare.
func NewTracker(capacity int) *Tracker {
	if capacity < 16 {
		capacity = 16
	}
	return &Tracker{
		last:    make(map[uint64]int64),
		tree:    make([]int64, capacity+1),
		cap:     int64(capacity),
		time:    1,
		scratch: make([]pair, 0, capacity),
	}
}

// Reset restores the tracker to its post-construction state, keeping
// its allocations, so a warm-pooled simulation can reuse it.
//
//vet:hot
func (t *Tracker) Reset() {
	clear(t.last)
	clear(t.tree)
	t.time = 1
	t.lastLine = 0
	t.haveLast = false
}

func (t *Tracker) add(i, delta int64) {
	for ; i <= t.cap; i += i & (-i) {
		t.tree[i] += delta
	}
}

func (t *Tracker) sum(i int64) int64 {
	var s int64
	for ; i > 0; i -= i & (-i) {
		s += t.tree[i]
	}
	return s
}

// Access records an access to line and returns its reuse distance
// (Infinite on first access). Immediately repeated accesses to the
// same line return 0 without resetting the timestamp, matching the
// paper's "same line accessed consecutively is not counted".
func (t *Tracker) Access(line uint64) int64 {
	if t.haveLast && t.lastLine == line {
		return 0
	}
	t.lastLine = line
	t.haveLast = true

	if t.time > t.cap {
		t.compact()
	}
	prev, seen := t.last[line]
	var dist int64
	if seen {
		// Unique lines touched strictly after prev.
		dist = t.sum(t.cap) - t.sum(prev)
		t.add(prev, -1)
	} else {
		dist = Infinite
	}
	t.add(t.time, 1)
	t.last[line] = t.time
	t.time++
	return dist
}

// compact renumbers timestamps 1..len(last), preserving order. It is
// allocation-free: pairs reuse the tracker-owned scratch buffer
// (reslicing within its cap-sized capacity, which the uniqueness of
// live timestamps guarantees is enough) and the sort is a hand-rolled
// heapsort with no closure. Timestamps are unique, so heapsort's
// instability cannot reorder equal keys.
func (t *Tracker) compact() {
	pairs := t.scratch[:0]
	for l, ts := range t.last {
		pairs = pairs[:len(pairs)+1]
		pairs[len(pairs)-1] = pair{l, ts}
	}
	sortPairsByTS(pairs)
	clear(t.tree)
	for i, p := range pairs {
		ts := int64(i + 1)
		t.last[p.line] = ts
		t.add(ts, 1)
	}
	t.time = int64(len(pairs)) + 1
}

// sortPairsByTS heapsorts pairs ascending by timestamp.
func sortPairsByTS(p []pair) {
	n := len(p)
	for i := n/2 - 1; i >= 0; i-- {
		siftDownPair(p, i, n)
	}
	for i := n - 1; i > 0; i-- {
		p[0], p[i] = p[i], p[0]
		siftDownPair(p, 0, i)
	}
}

// siftDownPair restores the max-heap property for the subtree at root
// within p[:n].
func siftDownPair(p []pair, root, n int) {
	for {
		child := 2*root + 1
		if child >= n {
			return
		}
		if child+1 < n && p[child+1].ts > p[child].ts {
			child++
		}
		if p[root].ts >= p[child].ts {
			return
		}
		p[root], p[child] = p[child], p[root]
		root = child
	}
}

// Distinct returns the number of distinct lines seen.
func (t *Tracker) Distinct() int { return len(t.last) }

// Seen reports whether the line has been accessed before, i.e. holds
// a live timestamp in the tracker.
func (t *Tracker) Seen(line uint64) bool {
	_, ok := t.last[line]
	return ok
}
