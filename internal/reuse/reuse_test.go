package reuse

import (
	"testing"
	"testing/quick"

	"emissary/internal/rng"
)

// naiveDistance computes reuse distance by brute force over the access
// history: unique lines between the two accesses to `line`.
func naiveDistances(accs []uint64) []int64 {
	out := make([]int64, 0, len(accs))
	var filtered []uint64
	for i, a := range accs {
		if i > 0 && accs[i-1] == a {
			out = append(out, 0)
			continue
		}
		prev := -1
		for j := len(filtered) - 1; j >= 0; j-- {
			if filtered[j] == a {
				prev = j
				break
			}
		}
		if prev < 0 {
			out = append(out, Infinite)
		} else {
			uniq := map[uint64]bool{}
			for _, b := range filtered[prev+1:] {
				uniq[b] = true
			}
			out = append(out, int64(len(uniq)))
		}
		filtered = append(filtered, a)
	}
	return out
}

func TestTrackerBasics(t *testing.T) {
	tr := NewTracker(64)
	if d := tr.Access(1); d != Infinite {
		t.Errorf("first access = %d", d)
	}
	if d := tr.Access(1); d != 0 {
		t.Errorf("consecutive access = %d", d)
	}
	tr.Access(2)
	tr.Access(3)
	if d := tr.Access(1); d != 2 {
		t.Errorf("reuse after 2 unique lines = %d, want 2", d)
	}
}

func TestTrackerRepeatsDoNotInflate(t *testing.T) {
	tr := NewTracker(64)
	tr.Access(1)
	tr.Access(2)
	tr.Access(2)
	tr.Access(2)
	if d := tr.Access(1); d != 1 {
		t.Errorf("distance = %d, want 1 (line 2 counted once)", d)
	}
}

func TestTrackerMatchesNaive(t *testing.T) {
	if err := quick.Check(func(seq []uint8) bool {
		tr := NewTracker(32) // small capacity to force compaction
		accs := make([]uint64, len(seq))
		for i, s := range seq {
			accs[i] = uint64(s % 16)
		}
		want := naiveDistances(accs)
		for i, a := range accs {
			if got := tr.Access(a); got != want[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTrackerCompactionLongRun(t *testing.T) {
	tr := NewTracker(128)
	r := rng.NewXoshiro256(5)
	// Far more accesses than capacity; correctness spot-check at the
	// end against a known cyclic pattern.
	for i := 0; i < 10000; i++ {
		tr.Access(uint64(r.Intn(40)))
	}
	// Cyclic sweep over 30 lines: steady-state distance 29.
	for rep := 0; rep < 5; rep++ {
		for l := uint64(100); l < 130; l++ {
			tr.Access(l)
		}
	}
	for l := uint64(100); l < 110; l++ {
		if d := tr.Access(l); d != 29 {
			t.Fatalf("cyclic distance = %d, want 29", d)
		}
	}
}

func TestClassify(t *testing.T) {
	cases := map[int64]Bucket{
		0:        Short,
		99:       Short,
		100:      Mid,
		4999:     Mid,
		5000:     Long,
		1 << 30:  Long,
		Infinite: Long,
	}
	for d, want := range cases {
		if got := Classify(d); got != want {
			t.Errorf("Classify(%d) = %v, want %v", d, got, want)
		}
	}
}

func TestBucketString(t *testing.T) {
	if Short.String() != "short" || Mid.String() != "mid" || Long.String() != "long" {
		t.Error("bucket names wrong")
	}
}

func TestDistinctAndSeen(t *testing.T) {
	tr := NewTracker(16)
	tr.Access(5)
	tr.Access(6)
	tr.Access(5)
	if tr.Distinct() != 2 {
		t.Errorf("Distinct = %d", tr.Distinct())
	}
	if !tr.Seen(5) || tr.Seen(7) {
		t.Error("Seen wrong")
	}
}

func BenchmarkTrackerAccess(b *testing.B) {
	tr := NewTracker(1 << 16)
	r := rng.NewXoshiro256(1)
	for i := 0; i < b.N; i++ {
		tr.Access(uint64(r.Intn(1 << 14)))
	}
}
