// Package cache implements the simulated memory hierarchy: generic
// set-associative caches with pluggable replacement policies, and the
// four-level hierarchy of the paper's Alderlake-like machine model
// (Table 4): private L1I and L1D, a unified inclusive L2 running the
// policy under study, an exclusive victim L3 with DRRIP and SFL-bit
// MRU re-insertion, next-line prefetchers, and a fixed-latency DRAM.
package cache

import (
	"math/bits"

	"emissary/internal/policy"
	"emissary/internal/stats"
)

// Line is one cache line's bookkeeping state.
type Line struct {
	Tag      uint64
	Valid    bool
	Dirty    bool
	Instr    bool // line was filled by an instruction fetch
	Priority bool // EMISSARY P bit
	SFL      bool // served-from-last-level (L2 only): filled from L3
}

// Cache is a set-associative cache. Addresses given to the cache are
// line addresses (byte address >> lineShift); the cache derives the
// set index and tag itself.
//
// The per-access loop is allocation free and scans each set at most
// once per operation: the set geometry (shift/mask) is precomputed at
// construction, and the per-set occupancy masks handed to the policy
// are maintained incrementally as lines change rather than re-derived
// by scanning (see DESIGN.md §9, "Hot-path invariants").
type Cache struct {
	name string
	sets int
	ways int

	// Precomputed geometry: set() masks with setMask, tag() shifts by
	// setShift. Computing log2(sets) lazily on every access used to
	// dominate the lookup cost.
	setShift uint
	setMask  uint64

	lines []Line
	views []policy.LineView
	// Per-set occupancy masks, maintained by syncView: bit w of
	// valid[s] / high[s] / instr[s] mirrors lines[s*ways+w].
	valid []uint32
	high  []uint32
	instr []uint32
	pol   policy.Policy

	// Demand statistics split by request class.
	InstrStats stats.CacheCounters
	DataStats  stats.CacheCounters
	// Prefetch fills and inclusion-forced invalidations.
	PrefetchFills uint64
	BackInvals    uint64
	Writebacks    uint64
	// Priority-bit lifecycle statistics.
	Promotions    uint64 // RaisePriority calls that set a new P bit
	HighEvictions uint64 // victims that carried P=1
	HighBackInval uint64 // P=1 lines removed by Invalidate
}

// NewCache builds a cache with the given geometry and policy. Sets
// must be a power of two: set() masks with sets-1, so any other
// geometry would silently alias distinct sets onto the same index and
// corrupt every downstream statistic. Way counts are bounded by the
// 32-bit occupancy masks (matching policy.checkGeometry).
func NewCache(name string, sets, ways int, pol policy.Policy) *Cache {
	if sets <= 0 || sets&(sets-1) != 0 {
		violated("%s: sets must be a power of two, got %d", name, sets)
	}
	if ways <= 0 || ways > 32 {
		violated("%s: bad way count %d", name, ways)
	}
	return &Cache{
		name:     name,
		sets:     sets,
		ways:     ways,
		setShift: uint(log2(sets)),
		setMask:  uint64(sets - 1),
		lines:    make([]Line, sets*ways),
		views:    make([]policy.LineView, sets*ways),
		valid:    make([]uint32, sets),
		high:     make([]uint32, sets),
		instr:    make([]uint32, sets),
		pol:      pol,
	}
}

// Reset returns the cache to its post-construction state — every line
// invalid, the per-set occupancy masks empty, every statistic zero —
// and swaps in the (already reset) replacement policy for the next
// run. Geometry is untouched: callers guarantee the new run uses the
// same sets/ways (Hierarchy.Reset checks and falls back to fresh
// construction otherwise). It allocates nothing, which is what makes
// warm-pool reuse a pure win over reconstruction.
//
//vet:hot
func (c *Cache) Reset(pol policy.Policy) {
	clear(c.lines)
	clear(c.views)
	clear(c.valid)
	clear(c.high)
	clear(c.instr)
	c.pol = pol
	c.InstrStats = stats.CacheCounters{}
	c.DataStats = stats.CacheCounters{}
	c.PrefetchFills = 0
	c.BackInvals = 0
	c.Writebacks = 0
	c.Promotions = 0
	c.HighEvictions = 0
	c.HighBackInval = 0
}

// Name returns the cache's name.
func (c *Cache) Name() string { return c.name }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// Policy returns the replacement policy.
func (c *Cache) Policy() policy.Policy { return c.pol }

func (c *Cache) set(lineAddr uint64) int {
	return int(lineAddr & c.setMask)
}

func (c *Cache) tag(lineAddr uint64) uint64 {
	return lineAddr >> c.setShift
}

func log2(n int) int {
	k := 0
	for 1<<uint(k) < n {
		k++
	}
	return k
}

// locate derives the set geometry once and scans the set once,
// returning the set index, the set's base offset into the line
// arrays, and the way holding lineAddr (-1 on miss). Every lookup
// entry point funnels through here so no operation derives the set or
// tag twice, and none scans a set more than once.
//
//vet:hot
func (c *Cache) locate(lineAddr uint64) (s, base, way int) {
	s = int(lineAddr & c.setMask)
	base = s * c.ways
	t := lineAddr >> c.setShift
	set := c.lines[base : base+c.ways]
	for w := range set {
		if set[w].Valid && set[w].Tag == t {
			return s, base, w
		}
	}
	return s, base, -1
}

// find returns the way holding lineAddr, or -1.
func (c *Cache) find(lineAddr uint64) int {
	_, _, w := c.locate(lineAddr)
	return w
}

// Contains reports presence without side effects.
func (c *Cache) Contains(lineAddr uint64) bool { return c.find(lineAddr) >= 0 }

// Probe reports presence and the line state without side effects.
func (c *Cache) Probe(lineAddr uint64) (Line, bool) {
	if _, base, w := c.locate(lineAddr); w >= 0 {
		return c.lines[base+w], true
	}
	return Line{}, false
}

// Access performs a demand access: on hit it updates recency and
// statistics and returns true; on miss it only counts the miss.
// Callers fill the line separately (possibly later) via Fill.
//
//vet:hot
func (c *Cache) Access(lineAddr uint64, instr bool) bool {
	s, base, w := c.locate(lineAddr)
	counters := &c.DataStats
	if instr {
		counters = &c.InstrStats
	}
	if w < 0 {
		counters.Misses++
		return false
	}
	counters.Hits++
	c.pol.OnHit(s, w, c.setView(s, base))
	return true
}

// Touch updates recency on a line known to be present, without
// counting statistics (used when a store hits a line a load already
// touched this cycle, and similar bookkeeping).
func (c *Cache) Touch(lineAddr uint64) {
	if s, base, w := c.locate(lineAddr); w >= 0 {
		c.pol.OnHit(s, w, c.setView(s, base))
	}
}

// MarkDirty sets the dirty bit on a present line.
func (c *Cache) MarkDirty(lineAddr uint64) {
	if _, base, w := c.locate(lineAddr); w >= 0 {
		c.lines[base+w].Dirty = true
	}
}

// setView assembles the policy's view of set s: the line metadata
// slice plus the incrementally maintained occupancy masks. It
// allocates nothing — the slice header aliases the backing array.
func (c *Cache) setView(s, base int) policy.SetView {
	return policy.SetView{
		Lines: c.views[base : base+c.ways],
		Valid: c.valid[s],
		High:  c.high[s],
		Instr: c.instr[s],
	}
}

// syncView refreshes the policy-visible metadata and occupancy masks
// for one line. Every mutation of c.lines funnels through here, which
// is what keeps the masks trustworthy without per-access rescans.
func (c *Cache) syncView(s, w int) {
	l := &c.lines[s*c.ways+w]
	c.views[s*c.ways+w] = policy.LineView{
		Valid:    l.Valid,
		Priority: l.Priority,
		Instr:    l.Instr,
	}
	bit := uint32(1) << uint(w)
	if l.Valid {
		c.valid[s] |= bit
	} else {
		c.valid[s] &^= bit
	}
	if l.Valid && l.Priority {
		c.high[s] |= bit
	} else {
		c.high[s] &^= bit
	}
	if l.Valid && l.Instr {
		c.instr[s] |= bit
	} else {
		c.instr[s] &^= bit
	}
}

// FillSpec describes the line being installed by Fill.
type FillSpec struct {
	Instr    bool
	Priority bool // selection outcome (M-treatment) or inherited P bit
	SFL      bool
	Dirty    bool
	Prefetch bool // fill initiated by a prefetcher (statistics only)
}

// Eviction describes a line displaced by Fill, when Victim is true.
type Eviction struct {
	Victim   bool
	LineAddr uint64
	Line     Line
}

// Fill installs lineAddr, evicting a victim if the set is full.
// If the line is already present, its metadata is refreshed instead
// (a fill racing a fill; the priority bit is only ever raised).
//
//vet:hot
func (c *Cache) Fill(lineAddr uint64, spec FillSpec) Eviction {
	s := int(lineAddr & c.setMask)
	base := s * c.ways
	t := lineAddr >> c.setShift
	if spec.Prefetch {
		c.PrefetchFills++
	}

	// One pass records both the hit way and the first invalid way;
	// Fill used to scan the set twice (a find, then an invalid-way
	// search).
	hit, spare := -1, -1
	set := c.lines[base : base+c.ways]
	for w := range set {
		if !set[w].Valid {
			if spare < 0 {
				spare = w
			}
			continue
		}
		if set[w].Tag == t {
			hit = w
			break
		}
	}

	if hit >= 0 {
		l := &c.lines[base+hit]
		l.Dirty = l.Dirty || spec.Dirty
		l.Priority = l.Priority || spec.Priority
		c.syncView(s, hit)
		return Eviction{}
	}

	way := spare
	var ev Eviction
	if way < 0 {
		incoming := policy.LineView{Valid: true, Priority: spec.Priority, Instr: spec.Instr}
		way = c.pol.Victim(s, c.setView(s, base), incoming)
		if way < 0 || way >= c.ways {
			violated("%s: policy %s returned bad victim %d", c.name, c.pol.Name(), way)
		}
		old := c.lines[base+way]
		ev = Eviction{Victim: true, LineAddr: c.lineAddr(s, old.Tag), Line: old}
		if old.Dirty {
			c.Writebacks++
		}
		if old.Priority {
			c.HighEvictions++
		}
		c.pol.OnInvalidate(s, way)
	}

	c.lines[base+way] = Line{
		Tag:      t,
		Valid:    true,
		Dirty:    spec.Dirty,
		Instr:    spec.Instr,
		Priority: spec.Priority,
		SFL:      spec.SFL,
	}
	c.syncView(s, way)
	c.pol.OnFill(s, way, c.setView(s, base))
	return ev
}

// lineAddr reconstructs a line address from set and tag.
func (c *Cache) lineAddr(s int, tag uint64) uint64 {
	return tag<<c.setShift | uint64(s)
}

// Invalidate removes a line (back-invalidation / exclusive-move),
// returning its state.
func (c *Cache) Invalidate(lineAddr uint64) (Line, bool) {
	s, base, w := c.locate(lineAddr)
	if w < 0 {
		return Line{}, false
	}
	l := c.lines[base+w]
	if l.Priority {
		c.HighBackInval++
	}
	c.lines[base+w] = Line{}
	c.syncView(s, w)
	c.pol.OnInvalidate(s, w)
	c.BackInvals++
	return l, true
}

// RaisePriority sets the P bit on a present line (an L1I eviction
// communicating its priority to the L2 copy). The bit is never
// lowered while the line is resident.
func (c *Cache) RaisePriority(lineAddr uint64) {
	s, base, w := c.locate(lineAddr)
	if w < 0 {
		return
	}
	l := &c.lines[base+w]
	if l.Priority {
		return
	}
	l.Priority = true
	c.Promotions++
	c.syncView(s, w)
	c.pol.OnPriorityUpdate(s, w, c.setView(s, base))
}

// PromoteMRU makes a present line the most recently used of its class
// (used for the SFL-bit MRU insertion into L3).
func (c *Cache) PromoteMRU(lineAddr uint64) {
	if s, base, w := c.locate(lineAddr); w >= 0 {
		c.pol.OnHit(s, w, c.setView(s, base))
	}
}

// ResetPriorities clears every P bit (§6's periodic reset mechanism).
func (c *Cache) ResetPriorities() {
	for i := range c.lines {
		if c.lines[i].Priority {
			c.lines[i].Priority = false
			c.views[i].Priority = false
		}
	}
	// No P bit survives, so the high-priority occupancy masks are
	// simply zero.
	for s := range c.high {
		c.high[s] = 0
	}
}

// PriorityCensus returns, for each possible count 0..ways, how many
// sets currently hold that many high-priority lines (Figure 8).
func (c *Cache) PriorityCensus() []int {
	return c.FillPriorityCensus(make([]int, c.ways+1))
}

// FillPriorityCensus is PriorityCensus into caller-owned storage: buf
// must hold at least ways+1 entries; the census is written into its
// first ways+1 slots (zeroed first) and that prefix is returned. Warm
// sweeps use it to keep the census off the per-job allocation path.
//
//vet:hot
func (c *Cache) FillPriorityCensus(buf []int) []int {
	census := buf[:c.ways+1]
	clear(census)
	for s := 0; s < c.sets; s++ {
		census[bits.OnesCount32(c.high[s])]++
	}
	return census
}

// ValidLines counts resident lines, split by class.
func (c *Cache) ValidLines() (instr, data int) {
	for s := 0; s < c.sets; s++ {
		instr += bits.OnesCount32(c.instr[s])
		data += bits.OnesCount32(c.valid[s] &^ c.instr[s])
	}
	return
}
