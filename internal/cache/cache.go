// Package cache implements the simulated memory hierarchy: generic
// set-associative caches with pluggable replacement policies, and the
// four-level hierarchy of the paper's Alderlake-like machine model
// (Table 4): private L1I and L1D, a unified inclusive L2 running the
// policy under study, an exclusive victim L3 with DRRIP and SFL-bit
// MRU re-insertion, next-line prefetchers, and a fixed-latency DRAM.
package cache

import (
	"emissary/internal/policy"
	"emissary/internal/stats"
)

// Line is one cache line's bookkeeping state.
type Line struct {
	Tag      uint64
	Valid    bool
	Dirty    bool
	Instr    bool // line was filled by an instruction fetch
	Priority bool // EMISSARY P bit
	SFL      bool // served-from-last-level (L2 only): filled from L3
}

// Cache is a set-associative cache. Addresses given to the cache are
// line addresses (byte address >> lineShift); the cache derives the
// set index and tag itself.
type Cache struct {
	name string
	sets int
	ways int

	lines []Line
	views []policy.LineView
	pol   policy.Policy

	// Demand statistics split by request class.
	InstrStats stats.CacheCounters
	DataStats  stats.CacheCounters
	// Prefetch fills and inclusion-forced invalidations.
	PrefetchFills uint64
	BackInvals    uint64
	Writebacks    uint64
	// Priority-bit lifecycle statistics.
	Promotions    uint64 // RaisePriority calls that set a new P bit
	HighEvictions uint64 // victims that carried P=1
	HighBackInval uint64 // P=1 lines removed by Invalidate
}

// NewCache builds a cache with the given geometry and policy. Sets
// must be a power of two.
func NewCache(name string, sets, ways int, pol policy.Policy) *Cache {
	if sets <= 0 || sets&(sets-1) != 0 {
		violated("%s: sets must be a power of two, got %d", name, sets)
	}
	if ways <= 0 || ways > 32 {
		violated("%s: bad way count %d", name, ways)
	}
	return &Cache{
		name:  name,
		sets:  sets,
		ways:  ways,
		lines: make([]Line, sets*ways),
		views: make([]policy.LineView, sets*ways),
		pol:   pol,
	}
}

// Name returns the cache's name.
func (c *Cache) Name() string { return c.name }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// Policy returns the replacement policy.
func (c *Cache) Policy() policy.Policy { return c.pol }

func (c *Cache) set(lineAddr uint64) int {
	return int(lineAddr & uint64(c.sets-1))
}

func (c *Cache) tag(lineAddr uint64) uint64 {
	return lineAddr >> uint(log2(c.sets))
}

func log2(n int) int {
	k := 0
	for 1<<uint(k) < n {
		k++
	}
	return k
}

// find returns the way holding lineAddr, or -1.
func (c *Cache) find(lineAddr uint64) int {
	s, t := c.set(lineAddr), c.tag(lineAddr)
	base := s * c.ways
	for w := 0; w < c.ways; w++ {
		if c.lines[base+w].Valid && c.lines[base+w].Tag == t {
			return w
		}
	}
	return -1
}

// Contains reports presence without side effects.
func (c *Cache) Contains(lineAddr uint64) bool { return c.find(lineAddr) >= 0 }

// Probe reports presence and the line state without side effects.
func (c *Cache) Probe(lineAddr uint64) (Line, bool) {
	if w := c.find(lineAddr); w >= 0 {
		return c.lines[c.set(lineAddr)*c.ways+w], true
	}
	return Line{}, false
}

// Access performs a demand access: on hit it updates recency and
// statistics and returns true; on miss it only counts the miss.
// Callers fill the line separately (possibly later) via Fill.
func (c *Cache) Access(lineAddr uint64, instr bool) bool {
	w := c.find(lineAddr)
	counters := &c.DataStats
	if instr {
		counters = &c.InstrStats
	}
	if w < 0 {
		counters.Misses++
		return false
	}
	counters.Hits++
	s := c.set(lineAddr)
	c.pol.OnHit(s, w, c.setViews(s))
	return true
}

// Touch updates recency on a line known to be present, without
// counting statistics (used when a store hits a line a load already
// touched this cycle, and similar bookkeeping).
func (c *Cache) Touch(lineAddr uint64) {
	if w := c.find(lineAddr); w >= 0 {
		s := c.set(lineAddr)
		c.pol.OnHit(s, w, c.setViews(s))
	}
}

// MarkDirty sets the dirty bit on a present line.
func (c *Cache) MarkDirty(lineAddr uint64) {
	if w := c.find(lineAddr); w >= 0 {
		c.lines[c.set(lineAddr)*c.ways+w].Dirty = true
	}
}

func (c *Cache) setViews(s int) []policy.LineView {
	return c.views[s*c.ways : (s+1)*c.ways]
}

func (c *Cache) syncView(s, w int) {
	l := &c.lines[s*c.ways+w]
	c.views[s*c.ways+w] = policy.LineView{
		Valid:    l.Valid,
		Priority: l.Priority,
		Instr:    l.Instr,
	}
}

// FillSpec describes the line being installed by Fill.
type FillSpec struct {
	Instr    bool
	Priority bool // selection outcome (M-treatment) or inherited P bit
	SFL      bool
	Dirty    bool
	Prefetch bool // fill initiated by a prefetcher (statistics only)
}

// Eviction describes a line displaced by Fill, when Victim is true.
type Eviction struct {
	Victim   bool
	LineAddr uint64
	Line     Line
}

// Fill installs lineAddr, evicting a victim if the set is full.
// If the line is already present, its metadata is refreshed instead
// (a fill racing a fill; the priority bit is only ever raised).
func (c *Cache) Fill(lineAddr uint64, spec FillSpec) Eviction {
	s := c.set(lineAddr)
	base := s * c.ways
	if spec.Prefetch {
		c.PrefetchFills++
	}

	if w := c.find(lineAddr); w >= 0 {
		l := &c.lines[base+w]
		l.Dirty = l.Dirty || spec.Dirty
		l.Priority = l.Priority || spec.Priority
		c.syncView(s, w)
		return Eviction{}
	}

	// Prefer an invalid way.
	way := -1
	for w := 0; w < c.ways; w++ {
		if !c.lines[base+w].Valid {
			way = w
			break
		}
	}
	var ev Eviction
	if way < 0 {
		incoming := policy.LineView{Valid: true, Priority: spec.Priority, Instr: spec.Instr}
		way = c.pol.Victim(s, c.setViews(s), incoming)
		if way < 0 || way >= c.ways {
			violated("%s: policy %s returned bad victim %d", c.name, c.pol.Name(), way)
		}
		old := c.lines[base+way]
		ev = Eviction{Victim: true, LineAddr: c.lineAddr(s, old.Tag), Line: old}
		if old.Dirty {
			c.Writebacks++
		}
		if old.Priority {
			c.HighEvictions++
		}
		c.pol.OnInvalidate(s, way)
	}

	c.lines[base+way] = Line{
		Tag:      c.tag(lineAddr),
		Valid:    true,
		Dirty:    spec.Dirty,
		Instr:    spec.Instr,
		Priority: spec.Priority,
		SFL:      spec.SFL,
	}
	c.syncView(s, way)
	c.pol.OnFill(s, way, c.setViews(s))
	return ev
}

// lineAddr reconstructs a line address from set and tag.
func (c *Cache) lineAddr(s int, tag uint64) uint64 {
	return tag<<uint(log2(c.sets)) | uint64(s)
}

// Invalidate removes a line (back-invalidation / exclusive-move),
// returning its state.
func (c *Cache) Invalidate(lineAddr uint64) (Line, bool) {
	w := c.find(lineAddr)
	if w < 0 {
		return Line{}, false
	}
	s := c.set(lineAddr)
	l := c.lines[s*c.ways+w]
	if l.Priority {
		c.HighBackInval++
	}
	c.lines[s*c.ways+w] = Line{}
	c.syncView(s, w)
	c.pol.OnInvalidate(s, w)
	c.BackInvals++
	return l, true
}

// RaisePriority sets the P bit on a present line (an L1I eviction
// communicating its priority to the L2 copy). The bit is never
// lowered while the line is resident.
func (c *Cache) RaisePriority(lineAddr uint64) {
	w := c.find(lineAddr)
	if w < 0 {
		return
	}
	s := c.set(lineAddr)
	l := &c.lines[s*c.ways+w]
	if l.Priority {
		return
	}
	l.Priority = true
	c.Promotions++
	c.syncView(s, w)
	c.pol.OnPriorityUpdate(s, w, c.setViews(s))
}

// PromoteMRU makes a present line the most recently used of its class
// (used for the SFL-bit MRU insertion into L3).
func (c *Cache) PromoteMRU(lineAddr uint64) {
	if w := c.find(lineAddr); w >= 0 {
		s := c.set(lineAddr)
		c.pol.OnHit(s, w, c.setViews(s))
	}
}

// ResetPriorities clears every P bit (§6's periodic reset mechanism).
func (c *Cache) ResetPriorities() {
	for i := range c.lines {
		if c.lines[i].Priority {
			c.lines[i].Priority = false
			c.views[i].Priority = false
		}
	}
}

// PriorityCensus returns, for each possible count 0..ways, how many
// sets currently hold that many high-priority lines (Figure 8).
func (c *Cache) PriorityCensus() []int {
	census := make([]int, c.ways+1)
	for s := 0; s < c.sets; s++ {
		n := 0
		base := s * c.ways
		for w := 0; w < c.ways; w++ {
			if c.lines[base+w].Valid && c.lines[base+w].Priority {
				n++
			}
		}
		census[n]++
	}
	return census
}

// ValidLines counts resident lines, split by class.
func (c *Cache) ValidLines() (instr, data int) {
	for i := range c.lines {
		if !c.lines[i].Valid {
			continue
		}
		if c.lines[i].Instr {
			instr++
		} else {
			data++
		}
	}
	return
}
