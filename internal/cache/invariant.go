// Invariant violations in the cache model are programming errors, not
// runtime conditions: bad geometry at construction or a policy
// returning an out-of-range victim means the simulation state can no
// longer be trusted, so the only correct response is to panic. All
// such panics funnel through violated — the single sanctioned panic
// site in this package (the emissary-lint bare-panic rule enforces
// this). Recoverable failures (truncated traces, budget exhaustion)
// are typed errors in internal/sim and internal/pipeline instead.

package cache

import "fmt"

// violated reports an internal invariant violation.
func violated(format string, args ...any) {
	panic("cache: " + fmt.Sprintf(format, args...))
}
