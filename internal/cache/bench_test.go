package cache_test

import (
	"testing"

	"emissary/internal/cache"
	"emissary/internal/hotbench"
)

// The benchmark configuration — geometry, policy list, address
// stream — lives in internal/hotbench so these go-test benchmarks and
// the BENCH_hotpath.json emitter (cmd/emissary-bench) measure exactly
// the same workload.

func newBenchCache(b *testing.B, policyText string) *cache.Cache {
	b.Helper()
	c, err := hotbench.New(policyText)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func BenchmarkAccess(b *testing.B) {
	addrs := hotbench.Addrs(1 << 16)
	for _, pol := range hotbench.Policies {
		b.Run(pol, func(b *testing.B) {
			c := newBenchCache(b, pol)
			hotbench.Warm(c, addrs)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a := addrs[i&(len(addrs)-1)]
				c.Access(a, a%2 == 0)
			}
		})
	}
}

func BenchmarkFill(b *testing.B) {
	addrs := hotbench.Addrs(1 << 16)
	for _, pol := range hotbench.Policies {
		b.Run(pol, func(b *testing.B) {
			c := newBenchCache(b, pol)
			hotbench.Warm(c, addrs)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a := addrs[i&(len(addrs)-1)]
				c.Fill(a, cache.FillSpec{Instr: a%2 == 0, Priority: a%8 == 0})
			}
		})
	}
}

// TestHotPathNoAllocs is the allocation guard the bench trajectory
// relies on: Access, Touch, MarkDirty and Fill must stay allocation
// free for every policy family, or ns/access numbers become garbage
// collection noise. Run under every `go test` (not only -bench) so a
// regression fails CI immediately.
func TestHotPathNoAllocs(t *testing.T) {
	addrs := hotbench.Addrs(1 << 12)
	for _, pol := range hotbench.Policies {
		c, err := hotbench.New(pol)
		if err != nil {
			t.Fatal(err)
		}
		hotbench.Warm(c, addrs)
		i := 0
		next := func() uint64 {
			a := addrs[i&(len(addrs)-1)]
			i++
			return a
		}
		if n := testing.AllocsPerRun(200, func() {
			a := next()
			c.Access(a, a%2 == 0)
		}); n != 0 {
			t.Errorf("%s: Access allocates %.1f per op", pol, n)
		}
		if n := testing.AllocsPerRun(200, func() {
			a := next()
			c.Fill(a, cache.FillSpec{Instr: a%2 == 0, Priority: a%8 == 0})
		}); n != 0 {
			t.Errorf("%s: Fill allocates %.1f per op", pol, n)
		}
		if n := testing.AllocsPerRun(200, func() {
			c.Touch(next())
			c.MarkDirty(next())
		}); n != 0 {
			t.Errorf("%s: Touch/MarkDirty allocate %.1f per op", pol, n)
		}
	}
}
