package cache

import (
	"testing"
	"testing/quick"

	"emissary/internal/core"
	"emissary/internal/policy"
)

func newTestCache(sets, ways int) *Cache {
	pol := policy.NewRecency("LRU", policy.NewTrueLRU(sets, ways))
	return NewCache("test", sets, ways, pol)
}

func TestCacheHitMissCounting(t *testing.T) {
	c := newTestCache(4, 2)
	if c.Access(0x100, true) {
		t.Fatal("cold access hit")
	}
	c.Fill(0x100, FillSpec{Instr: true})
	if !c.Access(0x100, true) {
		t.Fatal("access after fill missed")
	}
	if c.InstrStats.Misses != 1 || c.InstrStats.Hits != 1 {
		t.Errorf("instr stats = %+v", c.InstrStats)
	}
	if c.DataStats.Accesses() != 0 {
		t.Errorf("data stats moved: %+v", c.DataStats)
	}
}

func TestCacheSetConflictEviction(t *testing.T) {
	c := newTestCache(4, 2)
	// Three lines mapping to set 1.
	a, b, d := uint64(1), uint64(5), uint64(9)
	c.Fill(a, FillSpec{})
	c.Fill(b, FillSpec{})
	ev := c.Fill(d, FillSpec{})
	if !ev.Victim {
		t.Fatal("no victim on full set")
	}
	if ev.LineAddr != a {
		t.Errorf("victim = %#x, want %#x (LRU)", ev.LineAddr, a)
	}
	if c.Contains(a) {
		t.Error("evicted line still present")
	}
	if !c.Contains(b) || !c.Contains(d) {
		t.Error("resident lines missing")
	}
}

func TestCacheFillIdempotentRefreshes(t *testing.T) {
	c := newTestCache(4, 2)
	c.Fill(0x40, FillSpec{})
	ev := c.Fill(0x40, FillSpec{Dirty: true, Priority: true})
	if ev.Victim {
		t.Error("refill of present line evicted something")
	}
	l, ok := c.Probe(0x40)
	if !ok || !l.Dirty || !l.Priority {
		t.Errorf("refill did not merge metadata: %+v", l)
	}
}

func TestCacheWritebackCounting(t *testing.T) {
	c := newTestCache(1, 1)
	c.Fill(0, FillSpec{Dirty: true})
	c.Fill(1, FillSpec{})
	if c.Writebacks != 1 {
		t.Errorf("Writebacks = %d, want 1", c.Writebacks)
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := newTestCache(4, 2)
	c.Fill(0x7, FillSpec{Instr: true, Priority: true})
	l, ok := c.Invalidate(0x7)
	if !ok || !l.Priority || !l.Instr {
		t.Errorf("Invalidate returned %+v, %v", l, ok)
	}
	if c.Contains(0x7) {
		t.Error("line present after invalidate")
	}
	if _, ok := c.Invalidate(0x7); ok {
		t.Error("double invalidate succeeded")
	}
}

func TestCacheRaisePriority(t *testing.T) {
	c := newTestCache(4, 2)
	c.Fill(0x3, FillSpec{Instr: true})
	c.RaisePriority(0x3)
	if l, _ := c.Probe(0x3); !l.Priority {
		t.Error("RaisePriority did not set P")
	}
	// Raising priority on an absent line is a no-op.
	c.RaisePriority(0x999)
}

func TestCacheResetPriorities(t *testing.T) {
	c := newTestCache(4, 2)
	c.Fill(0x1, FillSpec{Instr: true, Priority: true})
	c.Fill(0x2, FillSpec{Instr: true, Priority: true})
	c.ResetPriorities()
	for _, a := range []uint64{1, 2} {
		if l, _ := c.Probe(a); l.Priority {
			t.Errorf("line %#x still high-priority after reset", a)
		}
	}
}

func TestCachePriorityCensus(t *testing.T) {
	c := newTestCache(2, 4)
	// Set 0: two high-priority lines; set 1: none.
	c.Fill(0, FillSpec{Priority: true})
	c.Fill(2, FillSpec{Priority: true})
	c.Fill(4, FillSpec{})
	c.Fill(1, FillSpec{})
	census := c.PriorityCensus()
	if census[0] != 1 || census[2] != 1 {
		t.Errorf("census = %v, want one set with 0 and one with 2", census)
	}
}

func TestCacheValidLines(t *testing.T) {
	c := newTestCache(4, 2)
	c.Fill(0, FillSpec{Instr: true})
	c.Fill(1, FillSpec{})
	c.Fill(2, FillSpec{Instr: true})
	i, d := c.ValidLines()
	if i != 2 || d != 1 {
		t.Errorf("ValidLines = %d,%d want 2,1", i, d)
	}
}

func TestCacheGeometryPanics(t *testing.T) {
	for _, bad := range []struct{ sets, ways int }{{0, 2}, {3, 2}, {4, 0}, {4, 33}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewCache(%d,%d) did not panic", bad.sets, bad.ways)
				}
			}()
			NewCache("bad", bad.sets, bad.ways, policy.NewRecency("LRU", policy.NewTrueLRU(1, 1)))
		}()
	}
}

func TestCachePropertyNoDuplicateTags(t *testing.T) {
	if err := quick.Check(func(addrs []uint16) bool {
		c := newTestCache(8, 4)
		for _, a := range addrs {
			c.Fill(uint64(a), FillSpec{})
		}
		// No line address may appear twice.
		seen := map[uint64]bool{}
		for s := 0; s < c.Sets(); s++ {
			for w := 0; w < c.Ways(); w++ {
				l := c.lines[s*c.ways+w]
				if !l.Valid {
					continue
				}
				addr := c.lineAddr(s, l.Tag)
				if seen[addr] {
					return false
				}
				seen[addr] = true
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestCachePropertyFillThenContains(t *testing.T) {
	if err := quick.Check(func(a uint32) bool {
		c := newTestCache(16, 2)
		c.Fill(uint64(a), FillSpec{})
		return c.Contains(uint64(a))
	}, nil); err != nil {
		t.Error(err)
	}
}

func defaultHierarchy(l2 string) *Hierarchy {
	cfg := DefaultConfig(core.MustParsePolicy(l2))
	return NewHierarchy(cfg)
}

func TestHierarchyColdFetchFromMemory(t *testing.T) {
	h := defaultHierarchy("TPLRU")
	res := h.ProbeFetch(0x1000)
	if res.Source != SrcMem || !res.NeedFill {
		t.Fatalf("cold fetch: %+v", res)
	}
	if res.Latency != h.Config().MemLatency {
		t.Errorf("latency = %d, want %d", res.Latency, h.Config().MemLatency)
	}
	h.CompleteFetch(0x1000, res.Source, false)
	if !h.L1I.Contains(0x1000) || !h.L2.Contains(0x1000) {
		t.Error("line not installed in L1I+L2")
	}
	if h.L3.Contains(0x1000) {
		t.Error("exclusive L3 holds a line resident in L2")
	}
	// Second access hits L1I.
	res = h.ProbeFetch(0x1000)
	if res.Source != SrcL1 || res.NeedFill {
		t.Errorf("warm fetch: %+v", res)
	}
}

func TestHierarchyL2HitPath(t *testing.T) {
	h := defaultHierarchy("TPLRU")
	r := h.ProbeFetch(0x2000)
	h.CompleteFetch(0x2000, r.Source, false)
	// Evict from L1I by filling conflicting lines (L1I: 64 sets, 8 ways).
	for i := 1; i <= 8; i++ {
		addr := 0x2000 + uint64(i*64)
		rr := h.ProbeFetch(addr)
		h.CompleteFetch(addr, rr.Source, false)
	}
	if h.L1I.Contains(0x2000) {
		t.Fatal("line still in L1I; conflict fills insufficient")
	}
	res := h.ProbeFetch(0x2000)
	if res.Source != SrcL2 {
		t.Fatalf("expected L2 hit, got %v", res.Source)
	}
	if res.Latency != h.Config().L2.HitLatency {
		t.Errorf("latency = %d", res.Latency)
	}
}

func TestHierarchyPriorityFlowL1IEvictionToL2(t *testing.T) {
	h := defaultHierarchy("P(8):S")
	r := h.ProbeFetch(0x3000)
	h.CompleteFetch(0x3000, r.Source, true) // starved: high priority
	if l, _ := h.L1I.Probe(0x3000); !l.Priority {
		t.Fatal("L1I line did not get P=1")
	}
	// EMISSARY defers the L2 bit until L1I eviction.
	if l, _ := h.L2.Probe(0x3000); l.Priority {
		t.Fatal("L2 line got P=1 before L1I eviction")
	}
	// Force L1I eviction via conflicting fills.
	for i := 1; i <= 8; i++ {
		addr := 0x3000 + uint64(i*64)
		rr := h.ProbeFetch(addr)
		h.CompleteFetch(addr, rr.Source, false)
	}
	if h.L1I.Contains(0x3000) {
		t.Fatal("line still in L1I")
	}
	if l, ok := h.L2.Probe(0x3000); !ok || !l.Priority {
		t.Errorf("L2 copy P bit after L1I eviction: present=%v line=%+v", ok, l)
	}
}

func TestHierarchyMInsertGetsPriorityAtFill(t *testing.T) {
	h := defaultHierarchy("M:S")
	r := h.ProbeFetch(0x4000)
	h.CompleteFetch(0x4000, r.Source, true)
	if l, ok := h.L2.Probe(0x4000); !ok || !l.Priority {
		t.Errorf("M-treatment L2 fill priority: %+v %v", l, ok)
	}
}

func TestHierarchyInheritedPriorityOnRefetch(t *testing.T) {
	h := defaultHierarchy("P(8):S")
	r := h.ProbeFetch(0x5000)
	h.CompleteFetch(0x5000, r.Source, true)
	// Evict from L1I so the P bit lands in L2.
	for i := 1; i <= 8; i++ {
		addr := 0x5000 + uint64(i*64)
		rr := h.ProbeFetch(addr)
		h.CompleteFetch(addr, rr.Source, false)
	}
	// Refetch: L2 hit; the L1I copy must inherit P=1 even though this
	// miss did not starve.
	res := h.ProbeFetch(0x5000)
	if res.Source != SrcL2 {
		t.Fatalf("source = %v, want L2", res.Source)
	}
	h.CompleteFetch(0x5000, res.Source, false)
	if l, _ := h.L1I.Probe(0x5000); !l.Priority {
		t.Error("refetched L1I copy did not inherit P=1")
	}
}

func TestHierarchyExclusiveL3VictimFlow(t *testing.T) {
	cfg := DefaultConfig(core.MustParsePolicy("TPLRU"))
	cfg.L1I.NLP = false
	cfg.L1D.NLP = false
	cfg.L2.NLP = false
	cfg.L3.NLP = false
	h := NewHierarchy(cfg)
	// Fill 17 lines into one L2 set (1024 sets): line addresses k*1024.
	var first uint64 = 0
	for i := 0; i <= 16; i++ {
		addr := uint64(i) * 1024
		r := h.ProbeFetch(addr)
		h.CompleteFetch(addr, r.Source, false)
	}
	if h.L2.Contains(first) {
		t.Fatal("LRU line survived 16 conflicting fills")
	}
	if !h.L3.Contains(first) {
		t.Fatal("L2 victim not installed in exclusive L3")
	}
	// Refetching moves it back L3 -> L2 with SFL set.
	res := h.ProbeFetch(first)
	if res.Source != SrcL3 {
		t.Fatalf("source = %v, want L3", res.Source)
	}
	h.CompleteFetch(first, res.Source, false)
	if h.L3.Contains(first) {
		t.Error("line still in L3 after exclusive move to L2")
	}
	if l, ok := h.L2.Probe(first); !ok || !l.SFL {
		t.Errorf("L2 copy SFL: %+v %v", l, ok)
	}
}

func TestHierarchyInclusionBackInvalidation(t *testing.T) {
	cfg := DefaultConfig(core.MustParsePolicy("TPLRU"))
	cfg.L1I.NLP = false
	cfg.L2.NLP = false
	cfg.L3.NLP = false
	h := NewHierarchy(cfg)
	// Land a line in L1I+L2, then evict it from L2 with conflicting
	// fills; inclusion must remove the L1I copy.
	r := h.ProbeFetch(0)
	h.CompleteFetch(0, r.Source, false)
	for i := 1; i <= 16; i++ {
		addr := uint64(i) * 1024
		rr := h.ProbeFetch(addr)
		h.CompleteFetch(addr, rr.Source, false)
	}
	if h.L2.Contains(0) {
		t.Fatal("line survived in L2")
	}
	if h.L1I.Contains(0) {
		t.Error("inclusion violated: L1I holds a line L2 evicted")
	}
}

func TestHierarchyDataPath(t *testing.T) {
	h := defaultHierarchy("TPLRU")
	lat := h.AccessData(0x9000, false)
	if lat != h.Config().MemLatency {
		t.Errorf("cold load latency = %d", lat)
	}
	if !h.L1D.Contains(0x9000) || !h.L2.Contains(0x9000) {
		t.Error("data line not installed")
	}
	lat = h.AccessData(0x9000, true)
	if lat != h.Config().L1D.HitLatency {
		t.Errorf("warm store latency = %d", lat)
	}
	if l, _ := h.L1D.Probe(0x9000); !l.Dirty {
		t.Error("store did not dirty the line")
	}
}

func TestHierarchyIdealL2IMode(t *testing.T) {
	cfg := DefaultConfig(core.MustParsePolicy("TPLRU"))
	cfg.IdealL2I = true
	cfg.L2.NLP = false
	cfg.L1I.NLP = false
	cfg.L3.NLP = false
	h := NewHierarchy(cfg)
	// Compulsory miss: full memory latency.
	r := h.ProbeFetch(0)
	if r.Latency != cfg.MemLatency {
		t.Errorf("compulsory miss latency = %d, want %d", r.Latency, cfg.MemLatency)
	}
	h.CompleteFetch(0, r.Source, false)
	// Evict from L2 (and so L1I) with 16 conflicting fills.
	for i := 1; i <= 16; i++ {
		addr := uint64(i) * 1024
		rr := h.ProbeFetch(addr)
		h.CompleteFetch(addr, rr.Source, false)
	}
	if h.L2.Contains(0) {
		t.Fatal("line survived in L2")
	}
	res := h.ProbeFetch(0)
	if res.Source == SrcL1 || res.Source == SrcL2 {
		t.Fatalf("expected L2 miss, got %v", res.Source)
	}
	if res.Latency != cfg.L2.HitLatency {
		t.Errorf("ideal capacity-miss latency = %d, want %d", res.Latency, cfg.L2.HitLatency)
	}
}

func TestHierarchyNLPInstrPrefetch(t *testing.T) {
	h := defaultHierarchy("TPLRU")
	r := h.ProbeFetch(0x100)
	h.CompleteFetch(0x100, r.Source, false)
	// The L1I NLP should have pulled the next line.
	if !h.L1I.Contains(0x101) {
		t.Error("L1I NLP did not prefetch next line")
	}
	if h.L1I.PrefetchFills == 0 {
		t.Error("prefetch fills not counted")
	}
}

func TestHierarchyCompulsoryCounting(t *testing.T) {
	h := defaultHierarchy("TPLRU")
	r := h.ProbeFetch(0x100)
	h.CompleteFetch(0x100, r.Source, false)
	if h.CompulsoryL2IMisses != 1 {
		t.Errorf("CompulsoryL2IMisses = %d, want 1", h.CompulsoryL2IMisses)
	}
}

func TestHierarchySFLPromotion(t *testing.T) {
	cfg := DefaultConfig(core.MustParsePolicy("TPLRU"))
	cfg.L1I.NLP = false
	cfg.L1D.NLP = false
	cfg.L2.NLP = false
	cfg.L3.NLP = false
	h := NewHierarchy(cfg)
	// Build an SFL line: memory fill, evict to L3, refetch (SFL=1),
	// then evict again; the L3 re-insertion should be promoted.
	seqFill := func(addr uint64) {
		r := h.ProbeFetch(addr)
		h.CompleteFetch(addr, r.Source, false)
	}
	seqFill(0)
	for i := 1; i <= 16; i++ {
		seqFill(uint64(i) * 1024)
	}
	seqFill(0) // back from L3, SFL=1 in L2
	if l, _ := h.L2.Probe(0); !l.SFL {
		t.Fatal("refetched line lacks SFL")
	}
	for i := 17; i <= 33; i++ {
		seqFill(uint64(i) * 1024)
	}
	if h.L2.Contains(0) {
		t.Fatal("line still in L2")
	}
	if !h.L3.Contains(0) {
		t.Error("SFL victim not in L3")
	}
}

func TestLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 64: 6, 1024: 10}
	for n, want := range cases {
		if got := log2(n); got != want {
			t.Errorf("log2(%d) = %d, want %d", n, got, want)
		}
	}
}
