package cache

import (
	"testing"

	"emissary/internal/core"
	"emissary/internal/rng"
)

// checkInvariants asserts the structural properties of the hierarchy:
// the private caches are subsets of the inclusive L2, and the
// exclusive victim L3 is disjoint from L2.
func checkInvariants(t *testing.T, h *Hierarchy) {
	t.Helper()
	checkSubset := func(inner, outer *Cache, name string) {
		for s := 0; s < inner.sets; s++ {
			for w := 0; w < inner.ways; w++ {
				l := inner.lines[s*inner.ways+w]
				if !l.Valid {
					continue
				}
				addr := inner.lineAddr(s, l.Tag)
				if !outer.Contains(addr) {
					t.Fatalf("inclusion violated: %s holds %#x but L2 does not", name, addr)
				}
			}
		}
	}
	checkSubset(h.L1I, h.L2, "L1I")
	checkSubset(h.L1D, h.L2, "L1D")
	for s := 0; s < h.L2.sets; s++ {
		for w := 0; w < h.L2.ways; w++ {
			l := h.L2.lines[s*h.L2.ways+w]
			if !l.Valid {
				continue
			}
			addr := h.L2.lineAddr(s, l.Tag)
			if h.L3.Contains(addr) {
				t.Fatalf("exclusivity violated: %#x resident in both L2 and L3", addr)
			}
		}
	}
}

// driveRandom pushes a random mixture of instruction fetches and data
// accesses through the hierarchy.
func driveRandom(t *testing.T, h *Hierarchy, ops int, seed uint64) {
	t.Helper()
	r := rng.NewXoshiro256(seed)
	type pend struct {
		line uint64
		src  Source
	}
	var inflight []pend
	for i := 0; i < ops; i++ {
		switch {
		case r.Bool(0.5):
			// Instruction fetch over a 3000-line code region.
			line := uint64(0x100000 + r.Intn(3000))
			busy := false
			for _, p := range inflight {
				if p.line == line {
					busy = true
					break
				}
			}
			if busy {
				break
			}
			res := h.ProbeFetch(line)
			if res.NeedFill {
				inflight = append(inflight, pend{line, res.Source})
			}
		case r.Bool(0.5) && len(inflight) > 0:
			// Complete an outstanding fetch (random starvation flag).
			p := inflight[0]
			inflight = inflight[1:]
			h.CompleteFetch(p.line, p.src, r.Bool(0.2))
		default:
			// Data access over a 4000-line heap.
			h.AccessData(uint64(0x900000+r.Intn(4000)), r.Bool(0.3))
		}
	}
	for _, p := range inflight {
		h.CompleteFetch(p.line, p.src, false)
	}
}

func TestHierarchyInvariantsUnderRandomTraffic(t *testing.T) {
	for _, pol := range []string{"TPLRU", "P(8):S&E", "P(8):S&E&R(1/32)", "DRRIP", "M:0", "PDP", "DCLIP", "GHRP", "P(8):S+GHRP"} {
		t.Run(pol, func(t *testing.T) {
			h := NewHierarchy(DefaultConfig(core.MustParsePolicy(pol)))
			driveRandom(t, h, 60_000, 7)
			checkInvariants(t, h)
		})
	}
}

func TestHierarchyInvariantsSmallCaches(t *testing.T) {
	// Tiny caches maximize eviction pressure on every edge.
	cfg := DefaultConfig(core.MustParsePolicy("P(4):S&E"))
	cfg.L1I = LevelConfig{SizeKB: 2, Ways: 2, HitLatency: 2, NLP: true}
	cfg.L1D = LevelConfig{SizeKB: 2, Ways: 2, HitLatency: 2, NLP: true}
	cfg.L2 = LevelConfig{SizeKB: 16, Ways: 8, HitLatency: 12, NLP: true}
	cfg.L3 = LevelConfig{SizeKB: 32, Ways: 8, HitLatency: 32, NLP: true}
	h := NewHierarchy(cfg)
	driveRandom(t, h, 80_000, 13)
	checkInvariants(t, h)
}

func TestPriorityBitsOnlyOnInstructionLines(t *testing.T) {
	h := NewHierarchy(DefaultConfig(core.MustParsePolicy("P(8):S&E")))
	driveRandom(t, h, 60_000, 21)
	for i, l := range h.L2.lines {
		if l.Valid && l.Priority && !l.Instr {
			t.Fatalf("data line %d carries a P bit", i)
		}
	}
}

func TestResetPrioritiesClearsHierarchy(t *testing.T) {
	h := NewHierarchy(DefaultConfig(core.MustParsePolicy("P(8):S&E")))
	driveRandom(t, h, 40_000, 33)
	h.ResetPriorities()
	for _, c := range []*Cache{h.L1I, h.L2} {
		for i, l := range c.lines {
			if l.Valid && l.Priority {
				t.Fatalf("%s line %d still high-priority after reset", c.Name(), i)
			}
		}
	}
	census := h.L2.PriorityCensus()
	for n, sets := range census {
		if n > 0 && sets != 0 {
			t.Fatalf("census shows %d sets with %d protected lines after reset", sets, n)
		}
	}
}

func TestHierarchyDeterministicUnderSameSeed(t *testing.T) {
	run := func() (uint64, uint64) {
		h := NewHierarchy(DefaultConfig(core.MustParsePolicy("P(8):S&E&R(1/32)")))
		driveRandom(t, h, 30_000, 5)
		return h.L2.InstrStats.Misses, h.MemReads
	}
	m1, r1 := run()
	m2, r2 := run()
	if m1 != m2 || r1 != r2 {
		t.Errorf("nondeterministic hierarchy: (%d,%d) vs (%d,%d)", m1, r1, m2, r2)
	}
}
