package cache

import (
	"emissary/internal/core"
	"emissary/internal/policy"
)

// Source identifies the level that serves a request.
type Source int

// Request sources, nearest first.
const (
	SrcL1 Source = iota
	SrcL2
	SrcL3
	SrcMem
)

// String implements fmt.Stringer.
func (s Source) String() string {
	switch s {
	case SrcL1:
		return "L1"
	case SrcL2:
		return "L2"
	case SrcL3:
		return "L3"
	default:
		return "Mem"
	}
}

// LevelConfig describes one cache level.
type LevelConfig struct {
	SizeKB     int
	Ways       int
	HitLatency int
	NLP        bool // next-line prefetcher enabled
}

func (lc LevelConfig) sets(lineSize int) int {
	return lc.SizeKB * 1024 / lineSize / lc.Ways
}

// Config describes the whole hierarchy. DefaultConfig gives the
// paper's Alderlake-like machine model (Table 4).
type Config struct {
	LineSize   int
	L1I        LevelConfig
	L1D        LevelConfig
	L2         LevelConfig
	L3         LevelConfig
	MemLatency int

	// L2Policy is the replacement policy under study at the unified L2.
	L2Policy core.Spec
	// L1TrueLRU uses exact LRU instead of TPLRU in the L1s and L3
	// (the Figure 1 configuration).
	L1TrueLRU bool
	// IdealL2I serves non-compulsory L2 instruction misses at L2 hit
	// latency: the unrealizable zero-cycle-miss-penalty model of §5.6.
	IdealL2I bool
	// Seed decorrelates the stochastic policies.
	Seed uint64
}

// DefaultConfig returns the Table 4 machine model with the given L2
// policy.
func DefaultConfig(l2 core.Spec) Config {
	return Config{
		LineSize:   64,
		L1I:        LevelConfig{SizeKB: 32, Ways: 8, HitLatency: 2, NLP: true},
		L1D:        LevelConfig{SizeKB: 64, Ways: 8, HitLatency: 2, NLP: true},
		L2:         LevelConfig{SizeKB: 1024, Ways: 16, HitLatency: 12, NLP: true},
		L3:         LevelConfig{SizeKB: 2048, Ways: 16, HitLatency: 32, NLP: true},
		MemLatency: 200,
		L2Policy:   l2,
	}
}

// Hierarchy is the simulated memory system. The instruction side is
// two-phase — ProbeFetch at request issue computes the serving level
// and latency, CompleteFetch at fill time installs lines with the
// mode-selection outcome — because EMISSARY's priority bit depends on
// starvation observed while the miss is in flight. The data side is
// single-phase.
type Hierarchy struct {
	cfg Config
	// lineShift is log2(line size), precomputed once — the back-end
	// shifts every load/store address by it.
	lineShift uint

	L1I *Cache
	L1D *Cache
	L2  *Cache
	L3  *Cache

	// seenInstr records instruction lines that have been in L2 before,
	// to classify compulsory vs capacity/conflict misses (ideal mode
	// and statistics).
	seenInstr map[uint64]struct{}

	// CompulsoryL2IMisses and DemandL2IMisses partition the L2
	// instruction misses.
	CompulsoryL2IMisses uint64

	// MemReads counts requests served by DRAM.
	MemReads uint64

	// polCache retains every policy instance this hierarchy has built,
	// keyed by level, spec and geometry, so Reset can restore one via
	// ResetState instead of reallocating its state arrays. The level
	// tag keeps two levels with coincidentally identical (spec,
	// geometry) from sharing mutable policy state.
	polCache map[polKey]policy.Policy
}

// polKey identifies a cached policy instance (see Hierarchy.polCache).
type polKey struct {
	level      string
	spec       core.Spec
	sets, ways int
}

// policyFor returns a policy for the level, reusing (and resetting) a
// previously built instance when the spec and geometry match, building
// and caching a fresh one otherwise. Every policy the module builds
// implements policy.Resetter; a foreign one that doesn't is rebuilt.
func (h *Hierarchy) policyFor(level string, spec core.Spec, sets, ways int, seed uint64) policy.Policy {
	k := polKey{level: level, spec: spec, sets: sets, ways: ways}
	if p, ok := h.polCache[k]; ok {
		if r, ok := p.(policy.Resetter); ok {
			r.ResetState(seed)
			return p
		}
	}
	p := spec.Build(sets, ways, seed)
	h.polCache[k] = p
	return p
}

// l3Spec is the L3 policy spec for a config: DRRIP normally, plain
// true-LRU recency in the Figure 1 configuration.
func (cfg Config) l3Spec() core.Spec {
	if cfg.L1TrueLRU {
		return core.Spec{Treatment: core.TreatRecency, TrueLRU: true}
	}
	return core.Spec{Treatment: core.TreatDRRIP}
}

// NewHierarchy builds the hierarchy for a config.
func NewHierarchy(cfg Config) *Hierarchy {
	ls := cfg.LineSize
	h := &Hierarchy{
		cfg:       cfg,
		lineShift: uint(log2(cfg.LineSize)),
		seenInstr: make(map[uint64]struct{}),
		polCache:  make(map[polKey]policy.Policy),
	}
	baseSpec := core.Spec{Treatment: core.TreatRecency, TrueLRU: cfg.L1TrueLRU}
	h.L1I = NewCache("L1I", cfg.L1I.sets(ls), cfg.L1I.Ways, h.policyFor("L1I", baseSpec, cfg.L1I.sets(ls), cfg.L1I.Ways, cfg.Seed+1))
	h.L1D = NewCache("L1D", cfg.L1D.sets(ls), cfg.L1D.Ways, h.policyFor("L1D", baseSpec, cfg.L1D.sets(ls), cfg.L1D.Ways, cfg.Seed+2))
	h.L2 = NewCache("L2", cfg.L2.sets(ls), cfg.L2.Ways, h.policyFor("L2", cfg.L2Policy, cfg.L2.sets(ls), cfg.L2.Ways, cfg.Seed+3))
	h.L3 = NewCache("L3", cfg.L3.sets(ls), cfg.L3.Ways, h.policyFor("L3", cfg.l3Spec(), cfg.L3.sets(ls), cfg.L3.Ways, cfg.Seed+4))
	return h
}

// Reset re-targets the hierarchy at cfg for a fresh run, reusing every
// allocation: caches are zeroed in place (Cache.Reset) and policies
// are restored via the polCache/ResetState path, so a warm run is
// byte-identical to cold construction with the same config. It reports
// false — leaving the hierarchy untouched — when cfg's geometry (line
// size, per-level sets or ways) differs from the one this hierarchy
// was built with; callers then fall back to NewHierarchy. Everything
// non-geometric (seed, policies, NLP, latencies, ideal mode) may
// change freely between runs.
func (h *Hierarchy) Reset(cfg Config) bool {
	ls := cfg.LineSize
	old := h.cfg
	if ls != old.LineSize ||
		cfg.L1I.sets(ls) != old.L1I.sets(old.LineSize) || cfg.L1I.Ways != old.L1I.Ways ||
		cfg.L1D.sets(ls) != old.L1D.sets(old.LineSize) || cfg.L1D.Ways != old.L1D.Ways ||
		cfg.L2.sets(ls) != old.L2.sets(old.LineSize) || cfg.L2.Ways != old.L2.Ways ||
		cfg.L3.sets(ls) != old.L3.sets(old.LineSize) || cfg.L3.Ways != old.L3.Ways {
		return false
	}
	h.cfg = cfg
	baseSpec := core.Spec{Treatment: core.TreatRecency, TrueLRU: cfg.L1TrueLRU}
	h.L1I.Reset(h.policyFor("L1I", baseSpec, cfg.L1I.sets(ls), cfg.L1I.Ways, cfg.Seed+1))
	h.L1D.Reset(h.policyFor("L1D", baseSpec, cfg.L1D.sets(ls), cfg.L1D.Ways, cfg.Seed+2))
	h.L2.Reset(h.policyFor("L2", cfg.L2Policy, cfg.L2.sets(ls), cfg.L2.Ways, cfg.Seed+3))
	h.L3.Reset(h.policyFor("L3", cfg.l3Spec(), cfg.L3.sets(ls), cfg.L3.Ways, cfg.Seed+4))
	clear(h.seenInstr)
	h.CompulsoryL2IMisses = 0
	h.MemReads = 0
	return true
}

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// FetchResult describes the outcome of an instruction line request.
type FetchResult struct {
	Latency int
	Source  Source
	// NeedFill is true when the caller must invoke CompleteFetch once
	// the request's starvation outcome is known (any L1I miss).
	NeedFill bool
}

// ProbeFetch is phase one of an instruction line request: it looks up
// the hierarchy, accounts hit/miss statistics at each probed level,
// and returns the serving level and total latency. It does not install
// any line. The caller must not issue a second ProbeFetch for the
// same line while a fill is outstanding (MSHR merging is the
// front-end's job).
func (h *Hierarchy) ProbeFetch(lineAddr uint64) FetchResult {
	if h.L1I.Access(lineAddr, true) {
		return FetchResult{Latency: h.cfg.L1I.HitLatency, Source: SrcL1}
	}
	if h.L2.Access(lineAddr, true) {
		return FetchResult{Latency: h.cfg.L2.HitLatency, Source: SrcL2, NeedFill: true}
	}
	compulsory := true
	if _, ok := h.seenInstr[lineAddr]; ok {
		compulsory = false
	} else {
		h.seenInstr[lineAddr] = struct{}{}
		h.CompulsoryL2IMisses++
	}
	if h.cfg.L2.NLP {
		h.prefetchInstrL2(lineAddr + 1)
	}
	if h.L3.Access(lineAddr, true) {
		lat := h.cfg.L3.HitLatency
		if h.cfg.IdealL2I && !compulsory {
			lat = h.cfg.L2.HitLatency
		}
		return FetchResult{Latency: lat, Source: SrcL3, NeedFill: true}
	}
	h.MemReads++
	lat := h.cfg.MemLatency
	if h.cfg.IdealL2I && !compulsory {
		lat = h.cfg.L2.HitLatency
	}
	return FetchResult{Latency: lat, Source: SrcMem, NeedFill: true}
}

// CompleteFetch is phase two: it installs the line with the
// mode-selection outcome. highPriority is the evaluated selection
// equation for this miss (always false for non-bimodal L2 policies).
func (h *Hierarchy) CompleteFetch(lineAddr uint64, src Source, highPriority bool) {
	inherited := false
	switch src {
	case SrcL1:
		return // hits need no fill
	case SrcL2:
		if l, ok := h.L2.Probe(lineAddr); ok {
			inherited = l.Priority
		} else {
			// The line was evicted from L2 between probe and fill;
			// reinstall it so the L1I fill preserves inclusion.
			h.fillL2(lineAddr, FillSpec{Instr: true, Priority: h.l2InsertPriority(highPriority)})
		}
	case SrcL3:
		h.L3.Invalidate(lineAddr) // exclusive move L3 -> L2
		h.fillL2(lineAddr, FillSpec{Instr: true, SFL: true, Priority: h.l2InsertPriority(highPriority)})
	case SrcMem:
		h.fillL2(lineAddr, FillSpec{Instr: true, Priority: h.l2InsertPriority(highPriority)})
	}
	h.fillL1I(lineAddr, highPriority || inherited)
	if h.cfg.L1I.NLP {
		h.prefetchInstrL1I(lineAddr + 1)
	}
}

// l2InsertPriority maps the selection outcome onto the L2 insertion's
// priority metadata. The M treatment consumes it at insertion; the
// P treatment defers priority to the L1I eviction (§3: "a line's
// priority is only communicated to L2 once it is evicted from the L1I
// cache"), so EMISSARY L2 insertions start low-priority.
func (h *Hierarchy) l2InsertPriority(selected bool) bool {
	if h.cfg.L2Policy.PersistentPriority() {
		return false
	}
	return selected
}

// fillL1I installs an instruction line in L1I, carrying the evicted
// line's P bit into its L2 copy.
func (h *Hierarchy) fillL1I(lineAddr uint64, priority bool) {
	ev := h.L1I.Fill(lineAddr, FillSpec{Instr: true, Priority: priority})
	if ev.Victim && ev.Line.Priority {
		h.L2.RaisePriority(ev.LineAddr)
	}
}

// fillL2 installs a line in the (inclusive) L2: the displaced victim
// is back-invalidated from the L1s and moved into the exclusive L3.
func (h *Hierarchy) fillL2(lineAddr uint64, spec FillSpec) {
	// Exclusivity safety net: while this fill was outstanding, a
	// racing prefetch or fill may have installed the line in L2 and
	// then evicted it into L3; remove any L3 copy before installing.
	if l, ok := h.L3.Invalidate(lineAddr); ok {
		spec.Dirty = spec.Dirty || l.Dirty
		spec.SFL = true
	}
	ev := h.L2.Fill(lineAddr, spec)
	if !ev.Victim {
		return
	}
	// Inclusion: remove the victim from the private caches. A dirty
	// L1D copy folds its data into the victim on its way out.
	if l, ok := h.L1I.Invalidate(ev.LineAddr); ok && l.Priority {
		ev.Line.Priority = true
	}
	if l, ok := h.L1D.Invalidate(ev.LineAddr); ok && l.Dirty {
		ev.Line.Dirty = true
	}
	// Victim cache: every L2 eviction is installed in L3. SFL lines
	// re-enter at MRU (§5.1).
	h.L3.Fill(ev.LineAddr, FillSpec{Instr: ev.Line.Instr, Dirty: ev.Line.Dirty})
	if ev.Line.SFL {
		h.L3.PromoteMRU(ev.LineAddr)
	}
}

// prefetchInstrL2 is the L2 next-line prefetcher for the instruction
// stream: it pulls the next line into L2 (from L3 or memory) without
// modeling prefetch latency.
func (h *Hierarchy) prefetchInstrL2(lineAddr uint64) {
	if h.L2.Contains(lineAddr) {
		return
	}
	spec := FillSpec{Instr: true, Prefetch: true}
	if h.L3.Contains(lineAddr) {
		h.L3.Invalidate(lineAddr)
		spec.SFL = true
	} else {
		h.MemReads++
	}
	h.fillL2(lineAddr, spec)
}

// prefetchInstrL1I pulls the next line into L1I (filling L2 on the way
// to preserve inclusion).
func (h *Hierarchy) prefetchInstrL1I(lineAddr uint64) {
	if h.L1I.Contains(lineAddr) {
		return
	}
	if !h.L2.Contains(lineAddr) {
		h.prefetchInstrL2(lineAddr)
	}
	inherited := false
	if l, ok := h.L2.Probe(lineAddr); ok {
		inherited = l.Priority
	}
	ev := h.L1I.Fill(lineAddr, FillSpec{Instr: true, Priority: inherited, Prefetch: true})
	if ev.Victim && ev.Line.Priority {
		h.L2.RaisePriority(ev.LineAddr)
	}
}

// AccessData performs a load or store and returns its latency.
func (h *Hierarchy) AccessData(lineAddr uint64, store bool) int {
	if h.L1D.Access(lineAddr, false) {
		if store {
			h.L1D.MarkDirty(lineAddr)
		}
		// The next-line prefetcher trains on every access, which is
		// what lets it cover streaming patterns.
		if h.cfg.L1D.NLP {
			h.prefetchDataL1D(lineAddr + 1)
		}
		return h.cfg.L1D.HitLatency
	}
	lat := h.dataMiss(lineAddr, FillSpec{})
	if store {
		h.L1D.MarkDirty(lineAddr)
	}
	if h.cfg.L1D.NLP {
		h.prefetchDataL1D(lineAddr + 1)
	}
	return lat
}

// dataMiss walks the outer levels for a data request, installing the
// line in L2 and L1D, and returns the serving latency.
func (h *Hierarchy) dataMiss(lineAddr uint64, spec FillSpec) int {
	spec.Instr = false
	lat := h.cfg.MemLatency
	switch {
	case h.L2.Access(lineAddr, false):
		lat = h.cfg.L2.HitLatency
	case h.L3.Access(lineAddr, false):
		lat = h.cfg.L3.HitLatency
		if l, ok := h.L3.Invalidate(lineAddr); ok {
			spec.Dirty = l.Dirty
		}
		spec.SFL = true
		h.fillL2(lineAddr, spec)
	default:
		h.MemReads++
		h.fillL2(lineAddr, spec)
	}
	// Fill L1D (clean: store dirtiness is set by MarkDirty); a dirty
	// victim writes back into the (inclusive) L2.
	ev := h.L1D.Fill(lineAddr, FillSpec{Prefetch: spec.Prefetch})
	if ev.Victim && ev.Line.Dirty {
		h.L2.MarkDirty(ev.LineAddr)
	}
	return lat
}

// prefetchDataL1D is the L1D next-line prefetcher.
func (h *Hierarchy) prefetchDataL1D(lineAddr uint64) {
	if h.L1D.Contains(lineAddr) {
		return
	}
	h.dataMiss(lineAddr, FillSpec{Prefetch: true})
}

// LineShift returns log2(line size) for address arithmetic.
func (h *Hierarchy) LineShift() uint { return h.lineShift }

// ResetPriorities clears P bits hierarchy-wide (§6).
func (h *Hierarchy) ResetPriorities() {
	h.L1I.ResetPriorities()
	h.L2.ResetPriorities()
}
