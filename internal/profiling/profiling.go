// Package profiling wires the runtime/pprof collectors behind the
// -cpuprofile/-memprofile flags every CLI shares. It lives outside the
// deterministic simulator packages: profiling observes the process,
// it never feeds back into simulation state.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath (when non-empty) and returns
// a stop function that ends the CPU profile and, when memPath is
// non-empty, captures a heap profile after a final GC. Either path may
// be empty; with both empty Start is a no-op and stop returns nil.
//
// The stop function must run before the process exits for the
// profiles to be valid, so call it via defer on the success path:
//
//	stop, err := profiling.Start(*cpuProfile, *memProfile)
//	if err != nil { ... }
//	defer stop()
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: start cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profiling: close cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
			defer f.Close()
			// An up-to-date heap profile needs the dead objects of the
			// final simulation window collected first.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("profiling: write heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
