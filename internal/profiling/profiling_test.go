package profiling

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartNoop(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
}

func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	// Burn a little CPU and heap so the profiles have content.
	sink := 0
	for i := 0; i < 1_000_000; i++ {
		sink += i % 7
	}
	_ = sink
	buf := make([]byte, 1<<20)
	_ = buf
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("stat %s: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

func TestStartBadPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "x"), ""); err == nil {
		t.Error("Start with unwritable cpu path succeeded")
	}
	stop, err := Start("", filepath.Join(t.TempDir(), "no", "such", "dir", "x"))
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := stop(); err == nil {
		t.Error("stop with unwritable mem path succeeded")
	}
}
