package emissary_test

import (
	"testing"

	"emissary"
)

func TestFacadeQuickstart(t *testing.T) {
	bench, err := emissary.Benchmark("xapian")
	if err != nil {
		t.Fatal(err)
	}
	opt := emissary.DefaultOptions(bench, emissary.MustPolicy("TPLRU"))
	opt.WarmupInstrs = 100_000
	opt.MeasureInstrs = 200_000
	res, err := emissary.Simulate(opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 {
		t.Errorf("IPC = %v", res.IPC)
	}
}

func TestFacadeBenchmarkLookup(t *testing.T) {
	if _, err := emissary.Benchmark("nope"); err == nil {
		t.Error("unknown benchmark accepted")
	}
	names := emissary.BenchmarkNames()
	if len(names) != 13 {
		t.Errorf("got %d benchmarks", len(names))
	}
	if len(emissary.Benchmarks()) != 13 {
		t.Error("Benchmarks() wrong length")
	}
}

func TestFacadePolicyParsing(t *testing.T) {
	p, err := emissary.ParsePolicy("P(8):S&E&R(1/32)")
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != "P(8):S&E&R(1/32)" {
		t.Errorf("round trip gave %q", p.String())
	}
	if _, err := emissary.ParsePolicy("???"); err == nil {
		t.Error("bad policy accepted")
	}
}

func TestFacadeMath(t *testing.T) {
	if s := emissary.Speedup(110, 100); s < 0.099 || s > 0.101 {
		t.Errorf("Speedup = %v", s)
	}
	if g := emissary.Geomean([]float64{0.1, 0.1}); g < 0.099 || g > 0.101 {
		t.Errorf("Geomean = %v", g)
	}
}
