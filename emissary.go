// Package emissary is a from-scratch reproduction of "EMISSARY:
// Enhanced Miss Awareness Replacement Policy for L2 Instruction
// Caching" (ISCA 2023): a trace-driven, cycle-level processor
// simulator with a decoupled FDIP front-end, an approximate
// out-of-order back-end, a four-level cache hierarchy with pluggable
// replacement policies — including the EMISSARY P(N) family and every
// baseline the paper compares against — and synthetic datacenter
// workloads calibrated to the paper's benchmark characteristics.
//
// This file is the public facade: everything a downstream user needs
// to parse policy notation, pick a workload, run simulations, and
// regenerate the paper's experiments, re-exported from the internal
// packages.
//
// Quick start:
//
//	bench, _ := emissary.Benchmark("tomcat")
//	base, _ := emissary.Simulate(emissary.Options{
//	    Benchmark: bench, Policy: emissary.MustPolicy("TPLRU"),
//	    WarmupInstrs: 2e6, MeasureInstrs: 10e6, FDIP: true, NLP: true,
//	})
//	emis, _ := emissary.Simulate(emissary.Options{
//	    Benchmark: bench, Policy: emissary.MustPolicy("P(8):S&E&R(1/32)"),
//	    WarmupInstrs: 2e6, MeasureInstrs: 10e6, FDIP: true, NLP: true,
//	})
//	fmt.Printf("speedup: %+.2f%%\n", 100*emissary.Speedup(base.Cycles, emis.Cycles))
package emissary

import (
	"context"
	"fmt"

	"emissary/internal/core"
	"emissary/internal/sim"
	"emissary/internal/stats"
	"emissary/internal/workload"
)

// Policy is a parsed cache replacement policy specification in the
// paper's notation (Table 3), e.g. "P(8):S&E&R(1/32)" or "DRRIP".
type Policy = core.Spec

// Selection is a mode-selection equation (Table 1).
type Selection = core.Selection

// Profile parameterizes a synthetic benchmark.
type Profile = workload.Profile

// Options selects what one simulation runs.
type Options = sim.Options

// Result is a finished simulation's metrics.
type Result = sim.Result

// ParsePolicy parses the paper's policy notation: "LRU", "TPLRU",
// "LIP", "BIP", "M:S&E", "P(8):S&E&R(1/32)", "SRRIP", "BRRIP",
// "DRRIP", "PDP", "DCLIP", and friends.
func ParsePolicy(text string) (Policy, error) { return core.ParsePolicy(text) }

// MustPolicy is ParsePolicy for literals; it panics on bad input.
func MustPolicy(text string) Policy { return core.MustParsePolicy(text) }

// Benchmarks returns the 13 datacenter workload profiles of §5.3.
func Benchmarks() []Profile { return workload.Profiles() }

// BenchmarkNames lists the built-in benchmarks in paper order.
func BenchmarkNames() []string { return workload.ProfileNames() }

// Benchmark finds a built-in workload profile by name.
func Benchmark(name string) (Profile, error) {
	p, ok := workload.ProfileByName(name)
	if !ok {
		return Profile{}, fmt.Errorf("emissary: unknown benchmark %q (see BenchmarkNames)", name)
	}
	return p, nil
}

// Simulate runs one simulation.
func Simulate(opt Options) (Result, error) { return sim.Run(opt) }

// SimulateContext runs one simulation under a context; cancellation
// stops the run between simulation chunks with ctx.Err().
func SimulateContext(ctx context.Context, opt Options) (Result, error) {
	return sim.RunContext(ctx, opt)
}

// DefaultOptions returns a baseline configuration (FDIP + NLP on,
// moderate instruction counts) for the benchmark and policy.
func DefaultOptions(bench Profile, policy Policy) Options {
	return sim.DefaultOptions(bench, policy)
}

// Speedup returns base/test - 1 for two cycle counts.
func Speedup(baseCycles, testCycles uint64) float64 {
	return stats.Speedup(baseCycles, testCycles)
}

// Geomean aggregates speedup fractions the way the paper does.
func Geomean(speedups []float64) float64 { return stats.Geomean(speedups) }
