// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation. Each bench regenerates its artifact at reduced
// scale (two benchmarks, short windows) so `go test -bench=.` finishes
// in minutes; the full-scale artifacts come from cmd/emissary-figures
// with larger -warmup/-measure values (see EXPERIMENTS.md for the
// recorded runs). ReportMetric exposes the artifact's headline number
// so regressions in *shape*, not just speed, are visible.
package emissary_test

import (
	"io"
	"testing"

	"emissary/internal/cache"
	"emissary/internal/core"
	"emissary/internal/experiments"
	"emissary/internal/pipeline"
	"emissary/internal/workload"
)

// benchConfig scales experiments down to benchmark-harness size.
func benchConfig(benchNames ...string) experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.Warmup = 200_000
	cfg.Measure = 1_000_000
	if len(benchNames) > 0 {
		var ps []workload.Profile
		for _, n := range benchNames {
			p, ok := workload.ProfileByName(n)
			if !ok {
				panic("unknown benchmark " + n)
			}
			ps = append(ps, p)
		}
		cfg.Benchmarks = ps
	}
	return cfg
}

func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig1(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[len(pts)-1].Speedup*100, "emissary-speedup-%")
	}
}

func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig2(benchConfig("tomcat", "verilator"))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].StarvFrac[2]*100, "long-reuse-starvation-%")
	}
}

func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig3(benchConfig("tomcat", "xapian"))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].L2I, "tomcat-L2I-MPKI")
	}
}

func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig4(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		avg := 0.0
		for _, r := range rows {
			avg += r.FootprintMB / float64(len(rows))
		}
		b.ReportMetric(avg, "avg-footprint-MB")
	}
}

func BenchmarkTable5(b *testing.B) {
	// The full grid is 77 policies x 13 benchmarks; the bench target
	// exercises the machinery on two benchmarks.
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table5(benchConfig("tomcat", "xapian"))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Grid[3][9]*100, "P8-SER32-geomean-%")
	}
}

func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := experiments.Fig5(benchConfig("tomcat"), []int{4, 8, 12})
		if err != nil {
			b.Fatal(err)
		}
		if len(series) == 0 {
			b.Fatal("no series")
		}
	}
}

func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig6(benchConfig("tomcat", "verilator"))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].Total*100, "tomcat-stall-reduction-%")
	}
}

func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7(benchConfig("tomcat", "xapian"))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.GeomeanSpeedup[len(r.GeomeanSpeedup)-1]*100, "emissary-geomean-%")
	}
}

func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8(benchConfig("tomcat", "verilator"))
		if err != nil {
			b.Fatal(err)
		}
		saturated := 0.0
		for c := 8; c < len(r.Dist[0]); c++ {
			saturated += r.Dist[0][c]
		}
		b.ReportMetric(saturated*100, "SE-saturated-sets-%")
	}
}

func BenchmarkIdeal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, captured, err := experiments.Ideal(benchConfig("tomcat", "verilator"))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(captured*100, "headroom-captured-%")
	}
}

func BenchmarkFDIP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, g, err := experiments.FDIP(benchConfig("tomcat", "xapian"))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(g*100, "fdip-geomean-%")
	}
}

func BenchmarkReset(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Reset(benchConfig("tomcat"), 500_000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric((rows[0].WithReset-rows[0].NoReset)*100, "reset-delta-%")
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed in
// instructions per second on the baseline configuration.
func BenchmarkSimulatorThroughput(b *testing.B) {
	prof, _ := workload.ProfileByName("tomcat")
	prog, err := workload.NewProgram(prof)
	if err != nil {
		b.Fatal(err)
	}
	eng := workload.NewEngine(prog)
	hier := cache.NewHierarchy(cache.DefaultConfig(core.MustParsePolicy("TPLRU")))
	c, err := pipeline.NewCore(pipeline.DefaultConfig(), eng, hier, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if _, err := c.RunCommitted(uint64(b.N)); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(b.N), "instructions")
}

// BenchmarkWorkloadEngine measures the oracle generator alone.
func BenchmarkWorkloadEngine(b *testing.B) {
	prof, _ := workload.ProfileByName("tomcat")
	prog, err := workload.NewProgram(prof)
	if err != nil {
		b.Fatal(err)
	}
	eng := workload.NewEngine(prog)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := eng.NextBlock(); !ok {
			b.Fatal("stream ended")
		}
	}
}

var sink io.Writer // prevent dead-code elimination of renderers

// BenchmarkRenderTable5 exercises the table renderer.
func BenchmarkRenderTable5(b *testing.B) {
	r := &experiments.Table5Result{}
	for range experiments.Table5Ns {
		row := make([]float64, len(experiments.Table5Columns))
		r.Grid = append(r.Grid, row)
	}
	for i := 0; i < b.N; i++ {
		experiments.WriteTable5(io.Discard, r)
	}
	_ = sink
}
