package emissary_test

import (
	"fmt"

	"emissary"
)

// ExampleParsePolicy shows the paper's policy notation round-tripping
// through the parser.
func ExampleParsePolicy() {
	for _, text := range []string{
		"LRU",
		"BIP",
		"M:S&E",
		"P(8):S&E&R(1/32)",
		"P(8):S&E&R(1/32)+GHRP",
		"DRRIP",
	} {
		spec, err := emissary.ParsePolicy(text)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		fmt.Println(spec.String())
	}
	// Output:
	// LRU
	// M:R(1/32)
	// M:S&E
	// P(8):S&E&R(1/32)
	// P(8):S&E&R(1/32)+GHRP
	// DRRIP
}

// ExampleBenchmarkNames lists the 13 datacenter workloads of §5.3.
func ExampleBenchmarkNames() {
	for _, name := range emissary.BenchmarkNames() {
		fmt.Println(name)
	}
	// Output:
	// specjbb
	// xapian
	// finagle-http
	// finagle-chirper
	// tomcat
	// kafka
	// tpcc
	// wikipedia
	// media-stream
	// web-search
	// data-serving
	// verilator
	// speedometer2.0
}

// ExampleGeomean aggregates speedups the way the paper reports them.
func ExampleGeomean() {
	speedups := []float64{0.021, 0.037, -0.002}
	fmt.Printf("%.4f\n", emissary.Geomean(speedups))
	// Output:
	// 0.0185
}

// ExampleSpeedup computes a relative speedup from cycle counts.
func ExampleSpeedup() {
	fmt.Printf("%+.2f%%\n", 100*emissary.Speedup(1_030_000, 1_000_000))
	// Output:
	// +3.00%
}
