// Command emissary-trace generates, inspects and analyzes the
// synthetic workloads' dynamic instruction traces.
//
// Subcommands:
//
//	emissary-trace gen -bench tomcat -instructions 1000000 -o tomcat.trc
//	emissary-trace info tomcat.trc
//	emissary-trace reuse -bench tomcat -instructions 5000000
//	emissary-trace stats -bench tomcat -instructions 5000000
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"emissary/internal/atomicfile"
	"emissary/internal/branch"
	"emissary/internal/reuse"
	"emissary/internal/trace"
	"emissary/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		cmdGen(os.Args[2:])
	case "info":
		cmdInfo(os.Args[2:])
	case "reuse":
		cmdReuse(os.Args[2:])
	case "stats":
		cmdStats(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: emissary-trace gen|info|reuse|stats [flags]")
	os.Exit(2)
}

func mustProfile(name string) workload.Profile {
	p, ok := workload.ProfileByName(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", name)
		os.Exit(1)
	}
	return p
}

func mustEngine(name string) *workload.Engine {
	prog, err := workload.NewProgram(mustProfile(name))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return workload.NewEngine(prog)
}

func cmdGen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	bench := fs.String("bench", "tomcat", "benchmark name")
	n := fs.Uint64("instructions", 1_000_000, "instructions to trace")
	out := fs.String("o", "", "output file (default stdout)")
	fs.Parse(args)

	eng := mustEngine(*bench)
	var events uint64
	write := func(w io.Writer) error {
		tw, err := trace.NewWriter(w)
		if err != nil {
			return err
		}
		for eng.Instructions() < *n {
			ev, ok := eng.NextBlock()
			if !ok {
				break
			}
			if err := tw.WriteEvent(ev); err != nil {
				return err
			}
		}
		if err := tw.Flush(); err != nil {
			return err
		}
		events = tw.Events()
		return nil
	}
	var err error
	if *out != "" {
		// Atomic write: an interrupted gen never leaves a truncated
		// trace where a replayable one is expected.
		err = atomicfile.WriteTo(*out, write)
	} else {
		err = write(os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %d block events (%d instructions)\n", events, eng.Instructions())
}

func cmdInfo(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: emissary-trace info <file>")
		os.Exit(2)
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var blocks, instrs, mems, taken uint64
	kinds := map[branch.Kind]uint64{}
	for {
		ev, err := r.ReadEvent()
		if err == io.EOF {
			break
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		blocks++
		instrs += uint64(ev.NumInstrs)
		mems += uint64(len(ev.Mem))
		kinds[ev.EndKind]++
		if ev.Taken {
			taken++
		}
	}
	fmt.Printf("blocks        %d\n", blocks)
	fmt.Printf("instructions  %d\n", instrs)
	fmt.Printf("memory refs   %d (%.3f per instr)\n", mems, float64(mems)/float64(instrs))
	fmt.Printf("avg block     %.2f instructions\n", float64(instrs)/float64(blocks))
	for k := branch.KindFallthrough; k <= branch.KindIndirectCall; k++ {
		if kinds[k] > 0 {
			fmt.Printf("  end %-14s %d\n", k, kinds[k])
		}
	}
}

func cmdReuse(args []string) {
	fs := flag.NewFlagSet("reuse", flag.ExitOnError)
	bench := fs.String("bench", "tomcat", "benchmark name")
	n := fs.Uint64("instructions", 5_000_000, "instructions to analyze")
	fs.Parse(args)

	eng := mustEngine(*bench)
	tr := reuse.NewTracker(1 << 18)
	var buckets [3]uint64
	var lastLine uint64 = ^uint64(0)
	for eng.Instructions() < *n {
		ev, ok := eng.NextBlock()
		if !ok {
			break
		}
		line := ev.Addr >> 6
		if line != lastLine {
			buckets[reuse.Classify(tr.Access(line))]++
			lastLine = line
		}
	}
	total := buckets[0] + buckets[1] + buckets[2]
	fmt.Printf("benchmark      %s\n", *bench)
	fmt.Printf("line accesses  %d over %d distinct lines\n", total, tr.Distinct())
	fmt.Printf("short  [0,100)    %6.2f%%\n", 100*float64(buckets[0])/float64(total))
	fmt.Printf("mid    [100,5000) %6.2f%%\n", 100*float64(buckets[1])/float64(total))
	fmt.Printf("long   [5000,inf) %6.2f%%\n", 100*float64(buckets[2])/float64(total))
}

func cmdStats(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	bench := fs.String("bench", "tomcat", "benchmark name")
	n := fs.Uint64("instructions", 5_000_000, "instructions to analyze")
	fs.Parse(args)

	prof := mustProfile(*bench)
	prog, err := workload.NewProgram(prof)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	eng := workload.NewEngine(prog)
	var blocks, loads, stores, conds, condTaken uint64
	depth, maxDepth := 0, 0
	for eng.Instructions() < *n {
		ev, ok := eng.NextBlock()
		if !ok {
			break
		}
		blocks++
		for _, m := range ev.Mem {
			if m.Store {
				stores++
			} else {
				loads++
			}
		}
		switch ev.EndKind {
		case branch.KindCond:
			conds++
			if ev.Taken {
				condTaken++
			}
		case branch.KindCall, branch.KindIndirectCall:
			depth++
			if depth > maxDepth {
				maxDepth = depth
			}
		case branch.KindReturn:
			depth--
		}
	}
	instrs := eng.Instructions()
	fmt.Printf("benchmark       %s\n", prof.Name)
	fmt.Printf("static blocks   %d (%d instrs, %.2f MB)\n", prog.NumBlocks(), prog.TotalInstrs(), float64(prog.FootprintBytes())/(1<<20))
	fmt.Printf("dyn blocks      %d (avg %.2f instrs)\n", blocks, float64(instrs)/float64(blocks))
	fmt.Printf("requests        %d (avg %.0f instrs each)\n", eng.Requests(), float64(instrs)/float64(eng.Requests()))
	fmt.Printf("loads/stores    %.3f / %.3f per instr\n", float64(loads)/float64(instrs), float64(stores)/float64(instrs))
	fmt.Printf("cond branches   %.3f per instr (%.1f%% taken)\n", float64(conds)/float64(instrs), 100*float64(condTaken)/float64(conds))
	fmt.Printf("max call depth  %d\n", maxDepth)
}
