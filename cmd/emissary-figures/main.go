// Command emissary-figures regenerates the paper's tables and figures.
//
// Usage:
//
//	emissary-figures [flags] <artifact>...
//	emissary-figures -measure 20000000 fig1 fig7
//	emissary-figures -j 8 all
//
// Artifacts: fig1 fig2 fig3 fig4 tab5 fig5 fig6 fig7 fig8 ideal fdip
// reset all. The paper simulates 5M+100M instructions per point; the
// defaults here are sized for minutes — pass -warmup/-measure to scale
// up (EMISSARY's gains grow with horizon as priority marks accumulate).
// Independent simulations fan out across all CPUs; -j caps the worker
// count (-j 1 forces the sequential schedule) without changing any
// output byte.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"emissary/internal/atomicfile"
	"emissary/internal/experiments"
	"emissary/internal/profiling"
	"emissary/internal/runner"
	"emissary/internal/workload"
)

func main() {
	var (
		warmup     = flag.Uint64("warmup", 2_000_000, "warm-up instructions per simulation")
		measure    = flag.Uint64("measure", 8_000_000, "measured instructions per simulation")
		seed       = flag.Uint64("seed", 1, "simulation seed")
		benches    = flag.String("benchmarks", "", "comma-separated subset of benchmarks (default: all 13)")
		progress   = flag.Bool("progress", false, "print one line per completed simulation")
		csvDir     = flag.String("csv", "", "also write machine-readable CSVs into this directory")
		jobs       = flag.Int("j", 0, "simulations to run in parallel (0 = all CPUs, 1 = sequential; output is identical either way)")
		checkpoint = flag.String("checkpoint", "", "journal completed simulations to this file and resume from it on rerun")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf    = flag.String("memprofile", "", "write a heap profile on exit to this file")
		noSkip     = flag.Bool("no-cycle-skip", false, "walk every cycle instead of event-driven skipping (debugging; output is identical, only slower)")
		retries    = flag.Int("retries", 0, "extra attempts for transiently-failing simulations (0 = fail on first error; output is identical at any -j)")
		jobTimeout = flag.Duration("job-timeout", 0, "per-simulation deadline (0 = none; a tripped deadline is transient and composes with -retries)")
		batch      = flag.Bool("batch", true, "run same-stream simulations in lockstep batches, synthesizing each workload once per group (output is identical; -batch=false is the diagnostic baseline)")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: emissary-figures [flags] fig1|fig2|fig3|fig4|tab5|fig5|fig6|fig7|fig8|ideal|fdip|reset|horizon|all")
		os.Exit(2)
	}

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	// SIGINT/SIGTERM cancel in-flight simulations; completed ones are
	// already durable in the journal, so the run can be resumed.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := experiments.DefaultConfig()
	cfg.Warmup = *warmup
	cfg.Measure = *measure
	cfg.Seed = *seed
	cfg.Parallelism = *jobs
	cfg.Context = ctx
	cfg.NoCycleSkip = *noSkip
	cfg.Retries = *retries
	cfg.JobTimeout = *jobTimeout
	cfg.NoBatch = !*batch
	cfg.Warn = func(e error) {
		fmt.Fprintf(os.Stderr, "warning: %v\n", e)
	}
	if *progress {
		cfg.Progress = os.Stderr
	}
	if *checkpoint != "" {
		journal, err := runner.OpenJournal(*checkpoint)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer journal.Close()
		if rec := journal.Recovery(); rec.DiscardedRecords > 0 {
			fmt.Fprintf(os.Stderr, "warning: checkpoint %s lost %d complete record(s) (%d bytes) to mid-file corruption; they will be recomputed\n",
				*checkpoint, rec.DiscardedRecords, rec.DiscardedBytes)
		} else if rec.DiscardedBytes > 0 {
			fmt.Fprintf(os.Stderr, "checkpoint: discarded a torn final record (%d bytes) from %s\n", rec.DiscardedBytes, *checkpoint)
		}
		if n := journal.Completed(); n > 0 {
			fmt.Fprintf(os.Stderr, "checkpoint: resuming with %d completed simulation(s) from %s\n", n, *checkpoint)
		}
		cfg.Journal = journal
	}
	if *benches != "" {
		var ps []workload.Profile
		for _, name := range strings.Split(*benches, ",") {
			p, ok := workload.ProfileByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", name)
				os.Exit(1)
			}
			ps = append(ps, p)
		}
		cfg.Benchmarks = ps
	}

	names := flag.Args()
	if len(names) == 1 && names[0] == "all" {
		names = []string{"fig1", "fig2", "fig3", "fig4", "tab5", "fig5", "fig6", "fig7", "fig8", "ideal", "fdip", "reset", "horizon"}
	}

	benchNames := make([]string, len(cfg.Benchmarks))
	for i, b := range cfg.Benchmarks {
		benchNames[i] = b.Name
	}
	if len(benchNames) == 0 {
		benchNames = workload.ProfileNames()
	}

	writeCSV := func(name string, fn func(io.Writer) error) {
		if *csvDir == "" {
			return
		}
		if err := atomicfile.WriteTo(filepath.Join(*csvDir, name+".csv"), fn); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	for _, name := range names {
		var err error
		switch name {
		case "fig1":
			var pts []experiments.Fig1Point
			if pts, err = experiments.Fig1(cfg); err == nil {
				experiments.WriteFig1(os.Stdout, pts)
			}
		case "fig2":
			var rows []experiments.Fig2Row
			if rows, err = experiments.Fig2(cfg); err == nil {
				experiments.WriteFig2(os.Stdout, rows)
				writeCSV("fig2", func(w io.Writer) error { return experiments.CSVFig2(w, rows) })
			}
		case "fig3":
			var rows []experiments.Fig3Row
			if rows, err = experiments.Fig3(cfg); err == nil {
				experiments.WriteFig3(os.Stdout, rows)
				writeCSV("fig3", func(w io.Writer) error { return experiments.CSVFig3(w, rows) })
			}
		case "fig4":
			var rows []experiments.Fig4Row
			if rows, err = experiments.Fig4(cfg); err == nil {
				experiments.WriteFig4(os.Stdout, rows)
				writeCSV("fig4", func(w io.Writer) error { return experiments.CSVFig4(w, rows) })
			}
		case "tab5":
			var r *experiments.Table5Result
			if r, err = experiments.Table5(cfg); err == nil {
				experiments.WriteTable5(os.Stdout, r)
				writeCSV("tab5", func(w io.Writer) error { return experiments.CSVTable5(w, r) })
			}
		case "fig5":
			var series []experiments.Fig5Series
			if series, err = experiments.Fig5(cfg, nil); err == nil {
				experiments.WriteFig5(os.Stdout, series)
				writeCSV("fig5", func(w io.Writer) error { return experiments.CSVFig5(w, series) })
			}
		case "fig6":
			var rows []experiments.Fig6Row
			if rows, err = experiments.Fig6(cfg); err == nil {
				experiments.WriteFig6(os.Stdout, rows)
			}
		case "fig7":
			var r *experiments.Fig7Result
			if r, err = experiments.Fig7(cfg); err == nil {
				experiments.WriteFig7(os.Stdout, r, benchNames)
				writeCSV("fig7", func(w io.Writer) error { return experiments.CSVFig7(w, r, benchNames) })
			}
		case "fig8":
			var r *experiments.Fig8Result
			if r, err = experiments.Fig8(cfg); err == nil {
				experiments.WriteFig8(os.Stdout, r)
			}
		case "ideal":
			var rows []experiments.IdealRow
			var captured float64
			if rows, captured, err = experiments.Ideal(cfg); err == nil {
				experiments.WriteIdeal(os.Stdout, rows, captured)
			}
		case "fdip":
			var rows []experiments.FDIPRow
			var g float64
			if rows, g, err = experiments.FDIP(cfg); err == nil {
				experiments.WriteFDIP(os.Stdout, rows, g)
			}
		case "horizon":
			var rows []experiments.HorizonResult
			win := cfg.Measure
			if rows, err = experiments.Horizon(cfg, "tomcat",
				[]string{"P(8):S&E&R(1/32)", "P(8):S&E&R(1/32)+GHRP"}, 5, win); err == nil {
				experiments.WriteHorizon(os.Stdout, "tomcat", rows, win)
				writeCSV("horizon", func(w io.Writer) error { return experiments.CSVHorizon(w, rows) })
			}
		case "reset":
			var rows []experiments.ResetRow
			if rows, err = experiments.Reset(cfg, 0); err == nil {
				experiments.WriteReset(os.Stdout, rows)
			}
		default:
			fmt.Fprintf(os.Stderr, "unknown artifact %q\n", name)
			os.Exit(2)
		}
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintf(os.Stderr, "%s: interrupted\n", name)
				if *checkpoint != "" {
					fmt.Fprintf(os.Stderr, "completed simulations are journaled in %s; rerun the same command to resume\n", *checkpoint)
				}
				os.Exit(130)
			}
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}
