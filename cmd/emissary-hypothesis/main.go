// Command emissary-hypothesis runs the behavioral hypothesis catalog:
// paper-derived claims posed as controlled multi-seed experiments,
// judged CONFIRMED / REFUTED / INCONCLUSIVE, and rendered as markdown
// reports. It is the third CI gate — golden tests pin bytes,
// BENCH_hotpath.json pins speed, this pins behavior.
//
// Exit status: 0 when no hypothesis refutes and every -require ID
// confirms; 1 on any REFUTED verdict or a required hypothesis that
// fails to confirm (the behavioral regression signal); 2 on usage or
// execution errors.
//
// Examples:
//
//	emissary-hypothesis                       # full catalog, reports to results/hypotheses
//	emissary-hypothesis -short -out /tmp/hyp  # the CI configuration
//	emissary-hypothesis -run H2,H3 -seeds 7,8,9,10
//	emissary-hypothesis -short -require H1,H2,H3,H4,H5
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"emissary/internal/hypothesis"
	"emissary/internal/runner"
)

func main() {
	var (
		run        = flag.String("run", "", "comma-separated hypothesis IDs to run (default: whole catalog)")
		seedsFlag  = flag.String("seeds", "", "comma-separated seed override (default: each hypothesis' seed set)")
		jobs       = flag.Int("j", 0, "simulations to run in parallel (0 = all CPUs, 1 = sequential)")
		short      = flag.Bool("short", false, "reduced scale: shorter windows, fewer workloads (the CI configuration)")
		out        = flag.String("out", "results/hypotheses", "directory for the markdown reports ('' = skip writing)")
		checkpoint = flag.String("checkpoint", "", "journal completed simulations to this file and resume from it on rerun")
		require    = flag.String("require", "", "comma-separated IDs that must be CONFIRMED (exit 1 otherwise) — the CI regression gate")
		verbose    = flag.Bool("v", false, "print per-simulation progress to stderr")
		warmup     = flag.Uint64("warmup", 0, "override warm-up instructions (0 = scale default)")
		measure    = flag.Uint64("measure", 0, "override measured instructions (0 = scale default)")
		retries    = flag.Int("retries", 0, "extra attempts for transiently-failing simulations (0 = fail on first error; reports are identical at any -j)")
		jobTimeout = flag.Duration("job-timeout", 0, "per-simulation deadline (0 = none; a tripped deadline is transient and composes with -retries)")
		batch      = flag.Bool("batch", true, "run same-stream simulations in lockstep batches, synthesizing each workload once per group (reports are identical; -batch=false is the diagnostic baseline)")
	)
	flag.Parse()

	catalog := hypothesis.Catalog()
	if *run != "" {
		var selected []*hypothesis.Hypothesis
		for _, id := range splitList(*run) {
			h := hypothesis.ByID(id)
			if h == nil {
				fmt.Fprintf(os.Stderr, "unknown hypothesis %q (catalog: %s)\n", id, catalogIDs(catalog))
				os.Exit(2)
			}
			selected = append(selected, h)
		}
		catalog = selected
	}

	cfg := hypothesis.Config{Workers: *jobs, Retries: *retries, JobTimeout: *jobTimeout, NoBatch: !*batch}
	if *short {
		cfg.Scale = hypothesis.ShortScale()
	} else {
		cfg.Scale = hypothesis.FullScale()
	}
	if *warmup > 0 {
		cfg.Scale.Warmup = *warmup
	}
	if *measure > 0 {
		cfg.Scale.Measure = *measure
	}
	if *seedsFlag != "" {
		for _, s := range splitList(*seedsFlag) {
			v, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bad seed %q: %v\n", s, err)
				os.Exit(2)
			}
			cfg.Seeds = append(cfg.Seeds, v)
		}
	}
	if *verbose {
		cfg.Progress = os.Stderr
	}
	if *checkpoint != "" {
		j, err := runner.OpenJournal(*checkpoint)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer j.Close()
		if rec := j.Recovery(); rec.DiscardedRecords > 0 {
			fmt.Fprintf(os.Stderr, "warning: checkpoint %s lost %d complete record(s) (%d bytes) to mid-file corruption; they will be recomputed\n",
				*checkpoint, rec.DiscardedRecords, rec.DiscardedBytes)
		} else if rec.DiscardedBytes > 0 {
			fmt.Fprintf(os.Stderr, "checkpoint: discarded a torn final record (%d bytes) from %s\n", rec.DiscardedBytes, *checkpoint)
		}
		if n := j.Completed(); n > 0 {
			fmt.Fprintf(os.Stderr, "resuming: %d simulations already journaled in %s\n", n, *checkpoint)
		}
		cfg.Journal = j
	}

	// SIGINT/SIGTERM cancel in-flight simulations; with -checkpoint the
	// completed ones are already durable and the run resumes on rerun.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cfg.Context = ctx

	evs, err := hypothesis.RunCatalog(catalog, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		if ctx.Err() != nil {
			os.Exit(130)
		}
		os.Exit(2)
	}

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := hypothesis.WriteReports(*out, evs); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	verdicts := make(map[string]hypothesis.Verdict, len(evs))
	failed := false
	for _, ev := range evs {
		verdicts[ev.H.ID] = ev.Verdict
		fmt.Printf("%-4s %-12s %-13s %s\n", ev.H.ID, ev.H.Family, ev.Verdict, ev.Reason)
		if ev.Verdict == hypothesis.Refuted {
			failed = true
		}
	}
	for _, id := range splitList(*require) {
		v, ran := verdicts[id]
		if !ran {
			fmt.Printf("%-4s REQUIRED but not run\n", id)
			failed = true
			continue
		}
		if v != hypothesis.Confirmed {
			fmt.Printf("%-4s REQUIRED to be CONFIRMED but is %s — behavioral regression\n", id, v)
			failed = true
		}
	}
	if *out != "" {
		fmt.Printf("reports written to %s\n", *out)
	}
	if failed {
		os.Exit(1)
	}
}

// splitList splits a comma-separated flag, trimming blanks.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// catalogIDs renders the catalog's IDs for error messages.
func catalogIDs(hs []*hypothesis.Hypothesis) string {
	ids := make([]string, len(hs))
	for i, h := range hs {
		ids[i] = h.ID
	}
	return strings.Join(ids, ",")
}
