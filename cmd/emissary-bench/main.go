// Command emissary-bench measures the simulator's own speed and emits
// the BENCH_hotpath.json trajectory artifact: ns and allocations per
// cache Access/Fill for every policy family, plus end-to-end
// simulation throughput (wall-clock and simulated-MIPS). CI's
// bench-smoke job runs it on every push and uploads the JSON, so the
// hot path's cost over time is a downloadable time series.
//
// Examples:
//
//	emissary-bench                          # write BENCH_hotpath.json
//	emissary-bench -o - -iters 1000000      # print to stdout, longer run
//	emissary-bench -cpuprofile cpu.pprof    # profile the bench itself
//	emissary-bench -verify BENCH_hotpath.json  # fail unless the artifact's schema is current
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"emissary/internal/atomicfile"
	"emissary/internal/hotbench"
	"emissary/internal/profiling"
)

func main() {
	var (
		out     = flag.String("o", "BENCH_hotpath.json", "output path ('-' for stdout)")
		iters   = flag.Int("iters", 300_000, "iterations per micro-benchmark")
		warmup  = flag.Uint64("warmup", 500_000, "end-to-end warm-up instructions")
		measure = flag.Uint64("measure", 2_000_000, "end-to-end measured instructions")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile of the benchmark run to this file")
		memProf = flag.String("memprofile", "", "write a heap profile on exit to this file")
		noSkip  = flag.Bool("no-cycle-skip", false, "disable event-driven cycle skipping in the end-to-end rows (naive-walk baseline)")
		verify  = flag.String("verify", "", "verify the artifact at this path carries the current schema and exit (no benchmarking)")
	)
	flag.Parse()

	if *verify != "" {
		if err := hotbench.VerifySchema(*verify); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%s: schema %d ok\n", *verify, hotbench.SchemaVersion)
		return
	}

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	rep, err := hotbench.Collect(*iters, *warmup, *measure, *noSkip)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	write := func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	if *out == "-" {
		err = write(os.Stdout)
	} else {
		err = atomicfile.WriteTo(*out, write)
	}
	if err == nil {
		err = stopProf()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *out != "-" {
		fmt.Printf("wrote %s (%d access rows, %d fill rows, %d end-to-end rows, %d sweep rows)\n",
			*out, len(rep.Access), len(rep.Fill), len(rep.EndToEnd), len(rep.Sweep))
	}
}
