package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestSmoke builds the emissary-lint binary and runs it against a
// temporary module containing one known violation, asserting the exit
// code and the diagnostic line — covering the CLI path end to end,
// not just the analyzers.
func TestSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the linter binary; skipped with -short")
	}
	gobin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}

	bin := filepath.Join(t.TempDir(), "emissary-lint")
	build := exec.Command(gobin, "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	mod := t.TempDir()
	writeFile(t, filepath.Join(mod, "go.mod"), "module tmpmod\n\ngo 1.22\n")
	violation := filepath.Join(mod, "internal", "pipeline", "p.go")
	writeFile(t, violation, `package pipeline

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`)

	// Violation present: exit 1 with the expected diagnostic line.
	out, code := runLint(t, bin, mod, "./...")
	if code != 1 {
		t.Fatalf("exit code = %d with violation present, want 1\noutput:\n%s", code, out)
	}
	wantPrefix := filepath.Join("internal", "pipeline", "p.go") + ":5:"
	if !strings.Contains(out, wantPrefix) || !strings.Contains(out, "[nondeterm-source]") ||
		!strings.Contains(out, "time.Now") {
		t.Fatalf("output missing %q / [nondeterm-source] / time.Now:\n%s", wantPrefix, out)
	}

	// Same run as JSON: one structured diagnostic.
	jsonOut, code := runLint(t, bin, mod, "-json", "./...")
	if code != 1 {
		t.Fatalf("exit code = %d for -json run, want 1\noutput:\n%s", code, jsonOut)
	}
	var diags []struct {
		File string `json:"file"`
		Line int    `json:"line"`
		Rule string `json:"rule"`
	}
	if err := json.Unmarshal([]byte(jsonOut), &diags); err != nil {
		t.Fatalf("bad -json output: %v\n%s", err, jsonOut)
	}
	if len(diags) != 1 || diags[0].Rule != "nondeterm-source" || diags[0].Line != 5 {
		t.Fatalf("json diagnostics = %+v, want one nondeterm-source at line 5", diags)
	}

	// Violation fixed: exit 0 and silence.
	writeFile(t, violation, `package pipeline

func Stamp() int64 { return 0 }
`)
	out, code = runLint(t, bin, mod, "./...")
	if code != 0 || strings.TrimSpace(out) != "" {
		t.Fatalf("clean module: exit %d, output %q; want 0 and no output", code, out)
	}

	// A suppression without a reason still fails the run.
	writeFile(t, violation, `package pipeline

import "time"

//lint:ignore nondeterm-source
func Stamp() int64 { return time.Now().UnixNano() }
`)
	out, code = runLint(t, bin, mod, "./...")
	if code != 1 || !strings.Contains(out, "[bad-ignore]") {
		t.Fatalf("reasonless ignore: exit %d, output:\n%s\nwant exit 1 with a bad-ignore diagnostic", code, out)
	}
}

// runInProc invokes run() with file-backed stdout/stderr and returns
// both streams plus the exit code, without building the binary.
func runInProc(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	outF, err := os.CreateTemp(t.TempDir(), "stdout")
	if err != nil {
		t.Fatal(err)
	}
	errF, err := os.CreateTemp(t.TempDir(), "stderr")
	if err != nil {
		t.Fatal(err)
	}
	code = run(args, outF, errF)
	outB, err := os.ReadFile(outF.Name())
	if err != nil {
		t.Fatal(err)
	}
	errB, err := os.ReadFile(errF.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(outB), string(errB), code
}

// TestUsageErrors pins the loud-failure contract: a typo'd rule name, a
// flag after the patterns, or a pattern matching no packages must exit
// 2 with an explanatory message — never silently run a different
// configuration (the historical hazard: `emissary-lint ./... -rules x`
// would have run ALL rules while appearing configured).
func TestUsageErrors(t *testing.T) {
	_, errOut, code := runInProc(t, "-rules", "no-such-rule")
	if code != 2 {
		t.Fatalf("-rules no-such-rule: exit %d, want 2", code)
	}
	if !strings.Contains(errOut, `unknown rule "no-such-rule"`) || !strings.Contains(errOut, "available:") {
		t.Errorf("unknown-rule stderr does not name the rule and list the valid ones:\n%s", errOut)
	}

	_, errOut, code = runInProc(t, "./...", "-rules", "float-fold")
	if code != 2 || !strings.Contains(errOut, "flags must come first") {
		t.Errorf("flag after pattern: exit %d, stderr:\n%s\nwant 2 with 'flags must come first'", code, errOut)
	}

	if testing.Short() {
		t.Skip("zero-match check loads the whole module; skipped with -short")
	}
	_, errOut, code = runInProc(t, "./no-such-dir/...")
	if code != 2 || !strings.Contains(errOut, "matches no packages") {
		t.Errorf("zero-match pattern: exit %d, stderr:\n%s\nwant 2 with 'matches no packages'", code, errOut)
	}
}

func runLint(t *testing.T, bin, dir string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Dir = dir
	out, err := cmd.Output()
	if err == nil {
		return string(out), 0
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("running %s: %v", bin, err)
	}
	return string(out), ee.ExitCode()
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
