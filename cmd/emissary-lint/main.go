// Command emissary-lint runs the determinism and simulator-invariant
// analyzer suite (internal/lint) over the module.
//
// Usage:
//
//	emissary-lint [flags] [patterns...]
//
// Patterns are directory paths, optionally ending in /... for a
// recursive match; the default is ./... (the whole module containing
// the current directory). Diagnostics print one per line as
//
//	file:line:col: [rule] message
//
// and the exit status is 1 if any diagnostic was reported, 2 on usage
// or load errors, 0 otherwise. Suppress a finding with a directive on
// the same line or the line above — the reason is mandatory:
//
//	//lint:ignore rule reason
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"emissary/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("emissary-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rulesFlag := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	jsonFlag := fs.Bool("json", false, "emit diagnostics as a JSON array instead of text")
	listFlag := fs.Bool("list", false, "list available rules and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: emissary-lint [flags] [patterns...]\n\n")
		fmt.Fprintf(stderr, "Runs the EMISSARY determinism lint suite. Patterns are directories,\noptionally ending in /...; default ./...\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *listFlag {
		for _, r := range lint.Rules() {
			fmt.Fprintf(stdout, "%-16s %s\n", r.Name, r.Doc)
		}
		return 0
	}

	rules, err := lint.Select(*rulesFlag)
	if err != nil {
		fmt.Fprintln(stderr, "emissary-lint:", err)
		return 2
	}

	patterns := fs.Args()
	// flag stops parsing at the first positional argument, so a flag
	// placed after a pattern would silently become a pattern (and CI
	// invoking `emissary-lint ./... -rules x` would run with ALL rules
	// while appearing configured); reject that.
	for _, p := range patterns {
		if strings.HasPrefix(p, "-") {
			fmt.Fprintf(stderr, "emissary-lint: flag %q after patterns; flags must come first\n", p)
			return 2
		}
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	mod, err := lint.LoadModule(".")
	if err != nil {
		fmt.Fprintln(stderr, "emissary-lint:", err)
		return 2
	}

	units, err := filterUnits(mod, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "emissary-lint:", err)
		return 2
	}

	diags := lint.Run(units, rules)

	cwd, _ := os.Getwd()
	for i := range diags {
		if rel, err := filepath.Rel(cwd, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = rel
		}
	}

	if *jsonFlag {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, "emissary-lint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}

	if len(diags) > 0 {
		if !*jsonFlag {
			fmt.Fprintf(stderr, "emissary-lint: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}

// filterUnits narrows the module's units to those whose directory
// matches one of the patterns (dir, or dir/... for a recursive match).
// EVERY pattern must match at least one package: a typo'd path in a CI
// invocation must fail loudly, not silently skip the packages it was
// meant to gate.
func filterUnits(mod *lint.Module, patterns []string) ([]*lint.Unit, error) {
	type match struct {
		pattern   string
		dir       string
		recursive bool
		hits      int
	}
	matches := make([]*match, 0, len(patterns))
	for _, p := range patterns {
		orig := p
		rec := false
		if strings.HasSuffix(p, "/...") {
			rec = true
			p = strings.TrimSuffix(p, "/...")
		} else if p == "..." {
			rec = true
			p = "."
		}
		abs, err := filepath.Abs(p)
		if err != nil {
			return nil, err
		}
		matches = append(matches, &match{pattern: orig, dir: abs, recursive: rec})
	}

	var units []*lint.Unit
	for _, u := range mod.Units {
		dir := unitDir(mod, u)
		matched := false
		for _, m := range matches {
			if dir == m.dir || (m.recursive && strings.HasPrefix(dir, m.dir+string(filepath.Separator))) {
				m.hits++
				matched = true
			}
		}
		if matched {
			units = append(units, u)
		}
	}
	for _, m := range matches {
		if m.hits == 0 {
			return nil, fmt.Errorf("pattern %q matches no packages", m.pattern)
		}
	}
	return units, nil
}

// unitDir returns the directory a unit's files live in.
func unitDir(mod *lint.Module, u *lint.Unit) string {
	if len(u.Files) == 0 {
		return mod.Dir
	}
	return filepath.Dir(u.Fset.Position(u.Files[0].Pos()).Filename)
}
