package main

import (
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildSweep compiles the emissary-sweep binary once per test run.
func buildSweep(t *testing.T) string {
	t.Helper()
	gobin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	bin := filepath.Join(t.TempDir(), "emissary-sweep")
	build := exec.Command(gobin, "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// runSweep executes the binary and returns stdout, stderr, exit code.
func runSweep(t *testing.T, bin string, args ...string) (string, string, int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		var ee *exec.ExitError
		if !errors.As(err, &ee) {
			t.Fatalf("running %s: %v", bin, err)
		}
		code = ee.ExitCode()
	}
	return stdout.String(), stderr.String(), code
}

// tinyArgs is a 2-job sweep (TPLRU baseline + DRRIP on one benchmark)
// sized for a test, not a measurement.
func tinyArgs(extra ...string) []string {
	return append([]string{
		"-benchmarks", "xapian", "-policies", "DRRIP",
		"-warmup", "20000", "-measure", "80000",
	}, extra...)
}

// TestExitCodeTransientFaultHealedByRetry pins exit 0: a sweep whose
// jobs fail transiently on their first attempt completes under
// -retries, and its stdout is byte-identical at -j 1 and -j 8 and to a
// fault-free sweep.
func TestExitCodeTransientFaultHealedByRetry(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the sweep binary; skipped with -short")
	}
	bin := buildSweep(t)
	clean, _, code := runSweep(t, bin, tinyArgs()...)
	if code != 0 {
		t.Fatalf("fault-free sweep exited %d", code)
	}
	for _, j := range []string{"1", "8"} {
		out, stderr, code := runSweep(t, bin, tinyArgs(
			"-inject", "0:error@1,1:panic@1", "-retries", "2", "-j", j)...)
		if code != 0 {
			t.Fatalf("-j %s: healed sweep exited %d\nstderr:\n%s", j, code, stderr)
		}
		if out != clean {
			t.Errorf("-j %s: retried sweep output differs from fault-free sweep", j)
		}
	}
}

// TestExitCodeFailFastOnPermanentFault pins exit 1: an injected fault
// with no retry budget aborts a FailFast sweep.
func TestExitCodeFailFastOnPermanentFault(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the sweep binary; skipped with -short")
	}
	bin := buildSweep(t)
	_, stderr, code := runSweep(t, bin, tinyArgs("-inject", "1:error")...)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "injected job error") {
		t.Errorf("stderr does not name the injected fault:\n%s", stderr)
	}
}

// TestExitCodeKeepGoingRendersFailedCells pins exit 0 under Continue:
// -keep-going drains the sweep, renders the failed cell as such, and
// reports success (the partial table is the product).
func TestExitCodeKeepGoingRendersFailedCells(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the sweep binary; skipped with -short")
	}
	bin := buildSweep(t)
	out, stderr, code := runSweep(t, bin, tinyArgs("-inject", "1:error", "-keep-going")...)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 under -keep-going\nstderr:\n%s", code, stderr)
	}
	if !strings.Contains(out, "failed") {
		t.Errorf("table does not render the failed cell:\n%s", out)
	}
	if !strings.Contains(stderr, "1/2 cells failed") {
		t.Errorf("stderr does not count the failed cells:\n%s", stderr)
	}
}

// TestExitCodeInterrupted pins exit 130: a sweep stalled by an injected
// hang and interrupted with SIGINT reports the interruption, and its
// journal resumes the sweep to completion afterwards.
func TestExitCodeInterrupted(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the sweep binary; skipped with -short")
	}
	bin := buildSweep(t)
	journal := filepath.Join(t.TempDir(), "sweep.journal")

	// Job 1 stalls on every attempt; job 0 completes and is journaled.
	// -j 1 guarantees job 0 finishes before job 1 blocks.
	cmd := exec.Command(bin, tinyArgs("-inject", "1:stall", "-checkpoint", journal, "-j", "1")...)
	var stderr strings.Builder
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// The advisory lock appears when the journal opens at startup; wait
	// for it (and the first completed record) before interrupting.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if info, err := os.Stat(journal); err == nil && info.Size() > 0 {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatalf("journal never gained a record\nstderr so far:\n%s", stderr.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != 130 {
		t.Fatalf("interrupted sweep: err = %v, want exit 130\nstderr:\n%s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "interrupted") {
		t.Errorf("stderr does not report the interruption:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "rerun the same command to resume") {
		t.Errorf("stderr does not point at the resume path:\n%s", stderr.String())
	}

	// Resume without the stall: the journaled job is served, the sweep
	// completes clean.
	_, stderr2, code := runSweep(t, bin, tinyArgs("-checkpoint", journal)...)
	if code != 0 {
		t.Fatalf("resume exited %d\nstderr:\n%s", code, stderr2)
	}
	if !strings.Contains(stderr2, "resuming with 1 completed simulation") {
		t.Errorf("resume did not pick up the journaled job:\n%s", stderr2)
	}
}
