// Command emissary-sweep runs custom policy sweeps: a set of policies
// against a set of benchmarks, reporting per-benchmark speedups and
// geomeans versus the TPLRU+FDIP baseline. It is the free-form
// companion to emissary-figures' fixed artifacts.
//
// Examples:
//
//	emissary-sweep -policies "P(4):S&E,P(8):S&E,P(12):S&E"
//	emissary-sweep -benchmarks tomcat,verilator -policies "DRRIP,P(8):S&E&R(1/32)" -measure 30000000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"emissary/internal/core"
	"emissary/internal/sim"
	"emissary/internal/stats"
	"emissary/internal/workload"
)

func main() {
	var (
		policies = flag.String("policies", "P(8):S&E,P(8):S&E&R(1/32),DRRIP", "comma-separated policy list")
		benches  = flag.String("benchmarks", "", "comma-separated benchmark subset (default: all 13)")
		warmup   = flag.Uint64("warmup", 2_000_000, "warm-up instructions")
		measure  = flag.Uint64("measure", 8_000_000, "measured instructions")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		verbose  = flag.Bool("v", false, "print progress to stderr")
	)
	flag.Parse()

	var specs []core.Spec
	for _, p := range strings.Split(*policies, ",") {
		spec, err := core.ParsePolicy(strings.TrimSpace(p))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		specs = append(specs, spec)
	}

	var profiles []workload.Profile
	if *benches == "" {
		profiles = workload.Profiles()
	} else {
		for _, name := range strings.Split(*benches, ",") {
			p, ok := workload.ProfileByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", name)
				os.Exit(1)
			}
			profiles = append(profiles, p)
		}
	}

	run := func(bench workload.Profile, spec core.Spec) sim.Result {
		opt := sim.Options{
			Benchmark:     bench,
			Policy:        spec,
			WarmupInstrs:  *warmup,
			MeasureInstrs: *measure,
			FDIP:          true,
			NLP:           true,
			Seed:          *seed,
		}
		res, err := sim.Run(opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "done %-16s %-20s IPC %.4f\n", bench.Name, spec.String(), res.IPC)
		}
		return res
	}

	// Header.
	fmt.Printf("%-16s", "benchmark")
	for _, s := range specs {
		fmt.Printf("  %18s", s.String())
	}
	fmt.Println()

	speedups := make([][]float64, len(specs))
	for _, bench := range profiles {
		base := run(bench, core.Spec{})
		fmt.Printf("%-16s", bench.Name)
		for i, spec := range specs {
			res := run(bench, spec)
			s := stats.Speedup(base.Cycles, res.Cycles)
			speedups[i] = append(speedups[i], s)
			fmt.Printf("  %17.2f%%", s*100)
		}
		fmt.Println()
	}
	fmt.Printf("%-16s", "geomean")
	for i := range specs {
		fmt.Printf("  %17.2f%%", stats.Geomean(speedups[i])*100)
	}
	fmt.Println()
}
