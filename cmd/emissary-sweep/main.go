// Command emissary-sweep runs custom policy sweeps: a set of policies
// against a set of benchmarks, reporting per-benchmark speedups and
// geomeans versus the TPLRU+FDIP baseline. It is the free-form
// companion to emissary-figures' fixed artifacts. The whole
// (benchmark x policy) matrix fans out across CPUs; -j caps the worker
// count without changing any output byte.
//
// -checkpoint journals every completed simulation so an interrupted
// sweep (SIGINT, crash, OOM) resumes where it left off; -keep-going
// runs the matrix to completion even when individual cells fail,
// rendering the failed cells as such instead of aborting the sweep.
// -retries re-runs transiently-failing simulations with deterministic
// backoff (output stays byte-identical at any -j), -job-timeout bounds
// each attempt, and -best-effort-checkpoint downgrades checkpoint
// write failures to a loud warning instead of killing a healthy sweep.
//
// Examples:
//
//	emissary-sweep -policies "P(4):S&E,P(8):S&E,P(12):S&E"
//	emissary-sweep -benchmarks tomcat,verilator -policies "DRRIP,P(8):S&E&R(1/32)" -measure 30000000 -j 8
//	emissary-sweep -checkpoint sweep.journal -keep-going -measure 100000000
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"emissary/internal/core"
	"emissary/internal/faultinject"
	"emissary/internal/profiling"
	"emissary/internal/runner"
	"emissary/internal/sim"
	"emissary/internal/stats"
	"emissary/internal/workload"
)

func main() {
	var (
		policies   = flag.String("policies", "P(8):S&E,P(8):S&E&R(1/32),DRRIP", "comma-separated policy list")
		benches    = flag.String("benchmarks", "", "comma-separated benchmark subset (default: all 13)")
		warmup     = flag.Uint64("warmup", 2_000_000, "warm-up instructions")
		measure    = flag.Uint64("measure", 8_000_000, "measured instructions")
		seed       = flag.Uint64("seed", 1, "simulation seed")
		jobs       = flag.Int("j", 0, "simulations to run in parallel (0 = all CPUs, 1 = sequential)")
		verbose    = flag.Bool("v", false, "print progress to stderr")
		checkpoint = flag.String("checkpoint", "", "journal completed simulations to this file and resume from it on rerun")
		keepGoing  = flag.Bool("keep-going", false, "run remaining cells when one fails; failed cells render as 'failed'")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
		memProf    = flag.String("memprofile", "", "write a heap profile on exit to this file")
		noSkip     = flag.Bool("no-cycle-skip", false, "walk every cycle instead of event-driven skipping (debugging; output is identical, only slower)")
		retries    = flag.Int("retries", 0, "extra attempts for transiently-failing simulations (0 = fail on first error; output is identical at any -j)")
		jobTimeout = flag.Duration("job-timeout", 0, "per-simulation deadline (0 = none; a tripped deadline is transient and composes with -retries)")
		bestEffort = flag.Bool("best-effort-checkpoint", false, "keep sweeping when checkpoint writes fail (loud warning) instead of failing the sweep")
		inject     = flag.String("inject", "", "deterministic job fault plan 'job:error|panic|stall[@attempts]', comma-separated (testing; e.g. '3:error@1,0:stall')")
		lockstep   = flag.Bool("batch", true, "run same-stream simulations in lockstep batches, synthesizing each workload once per group (output is identical; -batch=false is the diagnostic baseline)")
	)
	flag.Parse()

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	var specs []core.Spec
	for _, p := range strings.Split(*policies, ",") {
		spec, err := core.ParsePolicy(strings.TrimSpace(p))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		specs = append(specs, spec)
	}

	var profiles []workload.Profile
	if *benches == "" {
		profiles = workload.Profiles()
	} else {
		for _, name := range strings.Split(*benches, ",") {
			p, ok := workload.ProfileByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", name)
				os.Exit(1)
			}
			profiles = append(profiles, p)
		}
	}

	// One flat batch: per benchmark, the baseline then every policy.
	stride := 1 + len(specs)
	batch := make([]sim.Options, 0, len(profiles)*stride)
	addJob := func(bench workload.Profile, spec core.Spec) {
		batch = append(batch, sim.Options{
			Benchmark:     bench,
			Policy:        spec,
			WarmupInstrs:  *warmup,
			MeasureInstrs: *measure,
			FDIP:          true,
			NLP:           true,
			NoCycleSkip:   *noSkip,
			Seed:          *seed,
		})
	}
	for _, bench := range profiles {
		addJob(bench, core.Spec{})
		for _, spec := range specs {
			addJob(bench, spec)
		}
	}

	// SIGINT/SIGTERM cancel in-flight simulations; with -checkpoint the
	// completed ones are already durable and the sweep resumes on rerun.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	scfg := runner.SimsConfig{
		Workers:    *jobs,
		NoBatch:    !*lockstep,
		Retry:      runner.RetryPolicy{MaxAttempts: *retries + 1},
		JobTimeout: *jobTimeout,
		Warn: func(e error) {
			fmt.Fprintf(os.Stderr, "warning: %v\n", e)
		},
	}
	if *keepGoing {
		scfg.Policy = runner.Continue
	}
	if *bestEffort {
		scfg.JournalFailure = runner.JournalDegrade
	}
	if *inject != "" {
		ji, err := faultinject.ParseJobPlan(*inject)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		scfg.Inject = ji.Before
	}
	if *verbose {
		scfg.Progress = func(r sim.Result) {
			fmt.Fprintf(os.Stderr, "done %-16s %-20s IPC %.4f\n", r.Benchmark, r.Policy, r.IPC)
		}
	}
	if *checkpoint != "" {
		journal, err := runner.OpenJournal(*checkpoint)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer journal.Close()
		if rec := journal.Recovery(); rec.DiscardedRecords > 0 {
			fmt.Fprintf(os.Stderr, "warning: checkpoint %s lost %d complete record(s) (%d bytes) to mid-file corruption; they will be recomputed\n",
				*checkpoint, rec.DiscardedRecords, rec.DiscardedBytes)
		} else if rec.DiscardedBytes > 0 {
			fmt.Fprintf(os.Stderr, "checkpoint: discarded a torn final record (%d bytes) from %s\n", rec.DiscardedBytes, *checkpoint)
		}
		if n := journal.Completed(); n > 0 {
			fmt.Fprintf(os.Stderr, "checkpoint: resuming with %d completed simulation(s) from %s\n", n, *checkpoint)
		}
		scfg.Journal = journal
	}

	results, err := runner.RunSims(ctx, batch, scfg)
	failed := make(map[int]*runner.JobError)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "interrupted")
			if *checkpoint != "" {
				done := 0
				for i := range batch {
					if _, ok := scfg.Journal.Lookup(batch[i]); ok {
						done++
					}
				}
				fmt.Fprintf(os.Stderr, "%d/%d simulations journaled in %s; rerun the same command to resume\n",
					done, len(batch), *checkpoint)
			}
			os.Exit(130)
		}
		if !*keepGoing {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, je := range runner.Failures(err) {
			failed[je.Job] = je
			fmt.Fprintln(os.Stderr, je)
		}
		if len(failed) == 0 {
			// Not a per-job failure (e.g. journal I/O): nothing to render.
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "continuing with %d/%d cells failed\n", len(failed), len(batch))
	}

	// Header.
	fmt.Printf("%-16s", "benchmark")
	for _, s := range specs {
		fmt.Printf("  %18s", s.String())
	}
	fmt.Println()

	speedups := make([][]float64, len(specs))
	for bi, bench := range profiles {
		base := results[bi*stride]
		baseOK := failed[bi*stride] == nil
		fmt.Printf("%-16s", bench.Name)
		for i := range specs {
			cell := bi*stride + 1 + i
			switch {
			case !baseOK:
				fmt.Printf("  %18s", "n/a")
			case failed[cell] != nil:
				fmt.Printf("  %18s", "failed")
			default:
				res := results[cell]
				s := stats.Speedup(base.Cycles, res.Cycles)
				speedups[i] = append(speedups[i], s)
				fmt.Printf("  %17.2f%%", s*100)
			}
		}
		fmt.Println()
	}
	fmt.Printf("%-16s", "geomean")
	for i := range specs {
		if len(speedups[i]) == 0 {
			fmt.Printf("  %18s", "n/a")
			continue
		}
		fmt.Printf("  %17.2f%%", stats.Geomean(speedups[i])*100)
	}
	fmt.Println()
	if len(failed) > 0 {
		fmt.Printf("\n%d cell(s) failed; geomeans cover successful cells only\n", len(failed))
	}
}
