// Command emissary-sweep runs custom policy sweeps: a set of policies
// against a set of benchmarks, reporting per-benchmark speedups and
// geomeans versus the TPLRU+FDIP baseline. It is the free-form
// companion to emissary-figures' fixed artifacts. The whole
// (benchmark x policy) matrix fans out across CPUs; -j caps the worker
// count without changing any output byte.
//
// Examples:
//
//	emissary-sweep -policies "P(4):S&E,P(8):S&E,P(12):S&E"
//	emissary-sweep -benchmarks tomcat,verilator -policies "DRRIP,P(8):S&E&R(1/32)" -measure 30000000 -j 8
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"emissary/internal/core"
	"emissary/internal/runner"
	"emissary/internal/sim"
	"emissary/internal/stats"
	"emissary/internal/workload"
)

func main() {
	var (
		policies = flag.String("policies", "P(8):S&E,P(8):S&E&R(1/32),DRRIP", "comma-separated policy list")
		benches  = flag.String("benchmarks", "", "comma-separated benchmark subset (default: all 13)")
		warmup   = flag.Uint64("warmup", 2_000_000, "warm-up instructions")
		measure  = flag.Uint64("measure", 8_000_000, "measured instructions")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		jobs     = flag.Int("j", 0, "simulations to run in parallel (0 = all CPUs, 1 = sequential)")
		verbose  = flag.Bool("v", false, "print progress to stderr")
	)
	flag.Parse()

	var specs []core.Spec
	for _, p := range strings.Split(*policies, ",") {
		spec, err := core.ParsePolicy(strings.TrimSpace(p))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		specs = append(specs, spec)
	}

	var profiles []workload.Profile
	if *benches == "" {
		profiles = workload.Profiles()
	} else {
		for _, name := range strings.Split(*benches, ",") {
			p, ok := workload.ProfileByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", name)
				os.Exit(1)
			}
			profiles = append(profiles, p)
		}
	}

	// One flat batch: per benchmark, the baseline then every policy.
	stride := 1 + len(specs)
	batch := make([]sim.Options, 0, len(profiles)*stride)
	addJob := func(bench workload.Profile, spec core.Spec) {
		batch = append(batch, sim.Options{
			Benchmark:     bench,
			Policy:        spec,
			WarmupInstrs:  *warmup,
			MeasureInstrs: *measure,
			FDIP:          true,
			NLP:           true,
			Seed:          *seed,
		})
	}
	for _, bench := range profiles {
		addJob(bench, core.Spec{})
		for _, spec := range specs {
			addJob(bench, spec)
		}
	}

	var progress func(sim.Result)
	if *verbose {
		progress = func(r sim.Result) {
			fmt.Fprintf(os.Stderr, "done %-16s %-20s IPC %.4f\n", r.Benchmark, r.Policy, r.IPC)
		}
	}
	results, err := runner.Sims(context.Background(), batch, *jobs, progress)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Header.
	fmt.Printf("%-16s", "benchmark")
	for _, s := range specs {
		fmt.Printf("  %18s", s.String())
	}
	fmt.Println()

	speedups := make([][]float64, len(specs))
	for bi, bench := range profiles {
		base := results[bi*stride]
		fmt.Printf("%-16s", bench.Name)
		for i := range specs {
			res := results[bi*stride+1+i]
			s := stats.Speedup(base.Cycles, res.Cycles)
			speedups[i] = append(speedups[i], s)
			fmt.Printf("  %17.2f%%", s*100)
		}
		fmt.Println()
	}
	fmt.Printf("%-16s", "geomean")
	for i := range specs {
		fmt.Printf("  %17.2f%%", stats.Geomean(speedups[i])*100)
	}
	fmt.Println()
}
