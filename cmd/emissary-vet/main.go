// Command emissary-vet runs the whole-program contract analyzers
// (internal/lint vet passes) over the module:
//
//	fingerprint-complete   every behavior-affecting sim.Options field is fingerprinted
//	skip-delta-coherent    every Step-path counter is mirrored by skipTo's bulk delta
//	hot-noalloc            //vet:hot functions and their callees stay allocation-free
//
// Usage:
//
//	emissary-vet [flags] [module-dir]
//
// Unlike emissary-lint, which filters per-package, vet passes are
// whole-program dataflow analyses: the single optional argument names
// a directory inside the module to analyze (default "."), and the
// entire containing module is always loaded. Diagnostics print one per
// line as
//
//	file:line:col: [pass] message
//
// and the exit status is 1 if any diagnostic was reported, 2 on usage
// or load errors, 0 otherwise. Suppress a site-level finding with the
// shared lint directive (the reason is mandatory):
//
//	//lint:ignore pass reason
//
// Contract-level exclusions use the //vet: annotation grammar
// (DESIGN.md §12): //vet:nonbehavioral <reason> on an options field,
// //vet:skip-invariant <reason> on a counter, //vet:hot on a function.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"emissary/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("emissary-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rulesFlag := fs.String("rules", "", "comma-separated subset of passes to run (default: all)")
	jsonFlag := fs.Bool("json", false, "emit diagnostics as a JSON array instead of text")
	listFlag := fs.Bool("list", false, "list available passes and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: emissary-vet [flags] [module-dir]\n\n")
		fmt.Fprintf(stderr, "Runs the EMISSARY whole-program contract analyzers over the module\ncontaining module-dir (default: the current directory).\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *listFlag {
		for _, p := range lint.Passes() {
			fmt.Fprintf(stdout, "%-20s %s\n", p.Name, p.Doc)
		}
		return 0
	}

	passes, err := lint.SelectPasses(*rulesFlag)
	if err != nil {
		fmt.Fprintln(stderr, "emissary-vet:", err)
		return 2
	}

	dir := "."
	rest := fs.Args()
	// flag stops parsing at the first positional argument, so a flag
	// placed after it would silently become a path; reject that.
	for _, a := range rest {
		if strings.HasPrefix(a, "-") {
			fmt.Fprintf(stderr, "emissary-vet: flag %q after positional argument; flags must come first\n", a)
			return 2
		}
	}
	switch len(rest) {
	case 0:
	case 1:
		dir = rest[0]
	default:
		fmt.Fprintf(stderr, "emissary-vet: at most one module-dir argument (got %d); vet passes are whole-program\n", len(rest))
		return 2
	}

	mod, err := lint.LoadModule(dir)
	if err != nil {
		fmt.Fprintln(stderr, "emissary-vet:", err)
		return 2
	}

	diags := lint.RunPasses(mod, passes)

	cwd, _ := os.Getwd()
	for i := range diags {
		if rel, err := filepath.Rel(cwd, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = rel
		}
	}

	if *jsonFlag {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, "emissary-vet:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}

	if len(diags) > 0 {
		if !*jsonFlag {
			fmt.Fprintf(stderr, "emissary-vet: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}
