package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"emissary/internal/lint"
)

// runInProc invokes run() with file-backed stdout/stderr and returns
// both streams plus the exit code. The working directory is the test
// process's own (this package dir), so LoadModule(".") resolves to the
// real emissary module.
func runInProc(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	outF, err := os.CreateTemp(t.TempDir(), "stdout")
	if err != nil {
		t.Fatal(err)
	}
	errF, err := os.CreateTemp(t.TempDir(), "stderr")
	if err != nil {
		t.Fatal(err)
	}
	code = run(args, outF, errF)
	outB, err := os.ReadFile(outF.Name())
	if err != nil {
		t.Fatal(err)
	}
	errB, err := os.ReadFile(errF.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(outB), string(errB), code
}

// TestList pins the -list contract CI smoke-tests: every pass name
// appears, exit 0.
func TestList(t *testing.T) {
	out, _, code := runInProc(t, "-list")
	if code != 0 {
		t.Fatalf("-list exit code = %d, want 0", code)
	}
	for _, name := range lint.PassNames() {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing pass %q:\n%s", name, out)
		}
	}
}

// TestUsageErrors pins the loud-failure contract: a typo'd pass name,
// a flag after the positional argument, or extra arguments must exit 2
// with an explanatory message — never silently run a different
// configuration.
func TestUsageErrors(t *testing.T) {
	_, errOut, code := runInProc(t, "-rules", "no-such-pass")
	if code != 2 {
		t.Fatalf("-rules no-such-pass: exit %d, want 2", code)
	}
	if !strings.Contains(errOut, `unknown pass "no-such-pass"`) || !strings.Contains(errOut, "available:") {
		t.Errorf("unknown-pass stderr does not name the pass and list the valid ones:\n%s", errOut)
	}

	_, errOut, code = runInProc(t, ".", "-json")
	if code != 2 || !strings.Contains(errOut, "flags must come first") {
		t.Errorf("flag after positional: exit %d, stderr:\n%s\nwant 2 with 'flags must come first'", code, errOut)
	}

	_, errOut, code = runInProc(t, ".", "..")
	if code != 2 || !strings.Contains(errOut, "at most one module-dir") {
		t.Errorf("two positionals: exit %d, stderr:\n%s\nwant 2 with 'at most one module-dir'", code, errOut)
	}
}

// TestTreeClean is the acceptance gate in test form: the real module
// must have zero unsuppressed findings under the full pass suite.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole module; skipped with -short")
	}
	out, errOut, code := runInProc(t, ".")
	if code != 0 || strings.TrimSpace(out) != "" {
		t.Fatalf("tree not vet-clean: exit %d\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
}

// TestSmoke builds the emissary-vet binary and runs it against a
// temporary module containing one hot-path violation, covering the CLI
// end to end: text output, JSON output, and the clean exit after the
// fix.
func TestSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the vet binary; skipped with -short")
	}
	gobin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}

	bin := filepath.Join(t.TempDir(), "emissary-vet")
	build := exec.Command(gobin, "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	mod := t.TempDir()
	writeFile(t, filepath.Join(mod, "go.mod"), "module tmpmod\n\ngo 1.22\n")
	hot := filepath.Join(mod, "hot.go")
	writeFile(t, hot, `package tmpmod

//vet:hot
func Hot(n int) []int { return make([]int, n) }
`)

	out, code := runVet(t, bin, mod)
	if code != 1 {
		t.Fatalf("exit code = %d with violation present, want 1\noutput:\n%s", code, out)
	}
	if !strings.Contains(out, "[hot-noalloc]") || !strings.Contains(out, "make allocates") {
		t.Fatalf("output missing [hot-noalloc] / make allocates:\n%s", out)
	}

	jsonOut, code := runVet(t, bin, mod, "-json")
	if code != 1 {
		t.Fatalf("exit code = %d for -json run, want 1\noutput:\n%s", code, jsonOut)
	}
	var diags []struct {
		File string `json:"file"`
		Line int    `json:"line"`
		Rule string `json:"rule"`
	}
	if err := json.Unmarshal([]byte(jsonOut), &diags); err != nil {
		t.Fatalf("bad -json output: %v\n%s", err, jsonOut)
	}
	if len(diags) != 1 || diags[0].Rule != "hot-noalloc" || diags[0].Line != 4 {
		t.Fatalf("json diagnostics = %+v, want one hot-noalloc at line 4", diags)
	}

	writeFile(t, hot, `package tmpmod

//vet:hot
func Hot(n int, buf []int) []int { return buf[:0] }
`)
	out, code = runVet(t, bin, mod)
	if code != 0 || strings.TrimSpace(out) != "" {
		t.Fatalf("fixed module: exit %d, output %q; want 0 and no output", code, out)
	}
}

func runVet(t *testing.T, bin, dir string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Dir = dir
	out, err := cmd.Output()
	if err == nil {
		return string(out), 0
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("running %s: %v", bin, err)
	}
	return string(out), ee.ExitCode()
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
