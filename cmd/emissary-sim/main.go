// Command emissary-sim runs a single simulation: one benchmark, one
// L2 replacement policy, and prints the metrics the paper reports.
//
// Examples:
//
//	emissary-sim -bench tomcat -policy "P(8):S&E&R(1/32)"
//	emissary-sim -bench verilator -policy TPLRU -instructions 10000000
//	emissary-sim -bench tomcat -policy TPLRU -fdip=false
//	emissary-sim -bench tomcat -policy "P(8):S&E" -replicas 8 -j 8
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"emissary/internal/core"
	"emissary/internal/profiling"
	"emissary/internal/runner"
	"emissary/internal/sim"
	"emissary/internal/workload"
)

func main() {
	var (
		benchName = flag.String("bench", "tomcat", "benchmark name (see -list)")
		policy    = flag.String("policy", "TPLRU", "L2 replacement policy notation, e.g. P(8):S&E&R(1/32)")
		warmup    = flag.Uint64("warmup", 1_000_000, "warm-up instructions")
		measure   = flag.Uint64("instructions", 5_000_000, "measured instructions")
		fdip      = flag.Bool("fdip", true, "enable the FDIP decoupled prefetcher")
		nlp       = flag.Bool("nlp", true, "enable next-line prefetchers")
		trueLRU   = flag.Bool("truelru", false, "use exact LRU recency state (Figure 1 config)")
		ideal     = flag.Bool("ideal", false, "zero-cycle-miss ideal L2-I model (§5.6)")
		reuseFlag = flag.Bool("reuse", false, "track reuse distances (Figure 2 data)")
		reset     = flag.Uint64("priority-reset", 0, "reset P bits every N instructions (§6); 0 = never")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		tracePath = flag.String("trace", "", "replay a recorded trace file instead of a synthetic benchmark")
		replicas  = flag.Int("replicas", 1, "run N derived-seed replicas and report mean +/- std instead of one run")
		jobs      = flag.Int("j", 0, "replicas to run in parallel (0 = all CPUs; only meaningful with -replicas)")
		list      = flag.Bool("list", false, "list benchmarks and exit")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile on exit to this file")
		noSkip    = flag.Bool("no-cycle-skip", false, "walk every cycle instead of event-driven skipping (debugging; output is identical, only slower)")
	)
	flag.Parse()

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	if *list {
		for _, n := range workload.ProfileNames() {
			p, _ := workload.ProfileByName(n)
			fmt.Printf("%-16s footprint %.2f MB, %d services\n", n, p.FootprintMB, p.NumServices)
		}
		return
	}

	var bench workload.Profile
	if *tracePath == "" {
		var ok bool
		bench, ok = workload.ProfileByName(*benchName)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown benchmark %q (try -list)\n", *benchName)
			os.Exit(1)
		}
	}
	spec, err := core.ParsePolicy(*policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	opt := sim.Options{
		Benchmark:             bench,
		Policy:                spec,
		WarmupInstrs:          *warmup,
		MeasureInstrs:         *measure,
		FDIP:                  *fdip,
		NLP:                   *nlp,
		TrueLRU:               *trueLRU,
		IdealL2I:              *ideal,
		TrackReuse:            *reuseFlag,
		PriorityResetInterval: *reset,
		TracePath:             *tracePath,
		NoCycleSkip:           *noSkip,
		Seed:                  *seed,
	}
	// SIGINT/SIGTERM cancel the in-flight simulation cleanly instead of
	// killing the process mid-report.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *replicas > 1 {
		rep, err := runner.Replicated(ctx, opt, *replicas, *jobs)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("benchmark            %s\n", rep.Runs[0].Benchmark)
		fmt.Printf("policy               %s\n", rep.Runs[0].Policy)
		fmt.Printf("replicas             %d\n", len(rep.Runs))
		for i, r := range rep.Runs {
			fmt.Printf("  replica %-2d         IPC %.4f  cycles %d  L2-I MPKI %.2f\n",
				i, r.IPC, r.Cycles, r.L2IMPKI)
		}
		fmt.Printf("mean IPC             %.4f +/- %.4f\n", rep.MeanIPC, rep.StdIPC)
		fmt.Printf("mean cycles          %.0f\n", rep.MeanCycles)
		fmt.Printf("mean L2-I MPKI       %.2f\n", rep.MeanL2I)
		return
	}

	res, err := sim.RunContext(ctx, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("benchmark            %s\n", res.Benchmark)
	fmt.Printf("policy               %s\n", res.Policy)
	fmt.Printf("instructions         %d\n", res.Instructions)
	fmt.Printf("cycles               %d\n", res.Cycles)
	fmt.Printf("IPC                  %.4f\n", res.IPC)
	fmt.Printf("decode rate          %.4f\n", res.DecodeRate)
	fmt.Printf("footprint            %.2f MB\n", float64(res.FootprintBytes)/(1<<20))
	fmt.Printf("L1I MPKI             %.2f\n", res.L1IMPKI)
	fmt.Printf("L1D MPKI             %.2f\n", res.L1DMPKI)
	fmt.Printf("L2 Instr MPKI        %.2f\n", res.L2IMPKI)
	fmt.Printf("L2 Data MPKI         %.2f\n", res.L2DMPKI)
	fmt.Printf("L3 MPKI              %.2f\n", res.L3MPKI)
	fmt.Printf("branch MPKI          %.2f (rate %.4f)\n", res.BranchMPKI, res.BranchMispredictRate)
	fmt.Printf("starvation cycles    %d (IQ-empty %d)\n", res.Starvation, res.StarvationIQE)
	fmt.Printf("commit-path starv    %d (IQ-empty %d)\n", res.CommitStarvation, res.CommitStarvationIQE)
	fmt.Printf("fetch stalls         %d\n", res.FetchStalls)
	fmt.Printf("FE/BE/total stalls   %d / %d / %d\n", res.FrontEndStalls, res.BackEndStalls, res.TotalStalls)
	fmt.Printf("BTB MPKI             %.2f\n", res.BTBMPKI)
	fmt.Printf("wrong-path ops       %d (flushes %d)\n", res.WrongPathOps, res.Flushes)
	fmt.Printf("commit-active cycles %d\n", res.CommitActiveCycles)
	fmt.Printf("DRAM reads           %d\n", res.MemReads)
	fmt.Printf("energy               %.3f mJ\n", res.EnergyPJ/1e9)
	if res.PriorityCensus != nil {
		fmt.Printf("L2 priority census   %v\n", res.PriorityCensus)
	}
	if opt.TrackReuse {
		fmt.Printf("accesses S/M/L       %v\n", res.AccessByBucket)
		fmt.Printf("L2 misses S/M/L      %v\n", res.L2MissByBucket)
		fmt.Printf("starvation S/M/L     %v\n", res.StarvByBucket)
	}
}
